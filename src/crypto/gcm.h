#ifndef SESEMI_CRYPTO_GCM_H_
#define SESEMI_CRYPTO_GCM_H_

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/aes.h"

namespace sesemi::crypto {

constexpr size_t kGcmNonceSize = 12;
constexpr size_t kGcmTagSize = 16;

/// NIST SP 800-38D limit on one message's plaintext: 2^39 - 256 bits
/// (2^36 - 32 bytes). Beyond it the 32-bit invocation counter would repeat a
/// counter block under the same key/nonce; sealing or opening anything longer
/// is rejected with InvalidArgument instead of silently wrapping.
constexpr uint64_t kGcmMaxPlaintextSize = (uint64_t{1} << 36) - 32;

/// AES-GCM authenticated encryption (NIST SP 800-38D).
///
/// This is the cipher the paper uses for both model and request encryption
/// (§V: "We use AES-GCM for model and request encryption"). Sealed messages
/// are laid out `nonce(12) || ciphertext || tag(16)` by the convenience
/// helpers below.
///
/// The bulk path is a fused single pass: the CTR keystream is generated in
/// batches and GHASH is accumulated over the same batch before moving on, so
/// each ciphertext byte is touched once while hot in L1. On the hardware
/// backend (AES-NI + PCLMULQDQ, see ActiveCryptoBackend) keystream batches
/// are 8 blocks wide and GHASH is a reflected carry-less multiply with
/// 4-block aggregation over precomputed H^1..H^4; the VAES+AVX-512 tier
/// widens this to 16-block (256-byte) keystream batches over 4×128-bit-lane
/// AESENC with 8-block VPCLMULQDQ GHASH aggregation over H^1..H^8; the
/// portable fallback keeps 4-block batches and a per-key 256-entry (8-bit
/// Shoup) table.
class AesGcm {
 public:
  /// Build a GCM instance over a 16- or 32-byte AES key. `backend` pins an
  /// implementation (tests/benches compare the two); kAuto follows the
  /// process-wide selection.
  static Result<AesGcm> Create(ByteSpan key,
                               CryptoBackend backend = CryptoBackend::kAuto);

  /// Encrypt `plaintext` with `nonce` (must be 12 bytes) and additional
  /// authenticated data `aad`. Output is ciphertext || tag.
  Result<Bytes> Encrypt(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext) const;

  /// Authenticated decryption; input is ciphertext || tag. Returns
  /// Unauthenticated on any tag mismatch (tampered data, wrong key, wrong AAD).
  Result<Bytes> Decrypt(ByteSpan nonce, ByteSpan aad, ByteSpan ciphertext_and_tag) const;

  /// Zero-copy seal: writes ciphertext || tag (plaintext.size() + 16 bytes)
  /// into `out`. The AAD is the logical concatenation aad_a || aad_b, hashed
  /// as a stream so callers never materialize a combined buffer.
  Status EncryptInto(ByteSpan nonce, ByteSpan aad_a, ByteSpan aad_b,
                     ByteSpan plaintext, uint8_t* out) const;

  /// Zero-copy open: verifies the tag, then writes the plaintext
  /// (ciphertext_and_tag.size() - 16 bytes) into `out`.
  Status DecryptInto(ByteSpan nonce, ByteSpan aad_a, ByteSpan aad_b,
                     ByteSpan ciphertext_and_tag, uint8_t* out) const;

  /// True when this instance runs AES-NI + PCLMUL (or the wider VAES tier).
  bool hardware() const { return aes_.hardware(); }

  /// True when this instance runs the VAES+VPCLMULQDQ 512-bit tier.
  bool vaes() const { return aes_.vaes(); }

 private:
  explicit AesGcm(Aes aes);

  friend struct GcmTestPeer;  ///< counter-wrap regression drives CtrCryptAndHash

  struct GhashState;
  void GHashBlocks(uint8_t y[16], const uint8_t* data, size_t blocks) const;
  void GHashUpdate(GhashState* st, ByteSpan data) const;
  void GHashFlush(GhashState* st) const;

  /// One fused pass over `in`: CTR-crypt into `out` while absorbing either
  /// the output (encrypt) or the input (decrypt) into the GHASH accumulator
  /// `y`, 64 bytes at a time.
  void CtrCryptAndHash(const uint8_t j0[16], ByteSpan in, uint8_t* out,
                       uint8_t y[16], bool hash_output) const;

  void ComputeTag(const uint8_t j0[16], uint8_t y[16], size_t aad_len,
                  size_t ct_len, uint8_t tag[16]) const;

  Aes aes_;
  // Portable GHASH — 8-bit Shoup table: table_*_[b] = (the byte b, as the top
  // 8 bits of a field element) · H, in two big-endian halves. Built only on
  // the portable backend.
  uint64_t table_hi_[256];
  uint64_t table_lo_[256];
  // Hardware GHASH — H^1..H^8 in the byte-reflected convention the PCLMUL
  // kernel loads directly ([0] = H, [7] = H^8). Built only on the hardware
  // backends (the AES-NI tier uses H^1..H^4, the VAES tier aggregates 8
  // blocks against all eight powers); kept as raw bytes so <immintrin.h>
  // stays out of this header.
  alignas(16) uint8_t h_powers_[8][16];
};

/// Seal with a random nonce: returns nonce || ciphertext || tag.
Result<Bytes> GcmSeal(ByteSpan key, ByteSpan aad, ByteSpan plaintext);

/// Open a nonce || ciphertext || tag message produced by GcmSeal.
Result<Bytes> GcmOpen(ByteSpan key, ByteSpan aad, ByteSpan sealed);

/// Single-allocation seal with a two-part AAD (aad_a || aad_b): the output
/// buffer is sized once and the ciphertext+tag are written in place — no
/// intermediate Bytes copies, no materialized AAD concatenation.
/// GcmSealParts / GcmOpenParts over a caller-held cipher: amortizes the AES
/// key schedule and GHASH table build across many messages under one key
/// (the scheduler's same-session batches reuse one AesGcm for the whole
/// batch). Same wire format as the keyed helpers below.
Result<Bytes> GcmSealPartsWith(const AesGcm& gcm, ByteSpan aad_a, ByteSpan aad_b,
                               ByteSpan plaintext);
Result<Bytes> GcmOpenPartsWith(const AesGcm& gcm, ByteSpan aad_a, ByteSpan aad_b,
                               ByteSpan sealed);

Result<Bytes> GcmSealParts(ByteSpan key, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan plaintext);

/// Counterpart of GcmSealParts for opening.
Result<Bytes> GcmOpenParts(ByteSpan key, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan sealed);

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_GCM_H_
