#ifndef SESEMI_CRYPTO_GCM_H_
#define SESEMI_CRYPTO_GCM_H_

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/aes.h"

namespace sesemi::crypto {

constexpr size_t kGcmNonceSize = 12;
constexpr size_t kGcmTagSize = 16;

/// AES-GCM authenticated encryption (NIST SP 800-38D).
///
/// This is the cipher the paper uses for both model and request encryption
/// (§V: "We use AES-GCM for model and request encryption"). Sealed messages
/// are laid out `nonce(12) || ciphertext || tag(16)` by the convenience
/// helpers below.
class AesGcm {
 public:
  /// Build a GCM instance over a 16- or 32-byte AES key.
  static Result<AesGcm> Create(ByteSpan key);

  /// Encrypt `plaintext` with `nonce` (must be 12 bytes) and additional
  /// authenticated data `aad`. Output is ciphertext || tag.
  Result<Bytes> Encrypt(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext) const;

  /// Authenticated decryption; input is ciphertext || tag. Returns
  /// Unauthenticated on any tag mismatch (tampered data, wrong key, wrong AAD).
  Result<Bytes> Decrypt(ByteSpan nonce, ByteSpan aad, ByteSpan ciphertext_and_tag) const;

 private:
  explicit AesGcm(Aes aes);
  void GHashBlock(uint8_t y[16], const uint8_t block[16]) const;
  void GHash(ByteSpan aad, ByteSpan data, uint8_t out[16]) const;
  void Ctr32Crypt(const uint8_t j0[16], ByteSpan in, uint8_t* out) const;

  Aes aes_;
  // GHASH key H in two big-endian halves, plus Shoup 4-bit table for speed.
  uint64_t h_hi_ = 0;
  uint64_t h_lo_ = 0;
  uint64_t table_hi_[16];
  uint64_t table_lo_[16];
};

/// Seal with a random nonce: returns nonce || ciphertext || tag.
Result<Bytes> GcmSeal(ByteSpan key, ByteSpan aad, ByteSpan plaintext);

/// Open a nonce || ciphertext || tag message produced by GcmSeal.
Result<Bytes> GcmOpen(ByteSpan key, ByteSpan aad, ByteSpan sealed);

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_GCM_H_
