#ifndef SESEMI_CRYPTO_SHA256_H_
#define SESEMI_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace sesemi::crypto {

/// Size of a SHA-256 digest in bytes.
constexpr size_t kSha256DigestSize = 32;
/// SHA-256 block size in bytes (relevant for HMAC).
constexpr size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

/// Incremental SHA-256 (FIPS 180-4).
///
/// Used for enclave measurement (MRENCLAVE derivation), identity hashing
/// (Algorithm 1 line 6: id = SHA256(K_id)), and as the compression core of
/// HMAC/HKDF.
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Restart for a fresh message.
  void Reset();
  /// Absorb bytes; may be called any number of times.
  void Update(ByteSpan data);
  /// Finalize and produce the digest. The object must be Reset() before reuse.
  Sha256Digest Finish();

  /// One-shot convenience.
  static Sha256Digest Hash(ByteSpan data);
  /// One-shot digest as a Bytes buffer.
  static Bytes HashToBytes(ByteSpan data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[kSha256BlockSize];
  size_t buffer_len_;
};

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_SHA256_H_
