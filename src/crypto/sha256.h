#ifndef SESEMI_CRYPTO_SHA256_H_
#define SESEMI_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/aes.h"  // CryptoBackend / ActiveCryptoBackend

namespace sesemi::crypto {

/// Size of a SHA-256 digest in bytes.
constexpr size_t kSha256DigestSize = 32;
/// SHA-256 block size in bytes (relevant for HMAC).
constexpr size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

/// True when this build and CPU can run the SHA-NI compression path
/// (x86-64 with the SHA and SSE4.1 CPUID bits).
bool Sha256HardwareAvailable();

/// Incremental SHA-256 (FIPS 180-4).
///
/// Used for enclave measurement (MRENCLAVE derivation), identity hashing
/// (Algorithm 1 line 6: id = SHA256(K_id)), and as the compression core of
/// HMAC/HKDF.
///
/// Two compression implementations sit behind the process-wide crypto
/// dispatch (see CryptoBackend): SHA-NI two-rounds-per-instruction when the
/// hardware backend is active and the CPU has the SHA extensions, and the
/// portable FIPS 180-4 rounds otherwise. Both produce identical digests;
/// SESEMI_FORCE_PORTABLE pins the fallback exactly as it does for AES-GCM.
class Sha256 {
 public:
  Sha256() : Sha256(CryptoBackend::kAuto) { }
  /// Pin a compression backend (tests/benches). kAuto follows
  /// ActiveCryptoBackend(); kHardware on a CPU without the SHA extensions
  /// falls back to portable (the digest is the same either way).
  explicit Sha256(CryptoBackend backend);

  /// Restart for a fresh message (keeps the pinned backend).
  void Reset();
  /// Absorb bytes; may be called any number of times.
  void Update(ByteSpan data);
  /// Finalize and produce the digest. The object must be Reset() before reuse.
  Sha256Digest Finish();

  /// True when this instance compresses with SHA-NI.
  bool hardware() const { return hw_; }

  /// One-shot convenience.
  static Sha256Digest Hash(ByteSpan data);
  /// One-shot digest as a Bytes buffer.
  static Bytes HashToBytes(ByteSpan data);

 private:
  void ProcessBlocks(const uint8_t* data, size_t blocks);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[kSha256BlockSize];
  size_t buffer_len_;
  bool hw_ = false;
};

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_SHA256_H_
