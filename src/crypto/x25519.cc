#include "crypto/x25519.h"

#include <cstring>

#include "crypto/random.h"

namespace sesemi::crypto {

// Field arithmetic over GF(2^255 - 19) with 16 limbs of 16 bits each,
// following the compact TweetNaCl formulation (public domain).
namespace {
using Gf = int64_t[16];

const Gf k121665 = {0xDB41, 1};

void Carry(Gf o) {
  for (int i = 0; i < 16; ++i) {
    o[i] += (1LL << 16);
    int64_t c = o[i] >> 16;
    o[(i + 1) * (i < 15)] += c - 1 + 37 * (c - 1) * (i == 15);
    o[i] -= c << 16;
  }
}

// Constant-time conditional swap of p and q when b == 1.
void Swap(Gf p, Gf q, int64_t b) {
  int64_t c = ~(b - 1);
  for (int i = 0; i < 16; ++i) {
    int64_t t = c & (p[i] ^ q[i]);
    p[i] ^= t;
    q[i] ^= t;
  }
}

void Pack(uint8_t* o, const Gf n) {
  Gf t, m;
  for (int i = 0; i < 16; ++i) t[i] = n[i];
  Carry(t);
  Carry(t);
  Carry(t);
  for (int j = 0; j < 2; ++j) {
    m[0] = t[0] - 0xffed;
    for (int i = 1; i < 15; ++i) {
      m[i] = t[i] - 0xffff - ((m[i - 1] >> 16) & 1);
      m[i - 1] &= 0xffff;
    }
    m[15] = t[15] - 0x7fff - ((m[14] >> 16) & 1);
    int64_t b = (m[15] >> 16) & 1;
    m[14] &= 0xffff;
    Swap(t, m, 1 - b);
  }
  for (int i = 0; i < 16; ++i) {
    o[2 * i] = static_cast<uint8_t>(t[i] & 0xff);
    o[2 * i + 1] = static_cast<uint8_t>(t[i] >> 8);
  }
}

void Unpack(Gf o, const uint8_t* n) {
  for (int i = 0; i < 16; ++i) {
    o[i] = n[2 * i] + (static_cast<int64_t>(n[2 * i + 1]) << 8);
  }
  o[15] &= 0x7fff;
}

void Add(Gf o, const Gf a, const Gf b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] + b[i];
}

void Sub(Gf o, const Gf a, const Gf b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] - b[i];
}

void Mul(Gf o, const Gf a, const Gf b) {
  int64_t t[31];
  for (auto& v : t) v = 0;
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) t[i + j] += a[i] * b[j];
  }
  for (int i = 0; i < 15; ++i) t[i] += 38 * t[i + 16];
  for (int i = 0; i < 16; ++i) o[i] = t[i];
  Carry(o);
  Carry(o);
}

void Square(Gf o, const Gf a) { Mul(o, a, a); }

void Invert(Gf o, const Gf in) {
  Gf c;
  for (int i = 0; i < 16; ++i) c[i] = in[i];
  // Fermat inversion: exponent 2^255 - 21 (all ones except bits 2 and 4).
  for (int a = 253; a >= 0; --a) {
    Square(c, c);
    if (a != 2 && a != 4) Mul(c, c, in);
  }
  for (int i = 0; i < 16; ++i) o[i] = c[i];
}
}  // namespace

X25519Key X25519(const X25519Key& scalar, const X25519Key& point) {
  uint8_t z[32];
  std::memcpy(z, scalar.data(), 32);
  // RFC 7748 clamping.
  z[0] &= 248;
  z[31] = (z[31] & 127) | 64;

  Gf x;
  Unpack(x, point.data());

  Gf a, b, c, d, e, f;
  for (int i = 0; i < 16; ++i) {
    b[i] = x[i];
    a[i] = c[i] = d[i] = 0;
  }
  a[0] = d[0] = 1;

  for (int i = 254; i >= 0; --i) {
    int64_t r = (z[i >> 3] >> (i & 7)) & 1;
    Swap(a, b, r);
    Swap(c, d, r);
    Add(e, a, c);
    Sub(a, a, c);
    Add(c, b, d);
    Sub(b, b, d);
    Square(d, e);
    Square(f, a);
    Mul(a, c, a);
    Mul(c, b, e);
    Add(e, a, c);
    Sub(a, a, c);
    Square(b, a);
    Sub(c, d, f);
    Mul(a, c, k121665);
    Add(a, a, d);
    Mul(c, c, a);
    Mul(a, d, f);
    Mul(d, b, x);
    Square(b, e);
    Swap(a, b, r);
    Swap(c, d, r);
  }

  Invert(c, c);
  Mul(a, a, c);
  X25519Key out;
  Pack(out.data(), a);
  return out;
}

X25519Key X25519Base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return X25519(scalar, base);
}

X25519KeyPair GenerateX25519KeyPair() {
  X25519KeyPair kp;
  Bytes priv = RandomBytes(kX25519KeySize);
  std::memcpy(kp.private_key.data(), priv.data(), kX25519KeySize);
  kp.private_key[0] &= 248;
  kp.private_key[31] = (kp.private_key[31] & 127) | 64;
  kp.public_key = X25519Base(kp.private_key);
  return kp;
}

Result<Bytes> X25519SharedSecret(const X25519Key& private_key,
                                 const X25519Key& peer_public) {
  X25519Key shared = X25519(private_key, peer_public);
  uint8_t acc = 0;
  for (uint8_t byte : shared) acc |= byte;
  if (acc == 0) {
    return Status::Unauthenticated("X25519 produced all-zero shared secret");
  }
  return Bytes(shared.begin(), shared.end());
}

}  // namespace sesemi::crypto
