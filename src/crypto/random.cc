#include "crypto/random.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "crypto/sha256.h"

namespace sesemi::crypto {

namespace {
std::mutex g_mutex;
bool g_deterministic = false;
uint64_t g_counter = 0;
Bytes g_seed_material;

Bytes DrbgBlock(uint64_t counter, ByteSpan seed) {
  Bytes input;
  PutUint64BE(&input, counter);
  Append(&input, seed);
  return Sha256::HashToBytes(input);
}
}  // namespace

void SetDeterministicRandomForTesting(bool enabled, uint64_t seed) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_deterministic = enabled;
  g_counter = 0;
  g_seed_material.clear();
  PutUint64BE(&g_seed_material, seed);
}

void FillRandomBytes(uint8_t* out, size_t n) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_deterministic) {
      size_t filled = 0;
      while (filled < n) {
        Bytes block = DrbgBlock(g_counter++, g_seed_material);
        size_t take = std::min(block.size(), n - filled);
        std::memcpy(out + filled, block.data(), take);
        filled += take;
      }
      return;
    }
  }

  static FILE* urandom = std::fopen("/dev/urandom", "rb");
  if (urandom != nullptr && std::fread(out, 1, n, urandom) == n) {
    return;
  }

  // Fallback DRBG: hash a monotonically increasing counter with a clock seed.
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_seed_material.empty()) {
    auto now = std::chrono::high_resolution_clock::now().time_since_epoch().count();
    PutUint64BE(&g_seed_material, static_cast<uint64_t>(now));
  }
  size_t filled = 0;
  while (filled < n) {
    Bytes block = DrbgBlock(g_counter++, g_seed_material);
    size_t take = std::min(block.size(), n - filled);
    std::memcpy(out + filled, block.data(), take);
    filled += take;
  }
}

Bytes RandomBytes(size_t n) {
  Bytes out(n);
  FillRandomBytes(out.data(), n);
  return out;
}

}  // namespace sesemi::crypto
