#include "crypto/random.h"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "crypto/sha256.h"

namespace sesemi::crypto {

namespace {
std::mutex g_mutex;
bool g_deterministic = false;
uint64_t g_counter = 0;
Bytes g_seed_material;

Bytes DrbgBlock(uint64_t counter, ByteSpan seed) {
  Bytes input;
  PutUint64BE(&input, counter);
  Append(&input, seed);
  return Sha256::HashToBytes(input);
}
}  // namespace

void SetDeterministicRandomForTesting(bool enabled, uint64_t seed) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_deterministic = enabled;
  g_counter = 0;
  g_seed_material.clear();
  PutUint64BE(&g_seed_material, seed);
}

Bytes RandomBytes(size_t n) {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_deterministic) {
      Bytes out;
      out.reserve(n);
      while (out.size() < n) {
        Bytes block = DrbgBlock(g_counter++, g_seed_material);
        size_t take = std::min(block.size(), n - out.size());
        out.insert(out.end(), block.begin(), block.begin() + take);
      }
      return out;
    }
  }

  Bytes out(n);
  static FILE* urandom = std::fopen("/dev/urandom", "rb");
  if (urandom != nullptr && std::fread(out.data(), 1, n, urandom) == n) {
    return out;
  }

  // Fallback DRBG: hash a monotonically increasing counter with a clock seed.
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_seed_material.empty()) {
    auto now = std::chrono::high_resolution_clock::now().time_since_epoch().count();
    PutUint64BE(&g_seed_material, static_cast<uint64_t>(now));
  }
  out.clear();
  while (out.size() < n) {
    Bytes block = DrbgBlock(g_counter++, g_seed_material);
    size_t take = std::min(block.size(), n - out.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
  }
  return out;
}

}  // namespace sesemi::crypto
