#ifndef SESEMI_CRYPTO_HKDF_H_
#define SESEMI_CRYPTO_HKDF_H_

#include "common/bytes.h"
#include "common/result.h"

namespace sesemi::crypto {

/// HKDF-Extract (RFC 5869): PRK = HMAC(salt, ikm).
Bytes HkdfExtract(ByteSpan salt, ByteSpan ikm);

/// HKDF-Expand (RFC 5869): derive `length` bytes from a PRK and context info.
/// Fails if length > 255 * 32.
Result<Bytes> HkdfExpand(ByteSpan prk, ByteSpan info, size_t length);

/// Extract-then-expand in one call.
Result<Bytes> Hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, size_t length);

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_HKDF_H_
