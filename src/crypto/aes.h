#ifndef SESEMI_CRYPTO_AES_H_
#define SESEMI_CRYPTO_AES_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace sesemi::crypto {

constexpr size_t kAesBlockSize = 16;
constexpr size_t kAes128KeySize = 16;
constexpr size_t kAes256KeySize = 32;

/// Which AES/GHASH implementation a cipher instance runs on.
///
/// The selection is made once per process (see ActiveCryptoBackend) and every
/// cipher built with kAuto inherits it, so the whole request path — semirt
/// request codec, keyservice messages, the scheduler's batched RequestCipher —
/// rides the hardware instructions with zero call-site changes. Tests and
/// benchmarks pin a backend explicitly to compare the two byte-for-byte.
enum class CryptoBackend {
  kAuto = 0,      ///< resolve at startup: widest available tier, else portable
  kPortable,      ///< T-table AES + 8-bit Shoup-table GHASH
  kHardware,      ///< AES-NI block cipher + PCLMULQDQ GHASH
  kHardwareVaes,  ///< VAES 4×128-lane keystream + VPCLMULQDQ 8-block GHASH
};

const char* ToString(CryptoBackend backend);

/// True when this build and CPU can run the AES-NI + PCLMULQDQ path
/// (x86-64 with the AES, PCLMUL, and SSSE3 CPUID bits).
bool HardwareCryptoAvailable();

/// True when the wide tier can run: VAES + VPCLMULQDQ with full AVX-512
/// (F/BW/VL) and the OS saving ZMM state (XCR0). Implies
/// HardwareCryptoAvailable() on any real machine.
bool VaesCryptoAvailable();

/// The backend kAuto resolves to, decided once per process: portable when the
/// SESEMI_FORCE_PORTABLE environment variable is set non-empty (and not "0")
/// or when hardware support is missing; otherwise the widest supported tier
/// (VAES+AVX-512 when available, else AES-NI). The forced-portable pin exists
/// for tests, benches, and CI fallback legs.
CryptoBackend ActiveCryptoBackend();

/// AES block cipher (FIPS 197), 128- or 256-bit keys.
///
/// Only the forward (encryption) direction is implemented: the library uses
/// AES exclusively in counter-based modes (GCM), which never need the inverse
/// cipher. This keeps the in-enclave TCB small, matching the paper's goal of a
/// minimal enclave interface.
///
/// Two implementations sit behind one key schedule: constant-time AES-NI
/// rounds (4/8-block pipelined) when the hardware backend is active, and the
/// T-table path as the portable fallback. The classic table cache-timing
/// caveat applies to the fallback only.
class Aes {
 public:
  /// Expands the key schedule. Accepts 16- or 32-byte keys. `backend` pins an
  /// implementation; kAuto follows ActiveCryptoBackend(), and requesting
  /// kHardware on a machine without AES-NI fails FailedPrecondition.
  static Result<Aes> Create(ByteSpan key,
                            CryptoBackend backend = CryptoBackend::kAuto);

  /// Encrypt exactly one 16-byte block, in == out allowed.
  void EncryptBlock(const uint8_t in[kAesBlockSize], uint8_t out[kAesBlockSize]) const;

  /// Encrypt four independent 16-byte blocks, rounds interleaved for ILP.
  /// `in == out` allowed. This is the CTR keystream batch primitive.
  void EncryptBlocks4(const uint8_t in[4 * kAesBlockSize],
                      uint8_t out[4 * kAesBlockSize]) const;

  /// Encrypt eight independent 16-byte blocks. On the hardware backend this
  /// is a single 8-wide AESENC pipeline (the wide GCM keystream batch); the
  /// portable path runs two 4-block groups.
  void EncryptBlocks8(const uint8_t in[8 * kAesBlockSize],
                      uint8_t out[8 * kAesBlockSize]) const;

  /// Encrypt sixteen independent 16-byte blocks. On the VAES tier this is
  /// four 512-bit AESENC streams (4×128-bit lanes each, 16 blocks in flight);
  /// lower tiers run two EncryptBlocks8 groups.
  void EncryptBlocks16(const uint8_t in[16 * kAesBlockSize],
                       uint8_t out[16 * kAesBlockSize]) const;

  /// Number of AES rounds (10 for AES-128, 14 for AES-256).
  int rounds() const { return rounds_; }

  /// True when this instance runs the AES-NI path (or wider).
  bool hardware() const { return hw_; }

  /// True when this instance runs the 512-bit VAES path.
  bool vaes() const { return vaes_; }

 private:
  Aes() = default;
  void ExpandKey(ByteSpan key);

  uint32_t round_keys_[60];  // max 15 round keys * 4 words
  /// The same schedule serialized big-endian per word — exactly the byte
  /// layout AESENC consumes — so the hardware path needs no aeskeygenassist.
  alignas(16) uint8_t round_key_bytes_[15 * kAesBlockSize];
  int rounds_ = 0;
  bool hw_ = false;
  bool vaes_ = false;
};

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_AES_H_
