#ifndef SESEMI_CRYPTO_AES_H_
#define SESEMI_CRYPTO_AES_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace sesemi::crypto {

constexpr size_t kAesBlockSize = 16;
constexpr size_t kAes128KeySize = 16;
constexpr size_t kAes256KeySize = 32;

/// AES block cipher (FIPS 197), 128- or 256-bit keys.
///
/// Only the forward (encryption) direction is implemented: the library uses
/// AES exclusively in counter-based modes (GCM), which never need the inverse
/// cipher. This keeps the in-enclave TCB small, matching the paper's goal of a
/// minimal enclave interface.
class Aes {
 public:
  /// Expands the key schedule. Accepts 16- or 32-byte keys.
  static Result<Aes> Create(ByteSpan key);

  /// Encrypt exactly one 16-byte block, in == out allowed.
  void EncryptBlock(const uint8_t in[kAesBlockSize], uint8_t out[kAesBlockSize]) const;

  /// Encrypt four independent 16-byte blocks, rounds interleaved for ILP.
  /// `in == out` allowed. This is the CTR keystream batch primitive.
  void EncryptBlocks4(const uint8_t in[4 * kAesBlockSize],
                      uint8_t out[4 * kAesBlockSize]) const;

  /// Number of AES rounds (10 for AES-128, 14 for AES-256).
  int rounds() const { return rounds_; }

 private:
  Aes() = default;
  void ExpandKey(ByteSpan key);

  uint32_t round_keys_[60];  // max 15 round keys * 4 words
  int rounds_ = 0;
};

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_AES_H_
