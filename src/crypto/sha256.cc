#include "crypto/sha256.h"

#include <cstring>

#include "common/cpuid.h"
#include "crypto/intrinsics.h"

namespace sesemi::crypto {

namespace {
constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

// Portable FIPS 180-4 compression, one block at a time.
void ProcessBlockPortable(uint32_t state[8], const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

#if SESEMI_CRYPTO_X86
// SHA-NI compression: sha256rnds2 retires two rounds per instruction and
// sha256msg1/msg2 run the message schedule in-register, so a whole block is
// ~70 instructions with no 64-entry w[] spill. The (ABEF, CDGH) register
// split, the per-4-round pattern, and the state shuffles follow Intel's
// canonical SHA extensions flow.
__attribute__((target("sha,sse4.1"))) void ProcessBlocksShaNi(
    uint32_t state[8], const uint8_t* data, size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // state_ is {a..h}; pack into the (ABEF, CDGH) lanes sha256rnds2 consumes.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);           // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);     // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;

    // Rounds 0-3
    __m128i msg0 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data)),
                         kShuffle);
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffle);
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffle);
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffle);
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += kSha256BlockSize;
  }

  // Unpack (ABEF, CDGH) back to {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}
#endif  // SESEMI_CRYPTO_X86

}  // namespace

bool Sha256HardwareAvailable() {
#if SESEMI_CRYPTO_X86
  return GetCpuFeatures().ShaNi();
#else
  return false;
#endif
}

Sha256::Sha256(CryptoBackend backend) {
  if (backend == CryptoBackend::kAuto) backend = ActiveCryptoBackend();
  hw_ = backend == CryptoBackend::kHardware && Sha256HardwareAvailable();
  Reset();
}

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::ProcessBlocks(const uint8_t* data, size_t blocks) {
  if (blocks == 0) return;
#if SESEMI_CRYPTO_X86
  if (hw_) {
    ProcessBlocksShaNi(state_, data, blocks);
    return;
  }
#endif
  for (size_t i = 0; i < blocks; ++i) {
    ProcessBlockPortable(state_, data + i * kSha256BlockSize);
  }
}

void Sha256::Update(ByteSpan data) {
  bit_count_ += static_cast<uint64_t>(data.size()) * 8;
  size_t offset = 0;
  if (buffer_len_ > 0) {
    size_t take = std::min(kSha256BlockSize - buffer_len_, data.size());
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kSha256BlockSize) {
      ProcessBlocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (offset + kSha256BlockSize <= data.size()) {
    const size_t blocks = (data.size() - offset) / kSha256BlockSize;
    ProcessBlocks(data.data() + offset, blocks);
    offset += blocks * kSha256BlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha256Digest Sha256::Finish() {
  uint64_t bits = bit_count_;
  // Pad: 0x80, zeros, 64-bit big-endian length.
  uint8_t pad = 0x80;
  Update(ByteSpan(&pad, 1));
  uint8_t zero = 0;
  while (buffer_len_ != 56) Update(ByteSpan(&zero, 1));
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  Update(ByteSpan(len_be, 8));

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Sha256Digest Sha256::Hash(ByteSpan data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Bytes Sha256::HashToBytes(ByteSpan data) {
  Sha256Digest d = Hash(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace sesemi::crypto
