#ifndef SESEMI_CRYPTO_X25519_H_
#define SESEMI_CRYPTO_X25519_H_

#include <array>

#include "common/bytes.h"
#include "common/result.h"

namespace sesemi::crypto {

constexpr size_t kX25519KeySize = 32;

using X25519Key = std::array<uint8_t, kX25519KeySize>;

/// An X25519 (RFC 7748) key pair used for the ephemeral Diffie-Hellman in
/// attested channel establishment (RA-TLS-style handshakes).
struct X25519KeyPair {
  X25519Key private_key;
  X25519Key public_key;
};

/// Scalar multiplication: out = scalar * point. Constant-time Montgomery
/// ladder over Curve25519.
X25519Key X25519(const X25519Key& scalar, const X25519Key& point);

/// scalar * base point (9).
X25519Key X25519Base(const X25519Key& scalar);

/// Generate a key pair from the entropy source (clamped per RFC 7748).
X25519KeyPair GenerateX25519KeyPair();

/// Compute the shared secret `scalar * peer_public`. Fails on the all-zero
/// output (contributory behaviour check against low-order points).
Result<Bytes> X25519SharedSecret(const X25519Key& private_key,
                                 const X25519Key& peer_public);

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_X25519_H_
