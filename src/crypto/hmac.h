#ifndef SESEMI_CRYPTO_HMAC_H_
#define SESEMI_CRYPTO_HMAC_H_

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace sesemi::crypto {

/// HMAC-SHA256 (RFC 2104). Keys longer than the block size are hashed first.
Sha256Digest HmacSha256(ByteSpan key, ByteSpan message);

/// HMAC-SHA256 as a Bytes buffer.
Bytes HmacSha256ToBytes(ByteSpan key, ByteSpan message);

/// Constant-time verification of an HMAC tag.
bool VerifyHmacSha256(ByteSpan key, ByteSpan message, ByteSpan tag);

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_HMAC_H_
