#include "crypto/gcm.h"

#include <cstring>

#include "crypto/random.h"

namespace sesemi::crypto {

namespace {
#if __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
inline uint64_t HostToBe64(uint64_t v) { return v; }
inline uint32_t HostToBe32(uint32_t v) { return v; }
#else
inline uint64_t HostToBe64(uint64_t v) { return __builtin_bswap64(v); }
inline uint32_t HostToBe32(uint32_t v) { return __builtin_bswap32(v); }
#endif

inline uint64_t Load64BE(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return HostToBe64(v);
}

inline void Store64BE(uint8_t* p, uint64_t v) {
  v = HostToBe64(v);
  std::memcpy(p, &v, 8);
}

// Fold-back constants for the 8-bit Shoup table walk: when the 128-bit
// accumulator is shifted right by a whole byte, the 8 bits shifted out (rem)
// re-enter at the top reduced by the GHASH polynomial. kReduce8[rem] is that
// contribution, already positioned in the high word.
constexpr uint64_t Reduce8(uint32_t rem) {
  uint64_t zh = 0, zl = rem;
  for (int i = 0; i < 8; ++i) {
    const uint64_t carry = zl & 1;
    zl = (zl >> 1) | (zh << 63);
    zh >>= 1;
    if (carry) zh ^= 0xe100000000000000ULL;
  }
  return zh;
}

struct Reduce8Table {
  uint64_t v[256];
};

constexpr Reduce8Table MakeReduce8Table() {
  Reduce8Table t{};
  for (uint32_t r = 0; r < 256; ++r) t.v[r] = Reduce8(r);
  return t;
}

constexpr Reduce8Table kReduce8 = MakeReduce8Table();
}  // namespace

struct AesGcm::GhashState {
  uint8_t y[16] = {0};
  uint8_t buf[16];
  size_t buflen = 0;
};

Result<AesGcm> AesGcm::Create(ByteSpan key) {
  SESEMI_ASSIGN_OR_RETURN(Aes aes, Aes::Create(key));
  return AesGcm(std::move(aes));
}

AesGcm::AesGcm(Aes aes) : aes_(std::move(aes)) {
  uint8_t zero[16] = {0};
  uint8_t h[16];
  aes_.EncryptBlock(zero, h);

  // Build the 8-bit multiplication table: table[1000'0000b] = H, then halve
  // (multiply by x, i.e. right shift in the reflected representation) down to
  // 0000'0001b, and fill composites by XOR.
  uint64_t vh = Load64BE(h);
  uint64_t vl = Load64BE(h + 8);
  table_hi_[0x80] = vh;
  table_lo_[0x80] = vl;
  for (int i = 0x40; i > 0; i >>= 1) {
    const uint64_t carry = vl & 1;
    vl = (vl >> 1) | (vh << 63);
    vh >>= 1;
    if (carry) vh ^= 0xe100000000000000ULL;
    table_hi_[i] = vh;
    table_lo_[i] = vl;
  }
  table_hi_[0] = 0;
  table_lo_[0] = 0;
  for (int i = 2; i < 256; i <<= 1) {
    for (int j = 1; j < i; ++j) {
      table_hi_[i + j] = table_hi_[i] ^ table_hi_[j];
      table_lo_[i + j] = table_lo_[i] ^ table_lo_[j];
    }
  }
}

void AesGcm::GHashBlocks(uint8_t y[16], const uint8_t* data, size_t blocks) const {
  uint64_t yh = Load64BE(y);
  uint64_t yl = Load64BE(y + 8);

  for (size_t blk = 0; blk < blocks; ++blk, data += 16) {
    uint64_t vh = yh ^ Load64BE(data);
    uint64_t vl = yl ^ Load64BE(data + 8);

    // 8-bit Shoup walk, bytes from the low end of (vh, vl).
    uint64_t zh = table_hi_[vl & 0xff];
    uint64_t zl = table_lo_[vl & 0xff];
    for (int i = 1; i < 8; ++i) {
      const uint8_t b = static_cast<uint8_t>(vl >> (8 * i));
      const uint32_t rem = static_cast<uint32_t>(zl & 0xff);
      zl = (zh << 56) | (zl >> 8);
      zh = (zh >> 8) ^ kReduce8.v[rem];
      zh ^= table_hi_[b];
      zl ^= table_lo_[b];
    }
    for (int i = 0; i < 8; ++i) {
      const uint8_t b = static_cast<uint8_t>(vh >> (8 * i));
      const uint32_t rem = static_cast<uint32_t>(zl & 0xff);
      zl = (zh << 56) | (zl >> 8);
      zh = (zh >> 8) ^ kReduce8.v[rem];
      zh ^= table_hi_[b];
      zl ^= table_lo_[b];
    }
    yh = zh;
    yl = zl;
  }
  Store64BE(y, yh);
  Store64BE(y + 8, yl);
}

void AesGcm::GHashUpdate(GhashState* st, ByteSpan data) const {
  if (data.empty()) return;
  size_t i = 0;
  if (st->buflen > 0) {
    const size_t take = std::min<size_t>(16 - st->buflen, data.size());
    std::memcpy(st->buf + st->buflen, data.data(), take);
    st->buflen += take;
    i = take;
    if (st->buflen < 16) return;
    GHashBlocks(st->y, st->buf, 1);
    st->buflen = 0;
  }
  const size_t whole = (data.size() - i) / 16;
  if (whole > 0) {
    GHashBlocks(st->y, data.data() + i, whole);
    i += whole * 16;
  }
  if (i < data.size()) {
    st->buflen = data.size() - i;
    std::memcpy(st->buf, data.data() + i, st->buflen);
  }
}

void AesGcm::GHashFlush(GhashState* st) const {
  if (st->buflen == 0) return;
  std::memset(st->buf + st->buflen, 0, 16 - st->buflen);
  GHashBlocks(st->y, st->buf, 1);
  st->buflen = 0;
}

void AesGcm::CtrCryptAndHash(const uint8_t j0[16], ByteSpan in, uint8_t* out,
                             uint8_t y[16], bool hash_output) const {
  uint8_t counters[64];
  uint8_t keystream[64];
  std::memcpy(counters, j0, 12);
  std::memcpy(counters + 16, j0, 12);
  std::memcpy(counters + 32, j0, 12);
  std::memcpy(counters + 48, j0, 12);
  uint32_t ctr;
  std::memcpy(&ctr, j0 + 12, 4);
  ctr = HostToBe32(ctr);  // big-endian counter -> host int

  const uint8_t* src = in.data();
  size_t remaining = in.size();

  // Fused bulk path: 4 counter blocks -> batched keystream -> XOR -> GHASH,
  // all while the 64-byte batch is hot in L1.
  while (remaining >= 64) {
    for (int b = 0; b < 4; ++b) {
      const uint32_t c = HostToBe32(ctr + 1 + static_cast<uint32_t>(b));
      std::memcpy(counters + 16 * b + 12, &c, 4);
    }
    ctr += 4;
    aes_.EncryptBlocks4(counters, keystream);
    for (int i = 0; i < 64; i += 8) {
      uint64_t d, k;
      std::memcpy(&d, src + i, 8);
      std::memcpy(&k, keystream + i, 8);
      d ^= k;
      std::memcpy(out + i, &d, 8);
    }
    GHashBlocks(y, hash_output ? out : src, 4);
    src += 64;
    out += 64;
    remaining -= 64;
  }

  // Tail: block-at-a-time, final partial block zero-padded for GHASH.
  while (remaining > 0) {
    const uint32_t c = HostToBe32(++ctr);
    std::memcpy(counters + 12, &c, 4);
    aes_.EncryptBlock(counters, keystream);
    const size_t take = std::min<size_t>(16, remaining);
    for (size_t b = 0; b < take; ++b) out[b] = src[b] ^ keystream[b];
    uint8_t block[16] = {0};
    std::memcpy(block, hash_output ? out : src, take);
    GHashBlocks(y, block, 1);
    src += take;
    out += take;
    remaining -= take;
  }
}

void AesGcm::ComputeTag(const uint8_t j0[16], uint8_t y[16], size_t aad_len,
                        size_t ct_len, uint8_t tag[16]) const {
  uint8_t block[16];
  Store64BE(block, static_cast<uint64_t>(aad_len) * 8);
  Store64BE(block + 8, static_cast<uint64_t>(ct_len) * 8);
  GHashBlocks(y, block, 1);
  uint8_t ekj0[16];
  aes_.EncryptBlock(j0, ekj0);
  for (int i = 0; i < 16; ++i) tag[i] = y[i] ^ ekj0[i];
}

Status AesGcm::EncryptInto(ByteSpan nonce, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan plaintext, uint8_t* out) const {
  if (nonce.size() != kGcmNonceSize) {
    return Status::InvalidArgument("GCM nonce must be 12 bytes");
  }
  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;

  GhashState st;
  GHashUpdate(&st, aad_a);
  GHashUpdate(&st, aad_b);
  GHashFlush(&st);
  CtrCryptAndHash(j0, plaintext, out, st.y, /*hash_output=*/true);
  ComputeTag(j0, st.y, aad_a.size() + aad_b.size(), plaintext.size(),
             out + plaintext.size());
  return Status::OK();
}

Status AesGcm::DecryptInto(ByteSpan nonce, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan ciphertext_and_tag, uint8_t* out) const {
  if (nonce.size() != kGcmNonceSize) {
    return Status::InvalidArgument("GCM nonce must be 12 bytes");
  }
  if (ciphertext_and_tag.size() < kGcmTagSize) {
    return Status::Unauthenticated("GCM message shorter than tag");
  }
  const size_t ct_len = ciphertext_and_tag.size() - kGcmTagSize;
  ByteSpan ct(ciphertext_and_tag.data(), ct_len);
  ByteSpan tag(ciphertext_and_tag.data() + ct_len, kGcmTagSize);

  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;

  GhashState st;
  GHashUpdate(&st, aad_a);
  GHashUpdate(&st, aad_b);
  GHashFlush(&st);
  // Single pass: decrypt while absorbing the *ciphertext* into GHASH.
  CtrCryptAndHash(j0, ct, out, st.y, /*hash_output=*/false);
  uint8_t expect[16];
  ComputeTag(j0, st.y, aad_a.size() + aad_b.size(), ct_len, expect);
  if (!ConstantTimeEqual(ByteSpan(expect, 16), tag)) {
    // The plaintext was produced before authentication; never release it.
    if (ct_len > 0) std::memset(out, 0, ct_len);
    return Status::Unauthenticated("GCM tag mismatch");
  }
  return Status::OK();
}

Result<Bytes> AesGcm::Encrypt(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext) const {
  Bytes out(plaintext.size() + kGcmTagSize);
  SESEMI_RETURN_IF_ERROR(EncryptInto(nonce, aad, {}, plaintext, out.data()));
  return out;
}

Result<Bytes> AesGcm::Decrypt(ByteSpan nonce, ByteSpan aad,
                              ByteSpan ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kGcmTagSize) {
    return Status::Unauthenticated("GCM message shorter than tag");
  }
  Bytes plain(ciphertext_and_tag.size() - kGcmTagSize);
  SESEMI_RETURN_IF_ERROR(DecryptInto(nonce, aad, {}, ciphertext_and_tag, plain.data()));
  return plain;
}

Result<Bytes> GcmSealPartsWith(const AesGcm& gcm, ByteSpan aad_a, ByteSpan aad_b,
                               ByteSpan plaintext) {
  // One allocation for nonce || ciphertext || tag, written in place.
  Bytes out(kGcmNonceSize + plaintext.size() + kGcmTagSize);
  FillRandomBytes(out.data(), kGcmNonceSize);
  SESEMI_RETURN_IF_ERROR(gcm.EncryptInto(ByteSpan(out.data(), kGcmNonceSize), aad_a,
                                         aad_b, plaintext, out.data() + kGcmNonceSize));
  return out;
}

Result<Bytes> GcmOpenPartsWith(const AesGcm& gcm, ByteSpan aad_a, ByteSpan aad_b,
                               ByteSpan sealed) {
  if (sealed.size() < kGcmNonceSize + kGcmTagSize) {
    return Status::Unauthenticated("sealed message too short");
  }
  ByteSpan nonce(sealed.data(), kGcmNonceSize);
  ByteSpan ct(sealed.data() + kGcmNonceSize, sealed.size() - kGcmNonceSize);
  Bytes plain(ct.size() - kGcmTagSize);
  SESEMI_RETURN_IF_ERROR(gcm.DecryptInto(nonce, aad_a, aad_b, ct, plain.data()));
  return plain;
}

Result<Bytes> GcmSealParts(ByteSpan key, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan plaintext) {
  SESEMI_ASSIGN_OR_RETURN(AesGcm gcm, AesGcm::Create(key));
  return GcmSealPartsWith(gcm, aad_a, aad_b, plaintext);
}

Result<Bytes> GcmOpenParts(ByteSpan key, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan sealed) {
  SESEMI_ASSIGN_OR_RETURN(AesGcm gcm, AesGcm::Create(key));
  return GcmOpenPartsWith(gcm, aad_a, aad_b, sealed);
}

Result<Bytes> GcmSeal(ByteSpan key, ByteSpan aad, ByteSpan plaintext) {
  return GcmSealParts(key, aad, {}, plaintext);
}

Result<Bytes> GcmOpen(ByteSpan key, ByteSpan aad, ByteSpan sealed) {
  return GcmOpenParts(key, aad, {}, sealed);
}

}  // namespace sesemi::crypto
