#include "crypto/gcm.h"

#include <cstring>

#include "crypto/random.h"

namespace sesemi::crypto {

namespace {
// Reduction constants for Shoup's 4-bit GHASH table method: last4[rem] is the
// contribution of the 4 bits shifted out of the low end, folded back into the
// top of the 128-bit value (already shifted into position 48..63 of the high
// word by the caller).
constexpr uint64_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0};

inline uint64_t Load64BE(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

inline void Store64BE(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (56 - 8 * i));
}

inline void Inc32(uint8_t counter[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[i] != 0) break;
  }
}
}  // namespace

Result<AesGcm> AesGcm::Create(ByteSpan key) {
  SESEMI_ASSIGN_OR_RETURN(Aes aes, Aes::Create(key));
  return AesGcm(std::move(aes));
}

AesGcm::AesGcm(Aes aes) : aes_(std::move(aes)) {
  uint8_t zero[16] = {0};
  uint8_t h[16];
  aes_.EncryptBlock(zero, h);
  h_hi_ = Load64BE(h);
  h_lo_ = Load64BE(h + 8);

  // Build the 4-bit multiplication table: table[1000b] = H, then halve
  // (multiply by x, i.e. right shift in the reflected representation) for
  // 0100b, 0010b, 0001b, and fill composites by XOR.
  uint64_t vh = h_hi_;
  uint64_t vl = h_lo_;
  table_hi_[8] = vh;
  table_lo_[8] = vl;
  for (int i = 4; i > 0; i >>= 1) {
    uint32_t carry = static_cast<uint32_t>(vl & 1);
    vl = (vl >> 1) | (vh << 63);
    vh >>= 1;
    if (carry) vh ^= 0xe100000000000000ULL;
    table_hi_[i] = vh;
    table_lo_[i] = vl;
  }
  table_hi_[0] = 0;
  table_lo_[0] = 0;
  for (int i = 2; i < 16; i <<= 1) {
    for (int j = 1; j < i; ++j) {
      table_hi_[i + j] = table_hi_[i] ^ table_hi_[j];
      table_lo_[i + j] = table_lo_[i] ^ table_lo_[j];
    }
  }
}

void AesGcm::GHashBlock(uint8_t y[16], const uint8_t block[16]) const {
  uint8_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = y[i] ^ block[i];

  // Shoup 4-bit table multiply: process nibbles from the low end.
  uint8_t lo = x[15] & 0xf;
  uint64_t zh = table_hi_[lo];
  uint64_t zl = table_lo_[lo];
  for (int i = 15; i >= 0; --i) {
    lo = x[i] & 0xf;
    uint8_t hi = x[i] >> 4;
    if (i != 15) {
      uint8_t rem = static_cast<uint8_t>(zl & 0xf);
      zl = (zh << 60) | (zl >> 4);
      zh = zh >> 4;
      zh ^= kLast4[rem] << 48;
      zh ^= table_hi_[lo];
      zl ^= table_lo_[lo];
    }
    uint8_t rem = static_cast<uint8_t>(zl & 0xf);
    zl = (zh << 60) | (zl >> 4);
    zh = zh >> 4;
    zh ^= kLast4[rem] << 48;
    zh ^= table_hi_[hi];
    zl ^= table_lo_[hi];
  }
  Store64BE(y, zh);
  Store64BE(y + 8, zl);
}

void AesGcm::GHash(ByteSpan aad, ByteSpan data, uint8_t out[16]) const {
  std::memset(out, 0, 16);
  uint8_t block[16];

  auto absorb = [&](ByteSpan src) {
    size_t i = 0;
    while (i + 16 <= src.size()) {
      GHashBlock(out, src.data() + i);
      i += 16;
    }
    if (i < src.size()) {
      std::memset(block, 0, 16);
      std::memcpy(block, src.data() + i, src.size() - i);
      GHashBlock(out, block);
    }
  };
  absorb(aad);
  absorb(data);

  Store64BE(block, static_cast<uint64_t>(aad.size()) * 8);
  Store64BE(block + 8, static_cast<uint64_t>(data.size()) * 8);
  GHashBlock(out, block);
}

void AesGcm::Ctr32Crypt(const uint8_t j0[16], ByteSpan in, uint8_t* out) const {
  uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  uint8_t keystream[16];
  size_t i = 0;
  while (i < in.size()) {
    Inc32(counter);
    aes_.EncryptBlock(counter, keystream);
    size_t take = std::min<size_t>(16, in.size() - i);
    for (size_t b = 0; b < take; ++b) out[i + b] = in[i + b] ^ keystream[b];
    i += take;
  }
}

Result<Bytes> AesGcm::Encrypt(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext) const {
  if (nonce.size() != kGcmNonceSize) {
    return Status::InvalidArgument("GCM nonce must be 12 bytes");
  }
  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;

  Bytes out(plaintext.size() + kGcmTagSize);
  Ctr32Crypt(j0, plaintext, out.data());

  uint8_t s[16];
  GHash(aad, ByteSpan(out.data(), plaintext.size()), s);
  uint8_t ekj0[16];
  aes_.EncryptBlock(j0, ekj0);
  for (int i = 0; i < 16; ++i) out[plaintext.size() + i] = s[i] ^ ekj0[i];
  return out;
}

Result<Bytes> AesGcm::Decrypt(ByteSpan nonce, ByteSpan aad,
                              ByteSpan ciphertext_and_tag) const {
  if (nonce.size() != kGcmNonceSize) {
    return Status::InvalidArgument("GCM nonce must be 12 bytes");
  }
  if (ciphertext_and_tag.size() < kGcmTagSize) {
    return Status::Unauthenticated("GCM message shorter than tag");
  }
  size_t ct_len = ciphertext_and_tag.size() - kGcmTagSize;
  ByteSpan ct(ciphertext_and_tag.data(), ct_len);
  ByteSpan tag(ciphertext_and_tag.data() + ct_len, kGcmTagSize);

  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;

  uint8_t s[16];
  GHash(aad, ct, s);
  uint8_t ekj0[16];
  aes_.EncryptBlock(j0, ekj0);
  uint8_t expect[16];
  for (int i = 0; i < 16; ++i) expect[i] = s[i] ^ ekj0[i];
  if (!ConstantTimeEqual(ByteSpan(expect, 16), tag)) {
    return Status::Unauthenticated("GCM tag mismatch");
  }

  Bytes plain(ct_len);
  Ctr32Crypt(j0, ct, plain.data());
  return plain;
}

Result<Bytes> GcmSeal(ByteSpan key, ByteSpan aad, ByteSpan plaintext) {
  SESEMI_ASSIGN_OR_RETURN(AesGcm gcm, AesGcm::Create(key));
  Bytes nonce = RandomBytes(kGcmNonceSize);
  SESEMI_ASSIGN_OR_RETURN(Bytes ct, gcm.Encrypt(nonce, aad, plaintext));
  Bytes out;
  out.reserve(nonce.size() + ct.size());
  Append(&out, nonce);
  Append(&out, ct);
  return out;
}

Result<Bytes> GcmOpen(ByteSpan key, ByteSpan aad, ByteSpan sealed) {
  if (sealed.size() < kGcmNonceSize + kGcmTagSize) {
    return Status::Unauthenticated("sealed message too short");
  }
  SESEMI_ASSIGN_OR_RETURN(AesGcm gcm, AesGcm::Create(key));
  ByteSpan nonce(sealed.data(), kGcmNonceSize);
  ByteSpan ct(sealed.data() + kGcmNonceSize, sealed.size() - kGcmNonceSize);
  return gcm.Decrypt(nonce, aad, ct);
}

}  // namespace sesemi::crypto
