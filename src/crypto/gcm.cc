#include "crypto/gcm.h"

#include <cstring>

#include "crypto/intrinsics.h"
#include "crypto/random.h"

namespace sesemi::crypto {

namespace {
#if __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
inline uint64_t HostToBe64(uint64_t v) { return v; }
inline uint32_t HostToBe32(uint32_t v) { return v; }
#else
inline uint64_t HostToBe64(uint64_t v) { return __builtin_bswap64(v); }
inline uint32_t HostToBe32(uint32_t v) { return __builtin_bswap32(v); }
#endif

inline uint64_t Load64BE(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return HostToBe64(v);
}

inline void Store64BE(uint8_t* p, uint64_t v) {
  v = HostToBe64(v);
  std::memcpy(p, &v, 8);
}

// Fold-back constants for the 8-bit Shoup table walk: when the 128-bit
// accumulator is shifted right by a whole byte, the 8 bits shifted out (rem)
// re-enter at the top reduced by the GHASH polynomial. kReduce8[rem] is that
// contribution, already positioned in the high word.
constexpr uint64_t Reduce8(uint32_t rem) {
  uint64_t zh = 0, zl = rem;
  for (int i = 0; i < 8; ++i) {
    const uint64_t carry = zl & 1;
    zl = (zl >> 1) | (zh << 63);
    zh >>= 1;
    if (carry) zh ^= 0xe100000000000000ULL;
  }
  return zh;
}

struct Reduce8Table {
  uint64_t v[256];
};

constexpr Reduce8Table MakeReduce8Table() {
  Reduce8Table t{};
  for (uint32_t r = 0; r < 256; ++r) t.v[r] = Reduce8(r);
  return t;
}

constexpr Reduce8Table kReduce8 = MakeReduce8Table();

#if SESEMI_CRYPTO_X86
// ---------------------------------------------------------------------------
// PCLMULQDQ GHASH. GHASH field elements are bit-reflected relative to their
// wire bytes; loading each 16-byte block byte-reversed (PSHUFB) and fixing
// the reflection with a single left-shift of the 256-bit product (the
// "shift-XOR" method of the Intel carry-less-multiplication whitepaper) lets
// the whole multiply run on CLMUL without per-bit reversal.

__attribute__((target("ssse3"))) inline __m128i LoadReflected(const uint8_t* p) {
  const __m128i kByteReverse =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  return _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
                          kByteReverse);
}

__attribute__((target("ssse3"))) inline void StoreReflected(uint8_t* p, __m128i v) {
  const __m128i kByteReverse =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), _mm_shuffle_epi8(v, kByteReverse));
}

// Accumulate the 256-bit carry-less product a·b into (lo, mid, hi). Products
// are linear over XOR, so several multiplies can pile into one accumulator
// and share a single reduction — the 4-block aggregation below.
__attribute__((target("pclmul"))) inline void ClmulAccumulate(
    __m128i a, __m128i b, __m128i* lo, __m128i* mid, __m128i* hi) {
  *lo = _mm_xor_si128(*lo, _mm_clmulepi64_si128(a, b, 0x00));
  *hi = _mm_xor_si128(*hi, _mm_clmulepi64_si128(a, b, 0x11));
  *mid = _mm_xor_si128(*mid, _mm_xor_si128(_mm_clmulepi64_si128(a, b, 0x10),
                                           _mm_clmulepi64_si128(a, b, 0x01)));
}

// Fold mid into the 256-bit (hi:lo), shift left one bit (the reflection
// fixup), then reduce modulo x^128 + x^7 + x^2 + x + 1.
__attribute__((target("pclmul"))) inline __m128i ClmulReduce(__m128i lo, __m128i mid,
                                                             __m128i hi) {
  lo = _mm_xor_si128(lo, _mm_slli_si128(mid, 8));
  hi = _mm_xor_si128(hi, _mm_srli_si128(mid, 8));

  const __m128i lo_carry = _mm_srli_epi32(lo, 31);
  const __m128i hi_carry = _mm_srli_epi32(hi, 31);
  lo = _mm_slli_epi32(lo, 1);
  hi = _mm_slli_epi32(hi, 1);
  hi = _mm_or_si128(hi, _mm_slli_si128(hi_carry, 4));
  hi = _mm_or_si128(hi, _mm_srli_si128(lo_carry, 12));
  lo = _mm_or_si128(lo, _mm_slli_si128(lo_carry, 4));

  __m128i t = _mm_xor_si128(_mm_slli_epi32(lo, 31),
                            _mm_xor_si128(_mm_slli_epi32(lo, 30),
                                          _mm_slli_epi32(lo, 25)));
  const __m128i t_hi = _mm_srli_si128(t, 4);
  lo = _mm_xor_si128(lo, _mm_slli_si128(t, 12));
  __m128i r = _mm_xor_si128(_mm_srli_epi32(lo, 1),
                            _mm_xor_si128(_mm_srli_epi32(lo, 2),
                                          _mm_srli_epi32(lo, 7)));
  r = _mm_xor_si128(r, t_hi);
  lo = _mm_xor_si128(lo, r);
  return _mm_xor_si128(hi, lo);
}

// Full single multiply (reflected convention) — used for the H-power setup.
__attribute__((target("pclmul"))) inline __m128i ClmulGfMul(__m128i a, __m128i b) {
  __m128i lo = _mm_setzero_si128();
  __m128i mid = _mm_setzero_si128();
  __m128i hi = _mm_setzero_si128();
  ClmulAccumulate(a, b, &lo, &mid, &hi);
  return ClmulReduce(lo, mid, hi);
}

__attribute__((target("pclmul,ssse3"))) void ClmulBuildHPowers(
    const uint8_t h[16], uint8_t h_powers[8][16], int count) {
  const __m128i h1 = LoadReflected(h);
  __m128i p = h1;
  _mm_store_si128(reinterpret_cast<__m128i*>(h_powers[0]), p);
  for (int i = 1; i < count; ++i) {
    p = ClmulGfMul(p, h1);
    _mm_store_si128(reinterpret_cast<__m128i*>(h_powers[i]), p);
  }
}

// Y <- GHASH update over `blocks` 16-byte blocks: 4 at a time against
// H^4..H^1 with one shared reduction, then block-at-a-time for the tail.
__attribute__((target("pclmul,ssse3"))) void ClmulGHashBlocks(
    const uint8_t h_powers[8][16], uint8_t y[16], const uint8_t* data,
    size_t blocks) {
  const __m128i h1 = _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[0]));
  __m128i acc = LoadReflected(y);
  if (blocks >= 4) {
    const __m128i h2 = _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[1]));
    const __m128i h3 = _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[2]));
    const __m128i h4 = _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[3]));
    while (blocks >= 4) {
      __m128i lo = _mm_setzero_si128();
      __m128i mid = _mm_setzero_si128();
      __m128i hi = _mm_setzero_si128();
      ClmulAccumulate(_mm_xor_si128(acc, LoadReflected(data)), h4, &lo, &mid, &hi);
      ClmulAccumulate(LoadReflected(data + 16), h3, &lo, &mid, &hi);
      ClmulAccumulate(LoadReflected(data + 32), h2, &lo, &mid, &hi);
      ClmulAccumulate(LoadReflected(data + 48), h1, &lo, &mid, &hi);
      acc = ClmulReduce(lo, mid, hi);
      data += 64;
      blocks -= 4;
    }
  }
  while (blocks > 0) {
    acc = ClmulGfMul(_mm_xor_si128(acc, LoadReflected(data)), h1);
    data += 16;
    blocks--;
  }
  StoreReflected(y, acc);
}

// XOR-fold the four 128-bit lanes of a 512-bit accumulator down to one
// 128-bit value (products are linear over XOR, so lanes can merge before the
// shared reduction).
__attribute__((target("avx512f,avx512vl,avx2"))) inline __m128i Fold512(__m512i v) {
  const __m256i t = _mm256_xor_si256(_mm512_extracti64x4_epi64(v, 0),
                                     _mm512_extracti64x4_epi64(v, 1));
  return _mm_xor_si128(_mm256_extracti128_si256(t, 0),
                       _mm256_extracti128_si256(t, 1));
}

// 512-bit GHASH: 8 blocks per shared reduction. VPCLMULQDQ runs four
// independent 128-bit carry-less multiplies (one per lane), so two 512-bit
// accumulation steps cover blocks b0..b7 against H^8..H^1 — the same
// aggregated-powers scheme as the 4-block kernel, at twice the aggregation
// width and half the reductions per byte. `groups` counts 8-block groups.
__attribute__((target(
    "avx512f,avx512bw,avx512vl,vpclmulqdq,pclmul,ssse3,avx2"))) void
VclmulGHashBlocks8(const uint8_t h_powers[8][16], uint8_t y[16],
                   const uint8_t* data, size_t groups) {
  const __m512i kByteReverse512 = _mm512_broadcast_i32x4(
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15));
  // Lane l of the first data vector holds block l (earliest in the stream),
  // which multiplies H^(8-l): lane order [H^8,H^7,H^6,H^5], then
  // [H^4,H^3,H^2,H^1] for the second vector.
  __m512i h_hi = _mm512_castsi128_si512(
      _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[7])));
  h_hi = _mm512_inserti32x4(
      h_hi, _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[6])), 1);
  h_hi = _mm512_inserti32x4(
      h_hi, _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[5])), 2);
  h_hi = _mm512_inserti32x4(
      h_hi, _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[4])), 3);
  __m512i h_lo = _mm512_castsi128_si512(
      _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[3])));
  h_lo = _mm512_inserti32x4(
      h_lo, _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[2])), 1);
  h_lo = _mm512_inserti32x4(
      h_lo, _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[1])), 2);
  h_lo = _mm512_inserti32x4(
      h_lo, _mm_load_si128(reinterpret_cast<const __m128i*>(h_powers[0])), 3);

  __m128i acc = LoadReflected(y);
  while (groups-- > 0) {
    __m512i d0 = _mm512_shuffle_epi8(
        _mm512_loadu_si512(reinterpret_cast<const void*>(data)), kByteReverse512);
    const __m512i d1 = _mm512_shuffle_epi8(
        _mm512_loadu_si512(reinterpret_cast<const void*>(data + 64)),
        kByteReverse512);
    // The running accumulator joins the earliest block (lane 0 of d0) before
    // the multiply, exactly as in the narrow kernel.
    d0 = _mm512_mask_xor_epi64(d0, 0x03, d0, _mm512_zextsi128_si512(acc));

    __m512i lo = _mm512_clmulepi64_epi128(d0, h_hi, 0x00);
    __m512i hi = _mm512_clmulepi64_epi128(d0, h_hi, 0x11);
    __m512i mid = _mm512_xor_si512(_mm512_clmulepi64_epi128(d0, h_hi, 0x10),
                                   _mm512_clmulepi64_epi128(d0, h_hi, 0x01));
    lo = _mm512_xor_si512(lo, _mm512_clmulepi64_epi128(d1, h_lo, 0x00));
    hi = _mm512_xor_si512(hi, _mm512_clmulepi64_epi128(d1, h_lo, 0x11));
    mid = _mm512_xor_si512(
        mid, _mm512_xor_si512(_mm512_clmulepi64_epi128(d1, h_lo, 0x10),
                              _mm512_clmulepi64_epi128(d1, h_lo, 0x01)));
    acc = ClmulReduce(Fold512(lo), Fold512(mid), Fold512(hi));
    data += 128;
  }
  StoreReflected(y, acc);
}
#endif  // SESEMI_CRYPTO_X86
}  // namespace

struct AesGcm::GhashState {
  uint8_t y[16] = {0};
  uint8_t buf[16];
  size_t buflen = 0;
};

Result<AesGcm> AesGcm::Create(ByteSpan key, CryptoBackend backend) {
  SESEMI_ASSIGN_OR_RETURN(Aes aes, Aes::Create(key, backend));
  return AesGcm(std::move(aes));
}

AesGcm::AesGcm(Aes aes) : aes_(std::move(aes)) {
  uint8_t zero[16] = {0};
  uint8_t h[16];
  aes_.EncryptBlock(zero, h);

#if SESEMI_CRYPTO_X86
  if (aes_.hardware()) {
    // H^1..H^4 for the aggregated CLMUL walk (H^1..H^8 on the VAES tier);
    // the 256-entry Shoup table is skipped entirely, which also makes
    // per-message cipher setup cheaper.
    ClmulBuildHPowers(h, h_powers_, aes_.vaes() ? 8 : 4);
    return;
  }
#endif
  // Build the 8-bit multiplication table: table[1000'0000b] = H, then halve
  // (multiply by x, i.e. right shift in the reflected representation) down to
  // 0000'0001b, and fill composites by XOR.
  uint64_t vh = Load64BE(h);
  uint64_t vl = Load64BE(h + 8);
  table_hi_[0x80] = vh;
  table_lo_[0x80] = vl;
  for (int i = 0x40; i > 0; i >>= 1) {
    const uint64_t carry = vl & 1;
    vl = (vl >> 1) | (vh << 63);
    vh >>= 1;
    if (carry) vh ^= 0xe100000000000000ULL;
    table_hi_[i] = vh;
    table_lo_[i] = vl;
  }
  table_hi_[0] = 0;
  table_lo_[0] = 0;
  for (int i = 2; i < 256; i <<= 1) {
    for (int j = 1; j < i; ++j) {
      table_hi_[i + j] = table_hi_[i] ^ table_hi_[j];
      table_lo_[i + j] = table_lo_[i] ^ table_lo_[j];
    }
  }
}

void AesGcm::GHashBlocks(uint8_t y[16], const uint8_t* data, size_t blocks) const {
#if SESEMI_CRYPTO_X86
  if (aes_.hardware()) {
    if (aes_.vaes() && blocks >= 8) {
      const size_t groups = blocks / 8;
      VclmulGHashBlocks8(h_powers_, y, data, groups);
      data += groups * 128;
      blocks -= groups * 8;
    }
    if (blocks > 0) ClmulGHashBlocks(h_powers_, y, data, blocks);
    return;
  }
#endif
  uint64_t yh = Load64BE(y);
  uint64_t yl = Load64BE(y + 8);

  for (size_t blk = 0; blk < blocks; ++blk, data += 16) {
    uint64_t vh = yh ^ Load64BE(data);
    uint64_t vl = yl ^ Load64BE(data + 8);

    // 8-bit Shoup walk, bytes from the low end of (vh, vl).
    uint64_t zh = table_hi_[vl & 0xff];
    uint64_t zl = table_lo_[vl & 0xff];
    for (int i = 1; i < 8; ++i) {
      const uint8_t b = static_cast<uint8_t>(vl >> (8 * i));
      const uint32_t rem = static_cast<uint32_t>(zl & 0xff);
      zl = (zh << 56) | (zl >> 8);
      zh = (zh >> 8) ^ kReduce8.v[rem];
      zh ^= table_hi_[b];
      zl ^= table_lo_[b];
    }
    for (int i = 0; i < 8; ++i) {
      const uint8_t b = static_cast<uint8_t>(vh >> (8 * i));
      const uint32_t rem = static_cast<uint32_t>(zl & 0xff);
      zl = (zh << 56) | (zl >> 8);
      zh = (zh >> 8) ^ kReduce8.v[rem];
      zh ^= table_hi_[b];
      zl ^= table_lo_[b];
    }
    yh = zh;
    yl = zl;
  }
  Store64BE(y, yh);
  Store64BE(y + 8, yl);
}

void AesGcm::GHashUpdate(GhashState* st, ByteSpan data) const {
  if (data.empty()) return;
  size_t i = 0;
  if (st->buflen > 0) {
    const size_t take = std::min<size_t>(16 - st->buflen, data.size());
    std::memcpy(st->buf + st->buflen, data.data(), take);
    st->buflen += take;
    i = take;
    if (st->buflen < 16) return;
    GHashBlocks(st->y, st->buf, 1);
    st->buflen = 0;
  }
  const size_t whole = (data.size() - i) / 16;
  if (whole > 0) {
    GHashBlocks(st->y, data.data() + i, whole);
    i += whole * 16;
  }
  if (i < data.size()) {
    st->buflen = data.size() - i;
    std::memcpy(st->buf, data.data() + i, st->buflen);
  }
}

void AesGcm::GHashFlush(GhashState* st) const {
  if (st->buflen == 0) return;
  std::memset(st->buf + st->buflen, 0, 16 - st->buflen);
  GHashBlocks(st->y, st->buf, 1);
  st->buflen = 0;
}

void AesGcm::CtrCryptAndHash(const uint8_t j0[16], ByteSpan in, uint8_t* out,
                             uint8_t y[16], bool hash_output) const {
  uint8_t counters[256];
  uint8_t keystream[256];
  for (int b = 0; b < 16; ++b) std::memcpy(counters + 16 * b, j0, 12);
  uint32_t ctr;
  std::memcpy(&ctr, j0 + 12, 4);
  ctr = HostToBe32(ctr);  // big-endian counter -> host int

  const uint8_t* src = in.data();
  size_t remaining = in.size();

  // inc32: the counter wraps modulo 2^32 (NIST SP 800-38D §6.2) — uint32_t
  // arithmetic gives exactly that, on every batch width.
  const auto set_counters = [&](int n) {
    for (int b = 0; b < n; ++b) {
      const uint32_t c = HostToBe32(ctr + 1 + static_cast<uint32_t>(b));
      std::memcpy(counters + 16 * b + 12, &c, 4);
    }
    ctr += static_cast<uint32_t>(n);
  };
  const auto xor_into = [&](size_t len) {
    for (size_t i = 0; i < len; i += 8) {
      uint64_t d, k;
      std::memcpy(&d, src + i, 8);
      std::memcpy(&k, keystream + i, 8);
      d ^= k;
      std::memcpy(out + i, &d, 8);
    }
  };

  // Fused bulk path: counter blocks -> batched keystream -> XOR -> GHASH,
  // all while the batch is hot in L1. The VAES tier keeps 16 blocks in
  // flight (four 512-bit AESENC streams) and aggregates GHASH 8 blocks per
  // reduction; the AES-NI pipeline is deep enough to keep 8 blocks in
  // flight, so that backend runs 128-byte batches (and its GHASH aggregates
  // the 8 blocks as two 4-block CLMUL groups); the T-table path stays at the
  // 4-block width that fits its registers.
  if (aes_.vaes()) {
    while (remaining >= 256) {
      set_counters(16);
      aes_.EncryptBlocks16(counters, keystream);
      xor_into(256);
      GHashBlocks(y, hash_output ? out : src, 16);
      src += 256;
      out += 256;
      remaining -= 256;
    }
  }
  if (aes_.hardware()) {
    while (remaining >= 128) {
      set_counters(8);
      aes_.EncryptBlocks8(counters, keystream);
      xor_into(128);
      GHashBlocks(y, hash_output ? out : src, 8);
      src += 128;
      out += 128;
      remaining -= 128;
    }
  }
  while (remaining >= 64) {
    set_counters(4);
    aes_.EncryptBlocks4(counters, keystream);
    xor_into(64);
    GHashBlocks(y, hash_output ? out : src, 4);
    src += 64;
    out += 64;
    remaining -= 64;
  }

  // Tail: block-at-a-time, final partial block zero-padded for GHASH.
  while (remaining > 0) {
    const uint32_t c = HostToBe32(++ctr);
    std::memcpy(counters + 12, &c, 4);
    aes_.EncryptBlock(counters, keystream);
    const size_t take = std::min<size_t>(16, remaining);
    for (size_t b = 0; b < take; ++b) out[b] = src[b] ^ keystream[b];
    uint8_t block[16] = {0};
    std::memcpy(block, hash_output ? out : src, take);
    GHashBlocks(y, block, 1);
    src += take;
    out += take;
    remaining -= take;
  }
}

void AesGcm::ComputeTag(const uint8_t j0[16], uint8_t y[16], size_t aad_len,
                        size_t ct_len, uint8_t tag[16]) const {
  uint8_t block[16];
  Store64BE(block, static_cast<uint64_t>(aad_len) * 8);
  Store64BE(block + 8, static_cast<uint64_t>(ct_len) * 8);
  GHashBlocks(y, block, 1);
  uint8_t ekj0[16];
  aes_.EncryptBlock(j0, ekj0);
  for (int i = 0; i < 16; ++i) tag[i] = y[i] ^ ekj0[i];
}

Status AesGcm::EncryptInto(ByteSpan nonce, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan plaintext, uint8_t* out) const {
  if (nonce.size() != kGcmNonceSize) {
    return Status::InvalidArgument("GCM nonce must be 12 bytes");
  }
  if (static_cast<uint64_t>(plaintext.size()) > kGcmMaxPlaintextSize) {
    return Status::InvalidArgument(
        "GCM plaintext exceeds the SP 800-38D limit of 2^39-256 bits");
  }
  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;

  GhashState st;
  GHashUpdate(&st, aad_a);
  GHashUpdate(&st, aad_b);
  GHashFlush(&st);
  CtrCryptAndHash(j0, plaintext, out, st.y, /*hash_output=*/true);
  ComputeTag(j0, st.y, aad_a.size() + aad_b.size(), plaintext.size(),
             out + plaintext.size());
  return Status::OK();
}

Status AesGcm::DecryptInto(ByteSpan nonce, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan ciphertext_and_tag, uint8_t* out) const {
  if (nonce.size() != kGcmNonceSize) {
    return Status::InvalidArgument("GCM nonce must be 12 bytes");
  }
  if (ciphertext_and_tag.size() < kGcmTagSize) {
    return Status::Unauthenticated("GCM message shorter than tag");
  }
  const size_t ct_len = ciphertext_and_tag.size() - kGcmTagSize;
  if (static_cast<uint64_t>(ct_len) > kGcmMaxPlaintextSize) {
    return Status::InvalidArgument(
        "GCM ciphertext exceeds the SP 800-38D limit of 2^39-256 bits");
  }
  ByteSpan ct(ciphertext_and_tag.data(), ct_len);
  ByteSpan tag(ciphertext_and_tag.data() + ct_len, kGcmTagSize);

  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;

  GhashState st;
  GHashUpdate(&st, aad_a);
  GHashUpdate(&st, aad_b);
  GHashFlush(&st);
  // Single pass: decrypt while absorbing the *ciphertext* into GHASH.
  CtrCryptAndHash(j0, ct, out, st.y, /*hash_output=*/false);
  uint8_t expect[16];
  ComputeTag(j0, st.y, aad_a.size() + aad_b.size(), ct_len, expect);
  if (!ConstantTimeEqual(ByteSpan(expect, 16), tag)) {
    // The plaintext was produced before authentication; never release it.
    if (ct_len > 0) std::memset(out, 0, ct_len);
    return Status::Unauthenticated("GCM tag mismatch");
  }
  return Status::OK();
}

Result<Bytes> AesGcm::Encrypt(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext) const {
  if (static_cast<uint64_t>(plaintext.size()) > kGcmMaxPlaintextSize) {
    return Status::InvalidArgument(
        "GCM plaintext exceeds the SP 800-38D limit of 2^39-256 bits");
  }
  Bytes out(plaintext.size() + kGcmTagSize);
  SESEMI_RETURN_IF_ERROR(EncryptInto(nonce, aad, {}, plaintext, out.data()));
  return out;
}

Result<Bytes> AesGcm::Decrypt(ByteSpan nonce, ByteSpan aad,
                              ByteSpan ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kGcmTagSize) {
    return Status::Unauthenticated("GCM message shorter than tag");
  }
  if (static_cast<uint64_t>(ciphertext_and_tag.size() - kGcmTagSize) >
      kGcmMaxPlaintextSize) {
    return Status::InvalidArgument(
        "GCM ciphertext exceeds the SP 800-38D limit of 2^39-256 bits");
  }
  Bytes plain(ciphertext_and_tag.size() - kGcmTagSize);
  SESEMI_RETURN_IF_ERROR(DecryptInto(nonce, aad, {}, ciphertext_and_tag, plain.data()));
  return plain;
}

Result<Bytes> GcmSealPartsWith(const AesGcm& gcm, ByteSpan aad_a, ByteSpan aad_b,
                               ByteSpan plaintext) {
  if (static_cast<uint64_t>(plaintext.size()) > kGcmMaxPlaintextSize) {
    // Checked before the output allocation, not just inside EncryptInto.
    return Status::InvalidArgument(
        "GCM plaintext exceeds the SP 800-38D limit of 2^39-256 bits");
  }
  // One allocation for nonce || ciphertext || tag, written in place.
  Bytes out(kGcmNonceSize + plaintext.size() + kGcmTagSize);
  FillRandomBytes(out.data(), kGcmNonceSize);
  SESEMI_RETURN_IF_ERROR(gcm.EncryptInto(ByteSpan(out.data(), kGcmNonceSize), aad_a,
                                         aad_b, plaintext, out.data() + kGcmNonceSize));
  return out;
}

Result<Bytes> GcmOpenPartsWith(const AesGcm& gcm, ByteSpan aad_a, ByteSpan aad_b,
                               ByteSpan sealed) {
  if (sealed.size() < kGcmNonceSize + kGcmTagSize) {
    return Status::Unauthenticated("sealed message too short");
  }
  if (static_cast<uint64_t>(sealed.size() - kGcmNonceSize - kGcmTagSize) >
      kGcmMaxPlaintextSize) {
    return Status::InvalidArgument(
        "GCM ciphertext exceeds the SP 800-38D limit of 2^39-256 bits");
  }
  ByteSpan nonce(sealed.data(), kGcmNonceSize);
  ByteSpan ct(sealed.data() + kGcmNonceSize, sealed.size() - kGcmNonceSize);
  Bytes plain(ct.size() - kGcmTagSize);
  SESEMI_RETURN_IF_ERROR(gcm.DecryptInto(nonce, aad_a, aad_b, ct, plain.data()));
  return plain;
}

Result<Bytes> GcmSealParts(ByteSpan key, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan plaintext) {
  SESEMI_ASSIGN_OR_RETURN(AesGcm gcm, AesGcm::Create(key));
  return GcmSealPartsWith(gcm, aad_a, aad_b, plaintext);
}

Result<Bytes> GcmOpenParts(ByteSpan key, ByteSpan aad_a, ByteSpan aad_b,
                           ByteSpan sealed) {
  SESEMI_ASSIGN_OR_RETURN(AesGcm gcm, AesGcm::Create(key));
  return GcmOpenPartsWith(gcm, aad_a, aad_b, sealed);
}

Result<Bytes> GcmSeal(ByteSpan key, ByteSpan aad, ByteSpan plaintext) {
  return GcmSealParts(key, aad, {}, plaintext);
}

Result<Bytes> GcmOpen(ByteSpan key, ByteSpan aad, ByteSpan sealed) {
  return GcmOpenParts(key, aad, {}, sealed);
}

}  // namespace sesemi::crypto
