#ifndef SESEMI_CRYPTO_KEY_H_
#define SESEMI_CRYPTO_KEY_H_

#include <string>

#include "common/bytes.h"
#include "crypto/random.h"
#include "crypto/sha256.h"

namespace sesemi::crypto {

/// Default symmetric key size used across SeSeMI (AES-128, matching the Intel
/// SGX SDK default for sealing/provisioning keys).
constexpr size_t kSymmetricKeySize = 16;

/// Generate a fresh random symmetric key.
inline Bytes GenerateSymmetricKey(size_t size = kSymmetricKeySize) {
  return RandomBytes(size);
}

/// Identity derivation per Algorithm 1, line 6 of the paper:
/// id = SHA256(K_id), rendered as lower-case hex so it is printable in wire
/// messages and logs.
inline std::string DeriveIdentity(ByteSpan long_term_key) {
  return HexEncode(Sha256::HashToBytes(long_term_key));
}

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_KEY_H_
