#ifndef SESEMI_CRYPTO_INTRINSICS_H_
#define SESEMI_CRYPTO_INTRINSICS_H_

/// Single-sourced arch gate for the hardware crypto backend: aes.cc (AES-NI)
/// and gcm.cc (PCLMUL GHASH) must agree on when the intrinsics paths are
/// compiled in, or Aes::hardware() could promise a kernel the GCM side lacks.
/// Add new architectures (e.g. NEON/PMULL) here, in one place.
#if defined(__x86_64__) || defined(__i386__)
#define SESEMI_CRYPTO_X86 1
#include <immintrin.h>
#endif

#endif  // SESEMI_CRYPTO_INTRINSICS_H_
