#include "crypto/hkdf.h"

#include "crypto/hmac.h"

namespace sesemi::crypto {

Bytes HkdfExtract(ByteSpan salt, ByteSpan ikm) {
  return HmacSha256ToBytes(salt, ikm);
}

Result<Bytes> HkdfExpand(ByteSpan prk, ByteSpan info, size_t length) {
  if (length > 255 * kSha256DigestSize) {
    return Status::InvalidArgument("HKDF-Expand output too long");
  }
  Bytes okm;
  okm.reserve(length);
  Bytes t;  // T(0) = empty
  uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block = t;
    Append(&block, info);
    block.push_back(counter++);
    t = HmacSha256ToBytes(prk, block);
    size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
  }
  return okm;
}

Result<Bytes> Hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, size_t length) {
  Bytes prk = HkdfExtract(salt, ikm);
  return HkdfExpand(prk, info, length);
}

}  // namespace sesemi::crypto
