#ifndef SESEMI_CRYPTO_RANDOM_H_
#define SESEMI_CRYPTO_RANDOM_H_

#include "common/bytes.h"

namespace sesemi::crypto {

/// Fill `n` bytes from the OS entropy source (/dev/urandom), falling back to
/// a ChaCha-free DRBG built on SHA-256 over a high-resolution clock seed if
/// the device is unavailable (e.g. inside a restricted sandbox).
Bytes RandomBytes(size_t n);

/// Same entropy source, written into a caller-provided buffer (used by the
/// zero-copy seal path to fill the nonce in place).
void FillRandomBytes(uint8_t* out, size_t n);

/// Deterministic test hook: when enabled, RandomBytes produces a reproducible
/// stream derived from `seed` (tests use this to pin nonces). Pass `enabled =
/// false` to restore entropy-backed behaviour.
void SetDeterministicRandomForTesting(bool enabled, uint64_t seed = 0);

}  // namespace sesemi::crypto

#endif  // SESEMI_CRYPTO_RANDOM_H_
