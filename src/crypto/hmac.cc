#include "crypto/hmac.h"

#include <cstring>

namespace sesemi::crypto {

Sha256Digest HmacSha256(ByteSpan key, ByteSpan message) {
  uint8_t block_key[kSha256BlockSize];
  std::memset(block_key, 0, sizeof(block_key));
  if (key.size() > kSha256BlockSize) {
    Sha256Digest kd = Sha256::Hash(key);
    std::memcpy(block_key, kd.data(), kd.size());
  } else if (!key.empty()) {  // empty key: data() may be null, keep zeros
    std::memcpy(block_key, key.data(), key.size());
  }

  uint8_t ipad[kSha256BlockSize], opad[kSha256BlockSize];
  for (size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteSpan(ipad, kSha256BlockSize));
  inner.Update(message);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(ByteSpan(opad, kSha256BlockSize));
  outer.Update(ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Bytes HmacSha256ToBytes(ByteSpan key, ByteSpan message) {
  Sha256Digest d = HmacSha256(key, message);
  return Bytes(d.begin(), d.end());
}

bool VerifyHmacSha256(ByteSpan key, ByteSpan message, ByteSpan tag) {
  Sha256Digest expect = HmacSha256(key, message);
  return ConstantTimeEqual(ByteSpan(expect.data(), expect.size()), tag);
}

}  // namespace sesemi::crypto
