#include "crypto/aes.h"

#include <array>
#include <cstdlib>
#include <cstring>

#include "common/cpuid.h"
#include "crypto/intrinsics.h"

namespace sesemi::crypto {

namespace {
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kRcon[15] = {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
                               0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a};

constexpr uint8_t XTimeC(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

// T-tables: Te0[x] packs the MixColumns contribution of an input byte at row
// 0 as the big-endian word [2·S(x), S(x), S(x), 3·S(x)]; Te1..Te3 are byte
// rotations of Te0 covering rows 1..3 after ShiftRows. One round of
// SubBytes+ShiftRows+MixColumns then collapses to 16 table lookups and 12
// XORs. (These are key-independent public tables; the classic cache-timing
// caveat applies exactly as it does to the S-box path they replace.)
struct TeTables {
  uint32_t te0[256], te1[256], te2[256], te3[256];
};

constexpr TeTables MakeTeTables() {
  TeTables t{};
  for (int i = 0; i < 256; ++i) {
    const uint8_t s = kSbox[i];
    const uint8_t s2 = XTimeC(s);
    const uint8_t s3 = static_cast<uint8_t>(s2 ^ s);
    const uint32_t w = (static_cast<uint32_t>(s2) << 24) |
                       (static_cast<uint32_t>(s) << 16) |
                       (static_cast<uint32_t>(s) << 8) | s3;
    t.te0[i] = w;
    t.te1[i] = (w >> 8) | (w << 24);
    t.te2[i] = (w >> 16) | (w << 16);
    t.te3[i] = (w >> 24) | (w << 8);
  }
  return t;
}

constexpr TeTables kTe = MakeTeTables();

inline uint32_t SubWord(uint32_t w) {
  // T-table-driven SubBytes for the key schedule: the low byte of Te2[x] is
  // S(x), so no separate S-box pass is needed on this path either.
  return ((kTe.te2[(w >> 24) & 0xff] & 0xff) << 24) |
         ((kTe.te2[(w >> 16) & 0xff] & 0xff) << 16) |
         ((kTe.te2[(w >> 8) & 0xff] & 0xff) << 8) |
         (kTe.te2[w & 0xff] & 0xff);
}

inline uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }

#if __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
inline uint32_t HostToBe32(uint32_t v) { return v; }
#else
inline uint32_t HostToBe32(uint32_t v) { return __builtin_bswap32(v); }
#endif

inline uint32_t Load32BE(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return HostToBe32(v);
}

inline void Store32BE(uint8_t* p, uint32_t v) {
  v = HostToBe32(v);
  std::memcpy(p, &v, 4);
}

#if SESEMI_CRYPTO_X86
// AES-NI pipeline: all blocks advance one AESENC per step, so the rounds of
// independent blocks overlap in the AES units exactly like the T-table path
// interleaves its table lookups — but constant-time and ~an order of
// magnitude fewer uops per block. Round keys arrive as the big-endian-word
// serialization of the schedule, which is the byte layout AESENC consumes.
__attribute__((target("aes,sse2"))) void AesniEncryptBlocks(
    const uint8_t* round_key_bytes, int rounds, const uint8_t* in, uint8_t* out,
    size_t nblocks) {
  __m128i keys[15];
  for (int r = 0; r <= rounds; ++r) {
    keys[r] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_key_bytes + 16 * r));
  }
  while (nblocks >= 8) {
    __m128i s[8];
    for (int b = 0; b < 8; ++b) {
      s[b] = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * b)), keys[0]);
    }
    for (int r = 1; r < rounds; ++r) {
      for (int b = 0; b < 8; ++b) s[b] = _mm_aesenc_si128(s[b], keys[r]);
    }
    for (int b = 0; b < 8; ++b) {
      s[b] = _mm_aesenclast_si128(s[b], keys[rounds]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), s[b]);
    }
    in += 8 * 16;
    out += 8 * 16;
    nblocks -= 8;
  }
  while (nblocks >= 4) {
    __m128i s[4];
    for (int b = 0; b < 4; ++b) {
      s[b] = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * b)), keys[0]);
    }
    for (int r = 1; r < rounds; ++r) {
      for (int b = 0; b < 4; ++b) s[b] = _mm_aesenc_si128(s[b], keys[r]);
    }
    for (int b = 0; b < 4; ++b) {
      s[b] = _mm_aesenclast_si128(s[b], keys[rounds]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), s[b]);
    }
    in += 4 * 16;
    out += 4 * 16;
    nblocks -= 4;
  }
  while (nblocks > 0) {
    __m128i s = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)), keys[0]);
    for (int r = 1; r < rounds; ++r) s = _mm_aesenc_si128(s, keys[r]);
    s = _mm_aesenclast_si128(s, keys[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
    in += 16;
    out += 16;
    nblocks--;
  }
}

// VAES pipeline: four 512-bit streams of 4×128-bit lanes each — 16 blocks in
// flight per AESENC step, each round key broadcast across the lanes. Same
// big-endian-serialized schedule as the 128-bit path.
__attribute__((target("avx512f,avx512bw,avx512vl,vaes"))) void VaesEncryptBlocks16(
    const uint8_t* round_key_bytes, int rounds, const uint8_t* in, uint8_t* out) {
  __m512i keys[15];
  for (int r = 0; r <= rounds; ++r) {
    keys[r] = _mm512_broadcast_i32x4(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_key_bytes + 16 * r)));
  }
  __m512i s[4];
  for (int g = 0; g < 4; ++g) {
    s[g] = _mm512_xor_si512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(in + 64 * g)), keys[0]);
  }
  for (int r = 1; r < rounds; ++r) {
    for (int g = 0; g < 4; ++g) s[g] = _mm512_aesenc_epi128(s[g], keys[r]);
  }
  for (int g = 0; g < 4; ++g) {
    s[g] = _mm512_aesenclast_epi128(s[g], keys[rounds]);
    _mm512_storeu_si512(reinterpret_cast<void*>(out + 64 * g), s[g]);
  }
}
#endif  // SESEMI_CRYPTO_X86
}  // namespace

const char* ToString(CryptoBackend backend) {
  switch (backend) {
    case CryptoBackend::kAuto: return "auto";
    case CryptoBackend::kPortable: return "portable";
    case CryptoBackend::kHardware: return "hardware";
    case CryptoBackend::kHardwareVaes: return "hardware-vaes";
  }
  return "unknown";
}

bool HardwareCryptoAvailable() {
#if SESEMI_CRYPTO_X86
  return GetCpuFeatures().AesniGcm();
#else
  return false;
#endif
}

bool VaesCryptoAvailable() {
#if SESEMI_CRYPTO_X86
  return GetCpuFeatures().VaesGcm();
#else
  return false;
#endif
}

CryptoBackend ActiveCryptoBackend() {
  static const CryptoBackend active = [] {
    const char* force = std::getenv("SESEMI_FORCE_PORTABLE");
    const bool forced =
        force != nullptr && force[0] != '\0' && !(force[0] == '0' && force[1] == '\0');
    if (forced || !HardwareCryptoAvailable()) return CryptoBackend::kPortable;
    if (VaesCryptoAvailable()) return CryptoBackend::kHardwareVaes;
    return CryptoBackend::kHardware;
  }();
  return active;
}

Result<Aes> Aes::Create(ByteSpan key, CryptoBackend backend) {
  if (key.size() != kAes128KeySize && key.size() != kAes256KeySize) {
    return Status::InvalidArgument("AES key must be 16 or 32 bytes");
  }
  if (backend == CryptoBackend::kAuto) backend = ActiveCryptoBackend();
  if (backend == CryptoBackend::kHardware && !HardwareCryptoAvailable()) {
    return Status::FailedPrecondition("AES-NI/PCLMUL not available on this CPU");
  }
  if (backend == CryptoBackend::kHardwareVaes && !VaesCryptoAvailable()) {
    return Status::FailedPrecondition(
        "VAES/VPCLMULQDQ/AVX-512 not available on this CPU");
  }
  Aes aes;
  aes.hw_ = backend == CryptoBackend::kHardware ||
            backend == CryptoBackend::kHardwareVaes;
  aes.vaes_ = backend == CryptoBackend::kHardwareVaes;
  aes.ExpandKey(key);
  return aes;
}

void Aes::ExpandKey(ByteSpan key) {
  const int nk = static_cast<int>(key.size() / 4);  // 4 or 8
  rounds_ = nk + 6;                                 // 10 or 14
  const int total_words = 4 * (rounds_ + 1);

  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = Load32BE(key.data() + 4 * i);
  }
  for (int i = nk; i < total_words; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^ (static_cast<uint32_t>(kRcon[i / nk - 1]) << 24);
    } else if (nk > 6 && i % nk == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
  for (int i = 0; i < total_words; ++i) {
    Store32BE(round_key_bytes_ + 4 * i, round_keys_[i]);
  }
}

void Aes::EncryptBlock(const uint8_t in[kAesBlockSize],
                       uint8_t out[kAesBlockSize]) const {
#if SESEMI_CRYPTO_X86
  if (hw_) {
    AesniEncryptBlocks(round_key_bytes_, rounds_, in, out, 1);
    return;
  }
#endif
  const uint32_t* rk = round_keys_;
  uint32_t s0 = Load32BE(in) ^ rk[0];
  uint32_t s1 = Load32BE(in + 4) ^ rk[1];
  uint32_t s2 = Load32BE(in + 8) ^ rk[2];
  uint32_t s3 = Load32BE(in + 12) ^ rk[3];
  rk += 4;

  for (int round = 1; round < rounds_; ++round, rk += 4) {
    const uint32_t t0 = kTe.te0[s0 >> 24] ^ kTe.te1[(s1 >> 16) & 0xff] ^
                        kTe.te2[(s2 >> 8) & 0xff] ^ kTe.te3[s3 & 0xff] ^ rk[0];
    const uint32_t t1 = kTe.te0[s1 >> 24] ^ kTe.te1[(s2 >> 16) & 0xff] ^
                        kTe.te2[(s3 >> 8) & 0xff] ^ kTe.te3[s0 & 0xff] ^ rk[1];
    const uint32_t t2 = kTe.te0[s2 >> 24] ^ kTe.te1[(s3 >> 16) & 0xff] ^
                        kTe.te2[(s0 >> 8) & 0xff] ^ kTe.te3[s1 & 0xff] ^ rk[2];
    const uint32_t t3 = kTe.te0[s3 >> 24] ^ kTe.te1[(s0 >> 16) & 0xff] ^
                        kTe.te2[(s1 >> 8) & 0xff] ^ kTe.te3[s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  const uint32_t o0 = (static_cast<uint32_t>(kSbox[s0 >> 24]) << 24) |
                      (static_cast<uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8) |
                      kSbox[s3 & 0xff];
  const uint32_t o1 = (static_cast<uint32_t>(kSbox[s1 >> 24]) << 24) |
                      (static_cast<uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8) |
                      kSbox[s0 & 0xff];
  const uint32_t o2 = (static_cast<uint32_t>(kSbox[s2 >> 24]) << 24) |
                      (static_cast<uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8) |
                      kSbox[s1 & 0xff];
  const uint32_t o3 = (static_cast<uint32_t>(kSbox[s3 >> 24]) << 24) |
                      (static_cast<uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8) |
                      kSbox[s2 & 0xff];
  Store32BE(out, o0 ^ rk[0]);
  Store32BE(out + 4, o1 ^ rk[1]);
  Store32BE(out + 8, o2 ^ rk[2]);
  Store32BE(out + 12, o3 ^ rk[3]);
}

void Aes::EncryptBlocks4(const uint8_t in[4 * kAesBlockSize],
                         uint8_t out[4 * kAesBlockSize]) const {
#if SESEMI_CRYPTO_X86
  if (hw_) {
    AesniEncryptBlocks(round_key_bytes_, rounds_, in, out, 4);
    return;
  }
#endif
  // Four independent blocks interleaved round-by-round: the per-lookup L1
  // latency of one block's round overlaps the others', which is what makes
  // the CTR keystream batch in GCM run close to table-lookup throughput.
  uint32_t s[4][4];
  const uint32_t* rk = round_keys_;
  for (int b = 0; b < 4; ++b) {
    const uint8_t* p = in + 16 * b;
    s[b][0] = Load32BE(p) ^ rk[0];
    s[b][1] = Load32BE(p + 4) ^ rk[1];
    s[b][2] = Load32BE(p + 8) ^ rk[2];
    s[b][3] = Load32BE(p + 12) ^ rk[3];
  }
  rk += 4;
  for (int round = 1; round < rounds_; ++round, rk += 4) {
    for (int b = 0; b < 4; ++b) {
      const uint32_t t0 = kTe.te0[s[b][0] >> 24] ^ kTe.te1[(s[b][1] >> 16) & 0xff] ^
                          kTe.te2[(s[b][2] >> 8) & 0xff] ^ kTe.te3[s[b][3] & 0xff] ^
                          rk[0];
      const uint32_t t1 = kTe.te0[s[b][1] >> 24] ^ kTe.te1[(s[b][2] >> 16) & 0xff] ^
                          kTe.te2[(s[b][3] >> 8) & 0xff] ^ kTe.te3[s[b][0] & 0xff] ^
                          rk[1];
      const uint32_t t2 = kTe.te0[s[b][2] >> 24] ^ kTe.te1[(s[b][3] >> 16) & 0xff] ^
                          kTe.te2[(s[b][0] >> 8) & 0xff] ^ kTe.te3[s[b][1] & 0xff] ^
                          rk[2];
      const uint32_t t3 = kTe.te0[s[b][3] >> 24] ^ kTe.te1[(s[b][0] >> 16) & 0xff] ^
                          kTe.te2[(s[b][1] >> 8) & 0xff] ^ kTe.te3[s[b][2] & 0xff] ^
                          rk[3];
      s[b][0] = t0;
      s[b][1] = t1;
      s[b][2] = t2;
      s[b][3] = t3;
    }
  }
  for (int b = 0; b < 4; ++b) {
    uint8_t* p = out + 16 * b;
    const uint32_t o0 = (static_cast<uint32_t>(kSbox[s[b][0] >> 24]) << 24) |
                        (static_cast<uint32_t>(kSbox[(s[b][1] >> 16) & 0xff]) << 16) |
                        (static_cast<uint32_t>(kSbox[(s[b][2] >> 8) & 0xff]) << 8) |
                        kSbox[s[b][3] & 0xff];
    const uint32_t o1 = (static_cast<uint32_t>(kSbox[s[b][1] >> 24]) << 24) |
                        (static_cast<uint32_t>(kSbox[(s[b][2] >> 16) & 0xff]) << 16) |
                        (static_cast<uint32_t>(kSbox[(s[b][3] >> 8) & 0xff]) << 8) |
                        kSbox[s[b][0] & 0xff];
    const uint32_t o2 = (static_cast<uint32_t>(kSbox[s[b][2] >> 24]) << 24) |
                        (static_cast<uint32_t>(kSbox[(s[b][3] >> 16) & 0xff]) << 16) |
                        (static_cast<uint32_t>(kSbox[(s[b][0] >> 8) & 0xff]) << 8) |
                        kSbox[s[b][1] & 0xff];
    const uint32_t o3 = (static_cast<uint32_t>(kSbox[s[b][3] >> 24]) << 24) |
                        (static_cast<uint32_t>(kSbox[(s[b][0] >> 16) & 0xff]) << 16) |
                        (static_cast<uint32_t>(kSbox[(s[b][1] >> 8) & 0xff]) << 8) |
                        kSbox[s[b][2] & 0xff];
    Store32BE(p, o0 ^ rk[0]);
    Store32BE(p + 4, o1 ^ rk[1]);
    Store32BE(p + 8, o2 ^ rk[2]);
    Store32BE(p + 12, o3 ^ rk[3]);
  }
}

void Aes::EncryptBlocks8(const uint8_t in[8 * kAesBlockSize],
                         uint8_t out[8 * kAesBlockSize]) const {
#if SESEMI_CRYPTO_X86
  if (hw_) {
    AesniEncryptBlocks(round_key_bytes_, rounds_, in, out, 8);
    return;
  }
#endif
  // Portable fallback: two 4-block groups (8-wide interleave would spill the
  // 32 state words out of registers on the scalar path).
  EncryptBlocks4(in, out);
  EncryptBlocks4(in + 4 * kAesBlockSize, out + 4 * kAesBlockSize);
}

void Aes::EncryptBlocks16(const uint8_t in[16 * kAesBlockSize],
                          uint8_t out[16 * kAesBlockSize]) const {
#if SESEMI_CRYPTO_X86
  if (vaes_) {
    VaesEncryptBlocks16(round_key_bytes_, rounds_, in, out);
    return;
  }
#endif
  EncryptBlocks8(in, out);
  EncryptBlocks8(in + 8 * kAesBlockSize, out + 8 * kAesBlockSize);
}

}  // namespace sesemi::crypto
