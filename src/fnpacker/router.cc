#include "fnpacker/router.h"

#include <algorithm>

namespace sesemi::fnpacker {

FnPackerRouter::FnPackerRouter(FnPoolSpec spec) : spec_(std::move(spec)) {
  endpoints_.reserve(spec_.num_endpoints);
  for (int i = 0; i < spec_.num_endpoints; ++i) {
    endpoints_.push_back(std::make_unique<EndpointSlot>());
  }
  models_.reserve(spec_.models.size());
  for (size_t i = 0; i < spec_.models.size(); ++i) {
    auto slot = std::make_unique<ModelSlot>();
    slot->index = static_cast<uint32_t>(i);
    models_.emplace(spec_.models[i], std::move(slot));
  }
}

void FnPackerRouter::AddPending(EndpointSlot* endpoint, uint32_t mark_exclusive) {
  uint64_t word = endpoint->word.load(std::memory_order_relaxed);
  for (;;) {
    const uint32_t mark =
        mark_exclusive == kNoModel ? WordExclusive(word) : mark_exclusive;
    const uint64_t want = PackWord(mark, WordPending(word) + 1);
    if (endpoint->word.compare_exchange_weak(word, want,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      return;
    }
  }
}

bool FnPackerRouter::TryStickyAddPending(EndpointSlot* endpoint, uint32_t mark) {
  uint64_t word = endpoint->word.load(std::memory_order_acquire);
  for (;;) {
    // Sticky is only valid while the endpoint still has work in flight: if
    // it drained between the model-state read and here, fall back to a
    // fresh decision instead of resurrecting (and marking) an idle
    // endpoint another model may be about to claim.
    if (WordPending(word) == 0) return false;
    const uint64_t want = PackWord(mark, WordPending(word) + 1);
    if (endpoint->word.compare_exchange_weak(word, want,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      return true;
    }
  }
}

bool FnPackerRouter::BreakerAdmit(EndpointSlot* endpoint, TimeMicros now) {
  uint64_t word = endpoint->breaker.load(std::memory_order_acquire);
  for (;;) {
    const uint32_t state = BreakerState(word);
    if (state == kBreakerClosed) return true;
    if (state == kBreakerOpen) {
      if (now < endpoint->open_until.load(std::memory_order_acquire)) {
        return false;
      }
      // Open interval elapsed: go half-open, consuming one probe for this
      // request in the same CAS.
      const uint32_t spare = static_cast<uint32_t>(
          std::max(0, spec_.breaker_half_open_probes - 1));
      const uint64_t want =
          PackBreaker(kBreakerHalfOpen, spare, BreakerFailures(word));
      if (endpoint->breaker.compare_exchange_weak(word, want,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        return true;
      }
      continue;
    }
    // Half-open: admit only while probes remain.
    const uint32_t probes = BreakerProbes(word);
    if (probes == 0) return false;
    const uint64_t want =
        PackBreaker(kBreakerHalfOpen, probes - 1, BreakerFailures(word));
    if (endpoint->breaker.compare_exchange_weak(word, want,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
      return true;
    }
  }
}

void FnPackerRouter::BreakerOnSuccess(EndpointSlot* endpoint) {
  uint64_t word = endpoint->breaker.load(std::memory_order_acquire);
  for (;;) {
    // A success closes a half-open breaker and clears the failure streak;
    // nothing to do when already closed and clean.
    if (BreakerState(word) == kBreakerClosed && BreakerFailures(word) == 0) {
      return;
    }
    if (endpoint->breaker.compare_exchange_weak(
            word, PackBreaker(kBreakerClosed, 0, 0), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      return;
    }
  }
}

void FnPackerRouter::BreakerOnFailure(EndpointSlot* endpoint, TimeMicros now) {
  uint64_t word = endpoint->breaker.load(std::memory_order_acquire);
  for (;;) {
    const uint32_t state = BreakerState(word);
    const uint32_t failures = BreakerFailures(word) + 1;
    uint64_t want;
    bool opening = false;
    if (state == kBreakerHalfOpen) {
      // A failed probe reopens immediately.
      want = PackBreaker(kBreakerOpen, 0, failures);
      opening = true;
    } else if (state == kBreakerClosed &&
               failures >= static_cast<uint32_t>(spec_.breaker_failure_threshold)) {
      want = PackBreaker(kBreakerOpen, 0, failures);
      opening = true;
    } else {
      want = PackBreaker(state, BreakerProbes(word), failures);
    }
    if (opening) {
      // Publish the rejection window before the state flips so an Admit that
      // observes "open" never reads a stale open_until.
      endpoint->open_until.store(now + spec_.breaker_open_interval,
                                 std::memory_order_release);
    }
    if (endpoint->breaker.compare_exchange_weak(word, want,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
      if (opening) breaker_opens_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

Result<int> FnPackerRouter::Route(const std::string& model_id, TimeMicros now) {
  // Lock-free lookup: the key set is an immutable snapshot taken at
  // construction, so find() races only with other readers.
  auto it = models_.find(model_id);
  if (it == models_.end()) {
    return Status::NotFound("model not in Fnpool: " + model_id);
  }
  ModelSlot& model = *it->second;
  const uint32_t my = model.index;

  // Breaker gate, memoized per endpoint: BreakerAdmit may consume a
  // half-open probe, and one Route call must not drain several probes while
  // considering the same endpoint on different paths.
  std::vector<int8_t> admit_cache;
  if (breaker_enabled()) admit_cache.assign(endpoints_.size(), -1);
  auto breaker_allows = [&](int i) -> bool {
    if (!breaker_enabled()) return true;
    if (admit_cache[i] < 0) {
      admit_cache[i] = BreakerAdmit(endpoints_[i].get(), now) ? 1 : 0;
    }
    return admit_cache[i] != 0;
  };

  // One CAS claim attempt on endpoint i. The compare-exchange verifies
  // "pending == 0 and mark compatible" and takes the endpoint in the same
  // atomic step, so two models can never both see it idle and both claim it.
  auto try_claim_idle = [&](int i, bool allow_expired) -> bool {
    EndpointSlot& e = *endpoints_[i];
    uint64_t word = e.word.load(std::memory_order_acquire);
    for (;;) {
      if (WordPending(word) != 0) return false;
      const uint32_t exclusive = WordExclusive(word);
      uint64_t want;
      if (exclusive == kNoModel || exclusive == my) {
        want = PackWord(exclusive, 1);
      } else {
        // Marked for another model: claimable only once the exclusivity has
        // idled past the timeout ("large interval", §IV-C); the claim clears
        // the mark.
        if (!allow_expired) return false;
        const TimeMicros last = e.last_request.load(std::memory_order_acquire);
        if (last < 0 || now - last < spec_.exclusive_idle_timeout) return false;
        want = PackWord(kNoModel, 1);
      }
      if (e.word.compare_exchange_weak(word, want, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        return true;
      }
    }
  };

  int chosen = -1;
  const int sticky = model.endpoint.load(std::memory_order_acquire);
  if (model.pending.load(std::memory_order_acquire) > 0 && sticky >= 0 &&
      breaker_allows(sticky) &&
      TryStickyAddPending(endpoints_[sticky].get(), my)) {
    // Sticky: in-flight work pins the model to its endpoint and marks it
    // exclusive, so a busy model never interleaves with others.
    chosen = sticky;
  } else {
    // Prefer the endpoint already serving this model (loaded state), if free
    // (the preferred probe does not break another model's un-expired mark).
    if (sticky >= 0 && breaker_allows(sticky) &&
        try_claim_idle(sticky, /*allow_expired=*/false)) {
      chosen = sticky;
    }
    if (chosen < 0) {
      for (size_t i = 0; i < endpoints_.size(); ++i) {
        if (breaker_allows(static_cast<int>(i)) &&
            try_claim_idle(static_cast<int>(i), /*allow_expired=*/true)) {
          chosen = static_cast<int>(i);
          break;
        }
      }
    }
    if (chosen < 0) {
      // Every endpoint busy: fall back to the least-loaded one whose breaker
      // admits traffic (mark kept — overflow does not grant exclusivity).
      uint32_t best_pending = 0;
      for (size_t i = 0; i < endpoints_.size(); ++i) {
        if (!breaker_allows(static_cast<int>(i))) continue;
        const uint32_t pending = WordPending(
            endpoints_[i]->word.load(std::memory_order_acquire));
        if (chosen < 0 || pending < best_pending) {
          best_pending = pending;
          chosen = static_cast<int>(i);
        }
      }
      if (chosen < 0) {
        // Every endpoint's breaker is open: shed with a typed error instead
        // of queueing onto a known-bad replica.
        breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable("all endpoints circuit-broken for model " +
                                   model_id);
      }
      AddPending(endpoints_[chosen].get(), kNoModel);
      overflow_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const int previous = model.endpoint.exchange(chosen, std::memory_order_acq_rel);
  if (previous >= 0 && previous != chosen) {
    model_switches_.fetch_add(1, std::memory_order_relaxed);
  }
  model.pending.fetch_add(1, std::memory_order_acq_rel);
  model.last_invocation.store(now, std::memory_order_relaxed);
  endpoints_[chosen]->last_request.store(now, std::memory_order_relaxed);
  routed_.fetch_add(1, std::memory_order_relaxed);
  return chosen;
}

void FnPackerRouter::OnComplete(const std::string& model_id, int endpoint,
                                TimeMicros now) {
  (void)now;
  CompleteInternal(model_id, endpoint);
  if (breaker_enabled() && endpoint >= 0 &&
      endpoint < static_cast<int>(endpoints_.size())) {
    BreakerOnSuccess(endpoints_[endpoint].get());
  }
}

void FnPackerRouter::OnFailure(const std::string& model_id, int endpoint,
                               TimeMicros now) {
  CompleteInternal(model_id, endpoint);
  if (breaker_enabled() && endpoint >= 0 &&
      endpoint < static_cast<int>(endpoints_.size())) {
    BreakerOnFailure(endpoints_[endpoint].get(), now);
  }
}

void FnPackerRouter::CompleteInternal(const std::string& model_id, int endpoint) {
  auto it = models_.find(model_id);  // lock-free (immutable key set)
  if (it != models_.end()) {
    // Floor-zero decrement: a stray completion never drives pending negative.
    std::atomic<int>& pending = it->second->pending;
    int current = pending.load(std::memory_order_acquire);
    while (current > 0 &&
           !pending.compare_exchange_weak(current, current - 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    }
  }
  if (endpoint >= 0 && endpoint < static_cast<int>(endpoints_.size())) {
    std::atomic<uint64_t>& word_ref = endpoints_[endpoint]->word;
    uint64_t word = word_ref.load(std::memory_order_acquire);
    for (;;) {
      if (WordPending(word) == 0) break;
      const uint64_t want = PackWord(WordExclusive(word), WordPending(word) - 1);
      if (word_ref.compare_exchange_weak(word, want, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        break;
      }
    }
  }
}

RouterStats FnPackerRouter::stats() const {
  RouterStats stats;
  stats.routed = routed_.load(std::memory_order_relaxed);
  stats.model_switches = model_switches_.load(std::memory_order_relaxed);
  stats.overflow = overflow_.load(std::memory_order_relaxed);
  stats.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  stats.breaker_rejections = breaker_rejections_.load(std::memory_order_relaxed);
  return stats;
}

void FnPackerRouter::RegisterMetrics(obs::MetricsRegistry* registry) {
  metrics_collector_ = obs::ScopedCollector(registry, [this]() {
    const RouterStats s = stats();
    std::vector<obs::Sample> samples;
    samples.push_back(
        obs::MakeCounterSample("sesemi_router_routed_total", s.routed));
    samples.push_back(obs::MakeCounterSample(
        "sesemi_router_model_switches_total", s.model_switches));
    samples.push_back(
        obs::MakeCounterSample("sesemi_router_overflow_total", s.overflow));
    samples.push_back(obs::MakeCounterSample("sesemi_router_breaker_opens_total",
                                             s.breaker_opens));
    samples.push_back(obs::MakeCounterSample(
        "sesemi_router_breaker_rejections_total", s.breaker_rejections));
    return samples;
  });
}

ModelState FnPackerRouter::model_state(const std::string& model_id) const {
  auto it = models_.find(model_id);
  if (it == models_.end()) return ModelState{};
  ModelState state;
  state.pending = it->second->pending.load(std::memory_order_acquire);
  state.endpoint = it->second->endpoint.load(std::memory_order_acquire);
  state.last_invocation = it->second->last_invocation.load(std::memory_order_acquire);
  return state;
}

EndpointState FnPackerRouter::endpoint_state(int endpoint) const {
  const EndpointSlot& slot = *endpoints_.at(endpoint);
  const uint64_t word = slot.word.load(std::memory_order_acquire);
  EndpointState state;
  state.pending = static_cast<int>(WordPending(word));
  const uint32_t exclusive = WordExclusive(word);
  if (exclusive != kNoModel) state.exclusive_model = spec_.models[exclusive];
  state.last_request = slot.last_request.load(std::memory_order_acquire);
  const uint64_t breaker = slot.breaker.load(std::memory_order_acquire);
  state.breaker_failures = static_cast<int>(BreakerFailures(breaker));
  state.breaker_open = BreakerState(breaker) == kBreakerOpen;
  return state;
}

OneToOneRouter::OneToOneRouter(std::vector<std::string> models)
    : models_(std::move(models)) {
  index_.reserve(models_.size());
  for (size_t i = 0; i < models_.size(); ++i) index_[models_[i]] = static_cast<int>(i);
}

Result<int> OneToOneRouter::Route(const std::string& model_id, TimeMicros now) {
  (void)now;
  auto it = index_.find(model_id);
  if (it == index_.end()) return Status::NotFound("unknown model: " + model_id);
  return it->second;
}

void OneToOneRouter::OnComplete(const std::string&, int, TimeMicros) {}

Result<int> AllInOneRouter::Route(const std::string&, TimeMicros) { return 0; }

void AllInOneRouter::OnComplete(const std::string&, int, TimeMicros) {}

}  // namespace sesemi::fnpacker
