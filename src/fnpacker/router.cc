#include "fnpacker/router.h"

#include <algorithm>

namespace sesemi::fnpacker {

FnPackerRouter::FnPackerRouter(FnPoolSpec spec) : spec_(std::move(spec)) {
  endpoints_.reserve(spec_.num_endpoints);
  for (int i = 0; i < spec_.num_endpoints; ++i) {
    endpoints_.push_back(std::make_unique<EndpointSlot>());
  }
  models_.reserve(spec_.models.size());
  for (size_t i = 0; i < spec_.models.size(); ++i) {
    auto slot = std::make_unique<ModelSlot>();
    slot->index = static_cast<uint32_t>(i);
    models_.emplace(spec_.models[i], std::move(slot));
  }
}

void FnPackerRouter::AddPending(EndpointSlot* endpoint, uint32_t mark_exclusive) {
  uint64_t word = endpoint->word.load(std::memory_order_relaxed);
  for (;;) {
    const uint32_t mark =
        mark_exclusive == kNoModel ? WordExclusive(word) : mark_exclusive;
    const uint64_t want = PackWord(mark, WordPending(word) + 1);
    if (endpoint->word.compare_exchange_weak(word, want,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      return;
    }
  }
}

bool FnPackerRouter::TryStickyAddPending(EndpointSlot* endpoint, uint32_t mark) {
  uint64_t word = endpoint->word.load(std::memory_order_acquire);
  for (;;) {
    // Sticky is only valid while the endpoint still has work in flight: if
    // it drained between the model-state read and here, fall back to a
    // fresh decision instead of resurrecting (and marking) an idle
    // endpoint another model may be about to claim.
    if (WordPending(word) == 0) return false;
    const uint64_t want = PackWord(mark, WordPending(word) + 1);
    if (endpoint->word.compare_exchange_weak(word, want,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      return true;
    }
  }
}

Result<int> FnPackerRouter::Route(const std::string& model_id, TimeMicros now) {
  // Lock-free lookup: the key set is an immutable snapshot taken at
  // construction, so find() races only with other readers.
  auto it = models_.find(model_id);
  if (it == models_.end()) {
    return Status::NotFound("model not in Fnpool: " + model_id);
  }
  ModelSlot& model = *it->second;
  const uint32_t my = model.index;

  // One CAS claim attempt on endpoint i. The compare-exchange verifies
  // "pending == 0 and mark compatible" and takes the endpoint in the same
  // atomic step, so two models can never both see it idle and both claim it.
  auto try_claim_idle = [&](int i, bool allow_expired) -> bool {
    EndpointSlot& e = *endpoints_[i];
    uint64_t word = e.word.load(std::memory_order_acquire);
    for (;;) {
      if (WordPending(word) != 0) return false;
      const uint32_t exclusive = WordExclusive(word);
      uint64_t want;
      if (exclusive == kNoModel || exclusive == my) {
        want = PackWord(exclusive, 1);
      } else {
        // Marked for another model: claimable only once the exclusivity has
        // idled past the timeout ("large interval", §IV-C); the claim clears
        // the mark.
        if (!allow_expired) return false;
        const TimeMicros last = e.last_request.load(std::memory_order_acquire);
        if (last < 0 || now - last < spec_.exclusive_idle_timeout) return false;
        want = PackWord(kNoModel, 1);
      }
      if (e.word.compare_exchange_weak(word, want, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        return true;
      }
    }
  };

  int chosen = -1;
  const int sticky = model.endpoint.load(std::memory_order_acquire);
  if (model.pending.load(std::memory_order_acquire) > 0 && sticky >= 0 &&
      TryStickyAddPending(endpoints_[sticky].get(), my)) {
    // Sticky: in-flight work pins the model to its endpoint and marks it
    // exclusive, so a busy model never interleaves with others.
    chosen = sticky;
  } else {
    // Prefer the endpoint already serving this model (loaded state), if free
    // (the preferred probe does not break another model's un-expired mark).
    if (sticky >= 0 && try_claim_idle(sticky, /*allow_expired=*/false)) {
      chosen = sticky;
    }
    if (chosen < 0) {
      for (size_t i = 0; i < endpoints_.size(); ++i) {
        if (try_claim_idle(static_cast<int>(i), /*allow_expired=*/true)) {
          chosen = static_cast<int>(i);
          break;
        }
      }
    }
    if (chosen < 0) {
      // Every endpoint busy: fall back to the least-loaded one (mark kept —
      // overflow does not grant exclusivity).
      chosen = 0;
      uint32_t best_pending = WordPending(
          endpoints_[0]->word.load(std::memory_order_acquire));
      for (size_t i = 1; i < endpoints_.size(); ++i) {
        const uint32_t pending = WordPending(
            endpoints_[i]->word.load(std::memory_order_acquire));
        if (pending < best_pending) {
          best_pending = pending;
          chosen = static_cast<int>(i);
        }
      }
      AddPending(endpoints_[chosen].get(), kNoModel);
      overflow_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const int previous = model.endpoint.exchange(chosen, std::memory_order_acq_rel);
  if (previous >= 0 && previous != chosen) {
    model_switches_.fetch_add(1, std::memory_order_relaxed);
  }
  model.pending.fetch_add(1, std::memory_order_acq_rel);
  model.last_invocation.store(now, std::memory_order_relaxed);
  endpoints_[chosen]->last_request.store(now, std::memory_order_relaxed);
  routed_.fetch_add(1, std::memory_order_relaxed);
  return chosen;
}

void FnPackerRouter::OnComplete(const std::string& model_id, int endpoint,
                                TimeMicros now) {
  (void)now;
  auto it = models_.find(model_id);  // lock-free (immutable key set)
  if (it != models_.end()) {
    // Floor-zero decrement: a stray completion never drives pending negative.
    std::atomic<int>& pending = it->second->pending;
    int current = pending.load(std::memory_order_acquire);
    while (current > 0 &&
           !pending.compare_exchange_weak(current, current - 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    }
  }
  if (endpoint >= 0 && endpoint < static_cast<int>(endpoints_.size())) {
    std::atomic<uint64_t>& word_ref = endpoints_[endpoint]->word;
    uint64_t word = word_ref.load(std::memory_order_acquire);
    for (;;) {
      if (WordPending(word) == 0) break;
      const uint64_t want = PackWord(WordExclusive(word), WordPending(word) - 1);
      if (word_ref.compare_exchange_weak(word, want, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        break;
      }
    }
  }
}

RouterStats FnPackerRouter::stats() const {
  RouterStats stats;
  stats.routed = routed_.load(std::memory_order_relaxed);
  stats.model_switches = model_switches_.load(std::memory_order_relaxed);
  stats.overflow = overflow_.load(std::memory_order_relaxed);
  return stats;
}

ModelState FnPackerRouter::model_state(const std::string& model_id) const {
  auto it = models_.find(model_id);
  if (it == models_.end()) return ModelState{};
  ModelState state;
  state.pending = it->second->pending.load(std::memory_order_acquire);
  state.endpoint = it->second->endpoint.load(std::memory_order_acquire);
  state.last_invocation = it->second->last_invocation.load(std::memory_order_acquire);
  return state;
}

EndpointState FnPackerRouter::endpoint_state(int endpoint) const {
  const EndpointSlot& slot = *endpoints_.at(endpoint);
  const uint64_t word = slot.word.load(std::memory_order_acquire);
  EndpointState state;
  state.pending = static_cast<int>(WordPending(word));
  const uint32_t exclusive = WordExclusive(word);
  if (exclusive != kNoModel) state.exclusive_model = spec_.models[exclusive];
  state.last_request = slot.last_request.load(std::memory_order_acquire);
  return state;
}

OneToOneRouter::OneToOneRouter(std::vector<std::string> models)
    : models_(std::move(models)) {
  index_.reserve(models_.size());
  for (size_t i = 0; i < models_.size(); ++i) index_[models_[i]] = static_cast<int>(i);
}

Result<int> OneToOneRouter::Route(const std::string& model_id, TimeMicros now) {
  (void)now;
  auto it = index_.find(model_id);
  if (it == index_.end()) return Status::NotFound("unknown model: " + model_id);
  return it->second;
}

void OneToOneRouter::OnComplete(const std::string&, int, TimeMicros) {}

Result<int> AllInOneRouter::Route(const std::string&, TimeMicros) { return 0; }

void AllInOneRouter::OnComplete(const std::string&, int, TimeMicros) {}

}  // namespace sesemi::fnpacker
