#include "fnpacker/router.h"

#include <algorithm>
#include <mutex>

namespace sesemi::fnpacker {

FnPackerRouter::FnPackerRouter(FnPoolSpec spec)
    : spec_(std::move(spec)), endpoints_(spec_.num_endpoints) {
  models_.reserve(spec_.models.size());
  for (const std::string& m : spec_.models) {
    models_.emplace(m, std::make_unique<ModelState>());
  }
}

Result<int> FnPackerRouter::Route(const std::string& model_id, TimeMicros now) {
  // Lock-free lookup: the key set is an immutable snapshot taken at
  // construction, so find() races only with other readers.
  auto it = models_.find(model_id);
  if (it == models_.end()) {
    return Status::NotFound("model not in Fnpool: " + model_id);
  }

  std::unique_lock<std::shared_mutex> lock(mutex_);
  ModelState& model = *it->second;

  int chosen = -1;
  if (model.pending > 0 && model.endpoint >= 0) {
    // Sticky: in-flight work pins the model to its endpoint and marks it
    // exclusive, so a busy model never interleaves with others.
    chosen = model.endpoint;
    endpoints_[chosen].exclusive_model = model_id;
  } else {
    // Prefer the endpoint already serving this model (loaded state), if free.
    if (model.endpoint >= 0) {
      const EndpointState& e = endpoints_[model.endpoint];
      if (e.pending == 0 &&
          (e.exclusive_model.empty() || e.exclusive_model == model_id)) {
        chosen = model.endpoint;
      }
    }
    if (chosen < 0) {
      for (size_t i = 0; i < endpoints_.size(); ++i) {
        const EndpointState& e = endpoints_[i];
        const bool unmarked_idle =
            e.pending == 0 &&
            (e.exclusive_model.empty() || e.exclusive_model == model_id);
        const bool expired_exclusive =
            e.pending == 0 && !e.exclusive_model.empty() &&
            e.last_request >= 0 &&
            now - e.last_request >= spec_.exclusive_idle_timeout;
        if (unmarked_idle || expired_exclusive) {
          chosen = static_cast<int>(i);
          if (expired_exclusive) endpoints_[i].exclusive_model.clear();
          break;
        }
      }
    }
    if (chosen < 0) {
      // Every endpoint busy: fall back to the least-loaded one.
      chosen = 0;
      for (size_t i = 1; i < endpoints_.size(); ++i) {
        if (endpoints_[i].pending < endpoints_[chosen].pending) {
          chosen = static_cast<int>(i);
        }
      }
      stats_.overflow++;
    }
  }

  EndpointState& endpoint = endpoints_[chosen];
  if (model.endpoint != chosen) stats_.model_switches += (model.endpoint >= 0);
  model.endpoint = chosen;
  model.pending++;
  model.last_invocation = now;
  endpoint.pending++;
  endpoint.last_request = now;
  stats_.routed++;
  return chosen;
}

void FnPackerRouter::OnComplete(const std::string& model_id, int endpoint,
                                TimeMicros now) {
  (void)now;
  auto it = models_.find(model_id);  // lock-free (immutable key set)
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (it != models_.end() && it->second->pending > 0) it->second->pending--;
  if (endpoint >= 0 && endpoint < static_cast<int>(endpoints_.size()) &&
      endpoints_[endpoint].pending > 0) {
    endpoints_[endpoint].pending--;
  }
}

RouterStats FnPackerRouter::stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return stats_;
}

ModelState FnPackerRouter::model_state(const std::string& model_id) const {
  auto it = models_.find(model_id);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return it == models_.end() ? ModelState{} : *it->second;
}

EndpointState FnPackerRouter::endpoint_state(int endpoint) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return endpoints_.at(endpoint);
}

OneToOneRouter::OneToOneRouter(std::vector<std::string> models)
    : models_(std::move(models)) {
  index_.reserve(models_.size());
  for (size_t i = 0; i < models_.size(); ++i) index_[models_[i]] = static_cast<int>(i);
}

Result<int> OneToOneRouter::Route(const std::string& model_id, TimeMicros now) {
  (void)now;
  auto it = index_.find(model_id);
  if (it == index_.end()) return Status::NotFound("unknown model: " + model_id);
  return it->second;
}

void OneToOneRouter::OnComplete(const std::string&, int, TimeMicros) {}

Result<int> AllInOneRouter::Route(const std::string&, TimeMicros) { return 0; }

void AllInOneRouter::OnComplete(const std::string&, int, TimeMicros) {}

}  // namespace sesemi::fnpacker
