#ifndef SESEMI_FNPACKER_ROUTER_H_
#define SESEMI_FNPACKER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace sesemi::fnpacker {

/// Per-model execution statistics FnPacker keeps (§IV-C): in-flight requests,
/// last invocation time, and which endpoint currently serves the model.
struct ModelState {
  int pending = 0;
  TimeMicros last_invocation = -1;
  int endpoint = -1;
};

/// Per-endpoint state: in-flight requests, exclusivity marker, last time a
/// request was sent to it.
struct EndpointState {
  int pending = 0;
  std::string exclusive_model;  ///< empty = unmarked
  TimeMicros last_request = -1;
  int breaker_failures = 0;     ///< consecutive failures recorded
  bool breaker_open = false;    ///< endpoint currently rejects traffic
};

/// Routing statistics for evaluation.
struct RouterStats {
  int routed = 0;
  int model_switches = 0;  ///< endpoint had to change serving model
  int overflow = 0;        ///< no preferred endpoint free; least-loaded fallback
  int breaker_opens = 0;       ///< closed/half-open -> open transitions
  int breaker_rejections = 0;  ///< routes refused because every endpoint open
};

/// Abstract request router: decides which function endpoint serves a request.
/// Pure policy — shared verbatim between the live platform and the
/// discrete-event simulator.
///
/// \threadsafety Implementations must allow Route and OnComplete to be called
/// concurrently from many request threads (the live platform drives them from
/// the fork-join pool).
class RequestRouter {
 public:
  virtual ~RequestRouter() = default;

  /// Pick an endpoint for a request to `model_id` arriving at `now`.
  virtual Result<int> Route(const std::string& model_id, TimeMicros now) = 0;

  /// Record completion of a request previously routed to `endpoint`.
  virtual void OnComplete(const std::string& model_id, int endpoint,
                          TimeMicros now) = 0;

  /// Record a *failed* completion. Routers with endpoint health tracking
  /// (circuit breakers) override this; the default treats a failure like any
  /// other completion.
  virtual void OnFailure(const std::string& model_id, int endpoint,
                         TimeMicros now) {
    OnComplete(model_id, endpoint, now);
  }

  /// Total closed/half-open -> open breaker transitions (0 for routers
  /// without breakers). Feeds PlatformStats::breaker_opens.
  virtual uint64_t breaker_opens() const { return 0; }

  virtual int num_endpoints() const = 0;
  virtual const char* name() const = 0;
};

/// An Fnpool: the models packed together and the endpoint budget
/// (the paper's "set of models and the memory budget for an instance").
struct FnPoolSpec {
  std::vector<std::string> models;
  int num_endpoints = 2;
  /// "large interval" after which an exclusive endpoint may be reassigned.
  TimeMicros exclusive_idle_timeout = SecondsToMicros(30);

  // Per-endpoint circuit breaker (0 = disabled, the default: no overhead on
  // the routing fast path).
  /// Consecutive failures that open an endpoint's breaker.
  int breaker_failure_threshold = 0;
  /// How long an open breaker rejects traffic before letting probes through.
  TimeMicros breaker_open_interval = SecondsToMicros(1);
  /// Probe requests admitted in the half-open state; one success closes the
  /// breaker, one failure reopens it.
  int breaker_half_open_probes = 1;
};

/// FnPacker's scheduler (§IV-C): requests to models with pending responses
/// stick to their endpoint (marked exclusive); requests to idle models go to
/// the first endpoint not busy serving another model, where "not busy" means
/// (a) no pending work and not exclusive to someone else, or (b) exclusive but
/// idle past the timeout. Hot models therefore keep private endpoints while
/// cold models share, which is exactly what cuts cold starts under
/// infrequent multi-model traffic (Tables III & IV).
///
/// \par Concurrency design
/// Fully lock-free routing. The model table is an RCU-style immutable
/// snapshot: the set of keys is fixed at construction (Route never inserts),
/// so the per-request hash lookup runs with no lock at all. The routing
/// *decision* claims an endpoint through a per-endpoint CAS slot: each
/// endpoint packs its {exclusive-model index, pending count} into one atomic
/// 64-bit word, and a claim is a single compare-exchange that atomically
/// verifies the endpoint is idle/compatible AND takes it. Decisions for
/// disjoint models therefore proceed in parallel on different endpoints —
/// there is no single writer lock to serialize behind. The interleaving
/// guarantee (never place model A on an endpoint with model B's work in
/// flight, outside the overflow fallback) holds by CAS atomicity for idle
/// claims; the sticky path additionally requires the endpoint to still have
/// in-flight work (conditional CAS), falling back to a fresh decision when
/// it drained. One narrow window remains lock-free by design: if ALL of a
/// model's work completes and another model's idle claim lands between a
/// sticky requester's model-state read and its endpoint CAS, the two
/// briefly share that endpoint — the same bounded sharing the overflow
/// fallback already permits under load, self-correcting on the next route.
/// Per-model counters and stats are plain atomics; inspection reads them
/// without stalling the request path.
///
/// \threadsafety All methods are safe to call concurrently.
class FnPackerRouter final : public RequestRouter {
 public:
  explicit FnPackerRouter(FnPoolSpec spec);

  Result<int> Route(const std::string& model_id, TimeMicros now) override;
  void OnComplete(const std::string& model_id, int endpoint, TimeMicros now) override;
  void OnFailure(const std::string& model_id, int endpoint, TimeMicros now) override;
  uint64_t breaker_opens() const override {
    return static_cast<uint64_t>(breaker_opens_.load(std::memory_order_relaxed));
  }
  int num_endpoints() const override { return static_cast<int>(endpoints_.size()); }
  const char* name() const override { return "fnpacker"; }

  RouterStats stats() const;
  /// Inspection helpers for tests (consistent per-field snapshots).
  ModelState model_state(const std::string& model_id) const;
  EndpointState endpoint_state(int endpoint) const;

  /// Re-home RouterStats into `registry` (`sesemi_router_*` names) as a
  /// scrape-time collector; deregistration is automatic at destruction.
  void RegisterMetrics(obs::MetricsRegistry* registry);

 private:
  /// `exclusive` value meaning "no exclusivity mark".
  static constexpr uint32_t kNoModel = 0xffffffffu;

  /// Per-model mutable state (atomics; the map structure itself is frozen at
  /// construction, so lookups are lock-free).
  struct ModelSlot {
    uint32_t index = 0;  ///< position in spec_.models (exclusivity id)
    std::atomic<int> pending{0};
    std::atomic<int> endpoint{-1};
    std::atomic<TimeMicros> last_invocation{-1};
  };

  /// Circuit-breaker states (packed into EndpointSlot::breaker).
  static constexpr uint32_t kBreakerClosed = 0;
  static constexpr uint32_t kBreakerOpen = 1;
  static constexpr uint32_t kBreakerHalfOpen = 2;

  /// Per-endpoint CAS slot: word = {exclusive model index:32 | pending:32},
  /// mutated only through compare-exchange so idleness checks and claims are
  /// one atomic step. last_request is advisory (exclusivity expiry) and
  /// tracked separately. breaker = {state:8 | half-open probes:24 |
  /// consecutive failures:32}, same single-word CAS discipline so a state
  /// check and a probe consumption are one atomic step.
  struct EndpointSlot {
    std::atomic<uint64_t> word{PackWord(kNoModel, 0)};
    std::atomic<TimeMicros> last_request{-1};
    std::atomic<uint64_t> breaker{0};
    std::atomic<TimeMicros> open_until{0};
  };

  static constexpr uint64_t PackBreaker(uint32_t state, uint32_t probes,
                                        uint32_t failures) {
    return (static_cast<uint64_t>(state) << 56) |
           (static_cast<uint64_t>(probes & 0xffffffu) << 32) | failures;
  }
  static constexpr uint32_t BreakerState(uint64_t word) {
    return static_cast<uint32_t>(word >> 56);
  }
  static constexpr uint32_t BreakerProbes(uint64_t word) {
    return static_cast<uint32_t>(word >> 32) & 0xffffffu;
  }
  static constexpr uint32_t BreakerFailures(uint64_t word) {
    return static_cast<uint32_t>(word);
  }

  static constexpr uint64_t PackWord(uint32_t exclusive, uint32_t pending) {
    return (static_cast<uint64_t>(exclusive) << 32) | pending;
  }
  static constexpr uint32_t WordExclusive(uint64_t word) {
    return static_cast<uint32_t>(word >> 32);
  }
  static constexpr uint32_t WordPending(uint64_t word) {
    return static_cast<uint32_t>(word);
  }

  /// Atomically add one pending request to `endpoint`, preserving its mark
  /// (the overflow path, where idleness is not required).
  void AddPending(EndpointSlot* endpoint, uint32_t mark_exclusive);

  /// Sticky claim: add one pending request and set `mark` exclusive, but
  /// only while the endpoint still has work in flight. Returns false when
  /// the endpoint drained — the caller re-decides from scratch.
  bool TryStickyAddPending(EndpointSlot* endpoint, uint32_t mark);

  /// Does `endpoint`'s breaker admit a request at `now`? May consume a
  /// half-open probe, so Route memoizes the answer per endpoint per call.
  bool BreakerAdmit(EndpointSlot* endpoint, TimeMicros now);
  void BreakerOnSuccess(EndpointSlot* endpoint);
  void BreakerOnFailure(EndpointSlot* endpoint, TimeMicros now);

  /// Shared pending-count bookkeeping for OnComplete / OnFailure.
  void CompleteInternal(const std::string& model_id, int endpoint);

  bool breaker_enabled() const { return spec_.breaker_failure_threshold > 0; }

  FnPoolSpec spec_;

  /// Key set frozen at construction; values are atomic slots.
  std::unordered_map<std::string, std::unique_ptr<ModelSlot>> models_;

  std::vector<std::unique_ptr<EndpointSlot>> endpoints_;

  std::atomic<int> routed_{0};
  std::atomic<int> model_switches_{0};
  std::atomic<int> overflow_{0};
  std::atomic<int> breaker_opens_{0};
  std::atomic<int> breaker_rejections_{0};

  /// Deregisters the stats collector before the counters it reads die.
  obs::ScopedCollector metrics_collector_;
};

/// Baseline: one endpoint per model (no sharing; every cold model cold-starts
/// its own sandbox).
///
/// \threadsafety Immutable after construction; all methods safe concurrently.
class OneToOneRouter final : public RequestRouter {
 public:
  explicit OneToOneRouter(std::vector<std::string> models);

  Result<int> Route(const std::string& model_id, TimeMicros now) override;
  void OnComplete(const std::string& model_id, int endpoint, TimeMicros now) override;
  int num_endpoints() const override { return static_cast<int>(models_.size()); }
  const char* name() const override { return "one-to-one"; }

 private:
  std::vector<std::string> models_;
  std::unordered_map<std::string, int> index_;
};

/// Baseline: a single endpoint serves every model (maximal sharing; endless
/// model switching under interleaved traffic — Figure 7).
///
/// \threadsafety Stateless; all methods safe concurrently.
class AllInOneRouter final : public RequestRouter {
 public:
  Result<int> Route(const std::string& model_id, TimeMicros now) override;
  void OnComplete(const std::string& model_id, int endpoint, TimeMicros now) override;
  int num_endpoints() const override { return 1; }
  const char* name() const override { return "all-in-one"; }
};

}  // namespace sesemi::fnpacker

#endif  // SESEMI_FNPACKER_ROUTER_H_
