#ifndef SESEMI_FNPACKER_ROUTER_H_
#define SESEMI_FNPACKER_ROUTER_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

namespace sesemi::fnpacker {

/// Per-model execution statistics FnPacker keeps (§IV-C): in-flight requests,
/// last invocation time, and which endpoint currently serves the model.
struct ModelState {
  int pending = 0;
  TimeMicros last_invocation = -1;
  int endpoint = -1;
};

/// Per-endpoint state: in-flight requests, exclusivity marker, last time a
/// request was sent to it.
struct EndpointState {
  int pending = 0;
  std::string exclusive_model;  ///< empty = unmarked
  TimeMicros last_request = -1;
};

/// Routing statistics for evaluation.
struct RouterStats {
  int routed = 0;
  int model_switches = 0;  ///< endpoint had to change serving model
  int overflow = 0;        ///< no preferred endpoint free; least-loaded fallback
};

/// Abstract request router: decides which function endpoint serves a request.
/// Pure policy — shared verbatim between the live platform and the
/// discrete-event simulator.
///
/// \threadsafety Implementations must allow Route and OnComplete to be called
/// concurrently from many request threads (the live platform drives them from
/// the fork-join pool).
class RequestRouter {
 public:
  virtual ~RequestRouter() = default;

  /// Pick an endpoint for a request to `model_id` arriving at `now`.
  virtual Result<int> Route(const std::string& model_id, TimeMicros now) = 0;

  /// Record completion of a request previously routed to `endpoint`.
  virtual void OnComplete(const std::string& model_id, int endpoint,
                          TimeMicros now) = 0;

  virtual int num_endpoints() const = 0;
  virtual const char* name() const = 0;
};

/// An Fnpool: the models packed together and the endpoint budget
/// (the paper's "set of models and the memory budget for an instance").
struct FnPoolSpec {
  std::vector<std::string> models;
  int num_endpoints = 2;
  /// "large interval" after which an exclusive endpoint may be reassigned.
  TimeMicros exclusive_idle_timeout = SecondsToMicros(30);
};

/// FnPacker's scheduler (§IV-C): requests to models with pending responses
/// stick to their endpoint (marked exclusive); requests to idle models go to
/// the first endpoint not busy serving another model, where "not busy" means
/// (a) no pending work and not exclusive to someone else, or (b) exclusive but
/// idle past the timeout. Hot models therefore keep private endpoints while
/// cold models share, which is exactly what cuts cold starts under
/// infrequent multi-model traffic (Tables III & IV).
///
/// \par Concurrency design
/// The model table is an RCU-style immutable snapshot: the set of keys is
/// fixed at construction (Route never inserts), so the per-request hash
/// lookup runs with no lock at all — concurrent lookups race only against
/// other readers. Only the routing *decision* — which mutates pending
/// counters and exclusivity marks and must observe a consistent endpoint
/// view — serializes, on a writer lock held for a few dozen instructions.
/// Inspection (stats, state accessors) takes the shared side, so monitors
/// never stall the request path.
///
/// \threadsafety All methods are safe to call concurrently.
class FnPackerRouter final : public RequestRouter {
 public:
  explicit FnPackerRouter(FnPoolSpec spec);

  Result<int> Route(const std::string& model_id, TimeMicros now) override;
  void OnComplete(const std::string& model_id, int endpoint, TimeMicros now) override;
  int num_endpoints() const override { return static_cast<int>(endpoints_.size()); }
  const char* name() const override { return "fnpacker"; }

  RouterStats stats() const;
  /// Inspection helpers for tests.
  ModelState model_state(const std::string& model_id) const;
  EndpointState endpoint_state(int endpoint) const;

 private:
  FnPoolSpec spec_;

  /// Key set frozen at construction; values are mutable slots guarded by
  /// `mutex_`. Lookups (find) touch only the immutable table structure and
  /// therefore run lock-free.
  std::unordered_map<std::string, std::unique_ptr<ModelState>> models_;

  /// Writer side: Route / OnComplete (mutate counters); reader side: stats
  /// and state inspection.
  mutable std::shared_mutex mutex_;
  std::vector<EndpointState> endpoints_;  ///< guarded by mutex_
  RouterStats stats_;                     ///< guarded by mutex_
};

/// Baseline: one endpoint per model (no sharing; every cold model cold-starts
/// its own sandbox).
///
/// \threadsafety Immutable after construction; all methods safe concurrently.
class OneToOneRouter final : public RequestRouter {
 public:
  explicit OneToOneRouter(std::vector<std::string> models);

  Result<int> Route(const std::string& model_id, TimeMicros now) override;
  void OnComplete(const std::string& model_id, int endpoint, TimeMicros now) override;
  int num_endpoints() const override { return static_cast<int>(models_.size()); }
  const char* name() const override { return "one-to-one"; }

 private:
  std::vector<std::string> models_;
  std::unordered_map<std::string, int> index_;
};

/// Baseline: a single endpoint serves every model (maximal sharing; endless
/// model switching under interleaved traffic — Figure 7).
///
/// \threadsafety Stateless; all methods safe concurrently.
class AllInOneRouter final : public RequestRouter {
 public:
  Result<int> Route(const std::string& model_id, TimeMicros now) override;
  void OnComplete(const std::string& model_id, int endpoint, TimeMicros now) override;
  int num_endpoints() const override { return 1; }
  const char* name() const override { return "all-in-one"; }
};

}  // namespace sesemi::fnpacker

#endif  // SESEMI_FNPACKER_ROUTER_H_
