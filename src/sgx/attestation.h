#ifndef SESEMI_SGX_ATTESTATION_H_
#define SESEMI_SGX_ATTESTATION_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/bytes.h"
#include "common/result.h"
#include "sgx/measurement.h"

namespace sesemi::sgx {

/// SGX hardware generation. SGX1 (client parts, 128 MB EPC, EPID attestation
/// via the Intel Attestation Service) vs. SGX2 (Xeon scalable, large EPC,
/// ECDSA/DCAP attestation with a local PCCS cache) — the two hardware
/// configurations the paper evaluates.
enum class SgxGeneration { kSgx1, kSgx2 };

/// Attestation scheme; in the paper SGX1 uses EPID (round trip to Intel over
/// the internet) and SGX2 uses ECDSA/DCAP (local quoting with cached
/// collateral), which is why their costs differ (Appendix Figure 16).
enum class AttestationType { kEpid, kEcdsa };

const char* ToString(SgxGeneration gen);
const char* ToString(AttestationType type);

/// Size of the user-data field bound into a report (SGX uses 64 bytes; we
/// store a SHA-256 of the channel key plus 32 spare bytes, like RA-TLS).
constexpr size_t kReportDataSize = 64;
using ReportData = std::array<uint8_t, kReportDataSize>;

/// A local attestation report: produced by an enclave (EREPORT analogue),
/// MAC'd with a platform key so only the platform's quoting infrastructure
/// can vouch for it.
struct AttestationReport {
  Measurement mrenclave;
  SgxGeneration generation = SgxGeneration::kSgx2;
  uint64_t platform_id = 0;
  ReportData report_data{};
  Bytes mac;

  Bytes SerializeForMac() const;
  Bytes Serialize() const;
  static Result<AttestationReport> Parse(ByteSpan wire);
};

/// A remotely verifiable quote: a report counter-signed by the attestation
/// authority's provisioned key (Intel's role).
struct Quote {
  AttestationReport report;
  AttestationType type = AttestationType::kEcdsa;
  Bytes signature;

  Bytes Serialize() const;
  static Result<Quote> Parse(ByteSpan wire);
};

/// Simulated Intel: provisions per-platform keys at platform registration,
/// turns valid reports into quotes, and verifies quotes for relying parties
/// (standing in for IAS verification / DCAP collateral checks).
///
/// One process-wide authority instance is shared by every simulated platform
/// in a cluster, mirroring how all real SGX machines chain to Intel roots.
class AttestationAuthority {
 public:
  AttestationAuthority();

  /// Provision a new platform; returns its id. The platform key never leaves
  /// the authority + platform pair (the enclave MACs reports with it).
  uint64_t RegisterPlatform(SgxGeneration generation);

  /// The provisioned MAC key for `platform_id` (used by SgxPlatform when its
  /// enclaves produce reports). Fails for unknown platforms.
  Result<Bytes> PlatformKey(uint64_t platform_id) const;

  /// Validate the report MAC and wrap the report in a signed quote.
  Result<Quote> GenerateQuote(const AttestationReport& report) const;

  /// Verify a quote end-to-end: platform known, MAC valid, signature valid,
  /// generation consistent. Returns the embedded report on success.
  Result<AttestationReport> VerifyQuote(const Quote& quote) const;

 private:
  Bytes signing_key_;  // authority root (HMAC key in this simulation)
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, std::pair<SgxGeneration, Bytes>> platforms_;
  uint64_t next_platform_id_ = 1;
};

}  // namespace sesemi::sgx

#endif  // SESEMI_SGX_ATTESTATION_H_
