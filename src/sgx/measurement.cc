#include "sgx/measurement.h"

#include <algorithm>

namespace sesemi::sgx {

Measurement Measurement::FromHex(std::string_view hex) {
  Measurement m;
  Bytes b = HexDecode(hex);
  if (b.size() == kSize) {
    std::copy(b.begin(), b.end(), m.value_.begin());
  }
  return m;
}

bool Measurement::IsZero() const {
  return std::all_of(value_.begin(), value_.end(), [](uint8_t b) { return b == 0; });
}

Bytes EnclaveConfig::Serialize() const {
  ByteWriter w;
  w.WriteUint64(heap_size_bytes);
  w.WriteUint32(num_tcs);
  w.WriteUint8(sequential_mode ? 1 : 0);
  w.WriteUint8(disable_key_cache ? 1 : 0);
  w.WriteLengthPrefixedString(fixed_model_id);
  w.WriteUint32(round_scores_decimals);
  return std::move(w).Take();
}

EnclaveImage::EnclaveImage(std::string name,
                           std::vector<std::pair<std::string, Bytes>> code_units,
                           EnclaveConfig config)
    : name_(std::move(name)), config_(std::move(config)), code_size_(0) {
  std::sort(code_units.begin(), code_units.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // MRENCLAVE = H(EADD-style transcript): each code unit contributes its name
  // and content; the config contributes its canonical form. The enclave *name*
  // deliberately does not contribute — identity is code, not labels.
  crypto::Sha256 h;
  h.Update(ToBytes("sesemi-enclave-v1"));
  for (const auto& [unit_name, content] : code_units) {
    ByteWriter w;
    w.WriteLengthPrefixedString(unit_name);
    w.WriteLengthPrefixed(content);
    h.Update(w.bytes());
    code_size_ += content.size();
  }
  h.Update(config_.Serialize());
  mrenclave_ = Measurement(h.Finish());
}

}  // namespace sesemi::sgx
