#include "sgx/enclave.h"

#include "common/faultpoint.h"
#include "crypto/hmac.h"
#include "sgx/platform.h"

namespace sesemi::sgx {

TcsGuard& TcsGuard::operator=(TcsGuard&& other) noexcept {
  if (this != &other) {
    if (enclave_ != nullptr) enclave_->ExitEcall();
    enclave_ = other.enclave_;
    other.enclave_ = nullptr;
  }
  return *this;
}

TcsGuard::~TcsGuard() {
  if (enclave_ != nullptr) enclave_->ExitEcall();
}

Enclave::Enclave(EnclaveImage image, SgxPlatform* platform, uint64_t committed_bytes)
    : image_(std::move(image)), platform_(platform), committed_bytes_(committed_bytes) {}

Enclave::~Enclave() {
  platform_->OnEnclaveDestroyed(committed_bytes_);
}

TcsGuard Enclave::EnterEcall() {
  std::unique_lock<std::mutex> lock(tcs_mutex_);
  tcs_cv_.wait(lock, [&] {
    return tcs_in_use_ < static_cast<int>(image_.config().num_tcs);
  });
  ++tcs_in_use_;
  ecall_count_.fetch_add(1);
  return TcsGuard(this);
}

Result<TcsGuard> Enclave::TryEnterEcall() {
  std::lock_guard<std::mutex> lock(tcs_mutex_);
  if (tcs_in_use_ >= static_cast<int>(image_.config().num_tcs)) {
    return Status::ResourceExhausted("out of TCS");
  }
  ++tcs_in_use_;
  ecall_count_.fetch_add(1);
  return TcsGuard(this);
}

void Enclave::ExitEcall() {
  {
    std::lock_guard<std::mutex> lock(tcs_mutex_);
    --tcs_in_use_;
  }
  tcs_cv_.notify_one();
}

int Enclave::busy_tcs() const {
  std::lock_guard<std::mutex> lock(tcs_mutex_);
  return tcs_in_use_;
}

Status Enclave::AllocateTrusted(uint64_t bytes) {
  SESEMI_FAULT_POINT(faults::kEnclaveHeapAlloc);
  uint64_t used = heap_used_.fetch_add(bytes) + bytes;
  if (used > image_.config().heap_size_bytes) {
    heap_used_.fetch_sub(bytes);
    return Status::ResourceExhausted("enclave heap exhausted");
  }
  // Racy max update is fine: peak is a monotone statistic.
  uint64_t peak = heap_peak_.load();
  while (used > peak && !heap_peak_.compare_exchange_weak(peak, used)) {
  }
  return Status::OK();
}

void Enclave::FreeTrusted(uint64_t bytes) {
  uint64_t used = heap_used_.load();
  uint64_t clamped = bytes > used ? used : bytes;
  heap_used_.fetch_sub(clamped);
}

AttestationReport Enclave::CreateReport(ByteSpan data) const {
  AttestationReport report;
  report.mrenclave = image_.mrenclave();
  report.generation = platform_->generation();
  report.platform_id = platform_->platform_id();
  if (data.size() <= kReportDataSize) {
    std::copy(data.begin(), data.end(), report.report_data.begin());
  } else {
    Bytes digest = crypto::Sha256::HashToBytes(data);
    std::copy(digest.begin(), digest.end(), report.report_data.begin());
  }
  report.mac = crypto::HmacSha256ToBytes(platform_->platform_key(),
                                         report.SerializeForMac());
  return report;
}

}  // namespace sesemi::sgx
