#include "sgx/attestation.h"

#include "crypto/hmac.h"
#include "crypto/random.h"

namespace sesemi::sgx {

const char* ToString(SgxGeneration gen) {
  return gen == SgxGeneration::kSgx1 ? "SGX1" : "SGX2";
}

const char* ToString(AttestationType type) {
  return type == AttestationType::kEpid ? "EPID" : "ECDSA";
}

Bytes AttestationReport::SerializeForMac() const {
  ByteWriter w;
  w.WriteBytes(mrenclave.span());
  w.WriteUint8(generation == SgxGeneration::kSgx1 ? 1 : 2);
  w.WriteUint64(platform_id);
  w.WriteBytes(ByteSpan(report_data.data(), report_data.size()));
  return std::move(w).Take();
}

Bytes AttestationReport::Serialize() const {
  ByteWriter w;
  w.WriteBytes(SerializeForMac());
  w.WriteLengthPrefixed(mac);
  return std::move(w).Take();
}

Result<AttestationReport> AttestationReport::Parse(ByteSpan wire) {
  ByteReader r(wire);
  AttestationReport report;
  Bytes mr;
  uint8_t gen = 0;
  if (!r.ReadBytes(Measurement::kSize, &mr) || !r.ReadUint8(&gen) ||
      !r.ReadUint64(&report.platform_id)) {
    return Status::Corruption("truncated attestation report");
  }
  crypto::Sha256Digest digest;
  std::copy(mr.begin(), mr.end(), digest.begin());
  report.mrenclave = Measurement(digest);
  if (gen != 1 && gen != 2) return Status::Corruption("bad SGX generation");
  report.generation = gen == 1 ? SgxGeneration::kSgx1 : SgxGeneration::kSgx2;
  Bytes rd;
  if (!r.ReadBytes(kReportDataSize, &rd) || !r.ReadLengthPrefixed(&report.mac)) {
    return Status::Corruption("truncated attestation report");
  }
  std::copy(rd.begin(), rd.end(), report.report_data.begin());
  return report;
}

Bytes Quote::Serialize() const {
  ByteWriter w;
  w.WriteUint8(type == AttestationType::kEpid ? 1 : 2);
  w.WriteLengthPrefixed(report.Serialize());
  w.WriteLengthPrefixed(signature);
  return std::move(w).Take();
}

Result<Quote> Quote::Parse(ByteSpan wire) {
  ByteReader r(wire);
  Quote q;
  uint8_t type = 0;
  Bytes report_wire;
  if (!r.ReadUint8(&type) || !r.ReadLengthPrefixed(&report_wire) ||
      !r.ReadLengthPrefixed(&q.signature)) {
    return Status::Corruption("truncated quote");
  }
  if (type != 1 && type != 2) return Status::Corruption("bad attestation type");
  q.type = type == 1 ? AttestationType::kEpid : AttestationType::kEcdsa;
  SESEMI_ASSIGN_OR_RETURN(q.report, AttestationReport::Parse(report_wire));
  return q;
}

AttestationAuthority::AttestationAuthority()
    : signing_key_(crypto::RandomBytes(32)) {}

uint64_t AttestationAuthority::RegisterPlatform(SgxGeneration generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = next_platform_id_++;
  platforms_[id] = {generation, crypto::RandomBytes(32)};
  return id;
}

Result<Bytes> AttestationAuthority::PlatformKey(uint64_t platform_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = platforms_.find(platform_id);
  if (it == platforms_.end()) return Status::NotFound("unknown SGX platform");
  return it->second.second;
}

Result<Quote> AttestationAuthority::GenerateQuote(
    const AttestationReport& report) const {
  Bytes platform_key;
  SgxGeneration generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = platforms_.find(report.platform_id);
    if (it == platforms_.end()) return Status::NotFound("unknown SGX platform");
    generation = it->second.first;
    platform_key = it->second.second;
  }
  if (generation != report.generation) {
    return Status::Unauthenticated("report generation does not match platform");
  }
  if (!crypto::VerifyHmacSha256(platform_key, report.SerializeForMac(), report.mac)) {
    return Status::Unauthenticated("report MAC invalid");
  }
  Quote q;
  q.report = report;
  q.type = generation == SgxGeneration::kSgx1 ? AttestationType::kEpid
                                              : AttestationType::kEcdsa;
  Bytes to_sign = report.SerializeForMac();
  to_sign.push_back(q.type == AttestationType::kEpid ? 1 : 2);
  q.signature = crypto::HmacSha256ToBytes(signing_key_, to_sign);
  return q;
}

Result<AttestationReport> AttestationAuthority::VerifyQuote(const Quote& quote) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = platforms_.find(quote.report.platform_id);
    if (it == platforms_.end()) return Status::Unauthenticated("unknown platform in quote");
    if (it->second.first != quote.report.generation) {
      return Status::Unauthenticated("quote generation mismatch");
    }
  }
  Bytes to_sign = quote.report.SerializeForMac();
  to_sign.push_back(quote.type == AttestationType::kEpid ? 1 : 2);
  Bytes expect = crypto::HmacSha256ToBytes(signing_key_, to_sign);
  if (!ConstantTimeEqual(expect, quote.signature)) {
    return Status::Unauthenticated("quote signature invalid");
  }
  return quote.report;
}

}  // namespace sesemi::sgx
