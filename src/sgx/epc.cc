#include "sgx/epc.h"

#include <algorithm>

namespace sesemi::sgx {

Status EpcManager::Commit(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (strict_ && committed_bytes_ + bytes > capacity_) {
    return Status::ResourceExhausted("EPC capacity exceeded");
  }
  committed_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, committed_bytes_);
  return Status::OK();
}

void EpcManager::Release(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  committed_bytes_ = bytes > committed_bytes_ ? 0 : committed_bytes_ - bytes;
}

uint64_t EpcManager::committed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return committed_bytes_;
}

uint64_t EpcManager::peak_committed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_bytes_;
}

double EpcManager::Utilization() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return 0.0;
  return static_cast<double>(committed_bytes_) / static_cast<double>(capacity_);
}

double EpcManager::PagingSlowdown() const {
  double util = Utilization();
  if (util <= 1.0) return 1.0;
  // Each unit of over-subscription adds a full capacity's worth of page
  // traffic; calibrated against the SGX1 MBNET curve in Figure 11b.
  return 1.0 + 2.0 * (util - 1.0);
}

}  // namespace sesemi::sgx
