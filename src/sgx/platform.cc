#include "sgx/platform.h"

namespace sesemi::sgx {

SgxPlatform::SgxPlatform(SgxGeneration generation, AttestationAuthority* authority,
                         uint64_t epc_bytes)
    : generation_(generation),
      authority_(authority),
      platform_id_(authority->RegisterPlatform(generation)),
      platform_key_(*authority->PlatformKey(platform_id_)),
      epc_(epc_bytes != 0 ? epc_bytes
                          : (generation == SgxGeneration::kSgx1 ? kSgx1EpcBytes
                                                                : kSgx2EpcBytes)) {}

Result<std::unique_ptr<Enclave>> SgxPlatform::CreateEnclave(
    const EnclaveImage& image) {
  uint64_t committed = image.code_size() + image.config().heap_size_bytes +
                       static_cast<uint64_t>(image.config().num_tcs) * kTcsStackBytes;
  SESEMI_RETURN_IF_ERROR(epc_.Commit(committed));
  enclave_count_.fetch_add(1);
  return std::unique_ptr<Enclave>(new Enclave(image, this, committed));
}

Result<Quote> SgxPlatform::GenerateQuote(const AttestationReport& report) const {
  if (report.platform_id != platform_id_) {
    return Status::InvalidArgument("report was not produced on this platform");
  }
  return authority_->GenerateQuote(report);
}

void SgxPlatform::OnEnclaveDestroyed(uint64_t committed_bytes) {
  epc_.Release(committed_bytes);
  enclave_count_.fetch_sub(1);
}

}  // namespace sesemi::sgx
