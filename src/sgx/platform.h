#ifndef SESEMI_SGX_PLATFORM_H_
#define SESEMI_SGX_PLATFORM_H_

#include <memory>

#include "common/result.h"
#include "sgx/attestation.h"
#include "sgx/enclave.h"
#include "sgx/epc.h"

namespace sesemi::sgx {

/// One SGX-capable machine: a generation, an EPC, and a provisioned platform
/// key chained to the attestation authority. Cluster simulations create one
/// per node.
class SgxPlatform {
 public:
  /// Registers the platform with `authority` and provisions its key.
  /// `epc_bytes` defaults to the generation's preset (128 MB / 64 GB).
  SgxPlatform(SgxGeneration generation, AttestationAuthority* authority,
              uint64_t epc_bytes = 0);

  /// Launch an enclave from `image`. Commits code + heap + per-TCS stack
  /// against the EPC (the whole enclave is committed at EINIT time, as on
  /// SGX1 and on SGX2 with pre-allocated EPC in the paper's configuration).
  Result<std::unique_ptr<Enclave>> CreateEnclave(const EnclaveImage& image);

  /// Ask the authority to quote a report produced by one of this platform's
  /// enclaves (QE analogue).
  Result<Quote> GenerateQuote(const AttestationReport& report) const;

  SgxGeneration generation() const { return generation_; }
  AttestationType attestation_type() const {
    return generation_ == SgxGeneration::kSgx1 ? AttestationType::kEpid
                                               : AttestationType::kEcdsa;
  }
  uint64_t platform_id() const { return platform_id_; }
  const Bytes& platform_key() const { return platform_key_; }
  EpcManager& epc() { return epc_; }
  const EpcManager& epc() const { return epc_; }
  AttestationAuthority* authority() const { return authority_; }

  /// Number of live enclaves on this platform.
  int enclave_count() const { return enclave_count_.load(); }

 private:
  friend class Enclave;
  void OnEnclaveDestroyed(uint64_t committed_bytes);

  SgxGeneration generation_;
  AttestationAuthority* authority_;
  uint64_t platform_id_;
  Bytes platform_key_;
  EpcManager epc_;
  std::atomic<int> enclave_count_{0};
};

/// Per-thread trusted stack size used in EPC commitment accounting (SDK
/// default order of magnitude).
constexpr uint64_t kTcsStackBytes = 256 * 1024;

}  // namespace sesemi::sgx

#endif  // SESEMI_SGX_PLATFORM_H_
