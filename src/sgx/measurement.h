#ifndef SESEMI_SGX_MEASUREMENT_H_
#define SESEMI_SGX_MEASUREMENT_H_

#include <array>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace sesemi::sgx {

/// MRENCLAVE-style enclave measurement: a SHA-256 over the enclave's code
/// pages and launch configuration. Matching the paper (§III, Appendix B), the
/// measurement covers only the code for loading and executing models — never
/// model content, keys, or request data — so owners and users can derive the
/// expected value independently from the published enclave build.
class Measurement {
 public:
  static constexpr size_t kSize = crypto::kSha256DigestSize;

  Measurement() : value_{} {}
  explicit Measurement(const crypto::Sha256Digest& digest) {
    std::copy(digest.begin(), digest.end(), value_.begin());
  }

  /// Parse from 64-char hex; returns a zero measurement on malformed input.
  static Measurement FromHex(std::string_view hex);

  const std::array<uint8_t, kSize>& value() const { return value_; }
  ByteSpan span() const { return ByteSpan(value_.data(), value_.size()); }
  std::string ToHex() const { return HexEncode(span()); }
  bool IsZero() const;

  bool operator==(const Measurement& o) const { return value_ == o.value_; }
  bool operator!=(const Measurement& o) const { return !(*this == o); }
  bool operator<(const Measurement& o) const { return value_ < o.value_; }

 private:
  std::array<uint8_t, kSize> value_;
};

/// Configuration baked into the enclave identity. These knobs are "part of the
/// enclave codes" in the paper's words (§V): changing any of them yields a
/// different MRENCLAVE, which is how KeyService access control distinguishes,
/// e.g., the sequential-isolation build from the concurrent build.
struct EnclaveConfig {
  uint64_t heap_size_bytes = 64ull << 20;  ///< trusted heap budget
  uint32_t num_tcs = 1;                    ///< max concurrent ECALL threads
  bool sequential_mode = false;            ///< Table II: strict request isolation
  bool disable_key_cache = false;          ///< §V: no cross-request key reuse
  std::string fixed_model_id;              ///< non-empty: enclave serves one model
  uint32_t round_scores_decimals = 0;      ///< §IV-D output-rounding policy

  /// Canonical serialization folded into the measurement.
  Bytes Serialize() const;
};

/// A built enclave binary: named code units plus launch configuration.
/// EnclaveImage is to this simulator what a signed .so is to the SGX SDK.
class EnclaveImage {
 public:
  /// `code_units` are (name, bytes) pairs representing the trusted code pages;
  /// order is canonicalized by name so builds are reproducible.
  EnclaveImage(std::string name,
               std::vector<std::pair<std::string, Bytes>> code_units,
               EnclaveConfig config);

  const std::string& name() const { return name_; }
  const EnclaveConfig& config() const { return config_; }
  const Measurement& mrenclave() const { return mrenclave_; }

  /// Total bytes of code pages (contributes to enclave committed memory).
  uint64_t code_size() const { return code_size_; }

 private:
  std::string name_;
  EnclaveConfig config_;
  Measurement mrenclave_;
  uint64_t code_size_;
};

}  // namespace sesemi::sgx

#endif  // SESEMI_SGX_MEASUREMENT_H_
