#ifndef SESEMI_SGX_ENCLAVE_H_
#define SESEMI_SGX_ENCLAVE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "common/result.h"
#include "sgx/attestation.h"
#include "sgx/measurement.h"

namespace sesemi::sgx {

class SgxPlatform;
class Enclave;

/// RAII handle for a Thread Control Structure slot. A thread must hold one
/// while executing trusted code; the pool bounds in-enclave concurrency to
/// the number of TCS baked into the image (paper §II-A, §IV-B).
class TcsGuard {
 public:
  TcsGuard() : enclave_(nullptr) {}
  TcsGuard(TcsGuard&& other) noexcept : enclave_(other.enclave_) {
    other.enclave_ = nullptr;
  }
  TcsGuard& operator=(TcsGuard&& other) noexcept;
  TcsGuard(const TcsGuard&) = delete;
  TcsGuard& operator=(const TcsGuard&) = delete;
  ~TcsGuard();

  bool held() const { return enclave_ != nullptr; }

 private:
  friend class Enclave;
  explicit TcsGuard(Enclave* enclave) : enclave_(enclave) {}
  Enclave* enclave_;
};

/// A launched enclave instance on a simulated SGX platform.
///
/// Provides the hardware-ish contract trusted application code builds on:
///  - TCS-bounded entry (EnterEcall / TryEnterEcall)
///  - trusted-heap accounting against the image's heap budget, with peak
///    tracking (feeds the Figure 10 memory-saving measurements)
///  - report generation bound to this platform (EREPORT analogue)
///  - ECALL/OCALL boundary counters for overhead analysis
///
/// The trusted application logic itself (KeyService, SeMIRT) lives in the
/// respective modules and charges its memory here.
class Enclave {
 public:
  ~Enclave();
  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  const EnclaveImage& image() const { return image_; }
  const Measurement& mrenclave() const { return image_.mrenclave(); }
  SgxPlatform* platform() const { return platform_; }

  /// Block until a TCS slot is free, then enter. Counts one ECALL.
  TcsGuard EnterEcall();

  /// Non-blocking entry; fails with ResourceExhausted when all TCS are busy
  /// (SGX_ERROR_OUT_OF_TCS in the SDK).
  Result<TcsGuard> TryEnterEcall();

  /// Charge `bytes` of trusted heap. Fails with ResourceExhausted when the
  /// allocation would exceed the image's heap budget (enclave OOM).
  Status AllocateTrusted(uint64_t bytes);

  /// Return trusted heap bytes.
  void FreeTrusted(uint64_t bytes);

  /// Current / peak trusted heap usage in bytes.
  uint64_t heap_used() const { return heap_used_.load(); }
  uint64_t heap_peak() const { return heap_peak_.load(); }

  /// Total committed enclave memory (code + full heap budget), i.e. what the
  /// EPC pays for this enclave.
  uint64_t committed_bytes() const { return committed_bytes_; }

  /// Produce a report with `data` bound into it. `data` may be shorter than
  /// kReportDataSize; it is zero-padded (longer inputs are hashed first).
  AttestationReport CreateReport(ByteSpan data) const;

  /// Record an OCALL made by trusted code.
  void RecordOcall() { ocall_count_.fetch_add(1); }

  uint64_t ecall_count() const { return ecall_count_.load(); }
  uint64_t ocall_count() const { return ocall_count_.load(); }
  int busy_tcs() const;

 private:
  friend class SgxPlatform;
  friend class TcsGuard;
  Enclave(EnclaveImage image, SgxPlatform* platform, uint64_t committed_bytes);

  void ExitEcall();

  EnclaveImage image_;
  SgxPlatform* platform_;
  uint64_t committed_bytes_;

  mutable std::mutex tcs_mutex_;
  std::condition_variable tcs_cv_;
  int tcs_in_use_ = 0;

  std::atomic<uint64_t> heap_used_{0};
  std::atomic<uint64_t> heap_peak_{0};
  std::atomic<uint64_t> ecall_count_{0};
  std::atomic<uint64_t> ocall_count_{0};
};

}  // namespace sesemi::sgx

#endif  // SESEMI_SGX_ENCLAVE_H_
