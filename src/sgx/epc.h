#ifndef SESEMI_SGX_EPC_H_
#define SESEMI_SGX_EPC_H_

#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace sesemi::sgx {

/// Enclave Page Cache accounting for one physical machine.
///
/// SGX1 machines cap the EPC at 128 MB; exceeding it triggers kernel paging of
/// enclave pages, which the paper shows dominates latency (Figure 11b). SGX2
/// machines configure up to 64 GB, shifting the bottleneck to CPU (§VI-B).
/// This manager tracks committed bytes, exposes an over-subscription ratio the
/// cost model converts into a paging slowdown, and enforces nothing by default
/// (like real hardware, which pages rather than fails) unless `strict` is set.
class EpcManager {
 public:
  explicit EpcManager(uint64_t capacity_bytes, bool strict = false)
      : capacity_(capacity_bytes), strict_(strict) {}

  /// Commit pages for an enclave. In strict mode fails when the commitment
  /// would exceed capacity; otherwise always succeeds and records pressure.
  Status Commit(uint64_t bytes);

  /// Release previously committed pages.
  void Release(uint64_t bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t committed() const;
  uint64_t peak_committed() const;

  /// committed / capacity; > 1.0 means the machine is paging enclave memory.
  double Utilization() const;

  /// Multiplicative slowdown for enclave memory access under EPC pressure.
  /// 1.0 while within capacity; grows linearly with over-subscription,
  /// matching the near-linear latency growth in Figure 11b once the total
  /// enclave memory exceeds the EPC limit.
  double PagingSlowdown() const;

 private:
  uint64_t capacity_;
  bool strict_;
  mutable std::mutex mutex_;
  uint64_t committed_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
};

/// EPC capacity presets from the paper's experimental setup (§VI).
constexpr uint64_t kSgx1EpcBytes = 128ull << 20;  // 128 MB
constexpr uint64_t kSgx2EpcBytes = 64ull << 30;   // 64 GB

}  // namespace sesemi::sgx

#endif  // SESEMI_SGX_EPC_H_
