#ifndef SESEMI_SERVERLESS_PLATFORM_H_
#define SESEMI_SERVERLESS_PLATFORM_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/parallel_for.h"
#include "common/result.h"
#include "common/rt_executor.h"
#include "fnpacker/router.h"
#include "keyservice/keyservice.h"
#include "obs/metrics.h"
#include "sched/scheduler.h"
#include "semirt/semirt.h"
#include "serverless/recovery.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

namespace sesemi::serverless {

/// Per-node execution-tier configuration (docs/ARCHITECTURE.md "Execution
/// tiers"). Disabled (the default) is behaviorally identical to the
/// single-tier dispatcher: every class rides the shared fork-join pool.
struct RtTierConfig {
  bool enabled = false;
  /// Priority classes [0, classes) route to the RT tier; the rest keep the
  /// coalesced bulk path. Clamped to [1, kNumPriorityClasses].
  int classes = 1;
  /// The lanes themselves: count, pinning, handoff ring, bulk clamp.
  RtExecutorConfig executor;
};

/// Platform-level configuration (the OpenWhisk knobs from Table V).
struct PlatformConfig {
  int num_nodes = 1;
  uint64_t invoker_memory_bytes = 4ull << 30;  ///< per-node sandbox budget
  TimeMicros keep_alive = SecondsToMicros(180);
  sgx::SgxGeneration generation = sgx::SgxGeneration::kSgx2;
  /// Upper bound on concurrently *executing* InvokeAsync dispatches (the
  /// in-flight window = number of dispatcher tasks pulling from the request
  /// scheduler). Submissions beyond it queue inside the scheduler in policy
  /// order — InvokeAsync itself never blocks. 0 = 2 x ParallelismDegree().
  int max_inflight = 0;
  /// Request scheduler: ordering policy (FIFO / weighted-fair / EDF) and
  /// global admission limits. Per-function weights, rate limits, and batch
  /// caps ride on FunctionSpec::sched. When `scheduler.limits.max_queued`
  /// is 0 the platform installs a default backlog bound of 256 x the
  /// in-flight window, so an overloaded platform sheds (typed
  /// ResourceExhausted) instead of queueing unboundedly — set an explicit
  /// large value to lift it.
  sched::SchedulerConfig scheduler;
  /// Failure model: enclave poisoning/quarantine/relaunch, idempotent-stage
  /// retries, and execution-time deadline cuts (see serverless/recovery.h).
  RecoveryConfig recovery;
  /// Latency-class execution tiers: dedicated pinned RT lanes for the
  /// interactive classes, bypassing the shared pool and the batcher.
  RtTierConfig rt;
};

/// A deployed function: a name bound to a SeMIRT (or baseline) runtime
/// configuration and a container memory budget.
struct FunctionSpec {
  std::string name;
  semirt::SemirtOptions options;
  /// Memory charged against the invoker per container; rounded up to the
  /// 128 MB provisioning granularity.
  uint64_t container_memory_bytes = 256ull << 20;
  /// Scheduling parameters: weighted-fair share, token-bucket rate limit,
  /// backlog cap, same-model batch limit, default priority/deadline slack.
  sched::FunctionSchedParams sched;
};

/// Cumulative platform statistics.
struct PlatformStats {
  int invocations = 0;
  int cold_starts = 0;
  int reaped_containers = 0;
  // Recovery counters (full breakdown via recovery_stats()).
  uint64_t enclave_failures = 0;  ///< enclaves poisoned by a faulting ecall
  uint64_t relaunches = 0;        ///< successful cold starts after a poisoning
  uint64_t retries = 0;           ///< idempotent-stage retry attempts
  uint64_t breaker_opens = 0;     ///< from the attached router, if any
  uint64_t deadline_cuts = 0;     ///< invocations cut at execution time
};

/// Everything one asynchronous invocation produces: the sealed response (or
/// error), the per-stage timings, whether a container was provisioned, and
/// the scheduler's view of the request (admission order, dispatch order,
/// queue wait, and the size of the coalesced batch it rode in).
struct InvocationResult {
  /// Every platform path overwrites this with either the sealed response or
  /// a specific typed error; the Aborted default can only surface if a
  /// result object escapes without passing through the platform at all.
  Result<Bytes> response = Status::Aborted("request dropped before execution");
  semirt::StageTimings timings;
  bool cold_start = false;
  uint64_t sched_seq = 0;     ///< arrival order assigned at admission
  uint64_t dispatch_seq = 0;  ///< policy order assigned at dispatch
  TimeMicros queue_wait = 0;  ///< time spent queued before dispatch
  int batch_size = 1;         ///< requests coalesced into this dispatch
  /// RT lane that executed this request, or -1 for the shared-pool path.
  int rt_lane = -1;
  /// Hashed std::thread::id of the executing thread. The isolation tests
  /// assert interactive and bulk executions land on disjoint thread sets.
  uint64_t exec_thread = 0;
};

/// Point-in-time view of the RT tier (zeroed when the tier is disabled).
struct RtTierStats {
  bool enabled = false;
  int lanes = 0;
  int busy_lanes = 0;
  uint64_t dispatches = 0;        ///< requests executed on RT lanes
  uint64_t fallbacks = 0;         ///< ring-full degradations to the shared pool
  uint64_t rejected_full = 0;     ///< raw executor-ring rejections
  size_t interactive_depth = 0;   ///< queued requests in the RT classes
  bool pinned = false;            ///< lane affinity applied (EPERM degrades)
  bool elevated = false;          ///< SCHED_FIFO applied (EPERM degrades)
};

/// Per-call scheduling overrides for InvokeAsync (defaults inherit the
/// function's FunctionSchedParams).
struct InvokeOptions {
  int priority = -1;  ///< -1 = function default; 0 = highest class
  TimeMicros deadline = sched::kNoDeadline;  ///< absolute, for DeadlineEdf
};

/// A live, in-process serverless platform: invoker nodes with memory-based
/// placement, warm-container reuse, keep-alive reclamation, and cold starts
/// that launch SeMIRT sandboxes. This is the execution substrate the
/// examples, benchmarks, and integration tests run on; the discrete-event
/// simulator in src/sim mirrors its policies at cluster scale.
///
/// \par Concurrency design
/// The invocation hot path is sharded so concurrent requests never serialize
/// behind one global lock:
///  - the function table is read-mostly (`std::shared_mutex`; deploys are the
///    only writers, and shards are heap-stable so a reference obtained under
///    the shared lock stays valid for the platform's lifetime);
///  - each function shard keeps a lock-free warm-slot freelist (a tagged
///    Treiber stack of TCS slot tokens) — a warm acquisition is one CAS, and
///    the LIFO order naturally prefers the most recently used (hottest)
///    container;
///  - per-node memory accounting is a CAS reservation on an atomic counter,
///    and the expensive SemirtInstance launch runs outside every lock, so
///    cold starts of different functions proceed in parallel;
///  - a shard mutex serializes only the rare paths: container creation,
///    reaping, and inspection.
///
/// \threadsafety All public methods are safe to call concurrently.
class ServerlessPlatform {
 public:
  /// `clock` defaults to a process-lifetime RealClock; tests inject a
  /// ManualClock to drive keep-alive expiry.
  ServerlessPlatform(const PlatformConfig& config,
                     sgx::AttestationAuthority* authority,
                     storage::ObjectStore* storage,
                     keyservice::KeyServiceServer* keyservice,
                     Clock* clock = nullptr);

  /// Shuts the platform down: still-queued requests resolve immediately with
  /// typed Unavailable("shutting down") (they are NOT executed), in-flight
  /// dispatches run to completion, and every outstanding InvokeAsync future
  /// is satisfied before any member is destroyed.
  ~ServerlessPlatform();

  /// Register a function (the owner's deployment step). Fails on duplicates.
  /// \threadsafety May race with Invoke/InvokeAsync on other functions.
  Status DeployFunction(const FunctionSpec& spec);

  /// Synchronously execute one request on `function`: reuses a warm container
  /// with a free TCS slot (most recently used first) or cold-starts a new
  /// one. Sets *cold_start if provisioning happened.
  /// \threadsafety Safe to call from many threads at once; warm acquisitions
  /// are lock-free.
  Result<Bytes> Invoke(const std::string& function,
                       const semirt::InferenceRequest& request,
                       semirt::StageTimings* timings = nullptr,
                       bool* cold_start = nullptr);

  /// Asynchronously execute one request through the request scheduler:
  /// admission control first (typed rejection — never an indefinite block),
  /// then policy-ordered queuing, then execution by dispatcher tasks on the
  /// process-wide fork-join pool, bounded by the in-flight window. Queued
  /// same-model requests may be coalesced into one batched enclave invocation
  /// when the function's sched.max_batch allows it. On single-threaded pools
  /// the dispatcher runs inline, so the queue drains before the future is
  /// returned (unless dispatch is paused).
  ///
  /// The returned future is always satisfied (errors — including admission
  /// rejections — are carried inside InvocationResult::response, never
  /// thrown).
  std::future<InvocationResult> InvokeAsync(const std::string& function,
                                            semirt::InferenceRequest request,
                                            const InvokeOptions& options = {});

  /// Scheduler introspection: queue depth, drops by reason, batch sizes,
  /// per-class queue-wait percentiles, per-function service counts.
  sched::SchedStats scheduler_stats() const { return scheduler_.stats(); }

  /// Execution-tier introspection: lane occupancy, RT dispatch/fallback
  /// counters, interactive backlog (what the cluster autoscaler samples).
  RtTierStats rt_stats() const;

  /// Requests currently queued in this platform's scheduler. One atomic
  /// read — cheap enough for the cluster router's bounded-load placement to
  /// poll on every invocation (scheduler_stats() is the heavyweight
  /// snapshot).
  size_t queue_depth() const { return scheduler_.TotalDepth(); }

  /// Gate the dispatcher tasks (benchmarks/tests): while paused, InvokeAsync
  /// submissions accumulate in the scheduler; Resume releases them in policy
  /// order. The destructor resumes automatically so queued work drains.
  void PauseDispatch();
  void ResumeDispatch();

  /// Reclaim containers idle longer than the keep-alive window. Called
  /// opportunistically (and rate-limited) by Invoke; exposed for tests and
  /// maintenance loops, where it always runs a full sweep.
  int ReapIdleContainers();

  /// Number of live containers for `function` ("" = all).
  int ContainerCount(const std::string& function = "") const;

  PlatformStats stats() const;

  /// Snapshot of the failure-recovery counters (quarantines, relaunch
  /// backoffs, shutdown drops — the full breakdown behind stats()).
  RecoveryStats recovery_stats() const;

  /// Attach a request router so its breaker transitions surface through
  /// stats().breaker_opens. Call before traffic; the platform does not take
  /// ownership and the router must outlive it.
  void AttachRouter(fnpacker::RequestRouter* router) { router_ = router; }

  /// Re-home this platform's counters (PlatformStats, RecoveryStats,
  /// SchedStats) into `registry` as a scrape-time collector under
  /// `sesemi_platform_*` / `sesemi_sched_*` names. The label (e.g.
  /// node="2") distinguishes platforms sharing one registry; deregistration
  /// is automatic at destruction. See docs/ARCHITECTURE.md "Observability".
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       std::vector<std::pair<std::string, std::string>> labels = {});

  /// The SGX platform backing node `i` (for EPC/attestation inspection).
  sgx::SgxPlatform* node(int i) { return nodes_.at(i).platform.get(); }

 private:
  struct Container {
    std::string function;
    int node = 0;
    uint64_t memory_bytes = 0;
    std::unique_ptr<semirt::SemirtInstance> instance;
    /// Warm tokens this container contributed (== num_tcs unless the slot
    /// directory ran out); the reaper's fully-idle test compares against
    /// this, not num_tcs, so short-tokened containers still get reclaimed.
    uint32_t num_tokens = 0;
    std::atomic<int> in_flight{0};
    std::atomic<TimeMicros> last_used{0};
    /// Set once by PoisonContainer after a poisoning ecall failure. A
    /// poisoned container accepts no new work: its tokens are quarantined as
    /// they surface, and the container is retired (enclave destroyed, memory
    /// returned) once every token is accounted for and in-flight work drains.
    std::atomic<bool> poisoned{false};
    /// Tokens quarantined so far; retirement requires == num_tokens.
    std::atomic<uint32_t> quarantined{0};
  };

  /// One warm TCS slot token. A container contributes `num_tcs` tokens to its
  /// shard's freelist; holding a popped token is the (lock-free) right to run
  /// one request on that container. Records are recycled across containers;
  /// the tagged freelist head makes reuse ABA-safe.
  struct WarmSlot {
    std::atomic<Container*> container{nullptr};
    std::atomic<uint32_t> next{0};
  };

  static constexpr uint32_t kNilSlot = 0xffffffffu;
  static constexpr uint32_t kSlotChunk = 64;     ///< slots per storage chunk
  static constexpr uint32_t kMaxChunks = 1024;   ///< 65536 slots per function

  /// Per-function state. The shard mutex guards only the cold/maintenance
  /// paths; the warm path touches nothing but `free_head` and slot records.
  struct FunctionShard {
    explicit FunctionShard(FunctionSpec s) : spec(std::move(s)) {}
    ~FunctionShard();

    const FunctionSpec spec;

    /// Lock-free freelist head: {tag:32 | slot index:32}. Every successful
    /// push/pop/steal bumps the tag, so a popped-and-reused slot can never
    /// satisfy a stale CAS (ABA).
    std::atomic<uint64_t> free_head;

    /// Stable slot storage: fixed chunk directory, chunks allocated under
    /// `mutex`, read lock-free via acquire loads.
    std::array<std::atomic<WarmSlot*>, kMaxChunks> chunks{};

    /// Placement hint: last node that hosted a container for this function
    /// (approximates the co-location preference without scanning).
    std::atomic<int> placement_hint{-1};

    mutable std::mutex mutex;
    std::vector<std::unique_ptr<Container>> containers;  ///< guarded by mutex
    std::vector<uint32_t> spare_slots;                   ///< guarded by mutex
    uint32_t slot_count = 0;                             ///< guarded by mutex
  };

  struct Node {
    std::unique_ptr<sgx::SgxPlatform> platform;
    std::atomic<uint64_t> memory_used{0};
  };

  static uint64_t PackHead(uint32_t tag, uint32_t index) {
    return (static_cast<uint64_t>(tag) << 32) | index;
  }
  static uint32_t HeadTag(uint64_t head) { return static_cast<uint32_t>(head >> 32); }
  static uint32_t HeadIndex(uint64_t head) { return static_cast<uint32_t>(head); }

  WarmSlot* SlotAt(const FunctionShard& shard, uint32_t index) const;
  uint32_t PopWarmSlot(FunctionShard* shard);
  void PushWarmSlot(FunctionShard* shard, uint32_t index, Container* container);
  uint32_t AllocSlotRecordLocked(FunctionShard* shard);  ///< requires shard->mutex

  FunctionShard* FindShard(const std::string& function) const;
  bool TryReserveNodeMemory(int node, uint64_t bytes);
  int ChooseAndReserveNode(FunctionShard* shard, uint64_t bytes);

  /// Cold-start a container for `shard`, returning it with one slot token
  /// (index in *slot_index) already held by the caller.
  Result<Container*> ColdStart(FunctionShard* shard, uint32_t* slot_index);

  /// Acquire one execution right on a container for `shard` (warm slot with
  /// model affinity, else cold start). Pairs with ReleaseContainer. Poisoned
  /// containers surfacing from the freelist are quarantined and skipped.
  Result<Container*> AcquireContainer(FunctionShard* shard,
                                      const std::string& model_id,
                                      uint32_t* slot_index, bool* cold);
  void ReleaseContainer(FunctionShard* shard, Container* container,
                        uint32_t slot_index);

  /// Mark `container` poisoned (idempotent); arms the relaunch accounting.
  void PoisonContainer(Container* container);
  /// Take `slot_index` out of circulation: the record returns to the spare
  /// pool and the container's quarantine count advances.
  void QuarantineSlot(FunctionShard* shard, Container* container,
                      uint32_t slot_index);
  void QuarantineSlotLocked(FunctionShard* shard, Container* container,
                            uint32_t slot_index);  ///< requires shard->mutex
  /// Retire a fully-quarantined, fully-drained poisoned container: destroy
  /// the enclave and return its memory.
  void MaybeRetireContainer(FunctionShard* shard, Container* container);

  /// One execution attempt: acquire, run (with optional exec deadline),
  /// poison on enclave failure, release.
  Result<Bytes> ExecuteAttempt(FunctionShard* shard,
                               const semirt::InferenceRequest& request,
                               const semirt::ExecDeadline* deadline,
                               semirt::StageTimings* timings, bool* cold);
  /// ExecuteAttempt wrapped in the recovery policy: retries retryable
  /// failures (idempotent stages only — a poisoning inference failure is
  /// translated to Unavailable and never retried), counts deadline cuts.
  Result<Bytes> ExecuteOne(FunctionShard* shard,
                           const semirt::InferenceRequest& request,
                           const semirt::ExecDeadline* deadline,
                           semirt::StageTimings* timings, bool* cold);

  /// Resolve every request still queued in the scheduler with a typed
  /// shutdown error (deadline-shed entries keep DeadlineExceeded).
  void DrainForShutdown();

  /// Dispatcher task body: pull batches from the scheduler until it drains.
  void PumpScheduler();
  void MaybeSpawnDispatcher();
  /// Execute one policy-ordered dispatch unit and resolve its promises.
  void DispatchBatch(std::vector<sched::QueuedRequest> batch);

  /// RT-tier routing (no-ops unless config_.rt.enabled):
  /// the effective priority class a submission will enqueue under.
  int EffectiveClass(const std::string& function, int priority) const;
  /// Hand one pump job to the RT lanes; on a full ring, degrade to a
  /// shared-pool task so the request never strands (counted as a fallback).
  void KickRtLane();
  /// One RT dispatch: pop exactly one interactive-class request (no
  /// coalescing) and execute it on the calling lane.
  void RtPumpOne();
  static void RtPumpTrampoline(void* self);
  /// Execute a single request on the calling thread and resolve its promise
  /// (`rt_lane` >= 0 tags the RT path in result + span).
  void DispatchOne(sched::QueuedRequest qr, int rt_lane);
  /// Feed the per-class wait/exec histograms (no-op until RegisterMetrics).
  void ObserveClassLatency(int cls, TimeMicros wait, TimeMicros exec);

  void MaybeReap();
  int ReapShard(FunctionShard* shard, TimeMicros now);

  PlatformConfig config_;
  storage::ObjectStore* storage_;
  keyservice::KeyServiceServer* keyservice_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;

  std::vector<Node> nodes_;

  /// Function table: read-shared on every invocation, written only by
  /// DeployFunction. Shard pointers are stable once inserted.
  mutable std::shared_mutex functions_mutex_;
  std::unordered_map<std::string, std::unique_ptr<FunctionShard>> functions_;

  std::atomic<int> invocations_{0};
  std::atomic<int> cold_starts_{0};
  std::atomic<int> reaped_containers_{0};
  std::atomic<TimeMicros> last_reap_{0};

  // Recovery state (see serverless/recovery.h for the policy).
  RelaunchGate relaunch_gate_;
  JitteredBackoff retry_backoff_;
  std::atomic<int> pending_relaunches_{0};  ///< poisonings awaiting a relaunch
  std::atomic<uint64_t> enclave_failures_{0};
  std::atomic<uint64_t> quarantined_slots_{0};
  std::atomic<uint64_t> relaunches_{0};
  std::atomic<uint64_t> relaunch_backoffs_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> deadline_cuts_{0};
  std::atomic<uint64_t> shutdown_drops_{0};
  std::atomic<bool> shutting_down_{false};
  fnpacker::RequestRouter* router_ = nullptr;  ///< optional breaker surface

  /// Request scheduler (admission + fair queues + batcher). Dispatcher tasks
  /// on the fork-join pool pull from it; their count is bounded by
  /// window_limit_ (the in-flight window).
  sched::RequestScheduler scheduler_;
  std::mutex dispatch_mutex_;
  int active_dispatchers_ = 0;  ///< guarded by dispatch_mutex_
  bool dispatch_paused_ = false;  ///< guarded by dispatch_mutex_
  int window_limit_ = 0;

  /// Execution tiers (common/executor.h). The bulk dispatchers pop with
  /// bulk_mask_; RT lanes pop with rt_mask_. Tier disabled: rt_mask_ == 0
  /// and bulk_mask_ == kAllClasses, making every path bit-identical to the
  /// single-tier dispatcher.
  sched::ClassMask rt_mask_ = 0;
  sched::ClassMask bulk_mask_ = sched::kAllClasses;
  std::unique_ptr<RtExecutor> rt_exec_;  ///< reset first in the destructor
  std::atomic<uint64_t> rt_dispatches_{0};
  std::atomic<uint64_t> rt_fallbacks_{0};

  /// Per-class latency histograms, bound at RegisterMetrics (null = not
  /// registered; the hot path pays one relaxed load to find out).
  std::array<std::atomic<obs::Histogram*>, sched::kNumPriorityClasses>
      wait_hist_{};
  std::array<std::atomic<obs::Histogram*>, sched::kNumPriorityClasses>
      exec_hist_{};

  /// Deregisters the stats collector before the counters it reads die.
  obs::ScopedCollector metrics_collector_;

  /// Declared last so outstanding async invocations drain before any other
  /// member is destroyed.
  TaskGroup async_tasks_;
};

}  // namespace sesemi::serverless

#endif  // SESEMI_SERVERLESS_PLATFORM_H_
