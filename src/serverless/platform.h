#ifndef SESEMI_SERVERLESS_PLATFORM_H_
#define SESEMI_SERVERLESS_PLATFORM_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "fnpacker/router.h"
#include "keyservice/keyservice.h"
#include "semirt/semirt.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

namespace sesemi::serverless {

/// Platform-level configuration (the OpenWhisk knobs from Table V).
struct PlatformConfig {
  int num_nodes = 1;
  uint64_t invoker_memory_bytes = 4ull << 30;  ///< per-node sandbox budget
  TimeMicros keep_alive = SecondsToMicros(180);
  sgx::SgxGeneration generation = sgx::SgxGeneration::kSgx2;
};

/// A deployed function: a name bound to a SeMIRT (or baseline) runtime
/// configuration and a container memory budget.
struct FunctionSpec {
  std::string name;
  semirt::SemirtOptions options;
  /// Memory charged against the invoker per container; rounded up to the
  /// 128 MB provisioning granularity.
  uint64_t container_memory_bytes = 256ull << 20;
};

/// Cumulative platform statistics.
struct PlatformStats {
  int invocations = 0;
  int cold_starts = 0;
  int reaped_containers = 0;
};

/// A live, in-process serverless platform: invoker nodes with memory-based
/// placement, warm-container reuse, keep-alive reclamation, and cold starts
/// that launch SeMIRT sandboxes. This is the execution substrate the
/// examples and integration tests run on; the discrete-event simulator in
/// src/sim mirrors its policies at cluster scale.
///
/// Thread-safe; Invoke may be called concurrently.
class ServerlessPlatform {
 public:
  /// `clock` defaults to a process-lifetime RealClock; tests inject a
  /// ManualClock to drive keep-alive expiry.
  ServerlessPlatform(const PlatformConfig& config,
                     sgx::AttestationAuthority* authority,
                     storage::ObjectStore* storage,
                     keyservice::KeyServiceServer* keyservice,
                     Clock* clock = nullptr);

  /// Register a function (the owner's deployment step). Fails on duplicates.
  Status DeployFunction(const FunctionSpec& spec);

  /// Synchronously execute one request on `function`: reuses a warm container
  /// with a free TCS slot (preferring one already serving the request's
  /// model) or cold-starts a new one. Sets *cold_start if provisioning
  /// happened.
  Result<Bytes> Invoke(const std::string& function,
                       const semirt::InferenceRequest& request,
                       semirt::StageTimings* timings = nullptr,
                       bool* cold_start = nullptr);

  /// Reclaim containers idle longer than the keep-alive window. Called
  /// opportunistically by Invoke; exposed for tests and maintenance loops.
  int ReapIdleContainers();

  /// Number of live containers for `function` ("" = all).
  int ContainerCount(const std::string& function = "") const;

  PlatformStats stats() const;

  /// The SGX platform backing node `i` (for EPC/attestation inspection).
  sgx::SgxPlatform* node(int i) { return nodes_.at(i).platform.get(); }

 private:
  struct Container {
    std::string function;
    int node = 0;
    uint64_t memory_bytes = 0;
    std::unique_ptr<semirt::SemirtInstance> instance;
    int in_flight = 0;
    TimeMicros last_used = 0;
  };

  struct Node {
    std::unique_ptr<sgx::SgxPlatform> platform;
    uint64_t memory_used = 0;
  };

  Result<Container*> AcquireContainer(const std::string& function,
                                      const std::string& model_id,
                                      bool* cold_start);

  PlatformConfig config_;
  storage::ObjectStore* storage_;
  keyservice::KeyServiceServer* keyservice_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;

  mutable std::mutex mutex_;
  std::vector<Node> nodes_;
  std::map<std::string, FunctionSpec> functions_;
  std::vector<std::unique_ptr<Container>> containers_;
  PlatformStats stats_;
};

}  // namespace sesemi::serverless

#endif  // SESEMI_SERVERLESS_PLATFORM_H_
