#ifndef SESEMI_SERVERLESS_PLATFORM_H_
#define SESEMI_SERVERLESS_PLATFORM_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/parallel_for.h"
#include "common/result.h"
#include "fnpacker/router.h"
#include "keyservice/keyservice.h"
#include "semirt/semirt.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

namespace sesemi::serverless {

/// Platform-level configuration (the OpenWhisk knobs from Table V).
struct PlatformConfig {
  int num_nodes = 1;
  uint64_t invoker_memory_bytes = 4ull << 30;  ///< per-node sandbox budget
  TimeMicros keep_alive = SecondsToMicros(180);
  sgx::SgxGeneration generation = sgx::SgxGeneration::kSgx2;
  /// Upper bound on requests admitted into InvokeAsync concurrently (the
  /// in-flight window). Callers past the window block in InvokeAsync until a
  /// slot frees — backpressure, not rejection. 0 = 2 x ParallelismDegree().
  int max_inflight = 0;
};

/// A deployed function: a name bound to a SeMIRT (or baseline) runtime
/// configuration and a container memory budget.
struct FunctionSpec {
  std::string name;
  semirt::SemirtOptions options;
  /// Memory charged against the invoker per container; rounded up to the
  /// 128 MB provisioning granularity.
  uint64_t container_memory_bytes = 256ull << 20;
};

/// Cumulative platform statistics.
struct PlatformStats {
  int invocations = 0;
  int cold_starts = 0;
  int reaped_containers = 0;
};

/// Everything one asynchronous invocation produces: the sealed response (or
/// error), the per-stage timings, and whether a container was provisioned.
struct InvocationResult {
  Result<Bytes> response = Status::Internal("not executed");
  semirt::StageTimings timings;
  bool cold_start = false;
};

/// A live, in-process serverless platform: invoker nodes with memory-based
/// placement, warm-container reuse, keep-alive reclamation, and cold starts
/// that launch SeMIRT sandboxes. This is the execution substrate the
/// examples, benchmarks, and integration tests run on; the discrete-event
/// simulator in src/sim mirrors its policies at cluster scale.
///
/// \par Concurrency design
/// The invocation hot path is sharded so concurrent requests never serialize
/// behind one global lock:
///  - the function table is read-mostly (`std::shared_mutex`; deploys are the
///    only writers, and shards are heap-stable so a reference obtained under
///    the shared lock stays valid for the platform's lifetime);
///  - each function shard keeps a lock-free warm-slot freelist (a tagged
///    Treiber stack of TCS slot tokens) — a warm acquisition is one CAS, and
///    the LIFO order naturally prefers the most recently used (hottest)
///    container;
///  - per-node memory accounting is a CAS reservation on an atomic counter,
///    and the expensive SemirtInstance launch runs outside every lock, so
///    cold starts of different functions proceed in parallel;
///  - a shard mutex serializes only the rare paths: container creation,
///    reaping, and inspection.
///
/// \threadsafety All public methods are safe to call concurrently.
class ServerlessPlatform {
 public:
  /// `clock` defaults to a process-lifetime RealClock; tests inject a
  /// ManualClock to drive keep-alive expiry.
  ServerlessPlatform(const PlatformConfig& config,
                     sgx::AttestationAuthority* authority,
                     storage::ObjectStore* storage,
                     keyservice::KeyServiceServer* keyservice,
                     Clock* clock = nullptr);

  /// Waits for every outstanding InvokeAsync to complete before tearing the
  /// platform down.
  ~ServerlessPlatform();

  /// Register a function (the owner's deployment step). Fails on duplicates.
  /// \threadsafety May race with Invoke/InvokeAsync on other functions.
  Status DeployFunction(const FunctionSpec& spec);

  /// Synchronously execute one request on `function`: reuses a warm container
  /// with a free TCS slot (most recently used first) or cold-starts a new
  /// one. Sets *cold_start if provisioning happened.
  /// \threadsafety Safe to call from many threads at once; warm acquisitions
  /// are lock-free.
  Result<Bytes> Invoke(const std::string& function,
                       const semirt::InferenceRequest& request,
                       semirt::StageTimings* timings = nullptr,
                       bool* cold_start = nullptr);

  /// Asynchronously execute one request: admits the request into the bounded
  /// in-flight window (blocking the caller when the window is full), then
  /// runs it on the process-wide fork-join pool so the request's crypto and
  /// GEMM work interleaves with other in-flight requests. On single-threaded
  /// pools the request executes inline before the future is returned.
  ///
  /// The returned future is always satisfied (errors are carried inside
  /// InvocationResult::response, never thrown).
  std::future<InvocationResult> InvokeAsync(const std::string& function,
                                            semirt::InferenceRequest request);

  /// Reclaim containers idle longer than the keep-alive window. Called
  /// opportunistically (and rate-limited) by Invoke; exposed for tests and
  /// maintenance loops, where it always runs a full sweep.
  int ReapIdleContainers();

  /// Number of live containers for `function` ("" = all).
  int ContainerCount(const std::string& function = "") const;

  PlatformStats stats() const;

  /// The SGX platform backing node `i` (for EPC/attestation inspection).
  sgx::SgxPlatform* node(int i) { return nodes_.at(i).platform.get(); }

 private:
  struct Container {
    std::string function;
    int node = 0;
    uint64_t memory_bytes = 0;
    std::unique_ptr<semirt::SemirtInstance> instance;
    /// Warm tokens this container contributed (== num_tcs unless the slot
    /// directory ran out); the reaper's fully-idle test compares against
    /// this, not num_tcs, so short-tokened containers still get reclaimed.
    uint32_t num_tokens = 0;
    std::atomic<int> in_flight{0};
    std::atomic<TimeMicros> last_used{0};
  };

  /// One warm TCS slot token. A container contributes `num_tcs` tokens to its
  /// shard's freelist; holding a popped token is the (lock-free) right to run
  /// one request on that container. Records are recycled across containers;
  /// the tagged freelist head makes reuse ABA-safe.
  struct WarmSlot {
    std::atomic<Container*> container{nullptr};
    std::atomic<uint32_t> next{0};
  };

  static constexpr uint32_t kNilSlot = 0xffffffffu;
  static constexpr uint32_t kSlotChunk = 64;     ///< slots per storage chunk
  static constexpr uint32_t kMaxChunks = 1024;   ///< 65536 slots per function

  /// Per-function state. The shard mutex guards only the cold/maintenance
  /// paths; the warm path touches nothing but `free_head` and slot records.
  struct FunctionShard {
    explicit FunctionShard(FunctionSpec s) : spec(std::move(s)) {}
    ~FunctionShard();

    const FunctionSpec spec;

    /// Lock-free freelist head: {tag:32 | slot index:32}. Every successful
    /// push/pop/steal bumps the tag, so a popped-and-reused slot can never
    /// satisfy a stale CAS (ABA).
    std::atomic<uint64_t> free_head;

    /// Stable slot storage: fixed chunk directory, chunks allocated under
    /// `mutex`, read lock-free via acquire loads.
    std::array<std::atomic<WarmSlot*>, kMaxChunks> chunks{};

    /// Placement hint: last node that hosted a container for this function
    /// (approximates the co-location preference without scanning).
    std::atomic<int> placement_hint{-1};

    mutable std::mutex mutex;
    std::vector<std::unique_ptr<Container>> containers;  ///< guarded by mutex
    std::vector<uint32_t> spare_slots;                   ///< guarded by mutex
    uint32_t slot_count = 0;                             ///< guarded by mutex
  };

  struct Node {
    std::unique_ptr<sgx::SgxPlatform> platform;
    std::atomic<uint64_t> memory_used{0};
  };

  static uint64_t PackHead(uint32_t tag, uint32_t index) {
    return (static_cast<uint64_t>(tag) << 32) | index;
  }
  static uint32_t HeadTag(uint64_t head) { return static_cast<uint32_t>(head >> 32); }
  static uint32_t HeadIndex(uint64_t head) { return static_cast<uint32_t>(head); }

  WarmSlot* SlotAt(const FunctionShard& shard, uint32_t index) const;
  uint32_t PopWarmSlot(FunctionShard* shard);
  void PushWarmSlot(FunctionShard* shard, uint32_t index, Container* container);
  uint32_t AllocSlotRecordLocked(FunctionShard* shard);  ///< requires shard->mutex

  FunctionShard* FindShard(const std::string& function) const;
  bool TryReserveNodeMemory(int node, uint64_t bytes);
  int ChooseAndReserveNode(FunctionShard* shard, uint64_t bytes);

  /// Cold-start a container for `shard`, returning it with one slot token
  /// (index in *slot_index) already held by the caller.
  Result<Container*> ColdStart(FunctionShard* shard, uint32_t* slot_index);

  void MaybeReap();
  int ReapShard(FunctionShard* shard, TimeMicros now);

  PlatformConfig config_;
  storage::ObjectStore* storage_;
  keyservice::KeyServiceServer* keyservice_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;

  std::vector<Node> nodes_;

  /// Function table: read-shared on every invocation, written only by
  /// DeployFunction. Shard pointers are stable once inserted.
  mutable std::shared_mutex functions_mutex_;
  std::unordered_map<std::string, std::unique_ptr<FunctionShard>> functions_;

  std::atomic<int> invocations_{0};
  std::atomic<int> cold_starts_{0};
  std::atomic<int> reaped_containers_{0};
  std::atomic<TimeMicros> last_reap_{0};

  /// In-flight window (admission control for InvokeAsync).
  std::mutex window_mutex_;
  std::condition_variable window_cv_;
  int window_in_use_ = 0;  ///< guarded by window_mutex_
  int window_limit_ = 0;

  /// Declared last so outstanding async invocations drain before any other
  /// member is destroyed.
  TaskGroup async_tasks_;
};

}  // namespace sesemi::serverless

#endif  // SESEMI_SERVERLESS_PLATFORM_H_
