#include "serverless/platform.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/faultpoint.h"
#include "obs/trace.h"

namespace sesemi::serverless {

namespace {
constexpr uint64_t kMemoryGranularity = 128ull << 20;

uint64_t RoundUpToGranularity(uint64_t bytes) {
  return (bytes + kMemoryGranularity - 1) / kMemoryGranularity * kMemoryGranularity;
}

/// What an InvokeAsync submission parks in the scheduler: the request itself
/// and the promise its future resolves from.
struct PendingInvocation {
  semirt::InferenceRequest request;
  std::promise<InvocationResult> promise;
};

std::shared_ptr<PendingInvocation> PayloadOf(const sched::QueuedRequest& qr) {
  return std::static_pointer_cast<PendingInvocation>(qr.payload);
}

int WindowLimitFor(const PlatformConfig& config) {
  return config.max_inflight > 0 ? config.max_inflight : 2 * ParallelismDegree();
}

/// The PR 2 window bounded outstanding work by blocking submitters; the
/// scheduler replaces blocking with typed shedding, so restore a bound by
/// default: an unset global backlog cap becomes 256 x the in-flight window.
sched::SchedulerConfig WithDefaultLimits(sched::SchedulerConfig sched_config,
                                         const PlatformConfig& config) {
  if (sched_config.limits.max_queued == 0) {
    sched_config.limits.max_queued = 256 * WindowLimitFor(config);
  }
  return sched_config;
}
}  // namespace

ServerlessPlatform::FunctionShard::~FunctionShard() {
  for (auto& chunk : chunks) delete[] chunk.load(std::memory_order_relaxed);
}

ServerlessPlatform::ServerlessPlatform(const PlatformConfig& config,
                                       sgx::AttestationAuthority* authority,
                                       storage::ObjectStore* storage,
                                       keyservice::KeyServiceServer* keyservice,
                                       Clock* clock)
    : config_(config),
      storage_(storage),
      keyservice_(keyservice),
      owned_clock_(clock == nullptr ? std::make_unique<RealClock>() : nullptr),
      clock_(clock == nullptr ? owned_clock_.get() : clock),
      relaunch_gate_(config.recovery),
      retry_backoff_(config.recovery.retry.backoff_base_micros,
                     config.recovery.retry.backoff_max_micros,
                     // Distinct stream from the relaunch gate's jitter.
                     config.recovery.backoff_seed ^ 0x9e3779b97f4a7c15ULL),
      scheduler_(WithDefaultLimits(config.scheduler, config), clock_) {
  nodes_ = std::vector<Node>(config_.num_nodes);
  for (auto& node : nodes_) {
    node.platform = std::make_unique<sgx::SgxPlatform>(config_.generation, authority);
  }
  window_limit_ = WindowLimitFor(config_);
  if (config_.rt.enabled) {
    const int classes =
        std::clamp(config_.rt.classes, 1, sched::kNumPriorityClasses);
    rt_mask_ = sched::ClassMaskUpTo(classes);
    bulk_mask_ = sched::kAllClasses & ~rt_mask_;
    rt_exec_ = std::make_unique<RtExecutor>(config_.rt.executor);
  }
}

ServerlessPlatform::~ServerlessPlatform() {
  // Stop accepting work and stop executing the backlog: still-queued futures
  // resolve with typed Unavailable("shutting down") rather than being run
  // (or worse, abandoned). In-flight dispatches finish normally.
  shutting_down_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    dispatch_paused_ = false;  // parked backlog must drain, not execute
  }
  // Retire the RT lanes before draining: queued pump jobs run (and see
  // shutting_down_, so they pop nothing), in-flight RT dispatches finish,
  // and no lane can touch the scheduler once the drains below start.
  rt_exec_.reset();
  DrainForShutdown();
  async_tasks_.Wait();
  // A dispatcher may have been mid-PopBatch during the first drain; nothing
  // new can be queued now, so a second sweep leaves the scheduler empty.
  DrainForShutdown();
}

void ServerlessPlatform::DrainForShutdown() {
  for (;;) {
    std::vector<sched::QueuedRequest> expired;
    std::vector<sched::QueuedRequest> batch = scheduler_.PopBatch(&expired);
    if (batch.empty() && expired.empty()) break;
    const TimeMicros now = clock_->Now();
    auto resolve = [&](sched::QueuedRequest& qr, Status status) {
      InvocationResult out;
      out.response = std::move(status);
      out.sched_seq = qr.seq;
      out.queue_wait = now - qr.enqueue_time;
      PayloadOf(qr)->promise.set_value(std::move(out));
    };
    for (sched::QueuedRequest& qr : expired) {
      resolve(qr, Status::DeadlineExceeded("deadline passed before dispatch: " +
                                           qr.function));
    }
    for (sched::QueuedRequest& qr : batch) {
      resolve(qr, Status::Unavailable("shutting down"));
      shutdown_drops_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status ServerlessPlatform::DeployFunction(const FunctionSpec& spec) {
  FunctionSpec normalized = spec;
  normalized.container_memory_bytes =
      RoundUpToGranularity(spec.container_memory_bytes);
  std::unique_lock<std::shared_mutex> lock(functions_mutex_);
  if (functions_.contains(spec.name)) {
    return Status::AlreadyExists("function already deployed: " + spec.name);
  }
  // Scheduler registration first (still under the deploy lock, so a racing
  // duplicate deploy cannot interleave): if the sched params are invalid the
  // function table is untouched and the deploy can be retried.
  SESEMI_RETURN_IF_ERROR(scheduler_.RegisterFunction(spec.name, spec.sched));
  auto [it, inserted] = functions_.try_emplace(spec.name, nullptr);
  (void)inserted;  // guaranteed by the contains() check under the same lock
  it->second = std::make_unique<FunctionShard>(std::move(normalized));
  it->second->free_head.store(PackHead(0, kNilSlot), std::memory_order_relaxed);
  return Status::OK();
}

ServerlessPlatform::FunctionShard* ServerlessPlatform::FindShard(
    const std::string& function) const {
  std::shared_lock<std::shared_mutex> lock(functions_mutex_);
  auto it = functions_.find(function);
  return it == functions_.end() ? nullptr : it->second.get();
}

ServerlessPlatform::WarmSlot* ServerlessPlatform::SlotAt(const FunctionShard& shard,
                                                         uint32_t index) const {
  WarmSlot* chunk = shard.chunks[index / kSlotChunk].load(std::memory_order_acquire);
  return &chunk[index % kSlotChunk];
}

// Lock-free pop (warm acquisition). The `next` read may be stale if another
// thread pops or steals concurrently, but any such interleaving bumps the
// head tag, so our CAS fails and we retry with fresh state.
uint32_t ServerlessPlatform::PopWarmSlot(FunctionShard* shard) {
  uint64_t head = shard->free_head.load(std::memory_order_acquire);
  for (;;) {
    const uint32_t index = HeadIndex(head);
    if (index == kNilSlot) return kNilSlot;
    const uint32_t next = SlotAt(*shard, index)->next.load(std::memory_order_relaxed);
    const uint64_t want = PackHead(HeadTag(head) + 1, next);
    if (shard->free_head.compare_exchange_weak(head, want,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
      return index;
    }
  }
}

void ServerlessPlatform::PushWarmSlot(FunctionShard* shard, uint32_t index,
                                      Container* container) {
  WarmSlot* slot = SlotAt(*shard, index);
  slot->container.store(container, std::memory_order_relaxed);
  uint64_t head = shard->free_head.load(std::memory_order_relaxed);
  for (;;) {
    slot->next.store(HeadIndex(head), std::memory_order_relaxed);
    const uint64_t want = PackHead(HeadTag(head) + 1, index);
    if (shard->free_head.compare_exchange_weak(head, want,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
      return;
    }
  }
}

uint32_t ServerlessPlatform::AllocSlotRecordLocked(FunctionShard* shard) {
  if (!shard->spare_slots.empty()) {
    const uint32_t index = shard->spare_slots.back();
    shard->spare_slots.pop_back();
    return index;
  }
  const uint32_t index = shard->slot_count;
  if (index >= kSlotChunk * kMaxChunks) return kNilSlot;
  if (index % kSlotChunk == 0) {
    shard->chunks[index / kSlotChunk].store(new WarmSlot[kSlotChunk],
                                            std::memory_order_release);
  }
  shard->slot_count++;
  return index;
}

bool ServerlessPlatform::TryReserveNodeMemory(int node, uint64_t bytes) {
  std::atomic<uint64_t>& used = nodes_[node].memory_used;
  uint64_t current = used.load(std::memory_order_relaxed);
  for (;;) {
    if (current + bytes > config_.invoker_memory_bytes) return false;
    if (used.compare_exchange_weak(current, current + bytes,
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
}

int ServerlessPlatform::ChooseAndReserveNode(FunctionShard* shard, uint64_t bytes) {
  // Co-location preference: try the node that last hosted this function.
  const int hint = shard->placement_hint.load(std::memory_order_relaxed);
  if (hint >= 0 && TryReserveNodeMemory(hint, bytes)) return hint;

  // OpenWhisk-style memory-based scheduling: most free memory first. Retry a
  // few times — a losing CAS means another cold start landed concurrently.
  for (int attempt = 0; attempt < 4; ++attempt) {
    int best = -1;
    uint64_t best_free = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const uint64_t used = nodes_[i].memory_used.load(std::memory_order_relaxed);
      const uint64_t free =
          config_.invoker_memory_bytes > used ? config_.invoker_memory_bytes - used : 0;
      if (free >= bytes && free > best_free) {
        best_free = free;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return -1;
    if (TryReserveNodeMemory(best, bytes)) {
      shard->placement_hint.store(best, std::memory_order_relaxed);
      return best;
    }
  }
  return -1;
}

Result<ServerlessPlatform::Container*> ServerlessPlatform::ColdStart(
    FunctionShard* shard, uint32_t* slot_index) {
  obs::Span span(obs::spans::kColdStart);
  const FunctionSpec& spec = shard->spec;
  // Relaunch gate: after enclave *launch* failures, back off instead of
  // hammering a failing platform. Memory admission below is capacity, not
  // health, and deliberately bypasses the gate.
  {
    Status admit = relaunch_gate_.Admit(clock_->Now());
    if (!admit.ok()) {
      relaunch_backoffs_.fetch_add(1, std::memory_order_relaxed);
      return admit;
    }
  }
  const int node = ChooseAndReserveNode(shard, spec.container_memory_bytes);
  if (node < 0) {
    return Status::ResourceExhausted("no invoker has memory for " + spec.name);
  }

  // The expensive part — enclave launch — runs outside every platform lock,
  // so cold starts proceed in parallel with each other and with warm traffic.
  auto instance = semirt::SemirtInstance::Create(nodes_[node].platform.get(),
                                                 spec.options, storage_, keyservice_);
  if (!instance.ok()) {
    nodes_[node].memory_used.fetch_sub(spec.container_memory_bytes,
                                       std::memory_order_acq_rel);
    relaunch_gate_.OnLaunchFailure(clock_->Now());
    return instance.status();
  }
  relaunch_gate_.OnLaunchSuccess();
  // A successful launch while poisonings are outstanding is the recovery
  // event the relaunch counter tracks.
  int pending = pending_relaunches_.load(std::memory_order_acquire);
  while (pending > 0 &&
         !pending_relaunches_.compare_exchange_weak(pending, pending - 1,
                                                    std::memory_order_acq_rel)) {
  }
  if (pending > 0) relaunches_.fetch_add(1, std::memory_order_relaxed);

  auto container = std::make_unique<Container>();
  container->function = spec.name;
  container->node = node;
  container->memory_bytes = spec.container_memory_bytes;
  container->instance = std::move(*instance);
  container->in_flight.store(1, std::memory_order_relaxed);
  container->last_used.store(clock_->Now(), std::memory_order_relaxed);
  Container* raw = container.get();

  const uint32_t num_tcs = std::max<uint32_t>(1, spec.options.num_tcs);
  std::vector<uint32_t> slots;
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    slots.reserve(num_tcs);
    for (uint32_t i = 0; i < num_tcs; ++i) {
      const uint32_t index = AllocSlotRecordLocked(shard);
      if (index == kNilSlot) break;  // slot directory full; cap concurrency
      slots.push_back(index);
    }
    if (slots.empty()) {
      nodes_[node].memory_used.fetch_sub(spec.container_memory_bytes,
                                         std::memory_order_acq_rel);
      return Status::ResourceExhausted("slot directory exhausted for " + spec.name);
    }
    container->num_tokens = static_cast<uint32_t>(slots.size());
    shard->containers.push_back(std::move(container));
  }

  // The caller keeps the first token; the rest become warm capacity.
  *slot_index = slots.front();
  SlotAt(*shard, *slot_index)->container.store(raw, std::memory_order_relaxed);
  for (size_t i = 1; i < slots.size(); ++i) PushWarmSlot(shard, slots[i], raw);

  cold_starts_.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

Result<ServerlessPlatform::Container*> ServerlessPlatform::AcquireContainer(
    FunctionShard* shard, const std::string& model_id, uint32_t* slot_index,
    bool* cold) {
  obs::Span span(obs::spans::kWarmAcquire);
  *cold = false;
  uint32_t index = kNilSlot;
  Container* container = nullptr;
  // Pop until a healthy token surfaces; poisoned containers' tokens are
  // quarantined on sight (holding a token is the exclusive right to decide
  // its fate, so this races with nothing).
  for (;;) {
    index = PopWarmSlot(shard);
    if (index == kNilSlot) break;
    container = SlotAt(*shard, index)->container.load(std::memory_order_relaxed);
    if (!container->poisoned.load(std::memory_order_acquire)) break;
    QuarantineSlot(shard, container, index);
    MaybeRetireContainer(shard, container);
    container = nullptr;
  }
  if (index != kNilSlot) {
    // Model affinity: LIFO already lands on the hottest container, but under
    // pooled endpoints two warm containers may hold different models. Peek a
    // bounded number of further tokens for one whose instance has this
    // request's model loaded; return the rest. This recovers the seed's
    // prefer-loaded-model scoring without a global scan or lock.
    if (container->instance->loaded_model_id() != model_id) {
      uint32_t returned[2];
      Container* returned_owner[2];
      int returned_count = 0;
      for (int peek = 0; peek < 2; ++peek) {
        const uint32_t other_index = PopWarmSlot(shard);
        if (other_index == kNilSlot) break;
        Container* other =
            SlotAt(*shard, other_index)->container.load(std::memory_order_relaxed);
        if (other->poisoned.load(std::memory_order_acquire)) {
          QuarantineSlot(shard, other, other_index);
          MaybeRetireContainer(shard, other);
          continue;
        }
        if (other->instance->loaded_model_id() == model_id) {
          returned[returned_count] = index;
          returned_owner[returned_count++] = container;
          index = other_index;
          container = other;
          break;
        }
        returned[returned_count] = other_index;
        returned_owner[returned_count++] = other;
      }
      for (int i = returned_count - 1; i >= 0; --i) {
        PushWarmSlot(shard, returned[i], returned_owner[i]);
      }
    }
    container->in_flight.fetch_add(1, std::memory_order_acq_rel);
  } else {
    SESEMI_ASSIGN_OR_RETURN(container, ColdStart(shard, &index));
    *cold = true;
  }
  span.set_arg("cold", *cold ? 1 : 0);
  *slot_index = index;
  return container;
}

void ServerlessPlatform::ReleaseContainer(FunctionShard* shard,
                                          Container* container,
                                          uint32_t slot_index) {
  container->last_used.store(clock_->Now(), std::memory_order_relaxed);
  if (container->poisoned.load(std::memory_order_acquire)) {
    // Never return a poisoned container's token to the freelist: quarantine
    // it, then retire the container once in-flight work has drained.
    QuarantineSlot(shard, container, slot_index);
    container->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    MaybeRetireContainer(shard, container);
    return;
  }
  container->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  PushWarmSlot(shard, slot_index, container);
}

void ServerlessPlatform::PoisonContainer(Container* container) {
  bool expected = false;
  if (!container->poisoned.compare_exchange_strong(expected, true,
                                                   std::memory_order_acq_rel)) {
    return;  // already poisoned by a concurrent failure
  }
  enclave_failures_.fetch_add(1, std::memory_order_relaxed);
  pending_relaunches_.fetch_add(1, std::memory_order_acq_rel);
}

void ServerlessPlatform::QuarantineSlotLocked(FunctionShard* shard,
                                              Container* container,
                                              uint32_t slot_index) {
  shard->spare_slots.push_back(slot_index);
  container->quarantined.fetch_add(1, std::memory_order_acq_rel);
  quarantined_slots_.fetch_add(1, std::memory_order_relaxed);
}

void ServerlessPlatform::QuarantineSlot(FunctionShard* shard,
                                        Container* container,
                                        uint32_t slot_index) {
  std::lock_guard<std::mutex> lock(shard->mutex);
  QuarantineSlotLocked(shard, container, slot_index);
}

void ServerlessPlatform::MaybeRetireContainer(FunctionShard* shard,
                                              Container* container) {
  std::lock_guard<std::mutex> lock(shard->mutex);
  // Membership check FIRST, by pointer identity only: a concurrent
  // quarantiner may have already retired (freed) the container, so no
  // dereference is legal until it is confirmed still present.
  auto it = std::find_if(
      shard->containers.begin(), shard->containers.end(),
      [&](const std::unique_ptr<Container>& c) { return c.get() == container; });
  if (it == shard->containers.end()) return;  // already retired
  // Retirement needs every token quarantined AND no request executing: both
  // hold only once no thread can still hand the container new work, so
  // destroying the instance (enclave teardown) here is safe.
  if (container->quarantined.load(std::memory_order_acquire) <
          container->num_tokens ||
      container->in_flight.load(std::memory_order_acquire) != 0) {
    return;
  }
  nodes_[container->node].memory_used.fetch_sub(container->memory_bytes,
                                                std::memory_order_acq_rel);
  shard->containers.erase(it);
}

Result<Bytes> ServerlessPlatform::ExecuteAttempt(
    FunctionShard* shard, const semirt::InferenceRequest& request,
    const semirt::ExecDeadline* deadline, semirt::StageTimings* timings,
    bool* cold) {
  SESEMI_FAULT_POINT(faults::kServerlessDispatch);
  if (deadline != nullptr && deadline->Expired()) {
    return Status::DeadlineExceeded("deadline passed before execution");
  }

  bool cold_here = false;
  uint32_t slot_index = 0;
  SESEMI_ASSIGN_OR_RETURN(Container * container,
                          AcquireContainer(shard, request.model_id, &slot_index,
                                           &cold_here));
  if (cold_here) *cold = true;

  Result<Bytes> result =
      container->instance->HandleRequest(request, timings, deadline);

  if (config_.recovery.enabled && !result.ok() &&
      IsEnclavePoisoning(result.status().code())) {
    // The enclave's internal state can no longer be trusted: poison it so
    // the release below quarantines the token instead of recycling it.
    PoisonContainer(container);
  }
  ReleaseContainer(shard, container, slot_index);
  invocations_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Result<Bytes> ServerlessPlatform::ExecuteOne(
    FunctionShard* shard, const semirt::InferenceRequest& request,
    const semirt::ExecDeadline* deadline, semirt::StageTimings* timings,
    bool* cold) {
  const RetryPolicy& policy = config_.recovery.retry;
  const int max_attempts =
      config_.recovery.enabled ? std::max(1, policy.max_attempts) : 1;

  Result<Bytes> result = Status::Aborted("request dropped before execution");
  for (int attempt = 0;; ++attempt) {
    result = ExecuteAttempt(shard, request, deadline, timings, cold);
    if (result.ok()) break;
    const StatusCode code = result.status().code();
    if (code == StatusCode::kDeadlineExceeded) {
      deadline_cuts_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (IsEnclavePoisoning(code)) {
      // The inference ecall itself faulted: never retried (it may have
      // consumed or mutated state), but surfaced as typed Unavailable — the
      // enclave is quarantined and a relaunch restores service.
      result = Status::Unavailable("enclave failure: " +
                                   result.status().message());
      break;
    }
    if (!config_.recovery.enabled || !IsRetryableFailure(code) ||
        attempt + 1 >= max_attempts ||
        (deadline != nullptr && deadline->Expired())) {
      break;
    }
    // Retryable (kUnavailable) failures come only from idempotent stages —
    // key fetch, handshake, model fetch, or pre-entry dispatch faults.
    retries_.fetch_add(1, std::memory_order_relaxed);
    const TimeMicros delay = retry_backoff_.Next(attempt);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  }
  return result;
}

Result<Bytes> ServerlessPlatform::Invoke(const std::string& function,
                                         const semirt::InferenceRequest& request,
                                         semirt::StageTimings* timings,
                                         bool* cold_start) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return Status::Unavailable("shutting down");
  }
  MaybeReap();

  FunctionShard* shard = FindShard(function);
  if (shard == nullptr) {
    return Status::NotFound("no such function: " + function);
  }

  bool cold = false;
  Result<Bytes> result = ExecuteOne(shard, request, nullptr, timings, &cold);
  if (cold_start != nullptr) *cold_start = cold;
  return result;
}

std::future<InvocationResult> ServerlessPlatform::InvokeAsync(
    const std::string& function, semirt::InferenceRequest request,
    const InvokeOptions& options) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    shutdown_drops_.fetch_add(1, std::memory_order_relaxed);
    std::promise<InvocationResult> rejected;
    InvocationResult out;
    out.response = Status::Unavailable("shutting down");
    rejected.set_value(std::move(out));
    return rejected.get_future();
  }
  auto pending = std::make_shared<PendingInvocation>();
  pending->request = std::move(request);
  std::future<InvocationResult> future = pending->promise.get_future();

  // Nests under cluster.route when the router invoked us on this thread;
  // otherwise roots a new trace. The context rides the queued request to
  // whichever dispatcher thread pops it.
  obs::Span submit(obs::spans::kPlatformSubmit);

  sched::QueuedRequest queued;
  queued.function = function;
  queued.model_id = pending->request.model_id;
  queued.session_id = pending->request.user_id;
  queued.priority = options.priority;
  queued.deadline = options.deadline;
  queued.trace = submit.context();
  queued.payload = pending;
  const uint64_t payload_bytes = pending->request.encrypted_input.size();

  // Resolve the class before Submit consumes the request: it decides which
  // tier's doorbell to ring after a successful enqueue.
  const int effective_class = EffectiveClass(function, options.priority);

  Status admitted = scheduler_.Submit(std::move(queued), payload_bytes);
  if (!admitted.ok()) {
    // Typed rejection (rate limit / backlog full / unknown function): the
    // future resolves immediately — no caller ever parks on a mutex.
    InvocationResult out;
    out.response = admitted;
    pending->promise.set_value(std::move(out));
    return future;
  }

  if (rt_exec_ != nullptr &&
      (sched::ClassMaskOf(effective_class) & rt_mask_) != 0) {
    KickRtLane();
  } else {
    MaybeSpawnDispatcher();
  }
  return future;
}

int ServerlessPlatform::EffectiveClass(const std::string& function,
                                       int priority) const {
  if (priority < 0) {
    const sched::FunctionSchedParams* params =
        scheduler_.function_params(function);
    priority = params != nullptr ? params->priority : 1;
  }
  return std::clamp(priority, 0, sched::kNumPriorityClasses - 1);
}

void ServerlessPlatform::RtPumpTrampoline(void* self) {
  static_cast<ServerlessPlatform*>(self)->RtPumpOne();
}

void ServerlessPlatform::KickRtLane() {
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    if (dispatch_paused_) return;  // ResumeDispatch re-rings per queued request
  }
  // Zero-allocation handoff: one slot-ring publish + one semaphore release.
  if (rt_exec_->Submit(&RtPumpTrampoline, this)) return;
  // Ring full — the interactive classes are severely oversubscribed. Degrade
  // to a shared-pool task running the same single-request pump, so the
  // request is late rather than stranded.
  rt_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  async_tasks_.Submit([this] { RtPumpOne(); });
}

void ServerlessPlatform::RtPumpOne() {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return;  // the destructor's drain resolves whatever is queued
  }
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    if (dispatch_paused_) return;
  }
  std::vector<sched::QueuedRequest> expired;
  sched::QueuedRequest qr;
  const bool got = scheduler_.PopOne(rt_mask_, &qr, &expired);
  for (sched::QueuedRequest& ex : expired) {
    InvocationResult out;
    out.response = Status::DeadlineExceeded("deadline passed before dispatch: " +
                                            ex.function);
    out.sched_seq = ex.seq;
    out.queue_wait = clock_->Now() - ex.enqueue_time;
    PayloadOf(ex)->promise.set_value(std::move(out));
  }
  if (!got) return;  // raced with another lane (or shed everything)
  DispatchOne(std::move(qr), RtExecutor::LaneIndex());
}

void ServerlessPlatform::MaybeSpawnDispatcher() {
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    if (dispatch_paused_ || active_dispatchers_ >= window_limit_) return;
    active_dispatchers_++;
  }
  async_tasks_.Submit([this] { PumpScheduler(); });
}

void ServerlessPlatform::PumpScheduler() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(dispatch_mutex_);
      if (dispatch_paused_ || shutting_down_.load(std::memory_order_acquire)) {
        // On shutdown the destructor's drain resolves whatever remains queued.
        active_dispatchers_--;
        return;
      }
    }
    std::vector<sched::QueuedRequest> expired;
    // Bulk dispatchers serve only the non-RT classes (bulk_mask_ is
    // kAllClasses when the tier is disabled, making this the unmasked pop).
    std::vector<sched::QueuedRequest> batch =
        scheduler_.PopBatch(bulk_mask_, &expired);
    // Deadline-shed work (DeadlineEdf) is never executed: its futures resolve
    // with a typed DeadlineExceeded right here at dispatch time.
    for (sched::QueuedRequest& qr : expired) {
      InvocationResult out;
      out.response = Status::DeadlineExceeded(
          "deadline passed before dispatch: " + qr.function);
      out.sched_seq = qr.seq;
      out.queue_wait = clock_->Now() - qr.enqueue_time;
      PayloadOf(qr)->promise.set_value(std::move(out));
    }
    if (batch.empty()) {
      // Exit only if the queue is truly drained: the depth re-check under
      // dispatch_mutex_ pairs with MaybeSpawnDispatcher's increment, so a
      // submission that saw active_dispatchers_ == limit is guaranteed to be
      // observed by one of those dispatchers before it exits.
      std::lock_guard<std::mutex> lock(dispatch_mutex_);
      // Depth is checked through the bulk mask: backlog parked in RT-only
      // classes belongs to the lanes, and spinning on it here would wedge
      // this dispatcher forever.
      if (scheduler_.DepthInClasses(bulk_mask_) == 0 || dispatch_paused_) {
        active_dispatchers_--;
        return;
      }
      continue;
    }
    DispatchBatch(std::move(batch));
  }
}

void ServerlessPlatform::PauseDispatch() {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  dispatch_paused_ = true;
}

void ServerlessPlatform::ResumeDispatch() {
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    dispatch_paused_ = false;
  }
  // One dispatcher per window slot (bounded inside MaybeSpawnDispatcher);
  // surplus dispatchers find the queue empty and exit.
  const size_t depth = scheduler_.DepthInClasses(bulk_mask_);
  for (size_t i = 0; i < depth; ++i) MaybeSpawnDispatcher();
  if (rt_exec_ != nullptr) {
    // One doorbell per parked RT request; surplus pumps pop nothing and exit.
    const size_t rt_depth = scheduler_.DepthInClasses(rt_mask_);
    for (size_t i = 0; i < rt_depth; ++i) KickRtLane();
  }
}

void ServerlessPlatform::ObserveClassLatency(int cls, TimeMicros wait,
                                             TimeMicros exec) {
  cls = std::clamp(cls, 0, sched::kNumPriorityClasses - 1);
  if (obs::Histogram* h =
          wait_hist_[cls].load(std::memory_order_relaxed)) {
    h->Observe(MicrosToSeconds(wait < 0 ? 0 : wait));
  }
  if (obs::Histogram* h =
          exec_hist_[cls].load(std::memory_order_relaxed)) {
    h->Observe(MicrosToSeconds(exec < 0 ? 0 : exec));
  }
}

void ServerlessPlatform::DispatchOne(sched::QueuedRequest qr, int rt_lane) {
  const TimeMicros now = clock_->Now();
  auto pending = PayloadOf(qr);

  // RT dispatches get their own span name so lane occupancy reads directly
  // off a Chrome trace; both carry the priority class for filtering.
  obs::Span dispatch(
      rt_lane >= 0 ? obs::spans::kRtLane : obs::spans::kDispatch, qr.trace);
  dispatch.set_arg("lane", rt_lane);
  dispatch.set_priority(qr.priority);
  if (obs::Tracer::Enabled()) {
    const TimeMicros trace_now = obs::Tracer::Now();
    const TimeMicros wait = now >= qr.enqueue_time ? now - qr.enqueue_time : 0;
    obs::Tracer::EmitSpan(qr.trace, obs::spans::kQueueWait, trace_now - wait,
                          trace_now, "batch_size", 1, qr.priority);
  }

  InvocationResult out;
  out.sched_seq = qr.seq;
  out.dispatch_seq = qr.dispatch_seq;
  out.queue_wait = now - qr.enqueue_time;
  out.rt_lane = rt_lane;
  out.exec_thread = std::hash<std::thread::id>{}(std::this_thread::get_id());

  semirt::ExecDeadline exec_deadline;
  const semirt::ExecDeadline* deadline_ptr = nullptr;
  if (config_.recovery.enabled && qr.deadline != sched::kNoDeadline) {
    exec_deadline = {qr.deadline, clock_};
    deadline_ptr = &exec_deadline;
  }

  MaybeReap();
  FunctionShard* shard = FindShard(qr.function);
  const TimeMicros exec_start = clock_->Now();
  if (shard == nullptr) {
    out.response = Status::NotFound("no such function: " + qr.function);
  } else {
    out.response = ExecuteOne(shard, pending->request, deadline_ptr,
                              &out.timings, &out.cold_start);
  }
  if (rt_lane >= 0) rt_dispatches_.fetch_add(1, std::memory_order_relaxed);
  ObserveClassLatency(qr.priority, out.queue_wait, clock_->Now() - exec_start);
  pending->promise.set_value(std::move(out));
}

void ServerlessPlatform::DispatchBatch(std::vector<sched::QueuedRequest> batch) {
  const TimeMicros now = clock_->Now();

  // Continue the head request's trace on this dispatcher thread. Coalesced
  // companions keep their own traces: each gets a reconstructed queue-wait
  // span plus (for non-heads) a sched.coalesced instant pointing at the
  // trace that carries the shared dispatch/ecall spans.
  obs::Span dispatch(obs::spans::kDispatch, batch.front().trace);
  dispatch.set_arg("batch_size", static_cast<int64_t>(batch.size()));
  dispatch.set_priority(batch.front().priority);
  if (obs::Tracer::Enabled()) {
    const TimeMicros trace_now = obs::Tracer::Now();
    for (size_t i = 0; i < batch.size(); ++i) {
      const sched::QueuedRequest& qr = batch[i];
      const TimeMicros wait = now >= qr.enqueue_time ? now - qr.enqueue_time : 0;
      obs::Tracer::EmitSpan(qr.trace, obs::spans::kQueueWait, trace_now - wait,
                            trace_now, "batch_size",
                            static_cast<int64_t>(batch.size()), qr.priority);
      if (i > 0) {
        obs::Tracer::EmitInstant(
            qr.trace, obs::spans::kCoalesced, "head_trace",
            static_cast<int64_t>(batch.front().trace.trace_id));
      }
    }
  }

  auto resolve_all = [&](const Status& status) {
    for (sched::QueuedRequest& qr : batch) {
      InvocationResult out;
      out.response = status;
      out.sched_seq = qr.seq;
      out.dispatch_seq = qr.dispatch_seq;
      out.queue_wait = now - qr.enqueue_time;
      out.batch_size = static_cast<int>(batch.size());
      PayloadOf(qr)->promise.set_value(std::move(out));
    }
  };

  // Deadline enforcement at execution time: cooperative cuts between
  // pipeline stages, never mid-inference. Earliest deadline governs a batch.
  semirt::ExecDeadline exec_deadline;
  const semirt::ExecDeadline* deadline_ptr = nullptr;
  if (config_.recovery.enabled) {
    TimeMicros earliest = sched::kNoDeadline;
    for (const sched::QueuedRequest& qr : batch) {
      earliest = std::min(earliest, qr.deadline);
    }
    if (earliest != sched::kNoDeadline) {
      exec_deadline = {earliest, clock_};
      deadline_ptr = &exec_deadline;
    }
  }

  if (batch.size() == 1) {
    sched::QueuedRequest& qr = batch.front();
    auto pending = PayloadOf(qr);
    InvocationResult out;
    out.sched_seq = qr.seq;
    out.dispatch_seq = qr.dispatch_seq;
    out.queue_wait = now - qr.enqueue_time;
    out.exec_thread = std::hash<std::thread::id>{}(std::this_thread::get_id());
    MaybeReap();
    FunctionShard* shard = FindShard(qr.function);
    const TimeMicros exec_start = clock_->Now();
    if (shard == nullptr) {
      out.response = Status::NotFound("no such function: " + qr.function);
    } else {
      out.response = ExecuteOne(shard, pending->request, deadline_ptr,
                                &out.timings, &out.cold_start);
    }
    ObserveClassLatency(qr.priority, out.queue_wait, clock_->Now() - exec_start);
    pending->promise.set_value(std::move(out));
    return;
  }

  // Batched dispatch: one container slot, one enclave entry for the whole
  // same-model, same-session batch.
  MaybeReap();
  FunctionShard* shard = FindShard(batch.front().function);
  if (shard == nullptr) {
    resolve_all(Status::NotFound("no such function: " + batch.front().function));
    return;
  }

  bool cold = false;
  uint32_t slot_index = 0;
  auto container = AcquireContainer(shard, batch.front().model_id, &slot_index,
                                    &cold);
  if (!container.ok()) {
    resolve_all(container.status());
    return;
  }

  std::vector<const semirt::InferenceRequest*> requests;
  std::vector<std::shared_ptr<PendingInvocation>> pendings;
  requests.reserve(batch.size());
  pendings.reserve(batch.size());
  for (const sched::QueuedRequest& qr : batch) {
    pendings.push_back(PayloadOf(qr));
    requests.push_back(&pendings.back()->request);
  }

  semirt::StageTimings timings;
  const TimeMicros exec_start = clock_->Now();
  std::vector<Result<Bytes>> results =
      (*container)->instance->HandleRequestBatch(requests, &timings,
                                                 deadline_ptr);
  const TimeMicros exec_micros = clock_->Now() - exec_start;

  // Batch dispatches are never retried (the enclave entry is not idempotent);
  // poisoning failures quarantine the container and surface as Unavailable.
  for (Result<Bytes>& r : results) {
    if (r.ok()) continue;
    const StatusCode code = r.status().code();
    if (code == StatusCode::kDeadlineExceeded) {
      deadline_cuts_.fetch_add(1, std::memory_order_relaxed);
    } else if (config_.recovery.enabled && IsEnclavePoisoning(code)) {
      PoisonContainer(*container);
      r = Status::Unavailable("enclave failure: " + r.status().message());
    }
  }

  ReleaseContainer(shard, *container, slot_index);
  invocations_.fetch_add(static_cast<int>(batch.size()),
                         std::memory_order_relaxed);

  const uint64_t exec_thread =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (size_t i = 0; i < batch.size(); ++i) {
    InvocationResult out;
    out.response = std::move(results[i]);
    out.timings = timings;  // stage costs are shared across the batch
    out.cold_start = cold;
    out.sched_seq = batch[i].seq;
    out.dispatch_seq = batch[i].dispatch_seq;
    out.queue_wait = now - batch[i].enqueue_time;
    out.batch_size = static_cast<int>(batch.size());
    out.exec_thread = exec_thread;
    ObserveClassLatency(batch[i].priority, out.queue_wait, exec_micros);
    pendings[i]->promise.set_value(std::move(out));
  }
}

void ServerlessPlatform::MaybeReap() {
  // Rate-limit the opportunistic sweep so it never contends with the
  // lock-free warm path on every request.
  const TimeMicros interval =
      std::min<TimeMicros>(config_.keep_alive / 4 + 1, SecondsToMicros(1));
  const TimeMicros now = clock_->Now();
  TimeMicros last = last_reap_.load(std::memory_order_relaxed);
  if (now - last < interval) return;
  if (!last_reap_.compare_exchange_strong(last, now, std::memory_order_acq_rel)) {
    return;  // another thread took this sweep
  }
  ReapIdleContainers();
}

int ServerlessPlatform::ReapShard(FunctionShard* shard, TimeMicros now) {
  std::lock_guard<std::mutex> lock(shard->mutex);

  // Steal the whole freelist in one CAS; we then own the chain exclusively
  // (in-progress pops that loaded the old head fail their CAS on the bumped
  // tag). Warm acquisitions racing with the sweep see an empty list and may
  // cold-start spuriously — harmless, and only within the sweep's window.
  uint64_t head = shard->free_head.load(std::memory_order_acquire);
  for (;;) {
    const uint64_t want = PackHead(HeadTag(head) + 1, kNilSlot);
    if (shard->free_head.compare_exchange_weak(head, want,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
      break;
    }
  }

  // Group the stolen tokens by container. A container is reapable only if
  // every one of its tokens was in the freelist (nothing in flight).
  // Poisoned containers' tokens are quarantined here instead of regrouped, so
  // a sweep also mops up tokens a failing enclave left circulating.
  std::unordered_map<Container*, std::vector<uint32_t>> tokens;
  for (uint32_t index = HeadIndex(head); index != kNilSlot;) {
    WarmSlot* slot = SlotAt(*shard, index);
    Container* owner = slot->container.load(std::memory_order_relaxed);
    const uint32_t next = slot->next.load(std::memory_order_relaxed);
    if (owner != nullptr && owner->poisoned.load(std::memory_order_acquire)) {
      QuarantineSlotLocked(shard, owner, index);
    } else {
      tokens[owner].push_back(index);
    }
    index = next;
  }

  int reaped = 0;
  for (auto it = shard->containers.begin(); it != shard->containers.end();) {
    Container* c = it->get();
    if (c->poisoned.load(std::memory_order_acquire)) {
      // Quarantined enclaves retire as soon as they drain, regardless of
      // keep_alive; they never return to service and are not counted as
      // idle-reaped.
      if (c->quarantined.load(std::memory_order_acquire) >= c->num_tokens &&
          c->in_flight.load(std::memory_order_acquire) == 0) {
        nodes_[c->node].memory_used.fetch_sub(c->memory_bytes,
                                              std::memory_order_acq_rel);
        it = shard->containers.erase(it);
      } else {
        ++it;
      }
      continue;
    }
    auto token_it = tokens.find(c);
    const size_t free_tokens = token_it == tokens.end() ? 0 : token_it->second.size();
    const bool idle = free_tokens == c->num_tokens &&
                      c->in_flight.load(std::memory_order_acquire) == 0;
    if (idle && now - c->last_used.load(std::memory_order_relaxed) >=
                    config_.keep_alive) {
      nodes_[c->node].memory_used.fetch_sub(c->memory_bytes,
                                            std::memory_order_acq_rel);
      // Recycle the slot records (tagged head makes the reuse ABA-safe).
      shard->spare_slots.insert(shard->spare_slots.end(),
                                token_it->second.begin(), token_it->second.end());
      tokens.erase(token_it);
      it = shard->containers.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }

  // Survivors' tokens go back to the freelist (reverse order keeps the
  // pre-sweep LIFO preference roughly intact).
  std::vector<std::pair<uint32_t, Container*>> back;
  for (auto& [container, indices] : tokens) {
    for (uint32_t index : indices) back.emplace_back(index, container);
  }
  for (auto rit = back.rbegin(); rit != back.rend(); ++rit) {
    PushWarmSlot(shard, rit->first, rit->second);
  }
  return reaped;
}

int ServerlessPlatform::ReapIdleContainers() {
  const TimeMicros now = clock_->Now();
  int reaped = 0;
  std::shared_lock<std::shared_mutex> lock(functions_mutex_);
  for (auto& [name, shard] : functions_) {
    reaped += ReapShard(shard.get(), now);
  }
  reaped_containers_.fetch_add(reaped, std::memory_order_relaxed);
  return reaped;
}

int ServerlessPlatform::ContainerCount(const std::string& function) const {
  std::shared_lock<std::shared_mutex> lock(functions_mutex_);
  int count = 0;
  for (const auto& [name, shard] : functions_) {
    if (!function.empty() && name != function) continue;
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    count += static_cast<int>(shard->containers.size());
  }
  return count;
}

PlatformStats ServerlessPlatform::stats() const {
  PlatformStats stats;
  stats.invocations = invocations_.load(std::memory_order_relaxed);
  stats.cold_starts = cold_starts_.load(std::memory_order_relaxed);
  stats.reaped_containers = reaped_containers_.load(std::memory_order_relaxed);
  stats.enclave_failures = enclave_failures_.load(std::memory_order_relaxed);
  stats.relaunches = relaunches_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.deadline_cuts = deadline_cuts_.load(std::memory_order_relaxed);
  stats.breaker_opens = router_ != nullptr ? router_->breaker_opens() : 0;
  return stats;
}

RecoveryStats ServerlessPlatform::recovery_stats() const {
  RecoveryStats stats;
  stats.enclave_failures = enclave_failures_.load(std::memory_order_relaxed);
  stats.quarantined_slots = quarantined_slots_.load(std::memory_order_relaxed);
  stats.relaunches = relaunches_.load(std::memory_order_relaxed);
  stats.relaunch_backoffs = relaunch_backoffs_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.deadline_cuts = deadline_cuts_.load(std::memory_order_relaxed);
  stats.shutdown_drops = shutdown_drops_.load(std::memory_order_relaxed);
  return stats;
}

RtTierStats ServerlessPlatform::rt_stats() const {
  RtTierStats stats;
  stats.enabled = rt_exec_ != nullptr;
  if (rt_exec_ != nullptr) {
    const RtExecutorStats e = rt_exec_->stats();
    stats.lanes = e.lanes;
    stats.busy_lanes = e.busy_lanes;
    stats.rejected_full = e.rejected_full;
    stats.pinned = e.pinned;
    stats.elevated = e.elevated;
    stats.interactive_depth = scheduler_.DepthInClasses(rt_mask_);
  }
  stats.dispatches = rt_dispatches_.load(std::memory_order_relaxed);
  stats.fallbacks = rt_fallbacks_.load(std::memory_order_relaxed);
  return stats;
}

void ServerlessPlatform::RegisterMetrics(
    obs::MetricsRegistry* registry,
    std::vector<std::pair<std::string, std::string>> labels) {
  // Per-class latency histograms are bound once here and observed lock-free
  // on the dispatch paths; until registration they stay null and dispatch
  // skips the observation entirely.
  for (int cls = 0; cls < sched::kNumPriorityClasses; ++cls) {
    auto cls_labels = labels;
    cls_labels.emplace_back("class", std::to_string(cls));
    wait_hist_[static_cast<size_t>(cls)].store(
        registry->GetHistogram("sesemi_sched_wait_seconds",
                               obs::Histogram::LatencyBounds(), cls_labels),
        std::memory_order_release);
    exec_hist_[static_cast<size_t>(cls)].store(
        registry->GetHistogram("sesemi_platform_exec_seconds",
                               obs::Histogram::LatencyBounds(), cls_labels),
        std::memory_order_release);
  }
  // Scrape-time collector over the existing atomic counters: the hot paths
  // keep their plain relaxed fetch_adds; the registry only pays at
  // Snapshot(). Metric names: docs/BENCHMARKS.md "Metric names".
  metrics_collector_ = obs::ScopedCollector(
      registry, [this, labels = std::move(labels)]() {
        std::vector<obs::Sample> samples;
        samples.reserve(32);
        const PlatformStats p = stats();
        samples.push_back(obs::MakeCounterSample(
            "sesemi_platform_invocations_total", p.invocations, labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_platform_cold_starts_total", p.cold_starts, labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_platform_reaped_containers_total", p.reaped_containers,
            labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_platform_breaker_opens_total",
            static_cast<double>(p.breaker_opens), labels));

        const RecoveryStats r = recovery_stats();
        samples.push_back(obs::MakeCounterSample(
            "sesemi_recovery_enclave_failures_total",
            static_cast<double>(r.enclave_failures), labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_recovery_quarantined_slots_total",
            static_cast<double>(r.quarantined_slots), labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_recovery_relaunches_total",
            static_cast<double>(r.relaunches), labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_recovery_relaunch_backoffs_total",
            static_cast<double>(r.relaunch_backoffs), labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_recovery_retries_total", static_cast<double>(r.retries),
            labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_recovery_deadline_cuts_total",
            static_cast<double>(r.deadline_cuts), labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_recovery_shutdown_drops_total",
            static_cast<double>(r.shutdown_drops), labels));

        const sched::SchedStats s = scheduler_stats();
        auto with = [&labels](std::string key, std::string value) {
          auto combined = labels;
          combined.emplace_back(std::move(key), std::move(value));
          return combined;
        };
        samples.push_back(obs::MakeGaugeSample("sesemi_sched_policy_info", 1,
                                               with("policy", s.policy)));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_sched_submitted_total", static_cast<double>(s.submitted),
            labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_sched_admitted_total", static_cast<double>(s.admitted),
            labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_sched_dispatched_total", static_cast<double>(s.dispatched),
            labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_sched_rejected_total", static_cast<double>(s.rejected_rate),
            with("reason", "rate")));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_sched_rejected_total",
            static_cast<double>(s.rejected_depth), with("reason", "depth")));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_sched_rejected_total",
            static_cast<double>(s.rejected_global), with("reason", "global")));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_sched_deadline_drops_total", static_cast<double>(s.drops),
            labels));
        samples.push_back(obs::MakeGaugeSample(
            "sesemi_sched_queue_depth", static_cast<double>(s.queue_depth),
            labels));
        samples.push_back(obs::MakeCounterSample(
            "sesemi_sched_batches_total", static_cast<double>(s.batches),
            labels));
        samples.push_back(obs::MakeGaugeSample("sesemi_sched_avg_batch_size",
                                               s.avg_batch_size, labels));
        for (int cls = 0; cls < sched::kNumPriorityClasses; ++cls) {
          const auto& wait = s.wait[static_cast<size_t>(cls)];
          auto cls_labels = with("class", std::to_string(cls));
          samples.push_back(obs::MakeGaugeSample(
              "sesemi_sched_wait_p50_seconds",
              MicrosToSeconds(wait.p50), cls_labels));
          samples.push_back(obs::MakeGaugeSample(
              "sesemi_sched_wait_p99_seconds",
              MicrosToSeconds(wait.p99), cls_labels));
        }

        const RtTierStats rt = rt_stats();
        samples.push_back(obs::MakeGaugeSample(
            "sesemi_rt_tier_enabled", rt.enabled ? 1.0 : 0.0, labels));
        if (rt.enabled) {
          samples.push_back(obs::MakeGaugeSample(
              "sesemi_rt_lanes", static_cast<double>(rt.lanes), labels));
          samples.push_back(obs::MakeGaugeSample(
              "sesemi_rt_busy_lanes", static_cast<double>(rt.busy_lanes),
              labels));
          samples.push_back(obs::MakeCounterSample(
              "sesemi_rt_dispatches_total",
              static_cast<double>(rt.dispatches), labels));
          samples.push_back(obs::MakeCounterSample(
              "sesemi_rt_fallbacks_total", static_cast<double>(rt.fallbacks),
              labels));
          samples.push_back(obs::MakeCounterSample(
              "sesemi_rt_rejected_full_total",
              static_cast<double>(rt.rejected_full), labels));
          samples.push_back(obs::MakeGaugeSample(
              "sesemi_rt_interactive_depth",
              static_cast<double>(rt.interactive_depth), labels));
        }
        return samples;
      });
}

}  // namespace sesemi::serverless
