#include "serverless/platform.h"

#include <algorithm>

namespace sesemi::serverless {

namespace {
constexpr uint64_t kMemoryGranularity = 128ull << 20;

uint64_t RoundUpToGranularity(uint64_t bytes) {
  return (bytes + kMemoryGranularity - 1) / kMemoryGranularity * kMemoryGranularity;
}
}  // namespace

ServerlessPlatform::ServerlessPlatform(const PlatformConfig& config,
                                       sgx::AttestationAuthority* authority,
                                       storage::ObjectStore* storage,
                                       keyservice::KeyServiceServer* keyservice,
                                       Clock* clock)
    : config_(config), storage_(storage), keyservice_(keyservice) {
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<RealClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = clock;
  }
  nodes_.resize(config_.num_nodes);
  for (auto& node : nodes_) {
    node.platform = std::make_unique<sgx::SgxPlatform>(config_.generation, authority);
  }
}

Status ServerlessPlatform::DeployFunction(const FunctionSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (functions_.count(spec.name) > 0) {
    return Status::AlreadyExists("function already deployed: " + spec.name);
  }
  FunctionSpec normalized = spec;
  normalized.container_memory_bytes =
      RoundUpToGranularity(spec.container_memory_bytes);
  functions_[spec.name] = std::move(normalized);
  return Status::OK();
}

Result<ServerlessPlatform::Container*> ServerlessPlatform::AcquireContainer(
    const std::string& function, const std::string& model_id, bool* cold_start) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto fn_it = functions_.find(function);
  if (fn_it == functions_.end()) {
    return Status::NotFound("no such function: " + function);
  }
  const FunctionSpec& spec = fn_it->second;

  // Warm path: free slot, prefer a container already serving this model.
  Container* best = nullptr;
  int best_score = -1;
  for (auto& c : containers_) {
    if (c->function != function) continue;
    if (c->in_flight >= static_cast<int>(spec.options.num_tcs)) continue;
    int score = 1 + (c->instance->loaded_model_id() == model_id ? 2 : 0);
    if (score > best_score) {
      best_score = score;
      best = c.get();
    }
  }
  if (best != nullptr) {
    best->in_flight++;
    *cold_start = false;
    return best;
  }

  // Cold start: place on the node with the most free memory (OpenWhisk's
  // memory-based scheduling), preferring a node that already hosts this
  // function (co-location).
  int chosen = -1;
  for (const auto& c : containers_) {
    if (c->function == function &&
        nodes_[c->node].memory_used + spec.container_memory_bytes <=
            config_.invoker_memory_bytes) {
      chosen = c->node;
      break;
    }
  }
  if (chosen < 0) {
    uint64_t best_free = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      uint64_t used = nodes_[i].memory_used;
      uint64_t free =
          config_.invoker_memory_bytes > used ? config_.invoker_memory_bytes - used : 0;
      if (free >= spec.container_memory_bytes && free > best_free) {
        best_free = free;
        chosen = static_cast<int>(i);
      }
    }
  }
  if (chosen < 0) {
    return Status::ResourceExhausted("no invoker has memory for " + function);
  }

  auto instance = semirt::SemirtInstance::Create(
      nodes_[chosen].platform.get(), spec.options, storage_, keyservice_);
  if (!instance.ok()) return instance.status();

  auto container = std::make_unique<Container>();
  container->function = function;
  container->node = chosen;
  container->memory_bytes = spec.container_memory_bytes;
  container->instance = std::move(*instance);
  container->in_flight = 1;
  container->last_used = clock_->Now();
  nodes_[chosen].memory_used += container->memory_bytes;
  containers_.push_back(std::move(container));
  stats_.cold_starts++;
  *cold_start = true;
  return containers_.back().get();
}

Result<Bytes> ServerlessPlatform::Invoke(const std::string& function,
                                         const semirt::InferenceRequest& request,
                                         semirt::StageTimings* timings,
                                         bool* cold_start) {
  ReapIdleContainers();
  bool cold = false;
  SESEMI_ASSIGN_OR_RETURN(Container * container,
                          AcquireContainer(function, request.model_id, &cold));
  if (cold_start != nullptr) *cold_start = cold;

  Result<Bytes> result = container->instance->HandleRequest(request, timings);

  std::lock_guard<std::mutex> lock(mutex_);
  container->in_flight--;
  container->last_used = clock_->Now();
  stats_.invocations++;
  return result;
}

int ServerlessPlatform::ReapIdleContainers() {
  std::lock_guard<std::mutex> lock(mutex_);
  const TimeMicros now = clock_->Now();
  int reaped = 0;
  for (auto it = containers_.begin(); it != containers_.end();) {
    Container* c = it->get();
    if (c->in_flight == 0 && now - c->last_used >= config_.keep_alive) {
      nodes_[c->node].memory_used -=
          std::min(nodes_[c->node].memory_used, c->memory_bytes);
      it = containers_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  stats_.reaped_containers += reaped;
  return reaped;
}

int ServerlessPlatform::ContainerCount(const std::string& function) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (function.empty()) return static_cast<int>(containers_.size());
  int n = 0;
  for (const auto& c : containers_) n += (c->function == function);
  return n;
}

PlatformStats ServerlessPlatform::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sesemi::serverless
