#ifndef SESEMI_SERVERLESS_RECOVERY_H_
#define SESEMI_SERVERLESS_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace sesemi::serverless {

/// \file
/// Failure-recovery policy for the serverless platform: classification of
/// enclave-poisoning vs retryable errors, jittered exponential backoff, and
/// the relaunch admission gate. The mechanisms (quarantine, retry loop,
/// deadline cuts) live in platform.cc; this header holds the policy so it
/// is testable in isolation and documented in one place
/// (docs/ARCHITECTURE.md "Failure model & recovery").

/// Retry policy for *idempotent* pipeline stages (key fetch, handshake,
/// model fetch). The inference ecall itself is never retried — it may have
/// observed or mutated session state before faulting.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 1;
  TimeMicros backoff_base_micros = 1000;
  TimeMicros backoff_max_micros = SecondsToMicros(0.25);
};

struct RecoveryConfig {
  /// Master switch; false restores pre-recovery behaviour (no gate, no
  /// retries, failures surface directly).
  bool enabled = true;
  /// Consecutive enclave launch failures tolerated before ColdStart gives
  /// up immediately instead of backing off (-1 = keep trying forever).
  int relaunch_max_attempts = 8;
  TimeMicros relaunch_backoff_base_micros = 2000;
  TimeMicros relaunch_backoff_max_micros = SecondsToMicros(2);
  /// Seed for backoff jitter (deterministic; never wall-clock).
  uint64_t backoff_seed = 0x5e5e313ULL;
  RetryPolicy retry;
};

/// Counters surfaced through ServerlessPlatform::recovery_stats().
struct RecoveryStats {
  uint64_t enclave_failures = 0;   ///< enclaves poisoned by a faulting ecall
  uint64_t quarantined_slots = 0;  ///< warm slots pulled off the freelist
  uint64_t relaunches = 0;         ///< successful cold starts after a poisoning
  uint64_t relaunch_backoffs = 0;  ///< cold starts rejected while backing off
  uint64_t retries = 0;            ///< idempotent-stage retry attempts
  uint64_t deadline_cuts = 0;      ///< invocations cut by the execution deadline
  uint64_t shutdown_drops = 0;     ///< futures resolved Unavailable at shutdown
};

/// An error that poisons the enclave: internal invariants or data integrity
/// are gone, so the enclave must be torn down and relaunched. Resource
/// pressure (kResourceExhausted) and transient faults (kUnavailable) do NOT
/// poison — they resolve by waiting or retrying.
inline bool IsEnclavePoisoning(StatusCode code) {
  return code == StatusCode::kInternal || code == StatusCode::kCorruption;
}

/// An error worth retrying on an idempotent stage. Deliberately narrow:
/// kUnavailable means "try again", everything else (denied, not found,
/// corrupt, exhausted) is either permanent or handled elsewhere.
inline bool IsRetryableFailure(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// Deterministic jittered exponential backoff: base * 2^attempt, capped,
/// then scaled by a uniform [0.5, 1.5) draw from a seeded generator.
/// \threadsafety Safe for concurrent Next() calls (draws serialize).
class JitteredBackoff {
 public:
  JitteredBackoff(TimeMicros base_micros, TimeMicros max_micros, uint64_t seed)
      : base_micros_(base_micros), max_micros_(max_micros), rng_(seed) {}

  /// Backoff before retry number `attempt` (0-based: first retry gets
  /// roughly base).
  TimeMicros Next(int attempt);

 private:
  const TimeMicros base_micros_;
  const TimeMicros max_micros_;
  std::mutex mutex_;
  Rng rng_;  ///< guarded by mutex_
};

/// Admission gate for enclave relaunch after launch failures. Launch
/// failures open a backoff window during which further cold-start attempts
/// are rejected with kUnavailable (cheap, typed) instead of hammering a
/// failing platform; a successful launch closes the gate.
///
/// Only *launch* failures (SemirtInstance::Create) arm the gate — memory
/// admission failures (kResourceExhausted) are capacity, not health, and
/// bypass it.
/// \threadsafety All methods safe to call concurrently.
class RelaunchGate {
 public:
  RelaunchGate(const RecoveryConfig& config)
      : config_(config),
        backoff_(config.relaunch_backoff_base_micros,
                 config.relaunch_backoff_max_micros, config.backoff_seed) {}

  /// OK to attempt a launch now; kUnavailable while backing off or after
  /// the attempt budget is exhausted.
  Status Admit(TimeMicros now);

  /// Record a launch failure at `now`; schedules the next admission.
  void OnLaunchFailure(TimeMicros now);

  /// Record a successful launch: resets the failure streak and opens the
  /// gate.
  void OnLaunchSuccess();

  int consecutive_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  const RecoveryConfig config_;
  JitteredBackoff backoff_;
  std::atomic<int> failures_{0};
  std::atomic<TimeMicros> next_allowed_{0};
};

}  // namespace sesemi::serverless

#endif  // SESEMI_SERVERLESS_RECOVERY_H_
