#include "serverless/recovery.h"

#include <algorithm>

namespace sesemi::serverless {

TimeMicros JitteredBackoff::Next(int attempt) {
  if (base_micros_ <= 0) return 0;
  // base * 2^attempt, doubling with a cap so it can never overflow.
  TimeMicros delay = base_micros_;
  for (int i = 0; i < attempt && delay < max_micros_; ++i) {
    delay = delay > max_micros_ / 2 ? max_micros_ : delay * 2;
  }
  delay = std::min(delay, max_micros_);
  double jitter;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jitter = 0.5 + rng_.UniformDouble();
  }
  auto jittered = static_cast<TimeMicros>(static_cast<double>(delay) * jitter);
  return std::max<TimeMicros>(1, std::min(jittered, max_micros_));
}

Status RelaunchGate::Admit(TimeMicros now) {
  if (!config_.enabled) return Status::OK();
  int failures = failures_.load(std::memory_order_acquire);
  if (failures == 0) return Status::OK();
  if (config_.relaunch_max_attempts >= 0 &&
      failures >= config_.relaunch_max_attempts) {
    return Status::Unavailable("enclave relaunch attempts exhausted");
  }
  if (now < next_allowed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("enclave relaunch backing off");
  }
  return Status::OK();
}

void RelaunchGate::OnLaunchFailure(TimeMicros now) {
  int attempt = failures_.fetch_add(1, std::memory_order_acq_rel);
  TimeMicros delay = backoff_.Next(attempt);
  TimeMicros until = now + delay;
  TimeMicros cur = next_allowed_.load(std::memory_order_relaxed);
  while (until > cur &&
         !next_allowed_.compare_exchange_weak(cur, until,
                                              std::memory_order_acq_rel)) {
  }
}

void RelaunchGate::OnLaunchSuccess() {
  failures_.store(0, std::memory_order_release);
  next_allowed_.store(0, std::memory_order_release);
}

}  // namespace sesemi::serverless
