#ifndef SESEMI_COMMON_PARALLEL_FOR_H_
#define SESEMI_COMMON_PARALLEL_FOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/executor.h"

namespace sesemi {

/// \file
/// Process-wide fork-join pool shared by every parallel consumer in the
/// system. Two entry points ride the same workers:
///
///  - ParallelFor: data parallelism (GEMM row panels, depthwise conv rows).
///  - TaskGroup:   request parallelism (ServerlessPlatform::InvokeAsync).
///
/// Sharing one pool is what lets crypto batches and GEMM panels from
/// *different* in-flight requests interleave instead of queueing behind each
/// other: a worker that finishes its chunk of one request's GEMM immediately
/// picks up another request's pending task or panel.

/// Number of workers ParallelFor can spread across (>= 1). Lazily starts the
/// process-wide pool on first use.
///
/// \threadsafety Safe to call from any thread.
int ParallelismDegree();

/// True when a ParallelFor issued on this thread right now would run inline
/// (the thread is already inside a ParallelFor chunk). Exposed for the
/// template below; also usable by callers sizing per-worker scratch.
bool InsideParallelForChunk();

/// Per-class CPU budget hook (docs/ARCHITECTURE.md "Execution tiers"): while
/// `limit` > 0, at most `limit` threads (caller included) concurrently drain
/// any one ParallelFor job — workers beyond the cap skip the job and serve
/// queued tasks instead. The RT tier sets this while its lanes are busy so
/// bulk GEMM fan-out leaves whole cores to the pinned lanes; 0 restores the
/// unclamped default. Advisory and racy by design: a worker already inside a
/// chunk finishes it.
void SetBulkHelperLimit(int limit);
int BulkHelperLimit();

/// Pool dispatch behind ParallelFor — call the template instead. The
/// std::function is only ever constructed around a reference to the caller's
/// callable (see ParallelFor), so dispatch itself performs no heap
/// allocation; the callable outlives the blocking call by construction.
void ParallelForDispatch(int64_t begin, int64_t end, int64_t grain,
                         const std::function<void(int64_t, int64_t)>& fn);

/// Partition [begin, end) into contiguous chunks of at least `grain`
/// iterations and run `fn(chunk_begin, chunk_end)` across the process-wide
/// thread pool, blocking until every chunk is done. The calling thread
/// participates, so ParallelFor never deadlocks on a single-core machine and
/// degrades to a plain loop when the range is smaller than `grain` or the
/// pool has one worker. Chunk starts are begin + i*grain, so chunk_begin
/// uniquely indexes a chunk (per-chunk scratch lanes rely on this).
///
/// Allocation-free on every path: the serial fast paths call `fn` directly,
/// and pool dispatch wraps `fn` by reference (no type-erasure copy), so the
/// steady-state inference path can promise zero per-request heap allocations.
///
/// \threadsafety Safe to call from any thread, including from inside a
/// TaskGroup task running on a pool worker (the caller then publishes a
/// chunked job that idle workers help drain) and from inside another
/// ParallelFor chunk (the nested call runs inline on the caller — chunk
/// bodies must never block on work that only the pool can make progress on).
/// The caller always drains its own job to completion itself, so a Run can
/// never wait on a worker that is in turn waiting on the caller.
///
/// `fn` must be safe to invoke concurrently on disjoint chunks.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  // Serial fast path: tiny ranges, single-core machines, nested calls (a
  // pool worker re-entering ParallelFor would deadlock waiting on itself),
  // and RT-tier threads — a pinned real-time lane must never fan work into
  // (or block on) the bulk pool it exists to bypass, so its ParallelFor is
  // single-threaded by contract (common/executor.h).
  if (InsideParallelForChunk() || end - begin <= grain ||
      ParallelismDegree() == 1 || CurrentExecTier() == ExecTier::kRealtime) {
    fn(begin, end);
    return;
  }
  ParallelForDispatch(begin, end, grain,
                      std::function<void(int64_t, int64_t)>(std::ref(fn)));
}

/// A group of fire-and-forget tasks executed on the process-wide pool.
/// This is the request-level counterpart to ParallelFor: each submitted task
/// is coarse (e.g. one serverless invocation), runs exactly once on some pool
/// worker, and may itself call ParallelFor — its data-parallel chunks then
/// interleave with other tasks on the remaining workers.
///
/// Scheduling: pool workers prefer ParallelFor chunks (fine-grained, latency
/// sensitive) over queued tasks, so a running request's GEMM panels are never
/// starved by newly admitted requests.
///
/// \threadsafety All methods are safe to call from any thread. Submit from
/// inside a pool-worker task is allowed (nested submission): the task is
/// queued like any other and executed by whichever worker — or Wait()ing
/// caller — gets to it first; a worker never blocks waiting for its own
/// nested task, so nesting cannot deadlock.
class TaskGroup {
 public:
  TaskGroup() = default;
  /// Blocks until every submitted task has finished (equivalent to Wait()).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Queue `task` for execution on the pool. On a single-threaded pool
  /// (ParallelismDegree() == 1) the task runs inline before Submit returns,
  /// so progress never depends on workers that do not exist.
  void Submit(std::function<void()> task);

  /// Block until every task submitted so far has completed. The calling
  /// thread helps by draining this group's queued-but-unstarted tasks itself,
  /// so Wait makes progress even when all workers are busy elsewhere.
  void Wait();

  /// Tasks submitted and not yet finished (racy snapshot; for metrics/tests).
  int pending() const;

 private:
  friend class ForkJoinPoolAccess;

  void OnTaskFinished();

  mutable std::mutex mutex_;
  std::condition_variable done_;
  int pending_ = 0;  ///< guarded by mutex_
};

}  // namespace sesemi

#endif  // SESEMI_COMMON_PARALLEL_FOR_H_
