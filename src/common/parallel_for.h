#ifndef SESEMI_COMMON_PARALLEL_FOR_H_
#define SESEMI_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace sesemi {

/// Number of workers ParallelFor can spread across (>= 1). Lazily starts the
/// process-wide pool on first use.
int ParallelismDegree();

/// Partition [begin, end) into contiguous chunks of at least `grain`
/// iterations and run `fn(chunk_begin, chunk_end)` across the process-wide
/// thread pool, blocking until every chunk is done. The calling thread
/// participates, so ParallelFor never deadlocks on a single-core machine and
/// degrades to a plain loop when the range is smaller than `grain` or the
/// pool has one worker. Nested calls run inline on the caller.
///
/// `fn` must be safe to invoke concurrently on disjoint chunks.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace sesemi

#endif  // SESEMI_COMMON_PARALLEL_FOR_H_
