#ifndef SESEMI_COMMON_RNG_H_
#define SESEMI_COMMON_RNG_H_

#include <cstdint>

#include "common/bytes.h"

namespace sesemi {

/// Deterministic pseudo-random generator (xoshiro256**), used for workload
/// generation, synthetic model weights, and test/sim reproducibility.
///
/// NOT a CSPRNG — cryptographic key material goes through crypto::RandomBytes,
/// which mixes in entropy. All experiment harnesses take an explicit seed so
/// results are reproducible run-to-run.
class Rng {
 public:
  /// Seeds the four 64-bit lanes via splitmix64 on `seed`.
  explicit Rng(uint64_t seed = 0x5e5e313ULL);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound == 0 yields 0. Uses rejection sampling so
  /// the distribution is exact.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Exponentially distributed with rate `lambda` (mean 1/lambda); the
  /// inter-arrival law of a Poisson process.
  double Exponential(double lambda);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Fill `n` pseudo-random bytes.
  Bytes NextBytes(size_t n);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace sesemi

#endif  // SESEMI_COMMON_RNG_H_
