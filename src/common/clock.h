#ifndef SESEMI_COMMON_CLOCK_H_
#define SESEMI_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace sesemi {

/// Simulation/real time, in microseconds. All platform and scheduler code is
/// written against this unit so the same policies run under a wall clock (live
/// mode) and a virtual clock (discrete-event simulation).
using TimeMicros = int64_t;

constexpr TimeMicros kMicrosPerMilli = 1000;
constexpr TimeMicros kMicrosPerSecond = 1000 * 1000;

/// Convert seconds (double) to TimeMicros, rounding to nearest.
constexpr TimeMicros SecondsToMicros(double s) {
  return static_cast<TimeMicros>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

/// Convert TimeMicros to seconds.
constexpr double MicrosToSeconds(TimeMicros t) {
  return static_cast<double>(t) / 1e6;
}

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMicros Now() const = 0;
};

/// Wall clock (steady, monotonic), for live-mode runs.
class RealClock : public Clock {
 public:
  RealClock() : origin_(std::chrono::steady_clock::now()) {}
  TimeMicros Now() const override {
    auto d = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Manually-advanced clock, for unit tests and the discrete-event engine.
class ManualClock : public Clock {
 public:
  explicit ManualClock(TimeMicros start = 0) : now_(start) {}
  TimeMicros Now() const override { return now_; }
  void Set(TimeMicros t) { now_ = t; }
  void Advance(TimeMicros dt) { now_ += dt; }

 private:
  TimeMicros now_;
};

}  // namespace sesemi

#endif  // SESEMI_COMMON_CLOCK_H_
