#ifndef SESEMI_COMMON_FAULTPOINT_H_
#define SESEMI_COMMON_FAULTPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace sesemi {

/// \file
/// Named, deterministic fault points — the injection half of the failure
/// model (docs/ARCHITECTURE.md "Failure model & recovery").
///
/// Cross-component boundaries place a SESEMI_FAULT_POINT("domain.op") probe
/// on their entry path. In production the probe is one relaxed atomic load
/// and a never-taken branch; chaos tests arm individual points with a
/// per-point probability, fire budget, latency, and error code, all driven
/// by a seeded common/rng generator (never wall-clock), so a failing soak
/// replays bit-identically under the same seed.

/// Canonical fault-point names (one per hardened boundary). Call sites use
/// these constants so tests cannot drift from the probes they arm.
namespace faults {
inline constexpr std::string_view kEcallEnter = "sgx.ecall.enter";
inline constexpr std::string_view kEnclaveHeapAlloc = "sgx.heap.alloc";
inline constexpr std::string_view kKeyServiceFetch = "semirt.keyservice.fetch";
inline constexpr std::string_view kRatlsHandshake = "ratls.handshake";
inline constexpr std::string_view kStorageGet = "storage.object.get";
inline constexpr std::string_view kServerlessDispatch = "serverless.dispatch";
}  // namespace faults

/// Per-point injection policy.
struct FaultConfig {
  /// Chance that one evaluation triggers (latency and/or error).
  double probability = 1.0;
  /// Stop triggering after this many fires (-1 = unlimited).
  int max_fires = -1;
  /// Let the first N evaluations pass untouched (deterministic "fail the
  /// K-th call" scenarios).
  int skip_first = 0;
  /// Stall a triggering evaluation this long before returning (models a
  /// hung link / slow storage). 0 = fail fast.
  TimeMicros latency_micros = 0;
  /// Error a triggering evaluation returns. kOk makes the point latency-only
  /// (it stalls but never fails).
  StatusCode error_code = StatusCode::kUnavailable;
};

/// Cumulative per-point counters.
struct FaultPointStats {
  uint64_t evaluations = 0;  ///< probe executions while armed
  uint64_t fires = 0;        ///< evaluations that triggered
};

namespace faultpoint_internal {
/// Number of armed points. Lives outside the class so the macro's fast path
/// inlines to a single relaxed load with no function call.
extern std::atomic<uint32_t> g_armed_points;
}  // namespace faultpoint_internal

/// Process-wide fault-point registry. All mutation goes through a mutex —
/// fault evaluation is the slow path by definition; the hot path never gets
/// here (see SESEMI_FAULT_POINT).
///
/// \threadsafety All methods safe to call concurrently. With multiple
/// threads the *interleaving* of draws is scheduling-dependent, but the
/// draw sequence itself is the seeded generator's, so single-threaded
/// replays are bit-identical and multi-threaded fire counts are
/// seed-stable in distribution.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// True when at least one point is armed (the macro's gate).
  static bool AnyArmed() {
    return faultpoint_internal::g_armed_points.load(std::memory_order_relaxed) != 0;
  }

  /// Arm `point` with `config` (re-arming replaces the config and resets the
  /// point's counters).
  void Arm(std::string_view point, const FaultConfig& config);
  void Disarm(std::string_view point);
  void DisarmAll();

  /// Re-seed the shared draw sequence (tests call this next to Arm so a run
  /// is reproducible end to end).
  void Reseed(uint64_t seed);

  FaultPointStats stats(std::string_view point) const;
  uint64_t total_fires() const;
  /// Evaluate calls since the last DisarmAll/Reseed — the
  /// zero-overhead-when-disabled probe asserts this stays 0.
  uint64_t total_evaluations() const;

  /// Slow path behind the macro: decide whether `point` fires, apply its
  /// latency, and return its error (OK = pass).
  Status Evaluate(std::string_view point);

 private:
  FaultInjector() = default;

  struct Point {
    FaultConfig config;
    FaultPointStats stats;
  };

  mutable std::mutex mutex_;
  Rng rng_;  ///< guarded by mutex_
  std::unordered_map<std::string, Point> points_;  ///< guarded by mutex_
  std::atomic<uint64_t> total_evaluations_{0};
  std::atomic<uint64_t> total_fires_{0};
};

/// RAII arm/disarm for tests: the point is disarmed (and its counters kept)
/// when the scope exits, so a failing assertion cannot leak an armed fault
/// into later tests.
class ScopedFault {
 public:
  ScopedFault(std::string_view point, const FaultConfig& config)
      : point_(point) {
    FaultInjector::Instance().Arm(point_, config);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

/// Fault probe: a no-op branch when nothing is armed; returns the injected
/// Status from the enclosing function when the point fires. Usable in any
/// function returning Status or Result<T>.
#define SESEMI_FAULT_POINT(point)                                       \
  do {                                                                  \
    if (::sesemi::FaultInjector::AnyArmed()) {                          \
      ::sesemi::Status _sesemi_fault =                                  \
          ::sesemi::FaultInjector::Instance().Evaluate(point);          \
      if (!_sesemi_fault.ok()) return _sesemi_fault;                    \
    }                                                                   \
  } while (0)

}  // namespace sesemi

#endif  // SESEMI_COMMON_FAULTPOINT_H_
