#include "common/parallel_for.h"

#include <atomic>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

namespace sesemi {

/// Private bridge so the pool (file-local) can complete TaskGroup bookkeeping.
class ForkJoinPoolAccess {
 public:
  static void FinishTask(TaskGroup* group) { group->OnTaskFinished(); }
};

namespace {

// A minimal fork-join pool with two work sources sharing one worker set:
//
//  - one chunked ParallelFor job at a time, chunks handed out by an atomic
//    cursor (GEMM outer blocks are coarse, so the single-job model keeps the
//    dispatch path to one atomic fetch_add per chunk);
//  - a FIFO queue of TaskGroup tasks (whole serverless requests).
//
// Workers prefer job chunks over tasks: chunks are fine-grained pieces of an
// already-running computation whose owner is blocked in Run(), while tasks
// are whole requests that tolerate queueing. A task may itself call
// ParallelFor; the job it publishes is then drained by the remaining workers,
// which is how panels from different in-flight requests interleave.
//
// Job lifetime protocol: the Job lives on the caller's stack. Workers may
// only take a reservation (active++) under the pool mutex while job_ is
// non-null; the caller retires the job by clearing job_ under the same mutex
// and then waiting for active to reach zero, so no worker can touch a dead
// Job. The caller always drains its own job to completion, so Run never
// depends on workers existing.
class ForkJoinPool {
 public:
  static ForkJoinPool& Instance() {
    static ForkJoinPool* pool = new ForkJoinPool();  // leaked: lives for the process
    return *pool;
  }

  int degree() const { return static_cast<int>(workers_.size()) + 1; }

  void Run(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t)>& fn) {
    Job job;
    job.fn = &fn;
    job.next.store(begin, std::memory_order_relaxed);
    job.end = end;
    job.grain = grain;
    job.active.store(1, std::memory_order_relaxed);  // the caller's reservation
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      generation_++;
    }
    wake_.notify_all();

    DrainChunks(&job);  // the caller works too

    std::unique_lock<std::mutex> lock(mutex_);
    // No new reservations for this job from here on. A concurrent Run may
    // have already published its own job; only clear our own registration.
    if (job_ == &job) job_ = nullptr;
    if (job.active.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      done_.wait(lock,
                 [&] { return job.active.load(std::memory_order_acquire) == 0; });
    }
  }

  void Push(TaskGroup* group, std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push_back(Task{group, std::move(fn)});
    }
    wake_.notify_one();
  }

  // Pop and run one queued task belonging to `group` on the calling thread.
  // Returns false when none of `group`'s tasks are queued (they may still be
  // running on workers).
  bool RunOneTaskOf(TaskGroup* group) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
      if (it->group != group) continue;
      Task task = std::move(*it);
      tasks_.erase(it);
      lock.unlock();
      task.fn();
      ForkJoinPoolAccess::FinishTask(task.group);
      return true;
    }
    return false;
  }

 private:
  struct Job {
    const std::function<void(int64_t, int64_t)>* fn;
    std::atomic<int64_t> next{0};
    int64_t end = 0;
    int64_t grain = 1;
    std::atomic<int> active{0};
  };

  struct Task {
    TaskGroup* group;
    std::function<void()> fn;
  };

  ForkJoinPool() {
    const unsigned hw = std::thread::hardware_concurrency();
    const int extra = hw > 1 ? static_cast<int>(hw) - 1 : 0;
    workers_.reserve(extra);
    for (int i = 0; i < extra; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void DrainChunks(Job* job) {
    for (;;) {
      const int64_t start = job->next.fetch_add(job->grain, std::memory_order_relaxed);
      if (start >= job->end) break;
      const int64_t stop = std::min(start + job->grain, job->end);
      (*job->fn)(start, stop);
    }
  }

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job* job_ = nullptr;            ///< guarded by mutex_
  uint64_t generation_ = 0;       ///< guarded by mutex_
  std::deque<Task> tasks_;        ///< guarded by mutex_
  std::vector<std::thread> workers_;
};

thread_local bool t_inside_parallel_for = false;

/// Per-job participation cap (see SetBulkHelperLimit): 0 = unclamped. Read
/// relaxed on the worker wake path; set by the RT tier on busy transitions.
std::atomic<int> g_bulk_helper_limit{0};

void ForkJoinPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return generation_ != seen || !tasks_.empty(); });
    seen = generation_;
    Job* job = job_;
    // Skip registration when the job's cursor is already exhausted (its owner
    // just hasn't retired it yet) — otherwise a worker woken for a queued
    // task would spin on the no-op job instead of reaching the task branch.
    if (job != nullptr &&
        job->next.load(std::memory_order_relaxed) >= job->end) {
      job = nullptr;
    }
    // CPU-budget clamp while RT lanes are busy: once `limit` threads
    // (counting the caller) are draining this job, further workers leave it
    // alone — its owner still drains it to completion — and serve tasks.
    const int helper_limit = g_bulk_helper_limit.load(std::memory_order_relaxed);
    if (job != nullptr && helper_limit > 0 &&
        job->active.load(std::memory_order_acquire) >= helper_limit) {
      job = nullptr;
    }
    if (job != nullptr) {
      job->active.fetch_add(1, std::memory_order_acq_rel);
      lock.unlock();
      // Chunk bodies run nested ParallelFor calls inline (same rule as the
      // calling side); tasks, by contrast, may fan out freely.
      t_inside_parallel_for = true;
      DrainChunks(job);
      t_inside_parallel_for = false;
      const bool last = job->active.fetch_sub(1, std::memory_order_acq_rel) == 1;
      lock.lock();
      if (last) done_.notify_all();
      continue;  // a new job or task may have arrived while we were busy
    }
    if (!tasks_.empty()) {
      Task task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task.fn();
      ForkJoinPoolAccess::FinishTask(task.group);
      lock.lock();
    }
  }
}

}  // namespace

int ParallelismDegree() { return ForkJoinPool::Instance().degree(); }

bool InsideParallelForChunk() { return t_inside_parallel_for; }

void SetBulkHelperLimit(int limit) {
  g_bulk_helper_limit.store(limit < 0 ? 0 : limit, std::memory_order_relaxed);
}

int BulkHelperLimit() {
  return g_bulk_helper_limit.load(std::memory_order_relaxed);
}

void ParallelForDispatch(int64_t begin, int64_t end, int64_t grain,
                         const std::function<void(int64_t, int64_t)>& fn) {
  // Serial short-circuits already ran in the ParallelFor template.
  t_inside_parallel_for = true;
  ForkJoinPool::Instance().Run(begin, end, grain, fn);
  t_inside_parallel_for = false;
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_++;
  }
  if (ForkJoinPool::Instance().degree() == 1) {
    // No workers exist: run inline so completion never depends on them.
    task();
    OnTaskFinished();
    return;
  }
  ForkJoinPool::Instance().Push(this, std::move(task));
}

void TaskGroup::Wait() {
  while (ForkJoinPool::Instance().RunOneTaskOf(this)) {
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return pending_ == 0; });
}

int TaskGroup::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

void TaskGroup::OnTaskFinished() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (--pending_ == 0) done_.notify_all();
}

}  // namespace sesemi
