#include "common/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace sesemi {

namespace {

// A minimal fork-join pool: one shared job at a time, chunks handed out by an
// atomic cursor. GEMM outer blocks are coarse (whole row panels), so the
// single-job model is enough and keeps the dispatch path to one atomic
// fetch_add per chunk.
//
// Lifetime protocol: the Job lives on the caller's stack. Workers may only
// take a reservation (active++) under the pool mutex while job_ is non-null;
// the caller retires the job by clearing job_ under the same mutex and then
// waiting for active to reach zero, so no worker can touch a dead Job.
class ForkJoinPool {
 public:
  static ForkJoinPool& Instance() {
    static ForkJoinPool* pool = new ForkJoinPool();  // leaked: lives for the process
    return *pool;
  }

  int degree() const { return static_cast<int>(workers_.size()) + 1; }

  void Run(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t)>& fn) {
    Job job;
    job.fn = &fn;
    job.next.store(begin, std::memory_order_relaxed);
    job.end = end;
    job.grain = grain;
    job.active.store(1, std::memory_order_relaxed);  // the caller's reservation
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      generation_++;
    }
    wake_.notify_all();

    DrainChunks(&job);  // the caller works too

    std::unique_lock<std::mutex> lock(mutex_);
    // No new reservations for this job from here on. A concurrent Run may
    // have already published its own job; only clear our own registration.
    if (job_ == &job) job_ = nullptr;
    if (job.active.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      done_.wait(lock,
                 [&] { return job.active.load(std::memory_order_acquire) == 0; });
    }
  }

 private:
  struct Job {
    const std::function<void(int64_t, int64_t)>* fn;
    std::atomic<int64_t> next{0};
    int64_t end = 0;
    int64_t grain = 1;
    std::atomic<int> active{0};
  };

  ForkJoinPool() {
    const unsigned hw = std::thread::hardware_concurrency();
    const int extra = hw > 1 ? static_cast<int>(hw) - 1 : 0;
    workers_.reserve(extra);
    for (int i = 0; i < extra; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void DrainChunks(Job* job) {
    for (;;) {
      const int64_t start = job->next.fetch_add(job->grain, std::memory_order_relaxed);
      if (start >= job->end) break;
      const int64_t stop = std::min(start + job->grain, job->end);
      (*job->fn)(start, stop);
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        job = job_;
        if (job != nullptr) job->active.fetch_add(1, std::memory_order_acq_rel);
      }
      if (job == nullptr) continue;
      DrainChunks(job);
      if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job* job_ = nullptr;
  uint64_t generation_ = 0;
  std::vector<std::thread> workers_;
};

thread_local bool t_inside_parallel_for = false;

}  // namespace

int ParallelismDegree() { return ForkJoinPool::Instance().degree(); }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  // Serial fast path: tiny ranges, single-core machines, and nested calls
  // (a pool worker re-entering ParallelFor would deadlock waiting on itself).
  if (t_inside_parallel_for || end - begin <= grain ||
      ForkJoinPool::Instance().degree() == 1) {
    fn(begin, end);
    return;
  }
  t_inside_parallel_for = true;
  ForkJoinPool::Instance().Run(begin, end, grain, fn);
  t_inside_parallel_for = false;
}

}  // namespace sesemi
