#include "common/rng.h"

#include <cmath>

namespace sesemi {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // Avoid the all-zero state (unreachable with splitmix, but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Exponential(double lambda) {
  double u = UniformDouble();
  // u is in [0,1); 1-u is in (0,1], so the log is finite.
  return -std::log(1.0 - u) / lambda;
}

double Rng::Gaussian() {
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = NextUint64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(v >> (8 * b));
  }
  if (i < n) {
    uint64_t v = NextUint64();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

}  // namespace sesemi
