#ifndef SESEMI_COMMON_EXECUTOR_H_
#define SESEMI_COMMON_EXECUTOR_H_

namespace sesemi {

class TaskGroup;

/// \file
/// The execution-tier seam (docs/ARCHITECTURE.md "Execution tiers").
///
/// Two tiers share the machine:
///
///  - kBulk:     the process-wide fork-join pool (common/parallel_for). Whole
///               requests and their data-parallel GEMM panels interleave
///               freely; throughput-optimal, latency-indifferent.
///  - kRealtime: a small set of pinned, elevated-priority lanes
///               (common/rt_executor). One request per lane at a time;
///               nothing on a lane ever waits on bulk-pool progress.
///
/// The tier is a thread property: every worker thread carries a thread-local
/// ExecTier, and latency-sensitive primitives consult it. ParallelFor runs
/// inline (single-threaded) on a kRealtime thread, so an RT lane never fans
/// work back into the pool it exists to bypass — and never blocks on workers
/// that are busy with bulk batches.

enum class ExecTier : int {
  kBulk = 0,      ///< shared fork-join pool (the default for every thread)
  kRealtime = 1,  ///< dedicated pinned inference lane
};

/// The calling thread's execution tier (kBulk unless a ScopedExecTier or an
/// RT lane says otherwise).
ExecTier CurrentExecTier();

/// RAII tier override for the current thread; restores the previous tier on
/// destruction. RT lanes hold one for their whole lifetime; tests use it to
/// exercise the RT-inline ParallelFor path without real lanes.
class ScopedExecTier {
 public:
  explicit ScopedExecTier(ExecTier tier);
  ~ScopedExecTier();
  ScopedExecTier(const ScopedExecTier&) = delete;
  ScopedExecTier& operator=(const ScopedExecTier&) = delete;

 private:
  ExecTier saved_;
};

/// What the platform's dispatch layer routes onto: something that runs
/// fire-and-forget jobs. Both tiers implement it, so class-aware dispatch is
/// "pick an Executor by priority class, Submit a pump job".
///
/// Jobs are a plain function pointer + context word (not std::function) so
/// implementations can promise an allocation-free submit path.
class Executor {
 public:
  virtual ~Executor() = default;

  using JobFn = void (*)(void*);

  /// Queue `fn(arg)` for execution. Returns false when the executor cannot
  /// accept (bounded ring full, shutting down) — the caller falls back to
  /// another tier. `arg` must stay valid until the job runs.
  virtual bool Submit(JobFn fn, void* arg) = 0;

  virtual const char* name() const = 0;
  virtual ExecTier tier() const = 0;
  /// Worker threads this executor can run jobs on concurrently.
  virtual int lanes() const = 0;
};

/// The shared fork-join pool behind the Executor seam: jobs become TaskGroup
/// tasks, so the owner's existing group remains the join/lifetime handle
/// (ServerlessPlatform points this at its async_tasks_ group and keeps its
/// shutdown drain unchanged). Submit never rejects; it may allocate (bulk
/// jobs tolerate that — the zero-alloc promise belongs to the RT tier).
class BulkExecutor final : public Executor {
 public:
  /// `group` must outlive the executor; completed jobs are accounted to it.
  explicit BulkExecutor(TaskGroup* group) : group_(group) {}

  bool Submit(JobFn fn, void* arg) override;
  const char* name() const override { return "bulk"; }
  ExecTier tier() const override { return ExecTier::kBulk; }
  int lanes() const override;

 private:
  TaskGroup* group_;
};

}  // namespace sesemi

#endif  // SESEMI_COMMON_EXECUTOR_H_
