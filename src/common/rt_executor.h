#ifndef SESEMI_COMMON_RT_EXECUTOR_H_
#define SESEMI_COMMON_RT_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <semaphore>
#include <thread>
#include <vector>

#include "common/executor.h"

namespace sesemi {

/// \file
/// The real-time execution tier (docs/ARCHITECTURE.md "Execution tiers"):
/// a small set of dedicated inference lanes for the latency-sensitive
/// priority classes, following the AARI real-time inference-thread pattern
/// (a high-priority thread fed through a semaphore/atomic handoff with
/// spin-then-backoff, never a mutex on the signalling path).
///
/// Design:
///  - Handoff is a fixed-capacity lock-free MPMC slot ring (Vyukov bounded
///    queue: per-slot sequence numbers, one CAS per enqueue/dequeue). Submit
///    performs ZERO heap allocations — probe-tested — and never blocks: a
///    full ring returns false and the caller degrades to the bulk tier.
///  - Wake is a counting semaphore (futex-backed on Linux): one release per
///    submitted job, so a parked lane wakes exactly when work exists. Lanes
///    spin with exponential pause backoff before parking, so the
///    steady-state handoff latency is a cache-line transfer, not a syscall.
///  - Lanes are pinned to distinct cores (highest first, away from the bulk
///    pool's natural low-core affinity) and elevated to SCHED_FIFO. Both are
///    privileged operations: EPERM (the normal CI-container outcome) is
///    detected once, logged once, and degrades to plain unpinned threads —
///    never an error.
///  - Every lane runs with CurrentExecTier() == kRealtime for its lifetime,
///    so ParallelFor inside a lane-executed job runs inline instead of
///    fanning into the bulk pool. While any lane is busy, the bulk pool's
///    per-job helper count is optionally clamped (SetBulkHelperLimit) so RT
///    work keeps whole cores.

struct RtExecutorConfig {
  /// Dedicated lanes (>= 1). Keep this small: each busy lane monopolizes a
  /// core that the bulk pool then shares N-1 ways.
  int num_lanes = 1;
  /// Slot-ring capacity (rounded up to a power of two). Submits beyond a
  /// full ring return false rather than blocking.
  uint32_t queue_capacity = 1024;
  /// Dequeue attempts a lane makes (with growing pause backoff, then yields)
  /// before parking on the semaphore. Auto-forced to 0 when the process has
  /// no spare core per lane (affinity-aware): spinning without an owned core
  /// steals the submitter's timeslice and inverts the latency win.
  int spin_iterations = 2048;
  /// Pin lane i to core (ncores-1-i); elevate to SCHED_FIFO. Both degrade
  /// gracefully when the kernel says no (see pinned/elevated in stats).
  bool pin_threads = true;
  bool elevate_priority = true;
  /// While >= 1 lane is busy, cap the threads concurrently draining any one
  /// bulk ParallelFor job (see SetBulkHelperLimit). 0 disables the clamp.
  /// The cap itself is bulk_helpers_while_busy, or the derived default
  /// max(1, ParallelismDegree() - num_lanes) when that is 0.
  bool clamp_bulk_while_busy = true;
  int bulk_helpers_while_busy = 0;
  /// Test hook: pretend every affinity/priority syscall failed with EPERM,
  /// forcing the unpinned-fallback path deterministically.
  bool simulate_sched_failure = false;
};

struct RtExecutorStats {
  int lanes = 0;
  int busy_lanes = 0;         ///< lanes currently executing a job
  uint64_t submitted = 0;     ///< accepted Submits
  uint64_t executed = 0;      ///< jobs completed on a lane
  uint64_t rejected_full = 0; ///< Submits refused on a full ring
  uint64_t parks = 0;         ///< times a lane gave up spinning and slept
  bool pinned = false;        ///< affinity applied on every lane
  bool elevated = false;      ///< SCHED_FIFO applied on every lane
};

class RtExecutor final : public Executor {
 public:
  explicit RtExecutor(const RtExecutorConfig& config);
  /// Stops accepting work, lets lanes drain every queued job, joins them.
  ~RtExecutor();

  RtExecutor(const RtExecutor&) = delete;
  RtExecutor& operator=(const RtExecutor&) = delete;

  /// Lock-free, allocation-free, non-blocking handoff. False when the ring
  /// is full or the executor is shutting down.
  bool Submit(JobFn fn, void* arg) override;

  const char* name() const override { return "rt"; }
  ExecTier tier() const override { return ExecTier::kRealtime; }
  int lanes() const override { return static_cast<int>(threads_.size()); }

  RtExecutorStats stats() const;

  /// True iff the calling thread is one of this process's RT lanes (any
  /// executor). The thread-identity half of the isolation contract.
  static bool OnRtLane();
  /// Lane index of the calling thread within its executor, or -1.
  static int LaneIndex();

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};
    JobFn fn = nullptr;
    void* arg = nullptr;
  };

  void LaneLoop(int lane);
  bool TryPop(JobFn* fn, void** arg);
  /// Apply pinning/priority for the calling lane thread; records failures.
  void ApplyLaneScheduling(int lane);
  void EnterBusy();
  void LeaveBusy();

  RtExecutorConfig config_;
  int bulk_helper_cap_ = 0;  ///< resolved clamp value (0 = clamp off)
  uint32_t ring_mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};

  std::counting_semaphore<> ready_{0};
  std::atomic<bool> stop_{false};

  std::atomic<int> busy_lanes_{0};
  std::atomic<int> lanes_started_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> rejected_full_{0};
  std::atomic<uint64_t> parks_{0};
  std::atomic<bool> pin_failed_{false};
  std::atomic<bool> elevate_failed_{false};
  std::atomic<bool> warned_{false};

  std::vector<std::thread> threads_;
};

}  // namespace sesemi

#endif  // SESEMI_COMMON_RT_EXECUTOR_H_
