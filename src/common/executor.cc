#include "common/executor.h"

#include "common/parallel_for.h"

namespace sesemi {

namespace {
thread_local ExecTier t_exec_tier = ExecTier::kBulk;
}  // namespace

ExecTier CurrentExecTier() { return t_exec_tier; }

ScopedExecTier::ScopedExecTier(ExecTier tier) : saved_(t_exec_tier) {
  t_exec_tier = tier;
}

ScopedExecTier::~ScopedExecTier() { t_exec_tier = saved_; }

bool BulkExecutor::Submit(JobFn fn, void* arg) {
  group_->Submit([fn, arg] { fn(arg); });
  return true;
}

int BulkExecutor::lanes() const { return ParallelismDegree(); }

}  // namespace sesemi
