#ifndef SESEMI_COMMON_BYTES_H_
#define SESEMI_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sesemi {

/// Owned byte buffer used across module boundaries for keys, ciphertexts,
/// serialized models, and wire messages.
using Bytes = std::vector<uint8_t>;
/// Non-owning view over bytes.
using ByteSpan = std::span<const uint8_t>;

/// Copy a string's bytes into a Bytes buffer.
Bytes ToBytes(std::string_view s);

/// Zero-copy view of a string's bytes (the string must outlive the span).
inline ByteSpan SpanOf(std::string_view s) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

/// Interpret a byte buffer as a std::string (no encoding applied).
std::string ToString(ByteSpan b);

/// Lower-case hex encoding ("deadbeef").
std::string HexEncode(ByteSpan b);

/// Parse lower/upper-case hex. Returns empty vector on malformed input of odd
/// length or non-hex characters (callers that care use HexDecodeStrict).
Bytes HexDecode(std::string_view hex);

/// True iff `hex` is well-formed even-length hex.
bool IsHex(std::string_view hex);

/// Append `src` to `dst`.
void Append(Bytes* dst, ByteSpan src);

/// Concatenate any number of byte spans.
Bytes Concat(std::initializer_list<ByteSpan> parts);

/// Constant-time equality: runtime independent of where buffers differ.
/// Always scans max(len_a, len_b) bytes.
bool ConstantTimeEqual(ByteSpan a, ByteSpan b);

/// Serialize a uint32/uint64 big-endian (network order) into/out of buffers.
void PutUint32BE(Bytes* dst, uint32_t v);
void PutUint64BE(Bytes* dst, uint64_t v);
uint32_t GetUint32BE(const uint8_t* p);
uint64_t GetUint64BE(const uint8_t* p);

/// A simple cursor for parsing length-prefixed wire formats. All getters
/// return false (and leave outputs untouched) on underflow.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  bool ReadUint8(uint8_t* out);
  bool ReadUint32(uint32_t* out);
  bool ReadUint64(uint64_t* out);
  /// Read exactly `n` raw bytes.
  bool ReadBytes(size_t n, Bytes* out);
  /// Read a uint32-length-prefixed byte string.
  bool ReadLengthPrefixed(Bytes* out);
  /// Read a uint32-length-prefixed string.
  bool ReadLengthPrefixedString(std::string* out);

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

/// Builder counterpart of ByteReader.
class ByteWriter {
 public:
  /// Pre-size the buffer so a known message layout serializes with a single
  /// allocation and no growth copies.
  void Reserve(size_t bytes) { buf_.reserve(buf_.size() + bytes); }

  void WriteUint8(uint8_t v) { buf_.push_back(v); }
  void WriteUint32(uint32_t v) { PutUint32BE(&buf_, v); }
  void WriteUint64(uint64_t v) { PutUint64BE(&buf_, v); }
  void WriteBytes(ByteSpan b) { Append(&buf_, b); }
  void WriteLengthPrefixed(ByteSpan b) {
    WriteUint32(static_cast<uint32_t>(b.size()));
    WriteBytes(b);
  }
  void WriteLengthPrefixedString(std::string_view s) {
    WriteUint32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes Take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

}  // namespace sesemi

#endif  // SESEMI_COMMON_BYTES_H_
