#include "common/bytes.h"

namespace sesemi {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(ByteSpan b) {
  return std::string(b.begin(), b.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(ByteSpan b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0xf]);
  }
  return out;
}

bool IsHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return false;
  for (char c : hex) {
    if (HexValue(c) < 0) return false;
  }
  return true;
}

Bytes HexDecode(std::string_view hex) {
  if (!IsHex(hex)) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>((HexValue(hex[i]) << 4) | HexValue(hex[i + 1])));
  }
  return out;
}

void Append(Bytes* dst, ByteSpan src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

Bytes Concat(std::initializer_list<ByteSpan> parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) Append(&out, p);
  return out;
}

bool ConstantTimeEqual(ByteSpan a, ByteSpan b) {
  // Fold the length difference into the accumulator instead of early-exiting.
  size_t n = a.size() > b.size() ? a.size() : b.size();
  uint8_t acc = static_cast<uint8_t>(a.size() != b.size());
  for (size_t i = 0; i < n; ++i) {
    uint8_t x = i < a.size() ? a[i] : 0;
    uint8_t y = i < b.size() ? b[i] : 0;
    acc |= static_cast<uint8_t>(x ^ y);
  }
  return acc == 0;
}

void PutUint32BE(Bytes* dst, uint32_t v) {
  dst->push_back(static_cast<uint8_t>(v >> 24));
  dst->push_back(static_cast<uint8_t>(v >> 16));
  dst->push_back(static_cast<uint8_t>(v >> 8));
  dst->push_back(static_cast<uint8_t>(v));
}

void PutUint64BE(Bytes* dst, uint64_t v) {
  PutUint32BE(dst, static_cast<uint32_t>(v >> 32));
  PutUint32BE(dst, static_cast<uint32_t>(v));
}

uint32_t GetUint32BE(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t GetUint64BE(const uint8_t* p) {
  return (static_cast<uint64_t>(GetUint32BE(p)) << 32) | GetUint32BE(p + 4);
}

bool ByteReader::ReadUint8(uint8_t* out) {
  if (remaining() < 1) return false;
  *out = data_[pos_++];
  return true;
}

bool ByteReader::ReadUint32(uint32_t* out) {
  if (remaining() < 4) return false;
  *out = GetUint32BE(data_.data() + pos_);
  pos_ += 4;
  return true;
}

bool ByteReader::ReadUint64(uint64_t* out) {
  if (remaining() < 8) return false;
  *out = GetUint64BE(data_.data() + pos_);
  pos_ += 8;
  return true;
}

bool ByteReader::ReadBytes(size_t n, Bytes* out) {
  if (remaining() < n) return false;
  out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return true;
}

bool ByteReader::ReadLengthPrefixed(Bytes* out) {
  uint32_t len = 0;
  size_t saved = pos_;
  if (!ReadUint32(&len) || remaining() < len) {
    pos_ = saved;
    return false;
  }
  return ReadBytes(len, out);
}

bool ByteReader::ReadLengthPrefixedString(std::string* out) {
  Bytes tmp;
  if (!ReadLengthPrefixed(&tmp)) return false;
  out->assign(tmp.begin(), tmp.end());
  return true;
}

}  // namespace sesemi
