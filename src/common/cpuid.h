// Shared x86 CPU feature probe for runtime dispatch.
//
// crypto/ and inference/ each grew their own __builtin_cpu_supports() calls;
// this centralises them and adds the AVX-512-era bits those builtins get
// wrong or miss: a feature only counts as usable when the CPUID bit is set
// AND the OS has enabled the matching state-save component in XCR0 (XMM/YMM
// for AVX2, plus opmask/ZMM_Hi256/Hi16_ZMM for anything AVX-512). Probing
// once at first use keeps every dispatch site consistent and cheap.
#pragma once

namespace sesemi {

struct CpuFeatures {
  // Leaf 1 ECX.
  bool ssse3 = false;
  bool sse41 = false;
  bool aes = false;     // AES-NI
  bool pclmul = false;  // PCLMULQDQ
  // Leaf 7 subleaf 0 (EBX/ECX), each gated on the XCR0 state it needs.
  bool avx2 = false;          // + FMA from leaf 1
  bool fma = false;
  bool sha = false;           // SHA-NI (SSE state only)
  bool avx512f = false;
  bool avx512vl = false;
  bool avx512bw = false;
  bool avx512vnni = false;    // vpdpbusd
  bool vaes = false;          // 256/512-bit AESENC
  bool vpclmulqdq = false;    // 256/512-bit PCLMULQDQ

  // OS state-save support (XGETBV XCR0), recorded for diagnostics.
  bool os_avx = false;     // XMM+YMM (bits 1-2)
  bool os_avx512 = false;  // + opmask/ZMM_Hi256/Hi16_ZMM (bits 5-7)

  // Derived tier predicates used by the dispatchers.
  bool Avx2Fma() const { return avx2 && fma; }
  // vpdpbusd on 512-bit vectors with masked tails.
  bool Avx512Vnni() const { return avx512f && avx512bw && avx512vl && avx512vnni; }
  // 4x128-lane AES + carryless multiply for the wide GCM tier.
  bool VaesGcm() const {
    return avx512f && avx512bw && avx512vl && vaes && vpclmulqdq && aes && pclmul;
  }
  bool AesniGcm() const { return aes && pclmul && ssse3; }
  bool ShaNi() const { return sha && sse41; }
};

// Probes once (thread-safe static init) and returns the cached result.
// Non-x86 builds report all-false.
const CpuFeatures& GetCpuFeatures();

}  // namespace sesemi
