#include "common/faultpoint.h"

#include <chrono>
#include <thread>

namespace sesemi {

namespace faultpoint_internal {
std::atomic<uint32_t> g_armed_points{0};
}  // namespace faultpoint_internal

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();  // never destroyed
  return *instance;
}

void FaultInjector::Arm(std::string_view point, const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = points_.try_emplace(std::string(point));
  it->second.config = config;
  it->second.stats = FaultPointStats{};
  if (inserted) {
    faultpoint_internal::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (points_.erase(std::string(point)) > 0) {
    faultpoint_internal::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  faultpoint_internal::g_armed_points.fetch_sub(
      static_cast<uint32_t>(points_.size()), std::memory_order_relaxed);
  points_.clear();
  total_evaluations_.store(0, std::memory_order_relaxed);
  total_fires_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_ = Rng(seed);
  total_evaluations_.store(0, std::memory_order_relaxed);
  total_fires_.store(0, std::memory_order_relaxed);
  for (auto& [name, entry] : points_) entry.stats = FaultPointStats{};
}

FaultPointStats FaultInjector::stats(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? FaultPointStats{} : it->second.stats;
}

uint64_t FaultInjector::total_fires() const {
  return total_fires_.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::total_evaluations() const {
  return total_evaluations_.load(std::memory_order_relaxed);
}

Status FaultInjector::Evaluate(std::string_view point) {
  TimeMicros latency = 0;
  StatusCode code = StatusCode::kOk;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    total_evaluations_.fetch_add(1, std::memory_order_relaxed);
    auto it = points_.find(std::string(point));
    if (it == points_.end()) return Status::OK();  // a different point is armed
    Point& entry = it->second;
    entry.stats.evaluations++;
    if (entry.stats.evaluations <=
        static_cast<uint64_t>(entry.config.skip_first)) {
      return Status::OK();
    }
    if (entry.config.max_fires >= 0 &&
        entry.stats.fires >= static_cast<uint64_t>(entry.config.max_fires)) {
      return Status::OK();
    }
    if (!rng_.Bernoulli(entry.config.probability)) return Status::OK();
    entry.stats.fires++;
    total_fires_.fetch_add(1, std::memory_order_relaxed);
    latency = entry.config.latency_micros;
    code = entry.config.error_code;
  }
  // Stall outside the registry lock so a latency fault on one point never
  // serializes evaluation of the others.
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, "fault injected: " + std::string(point));
}

}  // namespace sesemi
