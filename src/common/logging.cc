#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sesemi {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

void StderrSink(const char* line, size_t length) {
  // One fwrite per complete line: a single stdio operation, so lines from
  // other processes sharing the fd interleave at line granularity at worst.
  std::fwrite(line, 1, length, stderr);
}

std::atomic<LogSink> g_sink{&StderrSink};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogSink(LogSink sink) {
  g_sink.store(sink != nullptr ? sink : &StderrSink);
}

namespace internal {
void EmitLog(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  // Build the complete line outside the lock; the sink call is the only
  // serialized section and performs exactly one write.
  std::string formatted;
  formatted.reserve(msg.size() + 64);
  formatted += '[';
  formatted += LevelTag(level);
  formatted += ' ';
  formatted += base;
  formatted += ':';
  formatted += std::to_string(line);
  formatted += "] ";
  formatted += msg;
  formatted += '\n';
  LogSink sink = g_sink.load();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  sink(formatted.c_str(), formatted.size());
}
}  // namespace internal

}  // namespace sesemi
