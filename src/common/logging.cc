#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sesemi {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {
void EmitLog(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line, msg.c_str());
}
}  // namespace internal

}  // namespace sesemi
