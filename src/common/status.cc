#include "common/status.h"

namespace sesemi {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kPermissionDenied: return "PermissionDenied";
    case StatusCode::kUnauthenticated: return "Unauthenticated";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kAborted: return "Aborted";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  for (int i = static_cast<int>(StatusCode::kOk);
       i <= static_cast<int>(StatusCode::kAborted); ++i) {
    auto code = static_cast<StatusCode>(i);
    if (StatusCodeToString(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace sesemi
