#include "common/rt_executor.h"

#include <algorithm>
#include <cerrno>

#include "common/logging.h"
#include "common/parallel_for.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sesemi {

namespace {

thread_local int t_rt_lane_index = -1;

inline void CpuPause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// CPUs this process may actually run on — affinity-aware, unlike
// hardware_concurrency() on some libcs. Spinning is only profitable when a
// lane can own a core outright; see the ctor.
int AvailableCpus() {
#if defined(__linux__)
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  return std::max(1u, std::thread::hardware_concurrency());
}

uint32_t RoundUpPow2(uint32_t v) {
  if (v < 2) return 2;
  v--;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

}  // namespace

bool RtExecutor::OnRtLane() { return t_rt_lane_index >= 0; }

int RtExecutor::LaneIndex() { return t_rt_lane_index; }

RtExecutor::RtExecutor(const RtExecutorConfig& config) : config_(config) {
  config_.num_lanes = std::max(1, config_.num_lanes);
  config_.spin_iterations = std::max(0, config_.spin_iterations);
  // Spinning buys a cache-line handoff only when the lane owns a core the
  // rest of the process is not waiting for. On machines (or cgroups) without
  // a spare core per lane, a spinning lane steals the submitter's timeslice
  // and ADDS milliseconds of latency — park immediately instead.
  if (AvailableCpus() <= config_.num_lanes) config_.spin_iterations = 0;
  if (config_.clamp_bulk_while_busy) {
    bulk_helper_cap_ = config_.bulk_helpers_while_busy > 0
                           ? config_.bulk_helpers_while_busy
                           : std::max(1, ParallelismDegree() - config_.num_lanes);
  }

  const uint32_t capacity = RoundUpPow2(std::max<uint32_t>(config_.queue_capacity, 2));
  ring_mask_ = capacity - 1;
  slots_ = std::make_unique<Slot[]>(capacity);
  for (uint32_t i = 0; i < capacity; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  threads_.reserve(static_cast<size_t>(config_.num_lanes));
  for (int i = 0; i < config_.num_lanes; ++i) {
    threads_.emplace_back([this, i] { LaneLoop(i); });
  }
  // Block until every lane has applied (or failed to apply) its pinning and
  // priority, so stats().pinned/elevated are deterministic from construction
  // and no submit can race a half-built lane set.
  while (lanes_started_.load(std::memory_order_acquire) < config_.num_lanes) {
    std::this_thread::yield();
  }
}

RtExecutor::~RtExecutor() {
  stop_.store(true, std::memory_order_release);
  // One token per lane: each post-stop lane consumes at most one (it drains
  // the ring and exits instead of re-parking), so every parked lane wakes.
  ready_.release(static_cast<std::ptrdiff_t>(threads_.size()));
  for (std::thread& t : threads_) t.join();
  // Lanes drained the ring before exiting; nothing queued can dangle.
}

bool RtExecutor::Submit(JobFn fn, void* arg) {
  if (stop_.load(std::memory_order_acquire)) return false;

  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & ring_mask_];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        slot.fn = fn;
        slot.arg = arg;
        slot.seq.store(pos + 1, std::memory_order_release);
        submitted_.fetch_add(1, std::memory_order_relaxed);
        ready_.release();
        return true;
      }
    } else if (diff < 0) {
      // The slot one full lap behind is still unconsumed: ring full.
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool RtExecutor::TryPop(JobFn* fn, void** arg) {
  uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & ring_mask_];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
    if (diff == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        *fn = slot.fn;
        *arg = slot.arg;
        slot.seq.store(pos + ring_mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // empty
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

void RtExecutor::ApplyLaneScheduling(int lane) {
#if defined(__linux__)
  bool failed = false;
  if (config_.pin_threads) {
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    // Highest cores first: the bulk pool's workers have no affinity, so the
    // scheduler tends to spread them from low cores up; pinning lanes from
    // the top minimizes steady-state overlap.
    CPU_SET((ncpu - 1u - (static_cast<unsigned>(lane) % ncpu)) % ncpu, &set);
    const int rc = config_.simulate_sched_failure
                       ? EPERM
                       : pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    if (rc != 0) {
      pin_failed_.store(true, std::memory_order_relaxed);
      failed = true;
    }
  }
  if (config_.elevate_priority) {
    sched_param param{};
    param.sched_priority = 40;
    const int rc = config_.simulate_sched_failure
                       ? EPERM
                       : pthread_setschedparam(pthread_self(), SCHED_FIFO, &param);
    if (rc != 0) {
      elevate_failed_.store(true, std::memory_order_relaxed);
      failed = true;
    }
  }
  if (failed && !warned_.exchange(true, std::memory_order_relaxed)) {
    // Expected in unprivileged containers (EPERM without CAP_SYS_NICE): the
    // tier still isolates by thread identity and dispatch order, just
    // without hard CPU reservations.
    SESEMI_WLOG << "rt lane pin/priority unavailable (EPERM?); "
                << "falling back to unpinned normal-priority lanes";
  }
#else
  (void)lane;
  if (config_.pin_threads) pin_failed_.store(true, std::memory_order_relaxed);
  if (config_.elevate_priority) {
    elevate_failed_.store(true, std::memory_order_relaxed);
  }
#endif
}

void RtExecutor::EnterBusy() {
  const int prev = busy_lanes_.fetch_add(1, std::memory_order_acq_rel);
  if (prev == 0 && bulk_helper_cap_ > 0) SetBulkHelperLimit(bulk_helper_cap_);
}

void RtExecutor::LeaveBusy() {
  const int prev = busy_lanes_.fetch_sub(1, std::memory_order_acq_rel);
  if (prev == 1 && bulk_helper_cap_ > 0) SetBulkHelperLimit(0);
}

void RtExecutor::LaneLoop(int lane) {
  t_rt_lane_index = lane;
  ScopedExecTier tier(ExecTier::kRealtime);
  ApplyLaneScheduling(lane);
  lanes_started_.fetch_add(1, std::memory_order_release);

  JobFn fn = nullptr;
  void* arg = nullptr;
  for (;;) {
    // Always attempt the pop once, even with spinning disabled: the wake
    // token and the slot publish are separate, and a lane that parks without
    // looking would consume tokens while jobs sit in the ring.
    bool got = TryPop(&fn, &arg);
    // Spin-then-backoff: a fresh handoff lands within a few pause loops; the
    // exponential pause keeps the idle lane off the submitters' cache lines.
    // Once the backoff saturates, yield — on an oversubscribed machine the
    // submitter may need this core to publish the very job we are polling
    // for.
    int pause = 1;
    for (int i = 0; !got && i < config_.spin_iterations; ++i) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (pause < 64) {
        for (int p = 0; p < pause; ++p) CpuPause();
        pause <<= 1;
      } else {
        std::this_thread::yield();
      }
      got = TryPop(&fn, &arg);
    }
    if (!got) {
      if (stop_.load(std::memory_order_acquire)) {
        // Drain remaining jobs so nothing queued is abandoned, then exit.
        while (TryPop(&fn, &arg)) {
          EnterBusy();
          fn(arg);
          LeaveBusy();
          executed_.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      parks_.fetch_add(1, std::memory_order_relaxed);
      ready_.acquire();
      continue;
    }
    EnterBusy();
    fn(arg);
    LeaveBusy();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

RtExecutorStats RtExecutor::stats() const {
  RtExecutorStats s;
  s.lanes = static_cast<int>(threads_.size());
  s.busy_lanes = busy_lanes_.load(std::memory_order_relaxed);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.pinned = config_.pin_threads && !pin_failed_.load(std::memory_order_relaxed);
  s.elevated =
      config_.elevate_priority && !elevate_failed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sesemi
