#ifndef SESEMI_COMMON_RESULT_H_
#define SESEMI_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sesemi {

/// Value-or-Status, in the style of arrow::Result.
///
/// A Result<T> holds either a T (the operation succeeded) or a non-OK Status.
/// Constructing a Result from an OK Status is a programming error.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  /// Failure. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure Status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value; undefined behaviour if !ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The held value, or `fallback` on failure.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Assign a Result's value to `lhs`, or propagate its Status.
#define SESEMI_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define SESEMI_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define SESEMI_ASSIGN_OR_RETURN_NAME(a, b) SESEMI_ASSIGN_OR_RETURN_CAT(a, b)

#define SESEMI_ASSIGN_OR_RETURN(lhs, rexpr) \
  SESEMI_ASSIGN_OR_RETURN_IMPL(             \
      SESEMI_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, rexpr)

}  // namespace sesemi

#endif  // SESEMI_COMMON_RESULT_H_
