#ifndef SESEMI_COMMON_LOGGING_H_
#define SESEMI_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sesemi {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped at the call site.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Where formatted log lines go. Receives exactly one complete,
/// newline-terminated line per call; calls are serialized by the logger.
using LogSink = void (*)(const char* line, size_t length);

/// Replace the sink (nullptr restores the stderr default). Test seam for the
/// interleaving regression test; the sink must be callable from any thread.
void SetLogSink(LogSink sink);

namespace internal {
/// Formats the entire "[LEVEL file:line] msg\n" line into one buffer and
/// hands it to the sink as a single write under one mutex, so concurrent
/// writers can never interleave fragments of two messages.
void EmitLog(LogLevel level, const char* file, int line, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define SESEMI_LOG(level)                                            \
  if (::sesemi::GetLogLevel() <= ::sesemi::LogLevel::level)          \
  ::sesemi::internal::LogMessage(::sesemi::LogLevel::level, __FILE__, __LINE__).stream()

#define SESEMI_DLOG SESEMI_LOG(kDebug)
#define SESEMI_ILOG SESEMI_LOG(kInfo)
#define SESEMI_WLOG SESEMI_LOG(kWarn)
#define SESEMI_ELOG SESEMI_LOG(kError)

}  // namespace sesemi

#endif  // SESEMI_COMMON_LOGGING_H_
