#include "common/cpuid.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define SESEMI_CPUID_X86 1
#endif

namespace sesemi {
namespace {

#ifdef SESEMI_CPUID_X86

// XCR0 component bits (Intel SDM vol. 1, "XSAVE-Managed State").
constexpr unsigned long long kXcr0Sse = 0x2;        // XMM
constexpr unsigned long long kXcr0Avx = 0x4;        // YMM
constexpr unsigned long long kXcr0Opmask = 0x20;    // k0-k7
constexpr unsigned long long kXcr0ZmmHi256 = 0x40;  // ZMM0-15 upper halves
constexpr unsigned long long kXcr0Hi16Zmm = 0x80;   // ZMM16-31

unsigned long long ReadXcr0() {
  unsigned int eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}

CpuFeatures Probe() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;

  f.ssse3 = ecx & (1u << 9);
  f.sse41 = ecx & (1u << 19);
  f.aes = ecx & (1u << 25);
  f.pclmul = ecx & (1u << 1);
  const bool osxsave = ecx & (1u << 27);
  const bool cpu_avx = ecx & (1u << 28);
  const bool cpu_fma = ecx & (1u << 12);

  unsigned long long xcr0 = osxsave ? ReadXcr0() : 0;
  f.os_avx = (xcr0 & (kXcr0Sse | kXcr0Avx)) == (kXcr0Sse | kXcr0Avx);
  const unsigned long long avx512_state =
      kXcr0Sse | kXcr0Avx | kXcr0Opmask | kXcr0ZmmHi256 | kXcr0Hi16Zmm;
  f.os_avx512 = (xcr0 & avx512_state) == avx512_state;

  unsigned int max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf >= 7) {
    unsigned int b7 = 0, c7 = 0, d7 = 0, a7 = 0;
    __cpuid_count(7, 0, a7, b7, c7, d7);
    f.sha = b7 & (1u << 29);  // SHA-NI needs only SSE state (always on).
    if (f.os_avx) {
      f.avx2 = cpu_avx && (b7 & (1u << 5));
      f.fma = cpu_avx && cpu_fma;
    }
    if (f.os_avx512) {
      f.avx512f = b7 & (1u << 16);
      f.avx512bw = b7 & (1u << 30);
      f.avx512vl = b7 & (1u << 31);
      f.avx512vnni = c7 & (1u << 11);
      // VAES/VPCLMULQDQ encode 256-bit forms usable with AVX alone, but our
      // kernels use the 512-bit forms, so gate them on AVX-512 state too.
      f.vaes = c7 & (1u << 9);
      f.vpclmulqdq = c7 & (1u << 10);
    }
  }
  return f;
}

#else  // !SESEMI_CPUID_X86

CpuFeatures Probe() { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

}  // namespace sesemi
