#ifndef SESEMI_COMMON_STATUS_H_
#define SESEMI_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sesemi {

/// Error category for a failed operation. Mirrors the RocksDB/Arrow pattern of
/// a small closed set of codes plus a free-form message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed something malformed
  kNotFound = 2,          ///< key / object / model absent
  kAlreadyExists = 3,     ///< unique insert collided
  kPermissionDenied = 4,  ///< access-control check failed
  kUnauthenticated = 5,   ///< attestation / MAC / signature check failed
  kFailedPrecondition = 6,///< call sequencing violated (e.g. no session)
  kResourceExhausted = 7, ///< EPC / memory / TCS / capacity exceeded
  kInternal = 8,          ///< invariant broken inside the library
  kUnavailable = 9,       ///< transient: endpoint busy / service down
  kCorruption = 10,       ///< stored bytes failed integrity checks
  kUnimplemented = 11,    ///< feature not supported by this build
  kDeadlineExceeded = 12, ///< operation timed out
  kAborted = 13,          ///< operation cancelled mid-flight
};

/// Human-readable name of a StatusCode (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString; nullopt for an unrecognised name. Used by
/// log/bench tooling that round-trips codes through text.
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// The default-constructed Status is OK. Statuses are cheap to copy when OK
/// (no allocation). Follows the "check or propagate" discipline: callers must
/// either branch on ok() or return the status upward.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status PermissionDenied(std::string m) {
    return Status(StatusCode::kPermissionDenied, std::move(m));
  }
  static Status Unauthenticated(std::string m) {
    return Status(StatusCode::kUnauthenticated, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsPermissionDenied() const { return code_ == StatusCode::kPermissionDenied; }
  bool IsUnauthenticated() const { return code_ == StatusCode::kUnauthenticated; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagate a non-OK Status to the caller.
#define SESEMI_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::sesemi::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

}  // namespace sesemi

#endif  // SESEMI_COMMON_STATUS_H_
