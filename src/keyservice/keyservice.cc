#include "keyservice/keyservice.h"

#include "crypto/key.h"

namespace sesemi::keyservice {

namespace {
/// The KeyService "code pages". Fixed content gives the fixed identity E_K
/// that owners and users can derive independently (§IV-A).
std::vector<std::pair<std::string, Bytes>> KeyServiceCodeUnits() {
  return {{"keyservice-core", ToBytes("sesemi keyservice algorithm-1 v1")},
          {"ratls", ToBytes("sesemi ratls acceptor v1")}};
}

sgx::EnclaveConfig KeyServiceConfig(uint32_t num_tcs) {
  sgx::EnclaveConfig config;
  config.heap_size_bytes = 16ull << 20;  // key material is small
  config.num_tcs = num_tcs;
  return config;
}
}  // namespace

Result<std::unique_ptr<KeyServiceEnclave>> KeyServiceEnclave::Create(
    sgx::SgxPlatform* platform, uint32_t num_tcs) {
  sgx::EnclaveImage image("keyservice", KeyServiceCodeUnits(),
                          KeyServiceConfig(num_tcs));
  SESEMI_ASSIGN_OR_RETURN(std::unique_ptr<sgx::Enclave> enclave,
                          platform->CreateEnclave(image));
  return std::unique_ptr<KeyServiceEnclave>(
      new KeyServiceEnclave(std::move(enclave)));
}

sgx::Measurement KeyServiceEnclave::ExpectedMeasurement() {
  // Derivable from public code alone — the same derivation the enclave's
  // launch performs. num_tcs is part of the deployed configuration; the
  // canonical public build uses 8 connection slots.
  sgx::EnclaveImage image("keyservice", KeyServiceCodeUnits(), KeyServiceConfig(8));
  return image.mrenclave();
}

Result<Bytes> KeyServiceEnclave::IdentityKeyFor(const std::string& id) const {
  auto it = ks_i_.find(id);
  if (it == ks_i_.end()) {
    return Status::NotFound("identity not registered: " + id);
  }
  return it->second;
}

Result<std::string> KeyServiceEnclave::UserRegistration(ByteSpan identity_key) {
  if (identity_key.size() < crypto::kSymmetricKeySize) {
    return Status::InvalidArgument("identity key too short");
  }
  std::string id = crypto::DeriveIdentity(identity_key);
  std::lock_guard<std::mutex> lock(mutex_);
  if (ks_i_.count(id) > 0) {
    // Idempotent: re-registering the same key yields the same id.
    return id;
  }
  SESEMI_RETURN_IF_ERROR(ChargeHeap(id.size() + identity_key.size()));
  ks_i_.emplace(id, Bytes(identity_key.begin(), identity_key.end()));
  return id;
}

Status KeyServiceEnclave::AddModelKey(const std::string& owner_id,
                                      ByteSpan sealed_payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  SESEMI_ASSIGN_OR_RETURN(Bytes owner_key, IdentityKeyFor(owner_id));
  // GCM-authenticated under K_oid: only the owner could have produced this.
  SESEMI_ASSIGN_OR_RETURN(auto payload, OpenAddModelKey(owner_key, sealed_payload));
  auto& [model_id, model_key] = payload;
  auto it = ks_m_.find(model_id);
  if (it != ks_m_.end() && it->second.first != owner_id) {
    return Status::PermissionDenied("model id registered by another owner");
  }
  SESEMI_RETURN_IF_ERROR(ChargeHeap(model_id.size() + model_key.size()));
  ks_m_[model_id] = {owner_id, std::move(model_key)};
  return Status::OK();
}

Status KeyServiceEnclave::GrantAccess(const std::string& owner_id,
                                      ByteSpan sealed_payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  SESEMI_ASSIGN_OR_RETURN(Bytes owner_key, IdentityKeyFor(owner_id));
  SESEMI_ASSIGN_OR_RETURN(GrantAccessPayload p,
                          OpenGrantAccess(owner_key, sealed_payload));
  auto it = ks_m_.find(p.model_id);
  if (it == ks_m_.end()) {
    return Status::NotFound("no model key for " + p.model_id);
  }
  if (it->second.first != owner_id) {
    return Status::PermissionDenied("only the model owner may grant access");
  }
  std::string entry = p.model_id + "|" + p.enclave_hex + "|" + p.user_id;
  SESEMI_RETURN_IF_ERROR(ChargeHeap(entry.size()));
  acm_.insert(std::move(entry));
  return Status::OK();
}

Status KeyServiceEnclave::AddReqKey(const std::string& user_id,
                                    ByteSpan sealed_payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  SESEMI_ASSIGN_OR_RETURN(Bytes user_key, IdentityKeyFor(user_id));
  SESEMI_ASSIGN_OR_RETURN(AddReqKeyPayload p, OpenAddReqKey(user_key, sealed_payload));
  std::string entry = p.model_id + "|" + p.enclave_hex + "|" + user_id;
  SESEMI_RETURN_IF_ERROR(ChargeHeap(entry.size() + p.request_key.size()));
  ks_r_[std::move(entry)] = std::move(p.request_key);
  return Status::OK();
}

Result<std::pair<Bytes, Bytes>> KeyServiceEnclave::KeyProvisioning(
    const std::string& user_id, const std::string& model_id,
    const sgx::Measurement& enclave_identity) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string entry = model_id + "|" + enclave_identity.ToHex() + "|" + user_id;
  // Algorithm 1 line 23: the triple must be authorized by BOTH the owner's
  // ACM and the user's KS_R.
  if (acm_.count(entry) == 0) {
    return Status::PermissionDenied("owner has not authorized " + entry);
  }
  auto kr_it = ks_r_.find(entry);
  if (kr_it == ks_r_.end()) {
    return Status::PermissionDenied("user has not provided a request key for " + entry);
  }
  auto km_it = ks_m_.find(model_id);
  if (km_it == ks_m_.end()) {
    return Status::NotFound("no model key for " + model_id);
  }
  return std::make_pair(km_it->second.second, kr_it->second);
}

size_t KeyServiceEnclave::registered_identities() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ks_i_.size();
}
size_t KeyServiceEnclave::stored_model_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ks_m_.size();
}
size_t KeyServiceEnclave::stored_request_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ks_r_.size();
}
size_t KeyServiceEnclave::access_control_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return acm_.size();
}

// ---------------------------------------------------------------- Server

Result<ratls::ServerHello> KeyServiceServer::Connect(
    const ratls::ClientHello& hello, uint64_t* session_id) {
  sgx::TcsGuard tcs = service_->enclave()->EnterEcall();
  ratls::RatlsAcceptor acceptor(service_->enclave());
  SESEMI_ASSIGN_OR_RETURN(ratls::RatlsAcceptor::Accepted accepted,
                          acceptor.Accept(hello, /*require_peer_quote=*/false));
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = next_session_id_++;
  sessions_.emplace(id, Session{std::move(accepted.session), std::nullopt});
  *session_id = id;
  return accepted.hello;
}

Result<ratls::ServerHello> KeyServiceServer::ConnectEnclave(
    const ratls::ClientHello& hello, uint64_t* session_id) {
  sgx::TcsGuard tcs = service_->enclave()->EnterEcall();
  ratls::RatlsAcceptor acceptor(service_->enclave());
  SESEMI_ASSIGN_OR_RETURN(ratls::RatlsAcceptor::Accepted accepted,
                          acceptor.Accept(hello, /*require_peer_quote=*/true));
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = next_session_id_++;
  sessions_.emplace(id, Session{std::move(accepted.session), accepted.peer_mrenclave});
  *session_id = id;
  return accepted.hello;
}

Result<Bytes> KeyServiceServer::Handle(uint64_t session_id, ByteSpan sealed_request) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session");
  }
  Session& session = it->second;

  sgx::TcsGuard tcs = service_->enclave()->EnterEcall();
  SESEMI_ASSIGN_OR_RETURN(Bytes request_wire, session.channel.Open(sealed_request));

  Response response;
  auto request = Request::Parse(request_wire);
  if (!request.ok()) {
    response = Response::FromStatus(request.status());
  } else {
    response = Dispatch(*request, session);
  }
  return session.channel.Seal(response.Serialize());
}

Response KeyServiceServer::Dispatch(const Request& request, const Session& session) {
  switch (request.op) {
    case OpCode::kUserRegistration: {
      auto id = service_->UserRegistration(request.payload);
      if (!id.ok()) return Response::FromStatus(id.status());
      Response resp;
      resp.payload = ToBytes(*id);
      return resp;
    }
    case OpCode::kAddModelKey:
      return Response::FromStatus(
          service_->AddModelKey(request.caller_id, request.payload));
    case OpCode::kGrantAccess:
      return Response::FromStatus(
          service_->GrantAccess(request.caller_id, request.payload));
    case OpCode::kAddReqKey:
      return Response::FromStatus(
          service_->AddReqKey(request.caller_id, request.payload));
    case OpCode::kKeyProvisioning: {
      if (!session.peer_mrenclave.has_value()) {
        return Response::FromStatus(Status::PermissionDenied(
            "KEY_PROVISIONING requires a mutually attested session"));
      }
      auto parsed = ParseKeyProvisioningPayload(request.payload);
      if (!parsed.ok()) return Response::FromStatus(parsed.status());
      const auto& [user_id, model_id] = *parsed;
      auto keys = service_->KeyProvisioning(user_id, model_id, *session.peer_mrenclave);
      if (!keys.ok()) return Response::FromStatus(keys.status());
      Response resp;
      resp.payload = BuildProvisionedKeys(keys->first, keys->second);
      return resp;
    }
  }
  return Response::FromStatus(Status::InvalidArgument("unknown opcode"));
}

void KeyServiceServer::Disconnect(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(session_id);
}

size_t KeyServiceServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

Result<std::unique_ptr<KeyServiceServer>> StartKeyService(sgx::SgxPlatform* platform) {
  SESEMI_ASSIGN_OR_RETURN(std::unique_ptr<KeyServiceEnclave> service,
                          KeyServiceEnclave::Create(platform));
  return std::make_unique<KeyServiceServer>(std::move(service));
}

}  // namespace sesemi::keyservice
