#ifndef SESEMI_KEYSERVICE_MESSAGES_H_
#define SESEMI_KEYSERVICE_MESSAGES_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace sesemi::keyservice {

/// Operations of Algorithm 1, carried over the attested channel.
enum class OpCode : uint8_t {
  kUserRegistration = 1,
  kAddModelKey = 2,
  kGrantAccess = 3,
  kAddReqKey = 4,
  kKeyProvisioning = 5,
};

/// A request record: opcode, caller id (empty for registration), and an
/// opaque payload. For the Add*/Grant* calls the payload is itself encrypted
/// under the caller's long-term identity key (the "[...]_{K_id}" notation in
/// Algorithm 1), so even KeyService's front-end never sees key material —
/// only the enclave logic that holds KS_I can open it.
struct Request {
  OpCode op;
  std::string caller_id;
  Bytes payload;

  Bytes Serialize() const;
  static Result<Request> Parse(ByteSpan wire);
};

/// A response record: a status code (mirrors StatusCode) plus payload.
struct Response {
  uint32_t code = 0;  ///< 0 = OK
  std::string message;
  Bytes payload;

  bool ok() const { return code == 0; }
  Bytes Serialize() const;
  static Result<Response> Parse(ByteSpan wire);
  static Response FromStatus(const Status& status);
};

// -------- Inner (identity-key-sealed) payload builders & parsers. --------
// AAD strings bind each payload to its operation so a sealed ADD_MODEL_KEY
// blob cannot be replayed as a GRANT_ACCESS.

/// [Moid || KM]_{Koid}
Result<Bytes> SealAddModelKey(ByteSpan identity_key, const std::string& model_id,
                              ByteSpan model_key);
Result<std::pair<std::string, Bytes>> OpenAddModelKey(ByteSpan identity_key,
                                                      ByteSpan sealed);

/// [Moid || ES || uid]_{Koid}
Result<Bytes> SealGrantAccess(ByteSpan identity_key, const std::string& model_id,
                              const std::string& enclave_hex,
                              const std::string& user_id);
struct GrantAccessPayload {
  std::string model_id;
  std::string enclave_hex;
  std::string user_id;
};
Result<GrantAccessPayload> OpenGrantAccess(ByteSpan identity_key, ByteSpan sealed);

/// [Moid || ES || KR]_{Kuid}
Result<Bytes> SealAddReqKey(ByteSpan identity_key, const std::string& model_id,
                            const std::string& enclave_hex, ByteSpan request_key);
struct AddReqKeyPayload {
  std::string model_id;
  std::string enclave_hex;
  Bytes request_key;
};
Result<AddReqKeyPayload> OpenAddReqKey(ByteSpan identity_key, ByteSpan sealed);

/// KEY_PROVISIONING request payload (plaintext inside the mutually attested
/// channel): uid || Moid.
Bytes BuildKeyProvisioningPayload(const std::string& user_id,
                                  const std::string& model_id);
Result<std::pair<std::string, std::string>> ParseKeyProvisioningPayload(ByteSpan wire);

/// KEY_PROVISIONING response payload: KM || KR.
Bytes BuildProvisionedKeys(ByteSpan model_key, ByteSpan request_key);
Result<std::pair<Bytes, Bytes>> ParseProvisionedKeys(ByteSpan wire);

}  // namespace sesemi::keyservice

#endif  // SESEMI_KEYSERVICE_MESSAGES_H_
