#include "keyservice/messages.h"

#include "crypto/gcm.h"

namespace sesemi::keyservice {

namespace {
constexpr char kAadAddModelKey[] = "sesemi-add-model-key";
constexpr char kAadGrantAccess[] = "sesemi-grant-access";
constexpr char kAadAddReqKey[] = "sesemi-add-req-key";
}  // namespace

Bytes Request::Serialize() const {
  ByteWriter w;
  w.Reserve(1 + 2 * sizeof(uint32_t) + caller_id.size() + payload.size());
  w.WriteUint8(static_cast<uint8_t>(op));
  w.WriteLengthPrefixedString(caller_id);
  w.WriteLengthPrefixed(payload);
  return std::move(w).Take();
}

Result<Request> Request::Parse(ByteSpan wire) {
  ByteReader r(wire);
  Request req;
  uint8_t op = 0;
  if (!r.ReadUint8(&op) || op < 1 || op > 5 ||
      !r.ReadLengthPrefixedString(&req.caller_id) ||
      !r.ReadLengthPrefixed(&req.payload)) {
    return Status::Corruption("malformed keyservice request");
  }
  req.op = static_cast<OpCode>(op);
  return req;
}

Bytes Response::Serialize() const {
  ByteWriter w;
  w.WriteUint32(code);
  w.WriteLengthPrefixedString(message);
  w.WriteLengthPrefixed(payload);
  return std::move(w).Take();
}

Result<Response> Response::Parse(ByteSpan wire) {
  ByteReader r(wire);
  Response resp;
  if (!r.ReadUint32(&resp.code) || !r.ReadLengthPrefixedString(&resp.message) ||
      !r.ReadLengthPrefixed(&resp.payload)) {
    return Status::Corruption("malformed keyservice response");
  }
  return resp;
}

Response Response::FromStatus(const Status& status) {
  Response resp;
  resp.code = static_cast<uint32_t>(status.code());
  resp.message = status.message();
  return resp;
}

Result<Bytes> SealAddModelKey(ByteSpan identity_key, const std::string& model_id,
                              ByteSpan model_key) {
  ByteWriter w;
  w.WriteLengthPrefixedString(model_id);
  w.WriteLengthPrefixed(model_key);
  return crypto::GcmSealParts(identity_key, SpanOf(kAadAddModelKey), {}, w.bytes());
}

Result<std::pair<std::string, Bytes>> OpenAddModelKey(ByteSpan identity_key,
                                                      ByteSpan sealed) {
  SESEMI_ASSIGN_OR_RETURN(Bytes plain,
                          crypto::GcmOpenParts(identity_key, SpanOf(kAadAddModelKey), {}, sealed));
  ByteReader r(plain);
  std::string model_id;
  Bytes model_key;
  if (!r.ReadLengthPrefixedString(&model_id) || !r.ReadLengthPrefixed(&model_key) ||
      !r.done()) {
    return Status::Corruption("malformed add-model-key payload");
  }
  return std::make_pair(std::move(model_id), std::move(model_key));
}

Result<Bytes> SealGrantAccess(ByteSpan identity_key, const std::string& model_id,
                              const std::string& enclave_hex,
                              const std::string& user_id) {
  ByteWriter w;
  w.WriteLengthPrefixedString(model_id);
  w.WriteLengthPrefixedString(enclave_hex);
  w.WriteLengthPrefixedString(user_id);
  return crypto::GcmSealParts(identity_key, SpanOf(kAadGrantAccess), {}, w.bytes());
}

Result<GrantAccessPayload> OpenGrantAccess(ByteSpan identity_key, ByteSpan sealed) {
  SESEMI_ASSIGN_OR_RETURN(Bytes plain,
                          crypto::GcmOpenParts(identity_key, SpanOf(kAadGrantAccess), {}, sealed));
  ByteReader r(plain);
  GrantAccessPayload p;
  if (!r.ReadLengthPrefixedString(&p.model_id) ||
      !r.ReadLengthPrefixedString(&p.enclave_hex) ||
      !r.ReadLengthPrefixedString(&p.user_id) || !r.done()) {
    return Status::Corruption("malformed grant-access payload");
  }
  return p;
}

Result<Bytes> SealAddReqKey(ByteSpan identity_key, const std::string& model_id,
                            const std::string& enclave_hex, ByteSpan request_key) {
  ByteWriter w;
  w.WriteLengthPrefixedString(model_id);
  w.WriteLengthPrefixedString(enclave_hex);
  w.WriteLengthPrefixed(request_key);
  return crypto::GcmSealParts(identity_key, SpanOf(kAadAddReqKey), {}, w.bytes());
}

Result<AddReqKeyPayload> OpenAddReqKey(ByteSpan identity_key, ByteSpan sealed) {
  SESEMI_ASSIGN_OR_RETURN(Bytes plain,
                          crypto::GcmOpenParts(identity_key, SpanOf(kAadAddReqKey), {}, sealed));
  ByteReader r(plain);
  AddReqKeyPayload p;
  if (!r.ReadLengthPrefixedString(&p.model_id) ||
      !r.ReadLengthPrefixedString(&p.enclave_hex) ||
      !r.ReadLengthPrefixed(&p.request_key) || !r.done()) {
    return Status::Corruption("malformed add-req-key payload");
  }
  return p;
}

Bytes BuildKeyProvisioningPayload(const std::string& user_id,
                                  const std::string& model_id) {
  ByteWriter w;
  w.WriteLengthPrefixedString(user_id);
  w.WriteLengthPrefixedString(model_id);
  return std::move(w).Take();
}

Result<std::pair<std::string, std::string>> ParseKeyProvisioningPayload(
    ByteSpan wire) {
  ByteReader r(wire);
  std::string user_id, model_id;
  if (!r.ReadLengthPrefixedString(&user_id) ||
      !r.ReadLengthPrefixedString(&model_id) || !r.done()) {
    return Status::Corruption("malformed key-provisioning payload");
  }
  return std::make_pair(std::move(user_id), std::move(model_id));
}

Bytes BuildProvisionedKeys(ByteSpan model_key, ByteSpan request_key) {
  ByteWriter w;
  w.WriteLengthPrefixed(model_key);
  w.WriteLengthPrefixed(request_key);
  return std::move(w).Take();
}

Result<std::pair<Bytes, Bytes>> ParseProvisionedKeys(ByteSpan wire) {
  ByteReader r(wire);
  Bytes model_key, request_key;
  if (!r.ReadLengthPrefixed(&model_key) || !r.ReadLengthPrefixed(&request_key) ||
      !r.done()) {
    return Status::Corruption("malformed provisioned keys");
  }
  return std::make_pair(std::move(model_key), std::move(request_key));
}

}  // namespace sesemi::keyservice
