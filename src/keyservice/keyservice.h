#ifndef SESEMI_KEYSERVICE_KEYSERVICE_H_
#define SESEMI_KEYSERVICE_KEYSERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "common/result.h"
#include "keyservice/messages.h"
#include "ratls/handshake.h"
#include "sgx/platform.h"

namespace sesemi::keyservice {

/// Trusted KeyService logic (Algorithm 1): the four key/policy stores and
/// five operations. Lives inside a KeyService enclave; all state is charged
/// to the enclave's trusted heap.
///
///  - KS_I: id -> long-term identity key
///  - KS_M: model id -> (owner id, model key)
///  - KS_R: Moid||ES||uid -> request key
///  - ACM : set of authorized Moid||ES||uid triples
class KeyServiceEnclave {
 public:
  /// Launch the KeyService enclave on `platform`. `num_tcs` bounds concurrent
  /// connections (one TCS per connection thread, §V).
  static Result<std::unique_ptr<KeyServiceEnclave>> Create(sgx::SgxPlatform* platform,
                                                           uint32_t num_tcs = 8);

  /// The fixed enclave identity E_K. Owners and users compare this against
  /// the measurement in KeyService's attestation report before registering.
  static sgx::Measurement ExpectedMeasurement();

  sgx::Enclave* enclave() { return enclave_.get(); }

  // ---- Algorithm 1 operations (invoked with a TCS held) ----

  /// USER_REGISTRATION: store the long-term key; returns id = SHA256(K_id).
  Result<std::string> UserRegistration(ByteSpan identity_key);

  /// ADD_MODEL_KEY: open [Moid||KM]_{Koid} and store ⟨Moid, KM⟩.
  Status AddModelKey(const std::string& owner_id, ByteSpan sealed_payload);

  /// GRANT_ACCESS: open [Moid||ES||uid]_{Koid}; only the model's owner can
  /// grant; stores ⟨Moid||ES||uid⟩ in ACM.
  Status GrantAccess(const std::string& owner_id, ByteSpan sealed_payload);

  /// ADD_REQ_KEY: open [Moid||ES||KR]_{Kuid}; stores the request key under
  /// ⟨Moid||ES||uid⟩.
  Status AddReqKey(const std::string& user_id, ByteSpan sealed_payload);

  /// KEY_PROVISIONING: `enclave_identity` comes from the verified mutual
  /// attestation, never from the request. Returns (KM, KR) iff the triple is
  /// authorized by both the owner (ACM) and the user (KS_R).
  Result<std::pair<Bytes, Bytes>> KeyProvisioning(
      const std::string& user_id, const std::string& model_id,
      const sgx::Measurement& enclave_identity);

  // ---- Introspection for tests/metrics ----
  size_t registered_identities() const;
  size_t stored_model_keys() const;
  size_t stored_request_keys() const;
  size_t access_control_entries() const;

 private:
  explicit KeyServiceEnclave(std::unique_ptr<sgx::Enclave> enclave)
      : enclave_(std::move(enclave)) {}

  Status ChargeHeap(size_t bytes) { return enclave_->AllocateTrusted(bytes); }
  Result<Bytes> IdentityKeyFor(const std::string& id) const;

  std::unique_ptr<sgx::Enclave> enclave_;

  mutable std::mutex mutex_;
  std::map<std::string, Bytes> ks_i_;
  std::map<std::string, std::pair<std::string, Bytes>> ks_m_;  // Moid -> (oid, KM)
  std::map<std::string, Bytes> ks_r_;                          // Moid|ES|uid -> KR
  std::set<std::string> acm_;
};

/// Untrusted front-end: accepts attested connections, maintains sessions,
/// and dispatches sealed requests into the enclave. This is the component
/// deployed as the always-on KeyService node in Figure 3.
class KeyServiceServer {
 public:
  explicit KeyServiceServer(std::unique_ptr<KeyServiceEnclave> service)
      : service_(std::move(service)) {}

  KeyServiceEnclave* service() { return service_.get(); }

  /// Client-side (owner/user) handshake: one-way attestation.
  Result<ratls::ServerHello> Connect(const ratls::ClientHello& hello,
                                     uint64_t* session_id);

  /// Enclave-side (SeMIRT) handshake: mutual attestation; the verified peer
  /// measurement is pinned to the session and used as ES.
  Result<ratls::ServerHello> ConnectEnclave(const ratls::ClientHello& hello,
                                            uint64_t* session_id);

  /// Open a sealed request on `session_id`, execute it, return the sealed
  /// response. KEY_PROVISIONING is rejected on non-mutually-attested sessions.
  Result<Bytes> Handle(uint64_t session_id, ByteSpan sealed_request);

  /// Drop a session (client disconnect).
  void Disconnect(uint64_t session_id);

  size_t active_sessions() const;

 private:
  struct Session {
    ratls::SecureSession channel;
    std::optional<sgx::Measurement> peer_mrenclave;
  };

  Response Dispatch(const Request& request, const Session& session);

  std::unique_ptr<KeyServiceEnclave> service_;
  mutable std::mutex mutex_;
  std::map<uint64_t, Session> sessions_;
  uint64_t next_session_id_ = 1;
};

/// Convenience: launch enclave + server on `platform`.
Result<std::unique_ptr<KeyServiceServer>> StartKeyService(sgx::SgxPlatform* platform);

}  // namespace sesemi::keyservice

#endif  // SESEMI_KEYSERVICE_KEYSERVICE_H_
