#ifndef SESEMI_CLIENT_CLIENTS_H_
#define SESEMI_CLIENT_CLIENTS_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "keyservice/keyservice.h"
#include "model/graph.h"
#include "ratls/session.h"
#include "semirt/request_codec.h"
#include "sgx/attestation.h"
#include "storage/object_store.h"

namespace sesemi::client {

/// A client-side attested connection to KeyService. Model owners and users
/// verify E_K during Connect (the paper's key-setup step 1) and then issue
/// Algorithm 1 operations over the channel.
class KeyServiceClient {
 public:
  /// Attest `server` and establish a secure channel. Fails if the service's
  /// quote doesn't verify or its measurement differs from `expected`.
  static Result<std::unique_ptr<KeyServiceClient>> Connect(
      keyservice::KeyServiceServer* server,
      const sgx::AttestationAuthority* authority, const sgx::Measurement& expected);

  ~KeyServiceClient();

  /// Issue one operation; returns the response payload on success.
  Result<Bytes> Call(keyservice::OpCode op, const std::string& caller_id,
                     Bytes payload);

 private:
  KeyServiceClient(keyservice::KeyServiceServer* server, uint64_t session_id,
                   ratls::SecureSession session)
      : server_(server), session_id_(session_id), session_(std::move(session)) {}

  keyservice::KeyServiceServer* server_;
  uint64_t session_id_;
  ratls::SecureSession session_;
};

/// The model-owner role: owns a long-term identity key, per-model model keys,
/// and drives the service-deployment workflow (encrypt + upload + register +
/// grant).
class ModelOwner {
 public:
  explicit ModelOwner(std::string display_name);

  const std::string& display_name() const { return display_name_; }
  /// id = SHA256(K_oid); valid after Register().
  const std::string& id() const { return id_; }

  /// USER_REGISTRATION with the owner's long-term key.
  Status Register(KeyServiceClient* keyservice);

  /// Deploy `graph`: generate a model key, encrypt, upload to `storage`
  /// (and a plaintext copy for the untrusted baselines when
  /// `with_plaintext_copy`), and ADD_MODEL_KEY at KeyService.
  Status DeployModel(KeyServiceClient* keyservice, storage::ObjectStore* storage,
                     const model::ModelGraph& graph, bool with_plaintext_copy = false);

  /// GRANT_ACCESS: authorize `user_id` to use `model_id` through enclaves
  /// measuring `enclave_identity`.
  Status GrantAccess(KeyServiceClient* keyservice, const std::string& model_id,
                     const sgx::Measurement& enclave_identity,
                     const std::string& user_id);

  /// The owner's local copy of a deployed model's key (for tests/recovery).
  Result<Bytes> ModelKey(const std::string& model_id) const;

 private:
  std::string display_name_;
  Bytes identity_key_;
  std::string id_;
  std::map<std::string, Bytes> model_keys_;
};

/// The model-user role: registers an identity, provisions per-(model,enclave)
/// request keys, and encrypts/decrypts request payloads.
class ModelUser {
 public:
  explicit ModelUser(std::string display_name);

  const std::string& display_name() const { return display_name_; }
  const std::string& id() const { return id_; }

  Status Register(KeyServiceClient* keyservice);

  /// Generate K_R for (model, enclave) and ADD_REQ_KEY it at KeyService.
  /// Request keys are scoped per ⟨model, enclave identity⟩, matching KS_R.
  Status ProvisionRequestKey(KeyServiceClient* keyservice,
                             const std::string& model_id,
                             const sgx::Measurement& enclave_identity);

  /// Build an encrypted inference request for `model_id`. When the user has
  /// provisioned keys for several enclave deployments of the same model,
  /// `enclave_identity` disambiguates; with one deployment it may be null.
  Result<semirt::InferenceRequest> BuildRequest(
      const std::string& model_id, ByteSpan input,
      const sgx::Measurement* enclave_identity = nullptr) const;

  /// Decrypt an inference result for `model_id` (same disambiguation rule).
  Result<Bytes> DecryptResult(const std::string& model_id, ByteSpan sealed,
                              const sgx::Measurement* enclave_identity = nullptr) const;

 private:
  Result<Bytes> RequestKeyFor(const std::string& model_id,
                              const sgx::Measurement* enclave_identity) const;

  std::string display_name_;
  Bytes identity_key_;
  std::string id_;
  std::map<std::string, Bytes> request_keys_;  // "model|es_hex" -> K_R
};

}  // namespace sesemi::client

#endif  // SESEMI_CLIENT_CLIENTS_H_
