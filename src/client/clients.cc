#include "client/clients.h"

#include "crypto/key.h"
#include "model/format.h"
#include "ratls/handshake.h"
#include "semirt/semirt.h"

namespace sesemi::client {

using keyservice::OpCode;
using keyservice::Request;
using keyservice::Response;

Result<std::unique_ptr<KeyServiceClient>> KeyServiceClient::Connect(
    keyservice::KeyServiceServer* server,
    const sgx::AttestationAuthority* authority, const sgx::Measurement& expected) {
  ratls::RatlsInitiator initiator(authority);
  SESEMI_ASSIGN_OR_RETURN(ratls::ClientHello hello, initiator.Start());
  uint64_t session_id = 0;
  SESEMI_ASSIGN_OR_RETURN(ratls::ServerHello reply,
                          server->Connect(hello, &session_id));
  SESEMI_ASSIGN_OR_RETURN(ratls::SecureSession session,
                          initiator.Finish(reply, expected));
  return std::unique_ptr<KeyServiceClient>(
      new KeyServiceClient(server, session_id, std::move(session)));
}

KeyServiceClient::~KeyServiceClient() {
  server_->Disconnect(session_id_);
}

Result<Bytes> KeyServiceClient::Call(OpCode op, const std::string& caller_id,
                                     Bytes payload) {
  Request request;
  request.op = op;
  request.caller_id = caller_id;
  request.payload = std::move(payload);
  SESEMI_ASSIGN_OR_RETURN(Bytes sealed, session_.Seal(request.Serialize()));
  SESEMI_ASSIGN_OR_RETURN(Bytes sealed_response, server_->Handle(session_id_, sealed));
  SESEMI_ASSIGN_OR_RETURN(Bytes wire, session_.Open(sealed_response));
  SESEMI_ASSIGN_OR_RETURN(Response response, Response::Parse(wire));
  if (!response.ok()) {
    return Status(static_cast<StatusCode>(response.code), response.message);
  }
  return response.payload;
}

// ---------------------------------------------------------------- ModelOwner

ModelOwner::ModelOwner(std::string display_name)
    : display_name_(std::move(display_name)),
      identity_key_(crypto::GenerateSymmetricKey(32)) {}

Status ModelOwner::Register(KeyServiceClient* keyservice) {
  SESEMI_ASSIGN_OR_RETURN(
      Bytes id_bytes,
      keyservice->Call(OpCode::kUserRegistration, "", identity_key_));
  id_ = ToString(id_bytes);
  if (id_ != crypto::DeriveIdentity(identity_key_)) {
    return Status::Internal("KeyService returned an unexpected identity");
  }
  return Status::OK();
}

Status ModelOwner::DeployModel(KeyServiceClient* keyservice,
                               storage::ObjectStore* storage,
                               const model::ModelGraph& graph,
                               bool with_plaintext_copy) {
  if (id_.empty()) return Status::FailedPrecondition("owner not registered");
  Bytes model_key = crypto::GenerateSymmetricKey();

  SESEMI_ASSIGN_OR_RETURN(Bytes sealed_model, model::EncryptModel(graph, model_key));
  SESEMI_RETURN_IF_ERROR(storage->Put(
      semirt::SemirtInstance::ModelObjectKey(graph.model_id), std::move(sealed_model)));
  if (with_plaintext_copy) {
    SESEMI_RETURN_IF_ERROR(
        storage->Put(semirt::SemirtInstance::PlainModelObjectKey(graph.model_id),
                     model::SerializeModel(graph)));
  }

  SESEMI_ASSIGN_OR_RETURN(
      Bytes payload,
      keyservice::SealAddModelKey(identity_key_, graph.model_id, model_key));
  SESEMI_ASSIGN_OR_RETURN(Bytes unused,
                          keyservice->Call(OpCode::kAddModelKey, id_, payload));
  (void)unused;
  model_keys_[graph.model_id] = std::move(model_key);
  return Status::OK();
}

Status ModelOwner::GrantAccess(KeyServiceClient* keyservice,
                               const std::string& model_id,
                               const sgx::Measurement& enclave_identity,
                               const std::string& user_id) {
  if (id_.empty()) return Status::FailedPrecondition("owner not registered");
  SESEMI_ASSIGN_OR_RETURN(
      Bytes payload, keyservice::SealGrantAccess(identity_key_, model_id,
                                                 enclave_identity.ToHex(), user_id));
  SESEMI_ASSIGN_OR_RETURN(Bytes unused,
                          keyservice->Call(OpCode::kGrantAccess, id_, payload));
  (void)unused;
  return Status::OK();
}

Result<Bytes> ModelOwner::ModelKey(const std::string& model_id) const {
  auto it = model_keys_.find(model_id);
  if (it == model_keys_.end()) return Status::NotFound("no key for " + model_id);
  return it->second;
}

// ---------------------------------------------------------------- ModelUser

ModelUser::ModelUser(std::string display_name)
    : display_name_(std::move(display_name)),
      identity_key_(crypto::GenerateSymmetricKey(32)) {}

Status ModelUser::Register(KeyServiceClient* keyservice) {
  SESEMI_ASSIGN_OR_RETURN(
      Bytes id_bytes,
      keyservice->Call(OpCode::kUserRegistration, "", identity_key_));
  id_ = ToString(id_bytes);
  return Status::OK();
}

Status ModelUser::ProvisionRequestKey(KeyServiceClient* keyservice,
                                      const std::string& model_id,
                                      const sgx::Measurement& enclave_identity) {
  if (id_.empty()) return Status::FailedPrecondition("user not registered");
  Bytes request_key = crypto::GenerateSymmetricKey();
  SESEMI_ASSIGN_OR_RETURN(
      Bytes payload, keyservice::SealAddReqKey(identity_key_, model_id,
                                               enclave_identity.ToHex(), request_key));
  SESEMI_ASSIGN_OR_RETURN(Bytes unused,
                          keyservice->Call(OpCode::kAddReqKey, id_, payload));
  (void)unused;
  request_keys_[model_id + "|" + enclave_identity.ToHex()] = std::move(request_key);
  return Status::OK();
}

Result<Bytes> ModelUser::RequestKeyFor(
    const std::string& model_id, const sgx::Measurement* enclave_identity) const {
  if (enclave_identity != nullptr) {
    auto it = request_keys_.find(model_id + "|" + enclave_identity->ToHex());
    if (it == request_keys_.end()) {
      return Status::FailedPrecondition("no request key for " + model_id +
                                        " on that enclave");
    }
    return it->second;
  }
  const std::string prefix = model_id + "|";
  const Bytes* found = nullptr;
  for (auto it = request_keys_.lower_bound(prefix);
       it != request_keys_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    if (found != nullptr) {
      return Status::FailedPrecondition(
          "multiple enclave deployments provisioned for " + model_id +
          "; pass the enclave identity");
    }
    found = &it->second;
  }
  if (found == nullptr) {
    return Status::FailedPrecondition("no request key provisioned for " + model_id);
  }
  return *found;
}

Result<semirt::InferenceRequest> ModelUser::BuildRequest(
    const std::string& model_id, ByteSpan input,
    const sgx::Measurement* enclave_identity) const {
  SESEMI_ASSIGN_OR_RETURN(Bytes key, RequestKeyFor(model_id, enclave_identity));
  semirt::InferenceRequest request;
  request.user_id = id_;
  request.model_id = model_id;
  SESEMI_ASSIGN_OR_RETURN(request.encrypted_input,
                          semirt::EncryptRequestPayload(key, model_id, input));
  return request;
}

Result<Bytes> ModelUser::DecryptResult(const std::string& model_id, ByteSpan sealed,
                                       const sgx::Measurement* enclave_identity) const {
  SESEMI_ASSIGN_OR_RETURN(Bytes key, RequestKeyFor(model_id, enclave_identity));
  return semirt::DecryptResultPayload(key, model_id, sealed);
}

}  // namespace sesemi::client
