#ifndef SESEMI_RATLS_SESSION_H_
#define SESEMI_RATLS_SESSION_H_

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/gcm.h"

namespace sesemi::ratls {

/// An established attested channel: AES-GCM in both directions with
/// per-direction keys and strictly increasing sequence numbers (replayed,
/// reordered, or dropped records fail authentication).
class SecureSession {
 public:
  /// `send_key` / `recv_key` are 16- or 32-byte AES keys. The two sides of a
  /// channel construct mirror-image sessions (A's send key is B's recv key).
  static Result<SecureSession> Create(ByteSpan send_key, ByteSpan recv_key);

  SecureSession(SecureSession&&) = default;
  SecureSession& operator=(SecureSession&&) = default;

  /// Encrypt one record. Consumes the next send sequence number.
  Result<Bytes> Seal(ByteSpan plaintext);

  /// Decrypt the next record in order.
  Result<Bytes> Open(ByteSpan record);

  uint64_t send_seq() const { return send_seq_; }
  uint64_t recv_seq() const { return recv_seq_; }

 private:
  SecureSession(crypto::AesGcm send, crypto::AesGcm recv)
      : send_(std::move(send)), recv_(std::move(recv)) {}

  crypto::AesGcm send_;
  crypto::AesGcm recv_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
};

/// Derive the two directional keys for a channel from an ECDH shared secret.
/// Both sides call this with the same transcript and split the output; the
/// `initiator` flag selects which half is the send key.
struct SessionKeys {
  Bytes initiator_to_acceptor;
  Bytes acceptor_to_initiator;
};
Result<SessionKeys> DeriveSessionKeys(ByteSpan shared_secret, ByteSpan transcript_hash);

}  // namespace sesemi::ratls

#endif  // SESEMI_RATLS_SESSION_H_
