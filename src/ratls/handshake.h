#ifndef SESEMI_RATLS_HANDSHAKE_H_
#define SESEMI_RATLS_HANDSHAKE_H_

#include <optional>

#include "common/result.h"
#include "crypto/x25519.h"
#include "ratls/session.h"
#include "sgx/enclave.h"
#include "sgx/platform.h"

namespace sesemi::ratls {

/// First flight: the initiator's ephemeral public key, plus a quote binding
/// that key when the initiator is itself an enclave (mutual attestation, used
/// by SeMIRT when it fetches keys from KeyService — Appendix A).
struct ClientHello {
  crypto::X25519Key public_key{};
  std::optional<sgx::Quote> quote;

  Bytes Serialize() const;
  static Result<ClientHello> Parse(ByteSpan wire);
};

/// Second flight: the acceptor's ephemeral public key and its quote. The
/// quote's report_data binds SHA256(acceptor_pub || initiator_pub), the
/// RA-TLS trick of welding the attestation to this exact channel.
struct ServerHello {
  crypto::X25519Key public_key{};
  sgx::Quote quote;

  Bytes Serialize() const;
  static Result<ServerHello> Parse(ByteSpan wire);
};

/// Binding hash placed in the acceptor's report_data.
sgx::ReportData ChannelBinding(const crypto::X25519Key& acceptor_pub,
                               const crypto::X25519Key& initiator_pub);

/// Binding hash placed in an initiator's (mutual-attestation) report_data.
sgx::ReportData InitiatorBinding(const crypto::X25519Key& initiator_pub);

/// Client side of the attested handshake. Used by model owners and users to
/// attest KeyService, and (with `enclave` set) by SeMIRT enclaves to perform
/// mutual attestation with KeyService.
class RatlsInitiator {
 public:
  /// `authority` verifies the acceptor's quote. If `enclave` is non-null the
  /// ClientHello carries this enclave's quote (mutual attestation); failure to
  /// generate the quote surfaces from Start().
  RatlsInitiator(const sgx::AttestationAuthority* authority,
                 sgx::Enclave* enclave = nullptr);

  /// Produce the first flight.
  Result<ClientHello> Start();

  /// Verify the acceptor's quote (authority signature + expected MRENCLAVE +
  /// channel binding) and derive the session. Must be called after Start().
  Result<SecureSession> Finish(const ServerHello& hello,
                               const sgx::Measurement& expected_mrenclave);

 private:
  const sgx::AttestationAuthority* authority_;
  sgx::Enclave* enclave_;
  crypto::X25519KeyPair ephemeral_{};
  bool started_ = false;
};

/// Server side of the attested handshake; lives inside an enclave app.
class RatlsAcceptor {
 public:
  struct Accepted {
    ServerHello hello;                               ///< flight to send back
    SecureSession session;                           ///< established channel
    std::optional<sgx::Measurement> peer_mrenclave;  ///< set on mutual attestation
  };

  explicit RatlsAcceptor(sgx::Enclave* enclave) : enclave_(enclave) {}

  /// Process a ClientHello. When `require_peer_quote` is true (KeyService's
  /// KEY_PROVISIONING endpoint), hellos without a valid quote are rejected and
  /// the verified peer measurement is returned in `Accepted::peer_mrenclave`.
  Result<Accepted> Accept(const ClientHello& hello, bool require_peer_quote);

 private:
  sgx::Enclave* enclave_;
};

}  // namespace sesemi::ratls

#endif  // SESEMI_RATLS_HANDSHAKE_H_
