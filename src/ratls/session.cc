#include "ratls/session.h"

#include "crypto/hkdf.h"

namespace sesemi::ratls {

namespace {
Bytes MakeNonce(uint8_t direction, uint64_t seq) {
  Bytes nonce;
  nonce.reserve(crypto::kGcmNonceSize);
  nonce.push_back(direction);
  nonce.push_back(0);
  nonce.push_back(0);
  nonce.push_back(0);
  PutUint64BE(&nonce, seq);
  return nonce;
}
}  // namespace

Result<SecureSession> SecureSession::Create(ByteSpan send_key, ByteSpan recv_key) {
  SESEMI_ASSIGN_OR_RETURN(crypto::AesGcm send, crypto::AesGcm::Create(send_key));
  SESEMI_ASSIGN_OR_RETURN(crypto::AesGcm recv, crypto::AesGcm::Create(recv_key));
  return SecureSession(std::move(send), std::move(recv));
}

Result<Bytes> SecureSession::Seal(ByteSpan plaintext) {
  Bytes nonce = MakeNonce(/*direction=*/1, send_seq_);
  SESEMI_ASSIGN_OR_RETURN(Bytes record, send_.Encrypt(nonce, {}, plaintext));
  ++send_seq_;
  return record;
}

Result<Bytes> SecureSession::Open(ByteSpan record) {
  Bytes nonce = MakeNonce(/*direction=*/1, recv_seq_);
  SESEMI_ASSIGN_OR_RETURN(Bytes plaintext, recv_.Decrypt(nonce, {}, record));
  ++recv_seq_;
  return plaintext;
}

Result<SessionKeys> DeriveSessionKeys(ByteSpan shared_secret,
                                      ByteSpan transcript_hash) {
  SESEMI_ASSIGN_OR_RETURN(
      Bytes okm, crypto::Hkdf(transcript_hash, shared_secret,
                              ToBytes("sesemi ratls v1 keys"), 32));
  SessionKeys keys;
  keys.initiator_to_acceptor.assign(okm.begin(), okm.begin() + 16);
  keys.acceptor_to_initiator.assign(okm.begin() + 16, okm.end());
  return keys;
}

}  // namespace sesemi::ratls
