#include "ratls/handshake.h"

#include "common/faultpoint.h"
#include "crypto/sha256.h"

namespace sesemi::ratls {

namespace {
Bytes TranscriptHash(const crypto::X25519Key& initiator_pub,
                     const crypto::X25519Key& acceptor_pub) {
  Bytes transcript;
  Append(&transcript, ByteSpan(initiator_pub.data(), initiator_pub.size()));
  Append(&transcript, ByteSpan(acceptor_pub.data(), acceptor_pub.size()));
  return crypto::Sha256::HashToBytes(transcript);
}
}  // namespace

Bytes ClientHello::Serialize() const {
  ByteWriter w;
  w.WriteBytes(ByteSpan(public_key.data(), public_key.size()));
  if (quote.has_value()) {
    w.WriteUint8(1);
    w.WriteLengthPrefixed(quote->Serialize());
  } else {
    w.WriteUint8(0);
  }
  return std::move(w).Take();
}

Result<ClientHello> ClientHello::Parse(ByteSpan wire) {
  ByteReader r(wire);
  ClientHello hello;
  Bytes pub;
  uint8_t has_quote = 0;
  if (!r.ReadBytes(crypto::kX25519KeySize, &pub) || !r.ReadUint8(&has_quote)) {
    return Status::Corruption("truncated ClientHello");
  }
  std::copy(pub.begin(), pub.end(), hello.public_key.begin());
  if (has_quote == 1) {
    Bytes quote_wire;
    if (!r.ReadLengthPrefixed(&quote_wire)) {
      return Status::Corruption("truncated ClientHello quote");
    }
    SESEMI_ASSIGN_OR_RETURN(sgx::Quote q, sgx::Quote::Parse(quote_wire));
    hello.quote = std::move(q);
  } else if (has_quote != 0) {
    return Status::Corruption("bad ClientHello quote flag");
  }
  return hello;
}

Bytes ServerHello::Serialize() const {
  ByteWriter w;
  w.WriteBytes(ByteSpan(public_key.data(), public_key.size()));
  w.WriteLengthPrefixed(quote.Serialize());
  return std::move(w).Take();
}

Result<ServerHello> ServerHello::Parse(ByteSpan wire) {
  ByteReader r(wire);
  ServerHello hello;
  Bytes pub, quote_wire;
  if (!r.ReadBytes(crypto::kX25519KeySize, &pub) ||
      !r.ReadLengthPrefixed(&quote_wire)) {
    return Status::Corruption("truncated ServerHello");
  }
  std::copy(pub.begin(), pub.end(), hello.public_key.begin());
  SESEMI_ASSIGN_OR_RETURN(hello.quote, sgx::Quote::Parse(quote_wire));
  return hello;
}

sgx::ReportData ChannelBinding(const crypto::X25519Key& acceptor_pub,
                               const crypto::X25519Key& initiator_pub) {
  Bytes input;
  Append(&input, ByteSpan(acceptor_pub.data(), acceptor_pub.size()));
  Append(&input, ByteSpan(initiator_pub.data(), initiator_pub.size()));
  Bytes digest = crypto::Sha256::HashToBytes(input);
  sgx::ReportData data{};
  std::copy(digest.begin(), digest.end(), data.begin());
  return data;
}

sgx::ReportData InitiatorBinding(const crypto::X25519Key& initiator_pub) {
  Bytes digest =
      crypto::Sha256::HashToBytes(ByteSpan(initiator_pub.data(), initiator_pub.size()));
  sgx::ReportData data{};
  std::copy(digest.begin(), digest.end(), data.begin());
  return data;
}

RatlsInitiator::RatlsInitiator(const sgx::AttestationAuthority* authority,
                               sgx::Enclave* enclave)
    : authority_(authority), enclave_(enclave) {}

Result<ClientHello> RatlsInitiator::Start() {
  SESEMI_FAULT_POINT(faults::kRatlsHandshake);
  ephemeral_ = crypto::GenerateX25519KeyPair();
  started_ = true;
  ClientHello hello;
  hello.public_key = ephemeral_.public_key;
  if (enclave_ != nullptr) {
    sgx::ReportData binding = InitiatorBinding(ephemeral_.public_key);
    sgx::AttestationReport report =
        enclave_->CreateReport(ByteSpan(binding.data(), binding.size()));
    SESEMI_ASSIGN_OR_RETURN(sgx::Quote quote,
                            enclave_->platform()->GenerateQuote(report));
    hello.quote = std::move(quote);
  }
  return hello;
}

Result<SecureSession> RatlsInitiator::Finish(
    const ServerHello& hello, const sgx::Measurement& expected_mrenclave) {
  if (!started_) {
    return Status::FailedPrecondition("Finish() before Start()");
  }
  SESEMI_ASSIGN_OR_RETURN(sgx::AttestationReport report,
                          authority_->VerifyQuote(hello.quote));
  if (report.mrenclave != expected_mrenclave) {
    return Status::Unauthenticated("acceptor MRENCLAVE mismatch: got " +
                                   report.mrenclave.ToHex());
  }
  sgx::ReportData expect_binding =
      ChannelBinding(hello.public_key, ephemeral_.public_key);
  if (!ConstantTimeEqual(ByteSpan(report.report_data.data(), report.report_data.size()),
                         ByteSpan(expect_binding.data(), expect_binding.size()))) {
    return Status::Unauthenticated("channel binding mismatch in acceptor quote");
  }

  SESEMI_ASSIGN_OR_RETURN(
      Bytes secret,
      crypto::X25519SharedSecret(ephemeral_.private_key, hello.public_key));
  Bytes transcript = TranscriptHash(ephemeral_.public_key, hello.public_key);
  SESEMI_ASSIGN_OR_RETURN(SessionKeys keys, DeriveSessionKeys(secret, transcript));
  return SecureSession::Create(keys.initiator_to_acceptor,
                               keys.acceptor_to_initiator);
}

Result<RatlsAcceptor::Accepted> RatlsAcceptor::Accept(const ClientHello& hello,
                                                      bool require_peer_quote) {
  SESEMI_FAULT_POINT(faults::kRatlsHandshake);
  std::optional<sgx::Measurement> peer;
  if (require_peer_quote) {
    if (!hello.quote.has_value()) {
      return Status::Unauthenticated("peer quote required for mutual attestation");
    }
    SESEMI_ASSIGN_OR_RETURN(
        sgx::AttestationReport peer_report,
        enclave_->platform()->authority()->VerifyQuote(*hello.quote));
    sgx::ReportData expect = InitiatorBinding(hello.public_key);
    if (!ConstantTimeEqual(
            ByteSpan(peer_report.report_data.data(), peer_report.report_data.size()),
            ByteSpan(expect.data(), expect.size()))) {
      return Status::Unauthenticated("peer quote does not bind its channel key");
    }
    peer = peer_report.mrenclave;
  }

  crypto::X25519KeyPair eph = crypto::GenerateX25519KeyPair();
  sgx::ReportData binding = ChannelBinding(eph.public_key, hello.public_key);
  sgx::AttestationReport report =
      enclave_->CreateReport(ByteSpan(binding.data(), binding.size()));
  SESEMI_ASSIGN_OR_RETURN(sgx::Quote quote,
                          enclave_->platform()->GenerateQuote(report));

  SESEMI_ASSIGN_OR_RETURN(
      Bytes secret, crypto::X25519SharedSecret(eph.private_key, hello.public_key));
  Bytes transcript = TranscriptHash(hello.public_key, eph.public_key);
  SESEMI_ASSIGN_OR_RETURN(SessionKeys keys, DeriveSessionKeys(secret, transcript));
  SESEMI_ASSIGN_OR_RETURN(
      SecureSession session,
      SecureSession::Create(keys.acceptor_to_initiator, keys.initiator_to_acceptor));

  ServerHello reply;
  reply.public_key = eph.public_key;
  reply.quote = std::move(quote);
  return Accepted{std::move(reply), std::move(session), peer};
}

}  // namespace sesemi::ratls
