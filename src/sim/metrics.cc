#include "sim/metrics.h"

#include <algorithm>

namespace sesemi::sim {

double Metrics::AvgLatencySeconds() const {
  if (records_.empty()) return 0.0;
  double sum = 0;
  for (const auto& r : records_) sum += MicrosToSeconds(r.latency());
  return sum / static_cast<double>(records_.size());
}

double Metrics::PercentileLatencySeconds(double p) const {
  if (records_.empty()) return 0.0;
  std::vector<TimeMicros> latencies;
  latencies.reserve(records_.size());
  for (const auto& r : records_) latencies.push_back(r.latency());
  std::sort(latencies.begin(), latencies.end());
  double rank = p / 100.0 * static_cast<double>(latencies.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, latencies.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return MicrosToSeconds(static_cast<TimeMicros>(
      static_cast<double>(latencies[lo]) * (1 - frac) +
      static_cast<double>(latencies[hi]) * frac));
}

int Metrics::CountKind(semirt::InvocationKind kind) const {
  int n = 0;
  for (const auto& r : records_) n += (r.kind == kind);
  return n;
}

double Metrics::AvgLatencySecondsBetween(TimeMicros from, TimeMicros to) const {
  double sum = 0;
  int n = 0;
  for (const auto& r : records_) {
    if (r.complete >= from && r.complete < to) {
      sum += MicrosToSeconds(r.latency());
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double Metrics::GbSeconds(TimeMicros end_time) const {
  if (memory_.empty()) return 0.0;
  double integral = 0;  // byte-micros
  for (size_t i = 0; i < memory_.size(); ++i) {
    TimeMicros next = i + 1 < memory_.size() ? memory_[i + 1].time : end_time;
    if (next <= memory_[i].time) continue;
    integral += memory_[i].value * static_cast<double>(next - memory_[i].time);
  }
  return integral / 1e6 / static_cast<double>(1ull << 30);
}

double Metrics::PeakMemoryBytes() const {
  double peak = 0;
  for (const auto& s : memory_) peak = std::max(peak, s.value);
  return peak;
}

}  // namespace sesemi::sim
