#include "sim/cost_model.h"

namespace sesemi::sim {

namespace {
constexpr int FrameworkIndex(inference::FrameworkKind framework) {
  return framework == inference::FrameworkKind::kTflm ? 0 : 1;
}
constexpr int ArchIndex(model::Architecture arch) {
  switch (arch) {
    case model::Architecture::kMbNet: return 0;
    case model::Architecture::kRsNet: return 1;
    case model::Architecture::kDsNet: return 2;
    // kHybNet is a live-bench scenario model, not part of the paper's
    // calibrated profiles; map it onto the closest-sized one.
    case model::Architecture::kHybNet: return 2;
  }
  return 0;
}

/// Figure 17 / Figure 18 / Table I / Appendix D constants, SGX2 testbed.
/// Index order: [tflm|tvm][mbnet|rsnet|dsnet].
constexpr double kEnclaveInit[2][3] = {{0.154, 0.874, 0.270}, {0.192, 1.300, 0.356}};
constexpr double kKeyFetch[2][3] = {{1.040, 0.957, 1.170}, {1.180, 0.888, 1.220}};
constexpr double kModelLoad[2][3] = {{0.00944, 0.0766, 0.0267}, {0.0116, 0.0696, 0.0204}};
constexpr double kRuntimeInit[2][3] = {{0.0132, 0.104, 0.0319}, {0.0251, 0.200, 0.0510}};
constexpr double kExecute[2][3] = {{0.747, 14.30, 3.350}, {0.0635, 0.938, 0.339}};
constexpr double kPlainModelLoad[2][3] = {{0.0229, 0.161, 0.0479}, {0.0136, 0.0834, 0.0218}};
constexpr double kPlainRuntimeInit[2][3] = {{1e-05, 1e-05, 2e-05}, {0.0381, 0.216, 0.0677}};
constexpr double kPlainExecute[2][3] = {{0.567, 13.60, 3.210}, {0.070, 0.945, 0.392}};
constexpr uint64_t kModelBytes[3] = {17ull << 20, 170ull << 20, 44ull << 20};
constexpr uint64_t kBufferBytes[2][3] = {{5ull << 20, 24ull << 20, 12ull << 20},
                                         {30ull << 20, 205ull << 20, 55ull << 20}};
// Appendix D enclave memory configurations (concurrency 1).
constexpr uint64_t kEnclaveBytes[2][3] = {
    {0x3000000ull, 0x16000000ull, 0x6000000ull},
    {0x4000000ull, 0x23000000ull, 0x8000000ull}};

void FillProfiles(ModelProfile profiles[2][3], double trusted_scale,
                  double attestation_extra, double tflm_exec_scale,
                  double tvm_exec_scale) {
  for (int f = 0; f < 2; ++f) {
    double exec_scale = f == 0 ? tflm_exec_scale : tvm_exec_scale;
    for (int a = 0; a < 3; ++a) {
      ModelProfile& p = profiles[f][a];
      p.enclave_init_s = kEnclaveInit[f][a] * trusted_scale;
      p.key_fetch_s = kKeyFetch[f][a] + attestation_extra;
      p.model_load_s = kModelLoad[f][a];
      p.runtime_init_s = kRuntimeInit[f][a];
      p.execute_s = kExecute[f][a] * exec_scale;
      p.plain_model_load_s = kPlainModelLoad[f][a];
      p.plain_runtime_init_s = kPlainRuntimeInit[f][a];
      p.plain_execute_s = kPlainExecute[f][a] * exec_scale;
      p.model_bytes = kModelBytes[a];
      p.buffer_bytes = kBufferBytes[f][a];
      p.enclave_bytes = kEnclaveBytes[f][a];
      // Sequential one-pass interpretation (TFLM) vs random-access packed
      // execution (TVM) — see ModelProfile::paging_sensitivity.
      p.paging_sensitivity = f == 0 ? 0.05 : 2.0;
    }
  }
}
}  // namespace

CostModel CostModel::PaperSgx2() {
  CostModel m;
  m.generation_ = sgx::SgxGeneration::kSgx2;
  m.epc_bytes_ = 64ull << 30;
  m.cores_per_node_ = 12;  // Xeon Gold 5317
  m.enclave_init_base_s_ = 0.02;
  m.enclave_init_rate_s_per_gb_ = 1.1;
  m.attestation_base_s_ = 0.08;
  m.attestation_per_concurrent_s_ = 0.06;
  FillProfiles(m.profiles_, /*trusted_scale=*/1.0, /*attestation_extra=*/0.0,
               /*tflm_exec_scale=*/1.0, /*tvm_exec_scale=*/1.0);
  return m;
}

CostModel CostModel::PaperSgx1() {
  CostModel m;
  m.generation_ = sgx::SgxGeneration::kSgx1;
  m.epc_bytes_ = 128ull << 20;
  m.cores_per_node_ = 10;  // Xeon W-1290P
  // Appendix C Fig 15b: SGX1 launch is ~2x slower and degrades harder under
  // concurrent launches (EPC adds serialize on 128 MB of EWB traffic).
  m.enclave_init_base_s_ = 0.05;
  m.enclave_init_rate_s_per_gb_ = 2.4;
  // Fig 16b: EPID + IAS round trip dominates (~2 s base, worse contended).
  m.attestation_base_s_ = 2.0;
  m.attestation_per_concurrent_s_ = 0.15;
  // The SGX1 testbed (W-1290P, 3.7 GHz, single socket) executes the small
  // models faster than the 3.0 GHz Xeon Gold; the interpreter benefits most
  // from the higher clock. Calibrated against Figure 12c/d: TVM-MBNET
  // saturates near 14 rps, TFLM-MBNET sustains >18 rps.
  FillProfiles(m.profiles_, /*trusted_scale=*/1.6, /*attestation_extra=*/1.5,
               /*tflm_exec_scale=*/0.4, /*tvm_exec_scale=*/0.8);
  return m;
}

CostModel CostModel::Calibrated(const CalibrationProfile& c) {
  CostModel m;
  m.generation_ = sgx::SgxGeneration::kSgx2;
  m.epc_bytes_ = c.epc_bytes;
  m.cores_per_node_ = c.cores_per_node;
  m.sandbox_init_s_ = c.sandbox_init_s;
  m.platform_overhead_s_ = c.platform_overhead_s;
  m.warm_key_fetch_s_ = c.warm_key_fetch_s;
  // Size-independent enclave launch: the measured launch cost is whatever the
  // live run paid, and the measured stages already include any contention.
  m.enclave_init_base_s_ = c.enclave_init_s;
  m.enclave_init_rate_s_per_gb_ = 0;
  m.attestation_base_s_ = 0;
  m.attestation_per_concurrent_s_ = 0;
  for (int f = 0; f < 2; ++f) {
    for (int a = 0; a < 3; ++a) {
      ModelProfile& p = m.profiles_[f][a];
      p.enclave_init_s = c.enclave_init_s;
      p.key_fetch_s = c.key_fetch_s;
      p.model_load_s = c.model_load_s;
      p.runtime_init_s = c.runtime_init_s;
      p.execute_s = c.execute_s;
      p.plain_model_load_s = c.model_load_s;
      p.plain_runtime_init_s = c.runtime_init_s;
      p.plain_execute_s = c.execute_s;
      p.model_bytes = c.model_bytes;
      p.buffer_bytes = c.buffer_bytes;
      p.enclave_bytes = c.enclave_bytes;
      p.paging_sensitivity = 0;
    }
  }
  return m;
}

const ModelProfile& CostModel::profile(inference::FrameworkKind framework,
                                       model::Architecture arch) const {
  return profiles_[FrameworkIndex(framework)][ArchIndex(arch)];
}

double CostModel::EnclaveInitSeconds(uint64_t enclave_bytes,
                                     int concurrent_launches) const {
  double size_gb = static_cast<double>(enclave_bytes) / (1ull << 30);
  int concurrent = concurrent_launches < 1 ? 1 : concurrent_launches;
  // Concurrent launches fair-share the serialized EPC page-add path, so the
  // size-proportional term scales with the number of simultaneous launches
  // (Fig 15a: one 256 MB SGX2 enclave ≈ 0.3 s, sixteen ≈ 4.06 s each; the
  // SGX1 rate is ~2x worse because every added page may evict another —
  // Fig 15b).
  return enclave_init_base_s_ + size_gb * enclave_init_rate_s_per_gb_ * concurrent;
}

double CostModel::AttestationSeconds(int concurrent_quotes) const {
  int concurrent = concurrent_quotes < 1 ? 1 : concurrent_quotes;
  return attestation_base_s_ + attestation_per_concurrent_s_ * (concurrent - 1);
}

double CostModel::ExecuteSeconds(const ModelProfile& profile, int runnable,
                                 int cores, double epc_utilization,
                                 bool trusted) const {
  double base = trusted ? profile.execute_s : profile.plain_execute_s;
  double cpu_factor =
      runnable <= cores ? 1.0 : static_cast<double>(runnable) / cores;
  double paging = 1.0;
  if (trusted && epc_utilization > 1.0) {
    paging = 1.0 + profile.paging_sensitivity * (epc_utilization - 1.0);
  }
  return base * cpu_factor * paging;
}

double CostModel::SequentialHotSeconds(const ModelProfile& profile) const {
  // Table II: hot latency grows by key refetch over the warm channel,
  // runtime re-initialization, and buffer scrubbing (~runtime_init again).
  return warm_key_fetch_s_ + 2.0 * profile.runtime_init_s + 0.15;
}

}  // namespace sesemi::sim
