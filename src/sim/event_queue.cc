#include "sim/event_queue.h"

#include <cassert>

namespace sesemi::sim {

void EventQueue::ScheduleAt(TimeMicros t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  heap_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the closure must be moved out via a copy
  // of the wrapper (cheap: std::function move after const_cast is UB-adjacent,
  // so copy the small struct fields and pop first).
  Event event = heap_.top();
  heap_.pop();
  now_ = event.time;
  event.fn();
  return true;
}

void EventQueue::RunUntil(TimeMicros deadline) {
  while (!heap_.empty() && heap_.top().time <= deadline) {
    RunNext();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventQueue::RunAll(size_t max_events) {
  size_t n = 0;
  while (RunNext()) {
    if (++n >= max_events) break;
  }
}

}  // namespace sesemi::sim
