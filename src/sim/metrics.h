#ifndef SESEMI_SIM_METRICS_H_
#define SESEMI_SIM_METRICS_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "semirt/semirt.h"

namespace sesemi::sim {

/// Outcome of one simulated request.
struct RequestRecord {
  std::string function;
  std::string model_id;
  std::string user_id;
  TimeMicros submit = 0;
  TimeMicros complete = 0;
  semirt::InvocationKind kind = semirt::InvocationKind::kHot;

  TimeMicros latency() const { return complete - submit; }
};

/// A step in a piecewise-constant resource usage curve.
struct UsageSample {
  TimeMicros time;
  double value;
};

/// Latency and resource metrics collected by a cluster simulation run.
class Metrics {
 public:
  void Record(RequestRecord record) { records_.push_back(std::move(record)); }
  const std::vector<RequestRecord>& records() const { return records_; }

  /// Memory usage step function (sum of live container budgets, bytes).
  void SampleMemory(TimeMicros now, double bytes) {
    memory_.push_back({now, bytes});
  }
  /// Sandbox counts over time.
  void SampleSandboxes(TimeMicros now, int total, int serving) {
    sandboxes_total_.push_back({now, static_cast<double>(total)});
    sandboxes_serving_.push_back({now, static_cast<double>(serving)});
  }

  double AvgLatencySeconds() const;
  double PercentileLatencySeconds(double p) const;  // p in (0, 100)
  int CountKind(semirt::InvocationKind kind) const;

  /// Mean latency of completions in [from, to).
  double AvgLatencySecondsBetween(TimeMicros from, TimeMicros to) const;

  /// The serverless cost metric: integral of memory usage over time,
  /// in gigabyte-seconds (§VI-C).
  double GbSeconds(TimeMicros end_time) const;

  /// Peak of the memory step function, bytes.
  double PeakMemoryBytes() const;

  const std::vector<UsageSample>& memory_series() const { return memory_; }
  const std::vector<UsageSample>& sandboxes_total_series() const {
    return sandboxes_total_;
  }
  const std::vector<UsageSample>& sandboxes_serving_series() const {
    return sandboxes_serving_;
  }

 private:
  std::vector<RequestRecord> records_;
  std::vector<UsageSample> memory_;
  std::vector<UsageSample> sandboxes_total_;
  std::vector<UsageSample> sandboxes_serving_;
};

}  // namespace sesemi::sim

#endif  // SESEMI_SIM_METRICS_H_
