#ifndef SESEMI_SIM_EVENT_QUEUE_H_
#define SESEMI_SIM_EVENT_QUEUE_H_

#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace sesemi::sim {

/// Discrete-event engine: a priority queue of (time, sequence, closure).
/// Single-threaded by design — determinism is the point. Ties break in
/// scheduling order.
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t` (>= now).
  void ScheduleAt(TimeMicros t, std::function<void()> fn);

  /// Schedule `fn` `delay` after now.
  void ScheduleAfter(TimeMicros delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Pop and run the earliest event, advancing the clock. False when empty.
  bool RunNext();

  /// Run events until the queue is empty or the clock passes `deadline`.
  void RunUntil(TimeMicros deadline);

  /// Run everything (with a safety cap on event count).
  void RunAll(size_t max_events = 100'000'000);

  TimeMicros now() const { return now_; }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    TimeMicros time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  TimeMicros now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace sesemi::sim

#endif  // SESEMI_SIM_EVENT_QUEUE_H_
