#include "sim/cluster.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace sesemi::sim {

using semirt::InvocationKind;
using semirt::RuntimeMode;

namespace {
constexpr uint64_t kMemoryGranularity = 128ull << 20;  // Table V

uint64_t RoundUpToGranularity(uint64_t bytes) {
  return (bytes + kMemoryGranularity - 1) / kMemoryGranularity * kMemoryGranularity;
}
}  // namespace

ClusterSim::ClusterSim(SimConfig config) : config_(std::move(config)) {
  nodes_.resize(config_.num_nodes);
  for (int i = 0; i < config_.num_nodes; ++i) nodes_[i].id = i;
}

void ClusterSim::AddFunction(SimFunction function) {
  functions_[function.name] = std::move(function);
}

const SimFunction& ClusterSim::FunctionSpec(const std::string& name) const {
  auto it = functions_.find(name);
  assert(it != functions_.end() && "unknown function");
  return it->second;
}

uint64_t ClusterSim::EnclaveBytes(const SimFunction& fn) const {
  if (fn.mode == RuntimeMode::kUntrusted) return 0;
  const ModelProfile& p = config_.cost_model.profile(fn.framework, fn.arch);
  // Appendix D: the base enclave memory configuration covers one runtime;
  // each additional TCS adds another runtime buffer.
  return p.enclave_bytes + static_cast<uint64_t>(fn.num_tcs - 1) * p.buffer_bytes;
}

uint64_t ClusterSim::ContainerMemory(const SimFunction& fn) const {
  if (fn.container_memory_bytes != 0) return fn.container_memory_bytes;
  const ModelProfile& p = config_.cost_model.profile(fn.framework, fn.arch);
  uint64_t need = fn.mode == RuntimeMode::kUntrusted
                      ? p.model_bytes + static_cast<uint64_t>(fn.num_tcs) * p.buffer_bytes
                      : EnclaveBytes(fn);
  return RoundUpToGranularity(need + (32ull << 20));  // container overhead
}

int ClusterSim::total_containers() const {
  int n = 0;
  for (const auto& [id, c] : containers_) n += !c->reclaimed;
  return n;
}

int ClusterSim::serving_containers() const {
  int n = 0;
  for (const auto& [id, c] : containers_) {
    if (c->reclaimed) continue;
    for (const auto& slot : c->slots) {
      if (slot.busy) {
        ++n;
        break;
      }
    }
  }
  return n;
}

void ClusterSim::SampleUsage() {
  double memory = 0;
  for (const auto& node : nodes_) memory += static_cast<double>(node.memory_used);
  metrics_.SampleMemory(queue_.now(), memory);
  metrics_.SampleSandboxes(queue_.now(), total_containers(), serving_containers());
}

ClusterSim::Container* ClusterSim::CreateContainer(const std::string& function) {
  const SimFunction& fn = FunctionSpec(function);
  uint64_t memory = ContainerMemory(fn);
  uint64_t enclave_bytes = EnclaveBytes(fn);

  // Placement: OpenWhisk schedules on memory and prefers co-locating a
  // function's containers; fall back to the node with the most free memory.
  int chosen = -1;
  for (const auto& [id, c] : containers_) {
    if (!c->reclaimed && c->function == function &&
        nodes_[c->node].memory_used + memory <= config_.invoker_memory_bytes) {
      chosen = c->node;
      break;
    }
  }
  if (chosen < 0) {
    uint64_t best_free = 0;
    for (const auto& node : nodes_) {
      uint64_t free = config_.invoker_memory_bytes > node.memory_used
                          ? config_.invoker_memory_bytes - node.memory_used
                          : 0;
      if (free >= memory && free > best_free) {
        best_free = free;
        chosen = node.id;
      }
    }
  }
  if (chosen < 0) return nullptr;  // cluster saturated

  Node& node = nodes_[chosen];
  node.memory_used += memory;
  node.epc_committed += enclave_bytes;

  auto container = std::make_unique<Container>();
  Container* raw = container.get();
  raw->id = next_container_id_++;
  raw->node = chosen;
  raw->function = function;
  raw->memory_bytes = memory;
  raw->enclave_bytes = enclave_bytes;
  raw->slots.resize(static_cast<size_t>(fn.num_tcs));
  raw->last_used = queue_.now();

  double init_s = config_.cost_model.SandboxInitSeconds();
  if (fn.mode != RuntimeMode::kUntrusted) {
    node.launches_in_progress++;
    // Profile-calibrated single-launch cost (Fig 17), scaled for extra TCS
    // heap and for concurrent launches on this node (Fig 15).
    const ModelProfile& p = config_.cost_model.profile(fn.framework, fn.arch);
    double size_scale = static_cast<double>(enclave_bytes) /
                        static_cast<double>(p.enclave_bytes);
    init_s += p.enclave_init_s * size_scale * node.launches_in_progress;
    int node_id = chosen;
    queue_.ScheduleAfter(SecondsToMicros(init_s), [this, node_id] {
      nodes_[node_id].launches_in_progress--;
    });
  }
  raw->ready_at = queue_.now() + SecondsToMicros(init_s);

  containers_[raw->id] = std::move(container);
  SampleUsage();
  return raw;
}

ClusterSim::Container* ClusterSim::FindOrCreateContainer(
    const PendingRequest& request) {
  const SimFunction& fn = FunctionSpec(request.function);
  Container* best = nullptr;
  int best_score = -1;
  for (auto& [id, c] : containers_) {
    if (c->reclaimed || c->function != request.function) continue;
    bool has_free_slot = false;
    for (const auto& slot : c->slots) has_free_slot |= !slot.busy;
    if (!has_free_slot) continue;
    // Prefer hot containers: model loaded + same user's key cached.
    int score = 1;
    if (c->loaded_model == request.model_id) score += 2;
    if (c->cached_key == request.model_id + "|" + request.user_id) score += 1;
    if (queue_.now() >= c->ready_at) score += 1;  // already warm, not starting
    if (score > best_score) {
      best_score = score;
      best = c.get();
    }
  }
  if (best != nullptr) return best;
  (void)fn;
  return CreateContainer(request.function);
}

void ClusterSim::Submit(const std::string& function, const std::string& model_id,
                        const std::string& user_id, TimeMicros t,
                        CompletionCallback on_complete) {
  PendingRequest request{function, model_id, user_id, t, std::move(on_complete)};
  queue_.ScheduleAt(t, [this, request] {
    Container* container = FindOrCreateContainer(request);
    if (container == nullptr) {
      waiting_[request.function].push_back(request);
      return;
    }
    StartRequest(request, container);
  });
}

void ClusterSim::StartRequest(const PendingRequest& request, Container* container) {
  const SimFunction& fn = FunctionSpec(request.function);
  const ModelProfile& profile = config_.cost_model.profile(fn.framework, fn.arch);
  const bool trusted = fn.mode != RuntimeMode::kUntrusted;
  const bool fresh = container->busy_count == 0 && container->ready_at > request.submit;

  // Reserve a slot now.
  int slot = -1;
  for (size_t i = 0; i < container->slots.size(); ++i) {
    if (!container->slots[i].busy) {
      slot = static_cast<int>(i);
      break;
    }
  }
  assert(slot >= 0);
  container->slots[slot].busy = true;
  container->busy_count++;
  container->last_used = queue_.now();
  SampleUsage();

  // ---- Pre-execution stages (key fetch, model load, runtime init) ----
  // Every invocation pays the platform's controller/proxy overhead; it holds
  // the container slot but no model CPU.
  double pre_s = config_.cost_model.PlatformOverheadSeconds();
  bool key_fetched = false, model_loaded = false, runtime_inited = false;
  const std::string key_id = request.model_id + "|" + request.user_id;
  // Per-stage costs tracked alongside pre_s for the virtual-time trace
  // (same semirt.* stage names as the live path, so sim-vs-real traces of
  // one replay are directly comparable).
  const double overhead_s = pre_s;
  double relaunch_s = 0, key_s = 0, model_s = 0, rt_s = 0;

  if (trusted) {
    if (fn.mode == RuntimeMode::kNative && !fresh) {
      // Native relaunches the enclave inside the warm sandbox.
      Node& node = nodes_[container->node];
      double size_scale = static_cast<double>(container->enclave_bytes) /
                          static_cast<double>(profile.enclave_bytes);
      relaunch_s = profile.enclave_init_s * size_scale *
                   (node.launches_in_progress + 1);
      pre_s += relaunch_s;
      container->attested = false;
      container->cached_key.clear();
      container->loaded_model.clear();
      for (auto& s : container->slots) s.runtime_model.clear();
    }
    const bool key_cached = !fn.sequential_isolation && container->cached_key == key_id;
    if (!key_cached) {
      key_fetched = true;
      if (!container->attested) {
        Node& node = nodes_[container->node];
        node.attestations_in_progress++;
        // profile.key_fetch_s already contains one uncontended attestation;
        // add the contention surcharge beyond it.
        double contention =
            config_.cost_model.AttestationSeconds(node.attestations_in_progress) -
            config_.cost_model.AttestationSeconds(1);
        key_s = profile.key_fetch_s + contention;
        pre_s += key_s;
        int node_id = container->node;
        queue_.ScheduleAfter(SecondsToMicros(pre_s), [this, node_id] {
          nodes_[node_id].attestations_in_progress--;
        });
        container->attested = true;
      } else {
        key_s = config_.cost_model.WarmKeyFetchSeconds();
        pre_s += key_s;
      }
      container->cached_key = fn.sequential_isolation ? "" : key_id;
    }
    const bool model_cached = container->loaded_model == request.model_id &&
                              fn.mode == RuntimeMode::kSesemi;
    if (!model_cached) {
      model_loaded = true;
      model_s = profile.model_load_s;
      if (config_.remote_storage) {
        model_s += MicrosToSeconds(
            config_.cost_model.storage_latency().TransferTime(profile.model_bytes));
      }
      pre_s += model_s;
      container->loaded_model = request.model_id;
      for (auto& s : container->slots) s.runtime_model.clear();
    }
    const bool runtime_cached =
        container->slots[slot].runtime_model == request.model_id &&
        fn.mode == RuntimeMode::kSesemi && !fn.sequential_isolation;
    if (!runtime_cached) {
      runtime_inited = true;
      rt_s = profile.runtime_init_s;
      pre_s += rt_s;
      container->slots[slot].runtime_model = request.model_id;
    }
    if (fn.sequential_isolation && !key_fetched && !model_loaded && !runtime_inited) {
      pre_s += config_.cost_model.SequentialHotSeconds(profile);
    }
  } else {
    // Untrusted baseline: plaintext stages only.
    const bool model_cached = container->loaded_model == request.model_id;
    if (!model_cached) {
      model_loaded = true;
      model_s = profile.plain_model_load_s;
      if (config_.remote_storage) {
        model_s += MicrosToSeconds(
            config_.cost_model.storage_latency().TransferTime(profile.model_bytes));
      }
      pre_s += model_s;
      container->loaded_model = request.model_id;
      for (auto& s : container->slots) s.runtime_model.clear();
    }
    if (container->slots[slot].runtime_model != request.model_id) {
      runtime_inited = true;
      rt_s = profile.plain_runtime_init_s;
      pre_s += rt_s;
      container->slots[slot].runtime_model = request.model_id;
    }
  }

  InvocationKind kind = fresh ? InvocationKind::kCold
                        : (key_fetched || model_loaded || runtime_inited)
                            ? InvocationKind::kWarm
                            : InvocationKind::kHot;
  if (fn.mode == RuntimeMode::kNative && !fresh) kind = InvocationKind::kCold;

  // Begin stages when the container is ready.
  TimeMicros begin = std::max(queue_.now(), container->ready_at);
  TimeMicros exec_begin = begin + SecondsToMicros(pre_s);
  int container_id = container->id;
  PendingRequest req = request;

  // Virtual-time trace: pre-execution stage spans laid out sequentially from
  // `begin` under a pre-minted root (closed at completion below). Explicit
  // timestamps, so no clock override is needed — the exported JSON simply
  // carries simulated time.
  obs::TraceContext trace_root;
  if (obs::Tracer::Enabled()) {
    trace_root = obs::Tracer::NewContext();
    TimeMicros cursor = begin;
    auto stage = [&cursor, &trace_root](const char* name, double seconds) {
      if (seconds <= 0) return;
      const TimeMicros end = cursor + SecondsToMicros(seconds);
      obs::Tracer::EmitSpan(trace_root, name, cursor, end);
      cursor = end;
    };
    stage(obs::spans::kSimOverhead, overhead_s);
    stage(obs::spans::kEnclaveInit, relaunch_s);
    stage(obs::spans::kKeyFetch, key_s);
    stage(obs::spans::kModelLoad, model_s);
    stage(obs::spans::kRuntimeInit, rt_s);
  }

  queue_.ScheduleAt(exec_begin, [this, req, container_id, slot, kind, trusted,
                                 trace_root] {
    auto it = containers_.find(container_id);
    assert(it != containers_.end());
    Container* c = it->second.get();
    const SimFunction& f = FunctionSpec(req.function);
    const ModelProfile& p = config_.cost_model.profile(f.framework, f.arch);
    Node& node = nodes_[c->node];
    node.runnable++;
    double epc_util = config_.cost_model.epc_bytes() == 0
                          ? 0.0
                          : static_cast<double>(node.epc_committed) /
                                static_cast<double>(config_.cost_model.epc_bytes());
    double exec_s =
        config_.cost_model.ExecuteSeconds(p, node.runnable,
                                          config_.cost_model.cores_per_node(),
                                          epc_util, trusted);
    if (trace_root.valid() && obs::Tracer::Enabled()) {
      obs::Tracer::EmitSpan(trace_root, obs::spans::kInference, queue_.now(),
                            queue_.now() + SecondsToMicros(exec_s));
    }
    queue_.ScheduleAfter(SecondsToMicros(exec_s), [this, req, container_id,
                                                   slot, kind, trace_root] {
      auto it2 = containers_.find(container_id);
      assert(it2 != containers_.end());
      Container* c2 = it2->second.get();
      nodes_[c2->node].runnable--;
      if (trace_root.valid()) {
        obs::Tracer::EmitRoot(trace_root, obs::spans::kSimRequest, req.submit,
                              queue_.now(), "node", c2->node);
      }
      FinishRequest(req, c2, slot, kind);
    });
  });
}

void ClusterSim::FinishRequest(const PendingRequest& request, Container* container,
                               int slot, InvocationKind kind) {
  container->slots[slot].busy = false;
  container->last_used = queue_.now();

  RequestRecord record;
  record.function = request.function;
  record.model_id = request.model_id;
  record.user_id = request.user_id;
  record.submit = request.submit;
  record.complete = queue_.now();
  record.kind = kind;
  if (request.on_complete) request.on_complete(record);
  metrics_.Record(std::move(record));

  SampleUsage();
  ScheduleReclaim(container);
  DrainQueue(request.function);
}

void ClusterSim::ScheduleReclaim(Container* container) {
  int id = container->id;
  queue_.ScheduleAfter(config_.keep_alive + 1, [this, id] { ReclaimIfIdle(id); });
}

void ClusterSim::ReclaimIfIdle(int container_id) {
  auto it = containers_.find(container_id);
  if (it == containers_.end() || it->second->reclaimed) return;
  Container* c = it->second.get();
  for (const auto& slot : c->slots) {
    if (slot.busy) return;
  }
  if (queue_.now() - c->last_used < config_.keep_alive) return;
  c->reclaimed = true;
  Node& node = nodes_[c->node];
  node.memory_used -= std::min(node.memory_used, c->memory_bytes);
  node.epc_committed -= std::min(node.epc_committed, c->enclave_bytes);
  SampleUsage();
}

void ClusterSim::DrainQueue(const std::string& function) {
  auto it = waiting_.find(function);
  if (it == waiting_.end() || it->second.empty()) return;
  PendingRequest request = it->second.front();
  Container* container = FindOrCreateContainer(request);
  if (container == nullptr) return;
  it->second.pop_front();
  StartRequest(request, container);
}

Status ClusterSim::Prewarm(const std::string& function, int count,
                           const std::string& model_id, const std::string& user_id) {
  if (functions_.count(function) == 0) {
    return Status::NotFound("unknown function: " + function);
  }
  for (int i = 0; i < count; ++i) {
    Container* c = CreateContainer(function);
    if (c == nullptr) {
      return Status::ResourceExhausted("cluster cannot fit prewarmed container");
    }
    c->ready_at = queue_.now();
    c->loaded_model = model_id;
    c->cached_key = model_id + "|" + user_id;
    c->attested = true;
    c->busy_count = 1;  // not fresh: first request is hot, not cold
    for (auto& slot : c->slots) slot.runtime_model = model_id;
  }
  return Status::OK();
}

}  // namespace sesemi::sim
