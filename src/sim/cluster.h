#ifndef SESEMI_SIM_CLUSTER_H_
#define SESEMI_SIM_CLUSTER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace sesemi::sim {

/// A deployed function (one serverless endpoint). Multiple models may be
/// served by one function (FnPacker pools); the architecture/framework fix
/// the cost profile.
struct SimFunction {
  std::string name;
  inference::FrameworkKind framework = inference::FrameworkKind::kTvm;
  model::Architecture arch = model::Architecture::kMbNet;
  semirt::RuntimeMode mode = semirt::RuntimeMode::kSesemi;
  int num_tcs = 1;
  bool sequential_isolation = false;  ///< Table II build
  /// Container memory budget; 0 = derive from the enclave size, rounded up
  /// to the 128 MB provisioning granularity (Table V).
  uint64_t container_memory_bytes = 0;
};

/// Cluster-level configuration (Table V + §VI setup).
struct SimConfig {
  int num_nodes = 8;
  uint64_t invoker_memory_bytes = 64ull << 30;  ///< per node
  TimeMicros keep_alive = SecondsToMicros(180);  ///< 3-minute warm window
  bool remote_storage = false;  ///< add cloud-storage download to model loads
  CostModel cost_model = CostModel::PaperSgx2();
};

/// Discrete-event simulation of the OpenWhisk-style cluster running SeMIRT
/// (or a baseline runtime). Reproduces the paper's cluster experiments with
/// the calibrated cost model; all scheduling policies (warm-container
/// preference, memory-based placement, keep-alive reclaim, per-enclave key /
/// model / runtime caching) are the behavioural ones from the live system.
class ClusterSim {
 public:
  explicit ClusterSim(SimConfig config);

  void AddFunction(SimFunction function);

  /// Create `count` ready containers for `function`, with `model_id` loaded
  /// hot for `user_id` (the paper's warm-up step).
  Status Prewarm(const std::string& function, int count, const std::string& model_id,
                 const std::string& user_id);

  /// Callback invoked (in virtual time) when a request completes.
  using CompletionCallback = std::function<void(const RequestRecord&)>;

  /// Schedule a request arrival at absolute time `t`.
  void Submit(const std::string& function, const std::string& model_id,
              const std::string& user_id, TimeMicros t,
              CompletionCallback on_complete = nullptr);

  /// Run the simulation to completion (all arrivals processed).
  void Run() { queue_.RunAll(); }

  EventQueue& queue() { return queue_; }
  Metrics& metrics() { return metrics_; }
  TimeMicros now() const { return queue_.now(); }

  /// Total containers currently alive / currently executing.
  int total_containers() const;
  int serving_containers() const;

 private:
  struct Container;
  struct Node {
    int id = 0;
    uint64_t memory_used = 0;
    uint64_t epc_committed = 0;
    int launches_in_progress = 0;
    int attestations_in_progress = 0;
    int runnable = 0;  ///< CPU-bound requests executing now
  };

  struct Slot {
    bool busy = false;
    std::string runtime_model;  ///< model this slot's runtime was built for
  };

  struct Container {
    int id = 0;
    int node = -1;
    std::string function;
    uint64_t memory_bytes = 0;
    uint64_t enclave_bytes = 0;
    TimeMicros ready_at = 0;
    bool reclaimed = false;
    TimeMicros last_used = 0;
    std::vector<Slot> slots;
    std::string loaded_model;
    std::string cached_key;  ///< "model|user" (single-pair key cache)
    bool attested = false;   ///< KeyService channel established
    uint64_t busy_count = 0;
  };

  struct PendingRequest {
    std::string function;
    std::string model_id;
    std::string user_id;
    TimeMicros submit = 0;
    CompletionCallback on_complete;
  };

  const SimFunction& FunctionSpec(const std::string& name) const;
  uint64_t ContainerMemory(const SimFunction& fn) const;
  uint64_t EnclaveBytes(const SimFunction& fn) const;

  /// Place a request: returns a container with a free slot (possibly freshly
  /// created, not yet ready), or null if the cluster is saturated (request
  /// queued).
  Container* FindOrCreateContainer(const PendingRequest& request);
  Container* CreateContainer(const std::string& function);
  void StartRequest(const PendingRequest& request, Container* container);
  void FinishRequest(const PendingRequest& request, Container* container, int slot,
                     semirt::InvocationKind kind);
  void ScheduleReclaim(Container* container);
  void ReclaimIfIdle(int container_id);
  void DrainQueue(const std::string& function);
  void SampleUsage();

  SimConfig config_;
  EventQueue queue_;
  Metrics metrics_;
  std::map<std::string, SimFunction> functions_;
  std::vector<Node> nodes_;
  std::map<int, std::unique_ptr<Container>> containers_;
  std::map<std::string, std::deque<PendingRequest>> waiting_;
  int next_container_id_ = 1;
};

}  // namespace sesemi::sim

#endif  // SESEMI_SIM_CLUSTER_H_
