#ifndef SESEMI_SIM_COST_MODEL_H_
#define SESEMI_SIM_COST_MODEL_H_

#include <cstdint>

#include "common/clock.h"
#include "inference/framework.h"
#include "model/zoo.h"
#include "semirt/semirt.h"
#include "sgx/attestation.h"
#include "storage/object_store.h"

namespace sesemi::sim {

/// Per-(framework, architecture) stage latencies and memory footprints.
/// The defaults come straight from the paper: Figure 17 (with SGX, SGX2),
/// Figure 18 (without SGX), Table I (sizes), and Appendix D (enclave memory
/// configurations).
struct ModelProfile {
  double enclave_init_s = 0;   ///< Fig 17 "enclave init" (single launch)
  double key_fetch_s = 0;      ///< Fig 17 "key fetch" (first fetch, incl. RA)
  double model_load_s = 0;     ///< Fig 17 "model load" (copy-in + decrypt)
  double runtime_init_s = 0;   ///< Fig 17 "runtime init"
  double execute_s = 0;        ///< Fig 17 "model execution" (1 core, in EPC)
  double plain_model_load_s = 0;   ///< Fig 18 counterpart
  double plain_runtime_init_s = 0; ///< Fig 18 counterpart
  double plain_execute_s = 0;      ///< Fig 18 counterpart
  uint64_t model_bytes = 0;        ///< Table I model size
  uint64_t buffer_bytes = 0;       ///< Table I runtime buffer size
  uint64_t enclave_bytes = 0;      ///< Appendix D enclave memory config
  /// How strongly EPC over-subscription slows execution. TFLM's interpreter
  /// walks the model pages sequentially (one prefetchable pass per
  /// inference), so it tolerates paging; TVM's packed executor re-touches
  /// pages randomly. This is the mechanism behind Figure 11b / 12c-d, where
  /// TFLM sustains a higher rate than TVM once enclaves exceed the SGX1 EPC.
  double paging_sensitivity = 2.0;
};

/// Measured per-stage costs for CostModel::Calibrated. The differential
/// sim-vs-real harness (cluster/replay.h, tests/cluster_sim_parity_test.cc)
/// fills this from a live replay's StageTimings so the simulator predicts
/// the *measured* dataplane instead of the paper testbed — closing the loop
/// the paper only simulates.
struct CalibrationProfile {
  double execute_s = 0;       ///< hot-path execute mean
  double key_fetch_s = 0;     ///< cold key fetch (attestation + provisioning)
  double model_load_s = 0;    ///< cold model fetch + decrypt + compile
  double runtime_init_s = 0;  ///< cold runtime init
  double enclave_init_s = 0;  ///< enclave-launch share of a cold start
  double sandbox_init_s = 0;
  double platform_overhead_s = 0;
  double warm_key_fetch_s = 0;
  uint64_t model_bytes = 1ull << 20;
  uint64_t buffer_bytes = 1ull << 20;
  uint64_t enclave_bytes = 64ull << 20;
  int cores_per_node = 12;
  uint64_t epc_bytes = 64ull << 30;
};

/// Cluster-wide latency/memory model for the discrete-event simulator. All
/// scaling laws are calibrated against the paper's appendix measurements and
/// documented inline.
class CostModel {
 public:
  /// SGX2 testbed (Xeon Gold 5317, 64 GB EPC, ECDSA/DCAP attestation).
  static CostModel PaperSgx2();
  /// SGX1 testbed (Xeon W-1290P, 128 MB EPC, EPID attestation via IAS).
  static CostModel PaperSgx1();
  /// A model whose every (framework, arch) profile carries the *measured*
  /// stage costs in `calibration` — used by the differential harness to ask
  /// "does the simulator's composition of these stages reproduce the
  /// measured end-to-end behaviour?". Attestation-contention surcharges and
  /// EPC paging are disabled (the measured stages already include whatever
  /// contention the live run saw).
  static CostModel Calibrated(const CalibrationProfile& calibration);

  const ModelProfile& profile(inference::FrameworkKind framework,
                              model::Architecture arch) const;

  sgx::SgxGeneration generation() const { return generation_; }
  uint64_t epc_bytes() const { return epc_bytes_; }
  int cores_per_node() const { return cores_per_node_; }

  /// Enclave initialization time. Grows linearly with enclave size and with
  /// the number of enclaves being launched concurrently on the node (EPC
  /// pages are added through a serialized kernel path) — Appendix C Fig 15:
  /// 16 concurrent 256 MB SGX2 enclaves average 4.06 s each.
  double EnclaveInitSeconds(uint64_t enclave_bytes, int concurrent_launches) const;

  /// Remote attestation time (quote generation + verification). Independent
  /// of enclave size; grows with concurrent quote generation — Appendix C
  /// Fig 16: <0.1 s for one SGX2 enclave, ~1 s at 16. EPID adds the IAS
  /// round trip (~2 s base) on SGX1.
  double AttestationSeconds(int concurrent_quotes) const;

  /// Model execution time given `runnable` CPU-bound requests sharing
  /// `cores` physical cores, and the node's EPC over-subscription ratio
  /// (committed / capacity). CPU contention is work-conserving
  /// (max(1, runnable/cores)); EPC pressure multiplies in the SGX1-style
  /// paging slowdown (Figure 11).
  double ExecuteSeconds(const ModelProfile& profile, int runnable, int cores,
                        double epc_utilization, bool trusted) const;

  /// Cold-start sandbox provisioning (container pull + start). Model- and
  /// framework-independent; the paper excludes it from Figure 9 but pays it
  /// in the cluster experiments.
  double SandboxInitSeconds() const { return sandbox_init_s_; }

  /// Per-request serverless platform overhead (controller + proxy + action
  /// protocol). Occupies the container slot but no model CPU. Calibrated so
  /// a 12-container TVM-MBNET node saturates near 46 rps (Figure 12a).
  double PlatformOverheadSeconds() const { return platform_overhead_s_; }

  /// Model download from cloud storage (used when the object store is remote;
  /// the in-cluster NFS cost is folded into model_load_s).
  const storage::StorageLatencyModel& storage_latency() const { return storage_; }

  /// Key fetches after the first on a warm channel skip attestation: only the
  /// request/response over the cached secure session remains.
  double WarmKeyFetchSeconds() const { return warm_key_fetch_s_; }

  /// Sequential-isolation overhead on the hot path (Table II): extra time to
  /// refetch keys over the warm channel, reinit the runtime, and scrub
  /// buffers.
  double SequentialHotSeconds(const ModelProfile& profile) const;

 private:
  CostModel() = default;

  sgx::SgxGeneration generation_ = sgx::SgxGeneration::kSgx2;
  uint64_t epc_bytes_ = 64ull << 30;
  int cores_per_node_ = 12;
  double sandbox_init_s_ = 0.5;
  double platform_overhead_s_ = 0.19;
  double warm_key_fetch_s_ = 0.012;
  // Enclave init: init_s = base + size_gb * rate_s_per_gb * concurrent.
  double enclave_init_base_s_ = 0.08;
  double enclave_init_rate_s_per_gb_ = 2.2;
  // Attestation: att_s = base + per_concurrent * (concurrent - 1).
  double attestation_base_s_ = 0.08;
  double attestation_per_concurrent_s_ = 0.06;
  storage::StorageLatencyModel storage_ = storage::StorageLatencyModel::LocalNfs();
  ModelProfile profiles_[2][3];  // [framework][architecture]
};

}  // namespace sesemi::sim

#endif  // SESEMI_SIM_COST_MODEL_H_
