#include "inference/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/cpuid.h"
#include "common/parallel_for.h"

// The SIMD micro-kernels are x86-only (AVX2+FMA, selected at runtime); other
// architectures build the portable register-blocked kernels alone.
#if defined(__x86_64__) || defined(__i386__)
#define SESEMI_GEMM_X86 1
#include <immintrin.h>
#endif

namespace sesemi::inference::gemm {

namespace {

// Register-blocked micro-tile: MR rows of A against a 16-wide panel of B.
// 16 columns = two SIMD accumulator registers per row on AVX2; MR = 6 keeps
// 12 accumulators + 2 B registers + 1 broadcast inside the 16 ymm registers.
constexpr int kMaxMr = 6;
constexpr int kNr = 16;

// Scratch budget for one im2col row tile: 64K floats = 256 KiB, sized to sit
// in L2 next to the weight panel it multiplies against.
constexpr size_t kScratchBudgetFloats = 64 * 1024;

// Row-panel grain for the thread pool: multiples of the micro-tile height so
// chunk edges never split a micro-tile.
constexpr int64_t kPanelRows = 24;

// Problems smaller than this many multiply-adds run serially; pool dispatch
// costs about a microsecond and would dominate.
constexpr int64_t kParallelFlopThreshold = 1 << 16;

// K-blocking for M > 1 prepacked GEMM: a slab of kKBlockRows panel rows
// (256 * 16 floats = 16 KiB) stays in L1 across every row tile before the
// walk advances to the next slab, so B streams from DRAM once per GEMM
// instead of once per row tile. Engaged only when B is big enough to spill
// L2 (the DRAM-bound Dense shapes); accumulation order per element is
// unchanged (k ascending, C carries the partial), so results are bitwise
// identical to the single-pass walk.
constexpr int kKBlockRows = 256;
constexpr size_t kKBlockEngageBytes = size_t{1} << 20;

bool ShouldKBlockPacked(int m, int n, int k) {
  return m > 1 && k > 2 * kKBlockRows &&
         static_cast<size_t>(k) * n * sizeof(float) > kKBlockEngageBytes;
}

#ifdef SESEMI_GEMM_X86
template <int MR>
__attribute__((target("avx2,fma"))) void MicroKernelAvx2(
    const float* a, int lda, const float* b, int n, const float* bias, float* c,
    int k, int n0) {
  __m256 acc_lo[MR], acc_hi[MR];
  const __m256 seed_lo = bias != nullptr ? _mm256_loadu_ps(bias + n0) : _mm256_setzero_ps();
  const __m256 seed_hi = bias != nullptr ? _mm256_loadu_ps(bias + n0 + 8) : _mm256_setzero_ps();
  for (int r = 0; r < MR; ++r) {
    acc_lo[r] = seed_lo;
    acc_hi[r] = seed_hi;
  }
  const float* brow = b + n0;
  for (int kk = 0; kk < k; ++kk, brow += n) {
    const __m256 b_lo = _mm256_loadu_ps(brow);
    const __m256 b_hi = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(a[static_cast<size_t>(r) * lda + kk]);
      acc_lo[r] = _mm256_fmadd_ps(av, b_lo, acc_lo[r]);
      acc_hi[r] = _mm256_fmadd_ps(av, b_hi, acc_hi[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0, acc_lo[r]);
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0 + 8, acc_hi[r]);
  }
}
#endif  // SESEMI_GEMM_X86

template <int MR>
void MicroKernelPortable(const float* a, int lda, const float* b, int n,
                         const float* bias, float* c, int k, int n0) {
  float acc[MR][kNr];
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = bias != nullptr ? bias[n0 + j] : 0.0f;
  }
  const float* brow = b + n0;
  for (int kk = 0; kk < k; ++kk, brow += n) {
    for (int r = 0; r < MR; ++r) {
      const float av = a[static_cast<size_t>(r) * lda + kk];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc[r], kNr * sizeof(float));
  }
}

// Ragged right/bottom edge: per-row accumulator strip of nr (< 16) columns.
void EdgeKernel(const float* a, int lda, const float* b, int n, const float* bias,
                float* c, int k, int n0, int mr, int nr) {
  for (int r = 0; r < mr; ++r) {
    float acc[kNr];
    for (int j = 0; j < nr; ++j) acc[j] = bias != nullptr ? bias[n0 + j] : 0.0f;
    const float* arow = a + static_cast<size_t>(r) * lda;
    const float* brow = b + n0;
    for (int kk = 0; kk < k; ++kk, brow += n) {
      const float av = arow[kk];
      for (int j = 0; j < nr; ++j) acc[j] += av * brow[j];
    }
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc, nr * sizeof(float));
  }
}

bool HasAvx2Fma() {
#ifdef SESEMI_GEMM_X86
  return GetCpuFeatures().Avx2Fma();
#else
  return false;
#endif
}

bool HasAvx512Vnni() {
#ifdef SESEMI_GEMM_X86
  return GetCpuFeatures().Avx512Vnni();
#else
  return false;
#endif
}

static_assert(kNr == kPackPanelWidth,
              "packed panels and the micro-kernel N blocking must agree");

// Stride between consecutive column panels in the PackB layout.
inline size_t PanelStride(int k) { return static_cast<size_t>(k) * kNr; }

#ifdef SESEMI_GEMM_X86
// Packed-B micro-tile: same accumulator shape as MicroKernelAvx2, but the
// panel's k rows are contiguous (brow += 16), so B streams forward through
// one cache line per step instead of striding N floats between rows.
template <int MR>
__attribute__((target("avx2,fma"))) void MicroKernelPackedAvx2(
    const float* a, int lda, const float* bp, int n, const float* bias,
    float* c, int k, int n0) {
  __m256 acc_lo[MR], acc_hi[MR];
  const __m256 seed_lo = bias != nullptr ? _mm256_loadu_ps(bias + n0) : _mm256_setzero_ps();
  const __m256 seed_hi = bias != nullptr ? _mm256_loadu_ps(bias + n0 + 8) : _mm256_setzero_ps();
  for (int r = 0; r < MR; ++r) {
    acc_lo[r] = seed_lo;
    acc_hi[r] = seed_hi;
  }
  for (int kk = 0; kk < k; ++kk, bp += kNr) {
    const __m256 b_lo = _mm256_loadu_ps(bp);
    const __m256 b_hi = _mm256_loadu_ps(bp + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(a[static_cast<size_t>(r) * lda + kk]);
      acc_lo[r] = _mm256_fmadd_ps(av, b_lo, acc_lo[r]);
      acc_hi[r] = _mm256_fmadd_ps(av, b_hi, acc_hi[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0, acc_lo[r]);
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0 + 8, acc_hi[r]);
  }
}
#endif  // SESEMI_GEMM_X86

template <int MR>
void MicroKernelPackedPortable(const float* a, int lda, const float* bp, int n,
                               const float* bias, float* c, int k, int n0) {
  float acc[MR][kNr];
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = bias != nullptr ? bias[n0 + j] : 0.0f;
  }
  for (int kk = 0; kk < k; ++kk, bp += kNr) {
    for (int r = 0; r < MR; ++r) {
      const float av = a[static_cast<size_t>(r) * lda + kk];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * bp[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc[r], kNr * sizeof(float));
  }
}

#ifdef SESEMI_GEMM_X86
// Accumulate variant for the K-blocked walk: seeds the accumulators from C
// (which carries the partial sum of earlier k slabs) instead of the bias.
// The bias parameter exists only to share KernelFn's signature.
template <int MR>
__attribute__((target("avx2,fma"))) void MicroKernelPackedAccAvx2(
    const float* a, int lda, const float* bp, int n, const float* /*bias*/,
    float* c, int k, int n0) {
  __m256 acc_lo[MR], acc_hi[MR];
  for (int r = 0; r < MR; ++r) {
    acc_lo[r] = _mm256_loadu_ps(c + static_cast<size_t>(r) * n + n0);
    acc_hi[r] = _mm256_loadu_ps(c + static_cast<size_t>(r) * n + n0 + 8);
  }
  for (int kk = 0; kk < k; ++kk, bp += kNr) {
    const __m256 b_lo = _mm256_loadu_ps(bp);
    const __m256 b_hi = _mm256_loadu_ps(bp + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(a[static_cast<size_t>(r) * lda + kk]);
      acc_lo[r] = _mm256_fmadd_ps(av, b_lo, acc_lo[r]);
      acc_hi[r] = _mm256_fmadd_ps(av, b_hi, acc_hi[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0, acc_lo[r]);
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0 + 8, acc_hi[r]);
  }
}
#endif  // SESEMI_GEMM_X86

template <int MR>
void MicroKernelPackedAccPortable(const float* a, int lda, const float* bp,
                                  int n, const float* /*bias*/, float* c, int k,
                                  int n0) {
  float acc[MR][kNr];
  for (int r = 0; r < MR; ++r) {
    std::memcpy(acc[r], c + static_cast<size_t>(r) * n + n0, kNr * sizeof(float));
  }
  for (int kk = 0; kk < k; ++kk, bp += kNr) {
    for (int r = 0; r < MR; ++r) {
      const float av = a[static_cast<size_t>(r) * lda + kk];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * bp[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc[r], kNr * sizeof(float));
  }
}

// Ragged right edge of the packed layout: the last panel is zero-padded to 16
// columns, but C (and bias) only have nr valid ones, so accumulate scalar
// strips over the panel rows.
void PackedEdgeKernel(const float* a, int lda, const float* bp, int n,
                      const float* bias, float* c, int k, int n0, int mr, int nr) {
  for (int r = 0; r < mr; ++r) {
    float acc[kNr];
    for (int j = 0; j < nr; ++j) acc[j] = bias != nullptr ? bias[n0 + j] : 0.0f;
    const float* arow = a + static_cast<size_t>(r) * lda;
    const float* brow = bp;
    for (int kk = 0; kk < k; ++kk, brow += kNr) {
      const float av = arow[kk];
      for (int j = 0; j < nr; ++j) acc[j] += av * brow[j];
    }
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc, nr * sizeof(float));
  }
}

#ifdef SESEMI_GEMM_X86
// M == 1 over packed B: per panel, two accumulator registers live across the
// whole k loop while the panel streams forward — every weight is touched
// exactly once, contiguously, with no store traffic until the panel is done
// (the unpacked GEMV re-reads and re-writes C once per k step).
__attribute__((target("avx2,fma"))) void GemvPackedAvx2(
    const float* a, const float* packed, const float* bias, float* c, int n,
    int k) {
  const int n_full = n - n % kNr;
  for (int n0 = 0; n0 < n_full; n0 += kNr) {
    const float* bp = packed + (n0 / kNr) * PanelStride(k);
    __m256 acc_lo = bias != nullptr ? _mm256_loadu_ps(bias + n0) : _mm256_setzero_ps();
    __m256 acc_hi = bias != nullptr ? _mm256_loadu_ps(bias + n0 + 8) : _mm256_setzero_ps();
    for (int kk = 0; kk < k; ++kk, bp += kNr) {
      const __m256 av = _mm256_set1_ps(a[kk]);
      acc_lo = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), acc_lo);
      acc_hi = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp + 8), acc_hi);
    }
    _mm256_storeu_ps(c + n0, acc_lo);
    _mm256_storeu_ps(c + n0 + 8, acc_hi);
  }
  if (n_full < n) {
    PackedEdgeKernel(a, k, packed + (n_full / kNr) * PanelStride(k), n, bias, c,
                     k, n_full, 1, n - n_full);
  }
}
#endif  // SESEMI_GEMM_X86

void GemvPackedPortable(const float* a, const float* packed, const float* bias,
                        float* c, int n, int k) {
  const int n_full = n - n % kNr;
  for (int n0 = 0; n0 < n_full; n0 += kNr) {
    const float* bp = packed + (n0 / kNr) * PanelStride(k);
    float acc[kNr];
    for (int j = 0; j < kNr; ++j) acc[j] = bias != nullptr ? bias[n0 + j] : 0.0f;
    for (int kk = 0; kk < k; ++kk, bp += kNr) {
      const float av = a[kk];
      for (int j = 0; j < kNr; ++j) acc[j] += av * bp[j];
    }
    std::memcpy(c + n0, acc, kNr * sizeof(float));
  }
  if (n_full < n) {
    PackedEdgeKernel(a, k, packed + (n_full / kNr) * PanelStride(k), n, bias, c,
                     k, n_full, 1, n - n_full);
  }
}

#ifdef SESEMI_GEMM_X86
// M == 1 (Dense): the micro-tile column panels would stride through B once
// per 16 columns; a row-streaming GEMV touches every weight exactly once in
// prefetcher-friendly order instead.
__attribute__((target("avx2,fma"))) void GemvAvx2(const float* a, const float* b,
                                                  const float* bias, float* c,
                                                  int n, int k) {
  if (bias != nullptr) {
    std::memcpy(c, bias, static_cast<size_t>(n) * sizeof(float));
  } else {
    std::memset(c, 0, static_cast<size_t>(n) * sizeof(float));
  }
  const int n8 = n - n % 8;
  const float* brow = b;
  for (int kk = 0; kk < k; ++kk, brow += n) {
    const __m256 av = _mm256_set1_ps(a[kk]);
    for (int j = 0; j < n8; j += 8) {
      _mm256_storeu_ps(c + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j),
                                              _mm256_loadu_ps(c + j)));
    }
    for (int j = n8; j < n; ++j) c[j] += a[kk] * brow[j];
  }
}
#endif  // SESEMI_GEMM_X86

void GemvPortable(const float* a, const float* b, const float* bias, float* c,
                  int n, int k) {
  for (int j = 0; j < n; ++j) c[j] = bias != nullptr ? bias[j] : 0.0f;
  const float* brow = b;
  for (int kk = 0; kk < k; ++kk, brow += n) {
    const float av = a[kk];
    for (int j = 0; j < n; ++j) c[j] += av * brow[j];
  }
}

using KernelFn = void (*)(const float*, int, const float*, int, const float*,
                          float*, int, int);

KernelFn FullTileKernel(int mr) {
  static const KernelFn portable[kMaxMr] = {
      MicroKernelPortable<1>, MicroKernelPortable<2>, MicroKernelPortable<3>,
      MicroKernelPortable<4>, MicroKernelPortable<5>, MicroKernelPortable<6>};
#ifdef SESEMI_GEMM_X86
  static const KernelFn avx2[kMaxMr] = {
      MicroKernelAvx2<1>, MicroKernelAvx2<2>, MicroKernelAvx2<3>,
      MicroKernelAvx2<4>, MicroKernelAvx2<5>, MicroKernelAvx2<6>};
  if (HasAvx2Fma()) return avx2[mr - 1];
#endif
  return portable[mr - 1];
}

KernelFn FullTilePackedKernel(int mr) {
  static const KernelFn portable[kMaxMr] = {
      MicroKernelPackedPortable<1>, MicroKernelPackedPortable<2>,
      MicroKernelPackedPortable<3>, MicroKernelPackedPortable<4>,
      MicroKernelPackedPortable<5>, MicroKernelPackedPortable<6>};
#ifdef SESEMI_GEMM_X86
  static const KernelFn avx2[kMaxMr] = {
      MicroKernelPackedAvx2<1>, MicroKernelPackedAvx2<2>,
      MicroKernelPackedAvx2<3>, MicroKernelPackedAvx2<4>,
      MicroKernelPackedAvx2<5>, MicroKernelPackedAvx2<6>};
  if (HasAvx2Fma()) return avx2[mr - 1];
#endif
  return portable[mr - 1];
}

KernelFn FullTilePackedAccKernel(int mr) {
  static const KernelFn portable[kMaxMr] = {
      MicroKernelPackedAccPortable<1>, MicroKernelPackedAccPortable<2>,
      MicroKernelPackedAccPortable<3>, MicroKernelPackedAccPortable<4>,
      MicroKernelPackedAccPortable<5>, MicroKernelPackedAccPortable<6>};
#ifdef SESEMI_GEMM_X86
  static const KernelFn avx2[kMaxMr] = {
      MicroKernelPackedAccAvx2<1>, MicroKernelPackedAccAvx2<2>,
      MicroKernelPackedAccAvx2<3>, MicroKernelPackedAccAvx2<4>,
      MicroKernelPackedAccAvx2<5>, MicroKernelPackedAccAvx2<6>};
  if (HasAvx2Fma()) return avx2[mr - 1];
#endif
  return portable[mr - 1];
}

// Ragged-edge accumulate strip (C carries the partial sum).
void PackedEdgeKernelAcc(const float* a, int lda, const float* bp, int n,
                         float* c, int k, int n0, int mr, int nr) {
  for (int r = 0; r < mr; ++r) {
    float acc[kNr];
    std::memcpy(acc, c + static_cast<size_t>(r) * n + n0, nr * sizeof(float));
    const float* arow = a + static_cast<size_t>(r) * lda;
    const float* brow = bp;
    for (int kk = 0; kk < k; ++kk, brow += kNr) {
      const float av = arow[kk];
      for (int j = 0; j < nr; ++j) acc[j] += av * brow[j];
    }
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc, nr * sizeof(float));
  }
}

// All rows [m0, m1) of C against the packed panels.
void GemmPrepackedRows(const float* a, const float* packed, const float* bias,
                       float* c, int m0, int m1, int n, int k) {
  const int n_full = n - n % kNr;
  for (int m = m0; m < m1; m += kMaxMr) {
    const int mr = std::min(kMaxMr, m1 - m);
    const float* arow = a + static_cast<size_t>(m) * k;
    float* crow = c + static_cast<size_t>(m) * n;
    KernelFn kernel = FullTilePackedKernel(mr);
    for (int n0 = 0; n0 < n_full; n0 += kNr) {
      kernel(arow, k, packed + (n0 / kNr) * PanelStride(k), n, bias, crow, k, n0);
    }
    if (n_full < n) {
      PackedEdgeKernel(arow, k, packed + (n_full / kNr) * PanelStride(k), n,
                       bias, crow, k, n_full, mr, n - n_full);
    }
  }
}

// K-blocked variant of GemmPrepackedRows: panel-outer, k-slab middle, row
// tiles inner — the 16 KiB slab stays in L1 while every row tile consumes it.
// The first slab seeds from the bias, later slabs accumulate into C; per
// element the k walk is still strictly ascending, so the result is bitwise
// identical to the single-pass walk.
void GemmPrepackedRowsKBlocked(const float* a, const float* packed,
                               const float* bias, float* c, int m0, int m1,
                               int n, int k) {
  const int n_full = n - n % kNr;
  for (int n0 = 0; n0 < n; n0 += kNr) {
    const bool edge = n0 >= n_full;
    const float* panel = packed + (n0 / kNr) * PanelStride(k);
    for (int k0 = 0; k0 < k; k0 += kKBlockRows) {
      const int kc = std::min(kKBlockRows, k - k0);
      const float* bslab = panel + static_cast<size_t>(k0) * kNr;
      for (int m = m0; m < m1; m += kMaxMr) {
        const int mr = std::min(kMaxMr, m1 - m);
        const float* arow = a + static_cast<size_t>(m) * k + k0;
        float* crow = c + static_cast<size_t>(m) * n;
        if (!edge) {
          KernelFn kernel =
              k0 == 0 ? FullTilePackedKernel(mr) : FullTilePackedAccKernel(mr);
          kernel(arow, k, bslab, n, bias, crow, kc, n0);
        } else if (k0 == 0) {
          PackedEdgeKernel(arow, k, bslab, n, bias, crow, kc, n0, mr, n - n_full);
        } else {
          PackedEdgeKernelAcc(arow, k, bslab, n, crow, kc, n0, mr, n - n_full);
        }
      }
    }
  }
}

// All rows [m0, m1) of C for every column panel.
void GemmRows(const float* a, const float* b, const float* bias, float* c, int m0,
              int m1, int n, int k) {
  const int n_full = n - n % kNr;
  for (int m = m0; m < m1; m += kMaxMr) {
    const int mr = std::min(kMaxMr, m1 - m);
    const float* arow = a + static_cast<size_t>(m) * k;
    float* crow = c + static_cast<size_t>(m) * n;
    KernelFn kernel = FullTileKernel(mr);
    for (int n0 = 0; n0 < n_full; n0 += kNr) {
      kernel(arow, k, b, n, bias, crow, k, n0);
    }
    if (n_full < n) {
      EdgeKernel(arow, k, b, n, bias, crow, k, n_full, mr, n - n_full);
    }
  }
}

#ifdef SESEMI_GEMM_X86
// Depthwise row panel, AVX2: per output pixel, channel strips of 8 keep the
// accumulator in a register across every (ky,kx) tap — each tap is then a
// single fused multiply-add over the contiguous HWC channel run.
__attribute__((target("avx2,fma"))) void DepthwiseRowsAvx2(
    const float* in, const TensorShape& in_shape, const float* w,
    const float* bias, int kernel, int stride, int out_w, int oy0, int oy1,
    float* out) {
  const int pad = (kernel - 1) / 2;
  const int c = in_shape.c;
  const int c8 = c - c % 8;
  for (int oy = oy0; oy < oy1; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      float* out_px = out + (static_cast<size_t>(oy) * out_w + ox) * c;
      const int iy0 = oy * stride - pad;
      const int ix0 = ox * stride - pad;
      int ch = 0;
      for (; ch < c8; ch += 8) {
        __m256 acc = _mm256_loadu_ps(bias + ch);
        for (int ky = 0; ky < kernel; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= in_shape.h) continue;
          for (int kx = 0; kx < kernel; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= in_shape.w) continue;
            const float* in_px =
                in + (static_cast<size_t>(iy) * in_shape.w + ix) * c + ch;
            const float* w_px =
                w + (static_cast<size_t>(ky) * kernel + kx) * c + ch;
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(in_px), _mm256_loadu_ps(w_px),
                                  acc);
          }
        }
        _mm256_storeu_ps(out_px + ch, acc);
      }
      for (; ch < c; ++ch) {
        float acc = bias[ch];
        for (int ky = 0; ky < kernel; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= in_shape.h) continue;
          for (int kx = 0; kx < kernel; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= in_shape.w) continue;
            acc += in[(static_cast<size_t>(iy) * in_shape.w + ix) * c + ch] *
                   w[(static_cast<size_t>(ky) * kernel + kx) * c + ch];
          }
        }
        out_px[ch] = acc;
      }
    }
  }
}
#endif  // SESEMI_GEMM_X86

// Portable depthwise row panel: same tap order, plain channel loop the
// compiler auto-vectorizes at -O3.
void DepthwiseRowsPortable(const float* in, const TensorShape& in_shape,
                           const float* w, const float* bias, int kernel,
                           int stride, int out_w, int oy0, int oy1, float* out) {
  const int pad = (kernel - 1) / 2;
  const int c = in_shape.c;
  for (int oy = oy0; oy < oy1; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      float* out_px = out + (static_cast<size_t>(oy) * out_w + ox) * c;
      for (int ch = 0; ch < c; ++ch) out_px[ch] = bias[ch];
      for (int ky = 0; ky < kernel; ++ky) {
        const int iy = oy * stride + ky - pad;
        if (iy < 0 || iy >= in_shape.h) continue;
        for (int kx = 0; kx < kernel; ++kx) {
          const int ix = ox * stride + kx - pad;
          if (ix < 0 || ix >= in_shape.w) continue;
          const float* in_px =
              in + (static_cast<size_t>(iy) * in_shape.w + ix) * c;
          const float* w_px = w + (static_cast<size_t>(ky) * kernel + kx) * c;
          for (int ch = 0; ch < c; ++ch) out_px[ch] += in_px[ch] * w_px[ch];
        }
      }
    }
  }
}

}  // namespace

void DepthwiseConv2d(const float* in, const TensorShape& in_shape,
                     const float* weights, int kernel, int stride, float* out) {
  const int out_h = (in_shape.h + stride - 1) / stride;
  const int out_w = (in_shape.w + stride - 1) / stride;
  const int c = in_shape.c;
  const float* bias = weights + static_cast<size_t>(kernel) * kernel * c;

  auto rows = [&](int64_t y0, int64_t y1) {
#ifdef SESEMI_GEMM_X86
    if (HasAvx2Fma()) {
      DepthwiseRowsAvx2(in, in_shape, weights, bias, kernel, stride, out_w,
                        static_cast<int>(y0), static_cast<int>(y1), out);
      return;
    }
#endif
    DepthwiseRowsPortable(in, in_shape, weights, bias, kernel, stride, out_w,
                          static_cast<int>(y0), static_cast<int>(y1), out);
  };

  const int64_t flops_per_row =
      static_cast<int64_t>(out_w) * kernel * kernel * c;
  if (static_cast<int64_t>(out_h) * flops_per_row < kParallelFlopThreshold) {
    rows(0, out_h);
    return;
  }
  const int64_t grain =
      std::max<int64_t>(1, kParallelFlopThreshold / std::max<int64_t>(1, flops_per_row));
  ParallelFor(0, out_h, grain, rows);
}

void Gemm(const float* a, const float* b, const float* bias, float* c, int m,
          int n, int k) {
  if (m <= 0 || n <= 0) return;
  if (m == 1) {
#ifdef SESEMI_GEMM_X86
    if (HasAvx2Fma()) {
      GemvAvx2(a, b, bias, c, n, k);
      return;
    }
#endif
    GemvPortable(a, b, bias, c, n, k);
    return;
  }
  const int64_t flops = static_cast<int64_t>(m) * n * k;
  if (flops < kParallelFlopThreshold) {
    GemmRows(a, b, bias, c, 0, m, n, k);
    return;
  }
  ParallelFor(0, m, kPanelRows, [&](int64_t r0, int64_t r1) {
    GemmRows(a, b, bias, c, static_cast<int>(r0), static_cast<int>(r1), n, k);
  });
}

size_t PackedBElements(int k, int n) {
  const size_t panels = (static_cast<size_t>(n) + kNr - 1) / kNr;
  return panels * PanelStride(k);
}

void PackB(const float* b, int k, int n, float* packed) {
  for (int n0 = 0; n0 < n; n0 += kNr) {
    const int nr = std::min(kNr, n - n0);
    float* dst = packed + (n0 / kNr) * PanelStride(k);
    const float* src = b + n0;
    for (int kk = 0; kk < k; ++kk, dst += kNr, src += n) {
      std::memcpy(dst, src, static_cast<size_t>(nr) * sizeof(float));
      if (nr < kNr) {
        std::memset(dst + nr, 0, static_cast<size_t>(kNr - nr) * sizeof(float));
      }
    }
  }
}

void GemmPrepacked(const float* a, const float* packed_b, const float* bias,
                   float* c, int m, int n, int k) {
  if (m <= 0 || n <= 0) return;
  if (m == 1) {
#ifdef SESEMI_GEMM_X86
    if (HasAvx2Fma()) {
      GemvPackedAvx2(a, packed_b, bias, c, n, k);
      return;
    }
#endif
    GemvPackedPortable(a, packed_b, bias, c, n, k);
    return;
  }
  const bool kblock = ShouldKBlockPacked(m, n, k);
  const int64_t flops = static_cast<int64_t>(m) * n * k;
  if (flops < kParallelFlopThreshold) {
    if (kblock) {
      GemmPrepackedRowsKBlocked(a, packed_b, bias, c, 0, m, n, k);
    } else {
      GemmPrepackedRows(a, packed_b, bias, c, 0, m, n, k);
    }
    return;
  }
  ParallelFor(0, m, kPanelRows, [&](int64_t r0, int64_t r1) {
    if (kblock) {
      GemmPrepackedRowsKBlocked(a, packed_b, bias, c, static_cast<int>(r0),
                                static_cast<int>(r1), n, k);
    } else {
      GemmPrepackedRows(a, packed_b, bias, c, static_cast<int>(r0),
                        static_cast<int>(r1), n, k);
    }
  });
}

void Im2ColRows(const float* in, const TensorShape& in_shape, int kernel,
                int stride, int out_w, int m0, int m1, float* patch) {
  const int pad = (kernel - 1) / 2;
  const int in_c = in_shape.c;
  const size_t row_floats = static_cast<size_t>(kernel) * in_c;
  for (int m = m0; m < m1; ++m) {
    const int oy = m / out_w;
    const int ox = m % out_w;
    const int iy0 = oy * stride - pad;
    const int ix0 = ox * stride - pad;
    float* dst = patch + static_cast<size_t>(m - m0) * kernel * row_floats;
    for (int ky = 0; ky < kernel; ++ky, dst += row_floats) {
      const int iy = iy0 + ky;
      if (iy < 0 || iy >= in_shape.h) {
        std::memset(dst, 0, row_floats * sizeof(float));
        continue;
      }
      if (ix0 >= 0 && ix0 + kernel <= in_shape.w) {
        // Interior: the whole kx window is one contiguous HWC run.
        std::memcpy(dst,
                    in + (static_cast<size_t>(iy) * in_shape.w + ix0) * in_c,
                    row_floats * sizeof(float));
        continue;
      }
      for (int kx = 0; kx < kernel; ++kx) {
        const int ix = ix0 + kx;
        float* cell = dst + static_cast<size_t>(kx) * in_c;
        if (ix < 0 || ix >= in_shape.w) {
          std::memset(cell, 0, in_c * sizeof(float));
        } else {
          std::memcpy(cell,
                      in + (static_cast<size_t>(iy) * in_shape.w + ix) * in_c,
                      in_c * sizeof(float));
        }
      }
    }
  }
}

size_t Conv2dScratchElements(const TensorShape& in_shape, int kernel, int stride) {
  if (kernel == 1 && stride == 1) {
    return 0;  // 1x1 stride-1 convolutions multiply the input in place
  }
  const size_t k = static_cast<size_t>(kernel) * kernel * in_shape.c;
  const size_t out_pixels = static_cast<size_t>(in_shape.h) * in_shape.w;
  const size_t tile_rows = std::max<size_t>(1, std::min(out_pixels, kScratchBudgetFloats / k));
  return tile_rows * k;
}

namespace {

// Shared conv driver: 1x1 stride-1 fast path plus the im2col row-tile loop,
// with the GEMM step (unpacked or prepacked B) supplied by the caller as
// gemm_step(a, c, m, n, k) — one copy of the tiling/scratch policy to keep
// in sync with Conv2dScratchElements.
template <typename GemmStep>
void Conv2dGemmTiled(const float* in, const TensorShape& in_shape, int kernel,
                     int stride, int out_c, float* out, float* scratch,
                     GemmStep&& gemm_step) {
  const int out_h = (in_shape.h + stride - 1) / stride;
  const int out_w = (in_shape.w + stride - 1) / stride;
  const int m = out_h * out_w;
  const int k = kernel * kernel * in_shape.c;

  if (kernel == 1 && stride == 1) {
    // A 1x1 stride-1 convolution is exactly C = in (M x c) * W (c x out_c).
    gemm_step(in, out, m, out_c, in_shape.c);
    return;
  }

  const int tile_rows =
      static_cast<int>(Conv2dScratchElements(in_shape, kernel, stride) /
                       static_cast<size_t>(k));
  for (int m0 = 0; m0 < m; m0 += tile_rows) {
    const int m1 = std::min(m, m0 + tile_rows);
    Im2ColRows(in, in_shape, kernel, stride, out_w, m0, m1, scratch);
    gemm_step(scratch, out + static_cast<size_t>(m0) * out_c, m1 - m0, out_c, k);
  }
}

}  // namespace

void Conv2dGemm(const float* in, const TensorShape& in_shape,
                const float* weights, int kernel, int stride, int out_c,
                float* out, float* scratch) {
  const float* bias =
      weights + static_cast<size_t>(kernel) * kernel * in_shape.c * out_c;
  Conv2dGemmTiled(in, in_shape, kernel, stride, out_c, out, scratch,
                  [&](const float* a, float* c, int m, int n, int k) {
                    Gemm(a, weights, bias, c, m, n, k);
                  });
}

void Conv2dGemmPrepacked(const float* in, const TensorShape& in_shape,
                         const float* packed_weights, const float* bias,
                         int kernel, int stride, int out_c, float* out,
                         float* scratch) {
  Conv2dGemmTiled(in, in_shape, kernel, stride, out_c, out, scratch,
                  [&](const float* a, float* c, int m, int n, int k) {
                    GemmPrepacked(a, packed_weights, bias, c, m, n, k);
                  });
}

// ===================================================================== int8

namespace {

// Bytes between consecutive 16-column panels of the int8 packed layout.
inline size_t Int8PanelStride(int k4) {
  return static_cast<size_t>(k4) * kNr;
}

// One micro-tile of exact int32 accumulators: MR rows x 16 columns over the
// K-grouped panel `bp` (k4 rows, zero-padded). Every tier computes the same
// integer, so tiers differ only in speed.
template <int MR>
void Int8MicroKernelPortable(const uint8_t* a, int lda, const int8_t* bp,
                             int k4, int32_t acc[][kNr]) {
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = 0;
  }
  for (int g = 0; g < k4 / kInt8KGroup; ++g, bp += kNr * kInt8KGroup) {
    for (int r = 0; r < MR; ++r) {
      const uint8_t* a4 = a + static_cast<size_t>(r) * lda + g * kInt8KGroup;
      for (int j = 0; j < kNr; ++j) {
        int32_t s = 0;
        for (int ki = 0; ki < kInt8KGroup; ++ki) {
          s += static_cast<int32_t>(a4[ki]) *
               static_cast<int32_t>(bp[j * kInt8KGroup + ki]);
        }
        acc[r][j] += s;
      }
    }
  }
}

#ifdef SESEMI_GEMM_X86
// AVX2: vpmaddubsw pairs u8 activations with s8 weights into 16-bit pair
// sums — safe from saturation because activations are u7 (127*127*2 < 2^15)
// — then vpmaddwd folds the pairs into exact 32-bit column dots.
template <int MR>
__attribute__((target("avx2"))) void Int8MicroKernelAvx2(
    const uint8_t* a, int lda, const int8_t* bp, int k4, int32_t acc[][kNr]) {
  __m256i vacc_lo[MR], vacc_hi[MR];
  for (int r = 0; r < MR; ++r) {
    vacc_lo[r] = _mm256_setzero_si256();
    vacc_hi[r] = _mm256_setzero_si256();
  }
  const __m256i ones = _mm256_set1_epi16(1);
  for (int g = 0; g < k4 / kInt8KGroup; ++g, bp += kNr * kInt8KGroup) {
    const __m256i b_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));  // cols 0-7
    const __m256i b_hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + 32));  // cols 8-15
    for (int r = 0; r < MR; ++r) {
      int32_t aword;
      std::memcpy(&aword, a + static_cast<size_t>(r) * lda + g * kInt8KGroup, 4);
      const __m256i av = _mm256_set1_epi32(aword);
      vacc_lo[r] = _mm256_add_epi32(
          vacc_lo[r], _mm256_madd_epi16(_mm256_maddubs_epi16(av, b_lo), ones));
      vacc_hi[r] = _mm256_add_epi32(
          vacc_hi[r], _mm256_madd_epi16(_mm256_maddubs_epi16(av, b_hi), ones));
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc[r]), vacc_lo[r]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc[r] + 8), vacc_hi[r]);
  }
}

// AVX-512 VNNI: vpdpbusd consumes one 64-byte k-group (4 k x 16 columns) per
// instruction — a full micro-tile row step in one uop.
template <int MR>
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
Int8MicroKernelVnni(const uint8_t* a, int lda, const int8_t* bp, int k4,
                    int32_t acc[][kNr]) {
  __m512i vacc[MR];
  for (int r = 0; r < MR; ++r) vacc[r] = _mm512_setzero_si512();
  for (int g = 0; g < k4 / kInt8KGroup; ++g, bp += kNr * kInt8KGroup) {
    const __m512i bv = _mm512_loadu_si512(reinterpret_cast<const void*>(bp));
    for (int r = 0; r < MR; ++r) {
      int32_t aword;
      std::memcpy(&aword, a + static_cast<size_t>(r) * lda + g * kInt8KGroup, 4);
      vacc[r] = _mm512_dpbusd_epi32(vacc[r], _mm512_set1_epi32(aword), bv);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm512_storeu_si512(reinterpret_cast<void*>(acc[r]), vacc[r]);
  }
}
#endif  // SESEMI_GEMM_X86

using Int8KernelFn = void (*)(const uint8_t*, int, const int8_t*, int,
                              int32_t (*)[kNr]);

Int8KernelFn Int8Kernel(GemmIsa isa, int mr) {
  static const Int8KernelFn portable[kMaxMr] = {
      Int8MicroKernelPortable<1>, Int8MicroKernelPortable<2>,
      Int8MicroKernelPortable<3>, Int8MicroKernelPortable<4>,
      Int8MicroKernelPortable<5>, Int8MicroKernelPortable<6>};
#ifdef SESEMI_GEMM_X86
  static const Int8KernelFn avx2[kMaxMr] = {
      Int8MicroKernelAvx2<1>, Int8MicroKernelAvx2<2>, Int8MicroKernelAvx2<3>,
      Int8MicroKernelAvx2<4>, Int8MicroKernelAvx2<5>, Int8MicroKernelAvx2<6>};
  static const Int8KernelFn vnni[kMaxMr] = {
      Int8MicroKernelVnni<1>, Int8MicroKernelVnni<2>, Int8MicroKernelVnni<3>,
      Int8MicroKernelVnni<4>, Int8MicroKernelVnni<5>, Int8MicroKernelVnni<6>};
  if (isa == GemmIsa::kAvx512Vnni) return vnni[mr - 1];
  if (isa == GemmIsa::kAvx2) return avx2[mr - 1];
#endif
  (void)isa;
  return portable[mr - 1];
}

GemmIsa ResolveGemmIsa(GemmIsa isa) {
  if (isa == GemmIsa::kAuto) return ActiveGemmIsa();
  if (!GemmIsaAvailable(isa)) return GemmIsa::kPortable;
  return isa;
}

// Rows [m0, m1) against every panel: the tier kernel fills an exact int32
// micro-tile, then `write_tile(acc, m, n0, mr, nr)` runs the (shared,
// scalar, fma-based) epilogue — one epilogue for every tier keeps the fp32
// outputs bit-identical across tiers.
template <typename WriteTile>
void GemmInt8Rows(const uint8_t* a, int lda, const int8_t* packed_b, int m0,
                  int m1, int n, int k4, GemmIsa isa, WriteTile&& write_tile) {
  for (int m = m0; m < m1; m += kMaxMr) {
    const int mr = std::min(kMaxMr, m1 - m);
    Int8KernelFn kernel = Int8Kernel(isa, mr);
    const uint8_t* arow = a + static_cast<size_t>(m) * lda;
    for (int n0 = 0; n0 < n; n0 += kNr) {
      const int nr = std::min(kNr, n - n0);
      int32_t acc[kMaxMr][kNr];
      kernel(arow, lda, packed_b + (n0 / kNr) * Int8PanelStride(k4), k4, acc);
      write_tile(acc, m, n0, mr, nr);
    }
  }
}

// Shared int8 GEMM driver with per-row activation params at `a_stride` (1 =
// per-row arrays, 0 = one tensor-wide param broadcast to every row).
template <typename WriteTile>
void GemmInt8Driver(const uint8_t* a, int lda, int m, int n, int k,
                    const int8_t* packed_b, GemmIsa isa,
                    WriteTile&& write_tile) {
  if (m <= 0 || n <= 0) return;
  const GemmIsa tier = ResolveGemmIsa(isa);
  const int k4 = RoundUpK4(k);
  const int64_t flops = static_cast<int64_t>(m) * n * k;
  if (m == 1 || flops < kParallelFlopThreshold) {
    GemmInt8Rows(a, lda, packed_b, 0, m, n, k4, tier, write_tile);
    return;
  }
  ParallelFor(0, m, kPanelRows, [&](int64_t r0, int64_t r1) {
    GemmInt8Rows(a, lda, packed_b, static_cast<int>(r0), static_cast<int>(r1),
                 n, k4, tier, write_tile);
  });
}

}  // namespace

const char* ToString(GemmIsa isa) {
  switch (isa) {
    case GemmIsa::kAuto: return "auto";
    case GemmIsa::kPortable: return "portable";
    case GemmIsa::kAvx2: return "avx2";
    case GemmIsa::kAvx512Vnni: return "avx512-vnni";
  }
  return "unknown";
}

bool GemmIsaAvailable(GemmIsa isa) {
  switch (isa) {
    case GemmIsa::kAuto:
    case GemmIsa::kPortable:
      return true;
    case GemmIsa::kAvx2:
      return HasAvx2Fma();
    case GemmIsa::kAvx512Vnni:
      return HasAvx512Vnni();
  }
  return false;
}

GemmIsa ActiveGemmIsa() {
  static const GemmIsa active = [] {
    const char* force = std::getenv("SESEMI_FORCE_PORTABLE");
    const bool forced = force != nullptr && force[0] != '\0' &&
                        !(force[0] == '0' && force[1] == '\0');
    if (forced) return GemmIsa::kPortable;
    if (HasAvx512Vnni()) return GemmIsa::kAvx512Vnni;
    if (HasAvx2Fma()) return GemmIsa::kAvx2;
    return GemmIsa::kPortable;
  }();
  return active;
}

size_t PackedBInt8Bytes(int k, int n) {
  const size_t panels = (static_cast<size_t>(n) + kNr - 1) / kNr;
  return panels * Int8PanelStride(RoundUpK4(k));
}

void PackBInt8(const int8_t* b, int k, int n, int8_t* packed) {
  const int k4 = RoundUpK4(k);
  std::memset(packed, 0, PackedBInt8Bytes(k, n));
  for (int n0 = 0; n0 < n; n0 += kNr) {
    const int nr = std::min(kNr, n - n0);
    int8_t* panel = packed + (n0 / kNr) * Int8PanelStride(k4);
    for (int kk = 0; kk < k; ++kk) {
      int8_t* group =
          panel + static_cast<size_t>(kk / kInt8KGroup) * kNr * kInt8KGroup +
          kk % kInt8KGroup;
      const int8_t* src = b + static_cast<size_t>(kk) * n + n0;
      for (int j = 0; j < nr; ++j) group[j * kInt8KGroup] = src[j];
    }
  }
}

void Int8ColumnSums(const int8_t* b, int k, int n, int32_t* colsums) {
  for (int j = 0; j < n; ++j) colsums[j] = 0;
  for (int kk = 0; kk < k; ++kk) {
    const int8_t* row = b + static_cast<size_t>(kk) * n;
    for (int j = 0; j < n; ++j) colsums[j] += row[j];
  }
}

ActQuant QuantizeActivations(const float* x, size_t count, uint8_t* out) {
  float lo = 0.0f, hi = 0.0f;
  for (size_t i = 0; i < count; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  // The range always includes zero so the zero-point lands in [0, 127] and
  // a true zero activation quantizes exactly (padding correctness depends on
  // it).
  const float range = hi - lo;
  ActQuant q;
  q.scale = range > 0.0f ? range / 127.0f : 1.0f;
  const float inv = range > 0.0f ? 127.0f / range : 0.0f;
  q.zero_point = std::min<int32_t>(
      127, std::max<int32_t>(0, static_cast<int32_t>(std::lrintf(-lo * inv))));
  for (size_t i = 0; i < count; ++i) {
    const long v = std::lrintf(x[i] * inv) + q.zero_point;
    out[i] = static_cast<uint8_t>(std::min<long>(127, std::max<long>(0, v)));
  }
  return q;
}

void GemmInt8Prepacked(const uint8_t* a, int lda, const float* a_scales,
                       const int32_t* a_zero_points, const int8_t* packed_b,
                       const float* w_scales, const int32_t* w_colsums,
                       const float* bias, float* c, int m, int n, int k,
                       GemmIsa isa) {
  GemmInt8Driver(
      a, lda, m, n, k, packed_b, isa,
      [&](int32_t acc[][kNr], int m_base, int n0, int mr, int nr) {
        for (int r = 0; r < mr; ++r) {
          const int row = m_base + r;
          const float a_s = a_scales[row];
          const int32_t a_zp = a_zero_points[row];
          float* crow = c + static_cast<size_t>(row) * n + n0;
          for (int j = 0; j < nr; ++j) {
            crow[j] = std::fma(
                static_cast<float>(acc[r][j] - a_zp * w_colsums[n0 + j]),
                a_s * w_scales[n0 + j], bias != nullptr ? bias[n0 + j] : 0.0f);
          }
        }
      });
}

void GemmInt8PrepackedRequant(const uint8_t* a, int lda, const float* a_scales,
                              const int32_t* a_zero_points,
                              const int8_t* packed_b, const float* w_scales,
                              const int32_t* w_colsums, const float* bias,
                              const ActQuant& out, int8_t* c, int m, int n,
                              int k, GemmIsa isa) {
  const float inv_out = 1.0f / out.scale;
  GemmInt8Driver(
      a, lda, m, n, k, packed_b, isa,
      [&](int32_t acc[][kNr], int m_base, int n0, int mr, int nr) {
        for (int r = 0; r < mr; ++r) {
          const int row = m_base + r;
          const float a_s = a_scales[row];
          const int32_t a_zp = a_zero_points[row];
          int8_t* crow = c + static_cast<size_t>(row) * n + n0;
          for (int j = 0; j < nr; ++j) {
            const float v = std::fma(
                static_cast<float>(acc[r][j] - a_zp * w_colsums[n0 + j]),
                a_s * w_scales[n0 + j], bias != nullptr ? bias[n0 + j] : 0.0f);
            const long q = std::lrintf(v * inv_out) + out.zero_point;
            crow[j] =
                static_cast<int8_t>(std::min<long>(127, std::max<long>(-128, q)));
          }
        }
      });
}

size_t Conv2dScratchBytesInt8(const TensorShape& in_shape, int kernel,
                              int stride) {
  const size_t k = static_cast<size_t>(kernel) * kernel * in_shape.c;
  if (kernel == 1 && stride == 1 && in_shape.c % kInt8KGroup == 0) {
    return 0;  // the quantized input is consumed in place
  }
  const size_t out_pixels = static_cast<size_t>(in_shape.h) * in_shape.w;
  // Same row-tile policy as the fp32 path (so the tiling stays in one place
  // mentally), but rows are padded to the k-group for the kernels.
  const size_t tile_rows =
      std::max<size_t>(1, std::min(out_pixels, kScratchBudgetFloats / k));
  return tile_rows * static_cast<size_t>(RoundUpK4(static_cast<int>(k)));
}

void Im2ColRowsU8(const uint8_t* in, const TensorShape& in_shape, int kernel,
                  int stride, int out_w, int m0, int m1, uint8_t pad_value,
                  uint8_t* patch) {
  const int pad = (kernel - 1) / 2;
  const int in_c = in_shape.c;
  const size_t row_bytes = static_cast<size_t>(kernel) * in_c;
  const int k = kernel * kernel * in_c;
  const int k4 = RoundUpK4(k);
  for (int m = m0; m < m1; ++m) {
    const int oy = m / out_w;
    const int ox = m % out_w;
    const int iy0 = oy * stride - pad;
    const int ix0 = ox * stride - pad;
    uint8_t* row = patch + static_cast<size_t>(m - m0) * k4;
    uint8_t* dst = row;
    for (int ky = 0; ky < kernel; ++ky, dst += row_bytes) {
      const int iy = iy0 + ky;
      if (iy < 0 || iy >= in_shape.h) {
        std::memset(dst, pad_value, row_bytes);
        continue;
      }
      if (ix0 >= 0 && ix0 + kernel <= in_shape.w) {
        std::memcpy(dst, in + (static_cast<size_t>(iy) * in_shape.w + ix0) * in_c,
                    row_bytes);
        continue;
      }
      for (int kx = 0; kx < kernel; ++kx) {
        const int ix = ix0 + kx;
        uint8_t* cell = dst + static_cast<size_t>(kx) * in_c;
        if (ix < 0 || ix >= in_shape.w) {
          std::memset(cell, pad_value, in_c);
        } else {
          std::memcpy(cell, in + (static_cast<size_t>(iy) * in_shape.w + ix) * in_c,
                      in_c);
        }
      }
    }
    if (k4 > k) std::memset(row + k, pad_value, k4 - k);
  }
}

void Conv2dGemmInt8Prepacked(const uint8_t* in_q, const ActQuant& in_quant,
                             const TensorShape& in_shape,
                             const int8_t* packed_w, const float* w_scales,
                             const int32_t* w_colsums, const float* bias,
                             int kernel, int stride, int out_c, float* out,
                             uint8_t* scratch, GemmIsa isa) {
  const int out_h = (in_shape.h + stride - 1) / stride;
  const int out_w = (in_shape.w + stride - 1) / stride;
  const int m = out_h * out_w;
  const int k = kernel * kernel * in_shape.c;
  // One ActQuant covers the whole tensor: broadcast it to every GEMM row.
  const float a_scale = in_quant.scale;
  const int32_t a_zp = in_quant.zero_point;
  auto gemm_step = [&](const uint8_t* a, int lda, float* c, int rows, int n) {
    GemmInt8Driver(
        a, lda, rows, n, k, packed_w, isa,
        [&](int32_t acc[][kNr], int m_base, int n0, int mr, int nr) {
          for (int r = 0; r < mr; ++r) {
            float* crow = c + static_cast<size_t>(m_base + r) * n + n0;
            for (int j = 0; j < nr; ++j) {
              crow[j] = std::fma(
                  static_cast<float>(acc[r][j] - a_zp * w_colsums[n0 + j]),
                  a_scale * w_scales[n0 + j],
                  bias != nullptr ? bias[n0 + j] : 0.0f);
            }
          }
        });
  };

  if (kernel == 1 && stride == 1 && in_shape.c % kInt8KGroup == 0) {
    // 1x1 stride-1 with k-group-aligned channels: the quantized input rows
    // already have the packed stride, no im2col copy needed.
    gemm_step(in_q, in_shape.c, out, m, out_c);
    return;
  }

  const int k4 = RoundUpK4(k);
  const size_t out_pixels = static_cast<size_t>(in_shape.h) * in_shape.w;
  const int tile_rows = static_cast<int>(std::max<size_t>(
      1, std::min(out_pixels, kScratchBudgetFloats / static_cast<size_t>(k))));
  for (int m0 = 0; m0 < m; m0 += tile_rows) {
    const int m1 = std::min(m, m0 + tile_rows);
    Im2ColRowsU8(in_q, in_shape, kernel, stride, out_w, m0, m1,
                 static_cast<uint8_t>(a_zp), scratch);
    gemm_step(scratch, k4, out + static_cast<size_t>(m0) * out_c, m1 - m0,
              out_c);
  }
}

}  // namespace sesemi::inference::gemm
