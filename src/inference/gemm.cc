#include "inference/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/parallel_for.h"

// The SIMD micro-kernels are x86-only (AVX2+FMA, selected at runtime); other
// architectures build the portable register-blocked kernels alone.
#if defined(__x86_64__) || defined(__i386__)
#define SESEMI_GEMM_X86 1
#include <immintrin.h>
#endif

namespace sesemi::inference::gemm {

namespace {

// Register-blocked micro-tile: MR rows of A against a 16-wide panel of B.
// 16 columns = two SIMD accumulator registers per row on AVX2; MR = 6 keeps
// 12 accumulators + 2 B registers + 1 broadcast inside the 16 ymm registers.
constexpr int kMaxMr = 6;
constexpr int kNr = 16;

// Scratch budget for one im2col row tile: 64K floats = 256 KiB, sized to sit
// in L2 next to the weight panel it multiplies against.
constexpr size_t kScratchBudgetFloats = 64 * 1024;

// Row-panel grain for the thread pool: multiples of the micro-tile height so
// chunk edges never split a micro-tile.
constexpr int64_t kPanelRows = 24;

// Problems smaller than this many multiply-adds run serially; pool dispatch
// costs about a microsecond and would dominate.
constexpr int64_t kParallelFlopThreshold = 1 << 16;

#ifdef SESEMI_GEMM_X86
template <int MR>
__attribute__((target("avx2,fma"))) void MicroKernelAvx2(
    const float* a, int lda, const float* b, int n, const float* bias, float* c,
    int k, int n0) {
  __m256 acc_lo[MR], acc_hi[MR];
  const __m256 seed_lo = bias != nullptr ? _mm256_loadu_ps(bias + n0) : _mm256_setzero_ps();
  const __m256 seed_hi = bias != nullptr ? _mm256_loadu_ps(bias + n0 + 8) : _mm256_setzero_ps();
  for (int r = 0; r < MR; ++r) {
    acc_lo[r] = seed_lo;
    acc_hi[r] = seed_hi;
  }
  const float* brow = b + n0;
  for (int kk = 0; kk < k; ++kk, brow += n) {
    const __m256 b_lo = _mm256_loadu_ps(brow);
    const __m256 b_hi = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(a[static_cast<size_t>(r) * lda + kk]);
      acc_lo[r] = _mm256_fmadd_ps(av, b_lo, acc_lo[r]);
      acc_hi[r] = _mm256_fmadd_ps(av, b_hi, acc_hi[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0, acc_lo[r]);
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0 + 8, acc_hi[r]);
  }
}
#endif  // SESEMI_GEMM_X86

template <int MR>
void MicroKernelPortable(const float* a, int lda, const float* b, int n,
                         const float* bias, float* c, int k, int n0) {
  float acc[MR][kNr];
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = bias != nullptr ? bias[n0 + j] : 0.0f;
  }
  const float* brow = b + n0;
  for (int kk = 0; kk < k; ++kk, brow += n) {
    for (int r = 0; r < MR; ++r) {
      const float av = a[static_cast<size_t>(r) * lda + kk];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc[r], kNr * sizeof(float));
  }
}

// Ragged right/bottom edge: per-row accumulator strip of nr (< 16) columns.
void EdgeKernel(const float* a, int lda, const float* b, int n, const float* bias,
                float* c, int k, int n0, int mr, int nr) {
  for (int r = 0; r < mr; ++r) {
    float acc[kNr];
    for (int j = 0; j < nr; ++j) acc[j] = bias != nullptr ? bias[n0 + j] : 0.0f;
    const float* arow = a + static_cast<size_t>(r) * lda;
    const float* brow = b + n0;
    for (int kk = 0; kk < k; ++kk, brow += n) {
      const float av = arow[kk];
      for (int j = 0; j < nr; ++j) acc[j] += av * brow[j];
    }
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc, nr * sizeof(float));
  }
}

bool HasAvx2Fma() {
#ifdef SESEMI_GEMM_X86
  static const bool has = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
#else
  return false;
#endif
}

static_assert(kNr == kPackPanelWidth,
              "packed panels and the micro-kernel N blocking must agree");

// Stride between consecutive column panels in the PackB layout.
inline size_t PanelStride(int k) { return static_cast<size_t>(k) * kNr; }

#ifdef SESEMI_GEMM_X86
// Packed-B micro-tile: same accumulator shape as MicroKernelAvx2, but the
// panel's k rows are contiguous (brow += 16), so B streams forward through
// one cache line per step instead of striding N floats between rows.
template <int MR>
__attribute__((target("avx2,fma"))) void MicroKernelPackedAvx2(
    const float* a, int lda, const float* bp, int n, const float* bias,
    float* c, int k, int n0) {
  __m256 acc_lo[MR], acc_hi[MR];
  const __m256 seed_lo = bias != nullptr ? _mm256_loadu_ps(bias + n0) : _mm256_setzero_ps();
  const __m256 seed_hi = bias != nullptr ? _mm256_loadu_ps(bias + n0 + 8) : _mm256_setzero_ps();
  for (int r = 0; r < MR; ++r) {
    acc_lo[r] = seed_lo;
    acc_hi[r] = seed_hi;
  }
  for (int kk = 0; kk < k; ++kk, bp += kNr) {
    const __m256 b_lo = _mm256_loadu_ps(bp);
    const __m256 b_hi = _mm256_loadu_ps(bp + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(a[static_cast<size_t>(r) * lda + kk]);
      acc_lo[r] = _mm256_fmadd_ps(av, b_lo, acc_lo[r]);
      acc_hi[r] = _mm256_fmadd_ps(av, b_hi, acc_hi[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0, acc_lo[r]);
    _mm256_storeu_ps(c + static_cast<size_t>(r) * n + n0 + 8, acc_hi[r]);
  }
}
#endif  // SESEMI_GEMM_X86

template <int MR>
void MicroKernelPackedPortable(const float* a, int lda, const float* bp, int n,
                               const float* bias, float* c, int k, int n0) {
  float acc[MR][kNr];
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = bias != nullptr ? bias[n0 + j] : 0.0f;
  }
  for (int kk = 0; kk < k; ++kk, bp += kNr) {
    for (int r = 0; r < MR; ++r) {
      const float av = a[static_cast<size_t>(r) * lda + kk];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * bp[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc[r], kNr * sizeof(float));
  }
}

// Ragged right edge of the packed layout: the last panel is zero-padded to 16
// columns, but C (and bias) only have nr valid ones, so accumulate scalar
// strips over the panel rows.
void PackedEdgeKernel(const float* a, int lda, const float* bp, int n,
                      const float* bias, float* c, int k, int n0, int mr, int nr) {
  for (int r = 0; r < mr; ++r) {
    float acc[kNr];
    for (int j = 0; j < nr; ++j) acc[j] = bias != nullptr ? bias[n0 + j] : 0.0f;
    const float* arow = a + static_cast<size_t>(r) * lda;
    const float* brow = bp;
    for (int kk = 0; kk < k; ++kk, brow += kNr) {
      const float av = arow[kk];
      for (int j = 0; j < nr; ++j) acc[j] += av * brow[j];
    }
    std::memcpy(c + static_cast<size_t>(r) * n + n0, acc, nr * sizeof(float));
  }
}

#ifdef SESEMI_GEMM_X86
// M == 1 over packed B: per panel, two accumulator registers live across the
// whole k loop while the panel streams forward — every weight is touched
// exactly once, contiguously, with no store traffic until the panel is done
// (the unpacked GEMV re-reads and re-writes C once per k step).
__attribute__((target("avx2,fma"))) void GemvPackedAvx2(
    const float* a, const float* packed, const float* bias, float* c, int n,
    int k) {
  const int n_full = n - n % kNr;
  for (int n0 = 0; n0 < n_full; n0 += kNr) {
    const float* bp = packed + (n0 / kNr) * PanelStride(k);
    __m256 acc_lo = bias != nullptr ? _mm256_loadu_ps(bias + n0) : _mm256_setzero_ps();
    __m256 acc_hi = bias != nullptr ? _mm256_loadu_ps(bias + n0 + 8) : _mm256_setzero_ps();
    for (int kk = 0; kk < k; ++kk, bp += kNr) {
      const __m256 av = _mm256_set1_ps(a[kk]);
      acc_lo = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), acc_lo);
      acc_hi = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp + 8), acc_hi);
    }
    _mm256_storeu_ps(c + n0, acc_lo);
    _mm256_storeu_ps(c + n0 + 8, acc_hi);
  }
  if (n_full < n) {
    PackedEdgeKernel(a, k, packed + (n_full / kNr) * PanelStride(k), n, bias, c,
                     k, n_full, 1, n - n_full);
  }
}
#endif  // SESEMI_GEMM_X86

void GemvPackedPortable(const float* a, const float* packed, const float* bias,
                        float* c, int n, int k) {
  const int n_full = n - n % kNr;
  for (int n0 = 0; n0 < n_full; n0 += kNr) {
    const float* bp = packed + (n0 / kNr) * PanelStride(k);
    float acc[kNr];
    for (int j = 0; j < kNr; ++j) acc[j] = bias != nullptr ? bias[n0 + j] : 0.0f;
    for (int kk = 0; kk < k; ++kk, bp += kNr) {
      const float av = a[kk];
      for (int j = 0; j < kNr; ++j) acc[j] += av * bp[j];
    }
    std::memcpy(c + n0, acc, kNr * sizeof(float));
  }
  if (n_full < n) {
    PackedEdgeKernel(a, k, packed + (n_full / kNr) * PanelStride(k), n, bias, c,
                     k, n_full, 1, n - n_full);
  }
}

#ifdef SESEMI_GEMM_X86
// M == 1 (Dense): the micro-tile column panels would stride through B once
// per 16 columns; a row-streaming GEMV touches every weight exactly once in
// prefetcher-friendly order instead.
__attribute__((target("avx2,fma"))) void GemvAvx2(const float* a, const float* b,
                                                  const float* bias, float* c,
                                                  int n, int k) {
  if (bias != nullptr) {
    std::memcpy(c, bias, static_cast<size_t>(n) * sizeof(float));
  } else {
    std::memset(c, 0, static_cast<size_t>(n) * sizeof(float));
  }
  const int n8 = n - n % 8;
  const float* brow = b;
  for (int kk = 0; kk < k; ++kk, brow += n) {
    const __m256 av = _mm256_set1_ps(a[kk]);
    for (int j = 0; j < n8; j += 8) {
      _mm256_storeu_ps(c + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j),
                                              _mm256_loadu_ps(c + j)));
    }
    for (int j = n8; j < n; ++j) c[j] += a[kk] * brow[j];
  }
}
#endif  // SESEMI_GEMM_X86

void GemvPortable(const float* a, const float* b, const float* bias, float* c,
                  int n, int k) {
  for (int j = 0; j < n; ++j) c[j] = bias != nullptr ? bias[j] : 0.0f;
  const float* brow = b;
  for (int kk = 0; kk < k; ++kk, brow += n) {
    const float av = a[kk];
    for (int j = 0; j < n; ++j) c[j] += av * brow[j];
  }
}

using KernelFn = void (*)(const float*, int, const float*, int, const float*,
                          float*, int, int);

KernelFn FullTileKernel(int mr) {
  static const KernelFn portable[kMaxMr] = {
      MicroKernelPortable<1>, MicroKernelPortable<2>, MicroKernelPortable<3>,
      MicroKernelPortable<4>, MicroKernelPortable<5>, MicroKernelPortable<6>};
#ifdef SESEMI_GEMM_X86
  static const KernelFn avx2[kMaxMr] = {
      MicroKernelAvx2<1>, MicroKernelAvx2<2>, MicroKernelAvx2<3>,
      MicroKernelAvx2<4>, MicroKernelAvx2<5>, MicroKernelAvx2<6>};
  if (HasAvx2Fma()) return avx2[mr - 1];
#endif
  return portable[mr - 1];
}

KernelFn FullTilePackedKernel(int mr) {
  static const KernelFn portable[kMaxMr] = {
      MicroKernelPackedPortable<1>, MicroKernelPackedPortable<2>,
      MicroKernelPackedPortable<3>, MicroKernelPackedPortable<4>,
      MicroKernelPackedPortable<5>, MicroKernelPackedPortable<6>};
#ifdef SESEMI_GEMM_X86
  static const KernelFn avx2[kMaxMr] = {
      MicroKernelPackedAvx2<1>, MicroKernelPackedAvx2<2>,
      MicroKernelPackedAvx2<3>, MicroKernelPackedAvx2<4>,
      MicroKernelPackedAvx2<5>, MicroKernelPackedAvx2<6>};
  if (HasAvx2Fma()) return avx2[mr - 1];
#endif
  return portable[mr - 1];
}

// All rows [m0, m1) of C against the packed panels.
void GemmPrepackedRows(const float* a, const float* packed, const float* bias,
                       float* c, int m0, int m1, int n, int k) {
  const int n_full = n - n % kNr;
  for (int m = m0; m < m1; m += kMaxMr) {
    const int mr = std::min(kMaxMr, m1 - m);
    const float* arow = a + static_cast<size_t>(m) * k;
    float* crow = c + static_cast<size_t>(m) * n;
    KernelFn kernel = FullTilePackedKernel(mr);
    for (int n0 = 0; n0 < n_full; n0 += kNr) {
      kernel(arow, k, packed + (n0 / kNr) * PanelStride(k), n, bias, crow, k, n0);
    }
    if (n_full < n) {
      PackedEdgeKernel(arow, k, packed + (n_full / kNr) * PanelStride(k), n,
                       bias, crow, k, n_full, mr, n - n_full);
    }
  }
}

// All rows [m0, m1) of C for every column panel.
void GemmRows(const float* a, const float* b, const float* bias, float* c, int m0,
              int m1, int n, int k) {
  const int n_full = n - n % kNr;
  for (int m = m0; m < m1; m += kMaxMr) {
    const int mr = std::min(kMaxMr, m1 - m);
    const float* arow = a + static_cast<size_t>(m) * k;
    float* crow = c + static_cast<size_t>(m) * n;
    KernelFn kernel = FullTileKernel(mr);
    for (int n0 = 0; n0 < n_full; n0 += kNr) {
      kernel(arow, k, b, n, bias, crow, k, n0);
    }
    if (n_full < n) {
      EdgeKernel(arow, k, b, n, bias, crow, k, n_full, mr, n - n_full);
    }
  }
}

#ifdef SESEMI_GEMM_X86
// Depthwise row panel, AVX2: per output pixel, channel strips of 8 keep the
// accumulator in a register across every (ky,kx) tap — each tap is then a
// single fused multiply-add over the contiguous HWC channel run.
__attribute__((target("avx2,fma"))) void DepthwiseRowsAvx2(
    const float* in, const TensorShape& in_shape, const float* w,
    const float* bias, int kernel, int stride, int out_w, int oy0, int oy1,
    float* out) {
  const int pad = (kernel - 1) / 2;
  const int c = in_shape.c;
  const int c8 = c - c % 8;
  for (int oy = oy0; oy < oy1; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      float* out_px = out + (static_cast<size_t>(oy) * out_w + ox) * c;
      const int iy0 = oy * stride - pad;
      const int ix0 = ox * stride - pad;
      int ch = 0;
      for (; ch < c8; ch += 8) {
        __m256 acc = _mm256_loadu_ps(bias + ch);
        for (int ky = 0; ky < kernel; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= in_shape.h) continue;
          for (int kx = 0; kx < kernel; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= in_shape.w) continue;
            const float* in_px =
                in + (static_cast<size_t>(iy) * in_shape.w + ix) * c + ch;
            const float* w_px =
                w + (static_cast<size_t>(ky) * kernel + kx) * c + ch;
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(in_px), _mm256_loadu_ps(w_px),
                                  acc);
          }
        }
        _mm256_storeu_ps(out_px + ch, acc);
      }
      for (; ch < c; ++ch) {
        float acc = bias[ch];
        for (int ky = 0; ky < kernel; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= in_shape.h) continue;
          for (int kx = 0; kx < kernel; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= in_shape.w) continue;
            acc += in[(static_cast<size_t>(iy) * in_shape.w + ix) * c + ch] *
                   w[(static_cast<size_t>(ky) * kernel + kx) * c + ch];
          }
        }
        out_px[ch] = acc;
      }
    }
  }
}
#endif  // SESEMI_GEMM_X86

// Portable depthwise row panel: same tap order, plain channel loop the
// compiler auto-vectorizes at -O3.
void DepthwiseRowsPortable(const float* in, const TensorShape& in_shape,
                           const float* w, const float* bias, int kernel,
                           int stride, int out_w, int oy0, int oy1, float* out) {
  const int pad = (kernel - 1) / 2;
  const int c = in_shape.c;
  for (int oy = oy0; oy < oy1; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      float* out_px = out + (static_cast<size_t>(oy) * out_w + ox) * c;
      for (int ch = 0; ch < c; ++ch) out_px[ch] = bias[ch];
      for (int ky = 0; ky < kernel; ++ky) {
        const int iy = oy * stride + ky - pad;
        if (iy < 0 || iy >= in_shape.h) continue;
        for (int kx = 0; kx < kernel; ++kx) {
          const int ix = ox * stride + kx - pad;
          if (ix < 0 || ix >= in_shape.w) continue;
          const float* in_px =
              in + (static_cast<size_t>(iy) * in_shape.w + ix) * c;
          const float* w_px = w + (static_cast<size_t>(ky) * kernel + kx) * c;
          for (int ch = 0; ch < c; ++ch) out_px[ch] += in_px[ch] * w_px[ch];
        }
      }
    }
  }
}

}  // namespace

void DepthwiseConv2d(const float* in, const TensorShape& in_shape,
                     const float* weights, int kernel, int stride, float* out) {
  const int out_h = (in_shape.h + stride - 1) / stride;
  const int out_w = (in_shape.w + stride - 1) / stride;
  const int c = in_shape.c;
  const float* bias = weights + static_cast<size_t>(kernel) * kernel * c;

  auto rows = [&](int64_t y0, int64_t y1) {
#ifdef SESEMI_GEMM_X86
    if (HasAvx2Fma()) {
      DepthwiseRowsAvx2(in, in_shape, weights, bias, kernel, stride, out_w,
                        static_cast<int>(y0), static_cast<int>(y1), out);
      return;
    }
#endif
    DepthwiseRowsPortable(in, in_shape, weights, bias, kernel, stride, out_w,
                          static_cast<int>(y0), static_cast<int>(y1), out);
  };

  const int64_t flops_per_row =
      static_cast<int64_t>(out_w) * kernel * kernel * c;
  if (static_cast<int64_t>(out_h) * flops_per_row < kParallelFlopThreshold) {
    rows(0, out_h);
    return;
  }
  const int64_t grain =
      std::max<int64_t>(1, kParallelFlopThreshold / std::max<int64_t>(1, flops_per_row));
  ParallelFor(0, out_h, grain, rows);
}

void Gemm(const float* a, const float* b, const float* bias, float* c, int m,
          int n, int k) {
  if (m <= 0 || n <= 0) return;
  if (m == 1) {
#ifdef SESEMI_GEMM_X86
    if (HasAvx2Fma()) {
      GemvAvx2(a, b, bias, c, n, k);
      return;
    }
#endif
    GemvPortable(a, b, bias, c, n, k);
    return;
  }
  const int64_t flops = static_cast<int64_t>(m) * n * k;
  if (flops < kParallelFlopThreshold) {
    GemmRows(a, b, bias, c, 0, m, n, k);
    return;
  }
  ParallelFor(0, m, kPanelRows, [&](int64_t r0, int64_t r1) {
    GemmRows(a, b, bias, c, static_cast<int>(r0), static_cast<int>(r1), n, k);
  });
}

size_t PackedBElements(int k, int n) {
  const size_t panels = (static_cast<size_t>(n) + kNr - 1) / kNr;
  return panels * PanelStride(k);
}

void PackB(const float* b, int k, int n, float* packed) {
  for (int n0 = 0; n0 < n; n0 += kNr) {
    const int nr = std::min(kNr, n - n0);
    float* dst = packed + (n0 / kNr) * PanelStride(k);
    const float* src = b + n0;
    for (int kk = 0; kk < k; ++kk, dst += kNr, src += n) {
      std::memcpy(dst, src, static_cast<size_t>(nr) * sizeof(float));
      if (nr < kNr) {
        std::memset(dst + nr, 0, static_cast<size_t>(kNr - nr) * sizeof(float));
      }
    }
  }
}

void GemmPrepacked(const float* a, const float* packed_b, const float* bias,
                   float* c, int m, int n, int k) {
  if (m <= 0 || n <= 0) return;
  if (m == 1) {
#ifdef SESEMI_GEMM_X86
    if (HasAvx2Fma()) {
      GemvPackedAvx2(a, packed_b, bias, c, n, k);
      return;
    }
#endif
    GemvPackedPortable(a, packed_b, bias, c, n, k);
    return;
  }
  const int64_t flops = static_cast<int64_t>(m) * n * k;
  if (flops < kParallelFlopThreshold) {
    GemmPrepackedRows(a, packed_b, bias, c, 0, m, n, k);
    return;
  }
  ParallelFor(0, m, kPanelRows, [&](int64_t r0, int64_t r1) {
    GemmPrepackedRows(a, packed_b, bias, c, static_cast<int>(r0),
                      static_cast<int>(r1), n, k);
  });
}

void Im2ColRows(const float* in, const TensorShape& in_shape, int kernel,
                int stride, int out_w, int m0, int m1, float* patch) {
  const int pad = (kernel - 1) / 2;
  const int in_c = in_shape.c;
  const size_t row_floats = static_cast<size_t>(kernel) * in_c;
  for (int m = m0; m < m1; ++m) {
    const int oy = m / out_w;
    const int ox = m % out_w;
    const int iy0 = oy * stride - pad;
    const int ix0 = ox * stride - pad;
    float* dst = patch + static_cast<size_t>(m - m0) * kernel * row_floats;
    for (int ky = 0; ky < kernel; ++ky, dst += row_floats) {
      const int iy = iy0 + ky;
      if (iy < 0 || iy >= in_shape.h) {
        std::memset(dst, 0, row_floats * sizeof(float));
        continue;
      }
      if (ix0 >= 0 && ix0 + kernel <= in_shape.w) {
        // Interior: the whole kx window is one contiguous HWC run.
        std::memcpy(dst,
                    in + (static_cast<size_t>(iy) * in_shape.w + ix0) * in_c,
                    row_floats * sizeof(float));
        continue;
      }
      for (int kx = 0; kx < kernel; ++kx) {
        const int ix = ix0 + kx;
        float* cell = dst + static_cast<size_t>(kx) * in_c;
        if (ix < 0 || ix >= in_shape.w) {
          std::memset(cell, 0, in_c * sizeof(float));
        } else {
          std::memcpy(cell,
                      in + (static_cast<size_t>(iy) * in_shape.w + ix) * in_c,
                      in_c * sizeof(float));
        }
      }
    }
  }
}

size_t Conv2dScratchElements(const TensorShape& in_shape, int kernel, int stride) {
  if (kernel == 1 && stride == 1) {
    return 0;  // 1x1 stride-1 convolutions multiply the input in place
  }
  const size_t k = static_cast<size_t>(kernel) * kernel * in_shape.c;
  const size_t out_pixels = static_cast<size_t>(in_shape.h) * in_shape.w;
  const size_t tile_rows = std::max<size_t>(1, std::min(out_pixels, kScratchBudgetFloats / k));
  return tile_rows * k;
}

namespace {

// Shared conv driver: 1x1 stride-1 fast path plus the im2col row-tile loop,
// with the GEMM step (unpacked or prepacked B) supplied by the caller as
// gemm_step(a, c, m, n, k) — one copy of the tiling/scratch policy to keep
// in sync with Conv2dScratchElements.
template <typename GemmStep>
void Conv2dGemmTiled(const float* in, const TensorShape& in_shape, int kernel,
                     int stride, int out_c, float* out, float* scratch,
                     GemmStep&& gemm_step) {
  const int out_h = (in_shape.h + stride - 1) / stride;
  const int out_w = (in_shape.w + stride - 1) / stride;
  const int m = out_h * out_w;
  const int k = kernel * kernel * in_shape.c;

  if (kernel == 1 && stride == 1) {
    // A 1x1 stride-1 convolution is exactly C = in (M x c) * W (c x out_c).
    gemm_step(in, out, m, out_c, in_shape.c);
    return;
  }

  const int tile_rows =
      static_cast<int>(Conv2dScratchElements(in_shape, kernel, stride) /
                       static_cast<size_t>(k));
  for (int m0 = 0; m0 < m; m0 += tile_rows) {
    const int m1 = std::min(m, m0 + tile_rows);
    Im2ColRows(in, in_shape, kernel, stride, out_w, m0, m1, scratch);
    gemm_step(scratch, out + static_cast<size_t>(m0) * out_c, m1 - m0, out_c, k);
  }
}

}  // namespace

void Conv2dGemm(const float* in, const TensorShape& in_shape,
                const float* weights, int kernel, int stride, int out_c,
                float* out, float* scratch) {
  const float* bias =
      weights + static_cast<size_t>(kernel) * kernel * in_shape.c * out_c;
  Conv2dGemmTiled(in, in_shape, kernel, stride, out_c, out, scratch,
                  [&](const float* a, float* c, int m, int n, int k) {
                    Gemm(a, weights, bias, c, m, n, k);
                  });
}

void Conv2dGemmPrepacked(const float* in, const TensorShape& in_shape,
                         const float* packed_weights, const float* bias,
                         int kernel, int stride, int out_c, float* out,
                         float* scratch) {
  Conv2dGemmTiled(in, in_shape, kernel, stride, out_c, out, scratch,
                  [&](const float* a, float* c, int m, int n, int k) {
                    GemmPrepacked(a, packed_weights, bias, c, m, n, k);
                  });
}

}  // namespace sesemi::inference::gemm
