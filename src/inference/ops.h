#ifndef SESEMI_INFERENCE_OPS_H_
#define SESEMI_INFERENCE_OPS_H_

#include <cstddef>

#include "model/graph.h"

namespace sesemi::inference::ops {

using model::TensorShape;

/// Same-padding 2D convolution, HWC layout, routed through the im2col +
/// blocked-GEMM fast path (src/inference/gemm.h).
/// Weight layout: w[ky][kx][in_c][out_c], followed by out_c biases.
void Conv2d(const float* in, const TensorShape& in_shape, const float* weights,
            int kernel, int stride, int out_c, float* out);

/// Allocation-free variant for executor use: `scratch` must hold at least
/// Conv2dScratchElements(in_shape, kernel, stride) floats (the plan's arena
/// reserves this). The plain overload above allocates its own scratch.
void Conv2d(const float* in, const TensorShape& in_shape, const float* weights,
            int kernel, int stride, int out_c, float* out, float* scratch);

/// Scratch floats the fast-path Conv2d needs for this layer shape.
size_t Conv2dScratchElements(const TensorShape& in_shape, int kernel, int stride);

/// Reference scalar convolution (the seed kernel). Kept as the parity and
/// benchmark baseline for the GEMM path; not used by the executor.
void Conv2dNaive(const float* in, const TensorShape& in_shape,
                 const float* weights, int kernel, int stride, int out_c,
                 float* out);

/// Same-padding depthwise convolution (channel multiplier 1), routed through
/// the fast path (src/inference/gemm.h): channel-vectorized taps, output row
/// panels spread over the process fork-join pool.
/// Weight layout: w[ky][kx][c], followed by c biases.
void DepthwiseConv2d(const float* in, const TensorShape& in_shape,
                     const float* weights, int kernel, int stride, float* out);

/// Reference scalar depthwise kernel (the seed kernel). Parity/benchmark
/// baseline for the fast path; not used by the executor.
void DepthwiseConv2dNaive(const float* in, const TensorShape& in_shape,
                          const float* weights, int kernel, int stride,
                          float* out);

/// Fully connected: out[u] = sum_i in[i] * w[i][u] + b[u], computed as a
/// 1 x units GEMM against the w[in][units] weight matrix.
/// Weight layout: w[in][units], followed by units biases.
void Dense(const float* in, size_t in_features, const float* weights, int units,
           float* out);

/// Reference scalar fully-connected kernel (the seed kernel, including its
/// skip-zero-input sparsity shortcut). Parity/benchmark baseline only.
void DenseNaive(const float* in, size_t in_features, const float* weights,
                int units, float* out);

void Relu(const float* in, size_t n, float* out);

/// 2x2 max pool, stride 2, ceil semantics at odd edges.
void MaxPool2x2(const float* in, const TensorShape& in_shape, float* out);

/// HxWxC -> 1x1xC mean.
void GlobalAvgPool(const float* in, const TensorShape& in_shape, float* out);

void Add(const float* a, const float* b, size_t n, float* out);

/// Channel-wise concat of two same-HxW tensors.
void ConcatChannels(const float* a, const TensorShape& a_shape, const float* b,
                    const TensorShape& b_shape, float* out);

/// Numerically stable softmax.
void Softmax(const float* in, size_t n, float* out);

}  // namespace sesemi::inference::ops

#endif  // SESEMI_INFERENCE_OPS_H_
