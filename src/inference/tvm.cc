// µTVM: the Apache-TVM-flavoured framework.
//
// Characteristics mirrored from the real system (paper Table I, §VI-A):
//  - MODEL_LOAD compiles the model once: every Dense/Conv weight matrix is
//    re-laid into the 16-wide B panels the GEMM micro-kernels consume
//    (compiled-executor semantics — the real TVM emits per-operator packed
//    layouts ahead of time). The packed artifact is resident next to the
//    model, so the loaded model exceeds the model size (λ > 1) and load cost
//    scales with the model;
//  - RUNTIME_INIT is just the activation arena: runtimes share the immutable
//    compiled artifact, which is what makes TVM's hot path fast and lets N
//    TCS slots serve one model without N weight copies.

#include <cstring>
#include <memory>

#include "inference/compiled_model.h"
#include "inference/framework.h"
#include "model/format.h"

namespace sesemi::inference {
namespace {

class TvmLoadedModel final : public LoadedModel {
 public:
  explicit TvmLoadedModel(CompiledModel compiled)
      : compiled_(std::move(compiled)) {}

  const model::ModelGraph& graph() const override { return compiled_.graph(); }
  uint64_t memory_bytes() const override {
    // The compiled artifact: weights + the pre-packed B panels built at
    // MODEL_LOAD, plus per-layer plan metadata. Enclave heap accounting (and
    // through it the platform's node reservation) charges this figure.
    return graph().WeightBytes() + compiled_.packed_weight_bytes() +
           graph().layers.size() * 128;
  }
  const CompiledModel& compiled() const { return compiled_; }

 private:
  CompiledModel compiled_;
};

class TvmRuntime final : public ModelRuntime {
 public:
  explicit TvmRuntime(std::shared_ptr<const TvmLoadedModel> loaded)
      : loaded_(std::move(loaded)),
        arena_(loaded_->compiled().arena_elements(), 0.0f) {}

  const std::string& model_id() const override {
    return loaded_->graph().model_id;
  }

  uint64_t buffer_bytes() const override {
    // Per-TCS state is only the activation arena; the packed weights are the
    // loaded model's (shared, counted once in memory_bytes()).
    return arena_.size() * sizeof(float);
  }

  Result<Bytes> Execute(ByteSpan input) override {
    return loaded_->compiled().Execute(input, arena_.data());
  }

  Result<std::vector<Bytes>> ExecuteBatch(
      const std::vector<ByteSpan>& inputs) override {
    if (inputs.size() <= 1) return ModelRuntime::ExecuteBatch(inputs);
    // Grow-only uninitialized batch arena, cached across batches. Safe: the
    // runtime is exclusive to one TCS slot, and every arena slot is written
    // before it is read (kInput copies, each layer fills its output, im2col
    // zero-fills its padding taps).
    const uint64_t need = loaded_->compiled().batch_arena_elements(
        static_cast<int>(inputs.size()));
    if (batch_arena_capacity_ < need) {
      batch_arena_ = std::unique_ptr<float[]>(new float[need]);
      batch_arena_capacity_ = need;
    }
    std::vector<Bytes> outputs;
    SESEMI_RETURN_IF_ERROR(loaded_->compiled().ExecuteBatch(
        inputs, batch_arena_.get(), &outputs));
    return outputs;
  }

 private:
  std::shared_ptr<const TvmLoadedModel> loaded_;
  std::vector<float> arena_;
  std::unique_ptr<float[]> batch_arena_;
  uint64_t batch_arena_capacity_ = 0;
};

class TvmFramework final : public InferenceFramework {
 public:
  explicit TvmFramework(const FrameworkOptions& options) : options_(options) {}

  FrameworkKind kind() const override { return FrameworkKind::kTvm; }

  Result<std::shared_ptr<LoadedModel>> LoadModel(ByteSpan plain_model) const override {
    SESEMI_ASSIGN_OR_RETURN(model::QuantizedModelFile file,
                            model::ParseQuantizedModel(plain_model));
    if (!file.quant.empty()) {
      // Pre-quantized (version-2) file: its fp32 matrices are not on the
      // wire, so it always compiles through the int8 tier.
      CompiledModel::Options options;
      options.pack_weights = true;
      SESEMI_ASSIGN_OR_RETURN(
          CompiledModel compiled,
          CompiledModel::Compile(std::move(file.graph), std::move(file.quant),
                                 options));
      return std::shared_ptr<LoadedModel>(
          std::make_shared<TvmLoadedModel>(std::move(compiled)));
    }
    return WrapModel(std::move(file.graph));
  }

  Result<std::shared_ptr<LoadedModel>> WrapModel(model::ModelGraph graph) const override {
    CompiledModel::Options options;
    options.pack_weights = true;  // compiled-executor semantics
    options.quantize = options_.quantize;
    SESEMI_ASSIGN_OR_RETURN(CompiledModel compiled,
                            CompiledModel::Compile(std::move(graph), options));
    return std::shared_ptr<LoadedModel>(
        std::make_shared<TvmLoadedModel>(std::move(compiled)));
  }

  Result<std::unique_ptr<ModelRuntime>> CreateRuntime(
      std::shared_ptr<const LoadedModel> loaded) const override {
    auto typed = std::dynamic_pointer_cast<const TvmLoadedModel>(loaded);
    if (typed == nullptr) {
      return Status::InvalidArgument("model was not loaded by the TVM framework");
    }
    return std::unique_ptr<ModelRuntime>(std::make_unique<TvmRuntime>(std::move(typed)));
  }

 private:
  FrameworkOptions options_;
};

}  // namespace

std::unique_ptr<InferenceFramework> CreateTvmFramework(
    const FrameworkOptions& options) {
  return std::make_unique<TvmFramework>(options);
}

}  // namespace sesemi::inference
