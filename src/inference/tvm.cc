// µTVM: the Apache-TVM-flavoured framework.
//
// Characteristics mirrored from the real system (paper Table I, §VI-A):
//  - RUNTIME_INIT packs a private copy of every weighted layer's parameters
//    into the runtime, so runtime buffers exceed the model size
//    (λ = buffer/model ≈ 1.2-1.8) and initialization cost scales with the
//    model;
//  - execution runs against the packed copy (compiled-executor semantics),
//    which is what makes TVM's hot path fast and its warm path expensive.

#include <cstring>

#include "inference/executor.h"
#include "inference/framework.h"
#include "model/format.h"

namespace sesemi::inference {
namespace {

class TvmLoadedModel final : public LoadedModel {
 public:
  explicit TvmLoadedModel(model::ModelGraph graph)
      : graph_(std::move(graph)), plan_(graph_) {}

  const model::ModelGraph& graph() const override { return graph_; }
  uint64_t memory_bytes() const override {
    return graph_.WeightBytes() + graph_.layers.size() * 128;
  }
  const GraphExecutionPlan& plan() const { return plan_; }

 private:
  model::ModelGraph graph_;
  GraphExecutionPlan plan_;
};

class TvmRuntime final : public ModelRuntime {
 public:
  explicit TvmRuntime(std::shared_ptr<const TvmLoadedModel> loaded)
      : loaded_(std::move(loaded)),
        packed_weights_(loaded_->graph().weights),  // private packed copy
        arena_(loaded_->plan().arena_elements(), 0.0f) {
    // A real TVM runtime lays weights out per-operator; copying is the
    // observable cost and footprint, which is what we reproduce.
  }

  const std::string& model_id() const override {
    return loaded_->graph().model_id;
  }

  uint64_t buffer_bytes() const override {
    return packed_weights_.size() * sizeof(float) + arena_.size() * sizeof(float);
  }

  Result<Bytes> Execute(ByteSpan input) override {
    return loaded_->plan().Execute(loaded_->graph(), packed_weights_.data(), input,
                                   arena_.data());
  }

  Result<std::vector<Bytes>> ExecuteBatch(
      const std::vector<ByteSpan>& inputs) override {
    if (inputs.size() <= 1) return ModelRuntime::ExecuteBatch(inputs);
    // Grow-only uninitialized batch arena, cached across batches. Safe: the
    // runtime is exclusive to one TCS slot, and every arena slot is written
    // before it is read (kInput copies, each layer fills its output, im2col
    // zero-fills its padding taps).
    const uint64_t need =
        loaded_->plan().batch_arena_elements(static_cast<int>(inputs.size()));
    if (batch_arena_capacity_ < need) {
      batch_arena_ = std::unique_ptr<float[]>(new float[need]);
      batch_arena_capacity_ = need;
    }
    std::vector<Bytes> outputs;
    SESEMI_RETURN_IF_ERROR(loaded_->plan().ExecuteBatch(
        loaded_->graph(), packed_weights_.data(), inputs, batch_arena_.get(),
        &outputs));
    return outputs;
  }

 private:
  std::shared_ptr<const TvmLoadedModel> loaded_;
  std::vector<float> packed_weights_;
  std::vector<float> arena_;
  std::unique_ptr<float[]> batch_arena_;
  uint64_t batch_arena_capacity_ = 0;
};

class TvmFramework final : public InferenceFramework {
 public:
  FrameworkKind kind() const override { return FrameworkKind::kTvm; }

  Result<std::shared_ptr<LoadedModel>> LoadModel(ByteSpan plain_model) const override {
    SESEMI_ASSIGN_OR_RETURN(model::ModelGraph graph, model::ParseModel(plain_model));
    return WrapModel(std::move(graph));
  }

  Result<std::shared_ptr<LoadedModel>> WrapModel(model::ModelGraph graph) const override {
    SESEMI_RETURN_IF_ERROR(graph.Validate());
    return std::shared_ptr<LoadedModel>(
        std::make_shared<TvmLoadedModel>(std::move(graph)));
  }

  Result<std::unique_ptr<ModelRuntime>> CreateRuntime(
      std::shared_ptr<const LoadedModel> loaded) const override {
    auto typed = std::dynamic_pointer_cast<const TvmLoadedModel>(loaded);
    if (typed == nullptr) {
      return Status::InvalidArgument("model was not loaded by the TVM framework");
    }
    return std::unique_ptr<ModelRuntime>(std::make_unique<TvmRuntime>(std::move(typed)));
  }
};

}  // namespace

std::unique_ptr<InferenceFramework> CreateTvmFramework() {
  return std::make_unique<TvmFramework>();
}

}  // namespace sesemi::inference
