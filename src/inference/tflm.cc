// µTFLM: the TensorFlow-Lite-Micro-flavoured framework.
//
// Characteristics mirrored from the real system (paper Table I, §VI-A):
//  - the loaded model is the single source of weights; execution reads them
//    in place (no packing — CompiledModel::Options::pack_weights off), so the
//    resident footprint is ~the serialized model and runtime buffers are only
//    the activation arena (λ = buffer/model ≈ 0.14-0.29);
//  - MODEL_LOAD still compiles the execution plan (arena offsets, scratch
//    bounds, batch strides — that part is cheap), so Execute does no per-
//    request shape math either; RUNTIME_INIT allocates the arena and nothing
//    else;
//  - execution is interpreted over row-major weights, i.e. slower than TVM's
//    packed compiled executor.

#include "inference/compiled_model.h"
#include "inference/framework.h"
#include "model/format.h"

namespace sesemi::inference {
namespace {

class TflmLoadedModel final : public LoadedModel {
 public:
  explicit TflmLoadedModel(CompiledModel compiled)
      : compiled_(std::move(compiled)) {}

  const model::ModelGraph& graph() const override { return compiled_.graph(); }
  uint64_t memory_bytes() const override {
    // Flatbuffer-in-place semantics: the model occupies ~its serialized size
    // (no fp32 packed buffers; packed_weight_bytes() is 0 unless the int8
    // tier replaced the fp32 matrices with quantized panels — a net shrink).
    return graph().WeightBytes() + compiled_.packed_weight_bytes() +
           graph().layers.size() * 128;
  }
  const CompiledModel& compiled() const { return compiled_; }

 private:
  CompiledModel compiled_;
};

class TflmRuntime final : public ModelRuntime {
 public:
  explicit TflmRuntime(std::shared_ptr<const TflmLoadedModel> loaded)
      : loaded_(std::move(loaded)),
        arena_(loaded_->compiled().arena_elements(), 0.0f) {}

  const std::string& model_id() const override {
    return loaded_->graph().model_id;
  }

  uint64_t buffer_bytes() const override {
    return arena_.size() * sizeof(float);
  }

  Result<Bytes> Execute(ByteSpan input) override {
    // Interpreter: weights are read from the shared loaded model in place.
    return loaded_->compiled().Execute(input, arena_.data());
  }

  Result<std::vector<Bytes>> ExecuteBatch(
      const std::vector<ByteSpan>& inputs) override {
    if (inputs.size() <= 1) return ModelRuntime::ExecuteBatch(inputs);
    // Grow-only uninitialized batch arena (see TvmRuntime::ExecuteBatch).
    const uint64_t need = loaded_->compiled().batch_arena_elements(
        static_cast<int>(inputs.size()));
    if (batch_arena_capacity_ < need) {
      batch_arena_ = std::unique_ptr<float[]>(new float[need]);
      batch_arena_capacity_ = need;
    }
    std::vector<Bytes> outputs;
    SESEMI_RETURN_IF_ERROR(loaded_->compiled().ExecuteBatch(
        inputs, batch_arena_.get(), &outputs));
    return outputs;
  }

 private:
  std::shared_ptr<const TflmLoadedModel> loaded_;
  std::vector<float> arena_;
  std::unique_ptr<float[]> batch_arena_;
  uint64_t batch_arena_capacity_ = 0;
};

class TflmFramework final : public InferenceFramework {
 public:
  explicit TflmFramework(const FrameworkOptions& options) : options_(options) {}

  FrameworkKind kind() const override { return FrameworkKind::kTflm; }

  Result<std::shared_ptr<LoadedModel>> LoadModel(ByteSpan plain_model) const override {
    SESEMI_ASSIGN_OR_RETURN(model::QuantizedModelFile file,
                            model::ParseQuantizedModel(plain_model));
    if (!file.quant.empty()) {
      // Pre-quantized (version-2) file: must run the int8 tier — the fp32
      // matrices were dropped from the wire. (TFLite Micro likewise executes
      // int8 flatbuffers with int8 kernels, interpreter semantics or not.)
      CompiledModel::Options options;
      options.pack_weights = false;
      SESEMI_ASSIGN_OR_RETURN(
          CompiledModel compiled,
          CompiledModel::Compile(std::move(file.graph), std::move(file.quant),
                                 options));
      return std::shared_ptr<LoadedModel>(
          std::make_shared<TflmLoadedModel>(std::move(compiled)));
    }
    return WrapModel(std::move(file.graph));
  }

  Result<std::shared_ptr<LoadedModel>> WrapModel(model::ModelGraph graph) const override {
    CompiledModel::Options options;
    options.pack_weights = false;  // interpreter reads weights in place
    options.quantize = options_.quantize;
    SESEMI_ASSIGN_OR_RETURN(CompiledModel compiled,
                            CompiledModel::Compile(std::move(graph), options));
    return std::shared_ptr<LoadedModel>(
        std::make_shared<TflmLoadedModel>(std::move(compiled)));
  }

  Result<std::unique_ptr<ModelRuntime>> CreateRuntime(
      std::shared_ptr<const LoadedModel> loaded) const override {
    auto typed = std::dynamic_pointer_cast<const TflmLoadedModel>(loaded);
    if (typed == nullptr) {
      return Status::InvalidArgument("model was not loaded by the TFLM framework");
    }
    return std::unique_ptr<ModelRuntime>(std::make_unique<TflmRuntime>(std::move(typed)));
  }

 private:
  FrameworkOptions options_;
};

}  // namespace

std::unique_ptr<InferenceFramework> CreateTflmFramework(
    const FrameworkOptions& options) {
  return std::make_unique<TflmFramework>(options);
}

}  // namespace sesemi::inference
