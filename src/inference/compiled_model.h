#ifndef SESEMI_INFERENCE_COMPILED_MODEL_H_
#define SESEMI_INFERENCE_COMPILED_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "model/graph.h"
#include "model/quantize.h"

namespace sesemi::inference {

/// One layer of the compiled pipeline: every shape- and weight-dependent
/// quantity Execute would otherwise derive per request, resolved once at
/// compile time. Weight/bias/packed fields are offsets (into the owning
/// model's weight blob and packed buffer respectively), so a CompiledModel
/// stays movable.
struct CompiledLayer {
  model::LayerKind kind = model::LayerKind::kInput;
  int32_t in0 = -1;  ///< first input layer index (-1 for kInput)
  int32_t in1 = -1;  ///< second input layer index (kAdd/kConcat)
  model::TensorShape in_shape;   ///< shape of input 0
  model::TensorShape in1_shape;  ///< shape of input 1 (kAdd/kConcat)
  model::TensorShape out_shape;
  uint64_t in_elems = 0;
  uint64_t in1_elems = 0;
  uint64_t out_elems = 0;
  uint64_t arena_offset = 0;  ///< per-sample activation slot (floats)
  int kernel = 0;
  int stride = 1;
  int out_channels = 0;
  int units = 0;
  /// GEMM B dims for kConv2d/kDense (N = out_c/units, K = patch/in_features;
  /// M is the im2col tile height or the batch, chosen at execute). Zero
  /// otherwise.
  int gemm_n = 0, gemm_k = 0;
  uint64_t weight_offset = 0;  ///< into the graph weight blob
  /// Offset of this layer's B panels in the packed buffer, or kNotPacked.
  uint64_t packed_offset = 0;
  /// Offset of the bias vector in the graph weight blob (weighted layers).
  uint64_t bias_offset = 0;
  /// Int8 tier (Options::quantize): offset of this layer's K-grouped int8
  /// panels in the quantized panel buffer, or kNotPacked when the layer runs
  /// fp32.
  uint64_t qpacked_offset = kNotPacked;
  /// First of this layer's gemm_n entries in the per-output-channel scale and
  /// column-sum arrays (quantized layers only).
  uint64_t qmeta_offset = 0;

  static constexpr uint64_t kNotPacked = ~0ull;
};

/// A model compiled once at MODEL_LOAD into an immutable execute-many
/// artifact (the µTVM compile-once/execute-many split): per-layer arena
/// offsets, conv im2col scratch bounds, batch-major strides, and — when
/// Options::pack_weights is set — every Dense/Conv weight matrix re-laid into
/// the 16-wide B panels the GEMM micro-kernels consume (gemm::PackB). The
/// steady-state Execute path does zero shape math and zero heap allocation:
/// all sizing lives here, the caller brings the arena.
///
/// Arena layout (unbatched): one slot per layer back-to-back (DenseNet-style
/// concat topologies keep many activations live, so per-layer slots are the
/// simple correct choice), then one shared conv scratch region. Batched: each
/// slot is replicated batch-major ([batch][elements] rows back-to-back — the
/// contiguity that turns Dense into one M=batch GEMM), followed by one
/// scratch lane per batch-parallel worker (see batch_scratch_lanes).
///
/// \par Thread-safety
/// A CompiledModel is immutable after Compile; any number of threads may run
/// Execute/ExecuteBatch concurrently with disjoint arenas.
class CompiledModel {
 public:
  struct Options {
    /// Pre-pack Dense/Conv weights at compile time (µTVM compiled-executor
    /// semantics: extra resident bytes, faster execution). When false the
    /// kernels read the graph's row-major weights in place (µTFLM
    /// interpreter semantics: no load-time weight processing).
    bool pack_weights = true;
    /// Int8 tier: quantize every Dense/Conv weight matrix at compile time
    /// (symmetric per-output-channel), drop the fp32 matrices from the weight
    /// blob, and execute those layers through the int8 GEMM kernels with
    /// dynamically quantized u7 activations. The compiled artifact is ~4x
    /// smaller than fp32 pack_weights (int8 panels replace both the fp32
    /// matrices and the fp32 panels); Execute stays allocation-free.
    bool quantize = false;
  };

  /// Build the compiled artifact. Validates the graph and takes ownership of
  /// it; weights in the returned object are immutable.
  static Result<CompiledModel> Compile(model::ModelGraph graph,
                                       const Options& options);
  /// Default options (pack_weights on).
  static Result<CompiledModel> Compile(model::ModelGraph graph);

  /// Compile a model whose int8 weights were already produced elsewhere (a
  /// parsed version-2 model file): `graph` may be compacted (quantized
  /// layers' fp32 slices reduced to bias-only) or full fp32, `quant` carries
  /// the matching int8 matrices. Implies Options::quantize.
  static Result<CompiledModel> Compile(model::ModelGraph graph,
                                       model::ModelQuant quant,
                                       const Options& options);

  CompiledModel(CompiledModel&&) = default;
  CompiledModel& operator=(CompiledModel&&) = default;
  CompiledModel(const CompiledModel&) = delete;
  CompiledModel& operator=(const CompiledModel&) = delete;

  const model::ModelGraph& graph() const { return graph_; }
  bool packs_weights() const { return options_.pack_weights; }
  bool quantized() const { return options_.quantize; }

  /// Bytes of the pre-packed panel buffers (fp32 panels, plus the int8
  /// panels/scales/column-sums when quantized; 0 when pack_weights is off and
  /// quantize is off). Counted by enclave memory accounting as part of the
  /// loaded model.
  uint64_t packed_weight_bytes() const {
    return packed_.size() * sizeof(float) + packed_q_.size() +
           qscales_.size() * sizeof(float) + qcolsums_.size() * sizeof(int32_t);
  }

  /// Total floats of arena required for one sample (slots + conv scratch).
  uint64_t arena_elements() const { return total_elements_ + scratch_elements_; }
  uint64_t arena_bytes() const { return arena_elements() * sizeof(float); }

  /// Floats of the trailing conv scratch region inside the arena.
  uint64_t scratch_elements() const { return scratch_elements_; }

  /// Floats of the final layer's activation (the Execute output size).
  uint64_t output_elements() const;

  /// Scratch lanes a batch of `batch` samples uses: one per worker that can
  /// fan the batch dimension out (min(batch, ParallelismDegree())).
  int batch_scratch_lanes(int batch) const;

  /// Arena floats a batched execution over `batch` samples needs. Quantized
  /// models append one region for the batch-wide Dense activation rows
  /// (batch x padded-K u7 bytes plus per-row scale/zero-point).
  uint64_t batch_arena_elements(int batch) const {
    return total_elements_ * static_cast<uint64_t>(batch) +
           scratch_elements_ * static_cast<uint64_t>(batch_scratch_lanes(batch)) +
           quant_batch_elements(batch);
  }

  /// Run one sample, writing the final activation (output_elements() floats)
  /// into `out`. Allocation-free: the steady-state inference path. `arena`
  /// must hold arena_elements() floats.
  Status ExecuteInto(ByteSpan input, float* arena, float* out) const;

  /// Run one sample and return the final activation as raw float32 bytes
  /// (one output allocation on top of ExecuteInto).
  Result<Bytes> Execute(ByteSpan input, float* arena) const;

  /// Run the graph once for `inputs.size()` samples — the scheduler's
  /// same-model batch. Dense layers run as ONE M=batch GEMM over the
  /// contiguous batch-major slot rows; elementwise layers fuse into a single
  /// pass over batch*elements; spatial layers (conv/pool/concat/softmax) fan
  /// the batch dimension out over the process fork-join pool, one im2col
  /// scratch lane per worker. Per-element accumulation order is identical to
  /// Execute, so outputs match the unbatched path regardless of how the
  /// batch is carved up. `arena` must hold batch_arena_elements() floats.
  Status ExecuteBatch(const std::vector<ByteSpan>& inputs, float* arena,
                      std::vector<Bytes>* outputs) const;

 private:
  CompiledModel() = default;

  static Result<CompiledModel> CompileImpl(model::ModelGraph graph,
                                           model::ModelQuant quant,
                                           const Options& options);

  /// Run one sample of layer i: activations at the given slot pointers,
  /// conv im2col tiles (and quantized u8 staging) through `scratch`.
  void RunLayerSample(const CompiledLayer& layer, const float* in0,
                      const float* in1, float* out, float* scratch) const;

  /// Floats of the trailing per-batch quantized-Dense region (0 for fp32
  /// models): batch rows of padded-K u7 activations + per-row quant params.
  uint64_t quant_batch_elements(int batch) const {
    if (max_dense_k4_ == 0) return 0;
    const uint64_t bytes =
        static_cast<uint64_t>(batch) * (max_dense_k4_ + 2 * sizeof(float));
    return (bytes + sizeof(float) - 1) / sizeof(float);
  }

  const float* layer_weights(const CompiledLayer& layer) const {
    return graph_.weights.data() + layer.weight_offset;
  }
  const float* layer_bias(const CompiledLayer& layer) const {
    return graph_.weights.data() + layer.bias_offset;
  }
  const float* layer_packed(const CompiledLayer& layer) const {
    return packed_.data() + layer.packed_offset;
  }
  const int8_t* layer_qpacked(const CompiledLayer& layer) const {
    return packed_q_.data() + layer.qpacked_offset;
  }
  const float* layer_qscales(const CompiledLayer& layer) const {
    return qscales_.data() + layer.qmeta_offset;
  }
  const int32_t* layer_qcolsums(const CompiledLayer& layer) const {
    return qcolsums_.data() + layer.qmeta_offset;
  }

  model::ModelGraph graph_;
  Options options_;
  std::vector<CompiledLayer> layers_;
  std::vector<float> packed_;    ///< all layers' fp32 B panels, back-to-back
  std::vector<int8_t> packed_q_; ///< all layers' int8 K-grouped panels
  std::vector<float> qscales_;   ///< per-output-channel weight scales
  std::vector<int32_t> qcolsums_;  ///< per-column weight sums (zp correction)
  uint64_t total_elements_ = 0;
  uint64_t scratch_elements_ = 0;
  uint64_t max_dense_k4_ = 0;  ///< widest padded Dense K of a quantized layer
};

}  // namespace sesemi::inference

#endif  // SESEMI_INFERENCE_COMPILED_MODEL_H_
