#include "inference/executor.h"

#include <cstring>

#include "inference/gemm.h"
#include "inference/ops.h"

namespace sesemi::inference {

using model::Layer;
using model::LayerKind;
using model::ModelGraph;

GraphExecutionPlan::GraphExecutionPlan(const ModelGraph& graph) {
  offsets_.reserve(graph.layers.size());
  uint64_t cursor = 0;
  uint64_t scratch = 0;
  for (const Layer& layer : graph.layers) {
    offsets_.push_back(cursor);
    cursor += layer.output_shape.elements();
    if (layer.kind == LayerKind::kConv2d && !layer.inputs.empty()) {
      const model::TensorShape& in_shape =
          graph.layers[layer.inputs[0]].output_shape;
      scratch = std::max<uint64_t>(
          scratch,
          ops::Conv2dScratchElements(in_shape, layer.kernel, layer.stride));
    }
  }
  total_elements_ = cursor;
  scratch_elements_ = scratch;
}

Result<Bytes> GraphExecutionPlan::Execute(const ModelGraph& graph,
                                          const float* weights, ByteSpan input,
                                          float* arena) const {
  if (graph.layers.size() != offsets_.size()) {
    return Status::InvalidArgument("plan does not match graph");
  }
  const size_t input_elements = graph.input_shape.elements();
  if (input.size() != input_elements * sizeof(float)) {
    return Status::InvalidArgument(
        "input size mismatch: want " + std::to_string(input_elements * sizeof(float)) +
        " bytes, got " + std::to_string(input.size()));
  }

  // The shared conv scratch region sits after the last activation slot.
  float* scratch = arena + total_elements_;

  for (size_t i = 0; i < graph.layers.size(); ++i) {
    const Layer& layer = graph.layers[i];
    float* out = arena + offsets_[i];
    auto in_ptr = [&](int slot) {
      return arena + offsets_[layer.inputs[slot]];
    };
    auto in_shape = [&](int slot) -> const model::TensorShape& {
      return graph.layers[layer.inputs[slot]].output_shape;
    };
    const float* w = weights + layer.weight_offset;

    switch (layer.kind) {
      case LayerKind::kInput:
        std::memcpy(out, input.data(), input.size());
        break;
      case LayerKind::kConv2d:
        ops::Conv2d(in_ptr(0), in_shape(0), w, layer.kernel, layer.stride,
                    layer.out_channels, out, scratch);
        break;
      case LayerKind::kDepthwiseConv2d:
        ops::DepthwiseConv2d(in_ptr(0), in_shape(0), w, layer.kernel, layer.stride,
                             out);
        break;
      case LayerKind::kDense:
        ops::Dense(in_ptr(0), in_shape(0).elements(), w, layer.units, out);
        break;
      case LayerKind::kRelu:
        ops::Relu(in_ptr(0), in_shape(0).elements(), out);
        break;
      case LayerKind::kMaxPool:
        ops::MaxPool2x2(in_ptr(0), in_shape(0), out);
        break;
      case LayerKind::kGlobalAvgPool:
        ops::GlobalAvgPool(in_ptr(0), in_shape(0), out);
        break;
      case LayerKind::kAdd:
        ops::Add(in_ptr(0), in_ptr(1), in_shape(0).elements(), out);
        break;
      case LayerKind::kConcat:
        ops::ConcatChannels(in_ptr(0), in_shape(0), in_ptr(1), in_shape(1), out);
        break;
      case LayerKind::kSoftmax:
        ops::Softmax(in_ptr(0), in_shape(0).elements(), out);
        break;
    }
  }

  const Layer& last = graph.layers.back();
  const float* result = arena + offsets_.back();
  Bytes out(last.output_shape.elements() * sizeof(float));
  std::memcpy(out.data(), result, out.size());
  return out;
}

Status GraphExecutionPlan::ExecuteBatch(const ModelGraph& graph,
                                        const float* weights,
                                        const std::vector<ByteSpan>& inputs,
                                        float* arena,
                                        std::vector<Bytes>* outputs) const {
  if (graph.layers.size() != offsets_.size()) {
    return Status::InvalidArgument("plan does not match graph");
  }
  const uint64_t batch = inputs.size();
  if (batch == 0) return Status::InvalidArgument("empty batch");
  const size_t input_bytes = graph.input_shape.elements() * sizeof(float);
  for (const ByteSpan& input : inputs) {
    if (input.size() != input_bytes) {
      return Status::InvalidArgument(
          "batched input size mismatch: want " + std::to_string(input_bytes) +
          " bytes, got " + std::to_string(input.size()));
    }
  }

  // Batch-major slot layout: layer i's activations live at
  // arena[offsets_[i]*batch + b*elements(i)], so one layer's rows for the
  // whole batch are contiguous — that contiguity is what turns Dense into a
  // single M=batch GEMM.
  float* scratch = arena + total_elements_ * batch;
  auto slot = [&](size_t layer) { return arena + offsets_[layer] * batch; };

  for (size_t i = 0; i < graph.layers.size(); ++i) {
    const Layer& layer = graph.layers[i];
    float* out = slot(i);
    const uint64_t out_elems = layer.output_shape.elements();
    auto in_ptr = [&](int s) { return slot(layer.inputs[s]); };
    auto in_shape = [&](int s) -> const model::TensorShape& {
      return graph.layers[layer.inputs[s]].output_shape;
    };
    auto in_elems = [&](int s) { return in_shape(s).elements(); };
    const float* w = weights + layer.weight_offset;

    switch (layer.kind) {
      case LayerKind::kInput:
        for (uint64_t b = 0; b < batch; ++b) {
          std::memcpy(out + b * out_elems, inputs[b].data(), input_bytes);
        }
        break;
      case LayerKind::kConv2d:
        for (uint64_t b = 0; b < batch; ++b) {
          ops::Conv2d(in_ptr(0) + b * in_elems(0), in_shape(0), w, layer.kernel,
                      layer.stride, layer.out_channels, out + b * out_elems,
                      scratch);
        }
        break;
      case LayerKind::kDepthwiseConv2d:
        for (uint64_t b = 0; b < batch; ++b) {
          ops::DepthwiseConv2d(in_ptr(0) + b * in_elems(0), in_shape(0), w,
                               layer.kernel, layer.stride, out + b * out_elems);
        }
        break;
      case LayerKind::kDense: {
        // The whole batch in one GEMM: rows are the per-sample feature
        // vectors, already contiguous in the batch-major slot.
        const float* bias = w + in_elems(0) * static_cast<size_t>(layer.units);
        gemm::Gemm(in_ptr(0), w, bias, out, static_cast<int>(batch), layer.units,
                   static_cast<int>(in_elems(0)));
        break;
      }
      case LayerKind::kRelu:
        ops::Relu(in_ptr(0), in_elems(0) * batch, out);
        break;
      case LayerKind::kMaxPool:
        for (uint64_t b = 0; b < batch; ++b) {
          ops::MaxPool2x2(in_ptr(0) + b * in_elems(0), in_shape(0),
                          out + b * out_elems);
        }
        break;
      case LayerKind::kGlobalAvgPool:
        for (uint64_t b = 0; b < batch; ++b) {
          ops::GlobalAvgPool(in_ptr(0) + b * in_elems(0), in_shape(0),
                             out + b * out_elems);
        }
        break;
      case LayerKind::kAdd:
        ops::Add(in_ptr(0), in_ptr(1), in_elems(0) * batch, out);
        break;
      case LayerKind::kConcat:
        for (uint64_t b = 0; b < batch; ++b) {
          ops::ConcatChannels(in_ptr(0) + b * in_elems(0), in_shape(0),
                              in_ptr(1) + b * in_elems(1), in_shape(1),
                              out + b * out_elems);
        }
        break;
      case LayerKind::kSoftmax:
        for (uint64_t b = 0; b < batch; ++b) {  // normalization is per sample
          ops::Softmax(in_ptr(0) + b * in_elems(0), in_elems(0),
                       out + b * out_elems);
        }
        break;
    }
  }

  const uint64_t final_elems = graph.layers.back().output_shape.elements();
  const float* result = slot(graph.layers.size() - 1);
  outputs->clear();
  outputs->reserve(batch);
  for (uint64_t b = 0; b < batch; ++b) {
    Bytes out_bytes(final_elems * sizeof(float));
    std::memcpy(out_bytes.data(), result + b * final_elems, out_bytes.size());
    outputs->push_back(std::move(out_bytes));
  }
  return Status::OK();
}

}  // namespace sesemi::inference
