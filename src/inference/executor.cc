#include "inference/executor.h"

#include <cstring>

#include "inference/ops.h"

namespace sesemi::inference {

using model::Layer;
using model::LayerKind;
using model::ModelGraph;

GraphExecutionPlan::GraphExecutionPlan(const ModelGraph& graph) {
  offsets_.reserve(graph.layers.size());
  uint64_t cursor = 0;
  uint64_t scratch = 0;
  for (const Layer& layer : graph.layers) {
    offsets_.push_back(cursor);
    cursor += layer.output_shape.elements();
    if (layer.kind == LayerKind::kConv2d && !layer.inputs.empty()) {
      const model::TensorShape& in_shape =
          graph.layers[layer.inputs[0]].output_shape;
      scratch = std::max<uint64_t>(
          scratch,
          ops::Conv2dScratchElements(in_shape, layer.kernel, layer.stride));
    }
  }
  total_elements_ = cursor;
  scratch_elements_ = scratch;
}

Result<Bytes> GraphExecutionPlan::Execute(const ModelGraph& graph,
                                          const float* weights, ByteSpan input,
                                          float* arena) const {
  if (graph.layers.size() != offsets_.size()) {
    return Status::InvalidArgument("plan does not match graph");
  }
  const size_t input_elements = graph.input_shape.elements();
  if (input.size() != input_elements * sizeof(float)) {
    return Status::InvalidArgument(
        "input size mismatch: want " + std::to_string(input_elements * sizeof(float)) +
        " bytes, got " + std::to_string(input.size()));
  }

  // The shared conv scratch region sits after the last activation slot.
  float* scratch = arena + total_elements_;

  for (size_t i = 0; i < graph.layers.size(); ++i) {
    const Layer& layer = graph.layers[i];
    float* out = arena + offsets_[i];
    auto in_ptr = [&](int slot) {
      return arena + offsets_[layer.inputs[slot]];
    };
    auto in_shape = [&](int slot) -> const model::TensorShape& {
      return graph.layers[layer.inputs[slot]].output_shape;
    };
    const float* w = weights + layer.weight_offset;

    switch (layer.kind) {
      case LayerKind::kInput:
        std::memcpy(out, input.data(), input.size());
        break;
      case LayerKind::kConv2d:
        ops::Conv2d(in_ptr(0), in_shape(0), w, layer.kernel, layer.stride,
                    layer.out_channels, out, scratch);
        break;
      case LayerKind::kDepthwiseConv2d:
        ops::DepthwiseConv2d(in_ptr(0), in_shape(0), w, layer.kernel, layer.stride,
                             out);
        break;
      case LayerKind::kDense:
        ops::Dense(in_ptr(0), in_shape(0).elements(), w, layer.units, out);
        break;
      case LayerKind::kRelu:
        ops::Relu(in_ptr(0), in_shape(0).elements(), out);
        break;
      case LayerKind::kMaxPool:
        ops::MaxPool2x2(in_ptr(0), in_shape(0), out);
        break;
      case LayerKind::kGlobalAvgPool:
        ops::GlobalAvgPool(in_ptr(0), in_shape(0), out);
        break;
      case LayerKind::kAdd:
        ops::Add(in_ptr(0), in_ptr(1), in_shape(0).elements(), out);
        break;
      case LayerKind::kConcat:
        ops::ConcatChannels(in_ptr(0), in_shape(0), in_ptr(1), in_shape(1), out);
        break;
      case LayerKind::kSoftmax:
        ops::Softmax(in_ptr(0), in_shape(0).elements(), out);
        break;
    }
  }

  const Layer& last = graph.layers.back();
  const float* result = arena + offsets_.back();
  Bytes out(last.output_shape.elements() * sizeof(float));
  std::memcpy(out.data(), result, out.size());
  return out;
}

}  // namespace sesemi::inference
