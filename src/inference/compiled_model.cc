#include "inference/compiled_model.h"

#include <algorithm>
#include <cstring>

#include "common/parallel_for.h"
#include "inference/gemm.h"
#include "inference/ops.h"

namespace sesemi::inference {

using model::Layer;
using model::LayerKind;
using model::ModelGraph;

Result<CompiledModel> CompiledModel::Compile(ModelGraph graph) {
  return Compile(std::move(graph), Options());
}

Result<CompiledModel> CompiledModel::Compile(ModelGraph graph,
                                             const Options& options) {
  return CompileImpl(std::move(graph), model::ModelQuant(), options);
}

Result<CompiledModel> CompiledModel::Compile(ModelGraph graph,
                                             model::ModelQuant quant,
                                             const Options& options) {
  Options opts = options;
  opts.quantize = true;
  return CompileImpl(std::move(graph), std::move(quant), opts);
}

Result<CompiledModel> CompiledModel::CompileImpl(ModelGraph graph,
                                                 model::ModelQuant quant,
                                                 const Options& options) {
  SESEMI_RETURN_IF_ERROR(graph.Validate());

  // Int8 tier: quantize at MODEL_LOAD (unless the caller brought pre-made
  // int8 weights, e.g. from a version-2 model file), then drop the fp32
  // matrices from the weight blob — the int8 panels replace them.
  if (options.quantize) {
    if (quant.empty()) quant = model::QuantizeModelWeights(graph);
    SESEMI_RETURN_IF_ERROR(model::CompactQuantizedWeights(&graph, quant));
    SESEMI_RETURN_IF_ERROR(graph.Validate());
  }
  std::vector<const model::LayerQuant*> quant_for(graph.layers.size(), nullptr);
  for (const model::LayerQuant& lq : quant.layers) {
    quant_for[lq.layer] = &lq;
  }

  CompiledModel compiled;
  compiled.graph_ = std::move(graph);
  compiled.options_ = options;
  const ModelGraph& g = compiled.graph_;

  compiled.layers_.reserve(g.layers.size());
  uint64_t cursor = 0;
  uint64_t scratch = 0;
  uint64_t packed_floats = 0;
  uint64_t qpacked_bytes = 0;
  uint64_t qmeta = 0;
  for (size_t li = 0; li < g.layers.size(); ++li) {
    const Layer& layer = g.layers[li];
    const model::LayerQuant* lq = quant_for[li];
    CompiledLayer cl;
    cl.kind = layer.kind;
    cl.out_shape = layer.output_shape;
    cl.out_elems = layer.output_shape.elements();
    cl.arena_offset = cursor;
    cursor += cl.out_elems;
    cl.kernel = layer.kernel;
    cl.stride = layer.stride;
    cl.out_channels = layer.out_channels;
    cl.units = layer.units;
    cl.weight_offset = layer.weight_offset;
    cl.packed_offset = CompiledLayer::kNotPacked;
    if (!layer.inputs.empty()) {
      cl.in0 = layer.inputs[0];
      cl.in_shape = g.layers[cl.in0].output_shape;
      cl.in_elems = cl.in_shape.elements();
    }
    if (layer.inputs.size() > 1) {
      cl.in1 = layer.inputs[1];
      cl.in1_shape = g.layers[cl.in1].output_shape;
      cl.in1_elems = cl.in1_shape.elements();
    }
    switch (layer.kind) {
      case LayerKind::kConv2d: {
        cl.gemm_k = cl.kernel * cl.kernel * cl.in_shape.c;
        cl.gemm_n = cl.out_channels;
        if (lq != nullptr) {
          if (lq->k != cl.gemm_k || lq->n != cl.gemm_n) {
            return Status::InvalidArgument("quantized conv dims mismatch");
          }
          cl.bias_offset = cl.weight_offset;  // compacted: bias-only slice
          cl.qpacked_offset = qpacked_bytes;
          qpacked_bytes += gemm::PackedBInt8Bytes(cl.gemm_k, cl.gemm_n);
          cl.qmeta_offset = qmeta;
          qmeta += cl.gemm_n;
          // u8 staging: the quantized input tensor, then the im2col tile.
          const uint64_t qbytes =
              ((cl.in_elems + 3) & ~uint64_t{3}) +
              gemm::Conv2dScratchBytesInt8(cl.in_shape, cl.kernel, cl.stride);
          scratch = std::max<uint64_t>(scratch, (qbytes + 3) / 4);
        } else {
          cl.bias_offset = cl.weight_offset +
                           static_cast<uint64_t>(cl.gemm_k) * cl.gemm_n;
          scratch = std::max<uint64_t>(
              scratch,
              gemm::Conv2dScratchElements(cl.in_shape, cl.kernel, cl.stride));
          if (options.pack_weights) {
            cl.packed_offset = packed_floats;
            packed_floats += gemm::PackedBElements(cl.gemm_k, cl.gemm_n);
          }
        }
        break;
      }
      case LayerKind::kDense: {
        cl.gemm_k = static_cast<int>(cl.in_elems);
        cl.gemm_n = cl.units;
        if (lq != nullptr) {
          if (lq->k != cl.gemm_k || lq->n != cl.gemm_n) {
            return Status::InvalidArgument("quantized dense dims mismatch");
          }
          cl.bias_offset = cl.weight_offset;  // compacted: bias-only slice
          cl.qpacked_offset = qpacked_bytes;
          qpacked_bytes += gemm::PackedBInt8Bytes(cl.gemm_k, cl.gemm_n);
          cl.qmeta_offset = qmeta;
          qmeta += cl.gemm_n;
          const uint64_t k4 = gemm::RoundUpK4(cl.gemm_k);
          scratch = std::max<uint64_t>(scratch, k4 / 4);
          compiled.max_dense_k4_ = std::max(compiled.max_dense_k4_, k4);
        } else {
          cl.bias_offset = cl.weight_offset +
                           static_cast<uint64_t>(cl.gemm_k) * cl.gemm_n;
          if (options.pack_weights) {
            cl.packed_offset = packed_floats;
            packed_floats += gemm::PackedBElements(cl.gemm_k, cl.gemm_n);
          }
        }
        break;
      }
      default:
        break;
    }
    compiled.layers_.push_back(cl);
  }
  compiled.total_elements_ = cursor;
  compiled.scratch_elements_ = scratch;

  // Second pass: lay every Dense/Conv B matrix into its panel slice. This is
  // the compile-once cost; Execute never touches the row-major copies again.
  if (options.pack_weights && packed_floats > 0) {
    compiled.packed_.resize(packed_floats);
    for (const CompiledLayer& cl : compiled.layers_) {
      if (cl.packed_offset == CompiledLayer::kNotPacked) continue;
      gemm::PackB(g.weights.data() + cl.weight_offset, cl.gemm_k, cl.gemm_n,
                  compiled.packed_.data() + cl.packed_offset);
    }
  }
  // Int8 artifacts: K-grouped panels + per-output-channel scales and column
  // sums, shared read-only by every TCS slot like the fp32 panels.
  if (qpacked_bytes > 0) {
    compiled.packed_q_.resize(qpacked_bytes);
    compiled.qscales_.resize(qmeta);
    compiled.qcolsums_.resize(qmeta);
    for (size_t li = 0; li < compiled.layers_.size(); ++li) {
      const CompiledLayer& cl = compiled.layers_[li];
      if (cl.qpacked_offset == CompiledLayer::kNotPacked) continue;
      const model::LayerQuant& lq = *quant_for[li];
      gemm::PackBInt8(lq.weights.data(), cl.gemm_k, cl.gemm_n,
                      compiled.packed_q_.data() + cl.qpacked_offset);
      std::copy(lq.scales.begin(), lq.scales.end(),
                compiled.qscales_.begin() + cl.qmeta_offset);
      gemm::Int8ColumnSums(lq.weights.data(), cl.gemm_k, cl.gemm_n,
                           compiled.qcolsums_.data() + cl.qmeta_offset);
    }
  }
  return compiled;
}

uint64_t CompiledModel::output_elements() const {
  return layers_.empty() ? 0 : layers_.back().out_elems;
}

int CompiledModel::batch_scratch_lanes(int batch) const {
  return std::max(1, std::min(batch, ParallelismDegree()));
}

void CompiledModel::RunLayerSample(const CompiledLayer& layer, const float* in0,
                                   const float* in1, float* out,
                                   float* scratch) const {
  switch (layer.kind) {
    case LayerKind::kInput:
      break;  // handled by the caller (needs the request payload)
    case LayerKind::kConv2d:
      if (layer.qpacked_offset != CompiledLayer::kNotPacked) {
        // Int8 tier: dynamically quantize the input tensor into the u8
        // staging region, then run the im2col + int8 GEMM pipeline; the
        // epilogue dequantizes straight into the fp32 activation slot.
        uint8_t* q_in = reinterpret_cast<uint8_t*>(scratch);
        const gemm::ActQuant aq =
            gemm::QuantizeActivations(in0, layer.in_elems, q_in);
        uint8_t* conv_scratch = q_in + ((layer.in_elems + 3) & ~uint64_t{3});
        gemm::Conv2dGemmInt8Prepacked(
            q_in, aq, layer.in_shape, layer_qpacked(layer),
            layer_qscales(layer), layer_qcolsums(layer), layer_bias(layer),
            layer.kernel, layer.stride, layer.out_channels, out, conv_scratch);
      } else if (layer.packed_offset != CompiledLayer::kNotPacked) {
        gemm::Conv2dGemmPrepacked(in0, layer.in_shape, layer_packed(layer),
                                  layer_bias(layer), layer.kernel, layer.stride,
                                  layer.out_channels, out, scratch);
      } else {
        gemm::Conv2dGemm(in0, layer.in_shape, layer_weights(layer), layer.kernel,
                         layer.stride, layer.out_channels, out, scratch);
      }
      break;
    case LayerKind::kDepthwiseConv2d:
      gemm::DepthwiseConv2d(in0, layer.in_shape, layer_weights(layer),
                            layer.kernel, layer.stride, out);
      break;
    case LayerKind::kDense:
      if (layer.qpacked_offset != CompiledLayer::kNotPacked) {
        uint8_t* q_in = reinterpret_cast<uint8_t*>(scratch);
        const int k = layer.gemm_k;
        const int k4 = gemm::RoundUpK4(k);
        const gemm::ActQuant aq =
            gemm::QuantizeActivations(in0, layer.in_elems, q_in);
        if (k4 > k) std::memset(q_in + k, 0, k4 - k);  // pad x packed zeros
        const float a_scale = aq.scale;
        const int32_t a_zp = aq.zero_point;
        gemm::GemmInt8Prepacked(q_in, k4, &a_scale, &a_zp,
                                layer_qpacked(layer), layer_qscales(layer),
                                layer_qcolsums(layer), layer_bias(layer), out,
                                1, layer.gemm_n, k);
      } else if (layer.packed_offset != CompiledLayer::kNotPacked) {
        gemm::GemmPrepacked(in0, layer_packed(layer), layer_bias(layer), out, 1,
                            layer.gemm_n, layer.gemm_k);
      } else {
        ops::Dense(in0, layer.in_elems, layer_weights(layer), layer.units, out);
      }
      break;
    case LayerKind::kRelu:
      ops::Relu(in0, layer.in_elems, out);
      break;
    case LayerKind::kMaxPool:
      ops::MaxPool2x2(in0, layer.in_shape, out);
      break;
    case LayerKind::kGlobalAvgPool:
      ops::GlobalAvgPool(in0, layer.in_shape, out);
      break;
    case LayerKind::kAdd:
      ops::Add(in0, in1, layer.in_elems, out);
      break;
    case LayerKind::kConcat:
      ops::ConcatChannels(in0, layer.in_shape, in1, layer.in1_shape, out);
      break;
    case LayerKind::kSoftmax:
      ops::Softmax(in0, layer.in_elems, out);
      break;
  }
}

Status CompiledModel::ExecuteInto(ByteSpan input, float* arena,
                                  float* out) const {
  const size_t input_bytes = graph_.input_shape.elements() * sizeof(float);
  if (input.size() != input_bytes) {
    return Status::InvalidArgument(
        "input size mismatch: want " + std::to_string(input_bytes) +
        " bytes, got " + std::to_string(input.size()));
  }

  // The shared conv scratch region sits after the last activation slot.
  float* scratch = arena + total_elements_;

  for (const CompiledLayer& layer : layers_) {
    float* dst = arena + layer.arena_offset;
    if (layer.kind == LayerKind::kInput) {
      std::memcpy(dst, input.data(), input_bytes);
      continue;
    }
    const float* in0 = arena + layers_[layer.in0].arena_offset;
    const float* in1 =
        layer.in1 >= 0 ? arena + layers_[layer.in1].arena_offset : nullptr;
    RunLayerSample(layer, in0, in1, dst, scratch);
  }

  std::memcpy(out, arena + layers_.back().arena_offset,
              output_elements() * sizeof(float));
  return Status::OK();
}

Result<Bytes> CompiledModel::Execute(ByteSpan input, float* arena) const {
  Bytes out(output_elements() * sizeof(float));
  SESEMI_RETURN_IF_ERROR(
      ExecuteInto(input, arena, reinterpret_cast<float*>(out.data())));
  return out;
}

Status CompiledModel::ExecuteBatch(const std::vector<ByteSpan>& inputs,
                                   float* arena,
                                   std::vector<Bytes>* outputs) const {
  const int batch = static_cast<int>(inputs.size());
  if (batch == 0) return Status::InvalidArgument("empty batch");
  const size_t input_bytes = graph_.input_shape.elements() * sizeof(float);
  for (const ByteSpan& input : inputs) {
    if (input.size() != input_bytes) {
      return Status::InvalidArgument(
          "batched input size mismatch: want " + std::to_string(input_bytes) +
          " bytes, got " + std::to_string(input.size()));
    }
  }

  // Batch-major slot layout: layer i's activations live at
  // arena[offset(i)*batch + b*out_elems], so one layer's rows for the whole
  // batch are contiguous — that contiguity is what turns Dense into a single
  // M=batch GEMM.
  float* scratch_base = arena + total_elements_ * batch;
  // Quantized-Dense staging lives after the scratch lanes (sized by
  // quant_batch_elements; unused and zero-sized for fp32 models).
  float* quant_base = scratch_base +
                      scratch_elements_ * static_cast<uint64_t>(
                                              batch_scratch_lanes(batch));
  auto slot = [&](int32_t layer) {
    return arena + layers_[layer].arena_offset * batch;
  };

  // Spatial layers loop per sample; when workers are idle the batch dimension
  // fans out over the fork-join pool, each chunk on its own im2col scratch
  // lane (chunk starts are multiples of the grain, so b0/grain indexes lanes
  // without collisions). Samples are independent and each one runs the exact
  // per-sample kernels, so outputs do not depend on the carve-up.
  const int lanes = batch_scratch_lanes(batch);
  const int64_t grain = (batch + lanes - 1) / lanes;
  // Generic over the body so no type-erased std::function is constructed —
  // ExecuteBatch stays off the allocator for everything but its outputs.
  auto for_each_sample = [&](auto&& body) {
    if (lanes > 1) {
      ParallelFor(0, batch, grain, [&](int64_t b0, int64_t b1) {
        float* lane_scratch = scratch_base + (b0 / grain) * scratch_elements_;
        for (int64_t b = b0; b < b1; ++b) body(static_cast<int>(b), lane_scratch);
      });
    } else {
      for (int b = 0; b < batch; ++b) body(b, scratch_base);
    }
  };

  for (const CompiledLayer& layer : layers_) {
    float* out = arena + layer.arena_offset * batch;
    const uint64_t out_elems = layer.out_elems;
    switch (layer.kind) {
      case LayerKind::kInput:
        for_each_sample([&](int b, float*) {
          std::memcpy(out + b * out_elems, inputs[b].data(), input_bytes);
        });
        break;
      case LayerKind::kDense: {
        // The whole batch in one GEMM: rows are the per-sample feature
        // vectors, already contiguous in the batch-major slot.
        const float* in0 = slot(layer.in0);
        if (layer.qpacked_offset != CompiledLayer::kNotPacked) {
          // Int8 tier: per-row dynamic quantization into the batch staging
          // region (u7 rows padded to the k-group, then the per-row scale and
          // zero-point arrays), one M=batch int8 GEMM.
          const int k = layer.gemm_k;
          const int k4 = gemm::RoundUpK4(k);
          uint8_t* qrows = reinterpret_cast<uint8_t*>(quant_base);
          float* a_scales = reinterpret_cast<float*>(
              qrows + static_cast<size_t>(batch) * k4);
          int32_t* a_zps = reinterpret_cast<int32_t*>(a_scales + batch);
          for (int b = 0; b < batch; ++b) {
            uint8_t* row = qrows + static_cast<size_t>(b) * k4;
            const gemm::ActQuant aq =
                gemm::QuantizeActivations(in0 + static_cast<size_t>(b) * k,
                                          static_cast<size_t>(k), row);
            if (k4 > k) std::memset(row + k, 0, k4 - k);
            a_scales[b] = aq.scale;
            a_zps[b] = aq.zero_point;
          }
          gemm::GemmInt8Prepacked(qrows, k4, a_scales, a_zps,
                                  layer_qpacked(layer), layer_qscales(layer),
                                  layer_qcolsums(layer), layer_bias(layer),
                                  out, batch, layer.gemm_n, k);
        } else if (layer.packed_offset != CompiledLayer::kNotPacked) {
          gemm::GemmPrepacked(in0, layer_packed(layer), layer_bias(layer), out,
                              batch, layer.gemm_n, layer.gemm_k);
        } else {
          gemm::Gemm(in0, layer_weights(layer), layer_bias(layer), out, batch,
                     layer.gemm_n, layer.gemm_k);
        }
        break;
      }
      case LayerKind::kRelu:
        ops::Relu(slot(layer.in0), layer.in_elems * batch, out);
        break;
      case LayerKind::kAdd:
        ops::Add(slot(layer.in0), slot(layer.in1), layer.in_elems * batch, out);
        break;
      default: {
        const float* in0 = slot(layer.in0);
        const float* in1 = layer.in1 >= 0 ? slot(layer.in1) : nullptr;
        for_each_sample([&](int b, float* lane_scratch) {
          RunLayerSample(layer, in0 + b * layer.in_elems,
                         in1 != nullptr ? in1 + b * layer.in1_elems : nullptr,
                         out + b * out_elems, lane_scratch);
        });
        break;
      }
    }
  }

  const uint64_t final_elems = output_elements();
  const float* result = slot(static_cast<int32_t>(layers_.size()) - 1);
  outputs->clear();
  outputs->reserve(batch);
  for (int b = 0; b < batch; ++b) {
    Bytes out_bytes(final_elems * sizeof(float));
    std::memcpy(out_bytes.data(), result + b * final_elems, out_bytes.size());
    outputs->push_back(std::move(out_bytes));
  }
  return Status::OK();
}

}  // namespace sesemi::inference
