#include "inference/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "inference/gemm.h"

namespace sesemi::inference::ops {

size_t Conv2dScratchElements(const TensorShape& in_shape, int kernel, int stride) {
  return gemm::Conv2dScratchElements(in_shape, kernel, stride);
}

void Conv2d(const float* in, const TensorShape& in_shape, const float* weights,
            int kernel, int stride, int out_c, float* out, float* scratch) {
  gemm::Conv2dGemm(in, in_shape, weights, kernel, stride, out_c, out, scratch);
}

void Conv2d(const float* in, const TensorShape& in_shape, const float* weights,
            int kernel, int stride, int out_c, float* out) {
  std::vector<float> scratch(Conv2dScratchElements(in_shape, kernel, stride));
  Conv2d(in, in_shape, weights, kernel, stride, out_c, out, scratch.data());
}

void Conv2dNaive(const float* in, const TensorShape& in_shape,
                 const float* weights, int kernel, int stride, int out_c,
                 float* out) {
  const int pad = (kernel - 1) / 2;
  const int out_h = (in_shape.h + stride - 1) / stride;
  const int out_w = (in_shape.w + stride - 1) / stride;
  const float* bias = weights + static_cast<size_t>(kernel) * kernel * in_shape.c * out_c;

  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      float* out_px = out + (static_cast<size_t>(oy) * out_w + ox) * out_c;
      for (int oc = 0; oc < out_c; ++oc) out_px[oc] = bias[oc];
      for (int ky = 0; ky < kernel; ++ky) {
        const int iy = oy * stride + ky - pad;
        if (iy < 0 || iy >= in_shape.h) continue;
        for (int kx = 0; kx < kernel; ++kx) {
          const int ix = ox * stride + kx - pad;
          if (ix < 0 || ix >= in_shape.w) continue;
          const float* in_px =
              in + (static_cast<size_t>(iy) * in_shape.w + ix) * in_shape.c;
          const float* w_px =
              weights +
              ((static_cast<size_t>(ky) * kernel + kx) * in_shape.c) * out_c;
          for (int ic = 0; ic < in_shape.c; ++ic) {
            const float v = in_px[ic];
            const float* w_row = w_px + static_cast<size_t>(ic) * out_c;
            for (int oc = 0; oc < out_c; ++oc) out_px[oc] += v * w_row[oc];
          }
        }
      }
    }
  }
}

void DepthwiseConv2d(const float* in, const TensorShape& in_shape,
                     const float* weights, int kernel, int stride, float* out) {
  gemm::DepthwiseConv2d(in, in_shape, weights, kernel, stride, out);
}

void DepthwiseConv2dNaive(const float* in, const TensorShape& in_shape,
                          const float* weights, int kernel, int stride,
                          float* out) {
  const int pad = (kernel - 1) / 2;
  const int out_h = (in_shape.h + stride - 1) / stride;
  const int out_w = (in_shape.w + stride - 1) / stride;
  const int c = in_shape.c;
  const float* bias = weights + static_cast<size_t>(kernel) * kernel * c;

  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      float* out_px = out + (static_cast<size_t>(oy) * out_w + ox) * c;
      for (int ch = 0; ch < c; ++ch) out_px[ch] = bias[ch];
      for (int ky = 0; ky < kernel; ++ky) {
        const int iy = oy * stride + ky - pad;
        if (iy < 0 || iy >= in_shape.h) continue;
        for (int kx = 0; kx < kernel; ++kx) {
          const int ix = ox * stride + kx - pad;
          if (ix < 0 || ix >= in_shape.w) continue;
          const float* in_px =
              in + (static_cast<size_t>(iy) * in_shape.w + ix) * c;
          const float* w_px = weights + (static_cast<size_t>(ky) * kernel + kx) * c;
          for (int ch = 0; ch < c; ++ch) out_px[ch] += in_px[ch] * w_px[ch];
        }
      }
    }
  }
}

void Dense(const float* in, size_t in_features, const float* weights, int units,
           float* out) {
  const float* bias = weights + in_features * static_cast<size_t>(units);
  gemm::Gemm(in, weights, bias, out, 1, units, static_cast<int>(in_features));
}

void DenseNaive(const float* in, size_t in_features, const float* weights,
                int units, float* out) {
  const float* bias = weights + in_features * static_cast<size_t>(units);
  for (int u = 0; u < units; ++u) out[u] = bias[u];
  for (size_t i = 0; i < in_features; ++i) {
    const float v = in[i];
    if (v == 0.0f) continue;  // post-ReLU inputs are sparse
    const float* w_row = weights + i * static_cast<size_t>(units);
    for (int u = 0; u < units; ++u) out[u] += v * w_row[u];
  }
}

void Relu(const float* in, size_t n, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

void MaxPool2x2(const float* in, const TensorShape& in_shape, float* out) {
  const int out_h = (in_shape.h + 1) / 2;
  const int out_w = (in_shape.w + 1) / 2;
  const int c = in_shape.c;
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      float* out_px = out + (static_cast<size_t>(oy) * out_w + ox) * c;
      for (int ch = 0; ch < c; ++ch) {
        float best = -INFINITY;
        for (int dy = 0; dy < 2; ++dy) {
          const int iy = oy * 2 + dy;
          if (iy >= in_shape.h) continue;
          for (int dx = 0; dx < 2; ++dx) {
            const int ix = ox * 2 + dx;
            if (ix >= in_shape.w) continue;
            best = std::max(
                best, in[(static_cast<size_t>(iy) * in_shape.w + ix) * c + ch]);
          }
        }
        out_px[ch] = best;
      }
    }
  }
}

void GlobalAvgPool(const float* in, const TensorShape& in_shape, float* out) {
  const int c = in_shape.c;
  const size_t pixels = static_cast<size_t>(in_shape.h) * in_shape.w;
  for (int ch = 0; ch < c; ++ch) out[ch] = 0.0f;
  for (size_t p = 0; p < pixels; ++p) {
    const float* px = in + p * c;
    for (int ch = 0; ch < c; ++ch) out[ch] += px[ch];
  }
  const float inv = 1.0f / static_cast<float>(pixels);
  for (int ch = 0; ch < c; ++ch) out[ch] *= inv;
}

void Add(const float* a, const float* b, size_t n, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void ConcatChannels(const float* a, const TensorShape& a_shape, const float* b,
                    const TensorShape& b_shape, float* out) {
  const size_t pixels = static_cast<size_t>(a_shape.h) * a_shape.w;
  const int ac = a_shape.c;
  const int bc = b_shape.c;
  for (size_t p = 0; p < pixels; ++p) {
    float* out_px = out + p * (ac + bc);
    const float* a_px = a + p * ac;
    const float* b_px = b + p * bc;
    std::copy(a_px, a_px + ac, out_px);
    std::copy(b_px, b_px + bc, out_px + ac);
  }
}

void Softmax(const float* in, size_t n, float* out) {
  float max_v = -INFINITY;
  for (size_t i = 0; i < n; ++i) max_v = std::max(max_v, in[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::exp(in[i] - max_v);
    sum += out[i];
  }
  const float inv = 1.0f / sum;
  for (size_t i = 0; i < n; ++i) out[i] *= inv;
}

}  // namespace sesemi::inference::ops
