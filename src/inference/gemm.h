#ifndef SESEMI_INFERENCE_GEMM_H_
#define SESEMI_INFERENCE_GEMM_H_

#include <cstddef>

#include "model/graph.h"

namespace sesemi::inference::gemm {

using model::TensorShape;

/// C (M x N) = A (M x K, row-major) * B (K x N, row-major), with C[m][n]
/// seeded from bias[n] (bias == nullptr seeds zero). Register-blocked
/// micro-kernels with an AVX2+FMA variant selected at runtime; the k loop
/// runs strictly ascending per output element, so results match the naive
/// triple loop up to FMA rounding. Outer row panels are spread across the
/// process thread pool when the problem is large enough to amortize it.
void Gemm(const float* a, const float* b, const float* bias, float* c, int m,
          int n, int k);

/// Write the im2col patch rows for output pixels [m0, m1) of a same-padding
/// convolution: row m holds the kernel*kernel*in_c input window of output
/// pixel m (out-of-bounds taps zero-filled), matching the w[ky][kx][ic][oc]
/// weight layout so convolution becomes patch-matrix x weight-matrix.
void Im2ColRows(const float* in, const TensorShape& in_shape, int kernel,
                int stride, int out_w, int m0, int m1, float* patch);

/// Elements of scratch Conv2dGemm wants for one im2col row tile of this
/// layer (bounded by a fixed L2-friendly budget, never smaller than one row).
size_t Conv2dScratchElements(const TensorShape& in_shape, int kernel, int stride);

/// Same-padding convolution via im2col + blocked GEMM. `scratch` must hold at
/// least Conv2dScratchElements(in_shape, kernel) floats.
void Conv2dGemm(const float* in, const TensorShape& in_shape,
                const float* weights, int kernel, int stride, int out_c,
                float* out, float* scratch);

// --------------------------------------------------------------- pre-packing
// MODEL_LOAD-time weight layout (the compile-once half of the pipeline): B is
// repacked once into column panels of 16 — panel p holds the K rows of
// columns [16p, 16p+16) back-to-back, zero-padded on the ragged right edge —
// so the micro-kernel's per-k loads become a single contiguous forward stream
// instead of stride-N row hops. The kernels below consume that layout; per-
// element accumulation order (ascending k) is unchanged, so results match the
// unpacked Gemm bit-for-bit on full panels and to FMA rounding vs the naive
// loops.

/// Width of a packed column panel (the micro-kernel's N blocking).
inline constexpr int kPackPanelWidth = 16;

/// Floats PackB writes for a K x N matrix: ceil(n/16) panels of k*16.
size_t PackedBElements(int k, int n);

/// Repack row-major B (K x N) into the panel layout. `packed` must hold
/// PackedBElements(k, n) floats.
void PackB(const float* b, int k, int n, float* packed);

/// C (M x N) = A (M x K) * packed-B, bias-seeded like Gemm. `packed_b` is the
/// PackB layout. M == 1 rides a panel-streaming GEMV over the same layout;
/// M > 1 runs the register-blocked micro-kernels with row panels spread over
/// the process pool exactly like Gemm.
void GemmPrepacked(const float* a, const float* packed_b, const float* bias,
                   float* c, int m, int n, int k);

/// Same-padding convolution over a pre-packed weight matrix: im2col row tiles
/// (identical tiling to Conv2dGemm) multiplied against the PackB layout of
/// the w[ky][kx][ic][oc] matrix. `bias` points at the out_c conv biases
/// (packed separately from the panels). `scratch` as for Conv2dGemm.
void Conv2dGemmPrepacked(const float* in, const TensorShape& in_shape,
                         const float* packed_weights, const float* bias,
                         int kernel, int stride, int out_c, float* out,
                         float* scratch);

/// Same-padding depthwise convolution (channel multiplier 1) on the fast
/// path: each output row is a panel of per-channel GEMV strips — the channel
/// dimension is contiguous in HWC, so every (ky,kx) tap is one fused
/// multiply-add sweep over the channel vector (AVX2+FMA when available,
/// auto-vectorizable scalar otherwise) — and row panels fan out over the
/// process fork-join pool exactly like Gemm's row panels. Tap accumulation
/// order matches the naive kernel, so results agree up to FMA rounding.
/// Weight layout: w[ky][kx][c], followed by c biases.
void DepthwiseConv2d(const float* in, const TensorShape& in_shape,
                     const float* weights, int kernel, int stride, float* out);

}  // namespace sesemi::inference::gemm

#endif  // SESEMI_INFERENCE_GEMM_H_
