#ifndef SESEMI_INFERENCE_GEMM_H_
#define SESEMI_INFERENCE_GEMM_H_

#include <cstddef>
#include <cstdint>

#include "model/graph.h"

namespace sesemi::inference::gemm {

using model::TensorShape;

/// C (M x N) = A (M x K, row-major) * B (K x N, row-major), with C[m][n]
/// seeded from bias[n] (bias == nullptr seeds zero). Register-blocked
/// micro-kernels with an AVX2+FMA variant selected at runtime; the k loop
/// runs strictly ascending per output element, so results match the naive
/// triple loop up to FMA rounding. Outer row panels are spread across the
/// process thread pool when the problem is large enough to amortize it.
void Gemm(const float* a, const float* b, const float* bias, float* c, int m,
          int n, int k);

/// Write the im2col patch rows for output pixels [m0, m1) of a same-padding
/// convolution: row m holds the kernel*kernel*in_c input window of output
/// pixel m (out-of-bounds taps zero-filled), matching the w[ky][kx][ic][oc]
/// weight layout so convolution becomes patch-matrix x weight-matrix.
void Im2ColRows(const float* in, const TensorShape& in_shape, int kernel,
                int stride, int out_w, int m0, int m1, float* patch);

/// Elements of scratch Conv2dGemm wants for one im2col row tile of this
/// layer (bounded by a fixed L2-friendly budget, never smaller than one row).
size_t Conv2dScratchElements(const TensorShape& in_shape, int kernel, int stride);

/// Same-padding convolution via im2col + blocked GEMM. `scratch` must hold at
/// least Conv2dScratchElements(in_shape, kernel) floats.
void Conv2dGemm(const float* in, const TensorShape& in_shape,
                const float* weights, int kernel, int stride, int out_c,
                float* out, float* scratch);

// --------------------------------------------------------------- pre-packing
// MODEL_LOAD-time weight layout (the compile-once half of the pipeline): B is
// repacked once into column panels of 16 — panel p holds the K rows of
// columns [16p, 16p+16) back-to-back, zero-padded on the ragged right edge —
// so the micro-kernel's per-k loads become a single contiguous forward stream
// instead of stride-N row hops. The kernels below consume that layout; per-
// element accumulation order (ascending k) is unchanged, so results match the
// unpacked Gemm bit-for-bit on full panels and to FMA rounding vs the naive
// loops.

/// Width of a packed column panel (the micro-kernel's N blocking).
inline constexpr int kPackPanelWidth = 16;

/// Floats PackB writes for a K x N matrix: ceil(n/16) panels of k*16.
size_t PackedBElements(int k, int n);

/// Repack row-major B (K x N) into the panel layout. `packed` must hold
/// PackedBElements(k, n) floats.
void PackB(const float* b, int k, int n, float* packed);

/// C (M x N) = A (M x K) * packed-B, bias-seeded like Gemm. `packed_b` is the
/// PackB layout. M == 1 rides a panel-streaming GEMV over the same layout;
/// M > 1 runs the register-blocked micro-kernels with row panels spread over
/// the process pool exactly like Gemm.
void GemmPrepacked(const float* a, const float* packed_b, const float* bias,
                   float* c, int m, int n, int k);

/// Same-padding convolution over a pre-packed weight matrix: im2col row tiles
/// (identical tiling to Conv2dGemm) multiplied against the PackB layout of
/// the w[ky][kx][ic][oc] matrix. `bias` points at the out_c conv biases
/// (packed separately from the panels). `scratch` as for Conv2dGemm.
void Conv2dGemmPrepacked(const float* in, const TensorShape& in_shape,
                         const float* packed_weights, const float* bias,
                         int kernel, int stride, int out_c, float* out,
                         float* scratch);

// ----------------------------------------------------------------- int8 tier
// Quantized GEMM: unsigned 7-bit activations ([0, 127] with a per-tensor
// zero-point) against signed 8-bit weights ([-127, 127], symmetric per-output-
// channel scales). The u7 x s8 pairing keeps every AVX2 `vpmaddubsw` pair sum
// below INT16_MAX (127*127*2 = 32258), so int32 accumulation is EXACT on all
// tiers — portable, AVX2 maddubs/madd, and AVX-512 VNNI vpdpbusd produce
// bit-identical accumulators, and the shared fma-based epilogue makes the
// fp32 outputs bit-identical across tiers too. The activation zero-point is
// folded out with precomputed per-column weight sums:
//   real ~= a_scale * w_scale[n] * (acc[m][n] - a_zp * colsum[n]) + bias[n].

/// Instruction tier for the int8 kernels. kAuto follows ActiveGemmIsa();
/// tests and benches pin a tier to compare them in one process. Pinning a
/// tier the CPU lacks silently runs portable (the reference all tiers match).
enum class GemmIsa {
  kAuto = 0,    ///< resolve at startup: widest available tier
  kPortable,    ///< scalar reference kernel (exact, like the SIMD tiers)
  kAvx2,        ///< vpmaddubsw + vpmaddwd pair-sum kernel
  kAvx512Vnni,  ///< vpdpbusd 4-way dot-product kernel
};

const char* ToString(GemmIsa isa);

/// True when this build and CPU can run `isa` (kAuto/kPortable always can).
bool GemmIsaAvailable(GemmIsa isa);

/// The tier kAuto resolves to, decided once per process: portable when
/// SESEMI_FORCE_PORTABLE is set non-empty (and not "0"), else the widest
/// tier the CPU supports.
GemmIsa ActiveGemmIsa();

/// K-group of the int8 packed layout: vpdpbusd consumes 4 consecutive k bytes
/// per lane, so panels interleave K in groups of 4 (zero-padded).
inline constexpr int kInt8KGroup = 4;

/// K rounded up to the packed k-group. Quantized A rows must be laid out with
/// a stride of at least this many bytes (the pad bytes multiply packed-B
/// zeros, so their value never reaches the result).
inline constexpr int RoundUpK4(int k) {
  return (k + kInt8KGroup - 1) / kInt8KGroup * kInt8KGroup;
}

/// Per-tensor activation quantization parameters: x ~= (q - zero_point) * scale
/// with q in [0, 127].
struct ActQuant {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

/// Bytes PackBInt8 writes for a K x N int8 matrix: ceil(n/16) panels of
/// RoundUpK4(k) rows x 16 columns.
size_t PackedBInt8Bytes(int k, int n);

/// Repack row-major int8 B (K x N) into K-grouped panels: panel p holds
/// columns [16p, 16p+16); within a panel, each 64-byte group interleaves 4
/// consecutive k rows column-major (byte n*4+ki = B[4g+ki][16p+n]), which is
/// exactly one vpdpbusd operand. Ragged K and N edges are zero-padded.
void PackBInt8(const int8_t* b, int k, int n, int8_t* packed);

/// Per-column sums of B over the real K rows (the zero-point correction term).
void Int8ColumnSums(const int8_t* b, int k, int n, int32_t* colsums);

/// Dynamically quantize `count` activations to u7: scale = max(|x|, eps)/127
/// mapped so the tensor range [lo, hi] covers [0, 127] with an integer
/// zero-point. Writes the quantized bytes and returns the parameters.
ActQuant QuantizeActivations(const float* x, size_t count, uint8_t* out);

/// C (M x N, fp32) = dequant(Aq (M x lda) x packed int8 B), with per-row
/// activation params (a_scales[i], a_zero_points[i] for row i), per-column
/// weight scales and column sums, bias seeding (nullptr seeds zero). `lda`
/// must be >= RoundUpK4(k) and rows padded to it with initialized bytes.
/// Accumulation is exact int32; the epilogue uses fma so all tiers produce
/// bit-identical fp32 outputs.
void GemmInt8Prepacked(const uint8_t* a, int lda, const float* a_scales,
                       const int32_t* a_zero_points, const int8_t* packed_b,
                       const float* w_scales, const int32_t* w_colsums,
                       const float* bias, float* c, int m, int n, int k,
                       GemmIsa isa = GemmIsa::kAuto);

/// As GemmInt8Prepacked, but the epilogue saturating-requantizes to int8:
/// q = clamp(round(v / out.scale) + out.zero_point, -128, 127).
void GemmInt8PrepackedRequant(const uint8_t* a, int lda, const float* a_scales,
                              const int32_t* a_zero_points,
                              const int8_t* packed_b, const float* w_scales,
                              const int32_t* w_colsums, const float* bias,
                              const ActQuant& out, int8_t* c, int m, int n,
                              int k, GemmIsa isa = GemmIsa::kAuto);

/// Bytes of u8 im2col scratch Conv2dGemmInt8Prepacked wants (same row-tile
/// policy as the fp32 path, rows padded to RoundUpK4).
size_t Conv2dScratchBytesInt8(const TensorShape& in_shape, int kernel, int stride);

/// Im2col over a quantized u8 input: identical geometry to Im2ColRows, but
/// out-of-bounds taps fill with `pad_value` (the activation zero-point, which
/// the colsum correction cancels exactly — a quantized zero). Rows are laid
/// out with stride RoundUpK4(kernel*kernel*c), pad bytes set to `pad_value`.
void Im2ColRowsU8(const uint8_t* in, const TensorShape& in_shape, int kernel,
                  int stride, int out_w, int m0, int m1, uint8_t pad_value,
                  uint8_t* patch);

/// Same-padding convolution over pre-packed int8 weights: the input arrives
/// already quantized (one ActQuant for the whole tensor), im2col tiles feed
/// the int8 GEMM, output dequantizes to fp32. `w_scales`/`w_colsums` have
/// out_c entries (per output channel); `scratch` must hold
/// Conv2dScratchBytesInt8 bytes.
void Conv2dGemmInt8Prepacked(const uint8_t* in_q, const ActQuant& in_quant,
                             const TensorShape& in_shape,
                             const int8_t* packed_w, const float* w_scales,
                             const int32_t* w_colsums, const float* bias,
                             int kernel, int stride, int out_c, float* out,
                             uint8_t* scratch, GemmIsa isa = GemmIsa::kAuto);

/// Same-padding depthwise convolution (channel multiplier 1) on the fast
/// path: each output row is a panel of per-channel GEMV strips — the channel
/// dimension is contiguous in HWC, so every (ky,kx) tap is one fused
/// multiply-add sweep over the channel vector (AVX2+FMA when available,
/// auto-vectorizable scalar otherwise) — and row panels fan out over the
/// process fork-join pool exactly like Gemm's row panels. Tap accumulation
/// order matches the naive kernel, so results agree up to FMA rounding.
/// Weight layout: w[ky][kx][c], followed by c biases.
void DepthwiseConv2d(const float* in, const TensorShape& in_shape,
                     const float* weights, int kernel, int stride, float* out);

}  // namespace sesemi::inference::gemm

#endif  // SESEMI_INFERENCE_GEMM_H_
