#ifndef SESEMI_INFERENCE_FRAMEWORK_H_
#define SESEMI_INFERENCE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/graph.h"

namespace sesemi::inference {

/// The two inference frameworks the paper integrates with SeMIRT (§V):
/// TFLM (TensorFlow Lite Micro — an interpreter with a small scratch arena)
/// and TVM (an ahead-of-time graph executor whose runtime buffers also hold
/// packed copies of the weights). The contrast in buffer footprint and
/// init/exec cost is load-bearing for Figures 8-12.
enum class FrameworkKind { kTflm, kTvm };

const char* ToString(FrameworkKind kind);
Result<FrameworkKind> FrameworkFromString(const std::string& name);

/// A decrypted, deserialized model held in (enclave) memory — the product of
/// the MODEL_LOAD inference API (Figure 5). Shared by all runtimes in the
/// enclave; SeMIRT keeps exactly one per enclave at a time.
class LoadedModel {
 public:
  virtual ~LoadedModel() = default;
  virtual const model::ModelGraph& graph() const = 0;
  /// Trusted-heap bytes this object accounts for.
  virtual uint64_t memory_bytes() const = 0;
};

/// A per-thread model runtime — the product of RUNTIME_INIT. Owns the
/// framework-specific execution buffers (TCS-local in SeMIRT).
class ModelRuntime {
 public:
  virtual ~ModelRuntime() = default;
  virtual const std::string& model_id() const = 0;
  /// Trusted-heap bytes of this runtime's buffers (Table I buffer sizes).
  virtual uint64_t buffer_bytes() const = 0;
  /// MODEL_EXEC + PREPARE_OUTPUT: run inference on a raw float32 input and
  /// serialize the output scores as raw float32.
  virtual Result<Bytes> Execute(ByteSpan input) = 0;

  /// Batched MODEL_EXEC for the scheduler's same-model coalescer: one call,
  /// `inputs.size()` samples, outputs in input order and numerically equal to
  /// per-sample Execute. The base implementation loops Execute; the executor-
  /// backed runtimes override it to feed the batch dimension through the
  /// multi-row GEMM path (see CompiledModel::ExecuteBatch). The batch
  /// activation arena is transient per call — it is working-set scratch, not
  /// part of the runtime's resident buffer_bytes() footprint.
  virtual Result<std::vector<Bytes>> ExecuteBatch(const std::vector<ByteSpan>& inputs);
};

/// Factory for loaded models and runtimes; one implementation per framework.
class InferenceFramework {
 public:
  virtual ~InferenceFramework() = default;
  virtual FrameworkKind kind() const = 0;
  const char* name() const { return ToString(kind()); }

  /// MODEL_LOAD: parse (already decrypted) model bytes.
  virtual Result<std::shared_ptr<LoadedModel>> LoadModel(ByteSpan plain_model) const = 0;

  /// Wrap an in-memory graph without reserialization (fast path for tests
  /// and for SeMIRT, which decrypts straight to a graph).
  virtual Result<std::shared_ptr<LoadedModel>> WrapModel(model::ModelGraph graph) const = 0;

  /// RUNTIME_INIT: build a runtime over a loaded model.
  virtual Result<std::unique_ptr<ModelRuntime>> CreateRuntime(
      std::shared_ptr<const LoadedModel> loaded) const = 0;
};

/// Deployment-time framework configuration (part of the enclave identity
/// when SeMIRT creates the framework — see SemirtOptions).
struct FrameworkOptions {
  /// Compile models through the int8 tier (CompiledModel::Options::quantize):
  /// weights quantized at MODEL_LOAD, ~4x smaller resident artifacts,
  /// int8 GEMM execution. Version-2 (pre-quantized) model files always load
  /// quantized regardless of this flag — their fp32 matrices are not on the
  /// wire.
  bool quantize = false;
};

/// Create the framework implementation for `kind`.
std::unique_ptr<InferenceFramework> CreateFramework(FrameworkKind kind);
std::unique_ptr<InferenceFramework> CreateFramework(FrameworkKind kind,
                                                    const FrameworkOptions& options);

}  // namespace sesemi::inference

#endif  // SESEMI_INFERENCE_FRAMEWORK_H_
