#include "inference/framework.h"

namespace sesemi::inference {

std::unique_ptr<InferenceFramework> CreateTflmFramework(const FrameworkOptions& options);
std::unique_ptr<InferenceFramework> CreateTvmFramework(const FrameworkOptions& options);

Result<std::vector<Bytes>> ModelRuntime::ExecuteBatch(
    const std::vector<ByteSpan>& inputs) {
  std::vector<Bytes> outputs;
  outputs.reserve(inputs.size());
  for (const ByteSpan& input : inputs) {
    SESEMI_ASSIGN_OR_RETURN(Bytes out, Execute(input));
    outputs.push_back(std::move(out));
  }
  return outputs;
}

const char* ToString(FrameworkKind kind) {
  return kind == FrameworkKind::kTflm ? "tflm" : "tvm";
}

Result<FrameworkKind> FrameworkFromString(const std::string& name) {
  if (name == "tflm") return FrameworkKind::kTflm;
  if (name == "tvm") return FrameworkKind::kTvm;
  return Status::InvalidArgument("unknown framework: " + name);
}

std::unique_ptr<InferenceFramework> CreateFramework(FrameworkKind kind) {
  return CreateFramework(kind, FrameworkOptions());
}

std::unique_ptr<InferenceFramework> CreateFramework(FrameworkKind kind,
                                                    const FrameworkOptions& options) {
  return kind == FrameworkKind::kTflm ? CreateTflmFramework(options)
                                      : CreateTvmFramework(options);
}

}  // namespace sesemi::inference
