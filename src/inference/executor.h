#ifndef SESEMI_INFERENCE_EXECUTOR_H_
#define SESEMI_INFERENCE_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "model/graph.h"

namespace sesemi::inference {

/// Precomputed execution plan for a model graph: one arena slot per layer,
/// laid out back-to-back (DenseNet-style concat topologies keep many
/// activations live, so per-layer slots are the simple correct choice),
/// followed by one shared scratch region sized for the largest im2col row
/// tile any convolution needs — so the GEMM fast path never allocates
/// per-op at execution time.
///
/// Both frameworks execute through this plan; they differ in where the
/// weights live (µTFLM reads them in place from the loaded model, µTVM from
/// its own packed copy inside the runtime buffer).
class GraphExecutionPlan {
 public:
  /// Builds offsets for `graph`. The graph must already be validated.
  explicit GraphExecutionPlan(const model::ModelGraph& graph);

  /// Total floats of arena required (activation slots + conv scratch).
  uint64_t arena_elements() const { return total_elements_ + scratch_elements_; }
  uint64_t arena_bytes() const { return arena_elements() * sizeof(float); }

  /// Floats of the trailing scratch region inside the arena.
  uint64_t scratch_elements() const { return scratch_elements_; }

  /// Run the graph. `weights` must hold graph.weights.size() floats; `input`
  /// is raw float32 of the input shape; `arena` must provide arena_elements()
  /// floats. Returns the final layer's activation as raw float32 bytes.
  Result<Bytes> Execute(const model::ModelGraph& graph, const float* weights,
                        ByteSpan input, float* arena) const;

 private:
  std::vector<uint64_t> offsets_;
  uint64_t total_elements_;
  uint64_t scratch_elements_;
};

}  // namespace sesemi::inference

#endif  // SESEMI_INFERENCE_EXECUTOR_H_
