#ifndef SESEMI_INFERENCE_EXECUTOR_H_
#define SESEMI_INFERENCE_EXECUTOR_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "model/graph.h"

namespace sesemi::inference {

/// Precomputed execution plan for a model graph: one arena slot per layer,
/// laid out back-to-back (DenseNet-style concat topologies keep many
/// activations live, so per-layer slots are the simple correct choice),
/// followed by one shared scratch region sized for the largest im2col row
/// tile any convolution needs — so the GEMM fast path never allocates
/// per-op at execution time.
///
/// Both frameworks execute through this plan; they differ in where the
/// weights live (µTFLM reads them in place from the loaded model, µTVM from
/// its own packed copy inside the runtime buffer).
class GraphExecutionPlan {
 public:
  /// Builds offsets for `graph`. The graph must already be validated.
  explicit GraphExecutionPlan(const model::ModelGraph& graph);

  /// Total floats of arena required (activation slots + conv scratch).
  uint64_t arena_elements() const { return total_elements_ + scratch_elements_; }
  uint64_t arena_bytes() const { return arena_elements() * sizeof(float); }

  /// Floats of the trailing scratch region inside the arena.
  uint64_t scratch_elements() const { return scratch_elements_; }

  /// Run the graph. `weights` must hold graph.weights.size() floats; `input`
  /// is raw float32 of the input shape; `arena` must provide arena_elements()
  /// floats. Returns the final layer's activation as raw float32 bytes.
  Result<Bytes> Execute(const model::ModelGraph& graph, const float* weights,
                        ByteSpan input, float* arena) const;

  /// Arena floats a batched execution over `batch` samples needs: every
  /// activation slot is replicated per sample (batch-major: slot i holds
  /// [batch][elements] rows back-to-back) plus the one shared conv scratch.
  uint64_t batch_arena_elements(int batch) const {
    return total_elements_ * static_cast<uint64_t>(batch) + scratch_elements_;
  }

  /// Run the graph once for `inputs.size()` samples — the scheduler's
  /// same-model batch. The batch dimension rides the GEMM row panels where
  /// the layout allows it: each Dense layer becomes ONE M=batch GEMM over
  /// the contiguous [batch][features] slot rows (amortizing the weight-matrix
  /// streaming that dominates M=1 GEMV), and elementwise layers fuse into a
  /// single pass over batch*elements; spatial layers (conv/pool/concat) loop
  /// per sample through the shared scratch. Per-element accumulation order is
  /// identical to Execute, so outputs match the unbatched path.
  /// `arena` must hold batch_arena_elements(inputs.size()) floats.
  Status ExecuteBatch(const model::ModelGraph& graph, const float* weights,
                      const std::vector<ByteSpan>& inputs, float* arena,
                      std::vector<Bytes>* outputs) const;

 private:
  std::vector<uint64_t> offsets_;
  uint64_t total_elements_;
  uint64_t scratch_elements_;
};

}  // namespace sesemi::inference

#endif  // SESEMI_INFERENCE_EXECUTOR_H_
