#ifndef SESEMI_SCHED_QUEUE_H_
#define SESEMI_SCHED_QUEUE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "obs/trace.h"

namespace sesemi::sched {

/// \file
/// Per-function weighted-fair queues — the ordering half of the request
/// scheduler (src/sched/README: queue + admission + batcher compose into
/// RequestScheduler, which ServerlessPlatform::InvokeAsync submits into).
///
/// Ordering model: three strict priority classes; within the highest
/// non-empty class, a pluggable SchedulerPolicy picks which function's queue
/// to serve next. Enqueue touches only the target function's shard (one
/// small mutex + atomic depth counters), so concurrent submitters for
/// different functions never serialize; only the pop path — which must
/// observe a consistent cross-function view to order fairly — takes the
/// queue-wide mutex.

/// Which cross-function ordering the queue applies (selectable per platform
/// config).
enum class PolicyKind {
  kFifo,          ///< global arrival order (the pre-scheduler behaviour)
  kWeightedFair,  ///< start-time-fair virtual-time queuing over weights
  kDeadlineEdf,   ///< earliest absolute deadline first
};

const char* ToString(PolicyKind kind);

/// Strict priority tiers: all class-0 work dispatches before any class-1
/// work, and so on. Within one tier the policy decides.
inline constexpr int kNumPriorityClasses = 3;

/// Bit mask over priority classes (bit c set = class c eligible). The
/// execution tiers split dispatch with these: RT lanes pop with the
/// interactive-class mask, bulk dispatchers with its complement, and the
/// tier-less configuration uses kAllClasses — identical to unmasked popping.
using ClassMask = uint32_t;
inline constexpr ClassMask kAllClasses = (1u << kNumPriorityClasses) - 1;
inline constexpr ClassMask ClassMaskOf(int cls) { return 1u << cls; }
/// Classes [0, n) — the "n highest tiers" mask.
inline constexpr ClassMask ClassMaskUpTo(int n) {
  return n <= 0 ? 0u
         : n >= kNumPriorityClasses ? kAllClasses
                                    : ((1u << n) - 1);
}

inline constexpr TimeMicros kNoDeadline = std::numeric_limits<TimeMicros>::max();

/// Per-function scheduling parameters, fixed at function registration.
struct FunctionSchedParams {
  /// Weighted-fair share: under saturation a weight-2 function completes
  /// ~twice as many requests as a weight-1 function.
  double weight = 1.0;
  /// Token-bucket rate limit in requests/second (0 = unlimited).
  double rate_per_s = 0.0;
  /// Token-bucket burst depth (0 = max(1, rate_per_s)).
  double burst = 0.0;
  /// Per-function backlog cap; submissions beyond it are rejected with
  /// Unavailable (0 = unlimited).
  int max_queue_depth = 0;
  /// Same-model coalescing limit per dispatch (1 = batching off).
  int max_batch = 1;
  /// Default priority class for this function's requests (0 = highest).
  int priority = 1;
  /// Default deadline slack for DeadlineEdf: a request with no explicit
  /// deadline gets enqueue_time + default_slack (0 = no deadline).
  TimeMicros default_slack = 0;
};

/// One queued invocation: routing metadata the scheduler orders and batches
/// by, plus an opaque payload owned by the submitter (the platform stores the
/// request and its result promise there, so sched/ stays independent of the
/// serverless and semirt layers).
struct QueuedRequest {
  std::string function;
  std::string model_id;
  std::string session_id;  ///< user/session — batches never mix sessions
  int priority = -1;       ///< -1 = function default; clamped to [0, kNumPriorityClasses)
  TimeMicros deadline = kNoDeadline;  ///< absolute; kNoDeadline = function default

  /// Assigned by the queue at enqueue: global arrival sequence (FIFO order)
  /// and admission timestamp.
  uint64_t seq = 0;
  TimeMicros enqueue_time = 0;
  /// Assigned at pop: global dispatch sequence. Under the Fifo policy the
  /// dispatch order of any two requests matches their seq order — the
  /// regression contract for policy-ordered wakeup.
  uint64_t dispatch_seq = 0;
  /// Set by RequestScheduler::Submit: bytes charged against the global
  /// memory-backpressure budget while queued.
  uint64_t payload_bytes = 0;

  /// Trace propagation across the queue: the submitter's span context rides
  /// the request to whichever dispatcher thread pops it (zero when tracing
  /// is disabled — see obs/trace.h).
  obs::TraceContext trace;

  std::shared_ptr<void> payload;
};

/// What a policy sees for one candidate function (head of its deque in the
/// priority class being served). Snapshot taken under the pop lock.
struct QueueView {
  const std::string* function = nullptr;
  double weight = 1.0;
  /// Virtual finish tag this head would get if served next (WFQ bookkeeping
  /// maintained by the queue; smaller = more underserved).
  double virtual_finish = 0.0;
  uint64_t head_seq = 0;
  TimeMicros head_deadline = kNoDeadline;
  TimeMicros head_enqueue = 0;
  size_t depth = 0;
};

/// Cross-function ordering strategy. Implementations are stateless; all
/// fairness bookkeeping (virtual time) lives in the queue so policies can be
/// swapped without carrying state over.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  virtual const char* name() const = 0;
  /// Pick the index of the candidate to serve next. `candidates` is
  /// non-empty and all entries have backlog in the same priority class.
  virtual size_t PickNext(const std::vector<QueueView>& candidates) const = 0;
};

/// Global arrival order: min head_seq. Start order equals submission order.
class FifoPolicy final : public SchedulerPolicy {
 public:
  const char* name() const override { return "fifo"; }
  size_t PickNext(const std::vector<QueueView>& candidates) const override;
};

/// Start-time fair queuing: min virtual finish tag, i.e. each function
/// receives service in proportion to its weight under saturation and an
/// idle function re-enters at the current virtual time (no starvation and
/// no credit hoarding).
class WeightedFairPolicy final : public SchedulerPolicy {
 public:
  const char* name() const override { return "wfq"; }
  size_t PickNext(const std::vector<QueueView>& candidates) const override;
};

/// Earliest deadline first over the head deadlines (per-function deques are
/// kept deadline-sorted on enqueue); requests without a deadline sort last,
/// ties break on arrival order.
class DeadlineEdfPolicy final : public SchedulerPolicy {
 public:
  const char* name() const override { return "edf"; }
  size_t PickNext(const std::vector<QueueView>& candidates) const override;
};

std::unique_ptr<SchedulerPolicy> MakePolicy(PolicyKind kind);

/// Point-in-time queue statistics (per function, inside SchedStats).
struct FunctionQueueStats {
  std::string function;
  double weight = 1.0;
  size_t depth = 0;         ///< currently queued
  uint64_t enqueued = 0;    ///< accepted into the queue, cumulative
  uint64_t dispatched = 0;  ///< popped for execution, cumulative
};

/// The multi-function priority queue. See file comment for the concurrency
/// design; all public methods are thread-safe.
class FairQueue {
 public:
  explicit FairQueue(PolicyKind kind);

  /// Register `function` before any Enqueue for it. Fails on duplicates.
  Status RegisterFunction(const std::string& function,
                          const FunctionSchedParams& params);

  /// Append one request (assigns seq; stamps enqueue_time with `now`;
  /// applies the function's default priority/deadline when unset). Fails
  /// NotFound for unregistered functions.
  Status Enqueue(QueuedRequest request, TimeMicros now);

  /// Pop the next request in policy order (assigns dispatch_seq). Returns
  /// false when every queue is empty.
  bool PopNext(QueuedRequest* out) { return PopNext(kAllClasses, out); }

  /// Class-restricted pop: same policy order, considering only priority
  /// classes in `mask`. With kAllClasses this is exactly the unmasked pop.
  bool PopNext(ClassMask mask, QueuedRequest* out);

  /// Requests currently queued across all functions (racy snapshot).
  size_t TotalDepth() const { return total_depth_.load(std::memory_order_acquire); }

  /// Requests currently queued in the classes selected by `mask` (racy
  /// snapshot; the per-tier dispatcher exit condition).
  size_t DepthInClasses(ClassMask mask) const;

  const SchedulerPolicy& policy() const { return *policy_; }
  PolicyKind policy_kind() const { return kind_; }

  std::vector<FunctionQueueStats> PerFunctionStats() const;

 private:
  friend class SameModelBatcher;  ///< coalesces from the popped head's shard

  struct FunctionShard {
    std::string name;
    FunctionSchedParams params;
    mutable std::mutex mutex;
    std::deque<QueuedRequest> pending[kNumPriorityClasses];  ///< guarded by mutex
    std::atomic<size_t> depth{0};
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> dispatched{0};
    /// WFQ finish tag of the last served request (guarded by pop_mutex_).
    double finish_tag = 0.0;
  };

  FunctionShard* FindShard(const std::string& function) const;

  /// Batch-fairness accounting: PopNext charged the popped head 1/weight of
  /// virtual time, so a coalesced batch of size k must charge the remaining
  /// (k-1)/weight here or the batched function over-serves under
  /// WeightedFair (each dispatch consumes k requests of service but only one
  /// request's worth of virtual time). Called by SameModelBatcher after it
  /// drains the companions; takes pop_mutex_, so callers must not hold any
  /// shard mutex (lock order is pop_mutex_ -> shard->mutex).
  void ChargeCoalesced(FunctionShard* shard, size_t extra);

  PolicyKind kind_;
  std::unique_ptr<SchedulerPolicy> policy_;

  /// Function table: read-mostly (every Enqueue/Pop), written only by
  /// RegisterFunction; shard pointers are heap-stable once inserted, so
  /// lookups take the shared side and submitters for different functions
  /// contend on nothing but their own shard.
  mutable std::shared_mutex table_mutex_;
  std::unordered_map<std::string, std::unique_ptr<FunctionShard>> shards_;
  std::vector<FunctionShard*> shard_list_;  ///< append-only, guarded by table_mutex_

  /// Pop path + WFQ virtual time. Never held while executing requests.
  mutable std::mutex pop_mutex_;
  double virtual_time_ = 0.0;        ///< guarded by pop_mutex_
  uint64_t next_dispatch_seq_ = 0;   ///< guarded by pop_mutex_

  std::atomic<uint64_t> next_seq_{0};
  std::atomic<size_t> total_depth_{0};
  /// Per-class share of total_depth_ (same update points, including the
  /// batcher's coalesce drain), so tier dispatchers can poll their slice
  /// without touching any shard.
  std::array<std::atomic<size_t>, kNumPriorityClasses> class_depth_{};
};

}  // namespace sesemi::sched

#endif  // SESEMI_SCHED_QUEUE_H_
