#ifndef SESEMI_SCHED_ADMISSION_H_
#define SESEMI_SCHED_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "sched/queue.h"

namespace sesemi::sched {

/// \file
/// Admission control — the gate in front of the fair queues. A submission
/// that fails admission is rejected immediately with a typed Status (the
/// caller's future resolves with the error); it never blocks the submitter,
/// which is what replaces the old InvokeAsync behaviour of parking callers
/// on a mutex until the in-flight window drained.
///
/// Rejection taxonomy:
///  - ResourceExhausted  — per-function token bucket empty (rate limit), or
///                         the global backlog/byte budget is full;
///  - Unavailable        — the function's own backlog cap is full (transient:
///                         retry once the queue drains);
///  - NotFound           — function never registered.

/// Platform-wide backpressure limits (0 = unlimited).
struct AdmissionLimits {
  /// Total requests queued across all functions.
  int max_queued = 0;
  /// Total payload bytes queued across all functions (memory backpressure).
  uint64_t max_queued_bytes = 0;
};

/// Classic token bucket: capacity `burst`, refilled at `rate_per_s`.
/// Thread-safe; a zero rate means unlimited.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst);

  /// Take one token if available at `now`. Monotonically increasing `now`
  /// values are assumed (a stale now never refunds).
  bool TryAcquire(TimeMicros now);

  double rate_per_s() const { return rate_per_s_; }
  double burst() const { return burst_; }

 private:
  const double rate_per_s_;
  const double burst_;
  std::mutex mutex_;
  double tokens_;             ///< guarded by mutex_
  TimeMicros last_refill_ = 0;  ///< guarded by mutex_

  void RefillLocked(TimeMicros now);
};

/// Cumulative admission counters (drops by reason).
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t rejected_rate = 0;    ///< token bucket empty
  uint64_t rejected_depth = 0;   ///< per-function backlog cap
  uint64_t rejected_global = 0;  ///< global queued / byte budget
  uint64_t rejected_unknown = 0; ///< function not registered
};

/// Per-function token buckets plus global backlog accounting. Enqueue-side
/// state is sharded per function (each bucket has its own lock) and the
/// global counters are atomics, so concurrent submitters for different
/// functions contend on nothing shared but two fetch_adds.
///
/// \threadsafety All methods safe to call concurrently.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionLimits& limits);

  Status RegisterFunction(const std::string& function,
                          const FunctionSchedParams& params);

  /// Decide admission for one request of `payload_bytes` arriving at `now`.
  /// On OK the request is counted as queued; the caller must pair it with
  /// OnDequeue once the request leaves the queue (or OnDrop if enqueue
  /// fails downstream).
  Status Admit(const std::string& function, uint64_t payload_bytes, TimeMicros now);

  /// Release the backlog accounting claimed by Admit.
  void OnDequeue(const std::string& function, uint64_t payload_bytes);

  AdmissionStats stats() const;
  int queued() const { return queued_.load(std::memory_order_relaxed); }
  uint64_t queued_bytes() const { return queued_bytes_.load(std::memory_order_relaxed); }

 private:
  struct FunctionGate {
    std::string name;
    FunctionSchedParams params;
    std::unique_ptr<TokenBucket> bucket;  ///< null when rate unlimited
    std::atomic<int> queued{0};
  };

  FunctionGate* FindGate(const std::string& function) const;

  const AdmissionLimits limits_;

  /// Read-mostly gate table (see FairQueue's function table): lookups take
  /// the shared side, only RegisterFunction writes; gate pointers stable.
  mutable std::shared_mutex table_mutex_;
  std::unordered_map<std::string, std::unique_ptr<FunctionGate>> gates_;

  std::atomic<int> queued_{0};
  std::atomic<uint64_t> queued_bytes_{0};

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_rate_{0};
  std::atomic<uint64_t> rejected_depth_{0};
  std::atomic<uint64_t> rejected_global_{0};
  std::atomic<uint64_t> rejected_unknown_{0};
};

}  // namespace sesemi::sched

#endif  // SESEMI_SCHED_ADMISSION_H_
