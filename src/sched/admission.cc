#include "sched/admission.h"

#include <algorithm>

namespace sesemi::sched {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s),
      burst_(burst > 0 ? burst : std::max(1.0, rate_per_s)),
      tokens_(burst_) {}

void TokenBucket::RefillLocked(TimeMicros now) {
  if (now <= last_refill_) return;
  const double elapsed_s = static_cast<double>(now - last_refill_) / 1e6;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_s_);
  last_refill_ = now;
}

bool TokenBucket::TryAcquire(TimeMicros now) {
  if (rate_per_s_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::AdmissionController(const AdmissionLimits& limits)
    : limits_(limits) {}

Status AdmissionController::RegisterFunction(const std::string& function,
                                             const FunctionSchedParams& params) {
  std::unique_lock<std::shared_mutex> lock(table_mutex_);
  auto [it, inserted] = gates_.try_emplace(function, nullptr);
  if (!inserted) {
    return Status::AlreadyExists("function already admitted: " + function);
  }
  it->second = std::make_unique<FunctionGate>();
  it->second->name = function;
  it->second->params = params;
  if (params.rate_per_s > 0) {
    it->second->bucket =
        std::make_unique<TokenBucket>(params.rate_per_s, params.burst);
  }
  return Status::OK();
}

AdmissionController::FunctionGate* AdmissionController::FindGate(
    const std::string& function) const {
  std::shared_lock<std::shared_mutex> lock(table_mutex_);
  auto it = gates_.find(function);
  return it == gates_.end() ? nullptr : it->second.get();
}

Status AdmissionController::Admit(const std::string& function,
                                  uint64_t payload_bytes, TimeMicros now) {
  FunctionGate* gate = FindGate(function);
  if (gate == nullptr) {
    rejected_unknown_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("function not scheduled: " + function);
  }

  if (gate->bucket != nullptr && !gate->bucket->TryAcquire(now)) {
    rejected_rate_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("rate limit exceeded for " + function);
  }

  // Claim the per-function backlog slot; undo on any later rejection so a
  // losing submission never leaks accounting.
  if (gate->params.max_queue_depth > 0) {
    const int depth = gate->queued.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (depth > gate->params.max_queue_depth) {
      gate->queued.fetch_sub(1, std::memory_order_acq_rel);
      rejected_depth_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("queue full for " + function);
    }
  } else {
    gate->queued.fetch_add(1, std::memory_order_acq_rel);
  }

  const int global = queued_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const uint64_t bytes =
      queued_bytes_.fetch_add(payload_bytes, std::memory_order_acq_rel) +
      payload_bytes;
  if ((limits_.max_queued > 0 && global > limits_.max_queued) ||
      (limits_.max_queued_bytes > 0 && bytes > limits_.max_queued_bytes)) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    queued_bytes_.fetch_sub(payload_bytes, std::memory_order_acq_rel);
    gate->queued.fetch_sub(1, std::memory_order_acq_rel);
    rejected_global_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("scheduler backlog full");
  }

  admitted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void AdmissionController::OnDequeue(const std::string& function,
                                    uint64_t payload_bytes) {
  FunctionGate* gate = FindGate(function);
  if (gate != nullptr) gate->queued.fetch_sub(1, std::memory_order_acq_rel);
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  queued_bytes_.fetch_sub(payload_bytes, std::memory_order_acq_rel);
}

AdmissionStats AdmissionController::stats() const {
  AdmissionStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_rate = rejected_rate_.load(std::memory_order_relaxed);
  s.rejected_depth = rejected_depth_.load(std::memory_order_relaxed);
  s.rejected_global = rejected_global_.load(std::memory_order_relaxed);
  s.rejected_unknown = rejected_unknown_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sesemi::sched
