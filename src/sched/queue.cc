#include "sched/queue.h"

#include <algorithm>

namespace sesemi::sched {

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kWeightedFair: return "wfq";
    case PolicyKind::kDeadlineEdf: return "edf";
  }
  return "unknown";
}

size_t FifoPolicy::PickNext(const std::vector<QueueView>& candidates) const {
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].head_seq < candidates[best].head_seq) best = i;
  }
  return best;
}

size_t WeightedFairPolicy::PickNext(const std::vector<QueueView>& candidates) const {
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    const QueueView& c = candidates[i];
    const QueueView& b = candidates[best];
    if (c.virtual_finish < b.virtual_finish ||
        (c.virtual_finish == b.virtual_finish && c.head_seq < b.head_seq)) {
      best = i;
    }
  }
  return best;
}

size_t DeadlineEdfPolicy::PickNext(const std::vector<QueueView>& candidates) const {
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    const QueueView& c = candidates[i];
    const QueueView& b = candidates[best];
    if (c.head_deadline < b.head_deadline ||
        (c.head_deadline == b.head_deadline && c.head_seq < b.head_seq)) {
      best = i;
    }
  }
  return best;
}

std::unique_ptr<SchedulerPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::kWeightedFair: return std::make_unique<WeightedFairPolicy>();
    case PolicyKind::kDeadlineEdf: return std::make_unique<DeadlineEdfPolicy>();
  }
  return std::make_unique<FifoPolicy>();
}

FairQueue::FairQueue(PolicyKind kind) : kind_(kind), policy_(MakePolicy(kind)) {}

Status FairQueue::RegisterFunction(const std::string& function,
                                   const FunctionSchedParams& params) {
  if (params.weight <= 0.0) {
    return Status::InvalidArgument("scheduler weight must be positive: " + function);
  }
  std::unique_lock<std::shared_mutex> lock(table_mutex_);
  auto [it, inserted] = shards_.try_emplace(function, nullptr);
  if (!inserted) {
    return Status::AlreadyExists("function already scheduled: " + function);
  }
  it->second = std::make_unique<FunctionShard>();
  it->second->name = function;
  it->second->params = params;
  shard_list_.push_back(it->second.get());
  return Status::OK();
}

FairQueue::FunctionShard* FairQueue::FindShard(const std::string& function) const {
  std::shared_lock<std::shared_mutex> lock(table_mutex_);
  auto it = shards_.find(function);
  return it == shards_.end() ? nullptr : it->second.get();
}

Status FairQueue::Enqueue(QueuedRequest request, TimeMicros now) {
  FunctionShard* shard = FindShard(request.function);
  if (shard == nullptr) {
    return Status::NotFound("function not scheduled: " + request.function);
  }

  if (request.priority < 0) request.priority = shard->params.priority;
  request.priority = std::clamp(request.priority, 0, kNumPriorityClasses - 1);
  if (request.deadline == kNoDeadline && shard->params.default_slack > 0) {
    request.deadline = now + shard->params.default_slack;
  }
  request.enqueue_time = now;
  const int cls = request.priority;

  size_t prev_depth = 0;
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // Sequence assignment happens under the shard lock so each deque stays
    // seq-sorted even with racing submitters — that, plus the pop-side
    // min-head merge, is what makes FIFO dispatch order equal admission
    // order globally.
    request.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    std::deque<QueuedRequest>& q = shard->pending[request.priority];
    if (kind_ == PolicyKind::kDeadlineEdf) {
      // Keep the deque deadline-sorted so the head is always the earliest
      // deadline; stable insertion preserves arrival order among ties.
      auto it = q.end();
      while (it != q.begin() && std::prev(it)->deadline > request.deadline) --it;
      q.insert(it, std::move(request));
    } else {
      q.push_back(std::move(request));
    }
    prev_depth = shard->depth.fetch_add(1, std::memory_order_acq_rel);
  }
  shard->enqueued.fetch_add(1, std::memory_order_relaxed);
  total_depth_.fetch_add(1, std::memory_order_acq_rel);
  class_depth_[cls].fetch_add(1, std::memory_order_acq_rel);

  if (prev_depth == 0) {
    // Idle -> backlogged transition: catch the flow's virtual tag up to the
    // current virtual time. An idle flow must not bank credit (tag below V
    // would let it monopolize on return), and its tag must also stop rising
    // with V once backlogged (or a low-weight flow would starve — its
    // service horizon would recede forever). Taken outside the shard lock to
    // respect the pop_mutex_ -> shard->mutex lock order.
    std::lock_guard<std::mutex> pop_lock(pop_mutex_);
    shard->finish_tag = std::max(shard->finish_tag, virtual_time_);
  }
  return Status::OK();
}

bool FairQueue::PopNext(ClassMask mask, QueuedRequest* out) {
  std::lock_guard<std::mutex> pop_lock(pop_mutex_);

  // Stable shard pointers: registration only appends.
  std::vector<FunctionShard*> shards;
  {
    std::shared_lock<std::shared_mutex> lock(table_mutex_);
    shards = shard_list_;
  }

  // The whole selection restarts if the picked deque turns out empty: a
  // concurrent SameModelBatcher::Coalesce (which holds only the shard mutex,
  // not pop_mutex_) may drain a deque between our snapshot and the pop.
  for (;;) {
    bool retry = false;
    for (int cls = 0; cls < kNumPriorityClasses && !retry; ++cls) {
      if ((mask & ClassMaskOf(cls)) == 0) continue;
      std::vector<QueueView> views;
      std::vector<FunctionShard*> owners;
      for (FunctionShard* shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        const std::deque<QueuedRequest>& q = shard->pending[cls];
        if (q.empty()) continue;
        QueueView view;
        view.function = &shard->name;
        view.weight = shard->params.weight;
        // The backlogged flow's tag advances only when it is served (enqueue
        // catches it up to V on the idle->busy edge); maxing against the live
        // V here would push low-weight flows' horizons away forever.
        view.virtual_finish = shard->finish_tag + 1.0 / shard->params.weight;
        view.head_seq = q.front().seq;
        view.head_deadline = q.front().deadline;
        view.head_enqueue = q.front().enqueue_time;
        view.depth = shard->depth.load(std::memory_order_relaxed);
        views.push_back(view);
        owners.push_back(shard);
      }
      if (views.empty()) continue;

      const size_t pick = policy_->PickNext(views);
      FunctionShard* shard = owners[pick];

      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        std::deque<QueuedRequest>& q = shard->pending[cls];
        if (q.empty()) {
          // Coalesced away since the snapshot — rebuild the candidate view.
          retry = true;
          break;
        }
        // An EDF enqueue may have sorted a new, earlier-deadline head in
        // since the snapshot; popping the current front is still
        // deadline-min.
        *out = std::move(q.front());
        q.pop_front();
        shard->depth.fetch_sub(1, std::memory_order_acq_rel);
      }

      // Commit the WFQ bookkeeping regardless of policy (cheap, and lets
      // the stats expose virtual-time lag under any ordering).
      const double start = std::max(virtual_time_, shard->finish_tag);
      shard->finish_tag = start + 1.0 / shard->params.weight;
      virtual_time_ = start;

      out->dispatch_seq = next_dispatch_seq_++;
      shard->dispatched.fetch_add(1, std::memory_order_relaxed);
      total_depth_.fetch_sub(1, std::memory_order_acq_rel);
      class_depth_[cls].fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    if (!retry) return false;
  }
}

size_t FairQueue::DepthInClasses(ClassMask mask) const {
  size_t depth = 0;
  for (int cls = 0; cls < kNumPriorityClasses; ++cls) {
    if (mask & ClassMaskOf(cls)) {
      depth += class_depth_[cls].load(std::memory_order_acquire);
    }
  }
  return depth;
}

void FairQueue::ChargeCoalesced(FunctionShard* shard, size_t extra) {
  if (extra == 0) return;
  std::lock_guard<std::mutex> pop_lock(pop_mutex_);
  shard->finish_tag += static_cast<double>(extra) / shard->params.weight;
}

std::vector<FunctionQueueStats> FairQueue::PerFunctionStats() const {
  std::shared_lock<std::shared_mutex> lock(table_mutex_);
  std::vector<FunctionQueueStats> out;
  out.reserve(shard_list_.size());
  for (const FunctionShard* shard : shard_list_) {
    FunctionQueueStats s;
    s.function = shard->name;
    s.weight = shard->params.weight;
    s.depth = shard->depth.load(std::memory_order_relaxed);
    s.enqueued = shard->enqueued.load(std::memory_order_relaxed);
    s.dispatched = shard->dispatched.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace sesemi::sched
