#include "sched/scheduler.h"

#include <algorithm>

namespace sesemi::sched {

RequestScheduler::RequestScheduler(const SchedulerConfig& config, Clock* clock)
    : queue_(config.policy), admission_(config.limits) {
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<RealClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = clock;
  }
}

Status RequestScheduler::RegisterFunction(const std::string& function,
                                          const FunctionSchedParams& params) {
  SESEMI_RETURN_IF_ERROR(queue_.RegisterFunction(function, params));
  SESEMI_RETURN_IF_ERROR(admission_.RegisterFunction(function, params));
  std::unique_lock<std::shared_mutex> lock(params_mutex_);
  params_.try_emplace(function, std::make_unique<FunctionSchedParams>(params));
  return Status::OK();
}

const FunctionSchedParams* RequestScheduler::function_params(
    const std::string& function) const {
  std::shared_lock<std::shared_mutex> lock(params_mutex_);
  auto it = params_.find(function);
  return it == params_.end() ? nullptr : it->second.get();
}

Status RequestScheduler::Submit(QueuedRequest request, uint64_t payload_bytes) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::string function = request.function;
  const TimeMicros now = clock_->Now();
  SESEMI_RETURN_IF_ERROR(admission_.Admit(function, payload_bytes, now));
  request.payload_bytes = payload_bytes;
  Status enq = queue_.Enqueue(std::move(request), now);
  if (!enq.ok()) {
    // Unregistered-in-queue can only happen on a registration race; refund
    // the admission claim so accounting stays balanced.
    admission_.OnDequeue(function, payload_bytes);
    return enq;
  }
  return Status::OK();
}

bool RequestScheduler::PopOne(ClassMask classes, QueuedRequest* out,
                              std::vector<QueuedRequest>* expired) {
  const bool shed = queue_.policy_kind() == PolicyKind::kDeadlineEdf;
  for (;;) {
    if (!queue_.PopNext(classes, out)) return false;
    const TimeMicros now = clock_->Now();
    admission_.OnDequeue(out->function, out->payload_bytes);
    if (shed && out->deadline != kNoDeadline && out->deadline < now) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      if (expired != nullptr) expired->push_back(std::move(*out));
      continue;
    }
    RecordWait(out->priority, now - out->enqueue_time);
    batcher_.RecordDispatch(1);
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

std::vector<QueuedRequest> RequestScheduler::PopBatch(
    ClassMask classes, std::vector<QueuedRequest>* expired) {
  std::vector<QueuedRequest> batch;
  // Deadlines gate execution only under DeadlineEdf; the other policies treat
  // them as metadata.
  const bool shed = queue_.policy_kind() == PolicyKind::kDeadlineEdf;

  QueuedRequest head;
  TimeMicros now = 0;
  for (;;) {
    if (!queue_.PopNext(classes, &head)) return batch;
    now = clock_->Now();
    admission_.OnDequeue(head.function, head.payload_bytes);
    if (shed && head.deadline != kNoDeadline && head.deadline < now) {
      // Expired while queued: shed it (typed reject at the caller), never
      // execute it, and keep popping — EDF pops earliest-deadline first, so
      // live work is still behind this head.
      drops_.fetch_add(1, std::memory_order_relaxed);
      if (expired != nullptr) expired->push_back(std::move(head));
      continue;
    }
    break;
  }

  int max_batch = 1;
  if (const FunctionSchedParams* params = function_params(head.function)) {
    max_batch = params->max_batch;
  }

  RecordWait(head.priority, now - head.enqueue_time);

  batch.reserve(static_cast<size_t>(std::max(max_batch, 1)));
  batch.push_back(std::move(head));
  if (max_batch > 1) {
    batcher_.Coalesce(&queue_, batch.front(), max_batch, &batch);
    size_t live = 1;
    for (size_t i = 1; i < batch.size(); ++i) {
      admission_.OnDequeue(batch[i].function, batch[i].payload_bytes);
      if (shed && batch[i].deadline != kNoDeadline && batch[i].deadline < now) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        if (expired != nullptr) expired->push_back(std::move(batch[i]));
        continue;
      }
      RecordWait(batch[i].priority, now - batch[i].enqueue_time);
      if (live != i) batch[live] = std::move(batch[i]);
      live++;
    }
    batch.resize(live);
  }
  batcher_.RecordDispatch(batch.size());
  dispatched_.fetch_add(batch.size(), std::memory_order_relaxed);
  return batch;
}

void RequestScheduler::RecordWait(int priority, TimeMicros wait) {
  if (wait < 0) wait = 0;
  priority = std::clamp(priority, 0, kNumPriorityClasses - 1);
  WaitWindow& w = waits_[priority];
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.samples.size() < WaitWindow::kCapacity) {
    w.samples.push_back(wait);
  } else {
    w.samples[w.next] = wait;
    w.next = (w.next + 1) % WaitWindow::kCapacity;
  }
  w.count++;
}

namespace {
TimeMicros Percentile(std::vector<TimeMicros>& sorted, double pct) {
  if (sorted.empty()) return 0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}
}  // namespace

SchedStats RequestScheduler::stats() const {
  SchedStats s;
  s.policy = queue_.policy().name();
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.dispatched = dispatched_.load(std::memory_order_relaxed);

  const AdmissionStats a = admission_.stats();
  s.admitted = a.admitted;
  s.rejected_rate = a.rejected_rate;
  s.rejected_depth = a.rejected_depth;
  s.rejected_global = a.rejected_global;
  s.drops = drops_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.TotalDepth();

  const BatchStats b = batcher_.stats();
  s.batches = b.batches;
  s.avg_batch_size = b.AvgBatchSize();
  s.max_batch_size = b.max_batch_size;

  for (int cls = 0; cls < kNumPriorityClasses; ++cls) {
    const WaitWindow& w = waits_[cls];
    std::vector<TimeMicros> samples;
    {
      std::lock_guard<std::mutex> lock(w.mutex);
      samples = w.samples;
      s.wait[cls].count = w.count;
    }
    std::sort(samples.begin(), samples.end());
    s.wait[cls].p50 = Percentile(samples, 50.0);
    s.wait[cls].p99 = Percentile(samples, 99.0);
  }

  s.functions = queue_.PerFunctionStats();
  return s;
}

}  // namespace sesemi::sched
