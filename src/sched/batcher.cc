#include "sched/batcher.h"

namespace sesemi::sched {

bool SameModelBatcher::Compatible(const QueuedRequest& head,
                                  const QueuedRequest& other) {
  return other.model_id == head.model_id && other.session_id == head.session_id &&
         other.priority == head.priority;
}

size_t SameModelBatcher::Coalesce(FairQueue* queue, QueuedRequest head,
                                  int max_batch, std::vector<QueuedRequest>* batch) {
  if (max_batch <= 1) return 0;
  FairQueue::FunctionShard* shard = queue->FindShard(head.function);
  if (shard == nullptr) return 0;

  const size_t want = static_cast<size_t>(max_batch) - 1;
  const size_t lookahead = static_cast<size_t>(max_batch) * kLookaheadFactor;
  size_t taken = 0;

  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    std::deque<QueuedRequest>& q = shard->pending[head.priority];
    size_t scanned = 0;
    for (auto it = q.begin(); it != q.end() && taken < want && scanned < lookahead;
         ++scanned) {
      if (Compatible(head, *it)) {
        it->dispatch_seq = head.dispatch_seq;  // dispatched as one unit
        batch->push_back(std::move(*it));
        it = q.erase(it);
        taken++;
      } else {
        ++it;
      }
    }
    if (taken > 0) {
      shard->depth.fetch_sub(taken, std::memory_order_acq_rel);
      shard->dispatched.fetch_add(taken, std::memory_order_relaxed);
      queue->total_depth_.fetch_sub(taken, std::memory_order_acq_rel);
      // Companions share the head's class (Compatible requires equal
      // priority), so one subtraction keeps the per-class slice exact.
      queue->class_depth_[head.priority].fetch_sub(taken,
                                                   std::memory_order_acq_rel);
    }
  }
  // The pop charged only the head's 1/weight; charge the companions too so a
  // batch of k consumes k/weight virtual time and weighted shares stay exact
  // when max_batch > 1. (Outside the shard lock: ChargeCoalesced takes
  // pop_mutex_, which orders before shard mutexes.)
  queue->ChargeCoalesced(shard, taken);
  return taken;
}

void SameModelBatcher::RecordDispatch(size_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
  uint64_t prev = max_batch_size_.load(std::memory_order_relaxed);
  while (size > prev &&
         !max_batch_size_.compare_exchange_weak(prev, size,
                                                std::memory_order_relaxed)) {
  }
}

BatchStats SameModelBatcher::stats() const {
  BatchStats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.max_batch_size = max_batch_size_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sesemi::sched
