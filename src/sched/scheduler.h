#ifndef SESEMI_SCHED_SCHEDULER_H_
#define SESEMI_SCHED_SCHEDULER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "sched/admission.h"
#include "sched/batcher.h"
#include "sched/queue.h"

namespace sesemi::sched {

/// Scheduler-wide configuration (lives inside PlatformConfig).
struct SchedulerConfig {
  PolicyKind policy = PolicyKind::kFifo;
  AdmissionLimits limits;
};

/// Point-in-time scheduler statistics: admission, queueing, batching, and
/// per-priority-class queue-wait percentiles. Consumed by bench_sched /
/// bench_fig11 as JSON and by tests as invariants.
struct SchedStats {
  const char* policy = "fifo";
  uint64_t submitted = 0;   ///< Submit calls
  uint64_t admitted = 0;
  uint64_t dispatched = 0;  ///< requests handed to workers (incl. batched)
  uint64_t rejected_rate = 0;
  uint64_t rejected_depth = 0;
  uint64_t rejected_global = 0;
  /// Requests shed at dispatch because their deadline had already passed
  /// (DeadlineEdf only). Shed work is never executed; the caller resolves its
  /// future with DeadlineExceeded.
  uint64_t drops = 0;
  size_t queue_depth = 0;   ///< currently queued
  uint64_t batches = 0;
  double avg_batch_size = 0.0;
  uint64_t max_batch_size = 0;

  struct ClassWait {
    uint64_t count = 0;    ///< dispatches sampled in this class
    TimeMicros p50 = 0;    ///< queue-wait percentiles over a sliding window
    TimeMicros p99 = 0;
  };
  std::array<ClassWait, kNumPriorityClasses> wait{};

  std::vector<FunctionQueueStats> functions;
};

/// The request scheduler: admission gate -> weighted-fair queues -> policy
/// pop -> same-model coalescing. Passive — it never runs requests itself;
/// the platform's dispatcher tasks call PopBatch from pool workers.
///
/// \threadsafety All methods safe to call concurrently. Submit contends only
/// on the target function's shard; PopBatch serializes on the queue's pop
/// lock (held for the ordering decision only, never across execution).
class RequestScheduler {
 public:
  /// `clock` defaults to a process-lifetime RealClock; tests inject a
  /// ManualClock for deterministic token-bucket refill.
  explicit RequestScheduler(const SchedulerConfig& config, Clock* clock = nullptr);

  Status RegisterFunction(const std::string& function,
                          const FunctionSchedParams& params);

  /// Admit + enqueue one request. `payload_bytes` feeds the global memory
  /// backpressure budget. Typed rejections (see sched/admission.h) leave the
  /// request un-queued; the caller resolves its future with the error.
  Status Submit(QueuedRequest request, uint64_t payload_bytes);

  /// Pop the next dispatch unit in policy order: one request, extended with
  /// same-model/same-session companions up to the function's max_batch.
  /// Returns an empty vector when nothing is queued. Queue-wait samples are
  /// recorded here (dequeue time - enqueue time, per priority class).
  ///
  /// Under DeadlineEdf, requests whose deadline already passed at dispatch
  /// time are shed instead of returned: deadlines gate execution, not just
  /// ordering. Shed requests are appended to `expired` (counted in
  /// SchedStats.drops) so the caller can resolve their futures with a typed
  /// DeadlineExceeded; passing nullptr discards them.
  std::vector<QueuedRequest> PopBatch(std::vector<QueuedRequest>* expired = nullptr) {
    return PopBatch(kAllClasses, expired);
  }

  /// Class-restricted PopBatch: considers only priority classes in
  /// `classes`. The bulk tier's dispatchers pass the non-interactive mask so
  /// RT-routed work is never stolen onto a pool worker; with kAllClasses the
  /// behavior is exactly the unmasked PopBatch.
  std::vector<QueuedRequest> PopBatch(ClassMask classes,
                                      std::vector<QueuedRequest>* expired);

  /// The RT tier's latency-first pop: exactly one request from `classes`, in
  /// policy order, bypassing the batcher's same-model lookahead (coalescing
  /// trades head latency for throughput — the wrong trade for the
  /// interactive class). Expired-deadline shedding and queue-wait sampling
  /// match PopBatch. Returns false when the masked classes are empty.
  bool PopOne(ClassMask classes, QueuedRequest* out,
              std::vector<QueuedRequest>* expired);

  size_t TotalDepth() const { return queue_.TotalDepth(); }
  size_t DepthInClasses(ClassMask classes) const {
    return queue_.DepthInClasses(classes);
  }
  PolicyKind policy_kind() const { return queue_.policy_kind(); }
  const FunctionSchedParams* function_params(const std::string& function) const;

  SchedStats stats() const;

 private:
  /// Sliding-window reservoir of queue-wait samples for one priority class.
  struct WaitWindow {
    static constexpr size_t kCapacity = 4096;
    mutable std::mutex mutex;
    std::vector<TimeMicros> samples;  ///< ring, guarded by mutex
    size_t next = 0;
    uint64_t count = 0;
  };

  void RecordWait(int priority, TimeMicros wait);

  FairQueue queue_;
  AdmissionController admission_;
  SameModelBatcher batcher_;

  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;

  /// Registration-time params, looked up by the dispatcher for max_batch
  /// (read-mostly; values are heap-stable once inserted).
  mutable std::shared_mutex params_mutex_;
  std::unordered_map<std::string, std::unique_ptr<FunctionSchedParams>> params_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> drops_{0};  ///< deadline-expired sheds (never executed)
  std::array<WaitWindow, kNumPriorityClasses> waits_;
};

}  // namespace sesemi::sched

#endif  // SESEMI_SCHED_SCHEDULER_H_
