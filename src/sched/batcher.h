#ifndef SESEMI_SCHED_BATCHER_H_
#define SESEMI_SCHED_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "sched/queue.h"

namespace sesemi::sched {

/// Cumulative coalescing counters.
struct BatchStats {
  uint64_t batches = 0;           ///< dispatches (each 1..max_batch requests)
  uint64_t batched_requests = 0;  ///< requests dispatched inside those batches
  uint64_t max_batch_size = 0;
  double AvgBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }
};

/// Same-model request coalescer. After the policy pops a head request, the
/// batcher pulls further queued requests for the *same function* that are
/// compatible — same model, same session (user), same priority class — up to
/// the function's `max_batch`, so the platform can run them as one multi-row
/// inference (one TCS slot, one enclave entry, one key/model/runtime setup,
/// batch-dim GEMM).
///
/// Compatibility is strict by construction: a batch never mixes models (the
/// enclave holds one loaded model) and never mixes sessions (the enclave
/// caches one ⟨uid,Moid⟩ key pair — batching across users would violate the
/// paper's single-pair key-cache isolation).
///
/// Lookahead is bounded (`kLookaheadFactor * max_batch` entries) so a
/// non-matching request parked at the front of the queue can only be
/// overtaken by a bounded amount of same-model traffic, keeping near-FIFO
/// order for the rest.
///
/// \threadsafety Stateless apart from atomic counters; safe concurrently.
class SameModelBatcher {
 public:
  static constexpr int kLookaheadFactor = 4;

  /// Extend `head` (already popped from `queue`) with up to `max_batch - 1`
  /// compatible requests from the same function's deque, appending them to
  /// `batch` in arrival order. `head` itself is NOT appended (taken by value:
  /// callers typically keep the head inside `batch`, whose growth would
  /// invalidate a reference). Returns the number of extra requests coalesced.
  /// `max_batch <= 1` is a no-op.
  size_t Coalesce(FairQueue* queue, QueuedRequest head, int max_batch,
                  std::vector<QueuedRequest>* batch);

  /// Record a dispatched batch of `size` requests (the platform calls this
  /// for every dispatch, size 1 included, so AvgBatchSize is the true mean).
  void RecordDispatch(size_t size);

  BatchStats stats() const;

 private:
  static bool Compatible(const QueuedRequest& head, const QueuedRequest& other);

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<uint64_t> max_batch_size_{0};
};

}  // namespace sesemi::sched

#endif  // SESEMI_SCHED_BATCHER_H_
