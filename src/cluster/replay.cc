#include "cluster/replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>

namespace sesemi::cluster {

namespace {

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

ReplayResult ReplayTrace(ClusterDataplane* cluster,
                         const std::vector<workload::Arrival>& trace,
                         const ArrivalBinder& binder, const ReplaySpec& spec) {
  ReplayResult result;
  if (trace.empty()) return result;

  struct Pending {
    std::string function;
    std::future<serverless::InvocationResult> future;
  };
  std::vector<Pending> pending;
  pending.reserve(trace.size());

  const auto start = std::chrono::steady_clock::now();
  const TimeMicros base = trace.front().time;
  for (size_t i = 0; i < trace.size(); ++i) {
    const workload::Arrival& arrival = trace[i];
    if (spec.time_scale > 0) {
      const double offset_us =
          static_cast<double>(arrival.time - base) * spec.time_scale;
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(static_cast<int64_t>(offset_us)));
    }
    Result<BoundArrival> bound = binder(arrival, i);
    if (!bound.ok()) {
      result.errors[bound.status().code()]++;
      continue;
    }
    result.submitted++;
    pending.push_back(Pending{bound->function,
                              cluster->InvokeAsync(bound->function,
                                                   std::move(bound->request),
                                                   spec.options)});
  }

  std::vector<double> latencies;
  latencies.reserve(pending.size());
  double hot_exec_sum = 0;
  double hot_total_sum = 0;
  size_t hot_n = 0;
  double cold_key = 0, cold_load = 0, cold_init = 0, cold_exec = 0;
  for (Pending& p : pending) {
    serverless::InvocationResult out = p.future.get();
    if (!out.response.ok()) {
      result.errors[out.response.status().code()]++;
      continue;
    }
    result.ok++;
    result.completions[p.function]++;
    const double latency_s =
        MicrosToSeconds(out.queue_wait + out.timings.total);
    latencies.push_back(latency_s);
    if (out.cold_start) {
      result.cold_starts++;
      cold_key += MicrosToSeconds(out.timings.key_fetch);
      cold_load += MicrosToSeconds(out.timings.model_load);
      cold_init += MicrosToSeconds(out.timings.runtime_init);
      cold_exec += MicrosToSeconds(out.timings.execute);
    } else {
      hot_exec_sum += MicrosToSeconds(out.timings.execute);
      hot_total_sum += MicrosToSeconds(out.timings.total);
      hot_n++;
    }
  }
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.throughput_rps =
      result.wall_s > 0 ? static_cast<double>(result.ok) / result.wall_s : 0;

  if (!latencies.empty()) {
    double sum = 0;
    for (double l : latencies) sum += l;
    result.mean_latency_s = sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    result.p50_latency_s = Percentile(latencies, 50);
    result.p99_latency_s = Percentile(latencies, 99);
  }
  if (hot_n > 0) {
    result.mean_hot_execute_s = hot_exec_sum / static_cast<double>(hot_n);
    result.mean_hot_total_s = hot_total_sum / static_cast<double>(hot_n);
  }
  if (result.cold_starts > 0) {
    const double n = static_cast<double>(result.cold_starts);
    result.mean_cold_key_fetch_s = cold_key / n;
    result.mean_cold_model_load_s = cold_load / n;
    result.mean_cold_runtime_init_s = cold_init / n;
    result.mean_cold_execute_s = cold_exec / n;
  }
  return result;
}

SimReplayResult ReplayTraceOnSim(
    sim::ClusterSim* sim, const std::vector<workload::Arrival>& trace,
    const std::function<std::string(const workload::Arrival&)>& function_of) {
  SimReplayResult result;
  if (trace.empty()) return result;

  for (const workload::Arrival& arrival : trace) {
    sim->Submit(function_of(arrival), arrival.model_id, arrival.user_id,
                arrival.time);
    result.submitted++;
  }
  sim->Run();

  const auto& records = sim->metrics().records();
  std::vector<double> latencies;
  latencies.reserve(records.size());
  TimeMicros first_submit = trace.front().time;
  TimeMicros last_complete = first_submit;
  for (const sim::RequestRecord& record : records) {
    result.completed++;
    result.completions[record.function]++;
    latencies.push_back(MicrosToSeconds(record.latency()));
    last_complete = std::max(last_complete, record.complete);
  }
  if (!latencies.empty()) {
    double sum = 0;
    for (double l : latencies) sum += l;
    result.mean_latency_s = sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    result.p50_latency_s = Percentile(latencies, 50);
    result.p99_latency_s = Percentile(latencies, 99);
  }
  result.makespan_s = MicrosToSeconds(last_complete - first_submit);
  result.throughput_rps =
      result.makespan_s > 0
          ? static_cast<double>(result.completed) / result.makespan_s
          : 0;
  return result;
}

}  // namespace sesemi::cluster
