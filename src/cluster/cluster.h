#ifndef SESEMI_CLUSTER_CLUSTER_H_
#define SESEMI_CLUSTER_CLUSTER_H_

#include <atomic>
#include <future>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/hash_ring.h"
#include "common/clock.h"
#include "serverless/platform.h"

namespace sesemi::cluster {

/// Cluster-level configuration. Each node is one single-invoker
/// ServerlessPlatform built from the `node` template (its own scheduler,
/// admission limits, warm pool, and recovery state), so per-node admission
/// and per-node backpressure come from the existing sched/ stack unchanged.
struct ClusterConfig {
  /// Nodes active (in the ring) at construction.
  int initial_nodes = 4;
  /// Extra pre-built nodes the autoscaler can activate. Standby nodes get
  /// every DeployFunction so activation is instant (no redeploy).
  int standby_nodes = 0;
  /// Per-node platform template; num_nodes is forced to 1.
  serverless::PlatformConfig node;
  HashRingConfig ring;
  AutoscaleConfig autoscale;
  /// Cross-node warm-slot stealing: when the routed node has no live
  /// container for the function but another active node does, route there
  /// instead of paying a cold start.
  bool enable_stealing = true;
  /// Nodes tried per request (home + fallbacks in ring preference order)
  /// before the request resolves with typed Unavailable.
  int reroute_attempts = 3;
  /// How long a node stays ejected from routing after a dispatch failure.
  TimeMicros health_cooldown = SecondsToMicros(0.05);
};

/// Per-node routing counters (platform-internal counters are available via
/// ClusterDataplane::node()->stats()).
struct ClusterNodeStats {
  int node = 0;
  bool active = false;
  bool healthy = true;
  uint64_t routed = 0;       ///< requests dispatched to this node
  uint64_t steal_wins = 0;   ///< requests stolen *to* this node's warm pool
  size_t queue_depth = 0;    ///< node scheduler backlog at snapshot time
  int containers = 0;        ///< live containers at snapshot time
  bool rt_enabled = false;   ///< node runs the pinned RT inference tier
  int rt_busy_lanes = 0;     ///< RT lanes executing at snapshot time
  uint64_t rt_dispatches = 0;  ///< requests served on RT lanes
};

/// Cluster-wide counters.
struct ClusterStats {
  uint64_t invocations = 0;  ///< InvokeAsync calls routed somewhere
  uint64_t home_hits = 0;    ///< dispatched to the clockwise home node
  uint64_t steals = 0;       ///< warm-slot steals (home had no container)
  uint64_t reroutes = 0;     ///< dispatch moved past a failed/unhealthy node
  uint64_t no_capacity = 0;  ///< requests resolved Unavailable (no node left)
  uint64_t scale_ups = 0;
  uint64_t scale_downs = 0;
  std::vector<ClusterNodeStats> nodes;
};

/// Name of the per-node dispatch fault point ("cluster.node.<i>.dispatch").
/// Chaos tests arm it to kill one node's dataplane entry while the rest of
/// the cluster stays healthy; the router treats a fire exactly like a dead
/// node (eject + reroute).
std::string NodeDispatchFaultPoint(int node);

/// An in-process multi-node dataplane: N single-invoker ServerlessPlatform
/// shards behind a consistent-hash router. This is the real-execution
/// counterpart of sim::ClusterSim — the differential harness
/// (tests/cluster_sim_parity_test.cc) replays one seeded trace through both
/// and checks the sim's cost model against measured behaviour.
///
/// Routing, per request:
///  1. placement key = "function|model" hashed onto the ring
///     (bounded-load variant: a node whose scheduler backlog exceeds
///     load_factor x the cluster mean is skipped clockwise);
///  2. warm-slot stealing: if the routed node has no live container for the
///     function and another active node does, the request is stolen to the
///     warm node — a queued dispatch there beats a cold start at home;
///  3. health: a node whose dispatch probe fails is ejected for
///     health_cooldown and the request reroutes along the ring preference
///     order; when every attempt fails the future resolves with typed
///     Unavailable (never an exception, never a hang).
///
/// \threadsafety All public methods are safe to call concurrently.
/// AutoscaleTick serializes on its own mutex; membership reads on the
/// invocation path take a shared lock.
class ClusterDataplane {
 public:
  ClusterDataplane(const ClusterConfig& config,
                   sgx::AttestationAuthority* authority,
                   storage::ObjectStore* storage,
                   keyservice::KeyServiceServer* keyservice,
                   Clock* clock = nullptr);
  ~ClusterDataplane();

  /// Deploy `spec` on every node (active and standby). Fails on duplicates.
  Status DeployFunction(const serverless::FunctionSpec& spec);

  /// Route one request through the cluster (see class comment for the
  /// policy). The returned future is always satisfied.
  std::future<serverless::InvocationResult> InvokeAsync(
      const std::string& function, semirt::InferenceRequest request,
      const serverless::InvokeOptions& options = {});

  /// Evaluate the autoscaling policy over the active nodes'
  /// scheduler_stats()/recovery_stats() and apply the decision: kUp
  /// activates the lowest-numbered standby node, kDown drains the
  /// emptiest active node (it leaves the ring but finishes queued work).
  /// Returns the change in active node count (-1, 0, +1).
  int AutoscaleTick();

  int active_nodes() const;
  int total_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Direct access to node `i`'s platform (tests, benches).
  serverless::ServerlessPlatform* node(int i) { return nodes_.at(i)->platform.get(); }

  ClusterStats stats() const;
  const Autoscaler& autoscaler() const { return autoscaler_; }

  /// Re-home the cluster/autoscaler counters into `registry` as a
  /// scrape-time collector (`sesemi_cluster_*` names; per-node samples carry
  /// a node="i" label) and register every node's platform with a matching
  /// label. Deregistration is automatic at destruction.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// Membership surgery for tests (AutoscaleTick uses the same paths).
  /// Activate/deactivate keep the platform alive; only ring membership and
  /// routing eligibility change.
  Status ActivateNode(int node);
  Status DeactivateNode(int node);

 private:
  struct NodeState {
    explicit NodeState(int id) : id(id), fault_point(NodeDispatchFaultPoint(id)) {}
    const int id;
    const std::string fault_point;
    std::unique_ptr<serverless::ServerlessPlatform> platform;
    std::atomic<bool> active{false};
    std::atomic<TimeMicros> unhealthy_until{0};
    std::atomic<uint64_t> routed{0};
    std::atomic<uint64_t> steal_wins{0};
    // Previous-tick counters for the autoscaler's deltas.
    uint64_t last_dispatched = 0;        ///< guarded by autoscale_mutex_
    uint64_t last_enclave_failures = 0;  ///< guarded by autoscale_mutex_
  };

  bool Healthy(const NodeState& node, TimeMicros now) const {
    return now >= node.unhealthy_until.load(std::memory_order_acquire);
  }

  /// Dispatch-time node probe: OK, or the injected per-node fault.
  Status ProbeNode(NodeState* node);

  ClusterConfig config_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;

  std::vector<std::unique_ptr<NodeState>> nodes_;

  mutable std::shared_mutex ring_mutex_;
  HashRing ring_;  ///< guarded by ring_mutex_ (reads shared)

  std::mutex autoscale_mutex_;
  Autoscaler autoscaler_;  ///< guarded by autoscale_mutex_

  std::atomic<uint64_t> invocations_{0};
  std::atomic<uint64_t> home_hits_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> reroutes_{0};
  std::atomic<uint64_t> no_capacity_{0};
  std::atomic<uint64_t> scale_ups_{0};
  std::atomic<uint64_t> scale_downs_{0};

  /// Deregisters the cluster collector before the counters it reads die.
  obs::ScopedCollector metrics_collector_;
};

}  // namespace sesemi::cluster

#endif  // SESEMI_CLUSTER_CLUSTER_H_
