#include "cluster/hash_ring.h"

#include <algorithm>
#include <cmath>

namespace sesemi::cluster {

namespace {

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the bytes, finalized through splitmix64 with the seed folded
/// in. Stable across platforms (unlike std::hash) so ring layouts are
/// reproducible everywhere the tests run.
uint64_t HashBytes(uint64_t seed, std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return SplitMix64(h);
}

}  // namespace

HashRing::HashRing(const HashRingConfig& config) : config_(config) {
  if (config_.vnodes < 1) config_.vnodes = 1;
}

uint64_t HashRing::KeyHash(std::string_view key) const {
  return HashBytes(config_.seed, key);
}

void HashRing::AddNode(int node) {
  if (Contains(node)) return;
  nodes_.insert(std::lower_bound(nodes_.begin(), nodes_.end(), node), node);
  ring_.reserve(ring_.size() + static_cast<size_t>(config_.vnodes));
  for (int r = 0; r < config_.vnodes; ++r) {
    uint64_t position = SplitMix64(
        config_.seed ^ SplitMix64(static_cast<uint64_t>(node) * 0x9e3779b1ULL +
                                  static_cast<uint64_t>(r)));
    ring_.push_back({position, node});
  }
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::RemoveNode(int node) {
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node), nodes_.end());
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node](const Vnode& v) { return v.node == node; }),
              ring_.end());
}

bool HashRing::Contains(int node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

size_t HashRing::LowerBound(uint64_t position) const {
  size_t lo = 0, hi = ring_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (ring_[mid].position < position) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == ring_.size() ? 0 : lo;  // wrap
}

int HashRing::Pick(std::string_view key) const {
  if (ring_.empty()) return -1;
  return ring_[LowerBound(KeyHash(key))].node;
}

int HashRing::PickBounded(std::string_view key,
                          const std::function<uint64_t(int)>& load,
                          uint64_t total_load) const {
  if (ring_.empty()) return -1;
  if (config_.load_factor <= 1.0 || nodes_.size() <= 1) return Pick(key);
  const double mean = static_cast<double>(total_load + 1) /
                      static_cast<double>(nodes_.size());
  const uint64_t bound =
      static_cast<uint64_t>(std::ceil(config_.load_factor * mean));
  const size_t start = LowerBound(KeyHash(key));
  const int home = ring_[start].node;
  // Clockwise walk over distinct nodes; the first under-bound node wins.
  std::vector<int> visited;
  visited.reserve(nodes_.size());
  for (size_t i = start, steps = 0;
       steps < ring_.size() && visited.size() < nodes_.size();
       i = (i + 1) % ring_.size(), ++steps) {
    int node = ring_[i].node;
    if (std::find(visited.begin(), visited.end(), node) != visited.end()) {
      continue;
    }
    visited.push_back(node);
    if (load(node) < bound) return node;
  }
  return home;  // everyone saturated: work-conserving fallback
}

std::vector<int> HashRing::Preference(std::string_view key, int count) const {
  std::vector<int> order;
  if (ring_.empty() || count <= 0) return order;
  order.reserve(std::min<size_t>(static_cast<size_t>(count), nodes_.size()));
  const size_t start = LowerBound(KeyHash(key));
  for (size_t i = start, steps = 0;
       steps < ring_.size() && order.size() < static_cast<size_t>(count) &&
       order.size() < nodes_.size();
       i = (i + 1) % ring_.size(), ++steps) {
    int node = ring_[i].node;
    if (std::find(order.begin(), order.end(), node) == order.end()) {
      order.push_back(node);
    }
  }
  return order;
}

}  // namespace sesemi::cluster
