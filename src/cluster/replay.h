#ifndef SESEMI_CLUSTER_REPLAY_H_
#define SESEMI_CLUSTER_REPLAY_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "sim/cluster.h"
#include "workload/generators.h"

namespace sesemi::cluster {

/// \file
/// Deterministic traffic replay: feed the *same* seeded workload trace
/// (workload/generators.h) to the real multi-node dataplane and to the
/// discrete-event simulator, producing comparable result summaries. This is
/// the differential harness's substrate (tests/cluster_sim_parity_test.cc)
/// and bench_cluster's driver.

/// An arrival bound to its target: which deployed function it invokes and
/// the concrete (sealed) request it carries.
struct BoundArrival {
  std::string function;
  semirt::InferenceRequest request;
};

/// Maps one trace arrival to its bound form. The trace's model_id field is
/// the *tenant tag* (it names the stream, and through the binder the
/// function); the binder supplies the real model the request runs against.
/// Returning an error skips the arrival (counted in ReplayResult::errors).
using ArrivalBinder =
    std::function<Result<BoundArrival>(const workload::Arrival&, size_t index)>;

struct ReplaySpec {
  /// Multiply every arrival offset by this before pacing against the wall
  /// clock. 1.0 replays in trace time; 0 submits as fast as possible while
  /// preserving trace order (closed-loop stress).
  double time_scale = 1.0;
  serverless::InvokeOptions options;
};

/// Summary of one replay against the real dataplane. Latency is measured
/// per request as scheduler queue wait + pipeline stage total, so it is
/// comparable with the simulator's virtual-time latency and free of
/// future-collection skew.
struct ReplayResult {
  size_t submitted = 0;
  size_t ok = 0;
  std::map<std::string, size_t> completions;  ///< per function, OK responses
  std::map<StatusCode, size_t> errors;        ///< non-OK responses (+ binder skips)
  double wall_s = 0;            ///< first submission -> last future resolved
  double throughput_rps = 0;    ///< ok / wall_s
  double mean_latency_s = 0;
  double p50_latency_s = 0;
  double p99_latency_s = 0;
  /// Measured stage means for sim::CostModel::Calibrated: hot-path execute
  /// and the cold-start stages (zero when no sample of that kind occurred).
  size_t cold_starts = 0;
  double mean_hot_execute_s = 0;
  double mean_hot_total_s = 0;  ///< full warm-path stage sum (execute + crypto)
  double mean_cold_key_fetch_s = 0;
  double mean_cold_model_load_s = 0;
  double mean_cold_runtime_init_s = 0;
  double mean_cold_execute_s = 0;
};

/// Replay `trace` open-loop against `cluster`: submissions are paced to the
/// trace's arrival times (scaled by spec.time_scale) and every future is
/// collected before returning. Deterministic given a deterministic trace and
/// binder: the submission *order* is exactly the trace order.
ReplayResult ReplayTrace(ClusterDataplane* cluster,
                         const std::vector<workload::Arrival>& trace,
                         const ArrivalBinder& binder,
                         const ReplaySpec& spec = {});

/// Summary of one replay against the simulator (virtual time).
struct SimReplayResult {
  size_t submitted = 0;
  size_t completed = 0;
  std::map<std::string, size_t> completions;  ///< per function
  double mean_latency_s = 0;
  double p50_latency_s = 0;
  double p99_latency_s = 0;
  double makespan_s = 0;        ///< first submit -> last completion
  double throughput_rps = 0;    ///< completed / makespan
};

/// Replay the same trace through sim::ClusterSim. `function_of` maps an
/// arrival's tenant tag to the simulated function name (mirror the binder's
/// mapping); the arrival's model/user ids pass through as the sim's cache
/// keys.
SimReplayResult ReplayTraceOnSim(
    sim::ClusterSim* sim, const std::vector<workload::Arrival>& trace,
    const std::function<std::string(const workload::Arrival&)>& function_of);

}  // namespace sesemi::cluster

#endif  // SESEMI_CLUSTER_REPLAY_H_
