#include "cluster/autoscaler.h"

namespace sesemi::cluster {

const char* ToString(ScaleDecision decision) {
  switch (decision) {
    case ScaleDecision::kHold: return "hold";
    case ScaleDecision::kUp: return "up";
    case ScaleDecision::kDown: return "down";
  }
  return "?";
}

ScaleDecision Autoscaler::Tick(const std::vector<NodeLoadSample>& active) {
  stats_.ticks++;
  if (!config_.enabled || active.empty()) return ScaleDecision::kHold;
  if (cooldown_remaining_ > 0) {
    cooldown_remaining_--;
    stats_.cooldown_holds++;
    return ScaleDecision::kHold;
  }

  uint64_t backlog = 0;
  bool degraded = false;
  for (const NodeLoadSample& sample : active) {
    backlog += sample.queue_depth;
    degraded |= sample.enclave_failures_delta >= config_.degraded_failures_per_tick;
  }
  const double per_node =
      static_cast<double>(backlog) / static_cast<double>(active.size());
  const int n = static_cast<int>(active.size());

  if (per_node > config_.scale_up_backlog_per_node &&
      (config_.max_nodes <= 0 || n < config_.max_nodes)) {
    stats_.ups++;
    cooldown_remaining_ = config_.cooldown_ticks;
    return ScaleDecision::kUp;
  }
  if (per_node < config_.scale_down_backlog_per_node && !degraded &&
      n > config_.min_nodes) {
    stats_.downs++;
    cooldown_remaining_ = config_.cooldown_ticks;
    return ScaleDecision::kDown;
  }
  return ScaleDecision::kHold;
}

}  // namespace sesemi::cluster
