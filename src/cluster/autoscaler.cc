#include "cluster/autoscaler.h"

namespace sesemi::cluster {

const char* ToString(ScaleDecision decision) {
  switch (decision) {
    case ScaleDecision::kHold: return "hold";
    case ScaleDecision::kUp: return "up";
    case ScaleDecision::kDown: return "down";
  }
  return "?";
}

ScaleDecision Autoscaler::Tick(const std::vector<NodeLoadSample>& active) {
  stats_.ticks++;
  if (!config_.enabled || active.empty()) return ScaleDecision::kHold;
  if (cooldown_remaining_ > 0) {
    cooldown_remaining_--;
    stats_.cooldown_holds++;
    return ScaleDecision::kHold;
  }

  double backlog = 0.0;
  bool degraded = false;
  bool rt_busy = false;
  for (const NodeLoadSample& sample : active) {
    // interactive_depth is a subset of queue_depth, so the weight applies
    // as a surcharge on top of the class-blind count.
    backlog += static_cast<double>(sample.queue_depth);
    if (config_.interactive_backlog_weight > 1.0) {
      backlog += (config_.interactive_backlog_weight - 1.0) *
                 static_cast<double>(sample.interactive_depth);
    }
    degraded |= sample.enclave_failures_delta >= config_.degraded_failures_per_tick;
    rt_busy |= sample.rt_busy_lanes > 0;
  }
  const double per_node = backlog / static_cast<double>(active.size());
  const int n = static_cast<int>(active.size());

  if (per_node > config_.scale_up_backlog_per_node &&
      (config_.max_nodes <= 0 || n < config_.max_nodes)) {
    stats_.ups++;
    cooldown_remaining_ = config_.cooldown_ticks;
    return ScaleDecision::kUp;
  }
  if (per_node < config_.scale_down_backlog_per_node && !degraded &&
      n > config_.min_nodes) {
    if (rt_busy && config_.rt_busy_vetoes_scale_down) {
      stats_.rt_vetoes++;
      return ScaleDecision::kHold;
    }
    stats_.downs++;
    cooldown_remaining_ = config_.cooldown_ticks;
    return ScaleDecision::kDown;
  }
  return ScaleDecision::kHold;
}

}  // namespace sesemi::cluster
