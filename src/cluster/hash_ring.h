#ifndef SESEMI_CLUSTER_HASH_RING_H_
#define SESEMI_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sesemi::cluster {

/// Ring construction parameters.
struct HashRingConfig {
  /// Virtual nodes per physical node. More vnodes = smoother key spread and
  /// smaller churn variance on membership changes, at O(vnodes * nodes)
  /// ring size.
  int vnodes = 96;
  /// Seed mixed into every ring-position hash. The ring layout (and therefore
  /// every placement decision) is a pure function of (seed, membership), so a
  /// fixed seed makes cluster placement reproducible run-to-run.
  uint64_t seed = 0x5e5e313ULL;
  /// Bounded-load factor c: PickBounded skips a node whose load exceeds
  /// ceil(c * total_load / nodes) and walks clockwise to the next. c <= 1
  /// disables the bound (plain consistent hashing).
  double load_factor = 1.25;
};

/// Consistent-hash ring with the bounded-load variant of clockwise placement
/// (Mirrokni et al.: "consistent hashing with bounded loads"). Keys map to
/// the first virtual node clockwise of their hash; membership changes move
/// only the keys that mapped to the affected arcs, so adding or removing one
/// node remaps ~1/n of the key space instead of reshuffling everything.
///
/// Deterministic: placement is a pure function of (config.seed, membership,
/// key, loads). No RNG, no wall clock.
///
/// \threadsafety Const methods are safe concurrently; membership mutation
/// (AddNode/RemoveNode) requires external serialization against readers —
/// the dataplane holds its ring behind a shared_mutex.
class HashRing {
 public:
  explicit HashRing(const HashRingConfig& config = {});

  /// Insert `node` (idempotent). Ring positions derive from
  /// hash(seed, node, replica).
  void AddNode(int node);
  /// Remove `node` (idempotent). Only keys that mapped to `node` change
  /// placement.
  void RemoveNode(int node);
  bool Contains(int node) const;

  /// First node clockwise of hash(key); -1 on an empty ring.
  int Pick(std::string_view key) const;

  /// Bounded-load pick: walk clockwise from hash(key), skipping nodes whose
  /// `load(node)` already exceeds ceil(load_factor * (total_load + 1) /
  /// nodes) — the +1 counts the request being placed. Falls back to the
  /// unbounded home if every node is saturated (work-conserving), so it
  /// never fails on a non-empty ring.
  int PickBounded(std::string_view key,
                  const std::function<uint64_t(int)>& load,
                  uint64_t total_load) const;

  /// Distinct nodes in clockwise preference order starting at hash(key),
  /// at most `count` entries: the home first, then the reroute/steal
  /// fallback order.
  std::vector<int> Preference(std::string_view key, int count) const;

  size_t size() const { return nodes_.size(); }
  const std::vector<int>& nodes() const { return nodes_; }

  /// The stable 64-bit key hash the ring uses (exposed for tests).
  uint64_t KeyHash(std::string_view key) const;

 private:
  struct Vnode {
    uint64_t position;
    int node;
    bool operator<(const Vnode& other) const {
      return position != other.position ? position < other.position
                                        : node < other.node;
    }
  };

  size_t LowerBound(uint64_t position) const;

  HashRingConfig config_;
  std::vector<Vnode> ring_;  ///< sorted by position
  std::vector<int> nodes_;   ///< sorted member list
};

}  // namespace sesemi::cluster

#endif  // SESEMI_CLUSTER_HASH_RING_H_
