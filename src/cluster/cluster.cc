#include "cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "common/faultpoint.h"
#include "obs/trace.h"

namespace sesemi::cluster {

using serverless::InvocationResult;

std::string NodeDispatchFaultPoint(int node) {
  return "cluster.node." + std::to_string(node) + ".dispatch";
}

ClusterDataplane::ClusterDataplane(const ClusterConfig& config,
                                   sgx::AttestationAuthority* authority,
                                   storage::ObjectStore* storage,
                                   keyservice::KeyServiceServer* keyservice,
                                   Clock* clock)
    : config_(config),
      ring_(config.ring),
      autoscaler_(config.autoscale) {
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<RealClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = clock;
  }
  const int initial = std::max(config_.initial_nodes, 1);
  const int total = initial + std::max(config_.standby_nodes, 0);
  serverless::PlatformConfig node_config = config_.node;
  node_config.num_nodes = 1;  // one invoker per cluster node
  nodes_.reserve(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) {
    auto state = std::make_unique<NodeState>(i);
    state->platform = std::make_unique<serverless::ServerlessPlatform>(
        node_config, authority, storage, keyservice, clock);
    if (i < initial) {
      state->active.store(true, std::memory_order_release);
      ring_.AddNode(i);
    }
    nodes_.push_back(std::move(state));
  }
}

ClusterDataplane::~ClusterDataplane() = default;

Status ClusterDataplane::DeployFunction(const serverless::FunctionSpec& spec) {
  for (auto& node : nodes_) {
    Status status = node->platform->DeployFunction(spec);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

int ClusterDataplane::active_nodes() const {
  int n = 0;
  for (const auto& node : nodes_) {
    n += node->active.load(std::memory_order_acquire);
  }
  return n;
}

Status ClusterDataplane::ProbeNode(NodeState* node) {
  if (!FaultInjector::AnyArmed()) return Status::OK();
  return FaultInjector::Instance().Evaluate(node->fault_point);
}

std::future<InvocationResult> ClusterDataplane::InvokeAsync(
    const std::string& function, semirt::InferenceRequest request,
    const serverless::InvokeOptions& options) {
  // Root of the cluster hop: routing is synchronous on the caller thread, so
  // the platform's submit span (and everything the queued context carries
  // downstream) nests under this via the thread-current context.
  obs::Span route(obs::spans::kClusterRoute);
  const std::string key = function + "|" + request.model_id;

  // Snapshot placement under the shared ring lock: clockwise preference
  // order plus the bounded-load pick over current scheduler backlogs.
  std::vector<int> preference;
  int bounded = -1;
  {
    std::shared_lock<std::shared_mutex> lock(ring_mutex_);
    preference = ring_.Preference(key, total_nodes());
    if (!preference.empty()) {
      uint64_t total_backlog = 0;
      for (int node : ring_.nodes()) {
        total_backlog += nodes_[static_cast<size_t>(node)]->platform->queue_depth();
      }
      bounded = ring_.PickBounded(
          key,
          [this](int node) {
            return static_cast<uint64_t>(
                nodes_[static_cast<size_t>(node)]->platform->queue_depth());
          },
          total_backlog);
    }
  }
  if (preference.empty()) {
    no_capacity_.fetch_add(1, std::memory_order_relaxed);
    std::promise<InvocationResult> promise;
    InvocationResult result;
    result.response = Status::Unavailable("cluster: no active node");
    promise.set_value(std::move(result));
    return promise.get_future();
  }

  const int home = preference.front();
  int first = bounded >= 0 ? bounded : home;

  // Warm-slot stealing: a queued dispatch on a node that already has a live
  // container beats a cold start on a container-less home. Scan in ring
  // preference order so the steal target is deterministic.
  bool stolen = false;
  const TimeMicros now = clock_->Now();
  if (config_.enable_stealing &&
      nodes_[static_cast<size_t>(first)]->platform->ContainerCount(function) == 0) {
    for (int candidate : preference) {
      if (candidate == first) continue;
      NodeState* state = nodes_[static_cast<size_t>(candidate)].get();
      if (!state->active.load(std::memory_order_acquire)) continue;
      if (!Healthy(*state, now)) continue;
      if (state->platform->ContainerCount(function) > 0) {
        first = candidate;
        stolen = true;
        break;
      }
    }
  }

  // Attempt order: chosen target first, then the remaining preference order,
  // capped at reroute_attempts.
  std::vector<int> attempts;
  attempts.reserve(preference.size());
  attempts.push_back(first);
  for (int candidate : preference) {
    if (candidate != first) attempts.push_back(candidate);
  }
  const size_t max_attempts =
      std::max<size_t>(1, static_cast<size_t>(config_.reroute_attempts));
  if (attempts.size() > max_attempts) attempts.resize(max_attempts);

  // Pass 1 honors health cooldowns; pass 2 ignores them so a fully-ejected
  // cluster still probes for recovery instead of going dark.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < attempts.size(); ++i) {
      NodeState* state = nodes_[static_cast<size_t>(attempts[i])].get();
      if (!state->active.load(std::memory_order_acquire)) continue;
      if (pass == 0 && !Healthy(*state, now)) {
        reroutes_.fetch_add(1, std::memory_order_relaxed);
        obs::Tracer::EmitInstant(route.context(), obs::spans::kClusterReroute,
                                 "node", state->id);
        continue;
      }
      Status probe = ProbeNode(state);
      if (!probe.ok()) {
        state->unhealthy_until.store(now + config_.health_cooldown,
                                     std::memory_order_release);
        reroutes_.fetch_add(1, std::memory_order_relaxed);
        obs::Tracer::EmitInstant(route.context(), obs::spans::kClusterReroute,
                                 "node", state->id);
        continue;
      }
      state->routed.fetch_add(1, std::memory_order_relaxed);
      if (stolen && state->id == first) {
        state->steal_wins.fetch_add(1, std::memory_order_relaxed);
        steals_.fetch_add(1, std::memory_order_relaxed);
        obs::Tracer::EmitInstant(route.context(), obs::spans::kClusterSteal,
                                 "node", state->id);
      }
      if (state->id == home) home_hits_.fetch_add(1, std::memory_order_relaxed);
      invocations_.fetch_add(1, std::memory_order_relaxed);
      route.set_arg("node", state->id);
      return state->platform->InvokeAsync(function, std::move(request), options);
    }
    if (pass == 0) {
      // Only retry unhealthy-skipped nodes; probe failures already burned
      // their attempt this pass but may pass next pass (probabilistic
      // faults) — the loop re-probes them.
      continue;
    }
  }

  no_capacity_.fetch_add(1, std::memory_order_relaxed);
  std::promise<InvocationResult> promise;
  InvocationResult result;
  result.response =
      Status::Unavailable("cluster: no healthy node for " + function);
  promise.set_value(std::move(result));
  return promise.get_future();
}

Status ClusterDataplane::ActivateNode(int node) {
  if (node < 0 || node >= total_nodes()) {
    return Status::InvalidArgument("no such node");
  }
  NodeState* state = nodes_[static_cast<size_t>(node)].get();
  std::unique_lock<std::shared_mutex> lock(ring_mutex_);
  if (state->active.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("node already active");
  }
  state->active.store(true, std::memory_order_release);
  state->unhealthy_until.store(0, std::memory_order_release);
  ring_.AddNode(node);
  return Status::OK();
}

Status ClusterDataplane::DeactivateNode(int node) {
  if (node < 0 || node >= total_nodes()) {
    return Status::InvalidArgument("no such node");
  }
  NodeState* state = nodes_[static_cast<size_t>(node)].get();
  std::unique_lock<std::shared_mutex> lock(ring_mutex_);
  if (!state->active.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("node not active");
  }
  if (ring_.size() <= 1) {
    return Status::FailedPrecondition("cannot deactivate the last node");
  }
  state->active.store(false, std::memory_order_release);
  ring_.RemoveNode(node);
  return Status::OK();
}

int ClusterDataplane::AutoscaleTick() {
  std::lock_guard<std::mutex> lock(autoscale_mutex_);
  std::vector<NodeLoadSample> samples;
  samples.reserve(nodes_.size());
  for (auto& node : nodes_) {
    if (!node->active.load(std::memory_order_acquire)) continue;
    const sched::SchedStats sched_stats = node->platform->scheduler_stats();
    const serverless::RecoveryStats recovery = node->platform->recovery_stats();
    NodeLoadSample sample;
    sample.node = node->id;
    sample.queue_depth = sched_stats.queue_depth;
    sample.dispatched_delta = sched_stats.dispatched - node->last_dispatched;
    sample.enclave_failures_delta =
        recovery.enclave_failures - node->last_enclave_failures;
    const serverless::RtTierStats rt = node->platform->rt_stats();
    sample.rt_busy_lanes = rt.busy_lanes;
    sample.interactive_depth = rt.interactive_depth;
    node->last_dispatched = sched_stats.dispatched;
    node->last_enclave_failures = recovery.enclave_failures;
    samples.push_back(sample);
  }

  switch (autoscaler_.Tick(samples)) {
    case ScaleDecision::kHold:
      return 0;
    case ScaleDecision::kUp: {
      for (auto& node : nodes_) {
        if (!node->active.load(std::memory_order_acquire)) {
          if (ActivateNode(node->id).ok()) {
            scale_ups_.fetch_add(1, std::memory_order_relaxed);
            return +1;
          }
        }
      }
      return 0;  // no standby capacity left
    }
    case ScaleDecision::kDown: {
      // Drain the emptiest active node (ties: highest id, so node 0 — the
      // one every min_nodes=1 cluster keeps — drains last).
      int victim = -1;
      uint64_t victim_depth = 0;
      for (const NodeLoadSample& sample : samples) {
        if (victim < 0 || sample.queue_depth < victim_depth ||
            (sample.queue_depth == victim_depth && sample.node > victim)) {
          victim = sample.node;
          victim_depth = sample.queue_depth;
        }
      }
      if (victim >= 0 && DeactivateNode(victim).ok()) {
        scale_downs_.fetch_add(1, std::memory_order_relaxed);
        return -1;
      }
      return 0;
    }
  }
  return 0;
}

ClusterStats ClusterDataplane::stats() const {
  ClusterStats stats;
  stats.invocations = invocations_.load(std::memory_order_relaxed);
  stats.home_hits = home_hits_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.reroutes = reroutes_.load(std::memory_order_relaxed);
  stats.no_capacity = no_capacity_.load(std::memory_order_relaxed);
  stats.scale_ups = scale_ups_.load(std::memory_order_relaxed);
  stats.scale_downs = scale_downs_.load(std::memory_order_relaxed);
  const TimeMicros now = clock_->Now();
  stats.nodes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    ClusterNodeStats ns;
    ns.node = node->id;
    ns.active = node->active.load(std::memory_order_acquire);
    ns.healthy = Healthy(*node, now);
    ns.routed = node->routed.load(std::memory_order_relaxed);
    ns.steal_wins = node->steal_wins.load(std::memory_order_relaxed);
    ns.queue_depth = node->platform->queue_depth();
    ns.containers = node->platform->ContainerCount();
    const serverless::RtTierStats rt = node->platform->rt_stats();
    ns.rt_enabled = rt.enabled;
    ns.rt_busy_lanes = rt.busy_lanes;
    ns.rt_dispatches = rt.dispatches;
    stats.nodes.push_back(ns);
  }
  return stats;
}

void ClusterDataplane::RegisterMetrics(obs::MetricsRegistry* registry) {
  for (auto& node : nodes_) {
    node->platform->RegisterMetrics(registry,
                                    {{"node", std::to_string(node->id)}});
  }
  metrics_collector_ = obs::ScopedCollector(registry, [this]() {
    std::vector<obs::Sample> samples;
    const ClusterStats s = stats();
    samples.push_back(obs::MakeCounterSample(
        "sesemi_cluster_invocations_total", static_cast<double>(s.invocations)));
    samples.push_back(obs::MakeCounterSample(
        "sesemi_cluster_home_hits_total", static_cast<double>(s.home_hits)));
    samples.push_back(obs::MakeCounterSample(
        "sesemi_cluster_steals_total", static_cast<double>(s.steals)));
    samples.push_back(obs::MakeCounterSample(
        "sesemi_cluster_reroutes_total", static_cast<double>(s.reroutes)));
    samples.push_back(obs::MakeCounterSample(
        "sesemi_cluster_no_capacity_total", static_cast<double>(s.no_capacity)));
    samples.push_back(obs::MakeCounterSample(
        "sesemi_cluster_scale_ups_total", static_cast<double>(s.scale_ups)));
    samples.push_back(obs::MakeCounterSample(
        "sesemi_cluster_scale_downs_total", static_cast<double>(s.scale_downs)));
    samples.push_back(obs::MakeGaugeSample("sesemi_cluster_active_nodes",
                                           active_nodes()));
    for (const ClusterNodeStats& node : s.nodes) {
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"node", std::to_string(node.node)}};
      samples.push_back(obs::MakeCounterSample("sesemi_cluster_node_routed_total",
                                               static_cast<double>(node.routed),
                                               labels));
      samples.push_back(obs::MakeCounterSample(
          "sesemi_cluster_node_steal_wins_total",
          static_cast<double>(node.steal_wins), labels));
      samples.push_back(obs::MakeGaugeSample(
          "sesemi_cluster_node_queue_depth",
          static_cast<double>(node.queue_depth), labels));
      samples.push_back(obs::MakeGaugeSample("sesemi_cluster_node_containers",
                                             node.containers, labels));
      samples.push_back(obs::MakeGaugeSample("sesemi_cluster_node_active",
                                             node.active ? 1 : 0, labels));
      samples.push_back(obs::MakeGaugeSample("sesemi_cluster_node_healthy",
                                             node.healthy ? 1 : 0, labels));
      if (node.rt_enabled) {
        samples.push_back(obs::MakeGaugeSample(
            "sesemi_cluster_node_rt_busy_lanes", node.rt_busy_lanes, labels));
      }
    }
    return samples;
  });
}

}  // namespace sesemi::cluster
