#ifndef SESEMI_CLUSTER_AUTOSCALER_H_
#define SESEMI_CLUSTER_AUTOSCALER_H_

#include <cstdint>
#include <vector>

namespace sesemi::cluster {

/// Autoscaling policy knobs. The policy is deliberately hysteretic: scale-up
/// and scale-down thresholds are far apart and every decision starts a
/// cooldown, so a bursty MMPP workload does not flap the membership.
struct AutoscaleConfig {
  bool enabled = true;
  /// Add a node when the mean scheduler backlog per active node exceeds
  /// this (requests queued, from scheduler_stats().queue_depth).
  double scale_up_backlog_per_node = 8.0;
  /// Remove a node when the mean backlog per active node falls below this
  /// AND no node is unhealthy.
  double scale_down_backlog_per_node = 0.5;
  /// A node whose recovery counters report this many enclave failures since
  /// the last tick is treated as degraded: degraded nodes veto scale-down
  /// (capacity is about to relaunch, not idle) and count toward scale-up
  /// pressure.
  uint64_t degraded_failures_per_tick = 2;
  /// Interactive (RT-class) backlog counts this many times a bulk request
  /// toward scale-up pressure: latency-class work queued behind busy lanes
  /// is a stronger capacity signal than coalescible bulk depth. 1.0 =
  /// class-blind (the pre-tier behaviour).
  double interactive_backlog_weight = 4.0;
  /// When any node reports busy RT lanes, veto scale-down: the tier is
  /// serving latency-sensitive work right now, and removing a node would
  /// rebalance interactive traffic onto colder warm pools.
  bool rt_busy_vetoes_scale_down = true;
  int min_nodes = 1;
  /// 0 = no limit beyond the dataplane's standby pool.
  int max_nodes = 0;
  /// Ticks to hold after any Up/Down decision before deciding again.
  int cooldown_ticks = 2;
};

/// One node's load sample for a tick, distilled from
/// ServerlessPlatform::scheduler_stats() / recovery_stats() by the dataplane.
struct NodeLoadSample {
  int node = 0;
  uint64_t queue_depth = 0;        ///< requests waiting in the node scheduler
  uint64_t dispatched_delta = 0;   ///< dispatches since the previous tick
  uint64_t enclave_failures_delta = 0;  ///< poisonings since the previous tick
  /// RT tier occupancy (zero when the node runs without the tier).
  int rt_busy_lanes = 0;
  /// Requests parked in RT classes (a subset of queue_depth).
  uint64_t interactive_depth = 0;
};

enum class ScaleDecision { kHold, kUp, kDown };

const char* ToString(ScaleDecision decision);

/// Cumulative policy statistics.
struct AutoscalerStats {
  uint64_t ticks = 0;
  uint64_t ups = 0;
  uint64_t downs = 0;
  uint64_t cooldown_holds = 0;
  uint64_t rt_vetoes = 0;  ///< scale-downs suppressed by busy RT lanes
};

/// Stats-driven autoscaler: pure policy, no side effects. The dataplane
/// feeds it per-node samples each AutoscaleTick and applies the decision
/// (activate a standby node / drain an active one).
///
/// \threadsafety Not thread-safe; the dataplane serializes ticks.
class Autoscaler {
 public:
  explicit Autoscaler(const AutoscaleConfig& config) : config_(config) {}

  ScaleDecision Tick(const std::vector<NodeLoadSample>& active);

  const AutoscalerStats& stats() const { return stats_; }
  const AutoscaleConfig& config() const { return config_; }

 private:
  AutoscaleConfig config_;
  AutoscalerStats stats_;
  int cooldown_remaining_ = 0;
};

}  // namespace sesemi::cluster

#endif  // SESEMI_CLUSTER_AUTOSCALER_H_
