#ifndef SESEMI_MODEL_QUANTIZE_H_
#define SESEMI_MODEL_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/graph.h"

namespace sesemi::model {

/// Int8 weights for one quantizable layer (kConv2d / kDense): the layer's
/// K x N GEMM weight matrix quantized symmetrically per output channel
/// (column j covers [-127, 127] with scale[j] = absmax(column j) / 127, no
/// zero-point), the layout every int8 GEMM tier consumes after packing.
/// Biases stay fp32 in the graph's weight blob.
struct LayerQuant {
  int32_t layer = -1;  ///< index into ModelGraph::layers
  int32_t k = 0;       ///< GEMM K (kernel*kernel*in_c, or dense in_features)
  int32_t n = 0;       ///< GEMM N (out_channels, or dense units)
  std::vector<float> scales;    ///< n per-output-channel scales
  std::vector<int8_t> weights;  ///< k*n row-major quantized matrix
};

/// Quantized weights for every quantizable layer of one model, in layer
/// order. Produced at MODEL_LOAD by QuantizeModelWeights (or parsed from a
/// version-2 model file).
struct ModelQuant {
  std::vector<LayerQuant> layers;

  bool empty() const { return layers.empty(); }

  /// Resident bytes of the int8 matrices + fp32 scales.
  uint64_t QuantizedBytes() const;
};

/// True for layer kinds the int8 tier executes (kConv2d, kDense with a full
/// fp32 weight matrix). Depthwise convolutions stay fp32: their per-channel
/// GEMV strips are memory-bound on the activation stream, not the weights.
bool LayerQuantizable(const Layer& layer);

/// Quantize every quantizable layer of `graph` (which must carry full fp32
/// weights). Symmetric per-output-channel: scale[j] = absmax(col j)/127
/// (1.0 for an all-zero column), q = clamp(lrintf(w/scale), -127, 127).
ModelQuant QuantizeModelWeights(const ModelGraph& graph);

/// Reconstruct the fp32 matrix of one quantized layer: out[i*n + j] =
/// weights[i*n + j] * scales[j]. `out` must hold k*n floats. (Accuracy
/// analysis and tests; the runtime never dequantizes weights.)
void DequantizeLayer(const LayerQuant& lq, float* out);

/// Drop the fp32 weight matrices of every layer in `quant` from the graph's
/// weight blob — keeping biases and all non-quantized weights — and rewrite
/// every layer's weight_offset/weight_count for the compacted blob. This is
/// the memory story of the int8 tier: the int8 panels replace the fp32
/// matrices instead of sitting next to them. Each quantized layer's slice
/// must be either the full k*n + n floats (matrix then bias — it gets
/// compacted) or already bias-only (left as is); anything else fails.
Status CompactQuantizedWeights(ModelGraph* graph, const ModelQuant& quant);

}  // namespace sesemi::model

#endif  // SESEMI_MODEL_QUANTIZE_H_
