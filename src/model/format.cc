#include "model/format.h"

#include <cstring>

#include "crypto/gcm.h"
#include "crypto/sha256.h"

namespace sesemi::model {

namespace {
constexpr char kMagic[4] = {'S', 'S', 'M', 'I'};

void WriteShape(ByteWriter* w, const TensorShape& s) {
  w->WriteUint32(static_cast<uint32_t>(s.h));
  w->WriteUint32(static_cast<uint32_t>(s.w));
  w->WriteUint32(static_cast<uint32_t>(s.c));
}

bool ReadShape(ByteReader* r, TensorShape* s) {
  uint32_t h, w, c;
  if (!r->ReadUint32(&h) || !r->ReadUint32(&w) || !r->ReadUint32(&c)) return false;
  s->h = static_cast<int32_t>(h);
  s->w = static_cast<int32_t>(w);
  s->c = static_cast<int32_t>(c);
  return true;
}

/// Everything both versions share: magic, version, header, layer table, fp32
/// weight blob.
void WriteCommonBody(ByteWriter* w, const ModelGraph& graph, uint32_t version) {
  w->WriteBytes(ByteSpan(reinterpret_cast<const uint8_t*>(kMagic), 4));
  w->WriteUint32(version);
  w->WriteLengthPrefixedString(graph.model_id);
  w->WriteLengthPrefixedString(graph.architecture);
  WriteShape(w, graph.input_shape);

  w->WriteUint32(static_cast<uint32_t>(graph.layers.size()));
  for (const Layer& layer : graph.layers) {
    w->WriteUint8(static_cast<uint8_t>(layer.kind));
    w->WriteLengthPrefixedString(layer.name);
    w->WriteUint32(static_cast<uint32_t>(layer.inputs.size()));
    for (int32_t in : layer.inputs) w->WriteUint32(static_cast<uint32_t>(in));
    w->WriteUint32(static_cast<uint32_t>(layer.kernel));
    w->WriteUint32(static_cast<uint32_t>(layer.stride));
    w->WriteUint32(static_cast<uint32_t>(layer.out_channels));
    w->WriteUint32(static_cast<uint32_t>(layer.units));
    w->WriteUint64(layer.weight_offset);
    w->WriteUint64(layer.weight_count);
    WriteShape(w, layer.output_shape);
  }

  w->WriteUint64(graph.weights.size());
  // Weights are stored little-endian IEEE-754, i.e. memcpy on the platforms
  // we target; a portability shim would go here for big-endian hosts.
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(graph.weights.data());
  w->WriteBytes(ByteSpan(raw, graph.weights.size() * sizeof(float)));
}

Bytes FinishWithDigest(ByteWriter&& w) {
  Bytes body = std::move(w).Take();
  Bytes digest = crypto::Sha256::HashToBytes(body);
  Append(&body, digest);
  return body;
}

/// Digest check + magic + version. On success `*r` is positioned after the
/// version field and covers only the body (trailer stripped).
Status OpenBody(ByteSpan wire, ByteReader* r, uint32_t* version) {
  if (wire.size() < 4 + 4 + crypto::kSha256DigestSize) {
    return Status::Corruption("model blob too short");
  }
  ByteSpan body(wire.data(), wire.size() - crypto::kSha256DigestSize);
  ByteSpan trailer(wire.data() + body.size(), crypto::kSha256DigestSize);
  Bytes digest = crypto::Sha256::HashToBytes(body);
  if (!ConstantTimeEqual(digest, trailer)) {
    return Status::Corruption("model integrity digest mismatch");
  }

  *r = ByteReader(body);
  Bytes magic;
  if (!r->ReadBytes(4, &magic) || std::memcmp(magic.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad model magic");
  }
  if (!r->ReadUint32(version)) return Status::Corruption("truncated model header");
  return Status::OK();
}

/// Header + layer table + weight blob (the part shared by both versions).
/// Does not validate the graph; version-2 callers parse the quant section
/// first.
Status ParseCommonBody(ByteReader* r, bool expect_more, ModelGraph* graph) {
  if (!r->ReadLengthPrefixedString(&graph->model_id) ||
      !r->ReadLengthPrefixedString(&graph->architecture) ||
      !ReadShape(r, &graph->input_shape)) {
    return Status::Corruption("truncated model header");
  }

  uint32_t layer_count = 0;
  if (!r->ReadUint32(&layer_count)) return Status::Corruption("truncated layer table");
  if (layer_count > 1'000'000) return Status::Corruption("absurd layer count");
  graph->layers.reserve(layer_count);
  for (uint32_t i = 0; i < layer_count; ++i) {
    Layer layer;
    uint8_t kind = 0;
    uint32_t input_count = 0;
    if (!r->ReadUint8(&kind) || kind > static_cast<uint8_t>(LayerKind::kSoftmax) ||
        !r->ReadLengthPrefixedString(&layer.name) || !r->ReadUint32(&input_count) ||
        input_count > 16) {
      return Status::Corruption("truncated layer entry");
    }
    layer.kind = static_cast<LayerKind>(kind);
    layer.inputs.resize(input_count);
    for (uint32_t j = 0; j < input_count; ++j) {
      uint32_t in = 0;
      if (!r->ReadUint32(&in)) return Status::Corruption("truncated layer inputs");
      layer.inputs[j] = static_cast<int32_t>(in);
    }
    uint32_t kernel, stride, out_channels, units;
    if (!r->ReadUint32(&kernel) || !r->ReadUint32(&stride) ||
        !r->ReadUint32(&out_channels) || !r->ReadUint32(&units) ||
        !r->ReadUint64(&layer.weight_offset) || !r->ReadUint64(&layer.weight_count) ||
        !ReadShape(r, &layer.output_shape)) {
      return Status::Corruption("truncated layer entry");
    }
    layer.kernel = static_cast<int32_t>(kernel);
    layer.stride = static_cast<int32_t>(stride);
    layer.out_channels = static_cast<int32_t>(out_channels);
    layer.units = static_cast<int32_t>(units);
    graph->layers.push_back(std::move(layer));
  }

  uint64_t weight_count = 0;
  if (!r->ReadUint64(&weight_count)) return Status::Corruption("truncated weights");
  const uint64_t weight_bytes = weight_count * sizeof(float);
  if (expect_more ? r->remaining() < weight_bytes : r->remaining() != weight_bytes) {
    return Status::Corruption("weight blob size mismatch");
  }
  Bytes raw;
  if (!r->ReadBytes(weight_bytes, &raw)) {
    return Status::Corruption("truncated weights");
  }
  graph->weights.resize(weight_count);
  std::memcpy(graph->weights.data(), raw.data(), raw.size());
  return Status::OK();
}

Status ParseQuantSection(ByteReader* r, const ModelGraph& graph,
                         ModelQuant* quant) {
  uint32_t count = 0;
  if (!r->ReadUint32(&count)) return Status::Corruption("truncated quant section");
  if (count > graph.layers.size()) {
    return Status::Corruption("quant section names more layers than the model has");
  }
  quant->layers.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LayerQuant lq;
    uint32_t layer = 0, k = 0, n = 0;
    if (!r->ReadUint32(&layer) || !r->ReadUint32(&k) || !r->ReadUint32(&n)) {
      return Status::Corruption("truncated quant entry");
    }
    if (layer >= graph.layers.size() || !LayerQuantizable(graph.layers[layer])) {
      return Status::Corruption("quant entry names a non-quantizable layer");
    }
    if (k == 0 || n == 0 || static_cast<uint64_t>(k) * n > (1ull << 28)) {
      return Status::Corruption("absurd quant matrix dims");
    }
    lq.layer = static_cast<int32_t>(layer);
    lq.k = static_cast<int32_t>(k);
    lq.n = static_cast<int32_t>(n);

    Bytes scales_raw, weights_raw;
    if (!r->ReadBytes(static_cast<size_t>(n) * sizeof(float), &scales_raw) ||
        !r->ReadBytes(static_cast<size_t>(k) * n, &weights_raw)) {
      return Status::Corruption("truncated quant entry");
    }
    lq.scales.resize(n);
    std::memcpy(lq.scales.data(), scales_raw.data(), scales_raw.size());
    lq.weights.resize(static_cast<size_t>(k) * n);
    std::memcpy(lq.weights.data(), weights_raw.data(), weights_raw.size());
    quant->layers.push_back(std::move(lq));
  }
  if (r->remaining() != 0) return Status::Corruption("trailing bytes after quant section");
  return Status::OK();
}

}  // namespace

Bytes SerializeModel(const ModelGraph& graph) {
  ByteWriter w;
  WriteCommonBody(&w, graph, kModelFormatVersion);
  return FinishWithDigest(std::move(w));
}

Bytes SerializeQuantizedModel(const ModelGraph& graph, const ModelQuant& quant) {
  ByteWriter w;
  WriteCommonBody(&w, graph, kModelFormatVersionInt8);
  w.WriteUint32(static_cast<uint32_t>(quant.layers.size()));
  for (const LayerQuant& lq : quant.layers) {
    w.WriteUint32(static_cast<uint32_t>(lq.layer));
    w.WriteUint32(static_cast<uint32_t>(lq.k));
    w.WriteUint32(static_cast<uint32_t>(lq.n));
    w.WriteBytes(ByteSpan(reinterpret_cast<const uint8_t*>(lq.scales.data()),
                          lq.scales.size() * sizeof(float)));
    w.WriteBytes(ByteSpan(reinterpret_cast<const uint8_t*>(lq.weights.data()),
                          lq.weights.size()));
  }
  return FinishWithDigest(std::move(w));
}

Result<ModelGraph> ParseModel(ByteSpan wire) {
  ByteReader r{ByteSpan()};
  uint32_t version = 0;
  SESEMI_RETURN_IF_ERROR(OpenBody(wire, &r, &version));
  if (version == kModelFormatVersionInt8) {
    return Status::InvalidArgument(
        "model is int8-quantized (format version 2); use ParseQuantizedModel");
  }
  if (version != kModelFormatVersion) {
    return Status::InvalidArgument("unsupported model format version " +
                                   std::to_string(version));
  }
  ModelGraph graph;
  SESEMI_RETURN_IF_ERROR(ParseCommonBody(&r, /*expect_more=*/false, &graph));
  SESEMI_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

Result<QuantizedModelFile> ParseQuantizedModel(ByteSpan wire) {
  ByteReader r{ByteSpan()};
  uint32_t version = 0;
  SESEMI_RETURN_IF_ERROR(OpenBody(wire, &r, &version));
  if (version != kModelFormatVersion && version != kModelFormatVersionInt8) {
    return Status::InvalidArgument("unsupported model format version " +
                                   std::to_string(version));
  }
  QuantizedModelFile file;
  const bool quantized = version == kModelFormatVersionInt8;
  SESEMI_RETURN_IF_ERROR(ParseCommonBody(&r, /*expect_more=*/quantized, &file.graph));
  if (quantized) {
    SESEMI_RETURN_IF_ERROR(ParseQuantSection(&r, file.graph, &file.quant));
  } else if (r.remaining() != 0) {
    return Status::Corruption("weight blob size mismatch");
  }
  SESEMI_RETURN_IF_ERROR(file.graph.Validate());
  return file;
}

Result<Bytes> EncryptModel(const ModelGraph& graph, ByteSpan model_key) {
  Bytes plain = SerializeModel(graph);
  return crypto::GcmSeal(model_key, ToBytes(graph.model_id), plain);
}

Result<ModelGraph> DecryptModel(ByteSpan sealed, ByteSpan model_key,
                                const std::string& model_id) {
  SESEMI_ASSIGN_OR_RETURN(Bytes plain,
                          crypto::GcmOpen(model_key, ToBytes(model_id), sealed));
  SESEMI_ASSIGN_OR_RETURN(ModelGraph graph, ParseModel(plain));
  if (graph.model_id != model_id) {
    return Status::Corruption("decrypted model id does not match requested id");
  }
  return graph;
}

}  // namespace sesemi::model
