#include "model/format.h"

#include <cstring>

#include "crypto/gcm.h"
#include "crypto/sha256.h"

namespace sesemi::model {

namespace {
constexpr char kMagic[4] = {'S', 'S', 'M', 'I'};

void WriteShape(ByteWriter* w, const TensorShape& s) {
  w->WriteUint32(static_cast<uint32_t>(s.h));
  w->WriteUint32(static_cast<uint32_t>(s.w));
  w->WriteUint32(static_cast<uint32_t>(s.c));
}

bool ReadShape(ByteReader* r, TensorShape* s) {
  uint32_t h, w, c;
  if (!r->ReadUint32(&h) || !r->ReadUint32(&w) || !r->ReadUint32(&c)) return false;
  s->h = static_cast<int32_t>(h);
  s->w = static_cast<int32_t>(w);
  s->c = static_cast<int32_t>(c);
  return true;
}
}  // namespace

Bytes SerializeModel(const ModelGraph& graph) {
  ByteWriter w;
  w.WriteBytes(ByteSpan(reinterpret_cast<const uint8_t*>(kMagic), 4));
  w.WriteUint32(kModelFormatVersion);
  w.WriteLengthPrefixedString(graph.model_id);
  w.WriteLengthPrefixedString(graph.architecture);
  WriteShape(&w, graph.input_shape);

  w.WriteUint32(static_cast<uint32_t>(graph.layers.size()));
  for (const Layer& layer : graph.layers) {
    w.WriteUint8(static_cast<uint8_t>(layer.kind));
    w.WriteLengthPrefixedString(layer.name);
    w.WriteUint32(static_cast<uint32_t>(layer.inputs.size()));
    for (int32_t in : layer.inputs) w.WriteUint32(static_cast<uint32_t>(in));
    w.WriteUint32(static_cast<uint32_t>(layer.kernel));
    w.WriteUint32(static_cast<uint32_t>(layer.stride));
    w.WriteUint32(static_cast<uint32_t>(layer.out_channels));
    w.WriteUint32(static_cast<uint32_t>(layer.units));
    w.WriteUint64(layer.weight_offset);
    w.WriteUint64(layer.weight_count);
    WriteShape(&w, layer.output_shape);
  }

  w.WriteUint64(graph.weights.size());
  // Weights are stored little-endian IEEE-754, i.e. memcpy on the platforms
  // we target; a portability shim would go here for big-endian hosts.
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(graph.weights.data());
  w.WriteBytes(ByteSpan(raw, graph.weights.size() * sizeof(float)));

  Bytes body = std::move(w).Take();
  Bytes digest = crypto::Sha256::HashToBytes(body);
  Append(&body, digest);
  return body;
}

Result<ModelGraph> ParseModel(ByteSpan wire) {
  if (wire.size() < 4 + 4 + crypto::kSha256DigestSize) {
    return Status::Corruption("model blob too short");
  }
  ByteSpan body(wire.data(), wire.size() - crypto::kSha256DigestSize);
  ByteSpan trailer(wire.data() + body.size(), crypto::kSha256DigestSize);
  Bytes digest = crypto::Sha256::HashToBytes(body);
  if (!ConstantTimeEqual(digest, trailer)) {
    return Status::Corruption("model integrity digest mismatch");
  }

  ByteReader r(body);
  Bytes magic;
  if (!r.ReadBytes(4, &magic) || std::memcmp(magic.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad model magic");
  }
  uint32_t version = 0;
  if (!r.ReadUint32(&version)) return Status::Corruption("truncated model header");
  if (version != kModelFormatVersion) {
    return Status::InvalidArgument("unsupported model format version " +
                                   std::to_string(version));
  }

  ModelGraph graph;
  if (!r.ReadLengthPrefixedString(&graph.model_id) ||
      !r.ReadLengthPrefixedString(&graph.architecture) ||
      !ReadShape(&r, &graph.input_shape)) {
    return Status::Corruption("truncated model header");
  }

  uint32_t layer_count = 0;
  if (!r.ReadUint32(&layer_count)) return Status::Corruption("truncated layer table");
  if (layer_count > 1'000'000) return Status::Corruption("absurd layer count");
  graph.layers.reserve(layer_count);
  for (uint32_t i = 0; i < layer_count; ++i) {
    Layer layer;
    uint8_t kind = 0;
    uint32_t input_count = 0;
    if (!r.ReadUint8(&kind) || kind > static_cast<uint8_t>(LayerKind::kSoftmax) ||
        !r.ReadLengthPrefixedString(&layer.name) || !r.ReadUint32(&input_count) ||
        input_count > 16) {
      return Status::Corruption("truncated layer entry");
    }
    layer.kind = static_cast<LayerKind>(kind);
    layer.inputs.resize(input_count);
    for (uint32_t j = 0; j < input_count; ++j) {
      uint32_t in = 0;
      if (!r.ReadUint32(&in)) return Status::Corruption("truncated layer inputs");
      layer.inputs[j] = static_cast<int32_t>(in);
    }
    uint32_t kernel, stride, out_channels, units;
    if (!r.ReadUint32(&kernel) || !r.ReadUint32(&stride) ||
        !r.ReadUint32(&out_channels) || !r.ReadUint32(&units) ||
        !r.ReadUint64(&layer.weight_offset) || !r.ReadUint64(&layer.weight_count) ||
        !ReadShape(&r, &layer.output_shape)) {
      return Status::Corruption("truncated layer entry");
    }
    layer.kernel = static_cast<int32_t>(kernel);
    layer.stride = static_cast<int32_t>(stride);
    layer.out_channels = static_cast<int32_t>(out_channels);
    layer.units = static_cast<int32_t>(units);
    graph.layers.push_back(std::move(layer));
  }

  uint64_t weight_count = 0;
  if (!r.ReadUint64(&weight_count)) return Status::Corruption("truncated weights");
  if (r.remaining() != weight_count * sizeof(float)) {
    return Status::Corruption("weight blob size mismatch");
  }
  Bytes raw;
  if (!r.ReadBytes(weight_count * sizeof(float), &raw)) {
    return Status::Corruption("truncated weights");
  }
  graph.weights.resize(weight_count);
  std::memcpy(graph.weights.data(), raw.data(), raw.size());

  SESEMI_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

Result<Bytes> EncryptModel(const ModelGraph& graph, ByteSpan model_key) {
  Bytes plain = SerializeModel(graph);
  return crypto::GcmSeal(model_key, ToBytes(graph.model_id), plain);
}

Result<ModelGraph> DecryptModel(ByteSpan sealed, ByteSpan model_key,
                                const std::string& model_id) {
  SESEMI_ASSIGN_OR_RETURN(Bytes plain,
                          crypto::GcmOpen(model_key, ToBytes(model_id), sealed));
  SESEMI_ASSIGN_OR_RETURN(ModelGraph graph, ParseModel(plain));
  if (graph.model_id != model_id) {
    return Status::Corruption("decrypted model id does not match requested id");
  }
  return graph;
}

}  // namespace sesemi::model
