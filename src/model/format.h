#ifndef SESEMI_MODEL_FORMAT_H_
#define SESEMI_MODEL_FORMAT_H_

#include "common/bytes.h"
#include "common/result.h"
#include "model/graph.h"

namespace sesemi::model {

/// Binary model format version understood by this build.
constexpr uint32_t kModelFormatVersion = 1;

/// Serialize a model to the SeSeMI binary format:
///   magic "SSMI" | version | header (id, arch, input shape) |
///   layer table | weight blob | SHA-256 integrity trailer.
/// The trailer catches accidental corruption; tamper-resistance comes from
/// AES-GCM when the model is encrypted for upload.
Bytes SerializeModel(const ModelGraph& graph);

/// Parse and validate a serialized model. Rejects bad magic, unsupported
/// versions, truncated layer tables, weight-blob size mismatches, digest
/// mismatches, and graphs that fail ModelGraph::Validate().
Result<ModelGraph> ParseModel(ByteSpan wire);

/// Encrypt a serialized model under the owner's model key K_M, binding the
/// model id as AAD so a ciphertext cannot be re-labelled as another model.
/// Layout: nonce || ciphertext || tag (GcmSeal).
Result<Bytes> EncryptModel(const ModelGraph& graph, ByteSpan model_key);

/// Decrypt + parse an encrypted model. `model_id` must match the AAD used at
/// encryption time (SeMIRT passes the id from the request).
Result<ModelGraph> DecryptModel(ByteSpan sealed, ByteSpan model_key,
                                const std::string& model_id);

}  // namespace sesemi::model

#endif  // SESEMI_MODEL_FORMAT_H_
