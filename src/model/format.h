#ifndef SESEMI_MODEL_FORMAT_H_
#define SESEMI_MODEL_FORMAT_H_

#include "common/bytes.h"
#include "common/result.h"
#include "model/graph.h"
#include "model/quantize.h"

namespace sesemi::model {

/// Binary model format version understood by this build.
constexpr uint32_t kModelFormatVersion = 1;

/// Version 2 adds a trailing int8 weight section: per quantized layer, the
/// per-output-channel scales and the K x N int8 matrix. The fp32 weight blob
/// of a version-2 model is normally compacted (CompactQuantizedWeights) so
/// quantized matrices are carried once, as int8 — roughly 4x smaller on the
/// wire and in enclave memory.
constexpr uint32_t kModelFormatVersionInt8 = 2;

/// Serialize a model to the SeSeMI binary format:
///   magic "SSMI" | version | header (id, arch, input shape) |
///   layer table | weight blob | SHA-256 integrity trailer.
/// The trailer catches accidental corruption; tamper-resistance comes from
/// AES-GCM when the model is encrypted for upload.
Bytes SerializeModel(const ModelGraph& graph);

/// Parse and validate a serialized model. Rejects bad magic, unsupported
/// versions, truncated layer tables, weight-blob size mismatches, digest
/// mismatches, and graphs that fail ModelGraph::Validate(). Version-2
/// (quantized) models are rejected here — their fp32 blob is compacted, so
/// callers must go through ParseQuantizedModel to get the int8 weights too.
Result<ModelGraph> ParseModel(ByteSpan wire);

/// A parsed model together with its int8 weight section (empty for
/// version-1 files).
struct QuantizedModelFile {
  ModelGraph graph;
  ModelQuant quant;
};

/// Serialize a model with its int8 weight section (format version 2).
/// `graph` is written as passed — normally after CompactQuantizedWeights, so
/// the fp32 blob carries only biases and non-quantized weights.
Bytes SerializeQuantizedModel(const ModelGraph& graph, const ModelQuant& quant);

/// Parse either format version: version 1 yields an empty quant section,
/// version 2 yields the int8 weights alongside the (compacted) graph.
Result<QuantizedModelFile> ParseQuantizedModel(ByteSpan wire);

/// Encrypt a serialized model under the owner's model key K_M, binding the
/// model id as AAD so a ciphertext cannot be re-labelled as another model.
/// Layout: nonce || ciphertext || tag (GcmSeal).
Result<Bytes> EncryptModel(const ModelGraph& graph, ByteSpan model_key);

/// Decrypt + parse an encrypted model. `model_id` must match the AAD used at
/// encryption time (SeMIRT passes the id from the request).
Result<ModelGraph> DecryptModel(ByteSpan sealed, ByteSpan model_key,
                                const std::string& model_id);

}  // namespace sesemi::model

#endif  // SESEMI_MODEL_FORMAT_H_
