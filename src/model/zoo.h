#ifndef SESEMI_MODEL_ZOO_H_
#define SESEMI_MODEL_ZOO_H_

#include "common/result.h"
#include "model/graph.h"

namespace sesemi::model {

/// The three architectures the paper evaluates (Table I), plus kHybNet — a
/// deeper mixed conv/dense scenario model (not from the paper) whose channel
/// counts sit off the 16-wide GEMM panel grid, so the packed-conv edge paths
/// and the batch-parallel executor run on a non-trivial graph in benches.
enum class Architecture { kMbNet, kRsNet, kDsNet, kHybNet };

const char* ToString(Architecture arch);
Result<Architecture> ArchitectureFromString(const std::string& name);

/// Serialized size of the paper's models (Table I): MobileNetV1 17 MB,
/// ResNet101v2 170 MB, DenseNet121 44 MB. kHybNet is not a paper model; its
/// nominal full-scale size is 64 MB.
uint64_t PaperModelBytes(Architecture arch);

/// Specification for a synthetic model.
///
/// The builder lays down the architecture's characteristic backbone
/// (depthwise-separable convs for MBNET, residual blocks for RSNET, dense
/// concat blocks for DSNET) and then sizes a classifier head so the
/// *serialized* model lands within ~1% of `scale * PaperModelBytes(arch)`.
/// Tests use small scales; full-scale builds reproduce Table I.
struct ZooSpec {
  std::string model_id = "m0";
  Architecture arch = Architecture::kMbNet;
  double scale = 0.01;  ///< fraction of the paper's model size
  int32_t input_hw = 32;
  int32_t classes = 10;
  uint64_t seed = 0x5e5e;
};

/// Build a synthetic model per `spec`. Fails if the target size is too small
/// to fit the backbone (raise `scale`).
Result<ModelGraph> BuildModel(const ZooSpec& spec);

/// A random well-scaled input tensor for `graph`, serialized as raw float32
/// bytes (the request payload format).
Bytes GenerateRandomInput(const ModelGraph& graph, uint64_t seed);

/// Deserialize an Execute() output buffer (raw float32) into scores.
Result<std::vector<float>> ParseOutput(ByteSpan raw);

}  // namespace sesemi::model

#endif  // SESEMI_MODEL_ZOO_H_
