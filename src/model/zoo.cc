#include "model/zoo.h"

#include <cmath>
#include <cstring>

#include "common/rng.h"

namespace sesemi::model {

const char* ToString(Architecture arch) {
  switch (arch) {
    case Architecture::kMbNet: return "mbnet";
    case Architecture::kRsNet: return "rsnet";
    case Architecture::kDsNet: return "dsnet";
    case Architecture::kHybNet: return "hybnet";
  }
  return "unknown";
}

Result<Architecture> ArchitectureFromString(const std::string& name) {
  if (name == "mbnet") return Architecture::kMbNet;
  if (name == "rsnet") return Architecture::kRsNet;
  if (name == "dsnet") return Architecture::kDsNet;
  if (name == "hybnet") return Architecture::kHybNet;
  return Status::InvalidArgument("unknown architecture: " + name);
}

uint64_t PaperModelBytes(Architecture arch) {
  switch (arch) {
    case Architecture::kMbNet: return 17ull << 20;
    case Architecture::kRsNet: return 170ull << 20;
    case Architecture::kDsNet: return 44ull << 20;
    case Architecture::kHybNet: return 64ull << 20;
  }
  return 0;
}

namespace {

/// Incrementally assembles a ModelGraph, computing shapes and initializing
/// weights with fan-in-scaled Gaussians.
class GraphBuilder {
 public:
  GraphBuilder(const ZooSpec& spec)
      : rng_(spec.seed) {
    graph_.model_id = spec.model_id;
    graph_.architecture = ToString(spec.arch);
    graph_.input_shape = {spec.input_hw, spec.input_hw, 3};
    Layer input;
    input.kind = LayerKind::kInput;
    input.name = "input";
    input.output_shape = graph_.input_shape;
    graph_.layers.push_back(input);
  }

  int32_t last() const { return static_cast<int32_t>(graph_.layers.size()) - 1; }
  const TensorShape& shape_of(int32_t idx) const {
    return graph_.layers[idx].output_shape;
  }

  int32_t Conv(int32_t from, int k, int stride, int out_c) {
    const TensorShape& in = shape_of(from);
    Layer layer;
    layer.kind = LayerKind::kConv2d;
    layer.name = "conv" + std::to_string(last() + 1);
    layer.inputs = {from};
    layer.kernel = k;
    layer.stride = stride;
    layer.out_channels = out_c;
    layer.output_shape = {(in.h + stride - 1) / stride, (in.w + stride - 1) / stride,
                          out_c};
    uint64_t count = static_cast<uint64_t>(k) * k * in.c * out_c + out_c;
    AttachWeights(&layer, count, static_cast<uint64_t>(k) * k * in.c);
    return Push(std::move(layer));
  }

  int32_t DepthwiseConv(int32_t from, int k, int stride) {
    const TensorShape& in = shape_of(from);
    Layer layer;
    layer.kind = LayerKind::kDepthwiseConv2d;
    layer.name = "dwconv" + std::to_string(last() + 1);
    layer.inputs = {from};
    layer.kernel = k;
    layer.stride = stride;
    layer.out_channels = in.c;
    layer.output_shape = {(in.h + stride - 1) / stride, (in.w + stride - 1) / stride,
                          in.c};
    uint64_t count = static_cast<uint64_t>(k) * k * in.c + in.c;
    AttachWeights(&layer, count, static_cast<uint64_t>(k) * k);
    return Push(std::move(layer));
  }

  int32_t Dense(int32_t from, int units) {
    uint64_t in_features = shape_of(from).elements();
    Layer layer;
    layer.kind = LayerKind::kDense;
    layer.name = "dense" + std::to_string(last() + 1);
    layer.inputs = {from};
    layer.units = units;
    layer.output_shape = {1, 1, units};
    AttachWeights(&layer, in_features * units + units, in_features);
    return Push(std::move(layer));
  }

  int32_t Relu(int32_t from) {
    Layer layer;
    layer.kind = LayerKind::kRelu;
    layer.name = "relu" + std::to_string(last() + 1);
    layer.inputs = {from};
    layer.output_shape = shape_of(from);
    return Push(std::move(layer));
  }

  int32_t MaxPool(int32_t from) {
    const TensorShape& in = shape_of(from);
    Layer layer;
    layer.kind = LayerKind::kMaxPool;
    layer.name = "maxpool" + std::to_string(last() + 1);
    layer.inputs = {from};
    layer.output_shape = {(in.h + 1) / 2, (in.w + 1) / 2, in.c};
    return Push(std::move(layer));
  }

  int32_t GlobalAvgPool(int32_t from) {
    Layer layer;
    layer.kind = LayerKind::kGlobalAvgPool;
    layer.name = "gap" + std::to_string(last() + 1);
    layer.inputs = {from};
    layer.output_shape = {1, 1, shape_of(from).c};
    return Push(std::move(layer));
  }

  int32_t Add(int32_t a, int32_t b) {
    Layer layer;
    layer.kind = LayerKind::kAdd;
    layer.name = "add" + std::to_string(last() + 1);
    layer.inputs = {a, b};
    layer.output_shape = shape_of(a);
    return Push(std::move(layer));
  }

  int32_t Concat(int32_t a, int32_t b) {
    const TensorShape& sa = shape_of(a);
    const TensorShape& sb = shape_of(b);
    Layer layer;
    layer.kind = LayerKind::kConcat;
    layer.name = "concat" + std::to_string(last() + 1);
    layer.inputs = {a, b};
    layer.output_shape = {sa.h, sa.w, sa.c + sb.c};
    return Push(std::move(layer));
  }

  int32_t Softmax(int32_t from) {
    Layer layer;
    layer.kind = LayerKind::kSoftmax;
    layer.name = "softmax" + std::to_string(last() + 1);
    layer.inputs = {from};
    layer.output_shape = shape_of(from);
    return Push(std::move(layer));
  }

  uint64_t weight_count() const { return graph_.weights.size(); }

  ModelGraph Finish() { return std::move(graph_); }

 private:
  int32_t Push(Layer layer) {
    graph_.layers.push_back(std::move(layer));
    return last();
  }

  void AttachWeights(Layer* layer, uint64_t count, uint64_t fan_in) {
    layer->weight_offset = graph_.weights.size();
    layer->weight_count = count;
    float sigma = 1.0f / std::sqrt(static_cast<float>(fan_in > 0 ? fan_in : 1));
    graph_.weights.reserve(graph_.weights.size() + count);
    for (uint64_t i = 0; i < count; ++i) {
      graph_.weights.push_back(static_cast<float>(rng_.Gaussian()) * sigma);
    }
  }

  ModelGraph graph_;
  Rng rng_;
};

int32_t BuildMbNetBackbone(GraphBuilder* b) {
  // MobileNetV1 flavour: stem conv then depthwise-separable blocks with
  // channel doubling, spatial reduction via stride-2 depthwise convs.
  int32_t x = b->Conv(0, 3, 2, 16);
  x = b->Relu(x);
  int channels[] = {16, 32, 32, 64};
  for (int c : channels) {
    x = b->DepthwiseConv(x, 3, 1);
    x = b->Relu(x);
    x = b->Conv(x, 1, 1, c);  // pointwise
    x = b->Relu(x);
  }
  x = b->MaxPool(x);
  return b->GlobalAvgPool(x);
}

int32_t BuildRsNetBackbone(GraphBuilder* b) {
  // ResNet flavour: stages of pre-activation residual blocks; ResNet101 is
  // the deepest of the three, so this backbone has the most layers.
  int32_t x = b->Conv(0, 3, 1, 8);
  x = b->Relu(x);
  int stage_channels[] = {8, 12, 16};
  for (size_t stage = 0; stage < 3; ++stage) {
    int c = stage_channels[stage];
    if (stage > 0) {
      x = b->Conv(x, 1, 1, c);  // projection to the new width
      x = b->MaxPool(x);
    }
    for (int block = 0; block < 3; ++block) {
      int32_t shortcut = x;
      int32_t y = b->Conv(x, 3, 1, c);
      y = b->Relu(y);
      y = b->Conv(y, 3, 1, c);
      x = b->Add(y, shortcut);
      x = b->Relu(x);
    }
  }
  return b->GlobalAvgPool(x);
}

int32_t BuildDsNetBackbone(GraphBuilder* b) {
  // DenseNet flavour: dense blocks where each conv's output is concatenated
  // onto the running feature map; transitions halve channels and resolution.
  constexpr int kGrowth = 8;
  int32_t x = b->Conv(0, 3, 1, 16);
  x = b->Relu(x);
  for (int block = 0; block < 2; ++block) {
    for (int conv = 0; conv < 3; ++conv) {
      int32_t y = b->Conv(x, 3, 1, kGrowth);
      y = b->Relu(y);
      x = b->Concat(x, y);
    }
    int c = b->shape_of(x).c / 2;
    x = b->Conv(x, 1, 1, c);  // transition
    x = b->MaxPool(x);
  }
  return b->GlobalAvgPool(x);
}

int32_t BuildHybNetBackbone(GraphBuilder* b) {
  // Mixed conv/dense scenario model: deeper than the three reproductions,
  // with residual stages whose channel counts (24/40/72) sit off the 16-wide
  // panel grid — every conv hits the packed-GEMM ragged edge — plus a dense
  // trunk ahead of the sized classifier head so more than one fully
  // connected layer rides the packed GEMV path.
  int32_t x = b->Conv(0, 3, 1, 24);
  x = b->Relu(x);
  int stage_channels[] = {24, 40, 72};
  for (size_t stage = 0; stage < 3; ++stage) {
    int c = stage_channels[stage];
    if (stage > 0) {
      x = b->Conv(x, 3, 2, c);  // strided reduction into the new width
      x = b->Relu(x);
    }
    for (int block = 0; block < 2; ++block) {
      int32_t shortcut = x;
      int32_t y = b->Conv(x, 3, 1, c);
      y = b->Relu(y);
      y = b->Conv(y, 1, 1, c);  // pointwise mix
      x = b->Add(y, shortcut);
      x = b->Relu(x);
    }
  }
  x = b->GlobalAvgPool(x);
  x = b->Dense(x, 96);
  return b->Relu(x);
}

}  // namespace

Result<ModelGraph> BuildModel(const ZooSpec& spec) {
  if (spec.scale <= 0 || spec.input_hw < 8 || spec.classes < 2) {
    return Status::InvalidArgument("bad zoo spec");
  }
  GraphBuilder b(spec);
  int32_t features;
  switch (spec.arch) {
    case Architecture::kMbNet: features = BuildMbNetBackbone(&b); break;
    case Architecture::kRsNet: features = BuildRsNetBackbone(&b); break;
    case Architecture::kDsNet: features = BuildDsNetBackbone(&b); break;
    case Architecture::kHybNet: features = BuildHybNetBackbone(&b); break;
    default: return Status::InvalidArgument("bad architecture");
  }

  // Size the classifier head so the serialized model hits the target.
  uint64_t target_bytes =
      static_cast<uint64_t>(spec.scale * static_cast<double>(PaperModelBytes(spec.arch)));
  uint64_t backbone_weights = b.weight_count();
  uint64_t feature_count = b.shape_of(features).elements();
  // Serialized size ~= 4 * weights + layer-table overhead (~100 B / layer).
  uint64_t overhead = 4096;
  uint64_t target_weights = target_bytes > overhead ? (target_bytes - overhead) / 4 : 0;
  if (target_weights < backbone_weights + feature_count * 2) {
    return Status::InvalidArgument(
        "target size too small for the " + std::string(ToString(spec.arch)) +
        " backbone; need >= " +
        std::to_string((backbone_weights + feature_count * 2) * 4 + overhead) +
        " bytes");
  }
  uint64_t remaining = target_weights - backbone_weights;
  // hidden layer: f*u + u weights; head: u*classes + classes.
  uint64_t denom = feature_count + 1 + static_cast<uint64_t>(spec.classes);
  uint64_t hidden_units =
      (remaining - static_cast<uint64_t>(spec.classes)) / denom;
  if (hidden_units == 0) hidden_units = 1;

  int32_t x = b.Dense(features, static_cast<int32_t>(hidden_units));
  x = b.Relu(x);
  x = b.Dense(x, spec.classes);
  b.Softmax(x);

  ModelGraph graph = b.Finish();
  SESEMI_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

Bytes GenerateRandomInput(const ModelGraph& graph, uint64_t seed) {
  Rng rng(seed);
  size_t n = graph.input_shape.elements();
  std::vector<float> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  }
  Bytes out(n * sizeof(float));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

Result<std::vector<float>> ParseOutput(ByteSpan raw) {
  if (raw.size() % sizeof(float) != 0) {
    return Status::Corruption("output size not a multiple of float");
  }
  std::vector<float> values(raw.size() / sizeof(float));
  std::memcpy(values.data(), raw.data(), raw.size());
  return values;
}

}  // namespace sesemi::model
