#include "model/quantize.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sesemi::model {

uint64_t ModelQuant::QuantizedBytes() const {
  uint64_t total = 0;
  for (const LayerQuant& lq : layers) {
    total += lq.weights.size() * sizeof(int8_t) + lq.scales.size() * sizeof(float);
  }
  return total;
}

bool LayerQuantizable(const Layer& layer) {
  return layer.kind == LayerKind::kConv2d || layer.kind == LayerKind::kDense;
}

namespace {

/// GEMM dims of a quantizable layer (K = patch / in_features, N = columns).
void GemmDims(const ModelGraph& graph, const Layer& layer, int32_t* k,
              int32_t* n) {
  const TensorShape& in = graph.layers[layer.inputs[0]].output_shape;
  if (layer.kind == LayerKind::kConv2d) {
    *k = layer.kernel * layer.kernel * in.c;
    *n = layer.out_channels;
  } else {
    *k = static_cast<int32_t>(in.elements());
    *n = layer.units;
  }
}

}  // namespace

ModelQuant QuantizeModelWeights(const ModelGraph& graph) {
  ModelQuant quant;
  for (size_t i = 0; i < graph.layers.size(); ++i) {
    const Layer& layer = graph.layers[i];
    if (!LayerQuantizable(layer)) continue;
    LayerQuant lq;
    lq.layer = static_cast<int32_t>(i);
    GemmDims(graph, layer, &lq.k, &lq.n);
    const uint64_t matrix = static_cast<uint64_t>(lq.k) * lq.n;
    if (layer.weight_count != matrix + lq.n) continue;  // not a full fp32 slice
    const float* w = graph.weights.data() + layer.weight_offset;

    lq.scales.assign(lq.n, 0.0f);
    for (int32_t r = 0; r < lq.k; ++r) {
      const float* row = w + static_cast<uint64_t>(r) * lq.n;
      for (int32_t j = 0; j < lq.n; ++j) {
        lq.scales[j] = std::max(lq.scales[j], std::fabs(row[j]));
      }
    }
    for (float& s : lq.scales) s = s > 0.0f ? s / 127.0f : 1.0f;

    lq.weights.resize(matrix);
    for (int32_t r = 0; r < lq.k; ++r) {
      const float* row = w + static_cast<uint64_t>(r) * lq.n;
      int8_t* qrow = lq.weights.data() + static_cast<uint64_t>(r) * lq.n;
      for (int32_t j = 0; j < lq.n; ++j) {
        const long q = std::lrintf(row[j] / lq.scales[j]);
        qrow[j] = static_cast<int8_t>(std::min<long>(127, std::max<long>(-127, q)));
      }
    }
    quant.layers.push_back(std::move(lq));
  }
  return quant;
}

void DequantizeLayer(const LayerQuant& lq, float* out) {
  for (int32_t r = 0; r < lq.k; ++r) {
    const int8_t* qrow = lq.weights.data() + static_cast<uint64_t>(r) * lq.n;
    float* row = out + static_cast<uint64_t>(r) * lq.n;
    for (int32_t j = 0; j < lq.n; ++j) {
      row[j] = static_cast<float>(qrow[j]) * lq.scales[j];
    }
  }
}

Status CompactQuantizedWeights(ModelGraph* graph, const ModelQuant& quant) {
  std::vector<const LayerQuant*> by_layer(graph->layers.size(), nullptr);
  for (const LayerQuant& lq : quant.layers) {
    if (lq.layer < 0 ||
        static_cast<size_t>(lq.layer) >= graph->layers.size()) {
      return Status::InvalidArgument("quantized layer index out of range");
    }
    by_layer[lq.layer] = &lq;
  }

  // Rebuild the blob from the layer slices in blob order, so relative layout
  // is preserved no matter how the original blob was laid out.
  std::vector<size_t> order;
  for (size_t i = 0; i < graph->layers.size(); ++i) {
    if (graph->layers[i].weight_count > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return graph->layers[a].weight_offset < graph->layers[b].weight_offset;
  });

  std::vector<float> compact;
  compact.reserve(graph->weights.size());
  for (size_t i : order) {
    Layer& layer = graph->layers[i];
    const uint64_t end = layer.weight_offset + layer.weight_count;
    if (end > graph->weights.size() || end < layer.weight_offset) {
      return Status::InvalidArgument("layer " + layer.name +
                                     " weight slice out of bounds");
    }
    const float* src = graph->weights.data() + layer.weight_offset;
    const uint64_t new_offset = compact.size();
    const LayerQuant* lq = by_layer[i];
    if (lq != nullptr &&
        layer.weight_count == static_cast<uint64_t>(lq->n)) {
      lq = nullptr;  // already compacted to bias-only: plain copy below
    }
    if (lq != nullptr) {
      const uint64_t matrix = static_cast<uint64_t>(lq->k) * lq->n;
      if (layer.weight_count != matrix + lq->n) {
        return Status::InvalidArgument(
            "layer " + layer.name +
            " slice matches neither a full fp32 matrix+bias nor a bias");
      }
      compact.insert(compact.end(), src + matrix, src + matrix + lq->n);
      layer.weight_count = lq->n;  // bias only
    } else {
      compact.insert(compact.end(), src, src + layer.weight_count);
    }
    layer.weight_offset = new_offset;
  }
  graph->weights = std::move(compact);
  return Status::OK();
}

}  // namespace sesemi::model
