#ifndef SESEMI_MODEL_GRAPH_H_
#define SESEMI_MODEL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace sesemi::model {

/// Activation tensor shape (height, width, channels). Dense layers flatten
/// to 1 x 1 x features.
struct TensorShape {
  int32_t h = 0;
  int32_t w = 0;
  int32_t c = 0;

  size_t elements() const {
    return static_cast<size_t>(h) * static_cast<size_t>(w) * static_cast<size_t>(c);
  }
  bool operator==(const TensorShape&) const = default;
};

/// Supported layer kinds — the operator set needed for the paper's three
/// architectures (MobileNetV1: conv + depthwise-separable; ResNet: residual
/// adds; DenseNet: channel concats).
enum class LayerKind : uint8_t {
  kInput = 0,
  kConv2d = 1,           ///< same-padding KxK convolution + bias
  kDepthwiseConv2d = 2,  ///< per-channel KxK convolution + bias
  kDense = 3,            ///< fully connected over the flattened input
  kRelu = 4,
  kMaxPool = 5,          ///< 2x2, stride 2
  kGlobalAvgPool = 6,    ///< HxWxC -> 1x1xC
  kAdd = 7,              ///< elementwise sum of two same-shape inputs
  kConcat = 8,           ///< channel concat of two same-HxW inputs
  kSoftmax = 9,          ///< over the flattened input
};

const char* ToString(LayerKind kind);

/// One node in the dataflow graph. `inputs` index earlier layers; layer 0 is
/// always the kInput placeholder. Weighted layers view a slice
/// [weight_offset, weight_offset + weight_count) of the model's weight blob.
struct Layer {
  LayerKind kind = LayerKind::kInput;
  std::string name;
  std::vector<int32_t> inputs;
  int32_t kernel = 0;        ///< conv kernel size
  int32_t stride = 1;        ///< conv stride
  int32_t out_channels = 0;  ///< conv output channels
  int32_t units = 0;         ///< dense output features
  uint64_t weight_offset = 0;
  uint64_t weight_count = 0;
  TensorShape output_shape;
};

/// A complete model: topology plus a flat float32 weight blob. This is the
/// plaintext form that exists only inside enclaves at inference time.
struct ModelGraph {
  std::string model_id;      ///< M_oid in the paper's notation
  std::string architecture;  ///< "mbnet" | "rsnet" | "dsnet"
  TensorShape input_shape;
  std::vector<Layer> layers;
  std::vector<float> weights;

  /// Approximate in-memory footprint (weights dominate).
  uint64_t WeightBytes() const { return weights.size() * sizeof(float); }

  /// Number of distinct output classes (units of the final dense layer), or
  /// 0 if the model has none.
  int32_t OutputClasses() const;

  /// Structural validation: topological input order, shape agreement for
  /// Add/Concat, weight slices within bounds, exactly one kInput at index 0.
  Status Validate() const;

  /// Peak number of float elements needed for single-buffer-per-layer
  /// execution (all layer outputs live); the interpreter arena bound.
  uint64_t TotalActivationElements() const;
};

}  // namespace sesemi::model

#endif  // SESEMI_MODEL_GRAPH_H_
