#include "model/graph.h"

namespace sesemi::model {

const char* ToString(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv2d: return "conv2d";
    case LayerKind::kDepthwiseConv2d: return "dwconv2d";
    case LayerKind::kDense: return "dense";
    case LayerKind::kRelu: return "relu";
    case LayerKind::kMaxPool: return "maxpool";
    case LayerKind::kGlobalAvgPool: return "gap";
    case LayerKind::kAdd: return "add";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kSoftmax: return "softmax";
  }
  return "unknown";
}

int32_t ModelGraph::OutputClasses() const {
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    if (it->kind == LayerKind::kDense) return it->units;
  }
  return 0;
}

Status ModelGraph::Validate() const {
  if (layers.empty() || layers[0].kind != LayerKind::kInput) {
    return Status::InvalidArgument("model must start with an input layer");
  }
  if (input_shape.elements() == 0) {
    return Status::InvalidArgument("empty input shape");
  }
  if (layers[0].output_shape != input_shape) {
    return Status::InvalidArgument("input layer shape mismatch");
  }
  for (size_t i = 0; i < layers.size(); ++i) {
    const Layer& layer = layers[i];
    if (i > 0 && layer.kind == LayerKind::kInput) {
      return Status::InvalidArgument("multiple input layers");
    }
    if (i > 0 && layer.inputs.empty()) {
      return Status::InvalidArgument("layer " + layer.name + " has no inputs");
    }
    for (int32_t in : layer.inputs) {
      if (in < 0 || static_cast<size_t>(in) >= i) {
        return Status::InvalidArgument("layer " + layer.name +
                                       " references a non-earlier layer");
      }
    }
    if (layer.weight_count > 0) {
      uint64_t end = layer.weight_offset + layer.weight_count;
      if (end > weights.size() || end < layer.weight_offset) {
        return Status::InvalidArgument("layer " + layer.name +
                                       " weight slice out of bounds");
      }
    }
    switch (layer.kind) {
      case LayerKind::kAdd: {
        if (layer.inputs.size() != 2) {
          return Status::InvalidArgument("add layer needs exactly 2 inputs");
        }
        const auto& a = layers[layer.inputs[0]].output_shape;
        const auto& b = layers[layer.inputs[1]].output_shape;
        if (!(a == b)) {
          return Status::InvalidArgument("add layer shape mismatch at " + layer.name);
        }
        break;
      }
      case LayerKind::kConcat: {
        if (layer.inputs.size() != 2) {
          return Status::InvalidArgument("concat layer needs exactly 2 inputs");
        }
        const auto& a = layers[layer.inputs[0]].output_shape;
        const auto& b = layers[layer.inputs[1]].output_shape;
        if (a.h != b.h || a.w != b.w) {
          return Status::InvalidArgument("concat layer spatial mismatch at " +
                                         layer.name);
        }
        break;
      }
      case LayerKind::kConv2d:
      case LayerKind::kDepthwiseConv2d:
        if (layer.kernel <= 0 || layer.stride <= 0) {
          return Status::InvalidArgument("bad conv params at " + layer.name);
        }
        break;
      case LayerKind::kDense:
        if (layer.units <= 0) {
          return Status::InvalidArgument("bad dense units at " + layer.name);
        }
        break;
      default:
        break;
    }
    if (layer.output_shape.elements() == 0) {
      return Status::InvalidArgument("layer " + layer.name + " has empty output");
    }
  }
  return Status::OK();
}

uint64_t ModelGraph::TotalActivationElements() const {
  uint64_t total = 0;
  for (const Layer& layer : layers) total += layer.output_shape.elements();
  return total;
}

}  // namespace sesemi::model
