#ifndef SESEMI_STORAGE_OBJECT_STORE_H_
#define SESEMI_STORAGE_OBJECT_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"

namespace sesemi::storage {

/// Cloud storage abstraction. The paper's deployment stores encrypted models
/// and function images in cloud object storage (Figure 2); the evaluation
/// emulates it with NFS and quotes Azure Blob latencies (§VI-A).
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  virtual Status Put(const std::string& key, Bytes data) = 0;
  virtual Result<Bytes> Get(const std::string& key) const = 0;
  virtual Status Delete(const std::string& key) = 0;
  virtual bool Exists(const std::string& key) const = 0;
  virtual Result<uint64_t> Size(const std::string& key) const = 0;
  /// Keys with the given prefix, sorted.
  virtual std::vector<std::string> List(const std::string& prefix) const = 0;
};

/// Thread-safe in-memory object store.
class InMemoryObjectStore final : public ObjectStore {
 public:
  Status Put(const std::string& key, Bytes data) override;
  Result<Bytes> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) const override;
  Result<uint64_t> Size(const std::string& key) const override;
  std::vector<std::string> List(const std::string& prefix) const override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Bytes> objects_;
};

/// Latency model for simulated storage access: latency = base + bytes / rate.
struct StorageLatencyModel {
  TimeMicros base_micros = 0;
  double bytes_per_second = 1e12;

  TimeMicros TransferTime(uint64_t bytes) const {
    return base_micros +
           static_cast<TimeMicros>(static_cast<double>(bytes) / bytes_per_second * 1e6);
  }

  /// Cluster NFS, as in the paper's testbed (10 Gbps Ethernet).
  static StorageLatencyModel LocalNfs() {
    return {SecondsToMicros(0.002), 1.0e9};
  }

  /// Azure Blob same-region, calibrated to §VI-A: 17 MB ≈ 0.21 s,
  /// 44 MB ≈ 0.55 s, 170 MB ≈ 2.1 s.
  static StorageLatencyModel AzureBlobSameRegion() {
    return {SecondsToMicros(0.01), 85.0e6};
  }
};

}  // namespace sesemi::storage

#endif  // SESEMI_STORAGE_OBJECT_STORE_H_
