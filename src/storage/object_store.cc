#include "storage/object_store.h"

#include "common/faultpoint.h"

namespace sesemi::storage {

Status InMemoryObjectStore::Put(const std::string& key, Bytes data) {
  std::lock_guard<std::mutex> lock(mutex_);
  objects_[key] = std::move(data);
  return Status::OK();
}

Result<Bytes> InMemoryObjectStore::Get(const std::string& key) const {
  SESEMI_FAULT_POINT(faults::kStorageGet);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  return it->second;
}

Status InMemoryObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (objects_.erase(key) == 0) return Status::NotFound("no object: " + key);
  return Status::OK();
}

bool InMemoryObjectStore::Exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.count(key) > 0;
}

Result<uint64_t> InMemoryObjectStore::Size(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  return static_cast<uint64_t>(it->second.size());
}

std::vector<std::string> InMemoryObjectStore::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

}  // namespace sesemi::storage
