#ifndef SESEMI_WORKLOAD_GENERATORS_H_
#define SESEMI_WORKLOAD_GENERATORS_H_

#include <string>
#include <vector>

#include "common/clock.h"

namespace sesemi::workload {

/// One request arrival in an open-loop workload trace.
struct Arrival {
  TimeMicros time = 0;
  std::string model_id;
  std::string user_id;
};

/// Deterministic arrivals at a fixed rate (the paper's single-node
/// throughput sweeps, Figure 12).
std::vector<Arrival> FixedRate(double rps, double duration_s,
                               const std::string& model_id,
                               const std::string& user_id,
                               TimeMicros start = 0);

/// Poisson process with rate `rps` (Table III's popular-model traffic).
std::vector<Arrival> Poisson(double rps, double duration_s,
                             const std::string& model_id,
                             const std::string& user_id, uint64_t seed,
                             TimeMicros start = 0);

/// Two-state Markov-modulated Poisson process (Figure 13/14's workload):
/// the rate alternates between `low_rps` and `high_rps`, dwelling in each
/// state for an exponentially distributed time with mean `mean_dwell_s`.
struct MmppSpec {
  double low_rps = 20;
  double high_rps = 40;
  double mean_dwell_s = 60;
  double duration_s = 900;
  uint64_t seed = 42;
};
std::vector<Arrival> Mmpp(const MmppSpec& spec, const std::string& model_id,
                          const std::string& user_id, TimeMicros start = 0);

/// An interactive session (Table IV): the models are queried sequentially,
/// each issued `think_time_s` after the previous one completes — approximated
/// open-loop with a fixed gap.
std::vector<Arrival> InteractiveSession(TimeMicros start,
                                        const std::vector<std::string>& models,
                                        const std::string& user_id,
                                        double think_time_s = 2.0);

/// Merge traces into one time-ordered trace.
std::vector<Arrival> Merge(std::vector<std::vector<Arrival>> traces);

/// One tenant of a multi-tenant trace: a (function/model, user) stream at its
/// own Poisson rate.
struct TenantSpec {
  std::string model_id;
  std::string user_id;
  double rps = 1.0;
};

/// Skewed multi-tenant traffic (bench_sched's workload): one independent
/// Poisson stream per tenant (seeded from `seed` + tenant index), merged into
/// a single time-ordered trace.
std::vector<Arrival> MultiTenantPoisson(const std::vector<TenantSpec>& tenants,
                                        double duration_s, uint64_t seed,
                                        TimeMicros start = 0);

/// Zipf(alpha) popularity split of `total_rps` over `n` tenants: rate of
/// tenant i is proportional to 1/(i+1)^alpha, normalized to sum to
/// `total_rps`. alpha = 0 is uniform; alpha ~ 1 is the classic skew used for
/// serverless multi-tenant studies.
std::vector<double> ZipfRates(int n, double alpha, double total_rps);

/// Per-second request-rate series of a trace (for plotting Figure 13a).
std::vector<double> RatePerSecond(const std::vector<Arrival>& trace,
                                  double duration_s);

}  // namespace sesemi::workload

#endif  // SESEMI_WORKLOAD_GENERATORS_H_
