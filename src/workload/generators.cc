#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sesemi::workload {

std::vector<Arrival> FixedRate(double rps, double duration_s,
                               const std::string& model_id,
                               const std::string& user_id, TimeMicros start) {
  std::vector<Arrival> trace;
  if (rps <= 0) return trace;
  const TimeMicros gap = static_cast<TimeMicros>(1e6 / rps);
  const TimeMicros end = start + SecondsToMicros(duration_s);
  for (TimeMicros t = start; t < end; t += gap) {
    trace.push_back({t, model_id, user_id});
  }
  return trace;
}

std::vector<Arrival> Poisson(double rps, double duration_s,
                             const std::string& model_id,
                             const std::string& user_id, uint64_t seed,
                             TimeMicros start) {
  std::vector<Arrival> trace;
  if (rps <= 0) return trace;
  Rng rng(seed);
  const TimeMicros end = start + SecondsToMicros(duration_s);
  double t = static_cast<double>(start);
  for (;;) {
    t += rng.Exponential(rps) * 1e6;
    if (t >= static_cast<double>(end)) break;
    trace.push_back({static_cast<TimeMicros>(t), model_id, user_id});
  }
  return trace;
}

std::vector<Arrival> Mmpp(const MmppSpec& spec, const std::string& model_id,
                          const std::string& user_id, TimeMicros start) {
  std::vector<Arrival> trace;
  Rng rng(spec.seed);
  const TimeMicros end = start + SecondsToMicros(spec.duration_s);
  double now = static_cast<double>(start);
  bool high = false;
  while (now < static_cast<double>(end)) {
    double dwell_s = rng.Exponential(1.0 / spec.mean_dwell_s);
    double state_end = std::min(now + dwell_s * 1e6, static_cast<double>(end));
    double rate = high ? spec.high_rps : spec.low_rps;
    double t = now;
    for (;;) {
      t += rng.Exponential(rate) * 1e6;
      if (t >= state_end) break;
      trace.push_back({static_cast<TimeMicros>(t), model_id, user_id});
    }
    now = state_end;
    high = !high;
  }
  return trace;
}

std::vector<Arrival> InteractiveSession(TimeMicros start,
                                        const std::vector<std::string>& models,
                                        const std::string& user_id,
                                        double think_time_s) {
  std::vector<Arrival> trace;
  TimeMicros t = start;
  for (const std::string& model : models) {
    trace.push_back({t, model, user_id});
    t += SecondsToMicros(think_time_s);
  }
  return trace;
}

std::vector<Arrival> Merge(std::vector<std::vector<Arrival>> traces) {
  std::vector<Arrival> merged;
  size_t total = 0;
  for (const auto& t : traces) total += t.size();
  merged.reserve(total);
  for (auto& t : traces) {
    merged.insert(merged.end(), std::make_move_iterator(t.begin()),
                  std::make_move_iterator(t.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
  return merged;
}

std::vector<Arrival> MultiTenantPoisson(const std::vector<TenantSpec>& tenants,
                                        double duration_s, uint64_t seed,
                                        TimeMicros start) {
  std::vector<std::vector<Arrival>> traces;
  traces.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    traces.push_back(Poisson(tenants[i].rps, duration_s, tenants[i].model_id,
                             tenants[i].user_id, seed + i, start));
  }
  return Merge(std::move(traces));
}

std::vector<double> ZipfRates(int n, double alpha, double total_rps) {
  std::vector<double> rates(std::max(n, 0));
  double norm = 0.0;
  for (int i = 0; i < n; ++i) {
    rates[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    norm += rates[i];
  }
  for (int i = 0; i < n && norm > 0; ++i) rates[i] *= total_rps / norm;
  return rates;
}

std::vector<double> RatePerSecond(const std::vector<Arrival>& trace,
                                  double duration_s) {
  std::vector<double> rates(static_cast<size_t>(duration_s) + 1, 0.0);
  for (const Arrival& a : trace) {
    size_t bucket = static_cast<size_t>(MicrosToSeconds(a.time));
    if (bucket < rates.size()) rates[bucket] += 1.0;
  }
  return rates;
}

}  // namespace sesemi::workload
