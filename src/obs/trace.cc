#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.h"

namespace sesemi::obs {

namespace trace_internal {
std::atomic<uint32_t> g_enabled{0};
}  // namespace trace_internal

namespace {

// One per-thread span buffer. Single writer (the owning thread); concurrent
// snapshot readers see a consistent prefix via the release/acquire head.
// Fill-once semantics: slots [0, min(head, capacity)) are written exactly
// once and never mutated afterwards, so readers never race a rewrite. When
// the ring fills, the newest span is dropped and counted — recording never
// blocks and never allocates.
struct SpanRing {
  explicit SpanRing(size_t cap) : capacity(cap), slots(new SpanRecord[cap]) {}

  void Push(const SpanRecord& record) {
    const size_t index = head.load(std::memory_order_relaxed);
    if (index >= capacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      if (!warned.exchange(true, std::memory_order_relaxed)) {
        SESEMI_WLOG << "obs: span ring full (capacity " << capacity
                    << "), dropping newest spans on this thread";
      }
      return;
    }
    slots[index] = record;
    head.store(index + 1, std::memory_order_release);
  }

  const size_t capacity;
  std::unique_ptr<SpanRecord[]> slots;
  std::atomic<size_t> head{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<bool> warned{false};
  uint32_t thread_index = 0;
};

// Registry of every ring ever created. Rings are retired (not freed) on
// Reset so a stale thread-local pointer can never dangle; threads notice the
// generation bump and re-register lazily.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<SpanRing>> rings;   // live generation
  std::vector<std::unique_ptr<SpanRing>> retired;  // kept for TLS safety
  size_t ring_capacity = Tracer::kDefaultRingCapacity;
  std::atomic<uint64_t> generation{1};  // relaxed-readable on the hot path
  uint32_t next_thread_index = 0;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

struct ThreadSlot {
  uint64_t generation = 0;
  SpanRing* ring = nullptr;
};
thread_local ThreadSlot t_slot;
thread_local TraceContext t_current;

std::atomic<uint64_t> g_next_id{1};
std::atomic<Clock*> g_clock{nullptr};

TimeMicros SteadyNowMicros() {
  // One process-wide origin: spans from every component share a time base.
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

SpanRing* RingForThisThread() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const uint64_t generation =
      registry.generation.load(std::memory_order_relaxed);
  if (t_slot.generation == generation && t_slot.ring != nullptr) {
    return t_slot.ring;
  }
  auto ring = std::make_unique<SpanRing>(registry.ring_capacity);
  ring->thread_index = registry.next_thread_index++;
  t_slot.ring = ring.get();
  t_slot.generation = generation;
  registry.rings.push_back(std::move(ring));
  return t_slot.ring;
}

}  // namespace

void Tracer::Enable() {
  trace_internal::g_enabled.store(1, std::memory_order_release);
}

void Tracer::Disable() {
  trace_internal::g_enabled.store(0, std::memory_order_release);
}

TimeMicros Tracer::Now() {
  Clock* clock = g_clock.load(std::memory_order_acquire);
  return clock != nullptr ? clock->Now() : SteadyNowMicros();
}

void Tracer::SetClock(Clock* clock) {
  g_clock.store(clock, std::memory_order_release);
}

void Tracer::Reset(size_t ring_capacity) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.generation.fetch_add(1, std::memory_order_relaxed);
  registry.ring_capacity = ring_capacity == 0 ? 1 : ring_capacity;
  for (auto& ring : registry.rings) registry.retired.push_back(std::move(ring));
  registry.rings.clear();
}

TraceContext Tracer::NewContext() {
  TraceContext context;
  context.trace_id = NextId();
  context.span_id = NextId();
  return context;
}

TraceContext Tracer::EmitSpan(TraceContext parent, const char* name,
                              TimeMicros start, TimeMicros end,
                              const char* arg_name, int64_t arg, int priority) {
  if (!Enabled()) return {};
  SpanRecord record;
  record.trace_id = parent.valid() ? parent.trace_id : NextId();
  record.span_id = NextId();
  record.parent_id = parent.span_id;
  record.name = name;
  record.start = start;
  record.end = end;
  record.arg_name = arg_name;
  record.arg = arg;
  record.priority = static_cast<int32_t>(priority);
  Record(record);
  TraceContext context;
  context.trace_id = record.trace_id;
  context.span_id = record.span_id;
  return context;
}

void Tracer::EmitInstant(TraceContext parent, const char* name,
                         const char* arg_name, int64_t arg) {
  if (!Enabled()) return;
  const TimeMicros now = Now();
  (void)EmitSpan(parent, name, now, now, arg_name, arg);
}

void Tracer::EmitRoot(TraceContext context, const char* name, TimeMicros start,
                      TimeMicros end, const char* arg_name, int64_t arg) {
  if (!Enabled() || !context.valid()) return;
  SpanRecord record;
  record.trace_id = context.trace_id;
  record.span_id = context.span_id;
  record.parent_id = 0;
  record.name = name;
  record.start = start;
  record.end = end;
  record.arg_name = arg_name;
  record.arg = arg;
  Record(record);
}

TraceContext Tracer::Current() { return t_current; }

void Tracer::SetCurrent(TraceContext context) { t_current = context; }

TraceSnapshot Tracer::Snap() {
  TraceSnapshot snapshot;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto collect = [&snapshot](const std::vector<std::unique_ptr<SpanRing>>& rings,
                             bool count_drops) {
    for (const auto& ring : rings) {
      const size_t published =
          std::min(ring->head.load(std::memory_order_acquire), ring->capacity);
      for (size_t i = 0; i < published; ++i) {
        SpanRecord record = ring->slots[i];
        record.thread_index = ring->thread_index;
        snapshot.spans.push_back(record);
      }
      if (count_drops) {
        snapshot.dropped += ring->dropped.load(std::memory_order_relaxed);
      }
    }
  };
  collect(registry.rings, /*count_drops=*/true);
  return snapshot;
}

void Tracer::Record(const SpanRecord& record) {
  // Fast path: the cached ring, validated by a relaxed generation probe. A
  // span recorded into a ring retired concurrently by Reset is lost (never
  // corrupted): retired rings stay allocated and are excluded from Snap.
  SpanRing* ring = t_slot.ring;
  if (ring == nullptr ||
      t_slot.generation !=
          GetRegistry().generation.load(std::memory_order_relaxed)) {
    ring = RingForThisThread();
  }
  ring->Push(record);
}

uint64_t Tracer::NextId() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

std::vector<StageRollup> Tracer::Rollup(const TraceSnapshot& snapshot) {
  std::map<std::string, StageRollup> by_name;
  for (const SpanRecord& span : snapshot.spans) {
    if (span.name == nullptr) continue;
    const TimeMicros duration = span.end >= span.start ? span.end - span.start : 0;
    StageRollup& entry = by_name[span.name];
    if (entry.count == 0) {
      entry.name = span.name;
      entry.min = duration;
      entry.max = duration;
    }
    entry.count++;
    entry.total += duration;
    entry.min = std::min(entry.min, duration);
    entry.max = std::max(entry.max, duration);
  }
  std::vector<StageRollup> rollup;
  rollup.reserve(by_name.size());
  for (auto& [name, entry] : by_name) rollup.push_back(entry);
  return rollup;
}

std::vector<StageRollup> Tracer::Rollup() { return Rollup(Snap()); }

namespace {

void AppendEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string ToChromeTraceJson(const TraceSnapshot& snapshot) {
  std::string out;
  out.reserve(128 + snapshot.spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":";
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, snapshot.dropped);
  out += buf;
  out += "},\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : snapshot.spans) {
    if (span.name == nullptr) continue;
    if (!first) out += ",";
    first = false;
    const TimeMicros duration =
        span.end >= span.start ? span.end - span.start : 0;
    out += "{\"name\":\"";
    AppendEscaped(&out, span.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
                  ",\"pid\":1,\"tid\":%u,\"args\":{\"trace\":\"%" PRIx64
                  "\",\"span\":\"%" PRIx64 "\",\"parent\":\"%" PRIx64 "\"",
                  static_cast<int64_t>(span.start),
                  static_cast<int64_t>(duration), span.thread_index,
                  span.trace_id, span.span_id, span.parent_id);
    out += buf;
    if (span.arg_name != nullptr) {
      out += ",\"";
      AppendEscaped(&out, span.arg_name);
      std::snprintf(buf, sizeof(buf), "\":%lld",
                    static_cast<long long>(span.arg));
      out += buf;
    }
    if (span.priority >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"priority\":%d", span.priority);
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status WriteChromeTraceJson(const TraceSnapshot& snapshot,
                            const std::string& path) {
  const std::string json = ToChromeTraceJson(snapshot);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("obs: cannot open trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status::Internal("obs: short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace sesemi::obs
