#ifndef SESEMI_OBS_METRICS_H_
#define SESEMI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sesemi::obs {

/// \file
/// Unified metrics registry (docs/ARCHITECTURE.md "Observability").
///
/// One named, label-aware snapshot surface over every counter the system
/// keeps. Components either own direct instruments (Counter / Gauge /
/// Histogram — lock-free atomics on the update path) or register a
/// *collector*: a callback that snapshots an existing stats struct
/// (SchedStats, PlatformStats, RecoveryStats, ClusterStats, RouterStats)
/// into Samples at scrape time. Collectors mean the hot paths keep their
/// existing plain atomics; the registry only pays at Snapshot().
///
/// Exposition is Prometheus text format (PrometheusText), so `curl`-style
/// scraping works the day an HTTP listener exists; until then benches and
/// tests consume Snapshot() directly.

enum class SampleKind { kCounter, kGauge, kHistogramBucket, kHistogramSum, kHistogramCount };

/// One scraped value. `labels` are (key, value) pairs; histogram bucket
/// samples carry their upper bound as an `le` label ("+Inf" for the last).
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
  SampleKind kind = SampleKind::kGauge;
};

/// Monotonic counter. Update path: one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge (doubles stored as bit patterns).
class Gauge {
 public:
  void Set(double value) { bits_.store(Encode(value), std::memory_order_relaxed); }
  void Add(double delta) {
    uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(observed, Encode(Decode(observed) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double Value() const { return Decode(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t Encode(double value);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram: bounds are set once at construction, counts are
/// relaxed atomics. Observe is wait-free (binary search + two fetch_adds).
/// Bucket semantics are Prometheus `le`: a value lands in the first bucket
/// whose upper bound is >= value; values above the last bound land in the
/// implicit +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Latency-oriented default bounds in seconds (100us .. 60s, log-spaced).
  static std::vector<double> LatencyBounds();

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; index bounds().size()
  /// is the +Inf bucket (== Count()).
  uint64_t CumulativeCount(size_t bucket_index) const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

 private:
  std::vector<double> bounds_;                       // ascending, immutable
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double bit pattern, CAS-accumulated
};

/// A scrape-time callback producing Samples from component-owned state.
using Collector = std::function<std::vector<Sample>()>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (what platform/cluster constructors use
  /// unless handed an explicit one).
  static MetricsRegistry* Global();

  /// Direct instruments, created on first use and keyed by (name, labels).
  /// Returned pointers live as long as the registry.
  Counter* GetCounter(const std::string& name,
                      std::vector<std::pair<std::string, std::string>> labels = {});
  Gauge* GetGauge(const std::string& name,
                  std::vector<std::pair<std::string, std::string>> labels = {});
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          std::vector<std::pair<std::string, std::string>> labels = {});

  /// Register a scrape-time collector; returns an id for RemoveCollector.
  /// The callback must stay valid until removed (see ScopedCollector).
  uint64_t AddCollector(Collector collector);
  void RemoveCollector(uint64_t id);

  /// All current samples: direct instruments first, then collector output.
  std::vector<Sample> Snapshot() const;

  /// Prometheus text exposition of Snapshot().
  std::string PrometheusText() const;

 private:
  struct Instrument {
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Instrument* FindOrNull(const std::string& name,
                         const std::vector<std::pair<std::string, std::string>>& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Instrument>> instruments_;
  std::vector<std::pair<uint64_t, Collector>> collectors_;
  uint64_t next_collector_id_ = 1;
};

/// RAII collector registration: deregisters on destruction so a component's
/// collector can safely capture `this`.
class ScopedCollector {
 public:
  ScopedCollector() = default;
  ScopedCollector(MetricsRegistry* registry, Collector collector)
      : registry_(registry), id_(registry->AddCollector(std::move(collector))) {}
  ScopedCollector(ScopedCollector&& other) noexcept { *this = std::move(other); }
  ScopedCollector& operator=(ScopedCollector&& other) noexcept {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
    return *this;
  }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;
  ~ScopedCollector() { Release(); }

  void Release() {
    if (registry_ != nullptr && id_ != 0) registry_->RemoveCollector(id_);
    registry_ = nullptr;
    id_ = 0;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

/// Helpers for building collector output.
Sample MakeCounterSample(std::string name, double value,
                         std::vector<std::pair<std::string, std::string>> labels = {});
Sample MakeGaugeSample(std::string name, double value,
                       std::vector<std::pair<std::string, std::string>> labels = {});

}  // namespace sesemi::obs

#endif  // SESEMI_OBS_METRICS_H_
