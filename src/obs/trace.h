#ifndef SESEMI_OBS_TRACE_H_
#define SESEMI_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace sesemi::obs {

/// \file
/// Low-overhead end-to-end request tracing (docs/ARCHITECTURE.md
/// "Observability").
///
/// A request carries a TraceContext (trace id + parent span id) from
/// scheduler enqueue through admission, batch coalescing, platform dispatch,
/// warm-slot acquisition, the ecall, the SeMIRT pipeline stages, and cluster
/// hops. Spans are recorded into fixed-size per-thread ring buffers — the
/// record path performs ZERO heap allocations, and when tracing is disabled
/// every probe collapses to one relaxed atomic load and a never-taken branch
/// (the same discipline as common/faultpoint). Snapshots export as Chrome
/// trace-event JSON (chrome://tracing / Perfetto "X" complete events) or
/// fold into a per-stage latency rollup.
///
/// Timestamps come from Tracer::Now(): a process-wide steady-clock origin by
/// default, or an injected Clock (the discrete-event simulator records spans
/// with explicit virtual timestamps via EmitSpan, so sim and real traces of
/// one replay share a comparable time base starting near zero).
///
/// \threadsafety All functions are safe to call concurrently. Each ring has
/// exactly one writer (its owning thread); snapshot readers synchronize on
/// the ring's published head (release/acquire), and full rings drop the
/// newest span (counted, never blocking), so published slots are immutable.

/// The propagation handle carried on a queued request: which trace the
/// request belongs to and which span is the parent of whatever happens next.
/// Zero-initialized = "not traced" (the disabled path's value).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// One completed span. `name` and `arg_name` must point at string literals
/// (or other static-storage strings): records keep the pointer, never a copy.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root
  const char* name = nullptr;
  TimeMicros start = 0;
  TimeMicros end = 0;
  uint32_t thread_index = 0;   ///< stable per recording thread (tid in JSON)
  const char* arg_name = nullptr;  ///< nullptr = no argument
  int64_t arg = 0;
  /// Priority class of the request this span belongs to (-1 = untagged).
  /// Exported as a "priority" arg so Chrome traces filter by class.
  int32_t priority = -1;
};

/// A snapshot of every recorded span plus the drop accounting.
struct TraceSnapshot {
  std::vector<SpanRecord> spans;
  uint64_t dropped = 0;  ///< spans lost to full rings since the last Reset
};

/// Per-stage latency rollup over a snapshot (one entry per span name).
struct StageRollup {
  const char* name = nullptr;
  uint64_t count = 0;
  TimeMicros total = 0;
  TimeMicros min = 0;
  TimeMicros max = 0;
  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(count);
  }
  double mean_s() const { return mean_us() * 1e-6; }
};

namespace trace_internal {
/// Lives outside the class so Enabled() inlines to a single relaxed load.
extern std::atomic<uint32_t> g_enabled;
}  // namespace trace_internal

class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 16384;

  /// The gate every probe checks first. One relaxed load; no function call
  /// once inlined.
  static bool Enabled() {
    return trace_internal::g_enabled.load(std::memory_order_relaxed) != 0;
  }

  static void Enable();
  static void Disable();

  /// Current trace time in microseconds: the injected clock if set, else
  /// micros since a process-wide steady origin. All span timestamps MUST
  /// come from here — RealClock instances have per-instance origins and do
  /// not compose across components.
  static TimeMicros Now();

  /// Inject a clock (e.g. the simulator's virtual clock); nullptr restores
  /// the steady-clock default. The clock must outlive tracing activity.
  static void SetClock(Clock* clock);

  /// Drop all recorded spans and the drop counter, and set the ring capacity
  /// used for threads that record after this call (tests shrink it to probe
  /// overflow; benches reset between sections). Threads re-register their
  /// ring lazily on the next record, so concurrent recorders may lose (not
  /// corrupt) a span across the boundary.
  static void Reset(size_t ring_capacity = kDefaultRingCapacity);

  /// Fresh ids for a root context without recording anything (the simulator
  /// uses this to seed a virtual-time trace).
  static TraceContext NewContext();

  /// Record a completed span with explicit timestamps under `parent`
  /// (invalid parent = new root trace). Returns the recorded span's context
  /// so callers can chain children. No-op (zero context) when disabled.
  static TraceContext EmitSpan(TraceContext parent, const char* name,
                               TimeMicros start, TimeMicros end,
                               const char* arg_name = nullptr, int64_t arg = 0,
                               int priority = -1);

  /// Record an instant event (zero-duration span) under `parent`.
  static void EmitInstant(TraceContext parent, const char* name,
                          const char* arg_name = nullptr, int64_t arg = 0);

  /// Record a root span whose ids were pre-minted with NewContext — the
  /// simulator emits a request's stage children as virtual time advances and
  /// closes the root at completion.
  static void EmitRoot(TraceContext context, const char* name,
                       TimeMicros start, TimeMicros end,
                       const char* arg_name = nullptr, int64_t arg = 0);

  /// The calling thread's current span context (what a Span constructed now
  /// would adopt as parent). Zero when nothing is open on this thread.
  static TraceContext Current();
  /// Overwrite the thread-current context (explicit cross-thread handoff;
  /// Span does this automatically within a scope).
  static void SetCurrent(TraceContext context);

  /// Copy out every published span (all threads) plus drop accounting.
  static TraceSnapshot Snap();

  /// Per-stage rollup of `snapshot`, sorted by name.
  static std::vector<StageRollup> Rollup(const TraceSnapshot& snapshot);
  /// Convenience: Rollup(Snap()).
  static std::vector<StageRollup> Rollup();

 private:
  friend class Span;
  /// Hot path: append to the calling thread's ring (allocating the ring on
  /// this thread's first record — the only allocation, off the steady path).
  static void Record(const SpanRecord& record);
  static uint64_t NextId();
};

/// Chrome trace-event JSON ("X" complete events; ts/dur in microseconds;
/// args carry trace/span/parent ids as hex strings). Loadable in
/// chrome://tracing and Perfetto. Schema: docs/BENCHMARKS.md.
std::string ToChromeTraceJson(const TraceSnapshot& snapshot);
Status WriteChromeTraceJson(const TraceSnapshot& snapshot, const std::string& path);

/// RAII span: opens at construction, records at destruction. When tracing
/// is disabled both ends are a relaxed load + branch; no ids are minted, no
/// clock is read, nothing is stored.
///
/// Parentage: the one-argument form nests under the thread-current context
/// (or roots a new trace); the two-argument form nests under an explicit
/// context (how a dispatcher thread continues a trace carried across the
/// scheduler queue on QueuedRequest::trace). While open, the span is the
/// thread-current context; the previous context is restored on close.
class Span {
 public:
  explicit Span(const char* name) : Span(name, Tracer::Current()) {}

  Span(const char* name, TraceContext parent) {
    if (!Tracer::Enabled()) return;
    armed_ = true;
    name_ = name;
    saved_ = Tracer::Current();
    parent_ = parent;
    context_.trace_id = parent.valid() ? parent.trace_id : Tracer::NextId();
    context_.span_id = Tracer::NextId();
    Tracer::SetCurrent(context_);
    start_ = Tracer::Now();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (!armed_) return;
    SpanRecord record;
    record.trace_id = context_.trace_id;
    record.span_id = context_.span_id;
    record.parent_id = parent_.span_id;
    record.name = name_;
    record.start = start_;
    record.end = Tracer::Now();
    record.arg_name = arg_name_;
    record.arg = arg_;
    record.priority = priority_;
    Tracer::Record(record);
    Tracer::SetCurrent(saved_);
  }

  /// Attach one numeric argument (`name` must be a string literal).
  void set_arg(const char* name, int64_t value) {
    if (!armed_) return;
    arg_name_ = name;
    arg_ = value;
  }

  /// Tag the span with the request's priority class (kept separate from the
  /// one free-form arg so every dispatch span can carry both).
  void set_priority(int priority) {
    if (!armed_) return;
    priority_ = static_cast<int32_t>(priority);
  }

  /// Context to hand to another thread (e.g. QueuedRequest::trace). Zero
  /// when tracing is disabled.
  TraceContext context() const { return armed_ ? context_ : TraceContext{}; }

 private:
  bool armed_ = false;
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  int64_t arg_ = 0;
  int32_t priority_ = -1;
  TimeMicros start_ = 0;
  TraceContext context_;
  TraceContext parent_;
  TraceContext saved_;
};

/// Canonical span names (shared by recorders, benches, and tests so rollups
/// cannot drift from the probes that feed them).
namespace spans {
// Cluster hops.
inline constexpr const char* kClusterRoute = "cluster.route";
inline constexpr const char* kClusterSteal = "cluster.steal";
inline constexpr const char* kClusterReroute = "cluster.reroute";
// Platform / scheduler.
inline constexpr const char* kPlatformSubmit = "platform.submit";
inline constexpr const char* kQueueWait = "sched.queue_wait";
inline constexpr const char* kCoalesced = "sched.coalesced";
inline constexpr const char* kDispatch = "platform.dispatch";
inline constexpr const char* kRtLane = "rt.lane";
inline constexpr const char* kWarmAcquire = "platform.warm_acquire";
inline constexpr const char* kColdStart = "platform.cold_start";
// SeMIRT pipeline.
inline constexpr const char* kRequest = "semirt.request";
inline constexpr const char* kEnclaveInit = "semirt.enclave_init";
inline constexpr const char* kEcall = "semirt.ecall";
inline constexpr const char* kHandshake = "semirt.handshake";
inline constexpr const char* kKeyFetch = "semirt.key_fetch";
inline constexpr const char* kModelLoad = "semirt.model_load";
inline constexpr const char* kRuntimeInit = "semirt.runtime_init";
inline constexpr const char* kDecrypt = "semirt.decrypt";
inline constexpr const char* kInference = "semirt.inference";
inline constexpr const char* kEncrypt = "semirt.encrypt";
// Simulator (virtual-time) counterparts share the semirt.* stage names; the
// per-request root is sim-specific.
inline constexpr const char* kSimRequest = "sim.request";
inline constexpr const char* kSimOverhead = "sim.platform_overhead";
}  // namespace spans

}  // namespace sesemi::obs

#endif  // SESEMI_OBS_TRACE_H_
