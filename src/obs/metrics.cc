#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sesemi::obs {

namespace {

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + delta),
      std::memory_order_relaxed)) {
  }
}

std::string FormatValue(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return buf;
}

}  // namespace

uint64_t Gauge::Encode(double value) { return DoubleBits(value); }
double Gauge::Decode(uint64_t bits) { return BitsDouble(bits); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value (le semantics); the
  // sentinel slot past the last bound is +Inf.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value);
}

std::vector<double> Histogram::LatencyBounds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0,
          30.0, 60.0};
}

uint64_t Histogram::CumulativeCount(size_t bucket_index) const {
  uint64_t total = 0;
  const size_t limit = std::min(bucket_index, bounds_.size());
  for (size_t i = 0; i <= limit; ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  return BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrNull(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  for (const auto& instrument : instruments_) {
    if (instrument->name == name && instrument->labels == labels) {
      return instrument.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(
    const std::string& name,
    std::vector<std::pair<std::string, std::string>> labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Instrument* found = FindOrNull(name, labels)) {
    if (found->counter != nullptr) return found->counter.get();
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->name = name;
  instrument->labels = std::move(labels);
  instrument->counter = std::make_unique<Counter>();
  Counter* counter = instrument->counter.get();
  instruments_.push_back(std::move(instrument));
  return counter;
}

Gauge* MetricsRegistry::GetGauge(
    const std::string& name,
    std::vector<std::pair<std::string, std::string>> labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Instrument* found = FindOrNull(name, labels)) {
    if (found->gauge != nullptr) return found->gauge.get();
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->name = name;
  instrument->labels = std::move(labels);
  instrument->gauge = std::make_unique<Gauge>();
  Gauge* gauge = instrument->gauge.get();
  instruments_.push_back(std::move(instrument));
  return gauge;
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, std::vector<double> bounds,
    std::vector<std::pair<std::string, std::string>> labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Instrument* found = FindOrNull(name, labels)) {
    if (found->histogram != nullptr) return found->histogram.get();
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->name = name;
  instrument->labels = std::move(labels);
  instrument->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* histogram = instrument->histogram.get();
  instruments_.push_back(std::move(instrument));
  return histogram;
}

uint64_t MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return id;
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.erase(
      std::remove_if(collectors_.begin(), collectors_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      collectors_.end());
}

std::vector<Sample> MetricsRegistry::Snapshot() const {
  // Copy the collector list under the lock, run callbacks outside it: a
  // collector is free to scrape a component that itself logs or registers
  // metrics without deadlocking.
  std::vector<Collector> collectors;
  std::vector<Sample> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& instrument : instruments_) {
      if (instrument->counter != nullptr) {
        Sample sample;
        sample.name = instrument->name;
        sample.labels = instrument->labels;
        sample.value = static_cast<double>(instrument->counter->Value());
        sample.kind = SampleKind::kCounter;
        samples.push_back(std::move(sample));
      } else if (instrument->gauge != nullptr) {
        Sample sample;
        sample.name = instrument->name;
        sample.labels = instrument->labels;
        sample.value = instrument->gauge->Value();
        sample.kind = SampleKind::kGauge;
        samples.push_back(std::move(sample));
      } else if (instrument->histogram != nullptr) {
        const Histogram& histogram = *instrument->histogram;
        for (size_t i = 0; i <= histogram.bounds().size(); ++i) {
          Sample bucket;
          bucket.name = instrument->name + "_bucket";
          bucket.labels = instrument->labels;
          const bool inf = i == histogram.bounds().size();
          bucket.labels.emplace_back(
              "le", inf ? "+Inf" : FormatValue(histogram.bounds()[i]));
          bucket.value = static_cast<double>(histogram.CumulativeCount(i));
          bucket.kind = SampleKind::kHistogramBucket;
          samples.push_back(std::move(bucket));
        }
        Sample sum;
        sum.name = instrument->name + "_sum";
        sum.labels = instrument->labels;
        sum.value = histogram.Sum();
        sum.kind = SampleKind::kHistogramSum;
        samples.push_back(std::move(sum));
        Sample count;
        count.name = instrument->name + "_count";
        count.labels = instrument->labels;
        count.value = static_cast<double>(histogram.Count());
        count.kind = SampleKind::kHistogramCount;
        samples.push_back(std::move(count));
      }
    }
    collectors.reserve(collectors_.size());
    for (const auto& [id, collector] : collectors_) collectors.push_back(collector);
  }
  for (const Collector& collector : collectors) {
    std::vector<Sample> collected = collector();
    samples.insert(samples.end(), std::make_move_iterator(collected.begin()),
                   std::make_move_iterator(collected.end()));
  }
  return samples;
}

std::string MetricsRegistry::PrometheusText() const {
  std::vector<Sample> samples = Snapshot();
  // Stable exposition order: by name, then by labels.
  std::stable_sort(samples.begin(), samples.end(),
                   [](const Sample& a, const Sample& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  std::string out;
  out.reserve(samples.size() * 64);
  for (const Sample& sample : samples) {
    out += sample.name;
    if (!sample.labels.empty()) {
      out += "{";
      for (size_t i = 0; i < sample.labels.size(); ++i) {
        if (i != 0) out += ",";
        out += sample.labels[i].first;
        out += "=\"";
        for (const char c : sample.labels[i].second) {
          if (c == '"' || c == '\\') out += '\\';
          out += c;
        }
        out += "\"";
      }
      out += "}";
    }
    out += " ";
    out += FormatValue(sample.value);
    out += "\n";
  }
  return out;
}

Sample MakeCounterSample(std::string name, double value,
                         std::vector<std::pair<std::string, std::string>> labels) {
  Sample sample;
  sample.name = std::move(name);
  sample.labels = std::move(labels);
  sample.value = value;
  sample.kind = SampleKind::kCounter;
  return sample;
}

Sample MakeGaugeSample(std::string name, double value,
                       std::vector<std::pair<std::string, std::string>> labels) {
  Sample sample;
  sample.name = std::move(name);
  sample.labels = std::move(labels);
  sample.value = value;
  sample.kind = SampleKind::kGauge;
  return sample;
}

}  // namespace sesemi::obs
