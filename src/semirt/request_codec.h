#ifndef SESEMI_SEMIRT_REQUEST_CODEC_H_
#define SESEMI_SEMIRT_REQUEST_CODEC_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/gcm.h"

namespace sesemi::semirt {

/// An inference invocation as it arrives at a serverless instance: the user
/// and model identifiers are routing metadata (not sensitive — §IV-D), the
/// input is encrypted under the user's request key K_R.
struct InferenceRequest {
  std::string user_id;
  std::string model_id;
  Bytes encrypted_input;

  Bytes Serialize() const;
  static Result<InferenceRequest> Parse(ByteSpan wire);
};

/// Encrypt an input tensor under K_R. The AAD binds direction and model id,
/// so a request ciphertext cannot be replayed as a response or re-targeted
/// at a different model.
Result<Bytes> EncryptRequestPayload(ByteSpan request_key, const std::string& model_id,
                                    ByteSpan input);
Result<Bytes> DecryptRequestPayload(ByteSpan request_key, const std::string& model_id,
                                    ByteSpan sealed);

/// Encrypt an inference result under the same K_R (paper §III step 6).
Result<Bytes> EncryptResultPayload(ByteSpan request_key, const std::string& model_id,
                                   ByteSpan output);
Result<Bytes> DecryptResultPayload(ByteSpan request_key, const std::string& model_id,
                                   ByteSpan sealed);

/// A K_R cipher context reused across a same-session batch: the AES key
/// schedule and GHASH tables are built once per batch instead of once per
/// message (they dominate small-payload GCM cost). Produces/consumes exactly
/// the same wire format as the one-shot helpers above.
///
/// \threadsafety Immutable after construction; safe to share across threads.
class RequestCipher {
 public:
  static Result<RequestCipher> Create(ByteSpan request_key);

  Result<Bytes> DecryptRequest(const std::string& model_id, ByteSpan sealed) const;
  Result<Bytes> EncryptResult(const std::string& model_id, ByteSpan output) const;

 private:
  explicit RequestCipher(crypto::AesGcm gcm) : gcm_(std::move(gcm)) {}
  crypto::AesGcm gcm_;
};

}  // namespace sesemi::semirt

#endif  // SESEMI_SEMIRT_REQUEST_CODEC_H_
