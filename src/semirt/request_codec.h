#ifndef SESEMI_SEMIRT_REQUEST_CODEC_H_
#define SESEMI_SEMIRT_REQUEST_CODEC_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace sesemi::semirt {

/// An inference invocation as it arrives at a serverless instance: the user
/// and model identifiers are routing metadata (not sensitive — §IV-D), the
/// input is encrypted under the user's request key K_R.
struct InferenceRequest {
  std::string user_id;
  std::string model_id;
  Bytes encrypted_input;

  Bytes Serialize() const;
  static Result<InferenceRequest> Parse(ByteSpan wire);
};

/// Encrypt an input tensor under K_R. The AAD binds direction and model id,
/// so a request ciphertext cannot be replayed as a response or re-targeted
/// at a different model.
Result<Bytes> EncryptRequestPayload(ByteSpan request_key, const std::string& model_id,
                                    ByteSpan input);
Result<Bytes> DecryptRequestPayload(ByteSpan request_key, const std::string& model_id,
                                    ByteSpan sealed);

/// Encrypt an inference result under the same K_R (paper §III step 6).
Result<Bytes> EncryptResultPayload(ByteSpan request_key, const std::string& model_id,
                                   ByteSpan output);
Result<Bytes> DecryptResultPayload(ByteSpan request_key, const std::string& model_id,
                                   ByteSpan sealed);

}  // namespace sesemi::semirt

#endif  // SESEMI_SEMIRT_REQUEST_CODEC_H_
