#include "semirt/keyservice_link.h"

#include "common/faultpoint.h"
#include "obs/trace.h"
#include "ratls/handshake.h"

namespace sesemi::semirt {

Status KeyServiceLink::EnsureSession(sgx::Enclave* enclave) {
  if (session_.has_value()) return Status::OK();
  // Only an actual RA-TLS establishment gets a span: the cached-session
  // early return above is the hot path.
  obs::Span span(obs::spans::kHandshake);
  ratls::RatlsInitiator initiator(enclave->platform()->authority(), enclave);
  SESEMI_ASSIGN_OR_RETURN(ratls::ClientHello hello, initiator.Start());
  uint64_t session_id = 0;
  SESEMI_ASSIGN_OR_RETURN(ratls::ServerHello reply,
                          server_->ConnectEnclave(hello, &session_id));
  SESEMI_ASSIGN_OR_RETURN(ratls::SecureSession session,
                          initiator.Finish(reply, expected_));
  session_ = std::move(session);
  session_id_ = session_id;
  ++attestation_count_;
  return Status::OK();
}

Result<std::pair<Bytes, Bytes>> KeyServiceLink::FetchKeys(
    sgx::Enclave* enclave, const std::string& user_id, const std::string& model_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  SESEMI_FAULT_POINT(faults::kKeyServiceFetch);
  SESEMI_RETURN_IF_ERROR(EnsureSession(enclave));

  keyservice::Request request;
  request.op = keyservice::OpCode::kKeyProvisioning;
  request.caller_id = user_id;
  request.payload = keyservice::BuildKeyProvisioningPayload(user_id, model_id);

  SESEMI_ASSIGN_OR_RETURN(Bytes sealed, session_->Seal(request.Serialize()));
  auto sealed_response = server_->Handle(session_id_, sealed);
  if (!sealed_response.ok()) {
    // The channel may be gone (server restart); drop it so the next call
    // re-attests rather than failing forever.
    session_.reset();
    return sealed_response.status();
  }
  SESEMI_ASSIGN_OR_RETURN(Bytes response_wire, session_->Open(*sealed_response));
  SESEMI_ASSIGN_OR_RETURN(keyservice::Response response,
                          keyservice::Response::Parse(response_wire));
  if (!response.ok()) {
    return Status(static_cast<StatusCode>(response.code), response.message);
  }
  return keyservice::ParseProvisionedKeys(response.payload);
}

void KeyServiceLink::ResetSession() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_.has_value() && server_ != nullptr) {
    server_->Disconnect(session_id_);
  }
  session_.reset();
}

}  // namespace sesemi::semirt
