#include "semirt/semirt.h"

#include <bit>
#include <chrono>
#include <cmath>

#include "common/faultpoint.h"
#include "model/format.h"
#include "obs/trace.h"

namespace sesemi::semirt {

namespace {
TimeMicros NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Record a just-finished pipeline stage of `duration` micros under the
/// thread-current span (the open semirt.ecall / semirt.request). StageTimings
/// marks use NowMicros (a different epoch than the tracer), so the span is
/// reconstructed backwards from the tracer's own now.
void EmitStage(const char* name, TimeMicros duration) {
  if (!obs::Tracer::Enabled()) return;
  const TimeMicros end = obs::Tracer::Now();
  obs::Tracer::EmitSpan(obs::Tracer::Current(), name,
                        end - (duration > 0 ? duration : 0), end);
}

/// §IV-D model-extraction mitigation: quantize the raw float32 output to
/// `decimals` decimal places, in place. Runs inside the enclave before the
/// result is encrypted, so the precise scores never leave the TEE.
void RoundScores(Bytes* raw_output, int decimals) {
  if (decimals <= 0 || raw_output->size() % sizeof(float) != 0) return;
  const double factor = std::pow(10.0, decimals);
  float* values = reinterpret_cast<float*>(raw_output->data());
  size_t n = raw_output->size() / sizeof(float);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<float>(
        std::round(static_cast<double>(values[i]) * factor) / factor);
  }
}
}  // namespace

const char* ToString(RuntimeMode mode) {
  switch (mode) {
    case RuntimeMode::kSesemi: return "sesemi";
    case RuntimeMode::kIsoReuse: return "iso-reuse";
    case RuntimeMode::kNative: return "native";
    case RuntimeMode::kUntrusted: return "untrusted";
  }
  return "unknown";
}

const char* ToString(InvocationKind kind) {
  switch (kind) {
    case InvocationKind::kCold: return "cold";
    case InvocationKind::kWarm: return "warm";
    case InvocationKind::kHot: return "hot";
  }
  return "unknown";
}

std::string SemirtInstance::ModelObjectKey(const std::string& model_id) {
  return "models/" + model_id;
}

std::string SemirtInstance::PlainModelObjectKey(const std::string& model_id) {
  return "plainmodels/" + model_id;
}

sgx::Measurement SemirtInstance::MeasurementFor(const SemirtOptions& options) {
  // The enclave image covers the runtime core, the inference framework, the
  // expected KeyService identity (Appendix A), and the execution-restriction
  // configuration (§V) — but never model weights or keys.
  std::vector<std::pair<std::string, Bytes>> units = {
      {"semirt-core", ToBytes("sesemi semirt runtime v1")},
      {"inference-framework",
       ToBytes(std::string("framework:") + inference::ToString(options.framework) +
               (options.quantize ? "+int8" : ""))},
      {"keyservice-identity",
       ToBytes(keyservice::KeyServiceEnclave::ExpectedMeasurement().ToHex())},
  };
  sgx::EnclaveConfig config;
  config.heap_size_bytes = options.heap_size_bytes;
  config.num_tcs = options.num_tcs;
  config.sequential_mode = options.sequential_mode;
  config.disable_key_cache = options.disable_key_cache;
  config.fixed_model_id = options.fixed_model_id;
  config.round_scores_decimals = static_cast<uint32_t>(options.round_scores_decimals);
  sgx::EnclaveImage image("semirt", std::move(units), config);
  return image.mrenclave();
}

Result<std::unique_ptr<SemirtInstance>> SemirtInstance::Create(
    sgx::SgxPlatform* platform, const SemirtOptions& options,
    storage::ObjectStore* storage, keyservice::KeyServiceServer* keyservice) {
  if (options.mode != RuntimeMode::kUntrusted && keyservice == nullptr) {
    return Status::InvalidArgument("trusted modes require a KeyService");
  }
  if (options.sequential_mode && options.num_tcs != 1) {
    return Status::InvalidArgument("sequential mode requires num_tcs == 1");
  }
  if (options.mode == RuntimeMode::kNative && options.num_tcs != 1) {
    return Status::InvalidArgument(
        "the Native baseline launches one enclave per request (num_tcs == 1)");
  }
  if (storage == nullptr) {
    return Status::InvalidArgument("storage is required");
  }
  auto instance = std::unique_ptr<SemirtInstance>(
      new SemirtInstance(platform, options, storage, keyservice));
  SESEMI_RETURN_IF_ERROR(instance->Initialize());
  return instance;
}

SemirtInstance::SemirtInstance(sgx::SgxPlatform* platform, SemirtOptions options,
                               storage::ObjectStore* storage,
                               keyservice::KeyServiceServer* keyservice)
    : platform_(platform),
      options_(std::move(options)),
      storage_(storage),
      keyservice_(keyservice),
      framework_(inference::CreateFramework(
          options_.framework,
          inference::FrameworkOptions{.quantize = options_.quantize})),
      contexts_(options_.num_tcs),
      use_slot_bitmap_(options_.num_tcs <= 64) {
  if (use_slot_bitmap_) {
    const uint32_t n = options_.num_tcs;
    free_slot_bits_.store(n >= 64 ? ~0ull : (1ull << n) - 1,
                          std::memory_order_relaxed);
  }
}

SemirtInstance::~SemirtInstance() { ClearExecutionContext(); }

Status SemirtInstance::Initialize() {
  if (options_.mode == RuntimeMode::kUntrusted) return Status::OK();
  obs::Span span(obs::spans::kEnclaveInit);

  std::vector<std::pair<std::string, Bytes>> units = {
      {"semirt-core", ToBytes("sesemi semirt runtime v1")},
      {"inference-framework",
       ToBytes(std::string("framework:") + inference::ToString(options_.framework) +
               (options_.quantize ? "+int8" : ""))},
      {"keyservice-identity",
       ToBytes(keyservice::KeyServiceEnclave::ExpectedMeasurement().ToHex())},
  };
  sgx::EnclaveConfig config;
  config.heap_size_bytes = options_.heap_size_bytes;
  config.num_tcs = options_.num_tcs;
  config.sequential_mode = options_.sequential_mode;
  config.disable_key_cache = options_.disable_key_cache;
  config.fixed_model_id = options_.fixed_model_id;
  config.round_scores_decimals = static_cast<uint32_t>(options_.round_scores_decimals);
  sgx::EnclaveImage image("semirt", std::move(units), config);
  SESEMI_ASSIGN_OR_RETURN(enclave_, platform_->CreateEnclave(image));
  link_ = std::make_unique<KeyServiceLink>(
      keyservice_, keyservice::KeyServiceEnclave::ExpectedMeasurement());
  return Status::OK();
}

Status SemirtInstance::ChargeHeap(uint64_t bytes) {
  if (enclave_ != nullptr) return enclave_->AllocateTrusted(bytes);
  uint64_t used = untrusted_heap_used_.fetch_add(bytes) + bytes;
  uint64_t peak = untrusted_heap_peak_.load();
  while (used > peak && !untrusted_heap_peak_.compare_exchange_weak(peak, used)) {
  }
  return Status::OK();
}

void SemirtInstance::FreeHeap(uint64_t bytes) {
  if (enclave_ != nullptr) {
    enclave_->FreeTrusted(bytes);
    return;
  }
  uint64_t used = untrusted_heap_used_.load();
  uint64_t clamped = bytes > used ? used : bytes;
  untrusted_heap_used_.fetch_sub(clamped);
}

uint64_t SemirtInstance::heap_peak() const {
  if (enclave_ != nullptr) return enclave_->heap_peak();
  return untrusted_heap_peak_.load();
}

int SemirtInstance::TryAcquireSlotFast() {
  // seq_cst load: pairs with ReleaseSlot's seq_cst fetch_or + waiter-count
  // check so a parked waiter's re-try is guaranteed to observe the freed bit
  // whenever the releaser skipped the notify.
  uint64_t mask = free_slot_bits_.load(std::memory_order_seq_cst);
  while (mask != 0) {
    const int slot = std::countr_zero(mask);
    if (free_slot_bits_.compare_exchange_weak(mask, mask & ~(1ull << slot),
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
      return slot;
    }
  }
  return -1;
}

int SemirtInstance::AcquireSlot() {
  if (use_slot_bitmap_) {
    int slot = TryAcquireSlotFast();
    if (slot >= 0) return slot;
    // All slots busy: park. The waiter count and the free-bit mask are both
    // seq_cst, so either the releaser's load sees our increment (and
    // notifies under the lock) or our re-try under the lock sees its freed
    // bit — no lost wakeups, and idle releases skip the lock entirely.
    std::unique_lock<std::mutex> lock(slot_mutex_);
    slot_waiters_.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      slot = TryAcquireSlotFast();
      if (slot >= 0) {
        slot_waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return slot;
      }
      slot_cv_.wait(lock);
    }
  }
  std::unique_lock<std::mutex> lock(slot_mutex_);
  for (;;) {
    for (size_t i = 0; i < contexts_.size(); ++i) {
      if (!contexts_[i].busy) {
        contexts_[i].busy = true;
        return static_cast<int>(i);
      }
    }
    slot_cv_.wait(lock);
  }
}

void SemirtInstance::ReleaseSlot(int slot) {
  if (use_slot_bitmap_) {
    free_slot_bits_.fetch_or(1ull << slot, std::memory_order_seq_cst);
    if (slot_waiters_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(slot_mutex_);
      slot_cv_.notify_one();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(slot_mutex_);
    contexts_[slot].busy = false;
  }
  slot_cv_.notify_one();
}

void SemirtInstance::DropRuntimeLocked(ThreadContext* ctx) {
  if (ctx->runtime != nullptr) {
    FreeHeap(ctx->charged_bytes);
    ctx->runtime.reset();
    ctx->charged_bytes = 0;
    ctx->model_id.clear();
  }
}

Result<std::pair<Bytes, Bytes>> SemirtInstance::EnsureKeys(
    const std::string& user_id, const std::string& model_id, bool* fetched) {
  const std::string key_id = model_id + "|" + user_id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!options_.disable_key_cache && cached_key_id_ == key_id) {
      return std::make_pair(cached_model_key_, cached_request_key_);
    }
  }
  // Round trip to KeyService outside the instance lock.
  SESEMI_ASSIGN_OR_RETURN(auto keys,
                          link_->FetchKeys(enclave_.get(), user_id, model_id));
  *fetched = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.key_fetches++;
    if (!options_.disable_key_cache) {
      // Cache exactly one ⟨uid,Moid⟩ pair (Algorithm 2 line 8) so requests
      // from multiple users never share an enclave concurrently.
      cached_key_id_ = key_id;
      cached_model_key_ = keys.first;
      cached_request_key_ = keys.second;
    }
  }
  return keys;
}

Result<std::shared_ptr<inference::LoadedModel>> SemirtInstance::EnsureModel(
    const std::string& model_id, ByteSpan model_key, bool* loaded) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (loaded_model_ != nullptr && loaded_model_id_ == model_id &&
        options_.mode == RuntimeMode::kSesemi) {
      return loaded_model_;
    }
  }

  // OC_LOAD_MODEL: the untrusted side fetches the ciphertext from storage.
  if (enclave_ != nullptr) enclave_->RecordOcall();
  SESEMI_ASSIGN_OR_RETURN(Bytes sealed, storage_->Get(ModelObjectKey(model_id)));

  // The ciphertext is copied into enclave memory before decryption
  // (Appendix D: the enclave holds the encrypted copy + the decrypted model
  // at peak).
  SESEMI_RETURN_IF_ERROR(ChargeHeap(sealed.size()));
  auto decrypted = model::DecryptModel(sealed, model_key, model_id);
  if (!decrypted.ok()) {
    FreeHeap(sealed.size());
    return decrypted.status();
  }
  auto wrapped = framework_->WrapModel(std::move(*decrypted));
  if (!wrapped.ok()) {
    FreeHeap(sealed.size());
    return wrapped.status();
  }
  uint64_t model_bytes = (*wrapped)->memory_bytes();
  Status charge = ChargeHeap(model_bytes);
  // OC_FREE_LOADED: release the ciphertext staging copy.
  FreeHeap(sealed.size());
  if (enclave_ != nullptr) enclave_->RecordOcall();
  if (!charge.ok()) return charge;

  std::lock_guard<std::mutex> lock(mutex_);
  // Model switch invalidates every thread's runtime for the old model (done
  // lazily in EnsureRuntime); free the old model's charge now.
  if (loaded_model_ != nullptr) FreeHeap(model_charged_bytes_);
  loaded_model_ = std::move(*wrapped);
  loaded_model_id_ = model_id;
  model_charged_bytes_ = model_bytes;
  stats_.model_loads++;
  *loaded = true;
  return loaded_model_;
}

Status SemirtInstance::EnsureRuntime(
    int slot, const std::string& model_id,
    const std::shared_ptr<inference::LoadedModel>& model, bool* inited) {
  std::unique_lock<std::mutex> lock(mutex_);
  ThreadContext& ctx = contexts_[slot];
  const bool reuse_allowed =
      options_.mode == RuntimeMode::kSesemi ||
      (options_.mode == RuntimeMode::kUntrusted && options_.reuse_model);
  const bool reusable =
      ctx.runtime != nullptr && ctx.model_id == model_id && reuse_allowed;
  if (reusable) return Status::OK();

  DropRuntimeLocked(&ctx);
  lock.unlock();

  auto runtime = framework_->CreateRuntime(model);
  if (!runtime.ok()) return runtime.status();
  uint64_t bytes = (*runtime)->buffer_bytes();
  SESEMI_RETURN_IF_ERROR(ChargeHeap(bytes));

  lock.lock();
  ctx.runtime = std::move(*runtime);
  ctx.model_id = model_id;
  ctx.charged_bytes = bytes;
  stats_.runtime_inits++;
  *inited = true;
  return Status::OK();
}

Result<Bytes> SemirtInstance::HandleRequest(const InferenceRequest& request,
                                            StageTimings* timings,
                                            const ExecDeadline* deadline) {
  if (request.model_id.empty() || request.encrypted_input.empty()) {
    return Status::InvalidArgument("empty model id or input");
  }
  if (!options_.fixed_model_id.empty() &&
      request.model_id != options_.fixed_model_id) {
    return Status::PermissionDenied("enclave is fixed to model " +
                                    options_.fixed_model_id);
  }
  if (deadline != nullptr && deadline->Expired()) {
    return Status::DeadlineExceeded("deadline passed before execution");
  }

  StageTimings local;
  StageTimings* t = timings != nullptr ? timings : &local;
  const TimeMicros start = NowMicros();

  obs::Span span(obs::spans::kRequest);
  int slot = AcquireSlot();
  Result<Bytes> result = options_.mode == RuntimeMode::kUntrusted
                             ? HandleUntrusted(request, slot, t, deadline)
                             : HandleTrusted(request, slot, t, deadline);
  ReleaseSlot(slot);
  t->total = NowMicros() - start;
  return result;
}

std::vector<Result<Bytes>> SemirtInstance::HandleRequestBatch(
    const std::vector<const InferenceRequest*>& batch, StageTimings* timings,
    const ExecDeadline* deadline) {
  std::vector<Result<Bytes>> results;
  results.reserve(batch.size());
  if (batch.empty()) return results;

  // Baseline modes keep their per-request setup/teardown semantics; a batch
  // of one gains nothing from the batched plumbing.
  if (batch.size() == 1 || options_.mode != RuntimeMode::kSesemi ||
      options_.sequential_mode) {
    for (const InferenceRequest* request : batch) {
      results.push_back(HandleRequest(*request, timings, deadline));
    }
    return results;
  }

  results.assign(batch.size(),
                 Status::Aborted("request dropped before execution"));
  const InferenceRequest& head = *batch[0];

  StageTimings local;
  StageTimings* t = timings != nullptr ? timings : &local;
  const TimeMicros start = NowMicros();

  auto fail_all = [&](const Status& status) {
    for (auto& r : results) r = status;
    t->total = NowMicros() - start;
  };

  if (head.model_id.empty() || head.user_id.empty()) {
    fail_all(Status::InvalidArgument("empty model or user id"));
    return results;
  }
  if (!options_.fixed_model_id.empty() &&
      head.model_id != options_.fixed_model_id) {
    fail_all(Status::PermissionDenied("enclave is fixed to model " +
                                      options_.fixed_model_id));
    return results;
  }
  if (deadline != nullptr && deadline->Expired()) {
    fail_all(Status::DeadlineExceeded("deadline passed before execution"));
    return results;
  }

  // Cooperative deadline cut between stages (never mid-inference).
  auto deadline_cut = [&](const char* stage) -> bool {
    if (deadline == nullptr) return false;
    Status cut = deadline->Check(stage);
    if (cut.ok()) return false;
    fail_all(cut);
    return true;
  };

  // One slot, one enclave entry for the whole batch — the other TCS slots
  // stay free for concurrent (unbatched or other-session) traffic.
  const int slot = AcquireSlot();
  if (FaultInjector::AnyArmed()) {
    Status fault = FaultInjector::Instance().Evaluate(faults::kEcallEnter);
    if (!fault.ok()) {
      ReleaseSlot(slot);
      fail_all(fault);
      return results;
    }
  }
  {
    obs::Span ecall(obs::spans::kEcall);
    ecall.set_arg("batch_size", static_cast<int64_t>(batch.size()));
    sgx::TcsGuard tcs = enclave_->EnterEcall();
    bool key_fetched = false, model_loaded = false, runtime_inited = false;

    TimeMicros mark = NowMicros();
    auto keys = EnsureKeys(head.user_id, head.model_id, &key_fetched);
    if (!keys.ok()) {
      ReleaseSlot(slot);
      fail_all(keys.status());
      return results;
    }
    t->key_fetch = NowMicros() - mark;
    EmitStage(obs::spans::kKeyFetch, t->key_fetch);
    if (deadline_cut("key fetch")) {
      ReleaseSlot(slot);
      return results;
    }
    const Bytes& model_key = keys->first;
    const Bytes& request_key = keys->second;

    mark = NowMicros();
    auto model = EnsureModel(head.model_id, model_key, &model_loaded);
    if (!model.ok()) {
      ReleaseSlot(slot);
      fail_all(model.status());
      return results;
    }
    t->model_load = NowMicros() - mark;
    EmitStage(obs::spans::kModelLoad, t->model_load);
    if (deadline_cut("model load")) {
      ReleaseSlot(slot);
      return results;
    }

    mark = NowMicros();
    Status runtime_ok = EnsureRuntime(slot, head.model_id, *model, &runtime_inited);
    if (!runtime_ok.ok()) {
      ReleaseSlot(slot);
      fail_all(runtime_ok);
      return results;
    }
    t->runtime_init = NowMicros() - mark;
    EmitStage(obs::spans::kRuntimeInit, t->runtime_init);
    if (deadline_cut("runtime init")) {
      ReleaseSlot(slot);
      return results;
    }

    mark = NowMicros();
    // One K_R cipher context for the whole batch: the AES key schedule +
    // GHASH tables are built once here instead of once per decrypt/encrypt.
    auto cipher = RequestCipher::Create(request_key);
    if (!cipher.ok()) {
      ReleaseSlot(slot);
      fail_all(cipher.status());
      return results;
    }
    // Decrypt per request; a bad ciphertext (or a mixed-in foreign request)
    // drops only that entry from the execution batch.
    TimeMicros stage_mark = NowMicros();
    std::vector<Bytes> plain(batch.size());
    std::vector<size_t> live;
    live.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const InferenceRequest& request = *batch[i];
      if (request.model_id != head.model_id || request.user_id != head.user_id) {
        results[i] =
            Status::InvalidArgument("batch mixes models or users at index " +
                                    std::to_string(i));
        continue;
      }
      auto input = cipher->DecryptRequest(request.model_id, request.encrypted_input);
      if (!input.ok()) {
        results[i] = input.status();
        continue;
      }
      plain[i] = std::move(*input);
      live.push_back(i);
    }
    EmitStage(obs::spans::kDecrypt, NowMicros() - stage_mark);

    if (!live.empty()) {
      std::vector<ByteSpan> inputs;
      inputs.reserve(live.size());
      for (size_t i : live) inputs.push_back(plain[i]);
      stage_mark = NowMicros();
      auto outputs = [&]() -> Result<std::vector<Bytes>> {
        std::unique_lock<std::mutex> lock(mutex_);
        inference::ModelRuntime* runtime = contexts_[slot].runtime.get();
        lock.unlock();
        return runtime->ExecuteBatch(inputs);
      }();
      EmitStage(obs::spans::kInference, NowMicros() - stage_mark);
      stage_mark = NowMicros();
      if (!outputs.ok()) {
        for (size_t i : live) results[i] = outputs.status();
      } else {
        for (size_t k = 0; k < live.size(); ++k) {
          Bytes& output = (*outputs)[k];
          RoundScores(&output, options_.round_scores_decimals);
          results[live[k]] = cipher->EncryptResult(head.model_id, output);
        }
        EmitStage(obs::spans::kEncrypt, NowMicros() - stage_mark);
      }
    }
    t->execute = NowMicros() - mark;

    std::lock_guard<std::mutex> lock(mutex_);
    const int n = static_cast<int>(batch.size());
    if (enclave_fresh_) {
      t->kind = InvocationKind::kCold;
      stats_.cold_invocations += n;
      enclave_fresh_ = false;
    } else if (key_fetched || model_loaded || runtime_inited) {
      t->kind = InvocationKind::kWarm;
      stats_.warm_invocations += n;
    } else {
      t->kind = InvocationKind::kHot;
      stats_.hot_invocations += n;
    }
    stats_.requests += n;
  }
  ReleaseSlot(slot);
  t->total = NowMicros() - start;
  return results;
}

Result<Bytes> SemirtInstance::HandleTrusted(const InferenceRequest& request,
                                            int slot, StageTimings* timings,
                                            const ExecDeadline* deadline) {
  if (request.user_id.empty()) {
    return Status::InvalidArgument("missing user id");
  }
  if (options_.mode == RuntimeMode::kNative && !enclave_fresh_) {
    // Native baseline: tear down and relaunch the enclave for every request
    // (the sandbox is reused, the enclave is not — §VI "Baselines"). The
    // single TCS slot serializes requests, so this is race-free.
    ClearExecutionContext();
    enclave_.reset();
    SESEMI_RETURN_IF_ERROR(Initialize());
    std::lock_guard<std::mutex> lock(mutex_);
    enclave_fresh_ = true;
  }
  // EC_MODEL_INF: a thread enters the enclave through a TCS.
  SESEMI_FAULT_POINT(faults::kEcallEnter);
  obs::Span ecall(obs::spans::kEcall);
  sgx::TcsGuard tcs = enclave_->EnterEcall();

  bool key_fetched = false, model_loaded = false, runtime_inited = false;

  TimeMicros mark = NowMicros();
  SESEMI_ASSIGN_OR_RETURN(auto keys,
                          EnsureKeys(request.user_id, request.model_id, &key_fetched));
  timings->key_fetch = NowMicros() - mark;
  EmitStage(obs::spans::kKeyFetch, timings->key_fetch);
  if (deadline != nullptr) SESEMI_RETURN_IF_ERROR(deadline->Check("key fetch"));
  const Bytes& model_key = keys.first;
  const Bytes& request_key = keys.second;

  mark = NowMicros();
  SESEMI_ASSIGN_OR_RETURN(
      std::shared_ptr<inference::LoadedModel> model,
      EnsureModel(request.model_id, model_key, &model_loaded));
  timings->model_load = NowMicros() - mark;
  EmitStage(obs::spans::kModelLoad, timings->model_load);
  if (deadline != nullptr) SESEMI_RETURN_IF_ERROR(deadline->Check("model load"));

  mark = NowMicros();
  SESEMI_RETURN_IF_ERROR(
      EnsureRuntime(slot, request.model_id, model, &runtime_inited));
  timings->runtime_init = NowMicros() - mark;
  EmitStage(obs::spans::kRuntimeInit, timings->runtime_init);
  if (deadline != nullptr) {
    SESEMI_RETURN_IF_ERROR(deadline->Check("runtime init"));
  }

  mark = NowMicros();
  TimeMicros stage_mark = mark;
  SESEMI_ASSIGN_OR_RETURN(
      Bytes input, DecryptRequestPayload(request_key, request.model_id,
                                         request.encrypted_input));
  EmitStage(obs::spans::kDecrypt, NowMicros() - stage_mark);
  stage_mark = NowMicros();
  Result<Bytes> output = [&]() -> Result<Bytes> {
    std::unique_lock<std::mutex> lock(mutex_);
    inference::ModelRuntime* runtime = contexts_[slot].runtime.get();
    lock.unlock();
    return runtime->Execute(input);
  }();
  if (!output.ok()) return output.status();
  RoundScores(&output.value(), options_.round_scores_decimals);
  EmitStage(obs::spans::kInference, NowMicros() - stage_mark);
  stage_mark = NowMicros();
  SESEMI_ASSIGN_OR_RETURN(
      Bytes sealed, EncryptResultPayload(request_key, request.model_id, *output));
  EmitStage(obs::spans::kEncrypt, NowMicros() - stage_mark);
  timings->execute = NowMicros() - mark;

  std::lock_guard<std::mutex> lock(mutex_);
  if (enclave_fresh_) {
    timings->kind = InvocationKind::kCold;
    stats_.cold_invocations++;
    enclave_fresh_ = false;
  } else if (key_fetched || model_loaded || runtime_inited) {
    timings->kind = InvocationKind::kWarm;
    stats_.warm_invocations++;
  } else {
    timings->kind = InvocationKind::kHot;
    stats_.hot_invocations++;
  }
  stats_.requests++;

  if (options_.sequential_mode) {
    // Strong isolation (§V, Table II): return the enclave to a state holding
    // only the loaded model — drop runtimes and cached keys.
    DropRuntimeLocked(&contexts_[slot]);
    cached_key_id_.clear();
    cached_model_key_.clear();
    cached_request_key_.clear();
  }
  return sealed;
}

Result<Bytes> SemirtInstance::HandleUntrusted(const InferenceRequest& request,
                                              int slot, StageTimings* timings,
                                              const ExecDeadline* deadline) {
  bool model_loaded = false, runtime_inited = false;

  // Plaintext model path (no keys, no attestation).
  TimeMicros mark = NowMicros();
  std::shared_ptr<inference::LoadedModel> model;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (loaded_model_ != nullptr && loaded_model_id_ == request.model_id &&
        options_.reuse_model) {
      model = loaded_model_;
    }
  }
  if (model == nullptr) {
    SESEMI_ASSIGN_OR_RETURN(Bytes plain,
                            storage_->Get(PlainModelObjectKey(request.model_id)));
    SESEMI_ASSIGN_OR_RETURN(model, framework_->LoadModel(plain));
    uint64_t bytes = model->memory_bytes();
    SESEMI_RETURN_IF_ERROR(ChargeHeap(bytes));
    std::lock_guard<std::mutex> lock(mutex_);
    if (loaded_model_ != nullptr) FreeHeap(model_charged_bytes_);
    loaded_model_ = model;
    loaded_model_id_ = request.model_id;
    model_charged_bytes_ = bytes;
    stats_.model_loads++;
    model_loaded = true;
  }
  timings->model_load = NowMicros() - mark;
  EmitStage(obs::spans::kModelLoad, timings->model_load);
  if (deadline != nullptr) SESEMI_RETURN_IF_ERROR(deadline->Check("model load"));

  mark = NowMicros();
  SESEMI_RETURN_IF_ERROR(
      EnsureRuntime(slot, request.model_id, model, &runtime_inited));
  timings->runtime_init = NowMicros() - mark;
  EmitStage(obs::spans::kRuntimeInit, timings->runtime_init);
  if (deadline != nullptr) {
    SESEMI_RETURN_IF_ERROR(deadline->Check("runtime init"));
  }

  mark = NowMicros();
  Result<Bytes> output = [&]() -> Result<Bytes> {
    std::unique_lock<std::mutex> lock(mutex_);
    inference::ModelRuntime* runtime = contexts_[slot].runtime.get();
    lock.unlock();
    return runtime->Execute(request.encrypted_input);  // plaintext in this mode
  }();
  if (!output.ok()) return output.status();
  timings->execute = NowMicros() - mark;
  EmitStage(obs::spans::kInference, timings->execute);

  std::lock_guard<std::mutex> lock(mutex_);
  if (enclave_fresh_) {
    timings->kind = InvocationKind::kCold;
    stats_.cold_invocations++;
    enclave_fresh_ = false;
  } else if (model_loaded || runtime_inited) {
    timings->kind = InvocationKind::kWarm;
    stats_.warm_invocations++;
  } else {
    timings->kind = InvocationKind::kHot;
    stats_.hot_invocations++;
  }
  stats_.requests++;
  return *output;
}

void SemirtInstance::ClearExecutionContext() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ThreadContext& ctx : contexts_) DropRuntimeLocked(&ctx);
  if (loaded_model_ != nullptr) {
    FreeHeap(model_charged_bytes_);
    loaded_model_.reset();
    loaded_model_id_.clear();
    model_charged_bytes_ = 0;
  }
  cached_key_id_.clear();
  cached_model_key_.clear();
  cached_request_key_.clear();
}

std::string SemirtInstance::loaded_model_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return loaded_model_id_;
}

SemirtStats SemirtInstance::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sesemi::semirt
