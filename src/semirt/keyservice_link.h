#ifndef SESEMI_SEMIRT_KEYSERVICE_LINK_H_
#define SESEMI_SEMIRT_KEYSERVICE_LINK_H_

#include <mutex>
#include <optional>

#include "common/result.h"
#include "keyservice/keyservice.h"
#include "ratls/session.h"
#include "sgx/enclave.h"

namespace sesemi::semirt {

/// SeMIRT's connection to KeyService: performs the mutual remote attestation
/// once, then keeps the secure channel alive so later key fetches skip the
/// attestation round trip (§IV-B: "The enclave maintains a secure channel
/// with KeyService after the first remote attestation").
class KeyServiceLink {
 public:
  /// `server` is the in-process transport to KeyService (a network stub in
  /// this build); `expected_measurement` is E_K compiled into the SeMIRT
  /// enclave code (Appendix A).
  KeyServiceLink(keyservice::KeyServiceServer* server,
                 sgx::Measurement expected_measurement)
      : server_(server), expected_(expected_measurement) {}

  /// Fetch (K_M, K_R) for (user, model) with `enclave` as the attesting
  /// identity. Establishes the mutually attested session on first use.
  Result<std::pair<Bytes, Bytes>> FetchKeys(sgx::Enclave* enclave,
                                            const std::string& user_id,
                                            const std::string& model_id);

  /// Number of mutual attestations performed (1 after the first fetch; the
  /// paper's warm/hot paths rely on this staying at 1).
  int attestation_count() const { return attestation_count_; }

  /// Drop the cached session (simulates KeyService restart / network reset).
  void ResetSession();

 private:
  Status EnsureSession(sgx::Enclave* enclave);

  keyservice::KeyServiceServer* server_;
  sgx::Measurement expected_;
  std::mutex mutex_;
  std::optional<ratls::SecureSession> session_;
  uint64_t session_id_ = 0;
  int attestation_count_ = 0;
};

}  // namespace sesemi::semirt

#endif  // SESEMI_SEMIRT_KEYSERVICE_LINK_H_
