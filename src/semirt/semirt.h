#ifndef SESEMI_SEMIRT_SEMIRT_H_
#define SESEMI_SEMIRT_SEMIRT_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "inference/framework.h"
#include "keyservice/keyservice.h"
#include "semirt/keyservice_link.h"
#include "semirt/request_codec.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

namespace sesemi::semirt {

/// Execution strategy of a serverless instance. kSesemi is this paper's
/// runtime; the others are the evaluation baselines (§VI):
///  - kIsoReuse  — S-FaaS/Clemmys-style: reuse enclave + decryption keys, but
///    reload the model and re-initialize the runtime for every request.
///  - kNative    — existing serverless runtimes: a fresh enclave per request.
///  - kUntrusted — no TEE, plaintext models and requests (Figure 9's
///    "Untrusted"); model reuse across requests gives "Untrusted (reuse)".
enum class RuntimeMode { kSesemi, kIsoReuse, kNative, kUntrusted };

const char* ToString(RuntimeMode mode);

/// Classification of an invocation per Figure 4.
enum class InvocationKind { kCold, kWarm, kHot };

const char* ToString(InvocationKind kind);

/// Deployment-time configuration. Everything here except `heap_size_bytes`
/// defaults is part of the enclave identity (MeasurementFor), matching §V.
struct SemirtOptions {
  inference::FrameworkKind framework = inference::FrameworkKind::kTvm;
  /// Compile models through the int8 quantized tier (see
  /// inference::FrameworkOptions::quantize). Changes the numbers a model
  /// produces, so it is part of the enclave identity: users attesting the
  /// enclave see whether their requests run int8 or fp32.
  bool quantize = false;
  RuntimeMode mode = RuntimeMode::kSesemi;
  uint32_t num_tcs = 1;
  uint64_t heap_size_bytes = 256ull << 20;
  bool sequential_mode = false;    ///< Table II: strict per-request isolation
  bool disable_key_cache = false;  ///< part of sequential isolation build
  std::string fixed_model_id;      ///< restrict the enclave to one model
  bool reuse_model = true;         ///< kUntrusted only: cache the loaded model
  /// §IV-D model-extraction mitigation: round output confidence scores to
  /// this many decimal places before encryption (0 = disabled). Part of the
  /// enclave identity, so users can verify the policy is actually enforced.
  int round_scores_decimals = 0;
};

/// Per-request stage timings (live-mode measurements; the sim substitutes its
/// calibrated cost model for the same stages).
struct StageTimings {
  InvocationKind kind = InvocationKind::kHot;
  TimeMicros key_fetch = 0;     ///< attestation + KEY_PROVISIONING
  TimeMicros model_load = 0;    ///< storage fetch + copy-in + decrypt + parse
  TimeMicros runtime_init = 0;  ///< RUNTIME_INIT
  TimeMicros execute = 0;       ///< decrypt input + MODEL_EXEC + encrypt result
  TimeMicros total = 0;
};

/// Cooperative execution deadline. The pipeline checks it *between* stages
/// (after key fetch, model load, runtime init) — never mid-inference, so a
/// started MODEL_EXEC always runs to completion — and cuts the request with
/// kDeadlineExceeded once `clock->Now() >= deadline`. DeadlineEdf sheds only
/// at dispatch; this catches requests that start in time but overrun on a
/// cold path.
struct ExecDeadline {
  TimeMicros deadline = 0;
  const Clock* clock = nullptr;

  bool Expired() const { return clock != nullptr && clock->Now() >= deadline; }
  Status Check(const char* stage) const {
    if (!Expired()) return Status::OK();
    return Status::DeadlineExceeded(std::string("deadline cut after ") + stage);
  }
};

/// Cumulative instance statistics.
struct SemirtStats {
  int cold_invocations = 0;
  int warm_invocations = 0;
  int hot_invocations = 0;
  int key_fetches = 0;
  int model_loads = 0;
  int runtime_inits = 0;
  int requests = 0;
};

/// One serverless sandbox running the SeMIRT runtime (Figure 6): an enclave
/// with a shared decrypted-model cache, a single cached ⟨uid,Moid⟩ key pair,
/// and per-TCS thread contexts holding model runtimes.
///
/// \par Thread-safety contract
///  - HandleRequest may be called from any number of threads concurrently;
///    at most `num_tcs` execute inside at once, the rest block on TCS slot
///    acquisition exactly as on real SGX. Slot acquisition is a lock-free
///    CAS on a free-slot bitmap when num_tcs <= 64 (a mutex scan otherwise);
///    waiting uses a condition variable either way.
///  - A thread holding a slot has exclusive use of that slot's ThreadContext
///    (its model runtime and activation buffers); the instance mutex guards
///    only the shared state — loaded-model cache, key cache, statistics —
///    and is never held across model execution or KeyService round trips.
///  - Concurrent EnsureKeys / EnsureModel for the same (user, model) may
///    both do the fetch/load; the second write wins and the duplicate work
///    is benign (both produce identical state).
///  - ClearExecutionContext must not race with in-flight HandleRequest calls
///    (it tears down the runtimes those requests execute on); callers
///    serialize externally — the platform only invokes it on idle containers.
///  - stats(), heap_peak(), loaded_model_id() are safe at any time.
class SemirtInstance {
 public:
  /// Launch the instance: creates the enclave (the expensive part of a cold
  /// start) and connects the KeyService link. `keyservice` may be null only
  /// in kUntrusted mode.
  static Result<std::unique_ptr<SemirtInstance>> Create(
      sgx::SgxPlatform* platform, const SemirtOptions& options,
      storage::ObjectStore* storage, keyservice::KeyServiceServer* keyservice);

  ~SemirtInstance();

  /// The enclave identity E_S a deployment of `options` will have. Model
  /// owners and users derive this from the published code + configuration to
  /// write access-control entries (§III).
  static sgx::Measurement MeasurementFor(const SemirtOptions& options);

  /// ECALL EC_MODEL_INF + EC_GET_OUTPUT: serve one request, returning the
  /// result encrypted under the request key (raw output in kUntrusted mode).
  /// `deadline` (optional) is checked cooperatively between pipeline stages;
  /// an expired deadline cuts the request with kDeadlineExceeded.
  Result<Bytes> HandleRequest(const InferenceRequest& request,
                              StageTimings* timings = nullptr,
                              const ExecDeadline* deadline = nullptr);

  /// Serve a same-user, same-model batch (the scheduler's coalescer output)
  /// through ONE TCS slot and ONE enclave entry: keys, model, and runtime are
  /// ensured once, inputs are decrypted individually, inference runs as one
  /// batched MODEL_EXEC (multi-row GEMM), and each result is sealed under the
  /// shared request key. Returns per-request results in request order; a
  /// request that fails validation or decryption gets its own error without
  /// failing the rest. Entries whose user or model differ from the first
  /// request's are rejected with InvalidArgument (the key cache holds one
  /// ⟨uid,Moid⟩ pair — mixing would leak across sessions).
  ///
  /// Only the kSesemi mode takes the batched path; the baseline modes (and
  /// sequential isolation builds) fall back to per-request HandleRequest,
  /// preserving their per-request setup/teardown semantics.
  /// `timings` receives the batch's stage timings (shared by its requests).
  std::vector<Result<Bytes>> HandleRequestBatch(
      const std::vector<const InferenceRequest*>& batch,
      StageTimings* timings = nullptr, const ExecDeadline* deadline = nullptr);

  /// ECALL EC_CLEAR_EXEC_CTX: drop all thread-local runtimes, the cached
  /// model, and cached keys, returning the enclave to its post-init state.
  void ClearExecutionContext();

  const SemirtOptions& options() const { return options_; }
  sgx::Enclave* enclave() { return enclave_.get(); }  ///< null in kUntrusted
  SemirtStats stats() const;

  /// Peak trusted-heap usage (Figure 10's measurement).
  uint64_t heap_peak() const;

  /// Currently loaded model id (empty if none) — used by schedulers that
  /// prefer hot containers.
  std::string loaded_model_id() const;

  /// Storage key where model `id`'s ciphertext lives.
  static std::string ModelObjectKey(const std::string& model_id);
  /// Storage key for the plaintext copy used by the untrusted baselines.
  static std::string PlainModelObjectKey(const std::string& model_id);

 private:
  struct ThreadContext {
    bool busy = false;
    std::string model_id;
    std::unique_ptr<inference::ModelRuntime> runtime;
    uint64_t charged_bytes = 0;
  };

  SemirtInstance(sgx::SgxPlatform* platform, SemirtOptions options,
                 storage::ObjectStore* storage,
                 keyservice::KeyServiceServer* keyservice);

  Status Initialize();
  Result<Bytes> HandleTrusted(const InferenceRequest& request, int slot,
                              StageTimings* timings,
                              const ExecDeadline* deadline);
  Result<Bytes> HandleUntrusted(const InferenceRequest& request, int slot,
                                StageTimings* timings,
                                const ExecDeadline* deadline);

  /// Ensure (K_M, K_R) for (uid, Moid) are available, honoring the one-pair
  /// key cache. Sets *fetched if a KeyService round trip happened.
  Result<std::pair<Bytes, Bytes>> EnsureKeys(const std::string& user_id,
                                             const std::string& model_id,
                                             bool* fetched);

  /// Ensure the target model is the loaded model (OC_LOAD_MODEL + decrypt +
  /// MODEL_LOAD). Sets *loaded if a load happened.
  Result<std::shared_ptr<inference::LoadedModel>> EnsureModel(
      const std::string& model_id, ByteSpan model_key, bool* loaded);

  /// Ensure slot's runtime targets `model_id`. Sets *inited on RUNTIME_INIT.
  Status EnsureRuntime(int slot, const std::string& model_id,
                       const std::shared_ptr<inference::LoadedModel>& model,
                       bool* inited);

  int AcquireSlot();
  int TryAcquireSlotFast();
  void ReleaseSlot(int slot);
  void DropRuntimeLocked(ThreadContext* ctx);
  Status ChargeHeap(uint64_t bytes);
  void FreeHeap(uint64_t bytes);

  sgx::SgxPlatform* platform_;
  SemirtOptions options_;
  storage::ObjectStore* storage_;
  keyservice::KeyServiceServer* keyservice_;

  std::unique_ptr<sgx::Enclave> enclave_;
  std::unique_ptr<KeyServiceLink> link_;
  std::unique_ptr<inference::InferenceFramework> framework_;

  mutable std::mutex mutex_;
  std::vector<ThreadContext> contexts_;

  // TCS slot pool. For num_tcs <= 64 acquisition is a CAS on the free-bit
  // mask (bit i set = slot i free) so the request hot path never takes a
  // lock; slot_mutex_/slot_cv_ only park threads when every slot is busy.
  // Larger TCS counts fall back to a scan of ThreadContext::busy under
  // slot_mutex_.
  const bool use_slot_bitmap_;
  std::atomic<uint64_t> free_slot_bits_{0};
  std::atomic<int> slot_waiters_{0};  ///< parked threads; gates the notify
  std::mutex slot_mutex_;
  std::condition_variable slot_cv_;

  // Shared (enclave-heap) state: one model, one key pair (Algorithm 2).
  std::shared_ptr<inference::LoadedModel> loaded_model_;
  std::string loaded_model_id_;
  uint64_t model_charged_bytes_ = 0;
  std::string cached_key_id_;  // Moid|uid
  Bytes cached_model_key_;
  Bytes cached_request_key_;

  bool enclave_fresh_ = true;  // next request is the cold one
  SemirtStats stats_;
  // Heap accounting for kUntrusted (no enclave). Atomic so Charge/Free are
  // safe from paths that already hold mutex_.
  std::atomic<uint64_t> untrusted_heap_peak_{0};
  std::atomic<uint64_t> untrusted_heap_used_{0};
};

}  // namespace sesemi::semirt

#endif  // SESEMI_SEMIRT_SEMIRT_H_
