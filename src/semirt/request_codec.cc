#include "semirt/request_codec.h"

#include "crypto/gcm.h"

namespace sesemi::semirt {

namespace {
// AAD prefixes are passed as spans alongside the model id, so the request
// hot path never materializes a "prefix + model_id" buffer per call — the
// GCM layer hashes the two parts as one logical stream.
inline ByteSpan RequestAadPrefix() { return SpanOf("sesemi-request:"); }
inline ByteSpan ResultAadPrefix() { return SpanOf("sesemi-result:"); }
}  // namespace

Bytes InferenceRequest::Serialize() const {
  ByteWriter w;
  w.Reserve(3 * sizeof(uint32_t) + user_id.size() + model_id.size() +
            encrypted_input.size());
  w.WriteLengthPrefixedString(user_id);
  w.WriteLengthPrefixedString(model_id);
  w.WriteLengthPrefixed(encrypted_input);
  return std::move(w).Take();
}

Result<InferenceRequest> InferenceRequest::Parse(ByteSpan wire) {
  ByteReader r(wire);
  InferenceRequest req;
  if (!r.ReadLengthPrefixedString(&req.user_id) ||
      !r.ReadLengthPrefixedString(&req.model_id) ||
      !r.ReadLengthPrefixed(&req.encrypted_input) || !r.done()) {
    return Status::Corruption("malformed inference request");
  }
  return req;
}

Result<Bytes> EncryptRequestPayload(ByteSpan request_key, const std::string& model_id,
                                    ByteSpan input) {
  return crypto::GcmSealParts(request_key, RequestAadPrefix(), SpanOf(model_id),
                              input);
}

Result<Bytes> DecryptRequestPayload(ByteSpan request_key, const std::string& model_id,
                                    ByteSpan sealed) {
  return crypto::GcmOpenParts(request_key, RequestAadPrefix(), SpanOf(model_id),
                              sealed);
}

Result<Bytes> EncryptResultPayload(ByteSpan request_key, const std::string& model_id,
                                   ByteSpan output) {
  return crypto::GcmSealParts(request_key, ResultAadPrefix(), SpanOf(model_id),
                              output);
}

Result<Bytes> DecryptResultPayload(ByteSpan request_key, const std::string& model_id,
                                   ByteSpan sealed) {
  return crypto::GcmOpenParts(request_key, ResultAadPrefix(), SpanOf(model_id),
                              sealed);
}

Result<RequestCipher> RequestCipher::Create(ByteSpan request_key) {
  SESEMI_ASSIGN_OR_RETURN(crypto::AesGcm gcm, crypto::AesGcm::Create(request_key));
  return RequestCipher(std::move(gcm));
}

Result<Bytes> RequestCipher::DecryptRequest(const std::string& model_id,
                                            ByteSpan sealed) const {
  return crypto::GcmOpenPartsWith(gcm_, RequestAadPrefix(), SpanOf(model_id),
                                  sealed);
}

Result<Bytes> RequestCipher::EncryptResult(const std::string& model_id,
                                           ByteSpan output) const {
  return crypto::GcmSealPartsWith(gcm_, ResultAadPrefix(), SpanOf(model_id),
                                  output);
}

}  // namespace sesemi::semirt
