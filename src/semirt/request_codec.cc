#include "semirt/request_codec.h"

#include "crypto/gcm.h"

namespace sesemi::semirt {

namespace {
Bytes RequestAad(const std::string& model_id) {
  return ToBytes("sesemi-request:" + model_id);
}
Bytes ResultAad(const std::string& model_id) {
  return ToBytes("sesemi-result:" + model_id);
}
}  // namespace

Bytes InferenceRequest::Serialize() const {
  ByteWriter w;
  w.WriteLengthPrefixedString(user_id);
  w.WriteLengthPrefixedString(model_id);
  w.WriteLengthPrefixed(encrypted_input);
  return std::move(w).Take();
}

Result<InferenceRequest> InferenceRequest::Parse(ByteSpan wire) {
  ByteReader r(wire);
  InferenceRequest req;
  if (!r.ReadLengthPrefixedString(&req.user_id) ||
      !r.ReadLengthPrefixedString(&req.model_id) ||
      !r.ReadLengthPrefixed(&req.encrypted_input) || !r.done()) {
    return Status::Corruption("malformed inference request");
  }
  return req;
}

Result<Bytes> EncryptRequestPayload(ByteSpan request_key, const std::string& model_id,
                                    ByteSpan input) {
  return crypto::GcmSeal(request_key, RequestAad(model_id), input);
}

Result<Bytes> DecryptRequestPayload(ByteSpan request_key, const std::string& model_id,
                                    ByteSpan sealed) {
  return crypto::GcmOpen(request_key, RequestAad(model_id), sealed);
}

Result<Bytes> EncryptResultPayload(ByteSpan request_key, const std::string& model_id,
                                   ByteSpan output) {
  return crypto::GcmSeal(request_key, ResultAad(model_id), output);
}

Result<Bytes> DecryptResultPayload(ByteSpan request_key, const std::string& model_id,
                                   ByteSpan sealed) {
  return crypto::GcmOpen(request_key, ResultAad(model_id), sealed);
}

}  // namespace sesemi::semirt
