// Multi-node cluster dataplane bench: a seeded Zipf multi-tenant trace
// replayed open-loop through N ServerlessPlatform shards behind the
// consistent-hash router (src/cluster). Emits JSON lines for the
// BENCH_cluster.json artifact (schema in docs/BENCHMARKS.md):
//  (a) replay    — per-node inv/s, steal rate, home-hit rate, placement
//                  skew, p50/p99 latency;
//  (b) simparity — the same trace through sim/cluster with a cost model
//                  calibrated from (a)'s measured stages: throughput and
//                  mean-latency band ratios vs the real run;
//  (c) autoscale — stats-driven scale-up from a real scheduler backlog and
//                  scale-down when idle, against a standby pool.
//
// Flags: --quick shrinks the trace (CI / TSan smoke); --trace=FILE records
// the replay with the obs tracer and writes Chrome trace-event JSON
// (chrome://tracing / Perfetto) covering route -> dispatch -> ecall ->
// pipeline stages, plus the sim's virtual-time counterpart.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster.h"
#include "cluster/replay.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "workload/generators.h"

namespace sesemi::bench {
namespace {

bool g_quick = false;

constexpr int kNodes = 4;
constexpr int kTenants = 8;

struct ClusterRig {
  explicit ClusterRig(cluster::ClusterConfig config) : live(0.002, 16) {
    graph = &live.DeployModel(model::Architecture::kMbNet);
    live.Authorize(model::Architecture::kMbNet, options);
    dataplane = std::make_unique<cluster::ClusterDataplane>(
        config, &live.authority(), &live.storage(), live.keyservice());
    for (int i = 0; i < kTenants; ++i) {
      serverless::FunctionSpec spec;
      spec.name = Function(i);
      spec.options = options;
      ok = ok && dataplane->DeployFunction(spec).ok();
    }
  }

  static std::string Function(int tenant) {
    return "fn" + std::to_string(tenant);
  }

  Result<semirt::InferenceRequest> Request(uint64_t seed) {
    const sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
    Bytes input = model::GenerateRandomInput(*graph, seed);
    return live.user().BuildRequest(model::ToString(model::Architecture::kMbNet),
                                    input, &es);
  }

  LiveRig live;
  const model::ModelGraph* graph = nullptr;
  semirt::SemirtOptions options;
  std::unique_ptr<cluster::ClusterDataplane> dataplane;
  bool ok = true;
};

// The shared seeded trace: Zipf(1.0) rates over kTenants tenant streams.
std::vector<workload::Arrival> BuildTrace(uint64_t seed) {
  const double total_rps = g_quick ? 20.0 : 40.0;
  const double duration_s = g_quick ? 1.5 : 3.0;
  std::vector<double> rates = workload::ZipfRates(kTenants, 1.0, total_rps);
  std::vector<workload::TenantSpec> tenants;
  for (int i = 0; i < kTenants; ++i) {
    workload::TenantSpec tenant;
    tenant.model_id = "t" + std::to_string(i);
    tenant.user_id = "u" + std::to_string(i);
    tenant.rps = rates[static_cast<size_t>(i)];
    tenants.push_back(tenant);
  }
  return workload::MultiTenantPoisson(tenants, duration_s, seed);
}

int TenantOf(const workload::Arrival& arrival) {
  return std::stoi(arrival.model_id.substr(1));
}

void ReplayAndParitySections() {
  PrintSection("(a) replay — Zipf tenants over the consistent-hash router");

  cluster::ClusterConfig config;
  config.initial_nodes = kNodes;
  ClusterRig rig(config);
  if (!rig.ok) {
    std::printf("deploy failed\n");
    return;
  }

  // Warm-up outside the measurement: one request per function.
  for (int i = 0; i < kTenants; ++i) {
    auto request = rig.Request(static_cast<uint64_t>(i) + 1);
    if (!request.ok()) return;
    (void)rig.dataplane->InvokeAsync(ClusterRig::Function(i), std::move(*request))
        .get();
  }

  const std::vector<workload::Arrival> trace = BuildTrace(0xc1a5);
  cluster::ReplayResult real = cluster::ReplayTrace(
      rig.dataplane.get(), trace,
      [&rig](const workload::Arrival& arrival,
             size_t index) -> Result<cluster::BoundArrival> {
        cluster::BoundArrival bound;
        bound.function = ClusterRig::Function(TenantOf(arrival));
        SESEMI_ASSIGN_OR_RETURN(bound.request, rig.Request(index + 100));
        return bound;
      });

  cluster::ClusterStats stats = rig.dataplane->stats();
  uint64_t routed_total = 0, routed_max = 0;
  for (const auto& node : stats.nodes) {
    routed_total += node.routed;
    routed_max = std::max(routed_max, node.routed);
  }
  const double routed_mean =
      stats.nodes.empty() ? 0
                          : static_cast<double>(routed_total) /
                                static_cast<double>(stats.nodes.size());
  const double skew =
      routed_mean > 0 ? static_cast<double>(routed_max) / routed_mean : 0;
  const double steal_rate =
      stats.invocations > 0
          ? static_cast<double>(stats.steals) / static_cast<double>(stats.invocations)
          : 0;
  const double home_rate =
      stats.invocations > 0
          ? static_cast<double>(stats.home_hits) /
                static_cast<double>(stats.invocations)
          : 0;

  std::printf(
      "{\"bench\":\"cluster\",\"section\":\"replay\",\"nodes\":%d,"
      "\"tenants\":%d,\"submitted\":%zu,\"ok\":%zu,\"errors\":%zu,"
      "\"wall_s\":%.3f,\"throughput_rps\":%.1f,\"mean_ms\":%.3f,"
      "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"cold_starts\":%zu,"
      "\"steal_rate\":%.4f,\"home_hit_rate\":%.4f,\"reroutes\":%llu,"
      "\"placement_skew\":%.3f,\"per_node\":[",
      kNodes, kTenants, real.submitted, real.ok,
      real.submitted - real.ok, real.wall_s, real.throughput_rps,
      real.mean_latency_s * 1e3, real.p50_latency_s * 1e3,
      real.p99_latency_s * 1e3, real.cold_starts, steal_rate, home_rate,
      static_cast<unsigned long long>(stats.reroutes), skew);
  for (size_t i = 0; i < stats.nodes.size(); ++i) {
    const cluster::ClusterNodeStats& node = stats.nodes[i];
    std::printf(
        "%s{\"node\":%d,\"routed\":%llu,\"inv_per_s\":%.1f,"
        "\"steal_wins\":%llu,\"containers\":%d}",
        i == 0 ? "" : ",", node.node,
        static_cast<unsigned long long>(node.routed),
        real.wall_s > 0 ? static_cast<double>(node.routed) / real.wall_s : 0,
        static_cast<unsigned long long>(node.steal_wins), node.containers);
  }
  std::printf("]}\n");

  PrintSection("(b) simparity — same trace through the calibrated simulator");
  sim::CalibrationProfile calibration;
  calibration.execute_s = real.mean_hot_total_s;
  calibration.key_fetch_s = real.mean_cold_key_fetch_s;
  calibration.model_load_s = real.mean_cold_model_load_s;
  calibration.runtime_init_s = real.mean_cold_runtime_init_s;

  sim::SimConfig sim_config;
  sim_config.num_nodes = kNodes;
  sim_config.cost_model = sim::CostModel::Calibrated(calibration);
  sim::ClusterSim sim(sim_config);
  for (int i = 0; i < kTenants; ++i) {
    sim::SimFunction fn;
    fn.name = ClusterRig::Function(i);
    sim.AddFunction(fn);
    (void)sim.Prewarm(fn.name, 1, "t" + std::to_string(i),
                      "u" + std::to_string(i));
  }
  cluster::SimReplayResult simulated = cluster::ReplayTraceOnSim(
      &sim, trace, [](const workload::Arrival& arrival) {
        return ClusterRig::Function(TenantOf(arrival));
      });

  auto band = [](double a, double b) {
    a = std::max(a, 1e-6);
    b = std::max(b, 1e-6);
    return std::max(a / b, b / a);
  };
  std::printf(
      "{\"bench\":\"cluster\",\"section\":\"simparity\",\"submitted\":%zu,"
      "\"real_ok\":%zu,\"sim_completed\":%zu,\"counts_match\":%s,"
      "\"real_rps\":%.1f,\"sim_rps\":%.1f,\"rps_band\":%.2f,"
      "\"real_mean_ms\":%.3f,\"sim_mean_ms\":%.3f,\"latency_band\":%.2f}\n",
      real.submitted, real.ok, simulated.completed,
      real.completions == simulated.completions ? "true" : "false",
      real.throughput_rps, simulated.throughput_rps,
      band(real.throughput_rps, simulated.throughput_rps),
      real.mean_latency_s * 1e3, simulated.mean_latency_s * 1e3,
      band(real.mean_latency_s, simulated.mean_latency_s));
  std::printf(
      "(shape check: counts_match true; bands well inside the documented 3x\n"
      " sim-parity tolerance — see docs/BENCHMARKS.md)\n");
}

void AutoscaleSection() {
  PrintSection("(c) autoscale — backlog-driven scale-up, idle scale-down");

  cluster::ClusterConfig config;
  config.initial_nodes = 1;
  config.standby_nodes = 3;
  config.autoscale.scale_up_backlog_per_node = 4.0;
  config.autoscale.scale_down_backlog_per_node = 0.5;
  config.autoscale.cooldown_ticks = 0;
  ClusterRig rig(config);
  if (!rig.ok) return;

  // Gate node 0's dispatcher to accumulate a real scheduler backlog, tick
  // the autoscaler until it stops adding nodes, then release and drain.
  const int backlog = g_quick ? 24 : 48;
  rig.dataplane->node(0)->PauseDispatch();
  std::vector<std::future<serverless::InvocationResult>> futures;
  for (int i = 0; i < backlog; ++i) {
    auto request = rig.Request(static_cast<uint64_t>(i) + 1);
    if (!request.ok()) return;
    futures.push_back(rig.dataplane->InvokeAsync(ClusterRig::Function(0),
                                                 std::move(*request)));
  }
  int ticks_to_peak = 0;
  while (rig.dataplane->AutoscaleTick() > 0) ticks_to_peak++;
  const int peak_nodes = rig.dataplane->active_nodes();
  rig.dataplane->node(0)->ResumeDispatch();
  size_t ok = 0;
  for (auto& f : futures) ok += f.get().response.ok();

  int ticks_to_idle = 0;
  while (rig.dataplane->AutoscaleTick() < 0) ticks_to_idle++;
  cluster::ClusterStats stats = rig.dataplane->stats();
  std::printf(
      "{\"bench\":\"cluster\",\"section\":\"autoscale\",\"backlog\":%d,"
      "\"ok\":%zu,\"peak_nodes\":%d,\"final_nodes\":%d,"
      "\"scale_ups\":%llu,\"scale_downs\":%llu,\"ticks_to_peak\":%d,"
      "\"ticks_to_idle\":%d}\n",
      backlog, ok, peak_nodes, rig.dataplane->active_nodes(),
      static_cast<unsigned long long>(stats.scale_ups),
      static_cast<unsigned long long>(stats.scale_downs), ticks_to_peak,
      ticks_to_idle);
  std::printf(
      "(shape check: peak_nodes > 1 while the backlog is gated; scale_downs\n"
      " return the cluster to min_nodes once drained)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) sesemi::bench::g_quick = true;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }
  sesemi::bench::PrintHeader(
      "Cluster dataplane — consistent-hash routing, warm-slot stealing, "
      "sim parity, autoscaling");
  if (!trace_path.empty()) sesemi::obs::Tracer::Enable();
  sesemi::bench::ReplayAndParitySections();
  sesemi::bench::AutoscaleSection();
  if (!trace_path.empty()) {
    sesemi::obs::Tracer::Disable();
    const sesemi::obs::TraceSnapshot snapshot = sesemi::obs::Tracer::Snap();
    const sesemi::Status status =
        sesemi::obs::WriteChromeTraceJson(snapshot, trace_path);
    std::printf("{\"bench\":\"cluster\",\"section\":\"trace\",\"file\":\"%s\","
                "\"spans\":%zu,\"dropped\":%llu,\"ok\":%s}\n",
                trace_path.c_str(), snapshot.spans.size(),
                static_cast<unsigned long long>(snapshot.dropped),
                status.ok() ? "true" : "false");
  }
  return 0;
}
