// Reproduces Table IV: latency of each model queried during the two
// interactive sessions, under All-in-one / One-to-one / FnPacker.

#include "bench/bench_fnpacker_common.h"

int main() {
  using namespace sesemi;
  using namespace sesemi::bench;
  PrintHeader("Table IV — latency of serving interactive queries");

  fnpacker::AllInOneRouter all_in_one;
  fnpacker::OneToOneRouter one_to_one(FnPackerModels());
  fnpacker::FnPoolSpec pool;
  pool.models = FnPackerModels();
  pool.num_endpoints = 4;
  pool.exclusive_idle_timeout = SecondsToMicros(30);
  fnpacker::FnPackerRouter fnpacker_router(pool);

  FnPackerRun all = RunWithRouter(&all_in_one);
  FnPackerRun oto = RunWithRouter(&one_to_one);
  FnPackerRun fnp = RunWithRouter(&fnpacker_router);

  for (const std::string session : {"session1", "session2"}) {
    std::printf("\n%s (ms):\n", session.c_str());
    std::printf("%-8s %12s %12s %12s\n", "Model", "All-in-one", "One-to-one",
                "FnPacker");
    for (const std::string& model : FnPackerModels()) {
      auto key = std::make_pair(session, model);
      std::printf("%-8s %12.0f %12.0f %12.0f\n", model.c_str(),
                  all.session_ms.count(key) ? all.session_ms[key] : -1,
                  oto.session_ms.count(key) ? oto.session_ms[key] : -1,
                  fnp.session_ms.count(key) ? fnp.session_ms[key] : -1);
    }
  }
  std::printf("\n(paper shape: session 1 — One-to-one cold-starts m2/m3/m4 (~9.4-9.9 s)\n"
              " while FnPacker packs them onto one shared warm endpoint after the\n"
              " first cold start; session 2 — everyone reuses session-1 sandboxes.\n"
              " All-in-one stays warm but pays model-switch latency throughout.)\n");
  return 0;
}
