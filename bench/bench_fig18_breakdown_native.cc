// Reproduces Appendix G Figure 18: per-stage execution time WITHOUT SGX
// (model load, runtime init, execution). Calibrated + live measurements via
// the untrusted runtime mode, read from the obs tracer's span rollup.

#include "bench/bench_common.h"

namespace sesemi::bench {
namespace {

void CalibratedSection() {
  PrintSection("Calibrated (paper measurements outside SGX, seconds)");
  std::printf("%-12s %10s %10s %10s\n", "", "ModelLoad", "RtInit", "Execute");
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  for (const Combo& combo : AllCombos()) {
    const auto& p = cm.profile(combo.framework, combo.arch);
    std::printf("%-12s %10.4f %10.5f %10.4f\n", combo.label, p.plain_model_load_s,
                p.plain_runtime_init_s, p.plain_execute_s);
  }
}

void MeasuredSection() {
  PrintSection("Measured (this repo, untrusted mode, scaled models, seconds)");
  std::printf("%-12s %10s %10s %10s\n", "", "ModelLoad", "RtInit", "Execute");
  LiveRig rig(0.02);
  for (const Combo& combo : AllCombos()) {
    rig.DeployModel(combo.arch);
    semirt::SemirtOptions options;
    options.framework = combo.framework;
    options.mode = semirt::RuntimeMode::kUntrusted;
    obs::Tracer::Reset();
    obs::Tracer::Enable();
    auto instance = rig.MakeInstance(options);
    auto t = instance != nullptr
                 ? rig.TimedRequest(instance.get(), combo.arch, options)
                 : Result<semirt::StageTimings>(Status::Internal("no instance"));
    obs::Tracer::Disable();
    if (!t.ok()) continue;
    const auto rollup = obs::Tracer::Rollup();
    std::printf("%-12s %10.4f %10.5f %10.4f\n", combo.label,
                StageMeanSeconds(rollup, obs::spans::kModelLoad),
                StageMeanSeconds(rollup, obs::spans::kRuntimeInit),
                StageMeanSeconds(rollup, obs::spans::kInference));
  }
  std::printf("(shape check vs Figure 17: execution time is nearly identical with\n"
              " and without the enclave — the overhead lives in init + attestation;\n"
              " TFLM runtime init is ~zero, TVM's packs weights)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 18 — execution time breakdown WITHOUT SGX");
  sesemi::bench::CalibratedSection();
  sesemi::bench::MeasuredSection();
  return 0;
}
