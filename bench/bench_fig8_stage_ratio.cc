// Reproduces Figure 8: the fraction of cold-invocation latency spent in each
// serving stage (enclave init, first key fetch, model load, runtime init,
// model execution) for all six framework-model combos.
//
// Calibrated section uses the SGX2 cost model (= the paper's Figure 17
// measurements); the measured section runs this repo's real pipeline on
// scaled models and prints the same ratios.

#include "bench/bench_common.h"

namespace sesemi::bench {
namespace {

void PrintRatios(const char* label, double init, double key, double load,
                 double rt_init, double exec) {
  double total = init + key + load + rt_init + exec;
  std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%%   (cold total %.3fs)\n",
              label, 100 * init / total, 100 * key / total, 100 * load / total,
              100 * rt_init / total, 100 * exec / total, total);
}

void CalibratedSection() {
  PrintSection("Calibrated (paper SGX2 measurements)");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "", "EnclaveIni", "KeyFetch",
              "ModelLoad", "RtInit", "Execute");
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  for (const Combo& combo : AllCombos()) {
    const auto& p = cm.profile(combo.framework, combo.arch);
    PrintRatios(combo.label, p.enclave_init_s, p.key_fetch_s, p.model_load_s,
                p.runtime_init_s, p.execute_s);
  }
}

void MeasuredSection() {
  PrintSection("Measured (this repo, live pipeline, scaled models)");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "", "EnclaveIni", "KeyFetch",
              "ModelLoad", "RtInit", "Execute");
  LiveRig rig(0.02);
  for (const Combo& combo : AllCombos()) {
    rig.DeployModel(combo.arch);
    semirt::SemirtOptions options;
    options.framework = combo.framework;
    rig.Authorize(combo.arch, options);

    // Enclave init is part of instance creation: time it separately.
    auto t0 = std::chrono::steady_clock::now();
    auto instance = rig.MakeInstance(options);
    double init_s = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (instance == nullptr) continue;
    auto timings = rig.TimedRequest(instance.get(), combo.arch, options);
    if (!timings.ok()) {
      std::printf("%-12s request failed: %s\n", combo.label,
                  timings.status().ToString().c_str());
      continue;
    }
    PrintRatios(combo.label, init_s, MicrosToSeconds(timings->key_fetch),
                MicrosToSeconds(timings->model_load),
                MicrosToSeconds(timings->runtime_init),
                MicrosToSeconds(timings->execute));
  }
  std::printf("(shape check: key fetch dominates the cold path for fast-executing\n"
              " TVM models, execution dominates for interpreted TFLM models)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 8 — latency ratio of serving stages (cold path)");
  sesemi::bench::CalibratedSection();
  sesemi::bench::MeasuredSection();
  return 0;
}
