#!/usr/bin/env python3
"""Fold per-commit BENCH_*.json artifacts into one trajectory JSON.

CI uploads three artifacts per commit (docs/BENCHMARKS.md):

  BENCH_micro.json    google-benchmark JSON (bytes_per_second / FLOPS counters)
  BENCH_sched.json    one JSON object per line, each with a "section" key
  BENCH_cluster.json  same JSON-lines shape, from the cluster dataplane bench
  BENCH_fig13.json    same JSON-lines shape, from the MMPP/per-class bench

Point this script at one or more of those files — or at directories holding
them, e.g. one subdirectory per commit from `gh run download` — and it emits
a single trajectory document on stdout (or --out):

  {"points": [{"label": "<commit>", "metrics": {"BM_GcmSeal/65536": 1.4e9, ...},
               "sched": {"fairness": {...}, ...},
               "cluster": {"replay": {...}, ...},
               "fig13": {"classes": {...}, ...}}, ...]}

Labels default to the parent directory name of each file (the commit, when
the artifact tree is one directory per commit); files sharing a label merge
into one point. Points are ordered by each point's oldest file mtime —
download order tracks commit order for CI artifacts, whereas name order
would shuffle commits alphabetically by hash. Pass --keep-order to use
argument/scan order instead (e.g. for hand-curated file lists). Example:

  for sha in $(git rev-list --first-parent -n 20 HEAD); do
    mkdir -p artifacts/$sha && ... download BENCH_*.json ...
  done
  python3 bench/aggregate_bench.py artifacts/*/BENCH_*.json --out trajectory.json
"""

import argparse
import json
import os
import sys


def load_micro(path, metrics):
    """google-benchmark JSON -> {benchmark name: throughput-ish scalar}."""
    with open(path) as f:
        doc = json.load(f)
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        if not name or bench.get("run_type") == "aggregate":
            continue
        if "bytes_per_second" in bench:
            metrics[name] = bench["bytes_per_second"]
        elif "FLOPS" in bench:
            metrics[name] = bench["FLOPS"]
        elif "real_time" in bench:
            metrics[name] = bench["real_time"]


def load_sched(path, sections):
    """JSON-lines with a "section" key -> {section: last object seen}."""
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            section = obj.get("section")
            if section:
                sections[section] = obj


def expand_paths(args):
    """Files as given; directories searched (recursively) for BENCH_*.json."""
    for arg in args:
        if os.path.isdir(arg):
            for root, _, names in sorted(os.walk(arg)):
                for name in sorted(names):
                    if name.startswith("BENCH_") and name.endswith(".json"):
                        yield os.path.join(root, name)
        else:
            yield arg


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="BENCH_*.json files or directories of them")
    parser.add_argument("--label", default=None,
                        help="force one label for every input (default: each "
                             "file's parent directory name)")
    parser.add_argument("--out", default=None, help="write here instead of stdout")
    parser.add_argument("--keep-order", action="store_true",
                        help="emit points in argument/scan order instead of "
                             "sorting by file mtime (chronological)")
    args = parser.parse_args()

    points = {}  # label -> point; ordered below
    mtimes = {}  # label -> oldest contributing-file mtime
    for path in expand_paths(args.paths):
        if not os.path.isfile(path):
            print(f"aggregate_bench: no such file: {path}", file=sys.stderr)
            return 1
        label = args.label or os.path.basename(os.path.dirname(os.path.abspath(path)))
        point = points.setdefault(
            label,
            {"label": label, "metrics": {}, "sched": {}, "cluster": {},
             "fig13": {}})
        mtime = os.path.getmtime(path)
        mtimes[label] = min(mtimes.get(label, mtime), mtime)
        base = os.path.basename(path)
        if base == "BENCH_sched.json":
            load_sched(path, point["sched"])
        elif base == "BENCH_cluster.json":
            load_sched(path, point["cluster"])
        elif base == "BENCH_fig13.json":
            load_sched(path, point["fig13"])
        else:
            load_micro(path, point["metrics"])

    ordered = list(points.values())
    if not args.keep_order:
        ordered.sort(key=lambda p: mtimes[p["label"]])
    doc = {"points": ordered}
    out = json.dumps(doc, indent=2, sort_keys=False)
    if args.out:
        with open(args.out, "w") as f:
            f.write(out + "\n")
    else:
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
