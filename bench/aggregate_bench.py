#!/usr/bin/env python3
"""Fold per-commit BENCH_*.json artifacts into one trajectory JSON.

CI uploads three artifacts per commit (docs/BENCHMARKS.md):

  BENCH_micro.json    google-benchmark JSON (bytes_per_second / FLOPS counters)
  BENCH_sched.json    one JSON object per line, each with a "section" key
  BENCH_cluster.json  same JSON-lines shape, from the cluster dataplane bench
  BENCH_fig13.json    same JSON-lines shape, from the MMPP/per-class bench

Point this script at one or more of those files — or at directories holding
them, e.g. one subdirectory per commit from `gh run download` — and it emits
a single trajectory document on stdout (or --out):

  {"points": [{"label": "<commit>", "metrics": {"BM_GcmSeal/65536": 1.4e9, ...},
               "sched": {"fairness": {...}, ...},
               "cluster": {"replay": {...}, ...},
               "fig13": {"classes": {...}, ...}}, ...]}

Labels default to the parent directory name of each file (the commit, when
the artifact tree is one directory per commit); files sharing a label merge
into one point. Points are ordered by each point's oldest file mtime —
download order tracks commit order for CI artifacts, whereas name order
would shuffle commits alphabetically by hash. Pass --keep-order to use
argument/scan order instead (e.g. for hand-curated file lists). Example:

  for sha in $(git rev-list --first-parent -n 20 HEAD); do
    mkdir -p artifacts/$sha && ... download BENCH_*.json ...
  done
  python3 bench/aggregate_bench.py artifacts/*/BENCH_*.json --out trajectory.json
"""

import argparse
import json
import os
import sys


def warn(message):
    print(f"aggregate_bench: {message}", file=sys.stderr)


def load_micro(path, metrics):
    """google-benchmark JSON -> {benchmark name: throughput-ish scalar}.

    A truncated or otherwise unparseable file is reported and skipped — one
    bad artifact (a crashed bench run, an interrupted upload) must not sink
    the whole trajectory.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as e:
        warn(f"skipping unreadable micro artifact {path}: {e}")
        return
    if not isinstance(doc, dict):
        warn(f"skipping {path}: expected a JSON object, got {type(doc).__name__}")
        return
    for bench in doc.get("benchmarks", []):
        if not isinstance(bench, dict):
            continue
        name = bench.get("name")
        if not name or bench.get("run_type") == "aggregate":
            continue
        if "bytes_per_second" in bench:
            metrics[name] = bench["bytes_per_second"]
        elif "FLOPS" in bench:
            metrics[name] = bench["FLOPS"]
        elif "real_time" in bench:
            metrics[name] = bench["real_time"]


def load_sched(path, sections):
    """JSON-lines with a "section" key -> {section: last object seen}.

    Individual bad lines were always skipped; an unreadable file now is too
    (with a warning) instead of raising.
    """
    bad_lines = 0
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    bad_lines += 1
                    continue
                if not isinstance(obj, dict):
                    bad_lines += 1
                    continue
                section = obj.get("section")
                if section:
                    sections[section] = obj
    except (OSError, UnicodeDecodeError) as e:
        warn(f"skipping unreadable artifact {path}: {e}")
        return
    if bad_lines:
        warn(f"{path}: skipped {bad_lines} malformed line(s)")


def expand_paths(args):
    """Files as given; directories searched (recursively) for BENCH_*.json."""
    for arg in args:
        if os.path.isdir(arg):
            for root, _, names in sorted(os.walk(arg)):
                for name in sorted(names):
                    if name.startswith("BENCH_") and name.endswith(".json"):
                        yield os.path.join(root, name)
        else:
            yield arg


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="BENCH_*.json files or directories of them")
    parser.add_argument("--label", default=None,
                        help="force one label for every input (default: each "
                             "file's parent directory name)")
    parser.add_argument("--out", default=None, help="write here instead of stdout")
    parser.add_argument("--keep-order", action="store_true",
                        help="emit points in argument/scan order instead of "
                             "sorting by file mtime (chronological)")
    args = parser.parse_args()

    points = {}  # label -> point; ordered below
    mtimes = {}  # label -> oldest contributing-file mtime
    for path in expand_paths(args.paths):
        if not os.path.isfile(path):
            # A commit whose CI run expired or never uploaded: warn and move
            # on, the remaining points still form a valid trajectory.
            warn(f"no such file: {path} (skipped)")
            continue
        if os.path.getsize(path) == 0:
            warn(f"empty artifact: {path} (skipped)")
            continue
        label = args.label or os.path.basename(os.path.dirname(os.path.abspath(path)))
        point = points.setdefault(
            label,
            {"label": label, "metrics": {}, "sched": {}, "cluster": {},
             "fig13": {}})
        mtime = os.path.getmtime(path)
        mtimes[label] = min(mtimes.get(label, mtime), mtime)
        base = os.path.basename(path)
        if base == "BENCH_sched.json":
            load_sched(path, point["sched"])
        elif base == "BENCH_cluster.json":
            load_sched(path, point["cluster"])
        elif base == "BENCH_fig13.json":
            load_sched(path, point["fig13"])
        else:
            load_micro(path, point["metrics"])

    # Drop points every one of whose artifacts was skipped — an all-corrupt
    # commit contributes nothing, and an empty point would plot as a gap of
    # zeros rather than a gap.
    ordered = []
    for point in points.values():
        if point["metrics"] or point["sched"] or point["cluster"] or point["fig13"]:
            ordered.append(point)
        else:
            warn(f"point {point['label']!r} had no usable data (dropped)")
    if not args.keep_order:
        ordered.sort(key=lambda p: mtimes[p["label"]])
    doc = {"points": ordered}
    out = json.dumps(doc, indent=2, sort_keys=False)
    if args.out:
        with open(args.out, "w") as f:
            f.write(out + "\n")
    else:
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
