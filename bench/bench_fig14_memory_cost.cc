// Reproduces Figure 14: sandbox counts and memory usage over time under the
// MMPP workload, comparing 1-thread and 4-thread enclaves, with the
// GB-second cost integral the paper reports in §VI-C.

#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "workload/generators.h"

namespace sesemi::bench {
namespace {

void RunConfig(const char* title, model::Architecture arch, int tcs,
               uint64_t memory_budget) {
  PrintSection(title);
  workload::MmppSpec spec;
  auto trace = workload::Mmpp(spec, "m0", "u0");

  sim::SimConfig config;
  config.num_nodes = 8;
  config.cost_model = sim::CostModel::PaperSgx2();
  // §VI-C: invoker memory caps total enclave threads per node at the core
  // count, so OpenWhisk spreads load across the 8 nodes.
  config.invoker_memory_bytes =
      static_cast<uint64_t>(config.cost_model.cores_per_node() / tcs) * memory_budget;
  sim::ClusterSim sim(config);
  sim::SimFunction fn;
  fn.name = "f";
  fn.framework = inference::FrameworkKind::kTvm;
  fn.arch = arch;
  fn.num_tcs = tcs;
  fn.container_memory_bytes = memory_budget;
  sim.AddFunction(fn);
  for (const auto& a : trace) sim.Submit("f", a.model_id, a.user_id, a.time);
  sim.Run();

  // Print the time series at 150 s intervals (the paper's tick spacing).
  std::printf("%-8s %10s %10s %14s\n", "t (s)", "serving", "total", "mem (GB)");
  const auto& totals = sim.metrics().sandboxes_total_series();
  const auto& servings = sim.metrics().sandboxes_serving_series();
  const auto& memory = sim.metrics().memory_series();
  for (double t = 150; t <= spec.duration_s; t += 150) {
    TimeMicros cutoff = SecondsToMicros(t);
    auto at = [&](const std::vector<sim::UsageSample>& series) -> double {
      double v = 0;
      for (const auto& s : series) {
        if (s.time > cutoff) break;
        v = s.value;
      }
      return v;
    };
    std::printf("%-8.0f %10.0f %10.0f %14.2f\n", t, at(servings), at(totals),
                at(memory) / (1ull << 30));
  }
  double gbs = sim.metrics().GbSeconds(SecondsToMicros(spec.duration_s));
  std::printf("cost integral: %.0f GB-s  |  avg latency %.2f s  |  %d requests\n",
              gbs, sim.metrics().AvgLatencySeconds(),
              static_cast<int>(sim.metrics().records().size()));
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  using sesemi::model::Architecture;
  sesemi::bench::PrintHeader("Figure 14 — memory usage under the MMPP workload");
  // Memory budgets from §VI-C: DSNET 256 MB (1 TCS) / 384 MB (4 TCS);
  // RSNET 768 MB / 1536 MB.
  sesemi::bench::RunConfig("(a) TVM-DSNET-1 (256 MB/container)",
                           Architecture::kDsNet, 1, 256ull << 20);
  sesemi::bench::RunConfig("(b) TVM-DSNET-4 (384 MB/container)",
                           Architecture::kDsNet, 4, 384ull << 20);
  sesemi::bench::RunConfig("(c) TVM-RSNET-1 (768 MB/container)",
                           Architecture::kRsNet, 1, 768ull << 20);
  sesemi::bench::RunConfig("(d) TVM-RSNET-4 (1536 MB/container)",
                           Architecture::kRsNet, 4, 1536ull << 20);
  std::printf("\n(paper: DSNET 3543 -> 1459 GB-s (-59%%); RSNET 2273 -> 1179 GB-s\n"
              " (-48%%) going from 1 to 4 threads per enclave. Shape check: the\n"
              " 4-thread configs need ~4x fewer sandboxes and cut the integral\n"
              " roughly in half.)\n");
  return 0;
}
