// Reproduces Figure 9: execution time per invocation path (hot / warm /
// cold / untrusted / untrusted-reuse) for all six combos. Sandbox init is
// excluded, as in the paper.

#include "bench/bench_common.h"

namespace sesemi::bench {
namespace {

void CalibratedSection() {
  PrintSection("Calibrated (paper SGX2 measurements, seconds)");
  std::printf("%-12s %8s %8s %8s %10s %12s\n", "", "Hot", "Warm", "Cold",
              "Untrusted", "Untr(reuse)");
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  for (const Combo& combo : AllCombos()) {
    const auto& p = cm.profile(combo.framework, combo.arch);
    double hot = p.execute_s;
    double warm = p.model_load_s + p.runtime_init_s + p.execute_s;
    double cold = p.enclave_init_s + p.key_fetch_s + warm;
    double untrusted = p.plain_model_load_s + p.plain_runtime_init_s + p.plain_execute_s;
    double untrusted_reuse = p.plain_execute_s;
    std::printf("%-12s %8.3f %8.3f %8.3f %10.3f %12.3f\n", combo.label, hot, warm,
                cold, untrusted, untrusted_reuse);
  }
  {
    const auto& p = cm.profile(inference::FrameworkKind::kTvm,
                               model::Architecture::kMbNet);
    double hot = p.execute_s;
    double cold = p.enclave_init_s + p.key_fetch_s + p.model_load_s +
                  p.runtime_init_s + p.execute_s;
    double warm = p.model_load_s + p.runtime_init_s + p.execute_s;
    std::printf("(TVM-MBNET speedups over cold: hot %.0fx, warm %.0fx — paper: 21x/11x)\n",
                cold / hot, cold / warm);
  }
}

void MeasuredSection() {
  PrintSection("Measured (this repo, live pipeline, scaled models, seconds)");
  std::printf("%-12s %8s %8s %8s %10s %12s\n", "", "Hot", "Warm", "Cold",
              "Untrusted", "Untr(reuse)");
  LiveRig rig(0.02);
  for (const Combo& combo : AllCombos()) {
    rig.DeployModel(combo.arch);
    semirt::SemirtOptions options;
    options.framework = combo.framework;
    rig.Authorize(combo.arch, options);

    auto instance = rig.MakeInstance(options);
    if (instance == nullptr) continue;
    auto cold = rig.TimedRequest(instance.get(), combo.arch, options);   // cold
    auto hot = rig.TimedRequest(instance.get(), combo.arch, options);    // hot
    // Warm: force a model reload by clearing the execution context.
    instance->ClearExecutionContext();
    auto warm = rig.TimedRequest(instance.get(), combo.arch, options);

    semirt::SemirtOptions untrusted_options;
    untrusted_options.framework = combo.framework;
    untrusted_options.mode = semirt::RuntimeMode::kUntrusted;
    auto untrusted_instance = rig.MakeInstance(untrusted_options);
    auto untrusted =
        rig.TimedRequest(untrusted_instance.get(), combo.arch, untrusted_options);
    auto untrusted_reuse =
        rig.TimedRequest(untrusted_instance.get(), combo.arch, untrusted_options);

    if (!cold.ok() || !hot.ok() || !warm.ok() || !untrusted.ok() ||
        !untrusted_reuse.ok()) {
      std::printf("%-12s measurement failed\n", combo.label);
      continue;
    }
    std::printf("%-12s %8.4f %8.4f %8.4f %10.4f %12.4f\n", combo.label,
                MicrosToSeconds(hot->total), MicrosToSeconds(warm->total),
                MicrosToSeconds(cold->total), MicrosToSeconds(untrusted->total),
                MicrosToSeconds(untrusted_reuse->total));
  }
  std::printf("(shape check: hot < warm < cold for every combo; hot ~= untrusted-reuse)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 9 — execution time under different invocations");
  sesemi::bench::CalibratedSection();
  sesemi::bench::MeasuredSection();
  return 0;
}
