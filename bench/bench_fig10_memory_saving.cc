// Reproduces Figure 10: enclave memory saved by serving N concurrent
// requests from one enclave (shared model, per-thread runtime buffers)
// versus N single-request enclaves.
//
//   saving(N) = 1 - peak(one enclave, N threads) / (N * peak(one enclave, 1))
//
// The analytic section uses Table I sizes; the measured section runs real
// concurrent requests through SeMIRT and reads the enclave heap peak.

#include <thread>

#include "bench/bench_common.h"

namespace sesemi::bench {
namespace {

void AnalyticSection() {
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  for (auto framework : {inference::FrameworkKind::kTvm, inference::FrameworkKind::kTflm}) {
    PrintSection(std::string("Analytic from Table I sizes — ") +
                 inference::ToString(framework));
    std::printf("%-8s %10s %12s %12s %12s\n", "Model", "lambda", "N=2", "N=4", "N=8");
    for (auto arch : {model::Architecture::kMbNet, model::Architecture::kRsNet,
                      model::Architecture::kDsNet}) {
      const auto& p = cm.profile(framework, arch);
      double lambda = static_cast<double>(p.buffer_bytes) / p.model_bytes;
      std::printf("%-8s %10.2f", model::ToString(arch), lambda);
      for (int n : {2, 4, 8}) {
        double shared = static_cast<double>(p.model_bytes) +
                        static_cast<double>(n) * p.buffer_bytes;
        double separate =
            static_cast<double>(n) * (p.model_bytes + p.buffer_bytes);
        std::printf(" %11.1f%%", 100.0 * (1.0 - shared / separate));
      }
      std::printf("\n");
    }
  }
  std::printf("(paper: TFLM saving reaches 86.2%% for RSNET at 8 threads; TVM saves\n"
              " less because runtime buffers duplicate the weights)\n");
}

void MeasuredSection() {
  PrintSection("Measured (this repo, real enclave heap peaks, scaled models)");
  std::printf("%-12s %12s %12s %12s\n", "", "N=2", "N=4", "N=8");
  LiveRig rig(0.05);
  for (const Combo& combo : AllCombos()) {
    rig.DeployModel(combo.arch);
    auto peak_for = [&](uint32_t tcs) -> uint64_t {
      semirt::SemirtOptions options;
      options.framework = combo.framework;
      options.num_tcs = tcs;
      options.heap_size_bytes = 2ull << 30;
      rig.Authorize(combo.arch, options);
      auto instance = rig.MakeInstance(options);
      if (instance == nullptr) return 0;
      std::vector<std::thread> threads;
      for (uint32_t i = 0; i < tcs; ++i) {
        threads.emplace_back([&, i] {
          (void)rig.TimedRequest(instance.get(), combo.arch, options, i + 1);
        });
      }
      for (auto& t : threads) t.join();
      return instance->heap_peak();
    };
    uint64_t peak1 = peak_for(1);
    if (peak1 == 0) continue;
    std::printf("%-12s", combo.label);
    for (uint32_t n : {2u, 4u, 8u}) {
      uint64_t peak_n = peak_for(n);
      double saving =
          1.0 - static_cast<double>(peak_n) / (static_cast<double>(n) * peak1);
      std::printf(" %11.1f%%", 100.0 * saving);
    }
    std::printf("\n");
  }
  std::printf("(shape check: savings grow with N for both frameworks. Since\n"
              " the compile-once refactor TVM's packed copy lives in the\n"
              " shared loaded model instead of every runtime, so its curve\n"
              " now climbs with N like TFLM's — in the paper's model TVM\n"
              " savings were capped by per-runtime weight duplication — and\n"
              " asymptotically overtakes it (the shared artifact dominates\n"
              " the per-thread arena).)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 10 — enclave memory saving vs concurrency");
  sesemi::bench::AnalyticSection();
  sesemi::bench::MeasuredSection();
  return 0;
}
