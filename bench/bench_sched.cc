// Scheduler & admission-control sweep (multi-tenant): demonstrates the three
// properties the src/sched subsystem exists for, as JSON lines suitable for
// the BENCH_sched.json trajectory artifact (docs/BENCHMARKS.md):
//  (a) fairness — two functions with 2:1 weights under a saturated, equally
//      skewed Poisson backlog: WeightedFair delivers completions ~2:1 while
//      Fifo follows the 1:1 arrival interleave;
//  (b) batching — same-model coalescing onto one enclave entry + multi-row
//      GEMM: avg batch size > 1 and higher inv/s than max_batch=1 at >= 8
//      queued same-model requests;
//  (c) admission — token-bucket drops and strict priority classes visible in
//      the stats snapshot (typed rejects, per-class queue-wait p50/p99).
//
// Flags: --quick shrinks request counts (CI / TSan smoke);
// --overhead-check runs ONLY a tracing-overhead probe — alternating
// disabled/enabled warm same-model bursts in one process — and emits a
// single JSON line with inv/s for both modes (CI asserts <= 5% delta).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/faultpoint.h"
#include "serverless/platform.h"
#include "workload/generators.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sesemi::bench {
namespace {

bool g_quick = false;

struct Rig {
  explicit Rig(serverless::PlatformConfig config, double scale = 0.002)
      : live(scale, /*input_hw=*/16) {
    graph = &live.DeployModel(model::Architecture::kMbNet);
    options.num_tcs = 8;
    live.Authorize(model::Architecture::kMbNet, options);
    platform = std::make_unique<serverless::ServerlessPlatform>(
        config, &live.authority(), &live.storage(), live.keyservice());
  }

  bool Deploy(const std::string& name, const sched::FunctionSchedParams& params) {
    serverless::FunctionSpec spec;
    spec.name = name;
    spec.options = options;
    spec.sched = params;
    return platform->DeployFunction(spec).ok();
  }

  Result<semirt::InferenceRequest> Request(uint64_t seed) {
    const sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
    Bytes input = model::GenerateRandomInput(*graph, seed);
    return live.user().BuildRequest(model::ToString(model::Architecture::kMbNet),
                                    input, &es);
  }

  /// Deploy a second, much lighter model ("light") beside the rig's kMbNet:
  /// the isolation section pairs a heavy bulk model with a cheap interactive
  /// one, the workload shape the RT tier targets.
  bool DeployLightModel(double light_scale) {
    auto ks_client = client::KeyServiceClient::Connect(
        live.keyservice(), &live.authority(),
        keyservice::KeyServiceEnclave::ExpectedMeasurement());
    if (!ks_client.ok()) return false;
    model::ZooSpec spec;
    spec.model_id = "light";
    spec.scale = light_scale;
    spec.input_hw = 16;
    auto built = model::BuildModel(spec);
    if (!built.ok()) return false;
    light_graph = std::move(*built);
    const sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
    return live.owner()
               .DeployModel(ks_client->get(), &live.storage(), light_graph,
                            /*with_plaintext_copy=*/true)
               .ok() &&
           live.owner()
               .GrantAccess(ks_client->get(), "light", es, live.user().id())
               .ok() &&
           live.user().ProvisionRequestKey(ks_client->get(), "light", es).ok();
  }

  Result<semirt::InferenceRequest> LightRequest(uint64_t seed) {
    const sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
    Bytes input = model::GenerateRandomInput(light_graph, seed);
    return live.user().BuildRequest("light", input, &es);
  }

  LiveRig live;
  const model::ModelGraph* graph = nullptr;
  model::ModelGraph light_graph;
  semirt::SemirtOptions options;
  std::unique_ptr<serverless::ServerlessPlatform> platform;
};

void FairnessSection() {
  PrintSection("(a) weighted fairness — 2 functions, weights 2:1, saturated");
  const int per_fn = g_quick ? 24 : 60;

  // Equal-rate Poisson tenants: the *arrival* interleave is ~1:1, so any
  // completion skew comes from the scheduler, not the offered load.
  std::vector<workload::TenantSpec> tenants = {
      {"fn-heavy", "bench-user", 50.0},
      {"fn-light", "bench-user", 50.0},
  };

  for (sched::PolicyKind policy :
       {sched::PolicyKind::kFifo, sched::PolicyKind::kWeightedFair}) {
    serverless::PlatformConfig config;
    config.max_inflight = 4;  // one dispatcher: dispatch order == pop order
    config.scheduler.policy = policy;
    Rig rig(config);

    sched::FunctionSchedParams heavy;
    heavy.weight = 2.0;
    sched::FunctionSchedParams light;
    light.weight = 1.0;
    if (!rig.Deploy("fn-heavy", heavy) || !rig.Deploy("fn-light", light)) return;

    // Warm both containers outside the measured backlog.
    for (const char* fn : {"fn-heavy", "fn-light"}) {
      auto request = rig.Request(1);
      if (!request.ok()) return;
      (void)rig.platform->Invoke(fn, *request);
    }

    // Build the saturated backlog in Poisson arrival order, then release.
    std::map<std::string, int> submitted;
    rig.platform->PauseDispatch();
    std::vector<std::pair<std::string, std::future<serverless::InvocationResult>>>
        futures;
    const std::vector<workload::Arrival> trace =
        workload::MultiTenantPoisson(tenants, /*duration_s=*/60.0, /*seed=*/7);
    for (const workload::Arrival& arrival : trace) {
      if (submitted[arrival.model_id] >= per_fn) continue;
      auto request = rig.Request(submitted[arrival.model_id] + 2);
      if (!request.ok()) return;
      submitted[arrival.model_id]++;
      futures.emplace_back(
          arrival.model_id,
          rig.platform->InvokeAsync(arrival.model_id, std::move(*request)));
    }
    rig.platform->ResumeDispatch();

    std::vector<std::pair<uint64_t, std::string>> dispatches;
    for (auto& [fn, future] : futures) {
      serverless::InvocationResult result = future.get();
      if (result.response.ok()) {
        dispatches.emplace_back(result.dispatch_seq, fn);
      }
    }
    std::sort(dispatches.begin(), dispatches.end());
    // Count completions within the both-backlogged window (first per_fn
    // dispatches): that is where the weight ratio is the prediction.
    std::map<std::string, int> window_count;
    for (int i = 0; i < per_fn && i < static_cast<int>(dispatches.size()); ++i) {
      window_count[dispatches[i].second]++;
    }
    const int heavy_n = window_count["fn-heavy"];
    const int light_n = window_count["fn-light"];
    const double ratio = light_n > 0 ? static_cast<double>(heavy_n) / light_n : 0.0;
    std::printf(
        "{\"bench\":\"sched\",\"section\":\"fairness\",\"policy\":\"%s\","
        "\"weights\":{\"fn-heavy\":2,\"fn-light\":1},\"dispatch_window\":%d,"
        "\"completions\":{\"fn-heavy\":%d,\"fn-light\":%d},\"ratio\":%.2f,"
        "\"target_ratio\":2.0}\n",
        sched::ToString(policy), per_fn, heavy_n, light_n, ratio);
  }
  std::printf(
      "(shape check: wfq ratio within 15%% of 2.0; fifo tracks the ~1:1\n"
      " arrival interleave instead)\n");
}

void BatchingSection() {
  PrintSection("(b) same-model batching — one enclave entry per batch");
  const int requests = g_quick ? 24 : 64;

  for (int max_batch : {1, 8}) {
    serverless::PlatformConfig config;
    config.max_inflight = 2;
    // Larger scale than the fairness section: the zoo's classifier head
    // absorbs the model-size target, so this makes the Dense layers (where
    // the batch dimension becomes one M=batch GEMM instead of `batch`
    // weight-streaming GEMVs) the dominant per-request cost.
    Rig rig(config, /*scale=*/0.05);
    sched::FunctionSchedParams params;
    params.max_batch = max_batch;
    if (!rig.Deploy("fn-batch", params)) return;

    // Warm-up: provision the container, the TCS runtime, and (for the
    // batched config) the runtime's cached batch arena — the measured round
    // is the steady state, as in the other live sweeps.
    auto drain_burst = [&](bool measured, double* wall_out, int* ok_out,
                           int* max_seen_out) {
      rig.platform->PauseDispatch();
      std::vector<std::future<serverless::InvocationResult>> futures;
      for (int i = 0; i < requests; ++i) {
        auto request = rig.Request(static_cast<uint64_t>(i % 8) + 2);
        if (!request.ok()) return false;
        futures.push_back(
            rig.platform->InvokeAsync("fn-batch", std::move(*request)));
      }
      const auto start = std::chrono::steady_clock::now();
      rig.platform->ResumeDispatch();
      int ok = 0, max_seen = 0;
      for (auto& future : futures) {
        serverless::InvocationResult result = future.get();
        if (result.response.ok()) ok++;
        max_seen = std::max(max_seen, result.batch_size);
      }
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      if (measured) {
        *wall_out = wall_s;
        *ok_out = ok;
        *max_seen_out = max_seen;
      }
      return true;
    };

    double wall_s = 0.0;
    int ok = 0, max_seen = 0;
    if (!drain_burst(/*measured=*/false, &wall_s, &ok, &max_seen)) return;
    if (!drain_burst(/*measured=*/true, &wall_s, &ok, &max_seen)) return;

    const sched::SchedStats stats = rig.platform->scheduler_stats();
    std::printf(
        "{\"bench\":\"sched\",\"section\":\"batching\",\"max_batch\":%d,"
        "\"requests\":%d,\"ok\":%d,\"wall_s\":%.4f,\"inv_per_s\":%.1f,"
        "\"avg_batch\":%.2f,\"max_batch_seen\":%d,\"p50_wait_us\":%lld,"
        "\"p99_wait_us\":%lld}\n",
        max_batch, requests, ok, wall_s,
        wall_s > 0 ? ok / wall_s : 0.0, stats.avg_batch_size, max_seen,
        static_cast<long long>(stats.wait[1].p50),
        static_cast<long long>(stats.wait[1].p99));
  }
  std::printf(
      "(shape check: max_batch=8 shows avg_batch > 1 and higher inv_per_s\n"
      " than max_batch=1 — one TCS slot, one ecall, one key/model setup and\n"
      " a multi-row Dense GEMM per batch instead of per request)\n");
}

void AdmissionSection() {
  PrintSection("(c) admission — token-bucket drops and priority classes");

  // Rate limiting: a burst far beyond the bucket must reject (typed), not
  // block. Burst 8 at 50 rps: ~8 admits, the rest ResourceExhausted.
  {
    serverless::PlatformConfig config;
    Rig rig(config);
    sched::FunctionSchedParams params;
    params.rate_per_s = 50.0;
    params.burst = 8.0;
    if (!rig.Deploy("fn-limited", params)) return;

    const int burst = g_quick ? 16 : 32;
    rig.platform->PauseDispatch();
    std::vector<std::future<serverless::InvocationResult>> futures;
    for (int i = 0; i < burst; ++i) {
      auto request = rig.Request(2);
      if (!request.ok()) return;
      futures.push_back(
          rig.platform->InvokeAsync("fn-limited", std::move(*request)));
    }
    rig.platform->ResumeDispatch();
    int ok = 0, rejected = 0;
    for (auto& future : futures) {
      serverless::InvocationResult result = future.get();
      result.response.ok() ? ok++ : rejected++;
    }
    const sched::SchedStats stats = rig.platform->scheduler_stats();
    std::printf(
        "{\"bench\":\"sched\",\"section\":\"admission\",\"burst\":%d,"
        "\"bucket\":8,\"ok\":%d,\"rejected\":%d,\"rejected_rate\":%llu,"
        "\"rejected_depth\":%llu}\n",
        burst, ok, rejected,
        static_cast<unsigned long long>(stats.rejected_rate),
        static_cast<unsigned long long>(stats.rejected_depth));
  }

  // Priority classes: a paused backlog of P2 work plus late-arriving P0 work;
  // P0 must dispatch first (lower queue wait despite arriving later).
  {
    serverless::PlatformConfig config;
    config.max_inflight = 4;
    Rig rig(config);
    if (!rig.Deploy("fn-prio", {})) return;
    {
      auto request = rig.Request(1);
      if (!request.ok()) return;
      (void)rig.platform->Invoke("fn-prio", *request);
    }

    const int per_class = g_quick ? 8 : 16;
    rig.platform->PauseDispatch();
    std::vector<std::future<serverless::InvocationResult>> futures;
    for (int i = 0; i < per_class; ++i) {
      auto request = rig.Request(2);
      if (!request.ok()) return;
      serverless::InvokeOptions low;
      low.priority = 2;
      futures.push_back(
          rig.platform->InvokeAsync("fn-prio", std::move(*request), low));
    }
    for (int i = 0; i < per_class; ++i) {
      auto request = rig.Request(3);
      if (!request.ok()) return;
      serverless::InvokeOptions high;
      high.priority = 0;
      futures.push_back(
          rig.platform->InvokeAsync("fn-prio", std::move(*request), high));
    }
    rig.platform->ResumeDispatch();
    uint64_t p0_last_dispatch = 0, p2_first_dispatch = ~0ull;
    for (size_t i = 0; i < futures.size(); ++i) {
      serverless::InvocationResult result = futures[i].get();
      if (!result.response.ok()) continue;
      if (i < static_cast<size_t>(per_class)) {
        p2_first_dispatch = std::min(p2_first_dispatch, result.dispatch_seq);
      } else {
        p0_last_dispatch = std::max(p0_last_dispatch, result.dispatch_seq);
      }
    }
    const sched::SchedStats stats = rig.platform->scheduler_stats();
    std::printf(
        "{\"bench\":\"sched\",\"section\":\"priority\",\"per_class\":%d,"
        "\"p0_last_dispatch\":%llu,\"p2_first_dispatch\":%llu,"
        "\"p0_wait_p50_us\":%lld,\"p2_wait_p50_us\":%lld}\n",
        per_class, static_cast<unsigned long long>(p0_last_dispatch),
        static_cast<unsigned long long>(p2_first_dispatch),
        static_cast<long long>(stats.wait[0].p50),
        static_cast<long long>(stats.wait[2].p50));
    std::printf(
        "(shape check: every P0 dispatch precedes the first P2 dispatch)\n");
  }
}

void RecoverySection() {
  PrintSection("(d) recovery — seeded ~2% faults, then fault-free throughput");
  const int chaos_n = g_quick ? 40 : 120;
  const int wave_n = g_quick ? 24 : 60;

  serverless::PlatformConfig config;
  config.recovery.retry.max_attempts = 3;
  config.recovery.retry.backoff_base_micros = 50;
  config.recovery.retry.backoff_max_micros = 500;
  config.recovery.relaunch_backoff_base_micros = 100;
  config.recovery.relaunch_backoff_max_micros = 1000;
  Rig rig(config);
  if (!rig.Deploy("fn-chaos", {})) return;
  {
    auto request = rig.Request(1);
    if (!request.ok()) return;
    (void)rig.platform->Invoke("fn-chaos", *request);
  }

  FaultInjector::Instance().DisarmAll();
  FaultInjector::Instance().Reseed(0xc4a05);
  FaultConfig poison;
  poison.probability = 0.05;
  poison.error_code = StatusCode::kInternal;
  FaultInjector::Instance().Arm(faults::kEcallEnter, poison);
  FaultConfig transient;
  transient.probability = 0.05;
  transient.error_code = StatusCode::kUnavailable;
  FaultInjector::Instance().Arm(faults::kStorageGet, transient);

  int chaos_errors = 0;
  {
    std::vector<std::future<serverless::InvocationResult>> futures;
    for (int i = 0; i < chaos_n; ++i) {
      auto request = rig.Request(static_cast<uint64_t>(i + 2));
      if (!request.ok()) return;
      futures.push_back(
          rig.platform->InvokeAsync("fn-chaos", std::move(*request)));
    }
    for (auto& future : futures) {
      if (!future.get().response.ok()) chaos_errors++;
    }
  }
  FaultInjector::Instance().DisarmAll();

  // Recovered throughput: fault-free wave after the chaos phase; quarantined
  // enclaves must have relaunched, so every request lands and inv/s is the
  // healthy platform's rate.
  int wave_ok = 0;
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::future<serverless::InvocationResult>> futures;
    for (int i = 0; i < wave_n; ++i) {
      auto request = rig.Request(static_cast<uint64_t>(i + 2));
      if (!request.ok()) return;
      futures.push_back(
          rig.platform->InvokeAsync("fn-chaos", std::move(*request)));
    }
    for (auto& future : futures) {
      if (future.get().response.ok()) wave_ok++;
    }
  }
  const double wave_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const serverless::RecoveryStats rs = rig.platform->recovery_stats();
  std::printf(
      "{\"bench\":\"sched\",\"section\":\"recovery\",\"chaos_requests\":%d,"
      "\"error_rate\":%.4f,\"recovered_per_s\":%.1f,\"wave_ok\":%d,"
      "\"wave_n\":%d,\"retries\":%llu,\"enclave_failures\":%llu,"
      "\"relaunches\":%llu,\"quarantined_slots\":%llu}\n",
      chaos_n, static_cast<double>(chaos_errors) / chaos_n,
      wave_s > 0 ? wave_ok / wave_s : 0.0, wave_ok, wave_n,
      static_cast<unsigned long long>(rs.retries),
      static_cast<unsigned long long>(rs.enclave_failures),
      static_cast<unsigned long long>(rs.relaunches),
      static_cast<unsigned long long>(rs.quarantined_slots));
  std::printf(
      "(shape check: error_rate well under the summed fault rates — retries\n"
      " absorb transient faults; wave_ok == wave_n once faults stop)\n");
}

void OverheadSection() {
  PrintSection("tracing overhead — alternating disabled/enabled warm bursts");
  // Bursts must be long enough (hundreds of ms) that scheduler jitter and
  // short external hiccups average out instead of swamping the per-span cost.
  const int requests = g_quick ? 8192 : 16384;
  const int pairs = 5;

  serverless::PlatformConfig config;
  config.max_inflight = 4;
  Rig rig(config);
  if (!rig.Deploy("fn-overhead", {})) return;

  auto burst = [&](int count) -> double {
    std::vector<std::future<serverless::InvocationResult>> futures;
    futures.reserve(count);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < count; ++i) {
      auto request = rig.Request(static_cast<uint64_t>(i % 8) + 2);
      if (!request.ok()) return -1.0;
      futures.push_back(
          rig.platform->InvokeAsync("fn-overhead", std::move(*request)));
    }
    for (auto& future : futures) {
      if (!future.get().response.ok()) return -1.0;
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Warm-up: container + every runtime slot touched before any measurement.
  if (burst(requests) < 0) return;

  // Alternating in-process pairs so frequency scaling / cache state hits both
  // modes equally. Each pair runs both modes back-to-back, so its delta
  // cancels slow drift; the order within a pair flips each iteration so a
  // decaying background load cannot systematically penalize one mode; the
  // median across pairs discards windows where an external hiccup landed on
  // a single burst in either direction. Rings are reset and re-warmed with a
  // small enabled burst before each measured pair, so no measured window
  // pays ring allocation, page faults, or overflow.
  std::vector<double> off_walls, on_walls, deltas;
  for (int i = 0; i < pairs; ++i) {
    obs::Tracer::Reset(1 << 18);
    obs::Tracer::Enable();
    if (burst(256) < 0) return;  // allocate per-thread rings off the clock
    double on = -1.0, off = -1.0;
    if (i % 2 == 0) {
      on = burst(requests);
      obs::Tracer::Disable();
      off = burst(requests);
    } else {
      obs::Tracer::Disable();
      off = burst(requests);
      obs::Tracer::Enable();
      on = burst(requests);
      obs::Tracer::Disable();
    }
    if (off < 0 || on < 0) return;
    off_walls.push_back(off);
    on_walls.push_back(on);
    deltas.push_back((1.0 - off / on) * 100.0);
  }
  obs::Tracer::Reset();

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double inv_disabled = requests / median(off_walls);
  const double inv_enabled = requests / median(on_walls);
  const double overhead_pct = median(deltas);
  std::printf(
      "{\"bench\":\"sched\",\"section\":\"overhead\",\"requests\":%d,"
      "\"pairs\":%d,\"inv_per_s_disabled\":%.1f,\"inv_per_s_enabled\":%.1f,"
      "\"overhead_pct\":%.2f}\n",
      requests, pairs, inv_disabled, inv_enabled, overhead_pct);
  std::printf(
      "(shape check: overhead_pct <= 5 — the tracing budget in\n"
      " docs/ARCHITECTURE.md \"Observability\")\n");
}

struct IsolationRun {
  double interactive_p50_us = 0;
  double interactive_p99_us = 0;
  double bulk_inv_per_s = 0;
  bool ok = false;
};

/// Elevate the calling (measuring) thread to SCHED_FIFO just below the RT
/// lanes' priority for the duration of a run. A real interactive client is a
/// separate machine; in-process, an un-elevated observer's own wakeup
/// latency under a saturated CPU would otherwise dominate the p99 of BOTH
/// modes and drown the signal. Applied symmetrically to the shared and RT
/// runs; quietly a no-op where the container forbids it (the CI gate is
/// retry-tolerant for that noisier case).
class ScopedObserverPriority {
 public:
  ScopedObserverPriority() {
#if defined(__linux__)
    pthread_getschedparam(pthread_self(), &old_policy_, &old_param_);
    sched_param param{};
    param.sched_priority = 39;  // below the lanes' 40: never preempts them
    elevated_ =
        pthread_setschedparam(pthread_self(), SCHED_FIFO, &param) == 0;
#endif
  }
  ~ScopedObserverPriority() {
#if defined(__linux__)
    if (elevated_) {
      pthread_setschedparam(pthread_self(), old_policy_, &old_param_);
    }
#endif
  }

 private:
#if defined(__linux__)
  int old_policy_ = 0;
  sched_param old_param_{};
#endif
  bool elevated_ = false;
};

// One saturated run: a producer thread keeps a fixed window of heavy bulk
// requests in flight for the whole measurement — sustained saturation, not a
// transient burst that the pool drains before interactive traffic arrives —
// while cheap interactive (class 0) requests trickle in. With the RT tier
// the interactive class bypasses pool and batcher onto dedicated lanes;
// without it interactive latency inherits the dispatch-window occupancy of
// the backlog. Bulk throughput is completions/s over the same wall window in
// both modes, so the regression comparison is like-for-like.
IsolationRun RunIsolation(bool rt_enabled) {
  IsolationRun out;
  const int interactive_n = g_quick ? 16 : 32;
  const int producers_n = 3;
  const int per_producer_inflight = 16;
  const auto measure_window = std::chrono::milliseconds(g_quick ? 300 : 600);

  serverless::PlatformConfig config;
  // A single dispatch-window slot: the saturation regime the tier is for is
  // "every shared dispatcher is occupied by a bulk batch". One slot makes
  // that regime hold by construction on any core count (the CI runner and
  // dev boxes differ wildly), instead of only when offered load happens to
  // beat 2x ParallelismDegree().
  config.max_inflight = 1;
  if (rt_enabled) {
    config.rt.enabled = true;
    config.rt.classes = 1;
    config.rt.executor.num_lanes = 1;
    // Privileged knobs degrade to unpinned lanes without CAP_SYS_NICE.
    config.rt.executor.pin_threads = true;
    config.rt.executor.elevate_priority = true;
  }
  // Heavy bulk model (see BatchingSection), cheap interactive model: the
  // workload split the tier exists for.
  Rig rig(config, /*scale=*/0.05);
  if (!rig.DeployLightModel(/*light_scale=*/0.002)) return out;
  // Wide batches: each dispatch occupies its slot for the whole multi-row
  // enclave entry, which is exactly the occupancy interactive requests queue
  // behind on the shared path.
  sched::FunctionSchedParams bulk_params;
  bulk_params.priority = 1;
  bulk_params.max_batch = 16;
  sched::FunctionSchedParams rt_params;
  rt_params.priority = 0;
  if (!rig.Deploy("fn-bulk", bulk_params) || !rig.Deploy("fn-rt", rt_params)) {
    return out;
  }
  // Warm both containers (and the RT lane's first dispatch) off the clock.
  {
    auto bulk_request = rig.Request(1);
    if (!bulk_request.ok()) return out;
    (void)rig.platform->Invoke("fn-bulk", *bulk_request);
    auto rt_request = rig.LightRequest(1);
    if (!rt_request.ok()) return out;
    (void)rig.platform->Invoke("fn-rt", *rt_request);
  }

  // Pre-built request templates: the producer must never touch the client
  // concurrently with the interactive loop (BuildRequest is not synchronized).
  std::vector<semirt::InferenceRequest> templates;
  for (uint64_t seed = 2; seed < 10; ++seed) {
    auto request = rig.Request(seed);
    if (!request.ok()) return out;
    templates.push_back(std::move(*request));
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> bulk_failed{false};
  std::atomic<uint64_t> bulk_done{0};
  // Several producers, each holding a bounded in-flight window: one of them
  // (whoever grabbed the single dispatch slot) becomes the de-facto
  // dispatcher while the rest keep the backlog topped up, so batches
  // coalesce deep and the slot never idles.
  std::vector<std::thread> producers;
  producers.reserve(producers_n);
  for (int p = 0; p < producers_n; ++p) {
    producers.emplace_back([&, p] {
      std::deque<std::future<serverless::InvocationResult>> inflight;
      uint64_t seq = static_cast<uint64_t>(p);
      while (!stop.load(std::memory_order_relaxed)) {
        while (static_cast<int>(inflight.size()) < per_producer_inflight) {
          semirt::InferenceRequest copy = templates[seq++ % templates.size()];
          inflight.push_back(
              rig.platform->InvokeAsync("fn-bulk", std::move(copy)));
        }
        if (!inflight.front().get().response.ok()) {
          bulk_failed.store(true, std::memory_order_relaxed);
        }
        inflight.pop_front();
        bulk_done.fetch_add(1, std::memory_order_relaxed);
      }
      for (auto& future : inflight) {
        if (!future.get().response.ok()) {
          bulk_failed.store(true, std::memory_order_relaxed);
        }
        bulk_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the backlog establish before the measured window opens.
  while (bulk_done.load(std::memory_order_relaxed) <
         static_cast<uint64_t>(producers_n * per_producer_inflight)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto window_t0 = std::chrono::steady_clock::now();
  const uint64_t window_d0 = bulk_done.load(std::memory_order_relaxed);

  ScopedObserverPriority observer_priority;
  bool interactive_failed = false;
  std::vector<double> interactive_us;
  interactive_us.reserve(interactive_n);
  for (int i = 0; i < interactive_n; ++i) {
    auto request = rig.LightRequest(static_cast<uint64_t>(i % 8) + 2);
    if (!request.ok()) {
      interactive_failed = true;
      break;
    }
    const auto start = std::chrono::steady_clock::now();
    serverless::InvocationResult result =
        rig.platform->InvokeAsync("fn-rt", std::move(*request)).get();
    if (!result.response.ok()) {
      interactive_failed = true;
      break;
    }
    interactive_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    // Spread arrivals across the saturated window instead of measuring one
    // back-to-back clump.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  std::this_thread::sleep_until(window_t0 + measure_window);
  const uint64_t window_d1 = bulk_done.load(std::memory_order_relaxed);
  const double window_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    window_t0)
          .count();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : producers) t.join();
  if (interactive_failed || bulk_failed.load(std::memory_order_relaxed)) {
    return out;
  }

  std::sort(interactive_us.begin(), interactive_us.end());
  auto pct = [&](double p) {
    const double rank = p / 100.0 * (interactive_us.size() - 1);
    return interactive_us[static_cast<size_t>(rank + 0.5)];
  };
  out.interactive_p50_us = pct(50.0);
  out.interactive_p99_us = pct(99.0);
  out.bulk_inv_per_s =
      window_s > 0 ? static_cast<double>(window_d1 - window_d0) / window_s : 0.0;
  out.ok = true;
  return out;
}

void IsolationSection() {
  PrintSection("(e) execution tiers — interactive p99 under bulk saturation");
  // Back-to-back in one process so both configurations see the same machine
  // state; the CI gate retries the whole binary on transient noise.
  const IsolationRun shared = RunIsolation(/*rt_enabled=*/false);
  const IsolationRun rt = RunIsolation(/*rt_enabled=*/true);
  if (!shared.ok || !rt.ok) {
    std::printf("(isolation section failed to complete; skipping line)\n");
    return;
  }
  const double ratio = shared.interactive_p99_us > 0
                           ? rt.interactive_p99_us / shared.interactive_p99_us
                           : 0.0;
  const double bulk_regression_pct =
      shared.bulk_inv_per_s > 0
          ? (1.0 - rt.bulk_inv_per_s / shared.bulk_inv_per_s) * 100.0
          : 0.0;
  std::printf(
      "{\"bench\":\"sched\",\"section\":\"isolation\","
      "\"interactive_p50_rt_us\":%.0f,\"interactive_p99_rt_us\":%.0f,"
      "\"interactive_p50_shared_us\":%.0f,\"interactive_p99_shared_us\":%.0f,"
      "\"p99_ratio\":%.3f,\"bulk_inv_per_s_rt\":%.1f,"
      "\"bulk_inv_per_s_shared\":%.1f,\"bulk_regression_pct\":%.1f}\n",
      rt.interactive_p50_us, rt.interactive_p99_us, shared.interactive_p50_us,
      shared.interactive_p99_us, ratio, rt.bulk_inv_per_s,
      shared.bulk_inv_per_s, bulk_regression_pct);
  std::printf(
      "(shape check: p99_ratio <= 0.5 — the execution-tier bound in\n"
      " docs/ARCHITECTURE.md \"Execution tiers\"; bulk_regression_pct <= 10)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main(int argc, char** argv) {
  bool overhead_check = false;
  bool isolation_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) sesemi::bench::g_quick = true;
    if (std::strcmp(argv[i], "--overhead-check") == 0) overhead_check = true;
    if (std::strcmp(argv[i], "--isolation-check") == 0) isolation_check = true;
  }
  if (overhead_check) {
    sesemi::bench::PrintHeader("Scheduler — tracing overhead probe");
    sesemi::bench::OverheadSection();
    return 0;
  }
  if (isolation_check) {
    sesemi::bench::PrintHeader("Scheduler — execution-tier isolation probe");
    sesemi::bench::IsolationSection();
    return 0;
  }
  sesemi::bench::PrintHeader(
      "Scheduler — weighted fairness, same-model batching, admission control");
  sesemi::bench::FairnessSection();
  sesemi::bench::BatchingSection();
  sesemi::bench::AdmissionSection();
  sesemi::bench::RecoverySection();
  sesemi::bench::IsolationSection();
  return 0;
}
