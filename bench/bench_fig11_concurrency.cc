// Reproduces Figure 11: average hot-invocation latency versus the number of
// concurrent requests.
//  (a) SGX2: CPU-bound — latency rises once concurrency exceeds the 12
//      physical cores; TVM-RSNET/DSNET rise fastest.
//  (b) SGX1 (MBNET): EPC-bound — latency rises when total enclave memory
//      exceeds the 128 MB EPC; TVM hits the wall before TFLM, and 4 threads
//      in one enclave (TVM-4/TFLM-4) beats 4 separate enclaves.

#include "bench/bench_common.h"
#include "sim/cluster.h"

namespace sesemi::bench {
namespace {

double AvgLatencyAtConcurrency(const sim::CostModel& cm,
                               inference::FrameworkKind framework,
                               model::Architecture arch, int concurrent,
                               int tcs_per_enclave) {
  sim::SimConfig config;
  config.num_nodes = 1;
  config.cost_model = cm;
  sim::ClusterSim sim(config);
  sim::SimFunction fn;
  fn.name = "f";
  fn.framework = framework;
  fn.arch = arch;
  fn.num_tcs = tcs_per_enclave;
  sim.AddFunction(fn);
  int containers = (concurrent + tcs_per_enclave - 1) / tcs_per_enclave;
  if (!sim.Prewarm("f", containers, "m0", "u0").ok()) return -1;
  for (int i = 0; i < concurrent; ++i) {
    sim.Submit("f", "m0", "u0", SecondsToMicros(1));
  }
  sim.Run();
  return sim.metrics().AvgLatencySeconds();
}

void Sgx2Section() {
  PrintSection("(a) SGX2 — avg latency (s) vs #concurrent requests, 12 cores");
  const std::vector<Combo> combos = {
      {inference::FrameworkKind::kTvm, model::Architecture::kMbNet, "TVM-MBNET"},
      {inference::FrameworkKind::kTvm, model::Architecture::kRsNet, "TVM-RSNET"},
      {inference::FrameworkKind::kTvm, model::Architecture::kDsNet, "TVM-DSNET"},
      {inference::FrameworkKind::kTflm, model::Architecture::kMbNet, "TFLM-MBNET"},
      {inference::FrameworkKind::kTflm, model::Architecture::kDsNet, "TFLM-DSNET"},
  };
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  std::printf("%-12s", "concurrent");
  for (const auto& c : combos) std::printf(" %11s", c.label);
  std::printf("\n");
  for (int k : {1, 2, 4, 8, 12, 16, 24, 32}) {
    std::printf("%-12d", k);
    for (const auto& c : combos) {
      std::printf(" %11.3f",
                  AvgLatencyAtConcurrency(cm, c.framework, c.arch, k, /*tcs=*/32));
    }
    std::printf("\n");
  }
  std::printf("(shape check: flat until ~12 (cores), then linear growth)\n");
}

void Sgx1Section() {
  PrintSection("(b) SGX1, MBNET — avg latency (s); EPC 128 MB is the bottleneck");
  sim::CostModel cm = sim::CostModel::PaperSgx1();
  std::printf("%-12s %9s %9s %9s %9s\n", "concurrent", "TVM-1", "TVM-4", "TFLM-1",
              "TFLM-4");
  for (int k : {1, 2, 4, 8, 12, 16}) {
    std::printf("%-12d", k);
    for (auto [framework, tcs] :
         std::vector<std::pair<inference::FrameworkKind, int>>{
             {inference::FrameworkKind::kTvm, 1},
             {inference::FrameworkKind::kTvm, 4},
             {inference::FrameworkKind::kTflm, 1},
             {inference::FrameworkKind::kTflm, 4}}) {
      std::printf(" %9.3f", AvgLatencyAtConcurrency(cm, framework,
                                                    model::Architecture::kMbNet, k, tcs));
    }
    std::printf("\n");
  }
  std::printf("(shape check: TVM degrades before TFLM — bigger enclaves; 4-thread\n"
              " enclaves degrade less than 1-thread — shared model memory)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 11 — latency w.r.t. number of concurrent executions");
  sesemi::bench::Sgx2Section();
  sesemi::bench::Sgx1Section();
  return 0;
}
