// Reproduces Figure 11: average hot-invocation latency versus the number of
// concurrent requests.
//  (a) SGX2: CPU-bound — latency rises once concurrency exceeds the 12
//      physical cores; TVM-RSNET/DSNET rise fastest.
//  (b) SGX1 (MBNET): EPC-bound — latency rises when total enclave memory
//      exceeds the 128 MB EPC; TVM hits the wall before TFLM, and 4 threads
//      in one enclave (TVM-4/TFLM-4) beats 4 separate enclaves.
//  (c) Live: actually-concurrent warm invocations through
//      ServerlessPlatform::InvokeAsync on the process fork-join pool —
//      sweeps the in-flight window 1..32 and reports invocations/s plus
//      p50/p99 service latency as one JSON line per point (the measured
//      counterpart of the calibrated curves in (a)/(b)).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/faultpoint.h"
#include "serverless/platform.h"
#include "sim/cluster.h"

namespace sesemi::bench {
namespace {

double AvgLatencyAtConcurrency(const sim::CostModel& cm,
                               inference::FrameworkKind framework,
                               model::Architecture arch, int concurrent,
                               int tcs_per_enclave) {
  sim::SimConfig config;
  config.num_nodes = 1;
  config.cost_model = cm;
  sim::ClusterSim sim(config);
  sim::SimFunction fn;
  fn.name = "f";
  fn.framework = framework;
  fn.arch = arch;
  fn.num_tcs = tcs_per_enclave;
  sim.AddFunction(fn);
  int containers = (concurrent + tcs_per_enclave - 1) / tcs_per_enclave;
  if (!sim.Prewarm("f", containers, "m0", "u0").ok()) return -1;
  for (int i = 0; i < concurrent; ++i) {
    sim.Submit("f", "m0", "u0", SecondsToMicros(1));
  }
  sim.Run();
  return sim.metrics().AvgLatencySeconds();
}

void Sgx2Section() {
  PrintSection("(a) SGX2 — avg latency (s) vs #concurrent requests, 12 cores");
  const std::vector<Combo> combos = {
      {inference::FrameworkKind::kTvm, model::Architecture::kMbNet, "TVM-MBNET"},
      {inference::FrameworkKind::kTvm, model::Architecture::kRsNet, "TVM-RSNET"},
      {inference::FrameworkKind::kTvm, model::Architecture::kDsNet, "TVM-DSNET"},
      {inference::FrameworkKind::kTflm, model::Architecture::kMbNet, "TFLM-MBNET"},
      {inference::FrameworkKind::kTflm, model::Architecture::kDsNet, "TFLM-DSNET"},
  };
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  std::printf("%-12s", "concurrent");
  for (const auto& c : combos) std::printf(" %11s", c.label);
  std::printf("\n");
  for (int k : {1, 2, 4, 8, 12, 16, 24, 32}) {
    std::printf("%-12d", k);
    for (const auto& c : combos) {
      std::printf(" %11.3f",
                  AvgLatencyAtConcurrency(cm, c.framework, c.arch, k, /*tcs=*/32));
    }
    std::printf("\n");
  }
  std::printf("(shape check: flat until ~12 (cores), then linear growth)\n");
}

void Sgx1Section() {
  PrintSection("(b) SGX1, MBNET — avg latency (s); EPC 128 MB is the bottleneck");
  sim::CostModel cm = sim::CostModel::PaperSgx1();
  std::printf("%-12s %9s %9s %9s %9s\n", "concurrent", "TVM-1", "TVM-4", "TFLM-1",
              "TFLM-4");
  for (int k : {1, 2, 4, 8, 12, 16}) {
    std::printf("%-12d", k);
    for (auto [framework, tcs] :
         std::vector<std::pair<inference::FrameworkKind, int>>{
             {inference::FrameworkKind::kTvm, 1},
             {inference::FrameworkKind::kTvm, 4},
             {inference::FrameworkKind::kTflm, 1},
             {inference::FrameworkKind::kTflm, 4}}) {
      std::printf(" %9.3f", AvgLatencyAtConcurrency(cm, framework,
                                                    model::Architecture::kMbNet, k, tcs));
    }
    std::printf("\n");
  }
  std::printf("(shape check: TVM degrades before TFLM — bigger enclaves; 4-thread\n"
              " enclaves degrade less than 1-thread — shared model memory)\n");
}

double PercentileMicros(const std::vector<double>& sorted_latencies, double pct) {
  if (sorted_latencies.empty()) return 0.0;
  const double rank = pct / 100.0 * (sorted_latencies.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_latencies[lo] * (1.0 - frac) + sorted_latencies[hi] * frac;
}

void LiveConcurrencySection() {
  PrintSection("(c) live — warm invocations via InvokeAsync, JSON per point");
  std::printf("pool degree: %d worker thread(s)\n", ParallelismDegree());

  LiveRig rig(/*scale=*/0.002, /*input_hw=*/16);
  const model::ModelGraph& graph = rig.DeployModel(model::Architecture::kMbNet);
  semirt::SemirtOptions options;
  options.num_tcs = 32;  // one enclave serves the whole sweep (warm path)
  rig.Authorize(model::Architecture::kMbNet, options);

  serverless::PlatformConfig config;
  config.num_nodes = 1;
  config.max_inflight = 64;
  serverless::ServerlessPlatform platform(config, &rig.authority(),
                                          &rig.storage(), rig.keyservice());
  serverless::FunctionSpec spec;
  spec.name = "f";
  spec.options = options;
  if (!platform.DeployFunction(spec).ok()) return;

  const std::string id = model::ToString(model::Architecture::kMbNet);
  const sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
  std::vector<semirt::InferenceRequest> requests;
  for (int i = 0; i < 32; ++i) {
    Bytes input = model::GenerateRandomInput(graph, static_cast<uint64_t>(i + 1));
    auto request = rig.user().BuildRequest(id, input, &es);
    if (!request.ok()) return;
    requests.push_back(std::move(*request));
  }
  // Warm-up: provision the container and touch every TCS runtime once.
  {
    std::deque<std::future<serverless::InvocationResult>> warm;
    for (int i = 0; i < 32; ++i) {
      warm.push_back(platform.InvokeAsync("f", requests[i % requests.size()]));
    }
    while (!warm.empty()) {
      warm.front().get();
      warm.pop_front();
    }
  }

  for (int in_flight : {1, 2, 4, 8, 16, 32}) {
    const int total = in_flight * 8;
    std::vector<double> latencies;
    latencies.reserve(total);
    int errors = 0;
    const auto start = std::chrono::steady_clock::now();
    std::deque<std::future<serverless::InvocationResult>> window;
    int launched = 0;
    while (launched < total || !window.empty()) {
      while (launched < total && static_cast<int>(window.size()) < in_flight) {
        window.push_back(
            platform.InvokeAsync("f", requests[launched % requests.size()]));
        launched++;
      }
      serverless::InvocationResult result = window.front().get();
      window.pop_front();
      if (result.response.ok()) {
        latencies.push_back(static_cast<double>(result.timings.total));
      } else {
        errors++;
      }
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::sort(latencies.begin(), latencies.end());
    std::printf(
        "{\"bench\":\"fig11_live\",\"in_flight\":%d,\"invocations\":%zu,"
        "\"wall_s\":%.4f,\"inv_per_s\":%.1f,\"p50_us\":%.0f,\"p99_us\":%.0f,"
        "\"error_rate\":%.4f}\n",
        in_flight, latencies.size(), wall_s,
        wall_s > 0 ? static_cast<double>(latencies.size()) / wall_s : 0.0,
        PercentileMicros(latencies, 50.0), PercentileMicros(latencies, 99.0),
        static_cast<double>(errors) / total);
  }

  // Recovery counters for the trajectory: a short seeded fault burst, then a
  // fault-free wave whose throughput is the recovered/s figure.
  {
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().Reseed(0xf1611);
    FaultConfig poison;
    poison.probability = 0.05;
    poison.error_code = StatusCode::kInternal;
    FaultInjector::Instance().Arm(faults::kEcallEnter, poison);

    const int burst = 64;
    int burst_errors = 0;
    for (int i = 0; i < burst; ++i) {
      if (!platform.Invoke("f", requests[i % requests.size()]).ok()) {
        burst_errors++;
      }
    }
    FaultInjector::Instance().DisarmAll();

    const int wave = 64;
    int wave_ok = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < wave; ++i) {
      if (platform.Invoke("f", requests[i % requests.size()]).ok()) wave_ok++;
    }
    const double wave_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const serverless::RecoveryStats rs = platform.recovery_stats();
    std::printf(
        "{\"bench\":\"fig11_recovery\",\"burst\":%d,\"error_rate\":%.4f,"
        "\"recovered_per_s\":%.1f,\"wave_ok\":%d,\"wave_n\":%d,"
        "\"enclave_failures\":%llu,\"relaunches\":%llu,\"retries\":%llu}\n",
        burst, static_cast<double>(burst_errors) / burst,
        wave_s > 0 ? wave_ok / wave_s : 0.0, wave_ok, wave,
        static_cast<unsigned long long>(rs.enclave_failures),
        static_cast<unsigned long long>(rs.relaunches),
        static_cast<unsigned long long>(rs.retries));
  }
  // Scheduler's view of the sweep (the live section now runs through
  // src/sched): dispatch counts, coalescing, and queue-wait percentiles.
  const sched::SchedStats sched_stats = platform.scheduler_stats();
  std::printf(
      "{\"bench\":\"fig11_sched\",\"policy\":\"%s\",\"dispatched\":%llu,"
      "\"batches\":%llu,\"avg_batch\":%.2f,\"queue_depth\":%zu,"
      "\"wait_p50_us\":%lld,\"wait_p99_us\":%lld}\n",
      sched_stats.policy,
      static_cast<unsigned long long>(sched_stats.dispatched),
      static_cast<unsigned long long>(sched_stats.batches),
      sched_stats.avg_batch_size, sched_stats.queue_depth,
      static_cast<long long>(sched_stats.wait[1].p50),
      static_cast<long long>(sched_stats.wait[1].p99));
  std::printf(
      "(shape check: inv_per_s scales with in_flight up to the core count on a\n"
      " multi-core runner; p50 stays near the single-request latency until the\n"
      " pool saturates)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }
  sesemi::bench::PrintHeader("Figure 11 — latency w.r.t. number of concurrent executions");
  if (!trace_path.empty()) sesemi::obs::Tracer::Enable();
  sesemi::bench::Sgx2Section();
  sesemi::bench::Sgx1Section();
  sesemi::bench::LiveConcurrencySection();
  if (!trace_path.empty()) {
    sesemi::obs::Tracer::Disable();
    const sesemi::obs::TraceSnapshot snapshot = sesemi::obs::Tracer::Snap();
    const sesemi::Status status =
        sesemi::obs::WriteChromeTraceJson(snapshot, trace_path);
    std::printf("{\"bench\":\"fig11_trace\",\"file\":\"%s\",\"spans\":%zu,"
                "\"dropped\":%llu,\"ok\":%s}\n",
                trace_path.c_str(), snapshot.spans.size(),
                static_cast<unsigned long long>(snapshot.dropped),
                status.ok() ? "true" : "false");
  }
  return 0;
}
