// Reproduces Table II: overhead of the stronger-isolation build (sequential
// processing, no key cache, runtime scrubbed per request) on hot invocations,
// for the three TVM models.

#include "bench/bench_common.h"

namespace sesemi::bench {
namespace {

void CalibratedSection() {
  PrintSection("Calibrated (paper SGX2), hot-invocation latency");
  std::printf("%-10s %14s %14s %10s\n", "Model", "Without (ms)", "With (ms)", "Ratio");
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  for (auto arch : {model::Architecture::kMbNet, model::Architecture::kRsNet,
                    model::Architecture::kDsNet}) {
    const auto& p = cm.profile(inference::FrameworkKind::kTvm, arch);
    double without = p.execute_s;
    double with = p.execute_s + cm.SequentialHotSeconds(p);
    std::printf("TVM-%-6s %14.2f %14.2f %9.2fx\n", model::ToString(arch),
                1000 * without, 1000 * with, with / without);
  }
  std::printf("(paper: 65.79->268.36 ms MBNET, 982.96->1265.00 RSNET, "
              "388.81->587.79 DSNET)\n");
}

void MeasuredSection() {
  PrintSection("Measured (this repo, scaled models), steady-state latency");
  std::printf("%-10s %14s %14s %10s\n", "Model", "Without (ms)", "With (ms)", "Ratio");
  LiveRig rig(0.02);
  for (auto arch : {model::Architecture::kMbNet, model::Architecture::kRsNet,
                    model::Architecture::kDsNet}) {
    rig.DeployModel(arch);

    auto steady_ms = [&](bool sequential) -> double {
      semirt::SemirtOptions options;
      options.framework = inference::FrameworkKind::kTvm;
      options.sequential_mode = sequential;
      options.disable_key_cache = sequential;
      rig.Authorize(arch, options);
      auto instance = rig.MakeInstance(options);
      if (instance == nullptr) return -1;
      (void)rig.TimedRequest(instance.get(), arch, options);  // warm up
      double total = 0;
      const int kIters = 5;
      for (int i = 0; i < kIters; ++i) {
        auto t = rig.TimedRequest(instance.get(), arch, options, i + 2);
        if (!t.ok()) return -1;
        total += MicrosToSeconds(t->total);
      }
      return 1000 * total / kIters;
    };

    double without = steady_ms(false);
    double with = steady_ms(true);
    std::printf("TVM-%-6s %14.2f %14.2f %9.2fx\n", model::ToString(arch), without,
                with, with / without);
  }
  std::printf("(shape check: isolation costs extra key fetches + runtime reinit;\n"
              " the measured ratio is dominated by the KeyService round trip)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Table II — overhead of stronger isolation on hot invocations");
  sesemi::bench::CalibratedSection();
  sesemi::bench::MeasuredSection();
  return 0;
}
