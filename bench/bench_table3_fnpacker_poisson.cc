// Reproduces Table III: average latency of the Poisson traffic (popular
// models m0/m1 at 2 rps each) under All-in-one / One-to-one / FnPacker.

#include "bench/bench_fnpacker_common.h"

int main() {
  using namespace sesemi;
  using namespace sesemi::bench;
  PrintHeader("Table III — latency of models with Poisson traffic");

  fnpacker::AllInOneRouter all_in_one;
  fnpacker::OneToOneRouter one_to_one(FnPackerModels());
  fnpacker::FnPoolSpec pool;
  pool.models = FnPackerModels();
  pool.num_endpoints = 4;
  pool.exclusive_idle_timeout = SecondsToMicros(30);
  fnpacker::FnPackerRouter fnpacker_router(pool);

  FnPackerRun all = RunWithRouter(&all_in_one);
  FnPackerRun oto = RunWithRouter(&one_to_one);
  FnPackerRun fnp = RunWithRouter(&fnpacker_router);

  std::printf("%-20s %12s %12s %12s\n", "", "All-in-one", "One-to-one", "FnPacker");
  std::printf("%-20s %12.2f %12.2f %12.2f\n", "Avg. latency (ms)",
              all.poisson_avg_ms, oto.poisson_avg_ms, fnp.poisson_avg_ms);
  std::printf("\n(paper: 1700.50 / 1456.01 / 1465.79 ms — FnPacker matches\n"
              " One-to-one because the hot models get exclusive endpoints, while\n"
              " All-in-one pays ~16%% extra from model switching interference)\n");
  std::printf("FnPacker routing stats: %d routed, %d model switches, %d overflow\n",
              fnpacker_router.stats().routed, fnpacker_router.stats().model_switches,
              fnpacker_router.stats().overflow);
  return 0;
}
