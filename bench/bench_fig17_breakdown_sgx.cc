// Reproduces Appendix G Figure 17: absolute per-stage execution time for one
// request WITH SGX (enclave init, key fetch, model load, runtime init,
// execution), all six combos. Calibrated values + live measurements read
// from the obs tracer's per-stage span rollup.

#include "bench/bench_common.h"

namespace sesemi::bench {
namespace {

void CalibratedSection() {
  PrintSection("Calibrated (paper SGX2 measurements, seconds)");
  std::printf("%-12s %12s %10s %10s %10s %10s\n", "", "EnclaveInit", "KeyFetch",
              "ModelLoad", "RtInit", "Execute");
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  for (const Combo& combo : AllCombos()) {
    const auto& p = cm.profile(combo.framework, combo.arch);
    std::printf("%-12s %12.4f %10.4f %10.5f %10.5f %10.4f\n", combo.label,
                p.enclave_init_s, p.key_fetch_s, p.model_load_s, p.runtime_init_s,
                p.execute_s);
  }
}

void MeasuredSection() {
  PrintSection("Measured (this repo, live pipeline, scaled models, seconds)");
  std::printf("%-12s %12s %10s %10s %10s %10s\n", "", "EnclaveInit", "KeyFetch",
              "ModelLoad", "RtInit", "Execute");
  LiveRig rig(0.02);
  for (const Combo& combo : AllCombos()) {
    rig.DeployModel(combo.arch);
    semirt::SemirtOptions options;
    options.framework = combo.framework;
    rig.Authorize(combo.arch, options);
    // One rollup per combo: the tracer's stage spans ARE the measurement.
    obs::Tracer::Reset();
    obs::Tracer::Enable();
    auto instance = rig.MakeInstance(options);
    auto t = instance != nullptr
                 ? rig.TimedRequest(instance.get(), combo.arch, options)
                 : Result<semirt::StageTimings>(Status::Internal("no instance"));
    obs::Tracer::Disable();
    if (!t.ok()) continue;
    const auto rollup = obs::Tracer::Rollup();
    std::printf("%-12s %12.4f %10.4f %10.5f %10.5f %10.4f\n", combo.label,
                StageMeanSeconds(rollup, obs::spans::kEnclaveInit),
                StageMeanSeconds(rollup, obs::spans::kKeyFetch),
                StageMeanSeconds(rollup, obs::spans::kModelLoad),
                StageMeanSeconds(rollup, obs::spans::kRuntimeInit),
                StageMeanSeconds(rollup, obs::spans::kInference));
  }
  std::printf("(shape check: key fetch (attestation) dominates non-execution cost;\n"
              " TVM runtime init >> TFLM runtime init; RSNET loads slowest)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 17 — execution time breakdown WITH SGX");
  sesemi::bench::CalibratedSection();
  sesemi::bench::MeasuredSection();
  return 0;
}
