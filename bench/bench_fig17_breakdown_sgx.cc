// Reproduces Appendix G Figure 17: absolute per-stage execution time for one
// request WITH SGX (enclave init, key fetch, model load, runtime init,
// execution), all six combos. Calibrated values + live measurements.

#include <chrono>

#include "bench/bench_common.h"

namespace sesemi::bench {
namespace {

void CalibratedSection() {
  PrintSection("Calibrated (paper SGX2 measurements, seconds)");
  std::printf("%-12s %12s %10s %10s %10s %10s\n", "", "EnclaveInit", "KeyFetch",
              "ModelLoad", "RtInit", "Execute");
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  for (const Combo& combo : AllCombos()) {
    const auto& p = cm.profile(combo.framework, combo.arch);
    std::printf("%-12s %12.4f %10.4f %10.5f %10.5f %10.4f\n", combo.label,
                p.enclave_init_s, p.key_fetch_s, p.model_load_s, p.runtime_init_s,
                p.execute_s);
  }
}

void MeasuredSection() {
  PrintSection("Measured (this repo, live pipeline, scaled models, seconds)");
  std::printf("%-12s %12s %10s %10s %10s %10s\n", "", "EnclaveInit", "KeyFetch",
              "ModelLoad", "RtInit", "Execute");
  LiveRig rig(0.02);
  for (const Combo& combo : AllCombos()) {
    rig.DeployModel(combo.arch);
    semirt::SemirtOptions options;
    options.framework = combo.framework;
    rig.Authorize(combo.arch, options);
    auto t0 = std::chrono::steady_clock::now();
    auto instance = rig.MakeInstance(options);
    double init_s = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (instance == nullptr) continue;
    auto t = rig.TimedRequest(instance.get(), combo.arch, options);
    if (!t.ok()) continue;
    std::printf("%-12s %12.4f %10.4f %10.5f %10.5f %10.4f\n", combo.label, init_s,
                MicrosToSeconds(t->key_fetch), MicrosToSeconds(t->model_load),
                MicrosToSeconds(t->runtime_init), MicrosToSeconds(t->execute));
  }
  std::printf("(shape check: key fetch (attestation) dominates non-execution cost;\n"
              " TVM runtime init >> TFLM runtime init; RSNET loads slowest)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 17 — execution time breakdown WITH SGX");
  sesemi::bench::CalibratedSection();
  sesemi::bench::MeasuredSection();
  return 0;
}
