// Ablation study over SeSeMI's design choices, isolating each cache the
// SeMIRT runtime adds on top of the Iso-reuse baseline and FnPacker's
// exclusivity timeout:
//
//   A1  key cache + persistent KeyService channel  (vs refetch per request)
//   A2  decrypted-model cache                      (vs reload per request)
//   A3  thread-local runtime reuse                 (vs reinit per request)
//   A4  FnPacker exclusive-idle timeout sweep      (packing vs thrashing)
//
// A1-A3 run on the live pipeline; A4 on the calibrated simulator.

#include "bench/bench_common.h"
#include "bench/bench_fnpacker_common.h"

namespace sesemi::bench {
namespace {

double SteadyStateMs(LiveRig& rig, const semirt::SemirtOptions& options,
                     model::Architecture arch) {
  auto instance = rig.MakeInstance(options);
  if (instance == nullptr) return -1;
  (void)rig.TimedRequest(instance.get(), arch, options);  // excluded warmup
  const int kIters = 10;
  double total = 0;
  for (int i = 0; i < kIters; ++i) {
    auto t = rig.TimedRequest(instance.get(), arch, options, i + 2);
    if (!t.ok()) return -1;
    total += MicrosToSeconds(t->total);
  }
  return 1000 * total / kIters;
}

void CacheAblation() {
  PrintSection("A1-A3: steady-state latency (ms) as each reuse layer is removed");
  LiveRig rig(0.02);
  const model::Architecture arch = model::Architecture::kRsNet;
  rig.DeployModel(arch);

  // Full SeSeMI.
  semirt::SemirtOptions full;
  full.framework = inference::FrameworkKind::kTvm;
  rig.Authorize(arch, full);
  double full_ms = SteadyStateMs(rig, full, arch);

  // - key cache (keys refetched over the warm channel each request).
  semirt::SemirtOptions no_keys = full;
  no_keys.disable_key_cache = true;
  rig.Authorize(arch, no_keys);
  double no_keys_ms = SteadyStateMs(rig, no_keys, arch);

  // - model & runtime reuse (Iso-reuse keeps only enclave + keys).
  semirt::SemirtOptions iso = full;
  iso.mode = semirt::RuntimeMode::kIsoReuse;
  rig.Authorize(arch, iso);
  double iso_ms = SteadyStateMs(rig, iso, arch);

  // - everything (fresh enclave per request).
  semirt::SemirtOptions native = full;
  native.mode = semirt::RuntimeMode::kNative;
  rig.Authorize(arch, native);
  double native_ms = SteadyStateMs(rig, native, arch);

  std::printf("%-44s %10.2f\n", "SeSeMI (key+model+runtime cached)", full_ms);
  std::printf("%-44s %10.2f\n", "  - key cache (refetch via warm channel)", no_keys_ms);
  std::printf("%-44s %10.2f\n", "  - model/runtime reuse (= Iso-reuse)", iso_ms);
  std::printf("%-44s %10.2f\n", "  - enclave reuse (= Native)", native_ms);
  std::printf("(each layer compounds; the model/runtime caches dominate for\n"
              " large models, the enclave+attestation reuse dominates overall)\n");
}

void TimeoutAblation() {
  PrintSection("A4: FnPacker exclusive-idle timeout (Poisson avg ms, Table III rig)");
  std::printf("%-14s %14s %14s %10s\n", "timeout (s)", "poisson avg", "switches",
              "overflow");
  for (double timeout_s : {1.0, 5.0, 30.0, 120.0}) {
    fnpacker::FnPoolSpec pool;
    pool.models = FnPackerModels();
    pool.num_endpoints = 4;
    pool.exclusive_idle_timeout = SecondsToMicros(timeout_s);
    fnpacker::FnPackerRouter router(pool);
    FnPackerRun run = RunWithRouter(&router);
    std::printf("%-14.0f %14.2f %14d %10d\n", timeout_s, run.poisson_avg_ms,
                router.stats().model_switches, router.stats().overflow);
  }
  std::printf("(too-short timeouts let cold models steal hot endpoints — more\n"
              " switches; too-long timeouts under-utilize idle endpoints)\n");
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Ablation — SeMIRT reuse layers & FnPacker timeout");
  sesemi::bench::CacheAblation();
  sesemi::bench::TimeoutAblation();
  return 0;
}
