#ifndef SESEMI_BENCH_BENCH_COMMON_H_
#define SESEMI_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/clients.h"
#include "inference/framework.h"
#include "keyservice/keyservice.h"
#include "model/zoo.h"
#include "obs/trace.h"
#include "semirt/semirt.h"
#include "sgx/platform.h"
#include "sim/cost_model.h"
#include "storage/object_store.h"

namespace sesemi::bench {

/// \file
/// Shared harness for the bench_fig*/bench_table* drivers (one binary per
/// paper artifact — the figure/table map lives in docs/BENCHMARKS.md).
/// Two measurement modes coexist:
///  - *live*  — LiveRig below: real requests through real (simulated-SGX)
///    enclaves, timed in microseconds;
///  - *calibrated* — the sim/ cluster simulator replaying the same policies
///    against sim::CostModel::PaperSgx1/PaperSgx2, for curves that need a
///    12-core SGX cluster the CI runner does not have.

/// The six (framework, architecture) combos every micro artifact sweeps.
struct Combo {
  inference::FrameworkKind framework;
  model::Architecture arch;
  const char* label;
};

inline const std::vector<Combo>& AllCombos() {
  static const std::vector<Combo> combos = {
      {inference::FrameworkKind::kTflm, model::Architecture::kMbNet, "TFLM-MBNET"},
      {inference::FrameworkKind::kTvm, model::Architecture::kMbNet, "TVM-MBNET"},
      {inference::FrameworkKind::kTflm, model::Architecture::kRsNet, "TFLM-RSNET"},
      {inference::FrameworkKind::kTvm, model::Architecture::kRsNet, "TVM-RSNET"},
      {inference::FrameworkKind::kTflm, model::Architecture::kDsNet, "TFLM-DSNET"},
      {inference::FrameworkKind::kTvm, model::Architecture::kDsNet, "TVM-DSNET"},
  };
  return combos;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Mean duration (seconds) of stage `name` in a tracer rollup; 0 when the
/// stage never ran. The breakdown figures read their per-stage numbers from
/// the same spans the production tracer records — no bench-local timers.
inline double StageMeanSeconds(const std::vector<obs::StageRollup>& rollup,
                               const char* name) {
  for (const obs::StageRollup& stage : rollup) {
    if (stage.name != nullptr && std::strcmp(stage.name, name) == 0) {
      return stage.mean_s();
    }
  }
  return 0.0;
}

/// A live end-to-end rig for measured (as opposed to calibrated) numbers:
/// KeyService + storage + one owner + one user + scaled-down models, all on
/// one simulated SGX2 platform. Construction performs the full deployment
/// preamble (KeyService launch, owner/user registration); DeployModel and
/// Authorize then set up one (model, enclave-identity) pair each.
class LiveRig {
 public:
  /// Harness knobs:
  ///  - `scale`: fraction of the paper's model sizes used when synthesizing
  ///    zoo models. Scaling shrinks channel counts, not graph depth, so
  ///    stage *ratios* stay representative while a full figure sweep runs in
  ///    seconds (figure drivers use 0.002–0.01).
  ///  - `input_hw`: synthetic input height/width; with `scale` this sets
  ///    both request payload size (crypto cost) and conv FLOPs (exec cost).
  explicit LiveRig(double scale = 0.01, int input_hw = 16)
      : scale_(scale), input_hw_(input_hw) {
    keyservice_ = std::move(*keyservice::StartKeyService(&platform_));
    ks_client_ = std::move(*client::KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement()));
    owner_ = std::make_unique<client::ModelOwner>("bench-owner");
    user_ = std::make_unique<client::ModelUser>("bench-user");
    (void)owner_->Register(ks_client_.get());
    (void)user_->Register(ks_client_.get());
  }

  /// Build + deploy a model for `arch` with id "<arch>"; returns the graph.
  const model::ModelGraph& DeployModel(model::Architecture arch) {
    std::string id = model::ToString(arch);
    auto it = graphs_.find(id);
    if (it != graphs_.end()) return it->second;
    model::ZooSpec spec;
    spec.model_id = id;
    spec.arch = arch;
    spec.scale = scale_;
    spec.input_hw = input_hw_;
    model::ModelGraph graph = std::move(*model::BuildModel(spec));
    (void)owner_->DeployModel(ks_client_.get(), &storage_, graph,
                              /*with_plaintext_copy=*/true);
    return graphs_.emplace(id, std::move(graph)).first->second;
  }

  /// Authorize the rig user for `arch`'s model on enclaves built as `options`.
  void Authorize(model::Architecture arch, const semirt::SemirtOptions& options) {
    std::string id = model::ToString(arch);
    sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
    (void)owner_->GrantAccess(ks_client_.get(), id, es, user_->id());
    (void)user_->ProvisionRequestKey(ks_client_.get(), id, es);
  }

  /// Launch a SeMIRT instance with `options`.
  std::unique_ptr<semirt::SemirtInstance> MakeInstance(
      const semirt::SemirtOptions& options) {
    auto r = semirt::SemirtInstance::Create(
        &platform_, options, &storage_,
        options.mode == semirt::RuntimeMode::kUntrusted ? nullptr
                                                        : keyservice_.get());
    return r.ok() ? std::move(*r) : nullptr;
  }

  /// One measured request via the given instance; returns timings.
  Result<semirt::StageTimings> TimedRequest(
      semirt::SemirtInstance* instance, model::Architecture arch,
      const semirt::SemirtOptions& options, uint64_t seed = 1) {
    const std::string id = model::ToString(arch);
    const model::ModelGraph& graph = graphs_.at(id);
    Bytes input = model::GenerateRandomInput(graph, seed);
    semirt::StageTimings timings;
    if (options.mode == semirt::RuntimeMode::kUntrusted) {
      semirt::InferenceRequest request;
      request.user_id = "anyone";
      request.model_id = id;
      request.encrypted_input = std::move(input);
      SESEMI_ASSIGN_OR_RETURN(Bytes out, instance->HandleRequest(request, &timings));
      (void)out;
      return timings;
    }
    sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
    SESEMI_ASSIGN_OR_RETURN(semirt::InferenceRequest request,
                            user_->BuildRequest(id, input, &es));
    SESEMI_ASSIGN_OR_RETURN(Bytes sealed, instance->HandleRequest(request, &timings));
    SESEMI_ASSIGN_OR_RETURN(Bytes output, user_->DecryptResult(id, sealed, &es));
    (void)output;
    return timings;
  }

  sgx::SgxPlatform& platform() { return platform_; }
  sgx::AttestationAuthority& authority() { return authority_; }
  storage::InMemoryObjectStore& storage() { return storage_; }
  keyservice::KeyServiceServer* keyservice() { return keyservice_.get(); }
  client::ModelUser& user() { return *user_; }
  client::ModelOwner& owner() { return *owner_; }
  double scale() const { return scale_; }

 private:
  double scale_;
  int input_hw_;
  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform platform_{sgx::SgxGeneration::kSgx2, &authority_};
  storage::InMemoryObjectStore storage_;
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<client::KeyServiceClient> ks_client_;
  std::unique_ptr<client::ModelOwner> owner_;
  std::unique_ptr<client::ModelUser> user_;
  std::map<std::string, model::ModelGraph> graphs_;
};

}  // namespace sesemi::bench

#endif  // SESEMI_BENCH_BENCH_COMMON_H_
