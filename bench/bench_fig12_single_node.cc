// Reproduces Figure 12: p95 latency versus request rate on a single node,
// hot invocations, SeSeMI vs Iso-reuse vs Native.
//  (a) TVM-MBNET, SGX2  (b) TVM-RSNET, SGX2
//  (c) TVM-MBNET, SGX1  (d) TFLM-MBNET, SGX1

#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "workload/generators.h"

namespace sesemi::bench {
namespace {

/// p95 latency at a fixed request rate; -1 when the system is past saturation
/// (p95 > 30 s), matching the paper's truncated curves.
double P95AtRate(const sim::CostModel& cm, inference::FrameworkKind framework,
                 model::Architecture arch, semirt::RuntimeMode mode, double rps) {
  sim::SimConfig config;
  config.num_nodes = 1;
  config.cost_model = cm;
  // Table V / §VI-B: invoker memory admits exactly one single-TCS container
  // per physical core; overload queues instead of spawning new sandboxes.
  const uint64_t container_memory = 1ull << 30;
  config.invoker_memory_bytes =
      static_cast<uint64_t>(cm.cores_per_node()) * container_memory;
  sim::ClusterSim sim(config);
  sim::SimFunction fn;
  fn.name = "f";
  fn.framework = framework;
  fn.arch = arch;
  fn.mode = mode;
  fn.num_tcs = 1;
  fn.container_memory_bytes = container_memory;
  sim.AddFunction(fn);
  // §VI-B setup: the node is fully warmed with as many single-TCS containers
  // as it has cores (Table V memory config), so no invocation is cold.
  if (!sim.Prewarm("f", cm.cores_per_node(), "m0", "u0").ok()) return -1;
  auto trace = workload::FixedRate(rps, 60, "m0", "u0", SecondsToMicros(1));
  for (const auto& a : trace) sim.Submit("f", a.model_id, a.user_id, a.time);
  sim.Run();
  double p95 = sim.metrics().PercentileLatencySeconds(95);
  return p95 > 30 ? -1 : p95;
}

void Sweep(const char* title, const sim::CostModel& cm,
           inference::FrameworkKind framework, model::Architecture arch,
           const std::vector<double>& rates) {
  PrintSection(title);
  std::printf("%-10s %10s %10s %10s\n", "RPS", "SeSeMI", "Iso-reuse", "Native");
  for (double rps : rates) {
    std::printf("%-10.0f", rps);
    for (auto mode : {semirt::RuntimeMode::kSesemi, semirt::RuntimeMode::kIsoReuse,
                      semirt::RuntimeMode::kNative}) {
      double p95 = P95AtRate(cm, framework, arch, mode, rps);
      if (p95 < 0) {
        std::printf(" %10s", "saturated");
      } else {
        std::printf(" %10.3f", p95);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  using sesemi::inference::FrameworkKind;
  using sesemi::model::Architecture;
  using sesemi::sim::CostModel;
  sesemi::bench::PrintHeader("Figure 12 — single-node serving, p95 latency vs rate");
  sesemi::bench::Sweep("(a) TVM-MBNET, SGX2", CostModel::PaperSgx2(),
                       FrameworkKind::kTvm, Architecture::kMbNet,
                       {30, 35, 40, 44, 46, 48, 50});
  sesemi::bench::Sweep("(b) TVM-RSNET, SGX2", CostModel::PaperSgx2(),
                       FrameworkKind::kTvm, Architecture::kRsNet,
                       {1, 2, 3, 4, 5, 6});
  sesemi::bench::Sweep("(c) TVM-MBNET, SGX1", CostModel::PaperSgx1(),
                       FrameworkKind::kTvm, Architecture::kMbNet,
                       {2, 5, 8, 11, 14, 16});
  sesemi::bench::Sweep("(d) TFLM-MBNET, SGX1", CostModel::PaperSgx1(),
                       FrameworkKind::kTflm, Architecture::kMbNet,
                       {2, 5, 8, 11, 14, 16, 18});
  std::printf("\n(shape check: SeSeMI sustains the highest rate; Iso-reuse saturates\n"
              " earlier for RSNET — repeated model loads; Native earliest everywhere.\n"
              " On SGX1, TFLM sustains >18 rps where TVM stalls near 14 — Fig 12c/d.)\n");
  return 0;
}
