// Reproduces Appendix C Figure 15: enclave initialization latency versus the
// number of concurrently launched enclaves, for 128 MB and 256 MB enclaves,
// on SGX2 and SGX1. Also exercises the functional simulator's real enclave
// creation path to show EPC accounting during a launch storm.

#include "bench/bench_common.h"

namespace sesemi::bench {
namespace {

void CalibratedSection(const char* title, const sim::CostModel& cm) {
  PrintSection(title);
  std::printf("%-12s %14s %14s\n", "#enclaves", "128MB (s)", "256MB (s)");
  for (int n : {1, 2, 4, 8, 16}) {
    std::printf("%-12d %14.2f %14.2f\n", n,
                cm.EnclaveInitSeconds(128ull << 20, n),
                cm.EnclaveInitSeconds(256ull << 20, n));
  }
}

void FunctionalSection() {
  PrintSection("Functional simulator: EPC accounting during a 16-enclave storm");
  sgx::AttestationAuthority authority;
  sgx::SgxPlatform platform(sgx::SgxGeneration::kSgx1, &authority);  // 128 MB EPC
  sgx::EnclaveConfig config;
  config.heap_size_bytes = 64ull << 20;
  std::vector<std::unique_ptr<sgx::Enclave>> enclaves;
  for (int i = 0; i < 16; ++i) {
    sgx::EnclaveImage image("stress-" + std::to_string(i),
                            {{"code", ToBytes("semirt")}}, config);
    auto e = platform.CreateEnclave(image);
    if (e.ok()) enclaves.push_back(std::move(*e));
  }
  std::printf("launched %zu enclaves; EPC committed %.1f MB of %.1f MB "
              "(utilization %.2f, paging slowdown %.2fx)\n",
              enclaves.size(), platform.epc().committed() / 1048576.0,
              platform.epc().capacity() / 1048576.0, platform.epc().Utilization(),
              platform.epc().PagingSlowdown());
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 15 — enclave initialization overhead");
  sesemi::bench::CalibratedSection("(a) SGX2", sesemi::sim::CostModel::PaperSgx2());
  sesemi::bench::CalibratedSection("(b) SGX1", sesemi::sim::CostModel::PaperSgx1());
  sesemi::bench::FunctionalSection();
  std::printf("\n(paper: SGX2 16x256MB ~4.06 s each; SGX1 worse (~10 s at 16) since\n"
              " every added page can evict another within the 128 MB EPC)\n");
  return 0;
}
