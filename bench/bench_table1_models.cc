// Reproduces Table I: model sizes and runtime buffer sizes for the three
// models under TVM and TFLM.
//
// Two sections: the paper's published numbers (wired into the cost model) and
// measured numbers from this repo's synthetic models + µ-frameworks at a
// reduced scale (buffer/model ratios are the comparable quantity).

#include "bench/bench_common.h"
#include "inference/framework.h"
#include "model/format.h"

namespace sesemi::bench {
namespace {

void PaperSection() {
  PrintSection("Paper values (Table I, via cost-model calibration)");
  std::printf("%-8s %12s %16s %16s\n", "Name", "Model size", "TVM buffer",
              "TFLM buffer");
  sim::CostModel cm = sim::CostModel::PaperSgx2();
  const char* names[] = {"MBNET", "RSNET", "DSNET"};
  model::Architecture archs[] = {model::Architecture::kMbNet,
                                 model::Architecture::kRsNet,
                                 model::Architecture::kDsNet};
  for (int i = 0; i < 3; ++i) {
    const auto& tvm = cm.profile(inference::FrameworkKind::kTvm, archs[i]);
    const auto& tflm = cm.profile(inference::FrameworkKind::kTflm, archs[i]);
    std::printf("%-8s %10lluMB %14lluMB %14lluMB\n", names[i],
                tvm.model_bytes >> 20, tvm.buffer_bytes >> 20,
                tflm.buffer_bytes >> 20);
  }
}

void MeasuredSection(double scale) {
  PrintSection("Measured on this repo's synthetic models (scale " +
               std::to_string(scale) + " of paper sizes)");
  // Since the compile-once refactor the packed weights live in the LOADED
  // model (built once at MODEL_LOAD), not in every runtime: λ_tvm is now
  // loaded-model/model, and per-runtime buffers are activation arenas on
  // both frameworks (one shared packed copy regardless of TCS count).
  std::printf("%-8s %12s %16s %10s %12s %12s %10s\n", "Name", "Model size",
              "TVM load+pack", "(λ_tvm)", "TVM arena", "TFLM arena",
              "(λ_tflm)");
  for (model::Architecture arch : {model::Architecture::kMbNet,
                                   model::Architecture::kRsNet,
                                   model::Architecture::kDsNet,
                                   model::Architecture::kHybNet}) {
    model::ZooSpec spec;
    spec.model_id = model::ToString(arch);
    spec.arch = arch;
    spec.scale = scale;
    spec.input_hw = 16;
    auto graph = model::BuildModel(spec);
    if (!graph.ok()) {
      std::printf("%-8s build failed: %s\n", model::ToString(arch),
                  graph.status().ToString().c_str());
      continue;
    }
    uint64_t model_bytes = model::SerializeModel(*graph).size();
    uint64_t tvm_loaded_bytes = 0;
    uint64_t arenas[2] = {0, 0};
    for (auto kind : {inference::FrameworkKind::kTvm, inference::FrameworkKind::kTflm}) {
      auto framework = inference::CreateFramework(kind);
      auto loaded = framework->WrapModel(*graph);
      auto runtime = framework->CreateRuntime(*loaded);
      const int i = kind == inference::FrameworkKind::kTvm ? 0 : 1;
      if (i == 0) tvm_loaded_bytes = (*loaded)->memory_bytes();
      arenas[i] = (*runtime)->buffer_bytes();
    }
    std::printf("%-8s %10.2fMB %14.2fMB %9.2f %10.2fMB %10.2fMB %9.2f\n",
                model::ToString(arch), model_bytes / 1048576.0,
                tvm_loaded_bytes / 1048576.0,
                static_cast<double>(tvm_loaded_bytes) / model_bytes,
                arenas[0] / 1048576.0, arenas[1] / 1048576.0,
                static_cast<double>(arenas[1]) / model_bytes);
  }
  std::printf("(paper λ: TVM 1.76/1.21/1.25, TFLM 0.29/0.14/0.27 — paper TVM\n"
              " duplicated the packed copy per runtime; here it is compiled\n"
              " once at MODEL_LOAD and shared, so λ_tvm ≈ 2 counted once and\n"
              " the per-runtime cost is the arena. hybnet is this repo's\n"
              " scenario model, not a Table I row.)\n");
}

void QuantizedSection(double scale) {
  PrintSection("Int8 quantized tier: loaded-model footprint vs fp32 (scale " +
               std::to_string(scale) + ")");
  // The enclave-heap claim behind FrameworkOptions::quantize: int8 panels
  // replace both the fp32 matrices and the fp32 packed panels, so the bytes
  // charged at MODEL_LOAD (and with them Figure 10's per-node capacity)
  // shrink by the ratio printed here. Wire size is the version-2 file.
  std::printf("%-8s %14s %14s %8s %14s %14s %8s\n", "Name", "fp32 loaded",
              "int8 loaded", "(ratio)", "fp32 wire", "int8 wire", "(ratio)");
  for (model::Architecture arch : {model::Architecture::kMbNet,
                                   model::Architecture::kRsNet,
                                   model::Architecture::kDsNet,
                                   model::Architecture::kHybNet}) {
    model::ZooSpec spec;
    spec.model_id = model::ToString(arch);
    spec.arch = arch;
    spec.scale = scale;
    spec.input_hw = 16;
    auto graph = model::BuildModel(spec);
    if (!graph.ok()) {
      std::printf("%-8s build failed: %s\n", model::ToString(arch),
                  graph.status().ToString().c_str());
      continue;
    }
    auto fp32_fw = inference::CreateFramework(inference::FrameworkKind::kTvm);
    inference::FrameworkOptions qopts;
    qopts.quantize = true;
    auto int8_fw =
        inference::CreateFramework(inference::FrameworkKind::kTvm, qopts);
    auto lm_fp32 = fp32_fw->WrapModel(*graph);
    auto lm_int8 = int8_fw->WrapModel(*graph);
    if (!lm_fp32.ok() || !lm_int8.ok()) {
      std::printf("%-8s compile failed\n", model::ToString(arch));
      continue;
    }
    const uint64_t fp32_wire = model::SerializeModel(*graph).size();
    model::ModelGraph compacted = *graph;
    const model::ModelQuant quant = model::QuantizeModelWeights(compacted);
    uint64_t int8_wire = 0;
    if (model::CompactQuantizedWeights(&compacted, quant).ok()) {
      int8_wire = model::SerializeQuantizedModel(compacted, quant).size();
    }
    const uint64_t a = (*lm_fp32)->memory_bytes();
    const uint64_t b = (*lm_int8)->memory_bytes();
    std::printf("%-8s %12.2fMB %12.2fMB %7.2fx %12.2fMB %12.2fMB %7.2fx\n",
                model::ToString(arch), a / 1048576.0, b / 1048576.0,
                static_cast<double>(a) / b, fp32_wire / 1048576.0,
                int8_wire / 1048576.0,
                int8_wire ? static_cast<double>(fp32_wire) / int8_wire : 0.0);
  }
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Table I — models for the evaluation");
  sesemi::bench::PaperSection();
  sesemi::bench::MeasuredSection(0.05);
  sesemi::bench::QuantizedSection(0.05);
  return 0;
}
